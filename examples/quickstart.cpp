//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: create a Mul-T machine, evaluate programs with futures,
/// inspect the statistics.
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "runtime/Printer.h"

#include <cstdio>

using namespace mult;

int main() {
  // An 8-processor machine with the paper's recommended inlining
  // threshold T = 1.
  EngineConfig Cfg;
  Cfg.NumProcessors = 8;
  Cfg.InlineThreshold = 1;
  Engine E(Cfg);

  // Sequential evaluation works like any Scheme.
  EvalResult R = E.eval("(+ 1 (* 2 3))");
  std::printf("(+ 1 (* 2 3))          => %s\n",
              valueToString(R.Val).c_str());

  // `future` introduces parallelism; strict operations touch implicitly.
  R = E.eval(R"lisp(
    (define (fib n)
      (if (< n 2)
          n
          (+ (touch (future (fib (- n 1))))   ; child task
             (fib (- n 2)))))                 ; parent continues
    (fib 20)
  )lisp");
  if (!R.ok()) {
    std::printf("error: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("(fib 20)               => %s\n", valueToString(R.Val).c_str());

  const EngineStats &S = E.stats();
  std::printf("tasks created %llu, inlined %llu; futures %llu; "
              "steals %llu\n",
              static_cast<unsigned long long>(S.TasksCreated),
              static_cast<unsigned long long>(S.TasksInlined),
              static_cast<unsigned long long>(S.FuturesCreated),
              static_cast<unsigned long long>(S.Steals));
  std::printf("elapsed: %llu virtual cycles = %.3f virtual ms on %u procs\n",
              static_cast<unsigned long long>(S.ElapsedCycles),
              S.elapsedSeconds() * 1e3, Cfg.NumProcessors);

  // Output goes through the engine's console (the terminal server task).
  E.eval("(begin (display \"hello from mul-t\") (newline))");
  std::printf("%s", E.takeOutput().c_str());
  return 0;
}
