//===----------------------------------------------------------------------===//
///
/// \file
/// Dining philosophers on the simulated Multimax: semaphores (paper
/// section 3) under real contention, with tasks spread over processors by
/// the section-2.1.3 scheduler. The asymmetric-acquisition-order solution
/// avoids deadlock by construction; with `naive` every philosopher
/// grabs left-then-right, which *can* produce the classic circular-wait
/// deadlock — if the schedule hits it, the machine detects and reports it
/// rather than hanging.
///
/// Usage: philosophers [n-philosophers] [rounds] [naive]
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "runtime/Printer.h"
#include "support/StrUtil.h"

#include <cstdio>
#include <cstring>

using namespace mult;

int main(int argc, char **argv) {
  int N = argc > 1 ? std::atoi(argv[1]) : 5;
  int Rounds = argc > 2 ? std::atoi(argv[2]) : 20;
  bool Naive = argc > 3 && std::strcmp(argv[3], "naive") == 0;

  EngineConfig Cfg;
  Cfg.NumProcessors = 4;
  Engine E(Cfg);

  // Forks are semaphores with one unit each; meals counts per philosopher.
  const char *Naive1 = Naive ? "left" : "first";
  const char *Naive2 = Naive ? "right" : "second";
  std::string Program = strFormat(R"lisp(
   (begin
    (define n %d)
    (define rounds %d)
    (define forks (make-vector n 0))
    (define meals (make-vector n 0))
    (do ((i 0 (+ i 1))) ((= i n) #t)
      (vector-set! forks i (make-semaphore 1)))

    (define (think k) (let spin ((i 0)) (if (< i 60) (spin (+ i 1)) k)))

    (define (dine who)
      (let ((left (vector-ref forks who))
            (right (vector-ref forks (remainder (+ who 1) n))))
        ;; Asymmetric order breaks the wait cycle: the naive variant
        ;; grabs left-then-right everywhere and can deadlock.
        (let ((first (if (even? who) left right))
              (second (if (even? who) right left)))
          (let loop ((r 0))
            (if (= r rounds)
                'full
                (begin
                  (think who)
                  (semaphore-p %s)
                  (semaphore-p %s)
                  (vector-set! meals who (+ (vector-ref meals who) 1))
                  (semaphore-v second)
                  (semaphore-v first)
                  (loop (+ r 1))))))))

    (define (spawn who)
      (if (= who n)
          '()
          (cons (future (dine who)) (spawn (+ who 1)))))

    (define (wait-all l)
      (if (null? l) 'done (begin (touch (car l)) (wait-all (cdr l)))))

    (wait-all (spawn 0))
    (vector->list meals))
  )lisp",
                                  N, Rounds, Naive1, Naive2);

  std::printf("%d philosophers, %d rounds each, %s fork order, "
              "4 virtual processors...\n",
              N, Rounds, Naive ? "naive (deadlock-prone)" : "asymmetric");
  EvalResult R = E.eval(Program);
  if (!R.ok()) {
    std::printf("=> %s\n", R.Error.c_str());
    if (R.K == EvalResult::Kind::Deadlock)
      std::printf("   (the virtual machine detected quiescence with the "
                  "root unresolved --\n    every philosopher holds one "
                  "fork and waits for the other)\n");
    return R.K == EvalResult::Kind::Deadlock ? 0 : 1;
  }
  std::printf("meals per philosopher: %s\n", valueToString(R.Val).c_str());
  std::printf("tasks %llu, steals %llu, elapsed %.3f virtual seconds\n",
              static_cast<unsigned long long>(E.stats().TasksCreated),
              static_cast<unsigned long long>(E.stats().Steals),
              E.stats().elapsedSeconds());
  return 0;
}
