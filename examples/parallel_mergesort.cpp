//===----------------------------------------------------------------------===//
///
/// \file
/// Destructive parallel mergesort (paper section 4), demonstrating the
/// inlining threshold's effect on task creation: the same program run
/// eagerly, with T = 1, and with lazy futures.
///
/// Usage: parallel_mergesort [k]   sorts 2^k pseudo-random integers
///                                 (default k = 11, the paper used 13)
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "../bench/programs/MergesortProgram.h"
#include "runtime/Printer.h"

#include <cstdio>
#include <cstdlib>

using namespace mult;

namespace {

struct ModeSpec {
  const char *Name;
  std::optional<unsigned> T;
  bool Lazy;
};

void runMode(const ModeSpec &M, int K) {
  std::printf("  %s:\n", M.Name);
  std::printf("    %-6s %12s %10s %10s %10s\n", "procs", "virtual-sec",
              "speedup", "futures", "sorted?");
  double Base = 0;
  for (unsigned Procs : {1u, 2u, 4u, 8u}) {
    EngineConfig Cfg;
    Cfg.NumProcessors = Procs;
    Cfg.InlineThreshold = M.T;
    Cfg.LazyFutures = M.Lazy;
    Engine E(Cfg);
    EvalResult Setup = E.eval(MergesortSource);
    if (!Setup.ok()) {
      std::fprintf(stderr, "setup error: %s\n", Setup.Error.c_str());
      std::exit(1);
    }
    E.resetStats();
    EvalResult R =
        E.eval("(mergesort-test " + std::to_string(1 << K) + ")");
    if (!R.ok()) {
      std::fprintf(stderr, "error: %s\n", R.Error.c_str());
      std::exit(1);
    }
    double Secs = E.stats().elapsedSeconds();
    if (Procs == 1)
      Base = Secs;
    std::printf("    %-6u %12.3f %9.2fx %10llu %10s\n", Procs, Secs,
                Base / Secs,
                static_cast<unsigned long long>(E.stats().FuturesCreated),
                valueToString(R.Val).c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  int K = argc > 1 ? std::atoi(argv[1]) : 11;
  std::printf("Destructive mergesort of %d pseudo-random integers.\n"
              "The divide step runs `(future (sort! left))` while the "
              "parent sorts the right\nhalf; `merge!` touches.\n\n",
              1 << K);

  runMode({"eager futures (T = infinity)", std::nullopt, false}, K);
  runMode({"inlining, T = 1 (the paper: \"crucial\"; futures drop from "
           "n-1 to a few hundred)",
           1u, false},
          K);
  runMode({"lazy futures (section 3's proposal: futures only when "
           "actually stolen)",
           std::nullopt, true},
          K);
  return 0;
}
