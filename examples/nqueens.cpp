//===----------------------------------------------------------------------===//
///
/// \file
/// N-queens on the simulated multiprocessor: the paper's section-4 search
/// workload, demonstrating how to sweep machine configurations through
/// the public API and read speedups out of the statistics.
///
/// Usage: nqueens [n]   (default 8)
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "../bench/programs/QueensProgram.h"
#include "runtime/Printer.h"

#include <cstdio>
#include <cstdlib>

using namespace mult;

int main(int argc, char **argv) {
  int N = argc > 1 ? std::atoi(argv[1]) : 8;

  std::printf("Counting all solutions to %d-queens "
              "(one task per first-two-row position pair).\n\n",
              N);
  std::printf("  %-6s %14s %12s %10s %8s\n", "procs", "virtual-cycles",
              "virtual-sec", "speedup", "steals");

  double Base = 0;
  std::string Answer;
  for (unsigned Procs : {1u, 2u, 4u, 8u, 12u, 16u}) {
    EngineConfig Cfg;
    Cfg.NumProcessors = Procs;
    Engine E(Cfg);
    EvalResult Setup = E.eval(QueensSource);
    if (!Setup.ok()) {
      std::fprintf(stderr, "setup error: %s\n", Setup.Error.c_str());
      return 1;
    }
    E.resetStats();
    EvalResult R = E.eval("(queens-par " + std::to_string(N) + ")");
    if (!R.ok()) {
      std::fprintf(stderr, "error: %s\n", R.Error.c_str());
      return 1;
    }
    Answer = valueToString(R.Val);
    double Secs = E.stats().elapsedSeconds();
    if (Procs == 1)
      Base = Secs;
    std::printf("  %-6u %14llu %12.3f %9.2fx %8llu\n", Procs,
                static_cast<unsigned long long>(E.stats().ElapsedCycles),
                Secs, Base / Secs,
                static_cast<unsigned long long>(E.stats().Steals));
  }

  std::printf("\n%d-queens has %s solutions.\n", N, Answer.c_str());
  std::printf("(The paper, section 4: \"The speedup is close to linear; "
              "the small difference\nis probably due to the large task "
              "granularity, meaning idle processors toward\nthe end of "
              "the computation.\")\n");
  return 0;
}
