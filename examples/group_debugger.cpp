//===----------------------------------------------------------------------===//
///
/// \file
/// A scripted walk through the group-based exception model of paper
/// section 2.3: a parallel computation hits an error in one task, the
/// whole group stops, the "user" inspects tasks and a backtrace, then
/// resumes the group with a substitute value — and gets the answer.
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "runtime/Printer.h"

#include <cstdio>

using namespace mult;

int main() {
  EngineConfig Cfg;
  Cfg.NumProcessors = 4;
  Engine E(Cfg);

  std::printf("A parallel map over a list with a poisoned element:\n\n");
  const char *Program = R"lisp(
    (define (par-map f l)
      (if (null? l)
          '()
          (cons (future (f (car l))) (par-map f (cdr l)))))
    (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
    (sum (par-map (lambda (x) (* x x)) (list 1 2 'oops 4 5)))
  )lisp";
  std::printf("%s\n", Program);

  EvalResult R = E.eval(Program);
  if (R.ok()) {
    std::printf("unexpectedly succeeded?!\n");
    return 1;
  }

  std::printf(";; exception: %s\n", R.Error.c_str());
  Group *G = E.findGroup(R.StoppedGroup);
  std::printf(";; group %u stopped — %llu tasks were created for it\n",
              G->Id, static_cast<unsigned long long>(G->TasksCreated));
  std::printf(";; every sibling task is now suspended: \"after an "
              "exception is signalled by\n;; one task in a group, no "
              "other tasks in the group will run\" (section 2.3)\n\n");

  std::printf("Backtrace of the task that raised:\n%s\n",
              E.backtrace(G->CurrentTask).c_str());

  std::printf("Task states inside the stopped group:\n");
  for (TaskId Id : G->Members) {
    Task *T = E.liveTask(Id);
    if (!T)
      continue;
    const char *State = "?";
    switch (T->State) {
    case TaskState::Ready: State = "ready"; break;
    case TaskState::Running: State = "running"; break;
    case TaskState::BlockedFuture: State = "blocked on a future"; break;
    case TaskState::BlockedSemaphore: State = "blocked on a semaphore"; break;
    case TaskState::Stopped: State = "stopped"; break;
    case TaskState::Done: State = "done"; break;
    }
    std::printf("  task %u: %s%s\n", taskIndex(Id), State,
                Id == G->CurrentTask ? "   <- raised the exception" : "");
  }

  std::printf("\nResuming the group: the erring (* 'oops 'oops) returns 9 "
              "instead...\n");
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::fixnum(9));
  if (!After.ok()) {
    std::printf("resume failed: %s\n", After.Error.c_str());
    return 1;
  }
  std::printf("=> %s   (1 + 4 + 9 + 16 + 25)\n",
              valueToString(After.Val).c_str());

  std::printf("\nAnd unlike sequential Lisps, several stopped groups can "
              "coexist and resume\nin any order:\n");
  EvalResult R1 = E.eval("(+ 100 (car 'first))");
  EvalResult R2 = E.eval("(+ 200 (car 'second))");
  std::printf("  stopped groups now: %zu\n", E.stoppedGroups().size());
  EvalResult A1 = E.resumeGroup(R1.StoppedGroup, Value::fixnum(1));
  EvalResult A2 = E.resumeGroup(R2.StoppedGroup, Value::fixnum(2));
  std::printf("  resumed older first: %s, then newer: %s\n",
              valueToString(A1.Val).c_str(),
              valueToString(A2.Val).c_str());
  return 0;
}
