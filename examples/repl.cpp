//===----------------------------------------------------------------------===//
///
/// \file
/// The interactive Mul-T REPL — the user interface of paper section 2.3.
///
/// Try:
///   mul-t> (define (fib n) (if (< n 2) n (+ (future (fib (- n 1)))
///                                           (fib (- n 2)))))
///   mul-t> (fib 20)
///   mul-t> (car 5)          ; raises: the group stops
///   mul-t[1]> :bt           ; inspect the stopped task
///   mul-t[1]> :resume 99    ; the erring (car 5) returns 99
///   mul-t> :stats
///
/// Usage: repl [processors] [inline-threshold|lazy]
///
//===----------------------------------------------------------------------===//

#include "ui/Repl.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace mult;

int main(int argc, char **argv) {
  EngineConfig Cfg;
  Cfg.NumProcessors = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;
  if (argc > 2) {
    if (std::strcmp(argv[2], "lazy") == 0)
      Cfg.LazyFutures = true;
    else
      Cfg.InlineThreshold = unsigned(std::atoi(argv[2]));
  }

  Engine E(Cfg);
  FileOutStream &Out = FileOutStream::stdoutStream();
  Repl R(E, Out);

  Out << "Mul-T on a simulated " << Cfg.NumProcessors
      << "-processor Multimax";
  if (Cfg.LazyFutures)
    Out << " (lazy futures)";
  else if (Cfg.InlineThreshold)
    Out << " (inlining T=" << *Cfg.InlineThreshold << ")";
  Out << ". :help for commands, :exit to leave.\n";

  std::string Line;
  for (;;) {
    Out << R.prompt();
    Out.flush();
    char Buf[4096];
    if (!std::fgets(Buf, sizeof(Buf), stdin))
      break;
    if (!R.processLine(Buf))
      break;
    Out.flush();
  }
  Out << "\n";
  return 0;
}
