//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy futures (paper section 3): revocable inlining via stack splitting.
/// The paper proposed but did not implement the mechanism; these tests
/// pin down the behaviour our implementation gives it.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

EngineConfig lazyConfig(unsigned Procs) {
  EngineConfig C = config(Procs);
  C.LazyFutures = true;
  return C;
}

TEST(LazyFuturesTest, SingleProcessorNeverCreatesFutures) {
  // With nobody to steal, every future runs inline: zero future objects,
  // zero tasks beyond the root — "the performance advantages of inlining
  // in every situation".
  Engine E(lazyConfig(1));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (tree n)
      (if (< n 2) 1 (+ (touch (future (tree (- n 1))))
                       (touch (future (tree (- n 2)))))))
    (tree 10)
  )lisp"),
            89);
  EXPECT_EQ(E.stats().FuturesCreated, 0u);
  EXPECT_EQ(E.stats().SeamsStolen, 0u);
  EXPECT_GT(E.stats().SeamsCreated, 80u);
}

TEST(LazyFuturesTest, IdleProcessorsSplitSeams) {
  Engine E(lazyConfig(4));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (tree n)
      (if (< n 2) 1 (+ (touch (future (tree (- n 1))))
                       (touch (future (tree (- n 2)))))))
    (tree 14)
  )lisp"),
            610);
  EXPECT_GT(E.stats().SeamsStolen, 0u)
      << "idle processors must revoke inlining decisions";
  EXPECT_EQ(E.stats().SeamsStolen, E.stats().FuturesCreated)
      << "futures are created only at steal time";
}

TEST(LazyFuturesTest, LazyBeatsEagerOnOneProcessor) {
  const char *Prog = R"lisp(
    (define (tree n)
      (if (< n 2) 1 (+ (touch (future (tree (- n 1))))
                       (touch (future (tree (- n 2)))))))
    (tree 13)
  )lisp";
  EngineConfig Eager = config(1);
  Engine E1(Eager);
  evalOk(E1, Prog);
  Engine E2(lazyConfig(1));
  evalOk(E2, Prog);
  EXPECT_LT(E2.stats().ElapsedCycles, E1.stats().ElapsedCycles)
      << "provisional inlining avoids task-creation overhead";
}

TEST(LazyFuturesTest, LazyScalesWithProcessors) {
  // Coarse leaves: lazy task creation pays off when the split-off work
  // amortizes the steal (fine-grained immediate-touch trees degenerate to
  // sequential chains whichever mechanism is used).
  auto CyclesWith = [](unsigned P) {
    Engine E(lazyConfig(P));
    evalOk(E, R"lisp(
      (define (work) (let loop ((i 0)) (if (< i 400) (loop (+ i 1)) 1)))
      ;; The Multilisp idiom: a bare future as the operand, so the parent
      ;; computes the second branch in parallel and the implicit touch at
      ;; + synchronizes.
      (define (tree n)
        (if (< n 2)
            (work)
            (+ (future (tree (- n 1))) (tree (- n 2)))))
      (tree 12)
    )lisp");
    return E.stats().ElapsedCycles;
  };
  uint64_t C1 = CyclesWith(1);
  uint64_t C4 = CyclesWith(4);
  EXPECT_LT(C4, C1 * 2 / 3) << "stolen parents must add real parallelism";
}

TEST(LazyFuturesTest, DeadlockExampleCompletes) {
  // The paper's key motivation: the semaphore example deadlocks under
  // plain inlining but must complete under lazy futures, because the
  // blocked child can be unwelded from its parent.
  Engine E(lazyConfig(2));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (let ((x (make-semaphore)))
      (let ((f (future (begin (semaphore-p x) 7))))
        (semaphore-v x)
        (touch f)))
  )lisp"),
            7);
  EXPECT_GE(E.stats().SeamsStolen, 1u)
      << "completion requires splitting the welded parent off";
}

TEST(LazyFuturesTest, BlockedChildUnweldsParent) {
  // Parent-child welding (paper): child blocks on a future; under lazy
  // futures the parent is stolen and produces the value the child needs.
  Engine E(lazyConfig(2));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define cell (cons #f '()))
    (define (consume)
      (let ((f (future (let spin ()
                         (if (car cell) (car cell) (spin))))))
        ;; Parent continuation: supply the value the child spins on.
        (set-car! cell 21)
        (* 2 (touch f))))
    (consume)
  )lisp"),
            42);
}

TEST(LazyFuturesTest, NestedSplitsOfOneTask) {
  // Steal twice from the same victim: the second parent's bottom frame is
  // the first stolen seam (the BaseFrame machinery).
  Engine E(lazyConfig(8));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (chain n)
      (if (= n 0)
          1
          (+ (touch (future (chain (- n 1)))) 1)))
    (chain 40)
  )lisp"),
            41);
  EXPECT_GT(E.stats().SeamsStolen, 1u);
}

TEST(LazyFuturesTest, ResultsMatchEagerAcrossWorkloads) {
  const char *Programs[] = {
      "(let loop ((i 0) (a 0)) (if (= i 50) a (loop (+ i 1) (+ a (touch "
      "(future (* i i)))))))",
      "(define (f n) (if (< n 2) n (+ (touch (future (f (- n 1)))) (f (- n "
      "2))))) (f 14)",
      "(define (spawn n) (if (= n 0) '() (cons (future (* n 3)) (spawn (- n "
      "1))))) (define (drain l) (if (null? l) 0 (+ (touch (car l)) (drain "
      "(cdr l))))) (drain (spawn 30))",
  };
  for (const char *P : Programs) {
    Engine Eager(config(3));
    Engine Lazy(lazyConfig(3));
    Value A = evalOk(Eager, P);
    Value B = evalOk(Lazy, P);
    EXPECT_EQ(valueToString(A), valueToString(B)) << P;
  }
}

TEST(LazyFuturesTest, SeamReturnAtInlineCostWhenUnstolen) {
  // On one processor seams are pushed and popped but nothing is stolen;
  // the per-future cost must stay well below eager task creation (~41
  // instructions for step 2 alone).
  Engine Lazy(lazyConfig(1));
  evalOk(Lazy, "(touch (future 0))");
  Engine Eager(config(1));
  evalOk(Eager, "(touch (future 0))");
  EXPECT_LT(Lazy.stats().ElapsedCycles, Eager.stats().ElapsedCycles);
}

} // namespace
