//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos harness: sweep parallel programs across fault plans and seeds,
/// asserting the engine's robustness invariants under every combination:
///
///  - determinism: the same seed and plan reproduce the same run
///    bit-for-bit (same outcome, same cycle counts, same fault count);
///  - accounting: busy + idle + GC cycles tile every processor clock, and
///    recorded() + dropped() == emitted() for the tracer;
///  - observability: every injected fault is a FaultInjected trace event;
///  - degradation: injected errors land in the breakloop (resumable or
///    killable), and the engine stays usable afterwards — the host
///    process never crashes.
///
/// The seed matrix shifts with MULT_CHAOS_SEED_BASE (the CI chaos job
/// runs several bases); failing combinations are appended to
/// $MULT_CHAOS_ARTIFACT_DIR/failing_plans.txt so any failure can be
/// replayed from its spec string.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/FaultPlan.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iterator>

using namespace mult;
using namespace mult::testutil;

namespace {

const char *const Programs[] = {
    // Fine-grained future fan-out (the paper's fib benchmark shape).
    R"lisp(
      (define (fib n)
        (if (< n 2) n
            (+ (touch (future (fib (- n 1)))) (fib (- n 2)))))
      (fib 13)
    )lisp",
    // Allocation-heavy list building with one coarse future.
    R"lisp(
      (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
      (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
      (+ (touch (future (sum (build 300)))) (sum (build 300)))
    )lisp",
    // Dining philosophers on semaphore forks (examples/philosophers
    // parameterized small). Forks are acquired in a fixed global order so
    // the program itself cannot deadlock; a proc-kill can land while a
    // philosopher holds a fork, which recovery must refuse to replay
    // (orphan: holds a semaphore).
    R"lisp(
      (define f0 (make-semaphore 1))
      (define f1 (make-semaphore 1))
      (define f2 (make-semaphore 1))
      (define (think n) (if (= n 0) 0 (+ 1 (think (- n 1)))))
      (define (dine lo hi meals)
        (if (= meals 0) 0
            (begin
              (semaphore-p lo)
              (semaphore-p hi)
              (think 30)
              (semaphore-v hi)
              (semaphore-v lo)
              (+ 1 (dine lo hi (- meals 1))))))
      (+ (touch (future (dine f0 f1 4)))
         (+ (touch (future (dine f1 f2 4)))
            (touch (future (dine f0 f2 4)))))
    )lisp",
};

/// Fault plans; %SEED% is substituted per sweep point.
const char *const PlanTemplates[] = {
    "seed=%SEED%; alloc-fail-every=23; gc-at=2000",
    "seed=%SEED%; steal-fail=0.4",
    "seed=%SEED%; queue-cap=2; stall=1@500+3000",
    "seed=%SEED%; spawn-error=2; touch-error=5",
    // Perturb the adaptive inlining-threshold controller: clamp T to the
    // extremes and wipe pending votes mid-run. Window ordinals are
    // machine-lifetime, so low ones may land in the prelude — the spread
    // covers both prelude and user-code windows deterministically.
    "seed=%SEED%; adapt-clamp=2@0,6@16,12@2; adapt-reset=9; steal-fail=0.2",
    // Fail-stop a processor mid-run: survivors must adopt the dead
    // processor's backlog (lineage re-execution or a restartable
    // processor-lost stop) and every accounting invariant must hold for
    // the dead processor too.
    "seed=%SEED%; proc-kill=1@4000",
    "seed=%SEED%; proc-kill=2@1500,0@9000; steal-fail=0.2",
    "seed=%SEED%; proc-kill=3@2500; gc-at=2500; alloc-fail-every=31",
    // Lazy-future seam splits that fail, alone and under a kill (the
    // LazyFutures knob below switches on when the plan mentions seams).
    "seed=%SEED%; seam-split-fail=1,3,7",
    "seed=%SEED%; seam-split-fail=2,4; proc-kill=1@3000",
};

std::string planFor(const char *Template, uint64_t Seed) {
  std::string S(Template);
  size_t Pos = S.find("%SEED%");
  S.replace(Pos, 6, std::to_string(Seed));
  return S;
}

uint64_t seedBase() {
  if (const char *Env = std::getenv("MULT_CHAOS_SEED_BASE"))
    return std::strtoull(Env, nullptr, 10);
  return 1;
}

/// Runs one sweep point: eval the program, resume through injected-fault
/// breakloops, kill anything still stopped, and check every invariant.
/// Returns a transcript string that must be identical across reruns.
std::string runOnce(const char *Program, const std::string &Plan) {
  EngineConfig C = config(4);
  C.HeapWords = 1 << 16; // small enough that real collections interleave
  C.EnableTracing = true;
  // Run the adaptive threshold controller under chaos too: short windows
  // so plenty close per run, giving adapt-clamp/adapt-reset clauses (and
  // every other fault) a moving controller to perturb.
  C.AdaptiveInline = true;
  C.AdaptiveWindowCycles = 512;
  // Seam-split plans need seams to exist: run those points in the global
  // lazy-futures mode (deterministically derived from the plan text).
  C.LazyFutures = Plan.find("seam-split-fail") != std::string::npos;
  C.Faults = Plan;
  Engine E(C);

  std::string Transcript;
  EvalResult R = E.eval(Program);
  for (int Resumes = 0; Resumes < 5; ++Resumes) {
    Transcript += strFormat("kind=%d error=[%s] value=%s\n",
                            static_cast<int>(R.K), R.Error.c_str(),
                            R.ok() ? valueToString(R.Val).c_str() : "-");
    if (R.K != EvalResult::Kind::RuntimeError ||
        (R.Error.find("injected-fault") == std::string::npos &&
         R.Error.find("processor-lost") == std::string::npos))
      break;
    // Injected faults and processor-lost orphan stops are restartable:
    // resume must make progress.
    R = E.resumeGroup(R.StoppedGroup, Value::falseV());
  }

  // Invariant: group states are coherent. Every stopped group is on the
  // breakloop stack; nothing is in an impossible state.
  std::vector<GroupId> Stopped = E.stoppedGroups();
  for (const Group &G : E.allGroups()) {
    if (G.State == GroupState::Stopped && !G.Internal)
      EXPECT_NE(std::find(Stopped.begin(), Stopped.end(), G.Id),
                Stopped.end())
          << "stopped group " << G.Id << " missing from the breakloop stack";
  }
  // Kill whatever is still stopped; the engine must stay usable.
  for (GroupId Id : Stopped)
    E.killGroup(Id);
  EXPECT_EQ(evalFixnum(E, "(+ 40 2)"), 42)
      << "engine unusable after the chaos run";

  // Invariant: busy + idle + GC cycles tile every processor clock, and
  // the adaptive threshold stays in bounds even when faults clamp it.
  for (unsigned I = 0; I < 4; ++I) {
    const Processor &P = E.machine().processor(I);
    EXPECT_EQ(P.ClockAtReset + P.BusyCycles + P.IdleCycles + P.GcCycles,
              P.Clock)
        << "cycle accounting leak on processor " << I;
    EXPECT_GE(P.Adapt.T, E.machine().adaptiveConfig().MinT)
        << "adaptive T below MinT on processor " << I;
    EXPECT_LE(P.Adapt.T, E.machine().adaptiveConfig().MaxT)
        << "adaptive T above MaxT on processor " << I;
  }

  // Invariant: trace bookkeeping balances, and every injected fault was
  // recorded (the unbounded sink drops nothing).
  const Tracer &Tr = E.tracer();
  EXPECT_EQ(Tr.recorded() + Tr.dropped(), Tr.emitted());
  uint64_t FaultEvents = 0;
  for (const TraceEvent &Ev : Tr.events())
    if (Ev.Kind == TraceEventKind::FaultInjected)
      ++FaultEvents;
  EXPECT_EQ(FaultEvents, E.stats().FaultsInjected)
      << "every injected fault must be a FaultInjected trace event";

  // Invariant: steal probes partition into successes and failures.
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.Steals + S.StealsFailed, S.StealAttempts);

  // Invariant: recovery counters are coherent. No kill, no recovery
  // footprint; recovery cycles accrue only for re-spawned tasks; the
  // machine never loses its last processor.
  if (S.ProcsKilled == 0) {
    EXPECT_EQ(S.TasksRecovered, 0u);
    EXPECT_EQ(S.TasksOrphaned, 0u);
    EXPECT_EQ(S.RecoveryCycles, 0u);
  }
  if (S.RecoveryCycles > 0)
    EXPECT_GT(S.TasksRecovered, 0u)
        << "recovery cycles without a recovered task";
  unsigned DeadProcs = 0;
  for (unsigned I = 0; I < 4; ++I)
    DeadProcs += E.machine().processor(I).Dead;
  EXPECT_EQ(DeadProcs, S.ProcsKilled);
  EXPECT_LT(DeadProcs, 4u) << "the last live processor must survive";

  Transcript += strFormat(
      "elapsed=%llu faults=%llu steals=%llu/%llu collections=%llu "
      "heapstops=%llu\n",
      static_cast<unsigned long long>(S.ElapsedCycles),
      static_cast<unsigned long long>(S.FaultsInjected),
      static_cast<unsigned long long>(S.Steals),
      static_cast<unsigned long long>(S.StealAttempts),
      static_cast<unsigned long long>(E.gcStats().Collections),
      static_cast<unsigned long long>(S.HeapExhaustedStops));
  // The recovery transcript: a given plan and seed must kill, recover and
  // orphan identically (and charge the same re-execution bill) on replay.
  Transcript += strFormat(
      "killed=%llu recovered=%llu orphaned=%llu recoverycycles=%llu\n",
      static_cast<unsigned long long>(S.ProcsKilled),
      static_cast<unsigned long long>(S.TasksRecovered),
      static_cast<unsigned long long>(S.TasksOrphaned),
      static_cast<unsigned long long>(S.RecoveryCycles));
  // Controller state is part of the reproducibility contract: same seed
  // and plan must land every processor on the same threshold.
  Transcript += strFormat(
      "adaptwindows=%llu raises=%llu lowers=%llu",
      static_cast<unsigned long long>(S.AdaptWindows),
      static_cast<unsigned long long>(S.ThresholdRaises),
      static_cast<unsigned long long>(S.ThresholdLowers));
  for (unsigned I = 0; I < 4; ++I)
    Transcript += strFormat(" t%u=%u", I, E.machine().processor(I).Adapt.T);
  Transcript += "\n";
  return Transcript;
}

void noteFailure(size_t ProgIdx, const std::string &Plan) {
  const char *Dir = std::getenv("MULT_CHAOS_ARTIFACT_DIR");
  if (!Dir)
    return;
  std::ofstream Out(std::string(Dir) + "/failing_plans.txt",
                    std::ios::app);
  Out << "program=" << ProgIdx << " MULT_FAULTS=\"" << Plan << "\"\n";
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, SweepIsDeterministicAndInvariantPreserving) {
  uint64_t Seed = GetParam();
  for (size_t Pi = 0; Pi < std::size(Programs); ++Pi) {
    for (const char *Template : PlanTemplates) {
      std::string Plan = planFor(Template, Seed);
      SCOPED_TRACE("program " + std::to_string(Pi) + " plan `" + Plan + "`");
      std::string First = runOnce(Programs[Pi], Plan);
      std::string Second = runOnce(Programs[Pi], Plan);
      EXPECT_EQ(First, Second)
          << "same seed and plan must reproduce the same run exactly";
      if (::testing::Test::HasFailure()) {
        noteFailure(Pi, Plan);
        return; // one replayable failure beats a wall of them
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(seedBase(), seedBase() + 1,
                                           seedBase() + 2));

/// A pathological plan mixing everything at once: the engine must degrade
/// gracefully, not crash, even when faults overlap.
TEST(ChaosTest, KitchenSinkPlanNeverCrashesTheHost) {
  std::string Plan =
      "seed=99; alloc-fail-every=11; gc-at=100,1000,5000; steal-fail=0.8;"
      " queue-cap=1; spawn-error=1,3; touch-error=2,7;"
      " stall=0@50+500,2@1000+2000,3@1+1;"
      " adapt-clamp=1@16,4@0,8@16; adapt-reset=2,6;"
      " proc-kill=3@900,1@4000; seam-split-fail=1,2";
  for (const char *Program : Programs) {
    SCOPED_TRACE(Program);
    runOnce(Program, Plan);
  }
}

} // namespace
