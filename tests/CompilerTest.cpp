//===----------------------------------------------------------------------===//
///
/// \file
/// Compiler pipeline tests: expander output, analyzer diagnostics,
/// bytecode shape, and the touch optimizer (paper section 2.2).
///
//===----------------------------------------------------------------------===//

#include "compiler/CodeGen.h"
#include "compiler/Expander.h"
#include "reader/Reader.h"

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

//===----------------------------------------------------------------------===//
// Expander
//===----------------------------------------------------------------------===//

class ExpanderTest : public ::testing::Test {
protected:
  ExpanderTest()
      : H(Heap::Config{}), Syms(H), B(H, Syms), Exp(B) {}

  std::string expand(std::string_view Src) {
    Reader R(B, Src);
    ReadResult RR = R.read();
    EXPECT_TRUE(RR.ok()) << RR.Error;
    Expander::Result ER = Exp.expand(RR.Datum);
    EXPECT_TRUE(ER.Ok) << ER.Error;
    return ER.Ok ? valueToString(ER.Datum) : "<error>";
  }

  std::string expandError(std::string_view Src) {
    Reader R(B, Src);
    ReadResult RR = R.read();
    EXPECT_TRUE(RR.ok());
    Expander::Result ER = Exp.expand(RR.Datum);
    EXPECT_FALSE(ER.Ok) << "expected expansion failure for: " << Src;
    return ER.Error;
  }

  Heap H;
  SymbolTable Syms;
  DatumBuilder B;
  Expander Exp;
};

TEST_F(ExpanderTest, CoreFormsPassThrough) {
  EXPECT_EQ(expand("(if a b c)"), "(if a b c)");
  EXPECT_EQ(expand("(quote (let x))"), "(quote (let x))");
  EXPECT_EQ(expand("(lambda (x) x)"), "(lambda (x) x)");
}

TEST_F(ExpanderTest, DerivedForms) {
  EXPECT_EQ(expand("(when t a b)"), "(if t (begin a b) #f)");
  EXPECT_EQ(expand("(unless t a)"), "(if t #f (begin a))");
  EXPECT_EQ(expand("(and)"), "#t");
  EXPECT_EQ(expand("(and a)"), "a");
  EXPECT_EQ(expand("(and a b)"), "(if a b #f)");
  EXPECT_EQ(expand("(or)"), "#f");
  EXPECT_EQ(expand("(cond (else 1))"), "(begin 1)");
  EXPECT_EQ(expand("(let* () 5)"), "(let () 5)");
  // define procedure sugar.
  EXPECT_EQ(expand("(define (f x) x)"), "(define f (lambda (x) x))");
  // Multi-form bodies become begins.
  EXPECT_EQ(expand("(lambda (x) a b)"), "(lambda (x) (begin a b))");
}

TEST_F(ExpanderTest, LetrecViaBoxes) {
  std::string S = expand("(letrec ((f 1)) f)");
  EXPECT_NE(S.find("(let ((f #f)) (begin (set! f 1) f))"),
            std::string::npos)
      << S;
}

TEST_F(ExpanderTest, NamedLetBecomesRecursion) {
  std::string S = expand("(let loop ((i 0)) (loop i))");
  EXPECT_NE(S.find("lambda"), std::string::npos);
  EXPECT_NE(S.find("set! loop"), std::string::npos);
}

TEST_F(ExpanderTest, GensymsCannotCollide) {
  std::string S = expand("(or a b)");
  EXPECT_NE(S.find("#:"), std::string::npos)
      << "expander temporaries use the unreadable #: prefix: " << S;
}

TEST_F(ExpanderTest, BindUsesDeepBindingPrims) {
  std::string S = expand("(bind ((v 1)) v)");
  EXPECT_NE(S.find("%dyn-push"), std::string::npos) << S;
  EXPECT_NE(S.find("%dyn-pop"), std::string::npos) << S;
}

TEST_F(ExpanderTest, Errors) {
  expandError("(if)");
  expandError("(set! 3 4)");
  expandError("(let ((x 1 2)) x)");
  expandError("(do x y)");
  expandError("(unquote x)");
  expandError("(define-fluid 3 4)");
}

//===----------------------------------------------------------------------===//
// Code generation and the touch optimizer
//===----------------------------------------------------------------------===//

/// Compiles one form under the given options and returns the compile
/// stats plus disassembly of every template created.
struct CompileOutput {
  CompileStats Stats;
  std::string Listing;
  bool Ok;
  std::string Error;
};

CompileOutput compileWith(std::string_view Src, bool Touches, bool Optimize) {
  Heap H{Heap::Config{}};
  SymbolTable Syms(H);
  DatumBuilder B(H, Syms);
  CodeRegistry Reg(H);
  CompilerOptions Opts;
  Opts.EmitTouchChecks = Touches;
  Opts.OptimizeTouches = Optimize;
  Compiler C(B, Reg, Opts);

  Reader R(B, Src);
  ReadResult RR = R.read();
  EXPECT_TRUE(RR.ok()) << RR.Error;
  Compiler::Result CR = C.compile(RR.Datum);
  CompileOutput Out;
  Out.Ok = CR.ok();
  Out.Error = CR.Error;
  Out.Stats = C.stats();
  for (size_t I = 0; I < Reg.size(); ++I)
    Out.Listing += disassemble(*Reg.at(I));
  return Out;
}

TEST(TouchOptTest, TouchesDoubleCheckEveryStrictOperand) {
  // (+ a b) with unknown a, b: two touches.
  auto Out = compileWith("(lambda (a b) (+ a b))", true, false);
  EXPECT_EQ(Out.Stats.StrictPositions, 2u);
  EXPECT_EQ(Out.Stats.TouchesEmitted, 2u);
  EXPECT_EQ(Out.Stats.TouchesEliminated, 0u);
}

TEST(TouchOptTest, ConstantsNeedNoTouch) {
  auto Out = compileWith("(lambda () (+ 1 2))", true, true);
  EXPECT_EQ(Out.Stats.TouchesEliminated, 2u);
  EXPECT_EQ(Out.Stats.TouchesEmitted, 0u);
}

TEST(TouchOptTest, OnceTestedNotTestedAgain) {
  // The paper's exact claim: "if a value has been tested once, it doesn't
  // need to be tested the next time it is referenced."
  auto Out = compileWith("(lambda (a) (+ (+ a 1) (+ a 2)))", true, true);
  // Strict positions: six operand slots (two inner adds and the outer
  // add); 'a' touched once, its second use free; constants and the inner
  // results are non-future.
  EXPECT_EQ(Out.Stats.StrictPositions, 6u);
  EXPECT_EQ(Out.Stats.TouchesEmitted, 1u);
  EXPECT_EQ(Out.Stats.TouchesEliminated, 5u);
}

TEST(TouchOptTest, ArithmeticResultsAreNonFuture) {
  auto Out = compileWith("(lambda (a b) (+ (+ a b) (* a b)))", true, true);
  // a and b touched once each; their later uses and the two inner
  // results are free.
  EXPECT_EQ(Out.Stats.TouchesEmitted, 2u);
}

TEST(TouchOptTest, CarResultsAreUnknown) {
  // Structures store futures without touching, so (car x) may yield a
  // future even after x was touched.
  auto Out = compileWith("(lambda (p) (+ (car p) 1))", true, true);
  // p touched for car; the car result touched for +; constant free.
  EXPECT_EQ(Out.Stats.TouchesEmitted, 2u);
}

TEST(TouchOptTest, IfJoinsMeetFacts) {
  // The variable is touched on only one path; after the join it is
  // unknown again.
  auto Out = compileWith(
      "(lambda (a c) (begin (if c (+ a 1) 0) (+ a 2)))", true, true);
  // touches: c (if test), a (then-branch +), a again after join.
  EXPECT_EQ(Out.Stats.TouchesEmitted, 3u);

  // Touched on *both* paths: no re-touch after the join.
  auto Out2 = compileWith(
      "(lambda (a c) (begin (if c (+ a 1) (+ a 2)) (+ a 3)))", true, true);
  EXPECT_EQ(Out2.Stats.TouchesEmitted, 3u); // c, a(then), a(else); join free
}

TEST(TouchOptTest, FactsDoNotCrossLambdas) {
  // The inner lambda runs later, possibly with a future rebound... the
  // capture is a snapshot, but analysis is first-order: fresh facts.
  auto Out = compileWith(
      "(lambda (a) (begin (+ a 1) (lambda () (+ a 2))))", true, true);
  EXPECT_EQ(Out.Stats.TouchesEmitted, 2u); // once outside, once inside
}

TEST(TouchOptTest, BoxedVariablesAlwaysTouch) {
  // An assigned variable may be overwritten with a future by another
  // task: every use re-touches.
  auto Out = compileWith(
      "(lambda (a) (begin (set! a (+ a 1)) (+ a 1) (+ a 2)))", true, true);
  // Uses of a: 3 strict positions, all touched (boxed).
  EXPECT_EQ(Out.Stats.TouchesEmitted, 3u);
}

TEST(TouchOptTest, T3ModeEmitsNoTouches) {
  auto Out = compileWith("(lambda (a b) (+ (car a) (cdr b)))", false, false);
  EXPECT_EQ(Out.Stats.TouchesEmitted, 0u);
  EXPECT_EQ(Out.Stats.StrictPositions, 0u);
  EXPECT_EQ(Out.Listing.find("touch"), std::string::npos) << Out.Listing;
}

TEST(TouchOptTest, TouchBackFusion) {
  // Strict use of an unboxed local compiles to the write-back touch so
  // later uses can skip their checks.
  auto Out = compileWith("(lambda (a) (+ a 1))", true, true);
  EXPECT_NE(Out.Listing.find("touch-back"), std::string::npos)
      << Out.Listing;
}

TEST(CodeGenTest, TrivialCallCostShape) {
  // ((lambda () 0)) must compile to closure + call + const + return.
  auto Out = compileWith("((lambda () 0))", true, true);
  EXPECT_NE(Out.Listing.find("tail-call"), std::string::npos) << Out.Listing;
  EXPECT_NE(Out.Listing.find("push-fixnum"), std::string::npos);
}

TEST(CodeGenTest, FutureCompilesToClosurePlusFutureOp) {
  // (future X) == (*future (lambda () X)): closure creation then the
  // runtime call (paper section 2.2.1).
  auto Out = compileWith("(lambda (x) (future (+ x 1)))", true, true);
  EXPECT_NE(Out.Listing.find("closure"), std::string::npos);
  EXPECT_NE(Out.Listing.find("future"), std::string::npos);
}

TEST(CodeGenTest, FreeVariablesAreCopiedIntoClosures) {
  auto Out = compileWith("(lambda (x y) (lambda () (+ x y)))", true, true);
  // The inner template reads its captures via `free`.
  EXPECT_NE(Out.Listing.find("free"), std::string::npos) << Out.Listing;
}

TEST(CodeGenTest, TailPositionsUseTailCall) {
  auto Out = compileWith("(define (loop i) (loop (+ i 1)))", true, true);
  EXPECT_NE(Out.Listing.find("tail-call"), std::string::npos);
}

TEST(CodeGenTest, NonIntegrableAfterUserDefine) {
  // Compile two forms with the same compiler: after (define car ...) the
  // second form calls the global, not the primitive.
  Heap H{Heap::Config{}};
  SymbolTable Syms(H);
  DatumBuilder B(H, Syms);
  CodeRegistry Reg(H);
  Compiler C(B, Reg, CompilerOptions{});
  Reader R(B, "(define (car x) 'mine) (car 5)");
  std::string Err;
  std::vector<Value> Forms = R.readAll(Err);
  ASSERT_EQ(Forms.size(), 2u);
  ASSERT_TRUE(C.compile(Forms[0]).ok());
  Compiler::Result Second = C.compile(Forms[1]);
  ASSERT_TRUE(Second.ok());
  std::string Listing = disassemble(*Second.TopCode);
  EXPECT_NE(Listing.find("global-ref"), std::string::npos) << Listing;
}

} // namespace
