//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection and graceful degradation: every
/// injectable fault must leave the engine inspectable (breakloop),
/// resumable or killable — never crash the host process.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/FaultPlan.h"
#include "ui/Repl.h"

#include <tuple>

using namespace mult;
using namespace mult::testutil;

namespace {

EngineConfig faultConfig(unsigned Procs, std::string Spec) {
  EngineConfig C = config(Procs);
  C.Faults = std::move(Spec);
  return C;
}

//===----------------------------------------------------------------------===//
// Plan parsing.
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, ParsesEveryClause) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse(
      "seed=7; alloc-fail=3,1; alloc-fail-every=100; gc-at=500,250;"
      " spawn-error=2; touch-error=4; steal-fail=0.25; steal-fail-at=6;"
      " queue-cap=8; stall=1@100+50,0@0+10",
      P, Err))
      << Err;
  EXPECT_EQ(P.Seed, 7u);
  ASSERT_EQ(P.AllocFailAt.size(), 2u); // sorted + deduped
  EXPECT_EQ(P.AllocFailAt[0], 1u);
  EXPECT_EQ(P.AllocFailAt[1], 3u);
  EXPECT_EQ(P.AllocFailEvery, 100u);
  ASSERT_EQ(P.GcAtCycles.size(), 2u);
  EXPECT_EQ(P.GcAtCycles[0], 250u);
  EXPECT_EQ(P.SpawnErrorAt, std::vector<uint64_t>{2});
  EXPECT_EQ(P.TouchErrorAt, std::vector<uint64_t>{4});
  EXPECT_DOUBLE_EQ(P.StealFailProb, 0.25);
  EXPECT_EQ(P.StealFailAt, std::vector<uint64_t>{6});
  ASSERT_TRUE(P.QueueCap.has_value());
  EXPECT_EQ(*P.QueueCap, 8u);
  ASSERT_EQ(P.Stalls.size(), 2u);
  EXPECT_EQ(P.Stalls[0].Begin, 0u); // stable-sorted by Begin
  EXPECT_EQ(P.Stalls[1].Proc, 1u);
  EXPECT_EQ(P.Stalls[1].Length, 50u);
  EXPECT_FALSE(P.empty());
}

TEST(FaultPlanTest, ParsesProcKillAndSeamSplitFail) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse(
      "proc-kill=2@5000,0@1000; seam-split-fail=7,3,3", P, Err))
      << Err;
  ASSERT_EQ(P.ProcKills.size(), 2u); // sorted by virtual-time mark
  EXPECT_EQ(P.ProcKills[0].Proc, 0u);
  EXPECT_EQ(P.ProcKills[0].AtCycles, 1000u);
  EXPECT_EQ(P.ProcKills[1].Proc, 2u);
  EXPECT_EQ(P.ProcKills[1].AtCycles, 5000u);
  ASSERT_EQ(P.SeamSplitFailAt.size(), 2u); // sorted + deduped
  EXPECT_EQ(P.SeamSplitFailAt[0], 3u);
  EXPECT_EQ(P.SeamSplitFailAt[1], 7u);
  EXPECT_FALSE(P.empty());
}

TEST(FaultPlanTest, ProcKillRoundTrips) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse("proc-kill=1@200,3@90000; seam-split-fail=2",
                               P, Err));
  FaultPlan Q;
  ASSERT_TRUE(FaultPlan::parse(P.format(), Q, Err)) << P.format();
  EXPECT_EQ(P.format(), Q.format());
}

TEST(FaultPlanTest, RejectsMalformedProcKillAndSeamSplitFail) {
  FaultPlan P;
  std::string Err;
  EXPECT_FALSE(FaultPlan::parse("proc-kill=1", P, Err)) << "missing @CYCLES";
  EXPECT_FALSE(FaultPlan::parse("proc-kill=@5", P, Err));
  EXPECT_FALSE(FaultPlan::parse("proc-kill=99999@5", P, Err))
      << "processor ids above 0xffff are nonsense";
  EXPECT_FALSE(FaultPlan::parse("seam-split-fail=0", P, Err))
      << "ordinals are 1-based";
  EXPECT_FALSE(FaultPlan::parse("seam-split-fail=x", P, Err));
}

TEST(FaultPlanTest, FormatRoundTrips) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse(
      "seed=9; alloc-fail=5; gc-at=100; steal-fail=0.5; queue-cap=2;"
      " stall=2@10+20",
      P, Err));
  FaultPlan Q;
  ASSERT_TRUE(FaultPlan::parse(P.format(), Q, Err)) << P.format();
  EXPECT_EQ(P.format(), Q.format());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  FaultPlan P;
  std::string Err;
  EXPECT_FALSE(FaultPlan::parse("frobnicate=1", P, Err));
  EXPECT_NE(Err.find("unknown fault clause"), std::string::npos) << Err;
  EXPECT_FALSE(FaultPlan::parse("alloc-fail=zero", P, Err));
  EXPECT_FALSE(FaultPlan::parse("alloc-fail=0", P, Err))
      << "ordinals are 1-based";
  EXPECT_FALSE(FaultPlan::parse("steal-fail=1.5", P, Err));
  EXPECT_FALSE(FaultPlan::parse("stall=1@5", P, Err)) << "missing +LEN";
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(FaultPlan::parse("", P, Err));
  EXPECT_TRUE(P.empty());
  ASSERT_TRUE(FaultPlan::parse("seed=42", P, Err));
  EXPECT_TRUE(P.empty()) << "a seed alone cannot fire any fault";
}

//===----------------------------------------------------------------------===//
// Injection sites, one by one.
//===----------------------------------------------------------------------===//

TEST(FaultTest, InjectedAllocFailuresAreTransparent) {
  // Each forced failure runs a real collection and the retry succeeds; the
  // program cannot tell (the result is unchanged).
  Engine E(faultConfig(1, "alloc-fail=1,2,3"));
  EXPECT_EQ(evalFixnum(E, "(car (cons 41 1))"), 41);
  EXPECT_EQ(E.stats().FaultsInjected, 3u);
  EXPECT_GE(E.gcStats().Collections, 3u)
      << "every injected failure must trigger a real collection";
}

TEST(FaultTest, PeriodicAllocFailuresSurviveARealWorkload) {
  Engine E(faultConfig(2, "alloc-fail-every=37"));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
    (length (build 500))
  )lisp"),
            500);
  EXPECT_GT(E.stats().FaultsInjected, 0u);
}

TEST(FaultTest, SpawnErrorStopsTheGroupAndResumeRetries) {
  Engine E(faultConfig(2, "spawn-error=1"));
  EvalResult R = E.eval("(touch (future (+ 40 2)))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  EXPECT_NE(R.Error.find("injected-fault: future spawn error"),
            std::string::npos)
      << R.Error;
  // The stop is restartable: resume re-executes the spawn (the injector's
  // counter is already past the ordinal) and the value comes out intact.
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::falseV());
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Val.asFixnum(), 42);
  EXPECT_EQ(E.stats().FaultsInjected, 1u);
}

TEST(FaultTest, TouchErrorStopsTheGroupAndResumeRetries) {
  Engine E(faultConfig(2, "touch-error=1"));
  EvalResult R = E.eval("(touch (future 41))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  EXPECT_NE(R.Error.find("injected-fault: touch error"), std::string::npos)
      << R.Error;
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::falseV());
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Val.asFixnum(), 41);
}

TEST(FaultTest, InjectedFaultsAreKillable) {
  Engine E(faultConfig(2, "spawn-error=1"));
  EvalResult R = E.eval("(touch (future 1))");
  ASSERT_FALSE(R.ok());
  E.killGroup(R.StoppedGroup);
  EXPECT_EQ(evalFixnum(E, "(touch (future 5))"), 5)
      << "the engine must keep working after a killed injected fault";
}

TEST(FaultTest, StealFailuresKeepTheAccountingIdentity) {
  // Every probe fails: the program still completes (each processor drains
  // its own queues) and Steals + StealsFailed == StealAttempts holds.
  Engine E(faultConfig(4, "steal-fail=1.0"));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (fib n)
      (if (< n 2) n
          (+ (touch (future (fib (- n 1)))) (fib (- n 2)))))
    (fib 10)
  )lisp"),
            55);
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.Steals, 0u);
  EXPECT_EQ(S.Steals + S.StealsFailed, S.StealAttempts);
  EXPECT_GT(S.FaultsInjected, 0u);
}

TEST(FaultTest, ProbabilisticStealFailuresAreSeedDeterministic) {
  auto Run = [](uint64_t Seed) {
    Engine E(faultConfig(4, "seed=" + std::to_string(Seed) +
                                "; steal-fail=0.5"));
    evalOk(E, R"lisp(
      (define (fib n)
        (if (< n 2) n
            (+ (touch (future (fib (- n 1)))) (fib (- n 2)))))
      (fib 12)
    )lisp");
    return std::pair(E.stats().FaultsInjected, E.stats().ElapsedCycles);
  };
  EXPECT_EQ(Run(11), Run(11)) << "same seed must reproduce the same run";
}

TEST(FaultTest, QueueCapClampForcesInlining) {
  // No inline threshold is configured, so without the clamp nothing would
  // inline; a cap of 1 inlines every spawn past the first queued task.
  Engine E(faultConfig(1, "queue-cap=1"));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (spawn n) (if (= n 0) '() (cons (future n) (spawn (- n 1)))))
    (length (spawn 8))
  )lisp"),
            8);
  EXPECT_GE(E.stats().TasksInlined, 7u);
  EXPECT_GE(E.stats().FaultsInjected, 7u);
}

TEST(FaultTest, StallWindowCountsAsIdleTime) {
  Engine E(faultConfig(2, "stall=1@0+100000"));
  uint64_t IdleBefore = E.stats().IdleCycles;
  EXPECT_EQ(evalFixnum(E, "(touch (future (+ 1 2)))"), 3);
  EXPECT_EQ(E.stats().FaultsInjected, 1u);
  EXPECT_GE(E.stats().IdleCycles - IdleBefore, 100000u)
      << "the offline window must be accounted as idle so the clock tiles";
  for (unsigned I = 0; I < 2; ++I) {
    const Processor &P = E.machine().processor(I);
    EXPECT_EQ(P.ClockAtReset + P.BusyCycles + P.IdleCycles + P.GcCycles,
              P.Clock)
        << "cycle accounting leak on processor " << I;
  }
}

TEST(FaultTest, ForcedGcFiresAtTheVirtualTimeMark) {
  Engine E(faultConfig(1, "gc-at=1"));
  uint64_t Before = E.gcStats().Collections;
  EXPECT_EQ(evalFixnum(E, "(+ 1 2)"), 3);
  EXPECT_EQ(E.gcStats().Collections, Before + 1);
  EXPECT_EQ(E.stats().FaultsInjected, 1u);
}

TEST(FaultTest, FaultsRecordTraceEvents) {
  EngineConfig C = faultConfig(1, "alloc-fail=1,2");
  C.EnableTracing = true;
  Engine E(C);
  evalOk(E, "(cons 1 2)");
  uint64_t Seen = 0;
  for (const TraceEvent &Ev : E.tracer().events())
    if (Ev.Kind == TraceEventKind::FaultInjected) {
      ++Seen;
      EXPECT_EQ(Ev.A, static_cast<uint64_t>(FaultKind::AllocFail));
      EXPECT_EQ(Ev.C, Seen) << "payload C is the running fault count";
    }
  EXPECT_EQ(Seen, E.stats().FaultsInjected);
  EXPECT_EQ(Seen, 2u);
}

TEST(FaultTest, SeamSplitFailuresDegradeToInlineEvaluation) {
  // The thief backs off the first three split attempts; the seams stay
  // with their owners and are squashed at inline cost on return. The
  // program cannot tell, and the futures-only-at-steal-time invariant
  // survives the interference.
  EngineConfig C = faultConfig(4, "seam-split-fail=1,2,3");
  C.LazyFutures = true;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (tree n)
      (if (< n 2) 1 (+ (touch (future (tree (- n 1))))
                       (touch (future (tree (- n 2)))))))
    (tree 14)
  )lisp"),
            610);
  EXPECT_EQ(E.stats().FaultsInjected, 3u);
  EXPECT_EQ(E.stats().SeamsStolen, E.stats().FuturesCreated)
      << "a failed split must not leak a future";
}

TEST(FaultTest, SeamSplitFailuresAreDeterministic) {
  auto Run = [] {
    EngineConfig C = faultConfig(2, "seam-split-fail=1,3,5,7,9");
    C.LazyFutures = true;
    Engine E(C);
    evalOk(E, R"lisp(
      (define (tree n)
        (if (< n 2) 1 (+ (touch (future (tree (- n 1))))
                         (touch (future (tree (- n 2)))))))
      (tree 12)
    )lisp");
    return std::tuple(E.stats().FaultsInjected, E.stats().SeamsStolen,
                      E.stats().ElapsedCycles);
  };
  EXPECT_EQ(Run(), Run())
      << "the same plan must perturb the same split attempts";
}

//===----------------------------------------------------------------------===//
// Watchdog and deadlock reporting.
//===----------------------------------------------------------------------===//

TEST(FaultTest, CycleBudgetWatchdogStopsRunawayGroups) {
  EngineConfig C = config(1);
  C.MaxCycles = 100000;
  Engine E(C);
  EvalResult R = E.eval("(let loop () (loop))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  EXPECT_NE(R.Error.find("cycle-budget-exhausted"), std::string::npos)
      << R.Error;
  ASSERT_NE(E.findGroup(R.StoppedGroup), nullptr);
  // Resume grants a fresh budget; the loop is still infinite, so the
  // watchdog fires again rather than hanging the host.
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::falseV());
  ASSERT_FALSE(After.ok());
  EXPECT_NE(After.Error.find("cycle-budget-exhausted"), std::string::npos);
  E.killGroup(E.currentStoppedGroup());
  EXPECT_EQ(evalFixnum(E, "(+ 1 2)"), 3);
}

TEST(FaultTest, DeadlockReportNamesTheWaitCycle) {
  // A future that touches itself: the child task waits on the very future
  // it is computing, a one-task wait cycle.
  Engine E(config(1));
  evalOk(E, "(define f #f)");
  EvalResult R = E.eval("(begin (set! f (future (touch f))) (touch f))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::Deadlock));
  EXPECT_NE(R.Error.find("blocked tasks:"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("wait cycle:"), std::string::npos) << R.Error;
}

TEST(FaultTest, SemaphoreDeadlockListsBlockedTasks) {
  Engine E(config(1));
  EvalResult R = E.eval("(semaphore-p (make-semaphore))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::Deadlock));
  EXPECT_NE(R.Error.find("semaphore"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// The REPL's :faults command.
//===----------------------------------------------------------------------===//

class FaultReplTest : public ::testing::Test {
protected:
  FaultReplTest() : E(config(1)), Out(Buf), R(E, Out) {}

  std::string line(std::string_view L) {
    Buf.clear();
    R.processLine(L);
    return Buf;
  }

  Engine E;
  std::string Buf;
  StringOutStream Out;
  Repl R;
};

TEST_F(FaultReplTest, ArmShowDisarm) {
  EXPECT_NE(line(":faults").find("off"), std::string::npos);
  EXPECT_NE(line(":faults alloc-fail=1").find("armed"), std::string::npos);
  EXPECT_NE(line(":faults").find("alloc-fail=1"), std::string::npos);
  EXPECT_NE(line(":faults bogus=1").find("bad fault plan"),
            std::string::npos);
  // A malformed spec keeps the previous plan armed.
  EXPECT_TRUE(E.faults().armed());
  EXPECT_NE(line(":faults off").find("off"), std::string::npos);
  EXPECT_FALSE(E.faults().armed());
}

TEST_F(FaultReplTest, InjectedFaultEntersTheBreakloop) {
  line(":faults spawn-error=1");
  std::string S = line("(touch (future 1))");
  EXPECT_NE(S.find("injected-fault"), std::string::npos) << S;
  EXPECT_NE(S.find("stopped"), std::string::npos) << S;
  EXPECT_EQ(line(":resume"), "1\n");
}

} // namespace
