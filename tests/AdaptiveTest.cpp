//===----------------------------------------------------------------------===//
///
/// \file
/// The adaptive inlining-threshold controller (sched/Adaptive.h) and the
/// per-future-site policy table (core/SitePolicies.h): pure decision
/// logic, queue high-water semantics, policy file round-trips, and
/// end-to-end engine behavior including the adapt-* fault clauses.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/FaultPlan.h"
#include "obs/Trace.h"
#include "sched/Adaptive.h"
#include "sched/Machine.h"
#include "sched/TaskQueues.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

using namespace mult;
using namespace mult::testutil;

namespace {

// A future-heavy doubly recursive summation; every level spawns one task.
constexpr const char PsumSource[] = R"lisp(
    (define (psum n)
      (if (< n 2)
          n
          (+ (touch (future (psum (- n 1)))) (psum (- n 2)))))
)lisp";

//===----------------------------------------------------------------------===//
// TaskQueues high-water marks: run-wide vs window
//===----------------------------------------------------------------------===//

TEST(TaskQueuesHighWater, WindowResetLeavesRunWideMarks) {
  TaskQueues Q;
  uint64_t Now = 0;
  Q.pushNew(TaskId(1), Now);
  Q.pushNew(TaskId(2), Now);
  Q.pushNew(TaskId(3), Now);
  EXPECT_EQ(Q.newHighWater(), 3u);
  EXPECT_EQ(Q.windowHighWater(), 3u);
  EXPECT_EQ(Q.newPushes(), 3u);

  uint64_t Cycles = 0;
  Q.popNew(Now, Cycles);
  Q.popNew(Now, Cycles);
  // Window marks rebase to the *current* depth (1), not zero: what is
  // still queued is still high water for the next window. Run-wide marks
  // are untouched.
  Q.resetWindowHighWater();
  EXPECT_EQ(Q.windowHighWater(), 1u);
  EXPECT_EQ(Q.newHighWater(), 3u);

  Q.pushNew(TaskId(4), Now);
  EXPECT_EQ(Q.windowHighWater(), 2u);
  EXPECT_EQ(Q.newHighWater(), 3u);
  EXPECT_EQ(Q.newPushes(), 4u);
}

TEST(TaskQueuesHighWater, StatsResetRebasesBothViews) {
  TaskQueues Q;
  uint64_t Now = 0;
  Q.pushNew(TaskId(1), Now);
  Q.pushSuspended(TaskId(2), Now);
  EXPECT_EQ(Q.windowHighWater(), 2u);
  uint64_t Cycles = 0;
  Q.popSuspended(Now, Cycles);
  Q.resetHighWater();
  // Both views rebase to current sizes: one new task still queued.
  EXPECT_EQ(Q.newHighWater(), 1u);
  EXPECT_EQ(Q.suspendedHighWater(), 0u);
  EXPECT_EQ(Q.windowHighWater(), 1u);
  // The push counter is monotonic; deltas, not resets, give window rates.
  EXPECT_EQ(Q.newPushes(), 1u);
}

TEST(TaskQueuesHighWater, SuspendedPushesRaiseWindowMark) {
  TaskQueues Q;
  uint64_t Now = 0;
  Q.pushNew(TaskId(1), Now);
  Q.resetWindowHighWater();
  Q.pushSuspended(TaskId(2), Now);
  Q.pushSuspended(TaskId(3), Now);
  EXPECT_EQ(Q.windowHighWater(), 3u);
  EXPECT_EQ(Q.newPushes(), 1u); // suspended pushes are not new-task pushes
}

//===----------------------------------------------------------------------===//
// decideStep: the demand-tracking vote
//===----------------------------------------------------------------------===//

WindowSignals signals(uint64_t StolenFrom, unsigned Processors,
                      uint64_t Attempts = 0, uint64_t Failed = 0) {
  WindowSignals W;
  W.StolenFrom = StolenFrom;
  W.Processors = Processors;
  W.StealAttempts = Attempts;
  W.StealsFailed = Failed;
  return W;
}

TEST(AdaptiveDecide, DemandAboveThresholdRaises) {
  AdaptiveTConfig Cfg;
  EXPECT_EQ(adaptive::decideStep(Cfg, 1, signals(/*StolenFrom=*/3, 4)), +1);
  EXPECT_EQ(adaptive::decideStep(Cfg, 2, signals(3, 4)), +1);
}

TEST(AdaptiveDecide, DemandAtThresholdHolds) {
  AdaptiveTConfig Cfg;
  EXPECT_EQ(adaptive::decideStep(Cfg, 2, signals(2, 4)), 0);
}

TEST(AdaptiveDecide, DemandBelowThresholdLowers) {
  AdaptiveTConfig Cfg;
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, signals(1, 4)), -1);
}

TEST(AdaptiveDecide, MultiprocessorFloorsAtOne) {
  AdaptiveTConfig Cfg;
  // Zero demand on a multiprocessor targets T = 1, never 0: an empty
  // queue makes demand invisible and would wedge the controller serial.
  EXPECT_EQ(adaptive::decideStep(Cfg, 1, signals(0, 4)), 0);
  EXPECT_EQ(adaptive::decideStep(Cfg, 2, signals(0, 4)), -1);
}

TEST(AdaptiveDecide, SingleProcessorDropsToZero) {
  AdaptiveTConfig Cfg;
  // No thief can ever arrive: shed the last future's overhead.
  EXPECT_EQ(adaptive::decideStep(Cfg, 1, signals(0, 1)), -1);
  EXPECT_EQ(adaptive::decideStep(Cfg, 0, signals(0, 1)), 0);
}

TEST(AdaptiveDecide, StarvationSuppressesLowering) {
  AdaptiveTConfig Cfg;
  // 8 probes, 7 failed: this processor is starving. However low the
  // demand on its own queue, cutting supply now would make things worse.
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, signals(0, 4, 8, 7)), 0);
  // Mostly-successful probes are not starvation; lowering proceeds.
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, signals(0, 4, 8, 1)), -1);
  // Below MinProbes the failure rate is noise, not starvation.
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, signals(0, 4, 2, 2)), -1);
}

TEST(AdaptiveDecide, BacklogLowersAtMatchedDemand) {
  AdaptiveTConfig Cfg;
  WindowSignals W = signals(/*StolenFrom=*/4, 4);
  W.QueueHighWater = 4 + Cfg.DrainSlack; // well past the threshold
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, W), -1);
  W.QueueHighWater = 4 + Cfg.DrainSlack - 1;
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, W), 0);
}

TEST(AdaptiveDecide, TargetClampedToMaxT) {
  AdaptiveTConfig Cfg;
  Cfg.MaxT = 4;
  EXPECT_EQ(adaptive::decideStep(Cfg, 4, signals(100, 4)), 0);
  EXPECT_EQ(adaptive::decideStep(Cfg, 3, signals(100, 4)), +1);
}

//===----------------------------------------------------------------------===//
// applyStep: hysteresis and bounds
//===----------------------------------------------------------------------===//

TEST(AdaptiveApply, RequiresConsecutiveVotes) {
  AdaptiveTConfig Cfg; // Hysteresis = 2
  AdaptiveTState A;
  A.T = 2;
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, +1));
  EXPECT_EQ(A.T, 2u);
  EXPECT_TRUE(adaptive::applyStep(Cfg, A, +1));
  EXPECT_EQ(A.T, 3u);
  EXPECT_EQ(A.Raises, 1u);
  EXPECT_EQ(A.Lowers, 0u);
}

TEST(AdaptiveApply, HoldVoteClearsPending) {
  AdaptiveTConfig Cfg;
  AdaptiveTState A;
  A.T = 2;
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, +1));
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, 0)); // interrupts the streak
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, +1));
  EXPECT_EQ(A.T, 2u);
  EXPECT_TRUE(adaptive::applyStep(Cfg, A, +1));
  EXPECT_EQ(A.T, 3u);
}

TEST(AdaptiveApply, DirectionFlipRestartsCount) {
  AdaptiveTConfig Cfg;
  AdaptiveTState A;
  A.T = 2;
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, +1));
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, -1));
  EXPECT_EQ(A.T, 2u);
  EXPECT_TRUE(adaptive::applyStep(Cfg, A, -1));
  EXPECT_EQ(A.T, 1u);
  EXPECT_EQ(A.Lowers, 1u);
}

TEST(AdaptiveApply, BoundedByMinAndMax) {
  AdaptiveTConfig Cfg;
  Cfg.MinT = 1;
  Cfg.MaxT = 2;
  Cfg.Hysteresis = 1;
  AdaptiveTState A;
  A.T = 2;
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, +1)); // already at MaxT
  EXPECT_EQ(A.T, 2u);
  EXPECT_EQ(A.Raises, 0u);
  EXPECT_TRUE(adaptive::applyStep(Cfg, A, -1));
  EXPECT_EQ(A.T, 1u);
  EXPECT_FALSE(adaptive::applyStep(Cfg, A, -1)); // already at MinT
  EXPECT_EQ(A.T, 1u);
  EXPECT_EQ(A.Lowers, 1u);
}

//===----------------------------------------------------------------------===//
// SitePolicyTable: format round-trip and parse errors
//===----------------------------------------------------------------------===//

TEST(SitePolicies, FormatParseRoundTrip) {
  SitePolicyTable T;
  T.set("fib+12", SitePolicy::Eager);
  T.set("msort+33", SitePolicy::Lazy);
  T.set("scan+7", SitePolicy::Inline);
  std::string Text = T.format();

  SitePolicyTable U;
  std::string Err;
  ASSERT_TRUE(U.parse(Text, Err)) << Err;
  EXPECT_EQ(U.size(), 3u);
  ASSERT_NE(U.lookup("fib+12"), nullptr);
  EXPECT_EQ(*U.lookup("fib+12"), SitePolicy::Eager);
  ASSERT_NE(U.lookup("msort+33"), nullptr);
  EXPECT_EQ(*U.lookup("msort+33"), SitePolicy::Lazy);
  ASSERT_NE(U.lookup("scan+7"), nullptr);
  EXPECT_EQ(*U.lookup("scan+7"), SitePolicy::Inline);
  EXPECT_EQ(U.lookup("absent+0"), nullptr);
  // format() is canonical: round-tripping again is a fixed point.
  EXPECT_EQ(U.format(), Text);
}

TEST(SitePolicies, ParseSkipsCommentsAndBlankLines) {
  SitePolicyTable T;
  std::string Err;
  ASSERT_TRUE(T.parse(";; header comment\n"
                      "\n"
                      "site a+1 eager\n"
                      "; another comment\n"
                      "site b+2 inline\n",
                      Err))
      << Err;
  EXPECT_EQ(T.size(), 2u);
}

TEST(SitePolicies, ParseErrorsNameTheLine) {
  SitePolicyTable T;
  std::string Err;
  EXPECT_FALSE(T.parse("site a+1 eager\nsite b+2 sideways\n", Err));
  EXPECT_NE(Err.find("2"), std::string::npos) << Err;
  EXPECT_TRUE(T.empty()) << "failed parse must leave the table empty";

  EXPECT_FALSE(T.parse("site justaname\n", Err));
  EXPECT_FALSE(T.parse("policy a+1 eager\n", Err));
}

//===----------------------------------------------------------------------===//
// Site policies end to end
//===----------------------------------------------------------------------===//

// Builds a policy table naming every future site the traced run visited.
std::string policiesForAllSites(Engine &Traced, const char *Policy) {
  std::string Text;
  for (const std::string &Name : Traced.tracer().siteNames())
    Text += "site " + Name + " " + Policy + "\n";
  return Text;
}

TEST(SitePoliciesEndToEnd, InlinePolicySuppressesAllFutures) {
  EngineConfig C = config(2);
  C.EnableTracing = true;
  Engine Traced(C);
  evalOk(Traced, PsumSource);
  evalFixnum(Traced, "(psum 10)");
  ASSERT_FALSE(Traced.tracer().siteNames().empty());
  EXPECT_GT(Traced.stats().FuturesCreated, 0u);

  Engine E(config(2));
  std::string Err;
  ASSERT_TRUE(E.configureSitePolicies(policiesForAllSites(Traced, "inline"),
                                      Err))
      << Err;
  evalOk(E, PsumSource);
  E.resetStats();
  EXPECT_EQ(evalFixnum(E, "(psum 10)"), 55);
  EXPECT_EQ(E.stats().FuturesCreated, 0u);
  EXPECT_GT(E.stats().PolicyInline, 0u);
  EXPECT_EQ(E.stats().PolicyEager, 0u);
}

TEST(SitePoliciesEndToEnd, EagerPolicyOverridesInliningThreshold) {
  EngineConfig C = config(2);
  C.EnableTracing = true;
  Engine Traced(C);
  evalOk(Traced, PsumSource);
  evalFixnum(Traced, "(psum 10)");

  // T = 0 inlines every future; the eager policy must override it.
  EngineConfig C2 = config(2);
  C2.InlineThreshold = 0;
  Engine E(C2);
  std::string Err;
  ASSERT_TRUE(E.configureSitePolicies(policiesForAllSites(Traced, "eager"),
                                      Err))
      << Err;
  evalOk(E, PsumSource);
  E.resetStats();
  EXPECT_EQ(evalFixnum(E, "(psum 10)"), 55);
  EXPECT_GT(E.stats().FuturesCreated, 0u);
  EXPECT_GT(E.stats().PolicyEager, 0u);
  EXPECT_EQ(E.stats().TasksInlined, 0u);
}

TEST(SitePoliciesEndToEnd, LazyPolicyCreatesSeamsWithoutGlobalLazyMode) {
  EngineConfig C = config(2);
  C.EnableTracing = true;
  Engine Traced(C);
  evalOk(Traced, PsumSource);
  evalFixnum(Traced, "(psum 10)");

  Engine E(config(2));
  ASSERT_FALSE(E.config().LazyFutures);
  std::string Err;
  ASSERT_TRUE(E.configureSitePolicies(policiesForAllSites(Traced, "lazy"),
                                      Err))
      << Err;
  evalOk(E, PsumSource);
  E.resetStats();
  EXPECT_EQ(evalFixnum(E, "(psum 10)"), 55);
  EXPECT_GT(E.stats().SeamsCreated, 0u);
  EXPECT_GT(E.stats().PolicyLazy, 0u);
  // Futures may still appear: a stolen seam splits into a real future.
  // What the policy guarantees is that no site created one eagerly.
  EXPECT_EQ(E.stats().PolicyEager, 0u);
}

TEST(SitePoliciesEndToEnd, UnknownSitesAreHarmless) {
  Engine E(config(2));
  std::string Err;
  ASSERT_TRUE(E.configureSitePolicies("site nowhere+99 eager\n", Err)) << Err;
  evalOk(E, PsumSource);
  EXPECT_EQ(evalFixnum(E, "(psum 10)"), 55);
  EXPECT_EQ(E.stats().PolicyEager, 0u);
}

//===----------------------------------------------------------------------===//
// Adaptive threshold end to end
//===----------------------------------------------------------------------===//

EngineConfig adaptiveConfig(unsigned Procs, uint64_t Window = 512) {
  EngineConfig C = config(Procs);
  C.AdaptiveInline = true;
  C.AdaptiveWindowCycles = Window;
  return C;
}

TEST(AdaptiveEndToEnd, RunsAreDeterministic) {
  auto Run = [](Engine &E) {
    evalOk(E, PsumSource);
    E.resetStats();
    EXPECT_EQ(evalFixnum(E, "(psum 14)"), 377);
  };
  Engine A(adaptiveConfig(4)), B(adaptiveConfig(4));
  Run(A);
  Run(B);
  EXPECT_EQ(A.stats().ElapsedCycles, B.stats().ElapsedCycles);
  EXPECT_EQ(A.stats().FuturesCreated, B.stats().FuturesCreated);
  EXPECT_EQ(A.stats().TasksInlined, B.stats().TasksInlined);
  EXPECT_EQ(A.stats().AdaptWindows, B.stats().AdaptWindows);
  EXPECT_EQ(A.stats().ThresholdRaises, B.stats().ThresholdRaises);
  EXPECT_EQ(A.stats().ThresholdLowers, B.stats().ThresholdLowers);
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(A.machine().processor(I).Adapt.T,
              B.machine().processor(I).Adapt.T);
}

TEST(AdaptiveEndToEnd, ThresholdStaysInBoundsAndWindowsClose) {
  Engine E(adaptiveConfig(4));
  evalOk(E, PsumSource);
  evalFixnum(E, "(psum 14)");
  const AdaptiveTConfig &Cfg = E.machine().adaptiveConfig();
  EXPECT_TRUE(E.machine().adaptiveEnabled());
  EXPECT_GT(E.stats().AdaptWindows, 0u);
  for (unsigned I = 0; I < 4; ++I) {
    unsigned T = E.machine().processor(I).Adapt.T;
    EXPECT_GE(T, Cfg.MinT);
    EXPECT_LE(T, Cfg.MaxT);
  }
}

TEST(AdaptiveEndToEnd, SingleProcessorShedsAllFutureOverhead) {
  Engine E(adaptiveConfig(1));
  evalOk(E, PsumSource);
  // The prelude likely already dropped T to 0; push it back up so the
  // descent (and its stats) happens inside the measured run.
  E.machine().processor(0).Adapt.T = 3;
  E.resetStats();
  evalFixnum(E, "(psum 14)");
  // With no thief possible, the controller drops T to 0 (always inline).
  EXPECT_EQ(E.machine().processor(0).Adapt.T, 0u);
  EXPECT_GT(E.stats().ThresholdLowers, 0u);
}

TEST(AdaptiveEndToEnd, ThresholdChangesAreTraced) {
  EngineConfig C = adaptiveConfig(1);
  C.EnableTracing = true;
  Engine E(C);
  evalOk(E, PsumSource);
  // Make a descent happen inside the traced run (the prelude already
  // settled T, and its trace events are gone with the bootstrap reset).
  E.machine().processor(0).Adapt.T = 3;
  E.resetStats();
  evalFixnum(E, "(psum 14)");
  bool Seen = false;
  for (const TraceEvent &Ev : E.tracer().events()) {
    if (Ev.Kind == TraceEventKind::ThresholdChange) {
      Seen = true;
      EXPECT_LE(Ev.A, 16u); // new T within bounds
    }
  }
  EXPECT_TRUE(Seen);
}

TEST(AdaptiveEndToEnd, StealCountersPartition) {
  Engine E(adaptiveConfig(4));
  evalOk(E, PsumSource);
  evalFixnum(E, "(psum 14)");
  uint64_t Attempts = 0, Failed = 0, StolenFrom = 0;
  for (unsigned I = 0; I < 4; ++I) {
    const Processor &P = E.machine().processor(I);
    Attempts += P.StealAttempts;
    Failed += P.StealsFailed;
    StolenFrom += P.StolenFrom;
  }
  // Every successful probe has exactly one victim.
  EXPECT_EQ(Attempts - Failed, StolenFrom);
}

TEST(AdaptiveEndToEnd, ResetStatsRebaselinesWindows) {
  Engine E(adaptiveConfig(4));
  evalOk(E, PsumSource);
  evalFixnum(E, "(psum 12)");
  unsigned LearnedT = E.machine().processor(0).Adapt.T;
  E.resetStats();
  EXPECT_EQ(E.stats().AdaptWindows, 0u);
  // Learned thresholds survive a stats reset; only baselines move.
  EXPECT_EQ(E.machine().processor(0).Adapt.T, LearnedT);
  // Counter deltas must not underflow after the reset zeroed them.
  evalFixnum(E, "(psum 12)");
  EXPECT_GT(E.stats().AdaptWindows, 0u);
}

TEST(AdaptiveEndToEnd, DisabledAdaptationChangesNothing) {
  auto Cycles = [](uint64_t Window) {
    EngineConfig C = config(4);
    C.AdaptiveInline = false;
    C.AdaptiveWindowCycles = Window; // must be inert while disabled
    Engine E(C);
    evalOk(E, PsumSource);
    E.resetStats();
    evalFixnum(E, "(psum 14)");
    EXPECT_EQ(E.stats().AdaptWindows, 0u);
    return E.stats().ElapsedCycles;
  };
  EXPECT_EQ(Cycles(512), Cycles(4096));
}

//===----------------------------------------------------------------------===//
// Fault injection against the controller
//===----------------------------------------------------------------------===//

TEST(AdaptiveFaults, PlanRoundTripsAdaptClauses) {
  FaultPlan P;
  std::string Err;
  ASSERT_TRUE(
      FaultPlan::parse("adapt-clamp=2@0,4@16; adapt-reset=3,7", P, Err))
      << Err;
  ASSERT_EQ(P.AdaptClamps.size(), 2u);
  EXPECT_EQ(P.AdaptClamps[0].Window, 2u);
  EXPECT_EQ(P.AdaptClamps[0].Value, 0u);
  EXPECT_EQ(P.AdaptClamps[1].Window, 4u);
  EXPECT_EQ(P.AdaptClamps[1].Value, 16u);
  ASSERT_EQ(P.AdaptResetAt.size(), 2u);
  EXPECT_EQ(P.AdaptResetAt[0], 3u);

  FaultPlan Q;
  ASSERT_TRUE(FaultPlan::parse(P.format(), Q, Err)) << Err;
  EXPECT_EQ(Q.format(), P.format());

  FaultPlan R;
  EXPECT_FALSE(FaultPlan::parse("adapt-clamp=0@1", R, Err)); // 1-based
  EXPECT_FALSE(FaultPlan::parse("adapt-reset=0", R, Err));
  EXPECT_FALSE(FaultPlan::parse("adapt-clamp=5", R, Err)); // missing @VALUE
}

TEST(AdaptiveFaults, ClampAndResetPerturbTheController) {
  Engine E(adaptiveConfig(2));
  evalOk(E, PsumSource);
  // Window ordinals are machine-lifetime; the prelude and the define
  // already consumed the low ones. Aim at windows inside the next run.
  uint64_t Next = E.machine().adaptWindowsClosed();
  std::string Err;
  ASSERT_TRUE(E.configureFaults(
      strFormat("adapt-clamp=%llu@16; adapt-reset=%llu",
                static_cast<unsigned long long>(Next + 2),
                static_cast<unsigned long long>(Next + 4)),
      Err))
      << Err;
  E.resetStats();
  EXPECT_EQ(evalFixnum(E, "(psum 14)"), 377);
  EXPECT_GT(E.stats().FaultsInjected, 0u);
  // The clamped threshold still respects the configured bounds.
  for (unsigned I = 0; I < 2; ++I)
    EXPECT_LE(E.machine().processor(I).Adapt.T, 16u);
}

TEST(AdaptiveFaults, ClampIsDeterministic) {
  auto Run = []() {
    Engine E(adaptiveConfig(2));
    evalOk(E, PsumSource);
    uint64_t Next = E.machine().adaptWindowsClosed();
    std::string Err;
    EXPECT_TRUE(E.configureFaults(
        strFormat("adapt-clamp=%llu@8",
                  static_cast<unsigned long long>(Next + 3)),
        Err))
        << Err;
    E.resetStats();
    evalFixnum(E, "(psum 14)");
    return E.stats().ElapsedCycles;
  };
  EXPECT_EQ(Run(), Run());
}

} // namespace
