//===----------------------------------------------------------------------===//
///
/// \file
/// Processor fail-stop injection and lineage-based task recovery: a
/// proc-kill clause crashes a virtual processor mid-run; the engine must
/// drain its queues onto survivors, re-execute every lost future from its
/// spawn lineage (charging the re-run to the Recovery bucket), and stop
/// the owning group with an inspectable processor-lost condition for
/// anything that cannot be replayed. See DESIGN.md "Processor fail-stop
/// and recovery".
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/FaultPlan.h"
#include "obs/Metrics.h"
#include "support/StrUtil.h"
#include "ui/Repl.h"

using namespace mult;
using namespace mult::testutil;

namespace mult {
void dumpStats(OutStream &OS, const EngineStats &S); // core/Stats.cpp
} // namespace mult

namespace {

EngineConfig killConfig(unsigned Procs, std::string Spec) {
  EngineConfig C = config(Procs);
  C.Faults = std::move(Spec);
  return C;
}

const char *const FibProgram = R"lisp(
  (begin
    (define (fib n)
      (if (< n 2) n
          (+ (touch (future (fib (- n 1)))) (fib (- n 2)))))
    (fib 20))
)lisp";

/// Dining philosophers with per-fork use counters (%d = rounds). Heavy
/// semaphore traffic makes V-handoff wakes land on arbitrary processors,
/// which is what the post-mortem-wake pin below needs. Returns
/// 2 * rounds (fork 0's counter, bumped by its two neighbours).
const char *const PhilosophersTemplate = R"lisp(
  (begin
    (define n 5)
    (define rounds %d)
    (define forks (make-vector n 0))
    (define uses (make-vector n 0))
    (do ((i 0 (+ i 1))) ((= i n) #t)
      (vector-set! forks i (make-semaphore 1)))
    (define (dine who)
      (let ((li who) (ri (remainder (+ who 1) n)))
        (let ((fi (if (even? who) li ri))
              (si (if (even? who) ri li)))
          (let ((first (vector-ref forks fi))
                (second (vector-ref forks si)))
            (let loop ((r 0))
              (if (= r rounds)
                  'full
                  (begin
                    (semaphore-p first)
                    (semaphore-p second)
                    (vector-set! uses li (+ (vector-ref uses li) 1))
                    (vector-set! uses ri (+ (vector-ref uses ri) 1))
                    (semaphore-v second)
                    (semaphore-v first)
                    (loop (+ r 1)))))))))
    (define (spawn who)
      (if (= who n) '() (cons (future (dine who)) (spawn (+ who 1)))))
    (define (wait-all l)
      (if (null? l) 'done (begin (touch (car l)) (wait-all (cdr l)))))
    (wait-all (spawn 0))
    (vector-ref uses 0))
)lisp";

/// Asserts the cycle-tiling and steal-accounting invariants, dead
/// processors included (a dead board's clock is frozen, but what it
/// accrued must still tile).
void checkInvariants(Engine &E) {
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.Steals + S.StealsFailed, S.StealAttempts);
  for (unsigned I = 0; I < E.machine().numProcessors(); ++I) {
    const Processor &P = E.machine().processor(I);
    EXPECT_EQ(P.ClockAtReset + P.BusyCycles + P.IdleCycles + P.GcCycles,
              P.Clock)
        << "cycle accounting leak on processor " << I
        << (P.Dead ? " (dead)" : "");
  }
}

TEST(RecoveryTest, KilledProcessorsTasksAreReExecuted) {
  Engine E(killConfig(4, "proc-kill=1@50000"));
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765)
      << "survivors must finish the computation";
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ProcsKilled, 1u);
  EXPECT_TRUE(E.machine().processor(1).Dead);
  EXPECT_GE(S.TasksRecovered, 1u)
      << "the kill lands mid-fib; something must have been in flight";
  EXPECT_EQ(S.TasksOrphaned, 0u)
      << "pure fib holds no semaphores and does no I/O";
  EXPECT_GT(S.RecoveryCycles, 0u)
      << "re-executed work must be charged to the recovery bucket";
  checkInvariants(E);
}

TEST(RecoveryTest, DeadProcessorIsNeverStolenFromOrDispatchedTo) {
  EngineConfig C = killConfig(4, "proc-kill=2@30000");
  C.EnableTracing = true;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  ASSERT_TRUE(E.machine().processor(2).Dead);
  // Record order is the causal order (one host thread); per-processor
  // virtual clocks are skewed, so they cannot sequence events across
  // processors.
  const auto &Events = E.tracer().events();
  size_t KillIdx = Events.size();
  for (size_t I = 0; I < Events.size(); ++I)
    if (Events[I].Kind == TraceEventKind::ProcKilled)
      KillIdx = I;
  ASSERT_LT(KillIdx, Events.size());
  for (size_t I = KillIdx + 1; I < Events.size(); ++I) {
    const TraceEvent &Ev = Events[I];
    // After the kill, processor 2 schedules nothing: it is never stepped,
    // is skipped as a steal victim, and adopts no woken tasks. (GC
    // rendezvous events are exempt — the collector still advances every
    // clock, dead or not, so the cycle accounting tiles.)
    if (Ev.Kind == TraceEventKind::GcBegin ||
        Ev.Kind == TraceEventKind::GcEnd)
      continue;
    EXPECT_NE(Ev.Proc, 2u) << "dead processor active at clock " << Ev.Clock
                           << " (event kind "
                           << traceEventKindName(Ev.Kind) << ")";
    if (Ev.Kind == TraceEventKind::TaskResume ||
        Ev.Kind == TraceEventKind::TaskRecovered)
      EXPECT_NE(Ev.B, 2u) << "task handed to a dead processor";
  }
}

TEST(RecoveryTest, KillingTheRootTasksProcessorRecoversIt) {
  // Processor 0 hosts every evaluation's root task; killing it early in
  // the run forces the root itself through lineage recovery, and later
  // evaluations must launch on a survivor.
  Engine E(killConfig(2, "proc-kill=0@2000"));
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  EXPECT_TRUE(E.machine().processor(0).Dead);
  EXPECT_GE(E.stats().TasksRecovered, 1u);
  EXPECT_EQ(evalFixnum(E, "(+ 40 2)"), 42)
      << "fresh evaluations must launch on the survivor";
  checkInvariants(E);
}

TEST(RecoveryTest, DoubleKillLeavesOneWorkingSurvivor) {
  Engine E(killConfig(3, "proc-kill=1@20000,2@60000"));
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ProcsKilled, 2u);
  EXPECT_TRUE(E.machine().processor(1).Dead);
  EXPECT_TRUE(E.machine().processor(2).Dead);
  EXPECT_FALSE(E.machine().processor(0).Dead);
  checkInvariants(E);
  EXPECT_EQ(evalFixnum(E, "(* 6 7)"), 42);
}

TEST(RecoveryTest, KillingTheLastLiveProcessorIsIgnored) {
  // An unrunnable machine helps nobody: the clause is consumed with no
  // effect, like unplugging the only board and plugging it back in.
  Engine E(killConfig(1, "proc-kill=0@1000"));
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  EXPECT_EQ(E.stats().ProcsKilled, 0u);
  EXPECT_FALSE(E.machine().processor(0).Dead);
  EXPECT_EQ(E.stats().FaultsInjected, 0u)
      << "a no-effect kill must not count as an injected fault";
}

TEST(RecoveryTest, BogusAndRepeatTargetsAreConsumedSilently) {
  // Processor 7 does not exist; the second kill of processor 1 finds it
  // already dead. Both clauses are consumed without effect.
  Engine E(killConfig(2, "proc-kill=7@1000,1@30000,1@40000"));
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  EXPECT_EQ(E.stats().ProcsKilled, 1u);
  checkInvariants(E);
}

TEST(RecoveryTest, KillDuringGcPressureKeepsAccounting) {
  // A forced collection and a kill at the same virtual-time mark: the
  // kill is polled at quantum granularity, so it lands before or after
  // the rendezvous, never inside it, and the clocks still tile.
  EngineConfig C = killConfig(4, "gc-at=30000; proc-kill=1@30000");
  C.HeapWords = 1 << 16; // real collections interleave too
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  EXPECT_EQ(E.stats().ProcsKilled, 1u);
  EXPECT_GT(E.gcStats().Collections, 0u);
  checkInvariants(E);
}

TEST(RecoveryTest, RecoveryDisabledOrphansEveryLostTask) {
  EngineConfig C = killConfig(4, "proc-kill=1@50000");
  C.Recovery = false;
  Engine E(C);
  EvalResult R = E.eval(FibProgram);
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  EXPECT_NE(R.Error.find("processor-lost"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("recovery disabled"), std::string::npos) << R.Error;
  EXPECT_EQ(E.stats().TasksRecovered, 0u);
  EXPECT_GE(E.stats().TasksOrphaned, 1u);
  // The stop is restartable: the simulator still holds the orphans'
  // state, so resume continues them on a survivor (deliberately breaking
  // the fail-stop fiction for the debugger's benefit).
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::falseV());
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Val.asFixnum(), 6765);
  checkInvariants(E);
}

TEST(RecoveryTest, OrphanedGroupIsKillable) {
  EngineConfig C = killConfig(4, "proc-kill=1@50000");
  C.Recovery = false;
  Engine E(C);
  EvalResult R = E.eval(FibProgram);
  ASSERT_FALSE(R.ok());
  E.killGroup(R.StoppedGroup);
  EXPECT_EQ(evalFixnum(E, "(+ 40 2)"), 42)
      << "the engine must keep working after discarding the orphans";
}

TEST(RecoveryTest, RecoveryTranscriptIsDeterministic) {
  // Same plan, same program, two fresh engines: identical stats dump
  // (recovery line included) and an identical event trace.
  auto Run = [](std::string &StatsOut, std::vector<TraceEvent> &Events) {
    EngineConfig C = killConfig(4, "proc-kill=1@40000");
    C.EnableTracing = true;
    Engine E(C);
    EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
    StringOutStream OS(StatsOut);
    dumpStats(OS, E.stats());
    dumpMetrics(OS, buildMetrics(E.machine(), E.stats(), E.gcStats(),
                                 E.tracer()));
    Events.assign(E.tracer().events().begin(), E.tracer().events().end());
  };
  std::string StatsA, StatsB;
  std::vector<TraceEvent> EvA, EvB;
  Run(StatsA, EvA);
  Run(StatsB, EvB);
  EXPECT_EQ(StatsA, StatsB);
  EXPECT_NE(StatsA.find("recovery: 1 procs killed"), std::string::npos)
      << StatsA;
  ASSERT_EQ(EvA.size(), EvB.size());
  for (size_t I = 0; I < EvA.size(); ++I) {
    EXPECT_TRUE(EvA[I].Kind == EvB[I].Kind && EvA[I].Proc == EvB[I].Proc &&
                EvA[I].Clock == EvB[I].Clock && EvA[I].A == EvB[I].A &&
                EvA[I].B == EvB[I].B && EvA[I].C == EvB[I].C)
        << "trace diverges at event " << I;
  }
}

TEST(RecoveryTest, RecoveryEventsNameTheLineage) {
  EngineConfig C = killConfig(4, "proc-kill=1@50000");
  C.EnableTracing = true;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  uint64_t Killed = 0, Recovered = 0;
  for (const TraceEvent &Ev : E.tracer().events()) {
    if (Ev.Kind == TraceEventKind::ProcKilled) {
      ++Killed;
      EXPECT_EQ(Ev.A, 1u) << "payload A is the dead processor";
    } else if (Ev.Kind == TraceEventKind::TaskRecovered) {
      ++Recovered;
      EXPECT_NE(Ev.B, 1u) << "payload B (new home) must be a survivor";
      EXPECT_EQ(Ev.C, 1u) << "payload C is the dead processor";
    }
  }
  EXPECT_EQ(Killed, 1u);
  EXPECT_EQ(Recovered, E.stats().TasksRecovered);
}

TEST(RecoveryTest, NoKillClauseMeansNoRecoveryFootprint) {
  // With other faults armed but no proc-kill, the recovery counters stay
  // zero and the stats dump omits the recovery line entirely (the
  // bit-identical-output guarantee for existing golden metrics).
  Engine E(killConfig(4, "steal-fail=0.3"));
  EXPECT_EQ(evalFixnum(E, FibProgram), 6765);
  EXPECT_EQ(E.stats().ProcsKilled, 0u);
  EXPECT_EQ(E.stats().RecoveryCycles, 0u);
  std::string Dump;
  StringOutStream OS(Dump);
  dumpStats(OS, E.stats());
  EXPECT_EQ(Dump.find("recovery:"), std::string::npos) << Dump;
}

TEST(RecoveryTest, PostMortemWakeIsRedirectedNotOrphaned) {
  // Pin for a misclassification found with a chaos_search-style scan of
  // proc-kill cycles over a semaphore-heavy workload. The kill clause
  // marks proc 1 dead *from* cycle 8000, but the poll runs at quantum
  // granularity on the min-clock processor: another processor, already
  // past the mark mid-quantum, completes a semaphore V whose handoff
  // wakes a philosopher onto proc 1's suspended queue (Machine::homeFor
  // still saw it alive). That task arrives with SemaphoresHeld = 1 from
  // the handoff; classifying it as lost backlog used to orphan it as
  // semaphore-held and stop the group. It was never on the dead
  // processor before the mark — recovery must redirect it, intact, to a
  // survivor.
  EngineConfig C = killConfig(4, "proc-kill=1@8000");
  C.InlineThreshold = 1'000'000; // eager: every philosopher a real task
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, strFormat(PhilosophersTemplate, 300)), 600)
      << "the redirected philosopher must finish on a survivor";
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ProcsKilled, 1u);
  EXPECT_EQ(S.WakesRedirected, 1u)
      << "exactly one post-mortem wake in this schedule";
  EXPECT_EQ(S.TasksOrphaned, 0u)
      << "a redirected wake must not be misclassified as a semaphore-held "
         "orphan";
  checkInvariants(E);
}

TEST(RecoveryTest, MultRecoveryEnvDisablesRecovery) {
  setenv("MULT_RECOVERY", "0", 1);
  Engine E(killConfig(4, "proc-kill=1@50000"));
  unsetenv("MULT_RECOVERY");
  EvalResult R = E.eval(FibProgram);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("recovery disabled"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// The REPL's :procs command.
//===----------------------------------------------------------------------===//

class RecoveryReplTest : public ::testing::Test {
protected:
  RecoveryReplTest() : E(killConfig(2, "proc-kill=1@50000")), Out(Buf),
                       R(E, Out) {}

  std::string line(std::string_view L) {
    Buf.clear();
    R.processLine(L);
    return Buf;
  }

  Engine E;
  std::string Buf;
  StringOutStream Out;
  Repl R;
};

TEST_F(RecoveryReplTest, ProcsCommandShowsLivenessAndRecovery) {
  EXPECT_EQ(line(":procs").find("dead"), std::string::npos)
      << "everything starts live";
  EXPECT_EQ(line(FibProgram), "6765\n");
  std::string S = line(":procs");
  EXPECT_NE(S.find("dead"), std::string::npos) << S;
  EXPECT_NE(S.find("fail-stopped"), std::string::npos) << S;
  EXPECT_NE(line(":help").find(":procs"), std::string::npos);
}

} // namespace
