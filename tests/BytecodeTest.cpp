//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode-level tests: disassembly, compiled-code shape, cost-model
/// coverage, and the compiler facade's bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "compiler/CodeGen.h"
#include "reader/Reader.h"
#include "vm/CostModel.h"

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

/// Compiles one form with default options; returns the whole listing.
/// The Code objects die with compileOne's registry, so anything a test
/// needs from them is copied out here rather than returned by pointer.
struct Compiled {
  std::string Listing;
  CompileStats Stats;
  uint32_t TopMaxFrameWords = 0;
};

Compiled compileOne(std::string_view Src) {
  static Heap H{Heap::Config{}};
  static SymbolTable Syms(H);
  static DatumBuilder B(H, Syms);
  CodeRegistry Reg(H);
  Compiler C(B, Reg, CompilerOptions{});
  Reader R(B, Src);
  ReadResult RR = R.read();
  EXPECT_TRUE(RR.ok()) << RR.Error;
  Compiler::Result CR = C.compile(RR.Datum);
  EXPECT_TRUE(CR.ok()) << CR.Error;
  Compiled Out;
  for (size_t I = 0; I < Reg.size(); ++I)
    Out.Listing += disassemble(*Reg.at(I));
  Out.Stats = C.stats();
  Out.TopMaxFrameWords = CR.TopCode->MaxFrameWords;
  return Out;
}

TEST(BytecodeTest, EveryOpcodeHasANameAndACost) {
  for (int O = 0; O <= static_cast<int>(Op::PrimApplyVar); ++O) {
    Op Opc = static_cast<Op>(O);
    EXPECT_STRNE(opName(Opc), "bad-op") << O;
    EXPECT_GE(opBaseCost(Opc), 1u) << opName(Opc);
  }
}

TEST(BytecodeTest, TouchCostsTwoInstructions) {
  // The paper's pivotal constant: tbit + beq.
  EXPECT_EQ(opBaseCost(Op::TouchStack), 2u);
  EXPECT_EQ(opBaseCost(Op::TouchLocal), 2u);
  EXPECT_EQ(opBaseCost(Op::TouchBack), 2u);
}

TEST(BytecodeTest, TrivialCallAnchors) {
  // Call(4) + PushFixnum(1) + Return(3) = the paper's 8-instruction
  // trivial procedure call.
  EXPECT_EQ(opBaseCost(Op::Call) + opBaseCost(Op::PushFixnum) +
                opBaseCost(Op::Return),
            8u);
}

TEST(BytecodeTest, DisassemblyIsReadable) {
  Compiled C = compileOne("(define (f x) (if (< x 2) x (f (- x 1))))");
  EXPECT_NE(C.Listing.find("f (params 1"), std::string::npos) << C.Listing;
  EXPECT_NE(C.Listing.find("jump-if-false"), std::string::npos);
  EXPECT_NE(C.Listing.find("tail-call"), std::string::npos);
  EXPECT_NE(C.Listing.find("global-define"), std::string::npos);
}

TEST(BytecodeTest, ConstantsAreDeduplicated) {
  // All three uses of 'k share one constant-pool slot (index 0).
  Compiled C = compileOne("(lambda () (list 'k 'k 'k))");
  size_t Count = 0;
  for (size_t P = C.Listing.find("const           0  ; k");
       P != std::string::npos;
       P = C.Listing.find("const           0  ; k", P + 1))
    ++Count;
  EXPECT_EQ(Count, 3u) << C.Listing;
}

TEST(BytecodeTest, MaxFrameWordsBoundsTheStack) {
  Compiled C = compileOne("(lambda (a b) (+ a (+ b (+ a b))))");
  // Frame: closure + 2 params + operand depth; conservative but present.
  EXPECT_GE(C.TopMaxFrameWords, 1u);
}

TEST(BytecodeTest, SlideEndsExpressionLets) {
  Compiled C = compileOne("(lambda (a) (+ a (let ((x 1)) x)))");
  EXPECT_NE(C.Listing.find("slide"), std::string::npos) << C.Listing;
}

TEST(BytecodeTest, TailLetsDontSlide) {
  Compiled C = compileOne("(lambda (a) (let ((x a)) x))");
  EXPECT_EQ(C.Listing.find("slide"), std::string::npos) << C.Listing;
}

TEST(BytecodeTest, BoxedParamsGetEntryPrologue) {
  Compiled C = compileOne("(lambda (a) (set! a 1) a)");
  EXPECT_NE(C.Listing.find("make-box"), std::string::npos);
  EXPECT_NE(C.Listing.find("set-local"), std::string::npos);
  EXPECT_NE(C.Listing.find("box-set"), std::string::npos);
}

TEST(BytecodeTest, FutureThunkIsAChildTemplate) {
  Compiled C = compileOne("(lambda (x) (future (* x x)))");
  EXPECT_NE(C.Listing.find("future-thunk"), std::string::npos)
      << C.Listing;
  // The thunk captures x once.
  EXPECT_NE(C.Listing.find("closure"), std::string::npos);
}

TEST(BytecodeTest, NaryArithmeticFolds) {
  Compiled C = compileOne("(lambda () (+ 1 2 3 4))");
  // Three adds, no call-prim.
  size_t Count = 0;
  for (size_t P = C.Listing.find("  add");
       P != std::string::npos; P = C.Listing.find("  add", P + 1))
    ++Count;
  EXPECT_EQ(Count, 3u) << C.Listing;
  EXPECT_EQ(C.Listing.find("call-prim"), std::string::npos);
}

} // namespace
