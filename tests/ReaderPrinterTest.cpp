//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and printer unit tests.
///
//===----------------------------------------------------------------------===//

#include "reader/Reader.h"

#include "runtime/Heap.h"
#include "runtime/Printer.h"
#include "runtime/SymbolTable.h"

#include <gtest/gtest.h>

using namespace mult;

namespace {

class ReaderTest : public ::testing::Test {
protected:
  ReaderTest() : H(Heap::Config{}), Syms(H), B(H, Syms) {}

  /// Reads one datum and prints it back in `write` style.
  std::string roundTrip(std::string_view Src) {
    Reader R(B, Src);
    ReadResult RR = R.read();
    EXPECT_TRUE(RR.ok()) << RR.Error;
    return RR.ok() ? valueToString(RR.Datum) : "<error>";
  }

  std::string readError(std::string_view Src) {
    Reader R(B, Src);
    ReadResult RR = R.read();
    EXPECT_TRUE(RR.error()) << "expected a read error for: " << Src;
    return RR.Error;
  }

  Heap H;
  SymbolTable Syms;
  DatumBuilder B;
};

TEST_F(ReaderTest, Atoms) {
  EXPECT_EQ(roundTrip("42"), "42");
  EXPECT_EQ(roundTrip("-17"), "-17");
  EXPECT_EQ(roundTrip("foo"), "foo");
  EXPECT_EQ(roundTrip("set-car!"), "set-car!");
  EXPECT_EQ(roundTrip("#t"), "#t");
  EXPECT_EQ(roundTrip("#f"), "#f");
  EXPECT_EQ(roundTrip("#\\a"), "#\\a");
  EXPECT_EQ(roundTrip("#\\space"), "#\\space");
  EXPECT_EQ(roundTrip("\"hi\\nthere\""), "\"hi\\nthere\"");
  EXPECT_EQ(roundTrip("3.5"), "3.5");
  EXPECT_EQ(roundTrip("1+"), "1+"); // T-style symbol, not a number
  EXPECT_EQ(roundTrip("-"), "-");
}

TEST_F(ReaderTest, Lists) {
  EXPECT_EQ(roundTrip("()"), "()");
  EXPECT_EQ(roundTrip("(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(roundTrip("(a (b c) d)"), "(a (b c) d)");
  EXPECT_EQ(roundTrip("(1 . 2)"), "(1 . 2)");
  EXPECT_EQ(roundTrip("(1 2 . 3)"), "(1 2 . 3)");
  EXPECT_EQ(roundTrip("[a b]"), "(a b)"); // brackets are parens
}

TEST_F(ReaderTest, Vectors) {
  EXPECT_EQ(roundTrip("#(1 2 3)"), "#(1 2 3)");
  EXPECT_EQ(roundTrip("#()"), "#()");
  EXPECT_EQ(roundTrip("#(a #(b) 3)"), "#(a #(b) 3)");
}

TEST_F(ReaderTest, QuoteFamily) {
  EXPECT_EQ(roundTrip("'x"), "(quote x)");
  EXPECT_EQ(roundTrip("'(1 2)"), "(quote (1 2))");
  EXPECT_EQ(roundTrip("`x"), "(quasiquote x)");
  EXPECT_EQ(roundTrip(",x"), "(unquote x)");
  EXPECT_EQ(roundTrip(",@x"), "(unquote-splicing x)");
  EXPECT_EQ(roundTrip("''x"), "(quote (quote x))");
}

TEST_F(ReaderTest, Comments) {
  EXPECT_EQ(roundTrip("; a comment\n 7"), "7");
  EXPECT_EQ(roundTrip("#| block #| nested |# comment |# 8"), "8");
  EXPECT_EQ(roundTrip("(1 ; mid-list\n 2)"), "(1 2)");
}

TEST_F(ReaderTest, Errors) {
  EXPECT_NE(readError("(1 2").find("unterminated"), std::string::npos);
  EXPECT_NE(readError(")").find("unexpected"), std::string::npos);
  EXPECT_NE(readError("\"abc").find("unterminated"), std::string::npos);
  EXPECT_NE(readError("(. 3)").find("'.'"), std::string::npos);
  readError("(1 . 2 3)");
  readError("123456789012345678901234567890"); // fixnum overflow
}

TEST_F(ReaderTest, ErrorsCarryPositions) {
  std::string E = readError("(a\n b\n \"oops");
  EXPECT_NE(E.find("3:"), std::string::npos) << E;
}

TEST_F(ReaderTest, ReadAll) {
  Reader R(B, "1 two (3) ; done");
  std::string Err;
  std::vector<Value> Forms = R.readAll(Err);
  EXPECT_TRUE(Err.empty());
  ASSERT_EQ(Forms.size(), 3u);
  EXPECT_EQ(valueToString(Forms[1]), "two");
}

TEST_F(ReaderTest, SymbolsAreInterned) {
  Reader R(B, "foo foo");
  std::string Err;
  std::vector<Value> Forms = R.readAll(Err);
  ASSERT_EQ(Forms.size(), 2u);
  EXPECT_TRUE(Forms[0].identical(Forms[1]));
}

TEST_F(ReaderTest, PrinterDisplayMode) {
  Reader R(B, "(\"str\" #\\x)");
  ReadResult RR = R.read();
  ASSERT_TRUE(RR.ok());
  PrintOptions Disp;
  Disp.Machine = false;
  EXPECT_EQ(valueToString(RR.Datum, Disp), "(str x)");
}

TEST_F(ReaderTest, PrinterDepthLimitIsCycleSafe) {
  // Build a cyclic list by hand; the printer must terminate.
  Value P = B.cons(Value::fixnum(1), Value::nil());
  P.asObject()->setCdr(P);
  PrintOptions Opts;
  Opts.MaxLength = 16;
  std::string S = valueToString(P, Opts);
  EXPECT_NE(S.find("..."), std::string::npos);
}

TEST_F(ReaderTest, ValuesEqualStructural) {
  auto ReadOne = [&](std::string_view S) {
    Reader R(B, S);
    return R.read().Datum;
  };
  EXPECT_TRUE(valuesEqual(ReadOne("(1 (2 #(3 \"x\")))"),
                          ReadOne("(1 (2 #(3 \"x\")))")));
  EXPECT_FALSE(valuesEqual(ReadOne("(1 2)"), ReadOne("(1 2 3)")));
  EXPECT_FALSE(valuesEqual(ReadOne("#(1)"), ReadOne("(1)")));
}

} // namespace
