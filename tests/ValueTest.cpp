//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the tagged value representation — in particular the
/// paper's crucial property that the future check is a single low-bit
/// test.
///
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include "runtime/Heap.h"
#include "runtime/Object.h"

#include <gtest/gtest.h>

using namespace mult;

TEST(ValueTest, FixnumRoundTrip) {
  for (int64_t N : {int64_t(0), int64_t(1), int64_t(-1), int64_t(123456789),
                    int64_t(-987654321), (INT64_MAX >> 3), (INT64_MIN >> 3)}) {
    Value V = Value::fixnum(N);
    EXPECT_TRUE(V.isFixnum());
    EXPECT_FALSE(V.isFuture());
    EXPECT_FALSE(V.isObject());
    EXPECT_FALSE(V.isImmediate());
    EXPECT_EQ(V.asFixnum(), N);
  }
}

TEST(ValueTest, FixnumRange) {
  EXPECT_TRUE(Value::fitsFixnum(0));
  EXPECT_TRUE(Value::fitsFixnum(INT64_MAX >> 3));
  EXPECT_TRUE(Value::fitsFixnum(INT64_MIN >> 3));
  EXPECT_FALSE(Value::fitsFixnum((INT64_MAX >> 3) + 1));
  EXPECT_FALSE(Value::fitsFixnum((INT64_MIN >> 3) - 1));
}

TEST(ValueTest, Immediates) {
  EXPECT_TRUE(Value::nil().isNil());
  EXPECT_TRUE(Value::trueV().isTrue());
  EXPECT_TRUE(Value::falseV().isFalse());
  EXPECT_TRUE(Value::unspecified().isUnspecified());
  EXPECT_TRUE(Value::unbound().isUnbound());
  EXPECT_TRUE(Value::character('a').isChar());
  EXPECT_EQ(Value::character('a').asChar(), uint32_t('a'));

  // Scheme truth: only #f is false; '() is true in T.
  EXPECT_TRUE(Value::nil().isTruthy());
  EXPECT_TRUE(Value::fixnum(0).isTruthy());
  EXPECT_FALSE(Value::falseV().isTruthy());
  EXPECT_TRUE(Value::trueV().isTruthy());
}

TEST(ValueTest, FutureBitIsBitZero) {
  Heap H(Heap::Config{});
  Object *O = H.allocatePermanent(TypeTag::Future, Object::FutureSizeWords);

  Value AsObject = Value::object(O);
  Value AsFuture = Value::future(O);

  // The paper's single-instruction touch test: bit 0.
  EXPECT_EQ(AsFuture.bits() & 1, 1u);
  EXPECT_EQ(AsObject.bits() & 1, 0u);
  EXPECT_TRUE(AsFuture.isFuture());
  EXPECT_FALSE(AsObject.isFuture());
  // Both are pointers to the same object.
  EXPECT_TRUE(AsFuture.isPointer());
  EXPECT_TRUE(AsObject.isPointer());
  EXPECT_EQ(AsFuture.pointee(), O);
  EXPECT_EQ(AsObject.pointee(), O);
}

TEST(ValueTest, IdentityIsBitwise) {
  EXPECT_TRUE(Value::fixnum(7).identical(Value::fixnum(7)));
  EXPECT_FALSE(Value::fixnum(7).identical(Value::fixnum(8)));
  EXPECT_FALSE(Value::fixnum(0).identical(Value::nil()));
  EXPECT_FALSE(Value::falseV().identical(Value::nil()));
}

TEST(ObjectTest, HeaderLayout) {
  Heap H(Heap::Config{});
  Object *P = H.allocatePermanent(TypeTag::Pair, 2);
  EXPECT_EQ(P->tag(), TypeTag::Pair);
  EXPECT_EQ(P->sizeWords(), 2u);
  EXPECT_EQ(P->totalWords(), 3u);
  EXPECT_TRUE(P->isPermanent());
  EXPECT_FALSE(P->isForwarded());

  P->setCar(Value::fixnum(1));
  P->setCdr(Value::nil());
  EXPECT_EQ(P->car().asFixnum(), 1);
  EXPECT_TRUE(P->cdr().isNil());
}

TEST(ObjectTest, TypeNames) {
  EXPECT_STREQ(typeTagName(TypeTag::Pair), "pair");
  EXPECT_STREQ(typeTagName(TypeTag::Future), "future");
  EXPECT_STREQ(typeTagName(TypeTag::Closure), "procedure");
}

TEST(ObjectTest, FutureSlots) {
  Heap H(Heap::Config{});
  Object *F = H.allocatePermanent(TypeTag::Future, Object::FutureSizeWords);
  F->setSlot(Object::FutState, Value::fixnum(0));
  F->setSlot(Object::FutValue, Value::unspecified());
  F->setSlot(Object::FutWaiters, Value::nil());
  EXPECT_FALSE(F->futureResolved());
  F->resolveFutureSlots(Value::fixnum(42));
  EXPECT_TRUE(F->futureResolved());
  EXPECT_EQ(F->futureValue().asFixnum(), 42);
  EXPECT_TRUE(F->futureWaiters().isNil());
}

TEST(ObjectTest, StringPayload) {
  Heap H(Heap::Config{});
  const char *Text = "hello, mul-t";
  size_t Len = strlen(Text);
  Object *S = H.allocatePermanent(TypeTag::String, stringPayloadWords(Len),
                                  Object::FlagRaw);
  S->payload()[0] = Len;
  memcpy(S->stringData(), Text, Len);
  EXPECT_EQ(S->stringView(), Text);
  EXPECT_EQ(S->stringLength(), Len);
}
