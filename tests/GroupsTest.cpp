//===----------------------------------------------------------------------===//
///
/// \file
/// Groups and the exception model (paper section 2.3): one stopped
/// computation per typed expression, resumable in any order, inspectable,
/// killable.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ui/Repl.h"

using namespace mult;
using namespace mult::testutil;

namespace {

TEST(GroupsTest, ErrorStopsTheGroup) {
  Engine E(config(2));
  EvalResult R = E.eval("(+ 1 (car 5))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  Group *G = E.findGroup(R.StoppedGroup);
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->State, GroupState::Stopped);
  EXPECT_NE(G->Condition.find("car of a non-pair"), std::string::npos);
  EXPECT_EQ(E.currentStoppedGroup(), R.StoppedGroup);
}

TEST(GroupsTest, ResumeSubstitutesTheErringValue) {
  Engine E(config(2));
  EvalResult R = E.eval("(* 2 (car 99))");
  ASSERT_FALSE(R.ok());
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::fixnum(21));
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Val.asFixnum(), 42);
  EXPECT_EQ(E.findGroup(R.StoppedGroup)->State, GroupState::Done);
}

TEST(GroupsTest, ResumeUnboundVariable) {
  Engine E(config(1));
  EvalResult R = E.eval("(+ 1 nowhere)");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unbound variable: nowhere"), std::string::npos);
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::fixnum(9));
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(After.Val.asFixnum(), 10);
}

TEST(GroupsTest, UserErrorsCarryIrritants) {
  Engine E(config(1));
  EvalResult R = E.eval("(error \"bad thing:\" 1 '(2))");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("bad thing: 1 (2)"), std::string::npos) << R.Error;
}

TEST(GroupsTest, NoOtherGroupTaskRunsAfterStop) {
  // An exception in one task stops its siblings: the counter must stop
  // advancing once the group is stopped.
  Engine E(config(2));
  // One top-level form = one group: spinner and waiter are siblings.
  EvalResult R = E.eval(R"lisp(
    (define counter (cons 0 '()))
    (begin
      (define spinner
        (future (let loop ()
                  (set-car! counter (+ (car counter) 1))
                  (loop))))
      (let wait ()
        (if (< (car counter) 10) (wait) (car 'boom))))
  )lisp");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  // Read the counter twice via a *new* group; the spinner must not run
  // in between.
  int64_t A = evalFixnum(E, "(car counter)");
  int64_t B = evalFixnum(E, "(car counter)");
  EXPECT_EQ(A, B) << "a stopped group's tasks must not run";
  E.killGroup(R.StoppedGroup);
}

TEST(GroupsTest, ParkedSiblingsResumeWithTheGroup) {
  Engine E(config(2));
  EvalResult R = E.eval(R"lisp(
    (define cell (cons 0 '()))
    (define worker (future (begin (set-car! cell 5) (car 'oops))))
    (let wait () (if (= (car cell) 0) (wait) 'saw-it))
  )lisp");
  // The worker's error stopped the group; wait-loop was parked mid-run...
  // or the root completed first. Either way, if stopped, resume finishes.
  if (!R.ok()) {
    EvalResult After = E.resumeGroup(R.StoppedGroup, Value::fixnum(0));
    EXPECT_TRUE(After.ok()) << After.Error;
  }
}

TEST(GroupsTest, MultipleStoppedGroupsCoexist) {
  Engine E(config(1));
  EvalResult R1 = E.eval("(+ 1 (car 'a))");
  EvalResult R2 = E.eval("(+ 2 (car 'b))");
  ASSERT_FALSE(R1.ok());
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R1.StoppedGroup, R2.StoppedGroup);
  EXPECT_EQ(E.stoppedGroups().size(), 2u);
  // "The user may resume them in any order": resume the OLDER one first.
  EvalResult A1 = E.resumeGroup(R1.StoppedGroup, Value::fixnum(10));
  EXPECT_TRUE(A1.ok());
  EXPECT_EQ(A1.Val.asFixnum(), 11);
  EvalResult A2 = E.resumeGroup(R2.StoppedGroup, Value::fixnum(20));
  EXPECT_TRUE(A2.ok());
  EXPECT_EQ(A2.Val.asFixnum(), 22);
  EXPECT_TRUE(E.stoppedGroups().empty());
}

TEST(GroupsTest, KillDiscardsTheComputation) {
  Engine E(config(1));
  EvalResult R = E.eval("(car 'x)");
  ASSERT_FALSE(R.ok());
  E.killGroup(R.StoppedGroup);
  EXPECT_EQ(E.findGroup(R.StoppedGroup)->State, GroupState::Killed);
  EXPECT_TRUE(E.stoppedGroups().empty());
  // The engine still works.
  EXPECT_EQ(evalFixnum(E, "(+ 1 2)"), 3);
}

TEST(GroupsTest, KillWhileParkedLeaksNoTasks) {
  // Stop a group that has parked siblings (popped from a queue while the
  // group was stopped), then kill it: every member task must be retired,
  // not leaked in the Parked list.
  Engine E(config(2));
  EvalResult R = E.eval(R"lisp(
    (define spin-cell (cons 0 '()))
    (begin
      (define s1 (future (let loop ()
                           (set-car! spin-cell (+ (car spin-cell) 1))
                           (loop))))
      (define s2 (future (let loop ()
                           (set-car! spin-cell (+ (car spin-cell) 1))
                           (loop))))
      (let wait ()
        (if (< (car spin-cell) 10) (wait) (car 'boom))))
  )lisp");
  ASSERT_FALSE(R.ok());
  Group *G = E.findGroup(R.StoppedGroup);
  ASSERT_NE(G, nullptr);
  ASSERT_EQ(G->State, GroupState::Stopped);
  E.killGroup(R.StoppedGroup);
  EXPECT_TRUE(G->Parked.empty()) << "kill must clear the parked list";
  for (TaskId T : G->Members)
    EXPECT_EQ(E.liveTask(T), nullptr)
        << "task " << taskIndex(T) << " survived the kill";
  EXPECT_EQ(evalFixnum(E, "(+ 1 2)"), 3);
}

TEST(GroupsTest, TouchOfAKilledGroupsFutureStops) {
  // A future whose owner group was killed can never resolve; touching it
  // from another group must stop the toucher with a clear condition
  // instead of deadlocking the machine.
  Engine E(config(2));
  evalOk(E, "(define f #f)");
  EvalResult R = E.eval("(begin (set! f (future (car 5))) (touch f))");
  ASSERT_FALSE(R.ok());
  E.killGroup(R.StoppedGroup);
  EvalResult Again = E.eval("(touch f)");
  ASSERT_EQ(static_cast<int>(Again.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  EXPECT_NE(Again.Error.find("killed group"), std::string::npos)
      << Again.Error;
  E.killGroup(Again.StoppedGroup);
  EXPECT_EQ(evalFixnum(E, "(+ 2 3)"), 5);
}

TEST(GroupsTest, BacktraceNamesTheFrames) {
  Engine E(config(1));
  EvalResult R = E.eval(R"lisp(
    (define (inner x) (car x))
    (define (outer x) (+ 1 (inner x)))   ; non-tail: keeps outer's frame
    (outer 7)
  )lisp");
  ASSERT_FALSE(R.ok());
  Group *G = E.findGroup(R.StoppedGroup);
  std::string Bt = E.backtrace(G->CurrentTask);
  EXPECT_NE(Bt.find("inner"), std::string::npos) << Bt;
  EXPECT_NE(Bt.find("outer"), std::string::npos) << Bt;
}

TEST(GroupsTest, HandlerServerTaskRan) {
  // The per-processor exception-handler server task coordinates the stop.
  Engine E(config(2));
  EvalResult R = E.eval("(car 0)");
  ASSERT_FALSE(R.ok());
  uint64_t Activations = 0;
  for (unsigned P = 0; P < 2; ++P)
    Activations += E.machine().processor(P).HandlerActivations;
  EXPECT_EQ(Activations, 1u);
  E.killGroup(R.StoppedGroup);
}

TEST(GroupsTest, GroupsTrackTheirTaskCounts) {
  Engine E(config(2));
  EvalResult R = E.eval("(touch (future (touch (future 1))))");
  ASSERT_TRUE(R.ok());
  // Newest group: root + two children.
  const Group &G = E.allGroups().back();
  EXPECT_EQ(G.TasksCreated, 3u);
  EXPECT_EQ(G.State, GroupState::Done);
}

//===----------------------------------------------------------------------===//
// The REPL layer over groups.
//===----------------------------------------------------------------------===//

class ReplTest : public ::testing::Test {
protected:
  ReplTest() : E(config(2)), Out(Buf), R(E, Out) {}

  std::string line(std::string_view L) {
    Buf.clear();
    R.processLine(L);
    return Buf;
  }

  Engine E;
  std::string Buf;
  StringOutStream Out;
  Repl R;
};

TEST_F(ReplTest, EvaluatesExpressions) {
  EXPECT_EQ(line("(+ 1 2)"), "3\n");
  EXPECT_EQ(line("'sym"), "sym\n");
  EXPECT_EQ(line("(display \"out\")"), "out#[unspecified]\n");
}

TEST_F(ReplTest, BreakloopFlow) {
  std::string S = line("(+ 1 (car 5))");
  EXPECT_NE(S.find("exception"), std::string::npos);
  EXPECT_NE(S.find("stopped"), std::string::npos);
  EXPECT_EQ(R.prompt(), "mul-t[1]> ");

  S = line(":bt");
  EXPECT_NE(S.find("car of a non-pair"), std::string::npos);

  S = line(":groups");
  EXPECT_NE(S.find("[stopped]"), std::string::npos);

  S = line(":tasks");
  EXPECT_NE(S.find("<- current"), std::string::npos);

  S = line(":resume 41");
  EXPECT_EQ(S, "42\n");
  EXPECT_EQ(R.prompt(), "mul-t> ");
}

TEST_F(ReplTest, KillCommand) {
  line("(car 5)");
  std::string S = line(":kill");
  EXPECT_NE(S.find("killed"), std::string::npos);
  EXPECT_EQ(R.prompt(), "mul-t> ");
}

TEST_F(ReplTest, HelpAndUnknown) {
  EXPECT_NE(line(":help").find(":resume"), std::string::npos);
  EXPECT_NE(line(":frobnicate").find("unknown command"), std::string::npos);
}

TEST_F(ReplTest, ExitReturnsFalse) {
  EXPECT_FALSE(R.processLine(":exit"));
  EXPECT_TRUE(R.processLine("(+ 1 1)"));
}

TEST_F(ReplTest, StatsCommand) {
  line("(touch (future 1))");
  EXPECT_NE(line(":stats").find("futures: created"), std::string::npos);
}

} // namespace
