//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style parameterized sweeps: the same program must compute the
/// same value under every machine configuration (processor counts,
/// inlining thresholds, lazy futures, touch optimization, heap sizes,
/// steal order), and runs must be deterministic.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/Prng.h"

#include <algorithm>

using namespace mult;
using namespace mult::testutil;

namespace {

/// One machine configuration under test.
struct MachineParam {
  unsigned Procs;
  int Threshold; ///< -1 = infinity
  bool Lazy;
  bool OptimizeTouches;

  std::string name() const {
    std::string S = "p" + std::to_string(Procs);
    S += Threshold < 0 ? "_Tinf" : "_T" + std::to_string(Threshold);
    if (Lazy)
      S += "_lazy";
    if (!OptimizeTouches)
      S += "_noopt";
    return S;
  }
};

EngineConfig toConfig(const MachineParam &P) {
  EngineConfig C;
  C.NumProcessors = P.Procs;
  if (P.Threshold >= 0)
    C.InlineThreshold = static_cast<unsigned>(P.Threshold);
  C.LazyFutures = P.Lazy;
  C.OptimizeTouches = P.OptimizeTouches;
  C.MaxRunCycles = 500'000'000;
  return C;
}

class ConfigSweepTest : public ::testing::TestWithParam<MachineParam> {};

/// Programs mixing futures, mutation, recursion, data structures.
struct NamedProgram {
  const char *Name;
  const char *Source;
  const char *Expected;
};

const NamedProgram SweepPrograms[] = {
    {"fib",
     "(define (fib n) (if (< n 2) n (+ (touch (future (fib (- n 1)))) "
     "(fib (- n 2))))) (fib 13)",
     "233"},
    {"future-list",
     "(define (spawn n) (if (= n 0) '() (cons (future (* n 7)) "
     "(spawn (- n 1))))) (define (drain l) (if (null? l) 0 "
     "(+ (touch (car l)) (drain (cdr l))))) (drain (spawn 40))",
     "5740"},
    {"shared-mutation",
     "(define v (make-vector 8 0)) (define (fill i) (if (= i 8) 'done "
     "(begin (touch (future (vector-set! v i (* i i)))) (fill (+ i 1))))) "
     "(fill 0) (vector->list v)",
     "(0 1 4 9 16 25 36 49)"},
    {"non-strict-structures",
     "(define l (list (future 1) (future 2) (future 3))) "
     "(+ (car l) (cadr l) (caddr l))",
     "6"},
    {"higher-order",
     "(fold-left + 0 (map (lambda (x) (touch (future (* x x)))) "
     "(iota 20)))",
     "2470"},
    {"deep-futures",
     "(define (nest n) (if (= n 0) 42 (future (nest (- n 1))))) "
     "(touch (nest 30))",
     "42"},
};

TEST_P(ConfigSweepTest, ProgramsComputeTheSameValues) {
  Engine E(toConfig(GetParam()));
  for (const NamedProgram &P : SweepPrograms) {
    Engine Fresh(toConfig(GetParam()));
    EXPECT_EQ(evalPrint(Fresh, P.Source), P.Expected) << P.Name;
  }
  (void)E;
}

TEST_P(ConfigSweepTest, RunsAreDeterministic) {
  const char *Prog = SweepPrograms[0].Source;
  Engine A(toConfig(GetParam()));
  Engine B(toConfig(GetParam()));
  evalOk(A, Prog);
  evalOk(B, Prog);
  EXPECT_EQ(A.stats().ElapsedCycles, B.stats().ElapsedCycles);
  EXPECT_EQ(A.stats().Instructions, B.stats().Instructions);
  EXPECT_EQ(A.stats().TasksCreated, B.stats().TasksCreated);
  EXPECT_EQ(A.stats().Steals, B.stats().Steals);
}

INSTANTIATE_TEST_SUITE_P(
    Machines, ConfigSweepTest,
    ::testing::Values(MachineParam{1, -1, false, true},
                      MachineParam{1, 0, false, true},
                      MachineParam{1, 1, false, true},
                      MachineParam{2, -1, false, true},
                      MachineParam{2, 1, false, true},
                      MachineParam{4, -1, false, true},
                      MachineParam{4, 2, false, true},
                      MachineParam{8, 1, false, true},
                      MachineParam{1, -1, true, true},
                      MachineParam{4, -1, true, true},
                      MachineParam{8, -1, true, true},
                      MachineParam{2, -1, false, false},
                      MachineParam{4, 1, false, false}),
    [](const ::testing::TestParamInfo<MachineParam> &I) {
      return I.param.name();
    });

//===----------------------------------------------------------------------===//
// Heap-size sweep: results must not depend on GC frequency.
//===----------------------------------------------------------------------===//

class HeapSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HeapSweepTest, GcFrequencyDoesNotChangeResults) {
  EngineConfig C = config(2);
  C.InlineThreshold = 1;
  C.HeapWords = GetParam();
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
    (define (total l) (if (null? l) 0 (+ (car l) (total (cdr l)))))
    (let loop ((i 0) (acc 0))
      (if (= i 60)
          acc
          (loop (+ i 1) (+ acc (touch (future (total (build 300))))))))
  )lisp"),
            60 * (300 * 301 / 2));
  if (GetParam() <= (size_t(1) << 15))
    EXPECT_GE(E.gcStats().Collections, 1u)
        << "small heaps must actually have collected";
}

INSTANTIATE_TEST_SUITE_P(HeapSizes, HeapSweepTest,
                         ::testing::Values(size_t(1) << 14, size_t(1) << 15,
                                           size_t(1) << 18, size_t(1) << 22),
                         [](const ::testing::TestParamInfo<size_t> &I) {
                           return "words" + std::to_string(I.param);
                         });

//===----------------------------------------------------------------------===//
// Random-program property: Lisp mergesort agrees with std::sort.
//===----------------------------------------------------------------------===//

class SortPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SortPropertyTest, LispSortMatchesHostSort) {
  Prng R(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  size_t N = 1 + R.nextBelow(60);
  std::vector<int64_t> Input;
  std::string ListSrc = "(list";
  for (size_t I = 0; I < N; ++I) {
    int64_t X = static_cast<int64_t>(R.nextBelow(1000));
    Input.push_back(X);
    ListSrc += " " + std::to_string(X);
  }
  ListSrc += ")";

  EngineConfig C = config(1 + GetParam() % 4);
  C.InlineThreshold = 1;
  Engine E(C);
  evalOk(E, R"lisp(
    (define (merge! a b)
      (cond ((null? a) b)
            ((null? b) a)
            ((< (car a) (car b)) (set-cdr! a (merge! (cdr a) b)) a)
            (else (set-cdr! b (merge! a (cdr b))) b)))
    (define (split-after! l n)
      (if (= n 1)
          (let ((tail (cdr l))) (set-cdr! l '()) tail)
          (split-after! (cdr l) (- n 1))))
    (define (sort! l n)
      (if (< n 2)
          l
          (let ((half (quotient n 2)))
            (let ((right (split-after! l half)))
              (let ((a (future (sort! l half))))
                (let ((b (sort! right (- n half))))
                  (merge! (touch a) b)))))))
  )lisp");

  std::string Got = evalPrint(
      E, "(sort! " + ListSrc + " " + std::to_string(N) + ")");

  std::sort(Input.begin(), Input.end());
  std::string Want = "(";
  for (size_t I = 0; I < Input.size(); ++I)
    Want += (I ? " " : "") + std::to_string(Input[I]);
  Want += ")";
  EXPECT_EQ(Got, Want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortPropertyTest, ::testing::Range(0, 12));

} // namespace
