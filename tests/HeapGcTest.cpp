//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the chunked heap and the parallel stop-and-copy
/// collector (paper section 2.1.2).
///
//===----------------------------------------------------------------------===//

#include "runtime/Gc.h"
#include "runtime/Heap.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace mult;
using namespace mult::testutil;

namespace {

Heap::Config smallHeap(unsigned Allocators = 1) {
  Heap::Config C;
  C.SemispaceWords = 4096;
  C.ChunkWords = 256;
  C.LargeObjectWords = 64;
  C.NumAllocators = Allocators;
  return C;
}

} // namespace

TEST(HeapTest, ChunkAllocationIsCheap) {
  Heap H(smallHeap());
  // First allocation refills a chunk; subsequent ones bump locally.
  auto R1 = H.allocate(0, 0, TypeTag::Pair, 2);
  ASSERT_NE(R1.Obj, nullptr);
  EXPECT_GT(R1.Cycles, heapcost::ChunkBump); // includes the refill
  auto R2 = H.allocate(0, 100, TypeTag::Pair, 2);
  ASSERT_NE(R2.Obj, nullptr);
  EXPECT_EQ(R2.Cycles, heapcost::ChunkBump); // pure local bump
}

TEST(HeapTest, SeparateAllocatorsUseSeparateChunks) {
  Heap H(smallHeap(2));
  auto A = H.allocate(0, 0, TypeTag::Pair, 2);
  auto B = H.allocate(1, 0, TypeTag::Pair, 2);
  ASSERT_NE(A.Obj, nullptr);
  ASSERT_NE(B.Obj, nullptr);
  // Chunks are disjoint regions, so the objects are far apart.
  auto Delta = reinterpret_cast<intptr_t>(B.Obj) -
               reinterpret_cast<intptr_t>(A.Obj);
  EXPECT_GE(std::abs(Delta), static_cast<intptr_t>(256 * 8 - 64));
}

TEST(HeapTest, LargeObjectsBypassChunks) {
  Heap H(smallHeap());
  // Consume part of a chunk first.
  ASSERT_NE(H.allocate(0, 0, TypeTag::Pair, 2).Obj, nullptr);
  size_t UsedBefore = H.usedWords();
  auto R = H.allocate(0, 0, TypeTag::Vector, 100); // 101 words >= 64
  ASSERT_NE(R.Obj, nullptr);
  // Global cursor advanced by exactly the object, not a chunk.
  EXPECT_EQ(H.usedWords(), UsedBefore + 101);
}

TEST(HeapTest, ExhaustionSignalsGcNeeded) {
  Heap H(smallHeap());
  size_t Allocated = 0;
  for (;;) {
    auto R = H.allocate(0, 0, TypeTag::Pair, 2);
    if (!R.Obj)
      break;
    ++Allocated;
    ASSERT_LT(Allocated, 100000u) << "heap never reported exhaustion";
  }
  EXPECT_GT(Allocated, 1000u); // 4096 words / 3-word pairs, chunk waste
}

TEST(HeapTest, PermanentAreaTracksScannables) {
  Heap H(smallHeap());
  size_t Before = H.staticAreaSize();
  H.allocatePermanent(TypeTag::Pair, 2);
  H.allocatePermanent(TypeTag::String, 4, Object::FlagRaw); // raw: excluded
  H.allocatePermanent(TypeTag::Symbol, 3);
  EXPECT_EQ(H.staticAreaSize(), Before + 2);
}

TEST(HeapTest, StaticAreaSegmentsCoverEverything) {
  Heap H(smallHeap());
  for (int I = 0; I < 10; ++I)
    H.allocatePermanent(TypeTag::Pair, 2);
  size_t Total = 0;
  for (unsigned Seg = 0; Seg < 3; ++Seg) {
    auto [B, E] = H.staticAreaSegment(Seg, 3);
    Total += E - B;
  }
  EXPECT_EQ(Total, H.staticAreaSize());
}

//===----------------------------------------------------------------------===//
// Collector tests through the engine (realistic roots).
//===----------------------------------------------------------------------===//

TEST(GcTest, CollectionPreservesLiveData) {
  EngineConfig C = config(1);
  C.HeapWords = 1 << 14; // force several collections
  Engine E(C);
  int64_t N = evalFixnum(E, R"lisp(
    (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
    (define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
    (let loop ((i 0) (acc 0))
      (if (= i 40)
          acc
          (loop (+ i 1) (+ acc (sum (build 200))))))
  )lisp");
  EXPECT_EQ(N, 40 * (200 * 201 / 2));
  EXPECT_GE(E.gcStats().Collections, 1u);
}

TEST(GcTest, LiveStructureSurvivesIntact) {
  EngineConfig C = config(1);
  C.HeapWords = 1 << 14;
  Engine E(C);
  // Keep a structure live in a global across many collections and verify
  // it afterwards.
  evalOk(E, "(define keep (list 1 2 (list 3 4) \"five\" #\\x))");
  evalOk(E, R"lisp(
    (define (churn n) (if (= n 0) 'done (begin (make-vector 50 0)
                                               (churn (- n 1)))))
    (churn 500)
  )lisp");
  EXPECT_GE(E.gcStats().Collections, 1u);
  EXPECT_EQ(evalPrint(E, "keep"), "(1 2 (3 4) \"five\" #\\x)");
}

TEST(GcTest, MutatedQuotedDataIsTraced) {
  // set-car! on quoted (static-area) structure must keep the stored heap
  // value alive: the paper's GC scans the static area in segments.
  EngineConfig C = config(1);
  C.HeapWords = 1 << 14;
  Engine E(C);
  evalOk(E, "(define q '(a b c))");
  evalOk(E, "(set-car! q (list 10 20))"); // heap value into static pair
  evalOk(E, "(define (churn n) (if (= n 0) 0 (begin (make-vector 16 0) "
            "(churn (- n 1))))) (churn 3000)");
  EXPECT_GE(E.gcStats().Collections, 1u);
  EXPECT_EQ(evalPrint(E, "q"), "((10 20) b c)");
}

TEST(GcTest, ResolvedFuturesAreSpliced) {
  EngineConfig C = config(1);
  C.HeapWords = 1 << 15;
  Engine E(C);
  evalOk(E, "(define f (future 42))");
  evalOk(E, "(touch f)");
  evalOk(E, "(%gc)");
  // After the collection the global holds the value directly.
  Object *Sym = E.symbols().lookup("f");
  ASSERT_NE(Sym, nullptr);
  EXPECT_TRUE(Sym->globalValue().isFixnum());
  EXPECT_EQ(Sym->globalValue().asFixnum(), 42);
  EXPECT_GE(E.gcStats().Last.FuturesSpliced, 1u);
}

TEST(GcTest, ExplicitGcPrimitive) {
  Engine E(config(1));
  uint64_t Before = E.gcStats().Collections;
  evalOk(E, "(%gc)");
  EXPECT_EQ(E.gcStats().Collections, Before + 1);
}

TEST(GcTest, ParallelCollectionUsesAllProcessors) {
  EngineConfig C = config(4);
  C.HeapWords = 1 << 15;
  C.InlineThreshold = 1;
  Engine E(C);
  evalOk(E, R"lisp(
    (define (build n) (if (= n 0) '() (cons (make-vector 8 n) (build (- n 1)))))
    (define keep (build 100))
    (%gc)
  )lisp");
  const Gc::Stats &S = E.gcStats();
  ASSERT_GE(S.Collections, 1u);
  // Work was spread: the busiest processor did less than all the work.
  EXPECT_LT(S.Last.MaxProcWorkCycles, S.Last.WorkCycles);
  EXPECT_GT(S.Last.WordsCopied, 100u * 9u);
}

TEST(GcTest, HeapExhaustionIsReportedNotFatal) {
  EngineConfig C = config(1);
  C.HeapWords = 1 << 12; // 4096 words: too small for a big survivor list
  Engine E(C);
  EvalResult R = E.eval(
      "(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))"
      "(define keep (build 5000))");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::HeapExhausted));
}

TEST(GcTest, MonolithicOverAllocationIsDetected) {
  // A primitive that must allocate more than the post-collection headroom
  // in one go can never complete; the machine reports it instead of
  // thrashing in a GC loop.
  EngineConfig C = config(1);
  C.HeapWords = 1 << 14;
  Engine E(C);
  EvalResult R = E.eval(
      "(define (build n acc) (if (= n 0) acc (build (- n 1) "
      "(cons n acc))))"
      "(reverse (build 4000 '()))");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::HeapExhausted));
  EXPECT_NE(R.Error.find("single operation"), std::string::npos) << R.Error;
}

TEST(HeapTest, WedgedHeapRefusesAllocationAndCollection) {
  // The degradation contract: a wedged heap (to-space overflow mid-copy)
  // fails every allocation and refuses to start another collection, so
  // the engine can report a structured result instead of the host
  // asserting.
  Heap H(smallHeap());
  ASSERT_NE(H.allocate(0, 0, TypeTag::Pair, 2).Obj, nullptr);
  H.markWedged("test wedge");
  EXPECT_TRUE(H.wedged());
  EXPECT_EQ(H.wedgedReason(), "test wedge");
  EXPECT_EQ(H.allocate(0, 0, TypeTag::Pair, 2).Obj, nullptr);
  EXPECT_FALSE(H.beginCollection());
}

TEST(GcTest, RootFutureAllocationFailureIsStructured) {
  // A heap too small for even the root future: eval degrades to a
  // HeapExhausted result, not a crash (the prelude is skipped so nothing
  // needs the collectable heap before the root future).
  EngineConfig C = config(1);
  C.LoadPrelude = false;
  C.HeapWords = 4;
  C.ChunkWords = 4;
  C.LargeObjectWords = 4;
  Engine E(C);
  EvalResult R = E.eval("(+ 1 2)");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::HeapExhausted));
  EXPECT_NE(R.Error.find("root future"), std::string::npos) << R.Error;
}

TEST(GcTest, RootClosureAllocationFailureIsStructured) {
  // Seven words fit the 6-word root future but not the 2-word closure
  // after it, even after the rescue collection.
  EngineConfig C = config(1);
  C.LoadPrelude = false;
  C.HeapWords = 7;
  C.ChunkWords = 7;
  C.LargeObjectWords = 4;
  Engine E(C);
  EvalResult R = E.eval("(+ 1 2)");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::HeapExhausted));
  EXPECT_NE(R.Error.find("root closure"), std::string::npos) << R.Error;
}

TEST(GcTest, HeapExhaustionLandsInTheBreakloop) {
  // Exhaustion inside a task stops its group: inspectable, killable, and
  // the result carries heap facts for the report.
  EngineConfig C = config(1);
  C.HeapWords = 1 << 12;
  C.ChunkWords = 256; // keep chunks refillable after the rescue GC
  C.LargeObjectWords = 256; // must fit a chunk
  Engine E(C);
  EvalResult R = E.eval(
      "(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))"
      "(define keep (build 5000))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::HeapExhausted));
  EXPECT_NE(R.Error.find("heap-exhausted"), std::string::npos) << R.Error;
  Group *G = E.findGroup(R.StoppedGroup);
  ASSERT_NE(G, nullptr) << "exhaustion in a task must stop the group";
  EXPECT_EQ(G->State, GroupState::Stopped);
  EXPECT_EQ(R.Heap.CapacityWords, size_t(1) << 12);
  EXPECT_GT(R.Heap.UsedWords, 0u);
  EXPECT_FALSE(R.Heap.CollectorWedged);
  EXPECT_GE(E.stats().HeapExhaustedStops, 1u);
  // The backtrace works, the group can be killed, the engine survives.
  EXPECT_FALSE(E.backtrace(G->CurrentTask).empty());
  E.killGroup(R.StoppedGroup);
  EXPECT_EQ(evalFixnum(E, "(+ 40 2)"), 42);
}

TEST(GcTest, PauseTimeShrinksWithMoreProcessors) {
  // The motivation for parallelizing the collector: shorter pauses.
  // Live data must hang off many roots to parallelize: the collector
  // deliberately does no load balancing below root granularity ("once an
  // object is moved by a particular processor all of its components will
  // be moved by the same processor" -- paper section 2.1.2), so a single
  // big list is one processor's job no matter what.
  auto PauseWith = [](unsigned Procs) {
    EngineConfig C = config(Procs);
    C.HeapWords = 1 << 16;
    Engine E(C);
    evalOk(E, "(define (build n) (if (= n 0) '() (cons (make-vector 6 n) "
              "(build (- n 1)))))");
    for (int K = 0; K < 64; ++K)
      evalOk(E, "(define keep" + std::to_string(K) + " (build 16))");
    E.resetStats();
    evalOk(E, "(%gc)");
    return E.gcStats().Last.PauseCycles;
  };
  uint64_t P1 = PauseWith(1);
  uint64_t P4 = PauseWith(4);
  EXPECT_LT(P4, P1) << "parallel GC should shorten the pause";
  EXPECT_LT(P4, P1 * 3 / 4);
}
