//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpointed recovery and byzantine-fault detection: a deterministic
/// virtual-time checkpoint policy (EngineConfig::CheckpointEvery)
/// snapshots resumable task state so a proc-kill restarts lost futures
/// from their newest capture instead of from spawn, bounding the
/// re-executed work to CheckpointEvery + one quantum per task; a
/// proc-lie clause makes a processor return corrupted future values,
/// caught by seed-deterministic cross-check re-execution on a different
/// processor. See DESIGN.md "Checkpointed recovery" and "Byzantine
/// faults and cross-check detection".
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "fault/FaultPlan.h"
#include "obs/Metrics.h"
#include "support/StrUtil.h"
#include "ui/Repl.h"

#include <cstdlib>

using namespace mult;
using namespace mult::testutil;

namespace mult {
void dumpStats(OutStream &OS, const EngineStats &S); // core/Stats.cpp
} // namespace mult

namespace {

/// Eager-spawn workers, each a seam-free tail loop long enough to cross
/// many quantum boundaries: the workload the capture policy is built
/// for (every TimeSlice is capture-eligible). Returns workers * 20000.
const char *const WorkersTemplate = R"lisp(
  (begin
    (define (work n acc)
      (if (= n 0) acc (work (- n 1) (+ acc 1))))
    (define (spawn k)
      (if (= k 0) '() (cons (future (work 20000 0)) (spawn (- k 1)))))
    (define (wait l acc)
      (if (null? l) acc (wait (cdr l) (+ acc (touch (car l))))))
    (wait (spawn %d) 0))
)lisp";

EngineConfig ckptConfig(unsigned Procs, std::string Spec,
                        uint64_t Every = 2000) {
  EngineConfig C = config(Procs);
  C.Faults = std::move(Spec);
  C.CheckpointEvery = Every;
  C.InlineThreshold = 1'000'000; // eager: every worker a real task
  return C;
}

/// Cycle-tiling invariant, dead processors included (see RecoveryTest).
void checkInvariants(Engine &E) {
  for (unsigned I = 0; I < E.machine().numProcessors(); ++I) {
    const Processor &P = E.machine().processor(I);
    EXPECT_EQ(P.ClockAtReset + P.BusyCycles + P.IdleCycles + P.GcCycles,
              P.Clock)
        << "cycle accounting leak on processor " << I
        << (P.Dead ? " (dead)" : "");
  }
}

//===----------------------------------------------------------------------===//
// Capture policy
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, CapturesFireAtTheConfiguredInterval) {
  Engine E(ckptConfig(4, ""));
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
  const EngineStats &S = E.stats();
  EXPECT_GT(S.CheckpointsTaken, 0u)
      << "seam-free workers crossing quanta must be captured";
  EXPECT_GT(S.CheckpointCycles, 0u) << "captures are not free";
  // The per-processor counters tile the machine-wide one.
  uint64_t PerProc = 0;
  for (unsigned I = 0; I < 4; ++I)
    PerProc += E.machine().processor(I).CheckpointsTaken;
  EXPECT_EQ(PerProc, S.CheckpointsTaken);
  checkInvariants(E);
}

TEST(CheckpointTest, DormantPolicyLeavesNoFootprint) {
  // CheckpointEvery = 0 (the default): no captures, no new stats lines,
  // and the metrics report renders bit-identically to the pre-checkpoint
  // format (the golden-metrics guarantee).
  EngineConfig C = config(4);
  C.InlineThreshold = 1'000'000;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
  EXPECT_EQ(E.stats().CheckpointsTaken, 0u);
  EXPECT_EQ(E.stats().CheckpointCycles, 0u);
  std::string Dump;
  StringOutStream OS(Dump);
  dumpStats(OS, E.stats());
  dumpMetrics(OS, buildMetrics(E.machine(), E.stats(), E.gcStats(),
                               E.tracer(), nullptr, nullptr,
                               E.config().CheckpointEvery));
  EXPECT_EQ(Dump.find("checkpoints:"), std::string::npos) << Dump;
  EXPECT_EQ(Dump.find("recovery-bound:"), std::string::npos) << Dump;
  EXPECT_EQ(Dump.find("byzantine:"), std::string::npos) << Dump;
}

TEST(CheckpointTest, MultCheckpointEnvArmsThePolicy) {
  setenv("MULT_CHECKPOINT", "2000", 1);
  EngineConfig C = config(2);
  C.InlineThreshold = 1'000'000;
  Engine E(C);
  unsetenv("MULT_CHECKPOINT");
  EXPECT_EQ(E.config().CheckpointEvery, 2000u);
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 4)), 80000);
  EXPECT_GT(E.stats().CheckpointsTaken, 0u);
}

TEST(CheckpointTest, CaptureTranscriptIsDeterministic) {
  // Same config, fresh engines, 1/4/16 processors: bit-identical stats
  // dump (CheckpointCycles included), metrics report, and event trace.
  for (unsigned Procs : {1u, 4u, 16u}) {
    auto Run = [Procs](std::string &Out, std::vector<TraceEvent> &Events) {
      EngineConfig C = ckptConfig(Procs, "");
      C.EnableTracing = true;
      Engine E(C);
      EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
      StringOutStream OS(Out);
      dumpStats(OS, E.stats());
      dumpMetrics(OS, buildMetrics(E.machine(), E.stats(), E.gcStats(),
                                   E.tracer(), nullptr, nullptr,
                                   E.config().CheckpointEvery));
      Events.assign(E.tracer().events().begin(), E.tracer().events().end());
    };
    std::string A, B;
    std::vector<TraceEvent> EvA, EvB;
    Run(A, EvA);
    Run(B, EvB);
    EXPECT_EQ(A, B) << "at " << Procs << " procs";
    EXPECT_NE(A.find("checkpoints:"), std::string::npos) << A;
    ASSERT_EQ(EvA.size(), EvB.size()) << "at " << Procs << " procs";
    for (size_t I = 0; I < EvA.size(); ++I)
      ASSERT_TRUE(EvA[I].Kind == EvB[I].Kind && EvA[I].Proc == EvB[I].Proc &&
                  EvA[I].Clock == EvB[I].Clock && EvA[I].A == EvB[I].A &&
                  EvA[I].B == EvB[I].B && EvA[I].C == EvB[I].C)
          << "trace diverges at event " << I << " (" << Procs << " procs)";
  }
}

//===----------------------------------------------------------------------===//
// Checkpointed recovery
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, KilledTasksRestartFromTheirNewestCheckpoint) {
  Engine E(ckptConfig(4, "proc-kill=1@50000"));
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000)
      << "restored tasks must still produce the right answer";
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ProcsKilled, 1u);
  EXPECT_GE(S.TasksRestored, 1u)
      << "the kill lands mid-worker; its checkpoint must be used";
  EXPECT_GT(S.RecoveryCycles, 0u)
      << "the capture-to-kill delta is re-executed work";
  checkInvariants(E);
}

TEST(CheckpointTest, RecoveryCyclesAreBoundedByTheCaptureInterval) {
  // The tentpole invariant: a restored task re-executes at most the work
  // since its newest capture, and the policy captures within one quantum
  // of every CheckpointEvery busy cycles.
  EngineConfig C = ckptConfig(4, "proc-kill=1@50000");
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
  const EngineStats &S = E.stats();
  ASSERT_GE(S.TasksRestored, 1u);
  EXPECT_LE(S.MaxTaskRecoveryCycles, C.CheckpointEvery + C.QuantumCycles)
      << "a restored task re-executed more than one capture interval";
  // And the metrics report proves it in one line.
  std::string Dump;
  StringOutStream OS(Dump);
  dumpMetrics(OS, buildMetrics(E.machine(), E.stats(), E.gcStats(),
                               E.tracer(), nullptr, nullptr,
                               E.config().CheckpointEvery));
  EXPECT_NE(Dump.find("recovery-bound:"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("(OK)"), std::string::npos) << Dump;
  EXPECT_EQ(Dump.find("VIOLATED"), std::string::npos) << Dump;
}

TEST(CheckpointTest, RestoreIsCheaperThanSpawnReplay) {
  // Same kill without checkpoints: every lost worker re-runs from spawn,
  // so the recovery bucket must shrink when captures are armed.
  EngineConfig Base = ckptConfig(4, "proc-kill=1@50000", /*Every=*/0);
  Engine EBase(Base);
  EXPECT_EQ(evalFixnum(EBase, strFormat(WorkersTemplate, 8)), 160000);
  ASSERT_GE(EBase.stats().TasksRecovered, 1u);
  ASSERT_GT(EBase.stats().RecoveryCycles, 0u);

  Engine ECkpt(ckptConfig(4, "proc-kill=1@50000"));
  EXPECT_EQ(evalFixnum(ECkpt, strFormat(WorkersTemplate, 8)), 160000);
  ASSERT_GE(ECkpt.stats().TasksRestored, 1u);
  EXPECT_LT(ECkpt.stats().RecoveryCycles, EBase.stats().RecoveryCycles)
      << "restoring from a checkpoint must beat re-running from spawn";
}

TEST(CheckpointTest, RestoredTasksAreAnnouncedInTheTrace) {
  EngineConfig C = ckptConfig(4, "proc-kill=1@50000");
  C.EnableTracing = true;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
  uint64_t Captured = 0, Restored = 0;
  for (const TraceEvent &Ev : E.tracer().events()) {
    if (Ev.Kind == TraceEventKind::CheckpointTaken) {
      ++Captured;
      EXPECT_GT(Ev.B, 0u) << "payload B is the capture cost";
    } else if (Ev.Kind == TraceEventKind::TaskRestored) {
      ++Restored;
      EXPECT_NE(Ev.B, 1u) << "payload B (new home) must be a survivor";
      EXPECT_EQ(Ev.C, 1u) << "payload C is the dead processor";
    }
  }
  EXPECT_EQ(Captured, E.stats().CheckpointsTaken);
  EXPECT_EQ(Restored, E.stats().TasksRestored);
}

TEST(CheckpointTest, SecondKillWhileTheFirstRespawnDrainsIsSurvived) {
  // Overlapping fail-stops: the second victim is exactly the survivor
  // that inherited the first victim's restored tasks, and dies one
  // quantum later — before that backlog has drained. Its queues (the
  // inherited tasks included) must be recovered a second time onto the
  // remaining survivors.
  for (const char *Spec :
       {"proc-kill=1@30000,2@30064", "proc-kill=1@30000,2@30000"}) {
    Engine E(ckptConfig(4, Spec));
    EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000)
        << "spec " << Spec;
    const EngineStats &S = E.stats();
    EXPECT_EQ(S.ProcsKilled, 2u) << "spec " << Spec;
    EXPECT_TRUE(E.machine().processor(1).Dead);
    EXPECT_TRUE(E.machine().processor(2).Dead);
    checkInvariants(E);
    EXPECT_EQ(evalFixnum(E, "(* 6 7)"), 42)
        << "the machine must keep working on the remaining survivors";
  }
}

TEST(CheckpointTest, EpochMismatchFallsBackToSpawnReplay) {
  // Semaphore traffic bumps the side-effect epoch after every capture
  // that precedes a P/V, so stale records must not be restored across an
  // observable effect; the dining philosophers from RecoveryTest stress
  // exactly that. The run must still complete correctly — via restore
  // where the epoch matches, lineage replay or redirection elsewhere.
  const char *Philosophers = R"lisp(
    (begin
      (define n 5)
      (define rounds 200)
      (define forks (make-vector n 0))
      (define uses (make-vector n 0))
      (do ((i 0 (+ i 1))) ((= i n) #t)
        (vector-set! forks i (make-semaphore 1)))
      (define (dine who)
        (let ((li who) (ri (remainder (+ who 1) n)))
          (let ((fi (if (even? who) li ri))
                (si (if (even? who) ri li)))
            (let ((first (vector-ref forks fi))
                  (second (vector-ref forks si)))
              (let loop ((r 0))
                (if (= r rounds)
                    'full
                    (begin
                      (semaphore-p first)
                      (semaphore-p second)
                      (vector-set! uses li (+ (vector-ref uses li) 1))
                      (vector-set! uses ri (+ (vector-ref uses ri) 1))
                      (semaphore-v second)
                      (semaphore-v first)
                      (loop (+ r 1)))))))))
      (define (spawn who)
        (if (= who n) '() (cons (future (dine who)) (spawn (+ who 1)))))
      (define (wait-all l)
        (if (null? l) 'done (begin (touch (car l)) (wait-all (cdr l)))))
      (wait-all (spawn 0))
      (vector-ref uses 0))
  )lisp";
  Engine E(ckptConfig(4, "proc-kill=1@20000", /*Every=*/500));
  EXPECT_EQ(evalFixnum(E, Philosophers), 400);
  EXPECT_EQ(E.stats().ProcsKilled, 1u);
  checkInvariants(E);
}

//===----------------------------------------------------------------------===//
// Byzantine faults
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, CrossCheckCatchesALyingProcessor) {
  // cross-check=1: every finishing return is re-executed on another
  // processor, so the armed lie is caught the moment it fires. The stop
  // is breakloop-inspectable with both values and the liar's id, and
  // restartable: resume re-runs the return honestly.
  EngineConfig C = ckptConfig(4, "proc-lie=1@20000; cross-check=1");
  Engine E(C);
  EvalResult R = E.eval(strFormat(WorkersTemplate, 8));
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError))
      << "the detection must stop the group";
  EXPECT_NE(R.Error.find("byzantine-detected"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("processor 1"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("cross-check"), std::string::npos) << R.Error;
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ByzantineDetected, 1u);
  EXPECT_GE(S.CrossChecks, 1u);
  // Restartable: the corrupt value was never committed, so resuming
  // resolves the future honestly and the sum is exact.
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::falseV());
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Val.asFixnum(), 160000);
  checkInvariants(E);
}

TEST(CheckpointTest, DetectionConditionCarriesBothValues) {
  // The workers all compute 20000, so the condition must name the honest
  // value and the corrupted one it would have reported.
  Engine E(ckptConfig(4, "proc-lie=1@20000; cross-check=1"));
  EvalResult R = E.eval(strFormat(WorkersTemplate, 8));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("recomputed 20000"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find(strFormat("returned %lld", 20000ll ^ 0x2a)),
            std::string::npos)
      << R.Error;
}

TEST(CheckpointTest, UncheckedLieCorruptsTheResult) {
  // cross-check=0 disables detection outright: the corrupted future value
  // propagates into the sum, exactly as a silently faulty board would.
  Engine E(ckptConfig(4, "proc-lie=1@20000; cross-check=0"));
  int64_t Got = evalFixnum(E, strFormat(WorkersTemplate, 8));
  EXPECT_NE(Got, 160000) << "the lie must poison the sum";
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ByzantineLies, 1u);
  EXPECT_EQ(S.ByzantineDetected, 0u);
  EXPECT_EQ(S.CrossChecks, 0u);
}

TEST(CheckpointTest, CrossChecksAloneChargeTheCheckerDeterministically) {
  // Cross-checks without any lie: pure overhead, charged to a different
  // live processor, and bit-deterministic run to run.
  auto Run = [](std::string &Out) {
    Engine E(ckptConfig(4, "cross-check=0.5"));
    EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
    EXPECT_GE(E.stats().CrossChecks, 1u);
    EXPECT_EQ(E.stats().ByzantineLies, 0u);
    StringOutStream OS(Out);
    dumpStats(OS, E.stats());
  };
  std::string A, B;
  Run(A);
  Run(B);
  EXPECT_EQ(A, B);
  EXPECT_NE(A.find("byzantine:"), std::string::npos) << A;
}

TEST(CheckpointTest, LieAimedAtADeadProcessorIsConsumedSilently) {
  Engine E(ckptConfig(4, "proc-kill=1@10000; proc-lie=1@20000; cross-check=1"));
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
  EXPECT_EQ(E.stats().ByzantineLies, 0u);
  EXPECT_EQ(E.stats().ByzantineDetected, 0u);
  EXPECT_TRUE(E.machine().processor(1).Dead);
}

//===----------------------------------------------------------------------===//
// Kill inside a GC copy phase
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, KillInsideACollectionIsCompletedBySurvivors) {
  // gc-at forces a collection at mark 30000; the kill mark lands just
  // past the rendezvous cost, i.e. *inside* the collection. The victim's
  // root scan is forced (its current task must be evacuated so it can be
  // recovered), a survivor inherits its private copy stack, and the
  // machine-level fail-stop runs after the collection commits.
  EngineConfig C = ckptConfig(4, "gc-at=30000; proc-kill=1@30200");
  C.EnableTracing = true;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000)
      << "the half-copied heap must end up coherent";
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.ProcsKilled, 1u);
  EXPECT_TRUE(E.machine().processor(1).Dead);
  EXPECT_GE(E.gcStats().Collections, 1u);
  checkInvariants(E);
  // Record order is causal order: the kill must land between the
  // collection's begin and the first post-collection mutator event —
  // i.e. after GcEnd, because the engine defers the machine-level death
  // until the collection has committed.
  const auto &Events = E.tracer().events();
  size_t GcBegin = Events.size(), GcEnd = Events.size(),
         Kill = Events.size();
  for (size_t I = 0; I < Events.size(); ++I) {
    if (Events[I].Kind == TraceEventKind::GcBegin && GcBegin == Events.size())
      GcBegin = I;
    if (Events[I].Kind == TraceEventKind::GcEnd)
      GcEnd = I;
    if (Events[I].Kind == TraceEventKind::ProcKilled && Kill == Events.size())
      Kill = I;
  }
  ASSERT_LT(GcBegin, Events.size());
  ASSERT_LT(Kill, Events.size());
  EXPECT_GT(Kill, GcBegin) << "the kill must not precede the collection";
  // The heap stays usable afterwards.
  EXPECT_EQ(evalFixnum(E, "(* 6 7)"), 42);
}

TEST(CheckpointTest, GcPhaseKillTranscriptIsDeterministic) {
  auto Run = [](std::string &Out, std::vector<TraceEvent> &Events) {
    EngineConfig C = ckptConfig(4, "gc-at=30000; proc-kill=1@30200");
    C.EnableTracing = true;
    Engine E(C);
    EXPECT_EQ(evalFixnum(E, strFormat(WorkersTemplate, 8)), 160000);
    StringOutStream OS(Out);
    dumpStats(OS, E.stats());
    Events.assign(E.tracer().events().begin(), E.tracer().events().end());
  };
  std::string A, B;
  std::vector<TraceEvent> EvA, EvB;
  Run(A, EvA);
  Run(B, EvB);
  EXPECT_EQ(A, B);
  ASSERT_EQ(EvA.size(), EvB.size());
  for (size_t I = 0; I < EvA.size(); ++I)
    ASSERT_TRUE(EvA[I].Kind == EvB[I].Kind && EvA[I].Proc == EvB[I].Proc &&
                EvA[I].Clock == EvB[I].Clock && EvA[I].A == EvB[I].A &&
                EvA[I].B == EvB[I].B && EvA[I].C == EvB[I].C)
        << "trace diverges at event " << I;
}

//===----------------------------------------------------------------------===//
// The REPL's :procs checkpoint columns
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, ProcsCommandShowsCheckpointCounts) {
  EngineConfig C = ckptConfig(2, "");
  Engine E(C);
  std::string Buf;
  StringOutStream Out(Buf);
  Repl R(E, Out);
  R.processLine(strFormat(WorkersTemplate, 4));
  Buf.clear();
  R.processLine(":procs");
  EXPECT_NE(Buf.find("ckpts@last"), std::string::npos) << Buf;
  EXPECT_NE(Buf.find('@'), std::string::npos) << Buf;

  // Dormant config: the column (and header) must not appear at all.
  EngineConfig C2 = config(2);
  Engine E2(C2);
  std::string Buf2;
  StringOutStream Out2(Buf2);
  Repl R2(E2, Out2);
  R2.processLine(":procs");
  EXPECT_EQ(Buf2.find("ckpts"), std::string::npos) << Buf2;
}

} // namespace
