//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer: event tracing, the Chrome-trace exporter, the
/// metrics report, and the accounting invariants they rely on
/// (busy + idle + gc tiles every processor clock; every steal probe lands
/// in exactly one of Steals or StealsFailed).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "obs/Metrics.h"
#include "obs/TraceExport.h"
#include "sched/Scheduler.h"

#include <algorithm>
#include <cctype>
#include <map>

using namespace mult;
using namespace mult::testutil;

namespace {

/// Parallel workload with real futures, touches and (on >1 processor)
/// steals: the full protocol shows up in the trace.
const char *ParallelProgram = R"lisp(
  (define (spawn n)
    (if (= n 0) '()
        (cons (future (let loop ((i 0))
                        (if (= i 400) (* n n) (loop (+ i 1)))))
              (spawn (- n 1)))))
  (define (drain l acc)
    (if (null? l) acc (drain (cdr l) (+ acc (touch (car l))))))
  (drain (spawn 24) 0)
)lisp";

EngineConfig tracedConfig(unsigned Procs) {
  EngineConfig C = config(Procs);
  C.EnableTracing = true;
  return C;
}

/// Like ParallelProgram but allocation-heavy: each task repeatedly builds
/// and drops a list, so a small heap forces collections mid-run while the
/// live set stays well under a semispace.
const char *AllocatingProgram = R"lisp(
  (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
  (define (churn k acc)
    (if (= k 0) acc (churn (- k 1) (+ acc (length (build 1000))))))
  (define (spawn n)
    (if (= n 0) '() (cons (future (churn 5 0)) (spawn (- n 1)))))
  (define (drain l acc)
    (if (null? l) acc (drain (cdr l) (+ acc (touch (car l))))))
  (drain (spawn 16) 0)
)lisp";

size_t countKind(const Tracer &Tr, TraceEventKind K) {
  size_t N = 0;
  for (const TraceEvent &E : Tr.events())
    if (E.Kind == K)
      ++N;
  return N;
}

TEST(TraceTest, DisabledRecordsNothing) {
  Engine E(config(2)); // EnableTracing defaults to false
  evalOk(E, ParallelProgram);
  EXPECT_FALSE(E.tracer().enabled());
  EXPECT_EQ(E.tracer().size(), 0u);
}

TEST(TraceTest, LifecycleEventsPresent) {
  Engine E(tracedConfig(2));
  evalOk(E, ParallelProgram);
  const Tracer &Tr = E.tracer();
  EXPECT_GT(countKind(Tr, TraceEventKind::TaskCreate), 0u);
  EXPECT_GT(countKind(Tr, TraceEventKind::TaskStart), 0u);
  EXPECT_GT(countKind(Tr, TraceEventKind::TaskFinish), 0u);
  EXPECT_GT(countKind(Tr, TraceEventKind::FutureCreate), 0u);
  EXPECT_GT(countKind(Tr, TraceEventKind::FutureResolve), 0u);
  EXPECT_GT(countKind(Tr, TraceEventKind::InlineDecision), 0u);
  // 24 spawned tasks all created and all finished.
  EXPECT_GE(countKind(Tr, TraceEventKind::TaskCreate), 24u);
  EXPECT_GE(countKind(Tr, TraceEventKind::TaskFinish), 24u);
  // Touches happened, and every touch either hit or blocked.
  size_t Hits = countKind(Tr, TraceEventKind::TouchHit);
  size_t Blocks = countKind(Tr, TraceEventKind::TouchBlock);
  EXPECT_GT(Hits + Blocks, 0u);
  // Every block has a matching resume somewhere.
  EXPECT_EQ(countKind(Tr, TraceEventKind::TaskBlock),
            countKind(Tr, TraceEventKind::TaskResume));
}

TEST(TraceTest, PerProcessorTimestampsAreMonotone) {
  Engine E(tracedConfig(4));
  evalOk(E, ParallelProgram);
  std::map<unsigned, uint64_t> LastClock;
  for (const TraceEvent &Ev : E.tracer().events()) {
    auto [It, Fresh] = LastClock.try_emplace(Ev.Proc, Ev.Clock);
    if (!Fresh) {
      EXPECT_GE(Ev.Clock, It->second)
          << "clock regressed on processor " << unsigned(Ev.Proc) << " at "
          << traceEventKindName(Ev.Kind);
      It->second = Ev.Clock;
    }
  }
  EXPECT_GT(LastClock.size(), 1u) << "expected events from several processors";
}

TEST(TraceTest, StealProbesPartitionIntoSuccessAndFailure) {
  Engine E(tracedConfig(4));
  evalOk(E, ParallelProgram);
  const EngineStats &S = E.stats();
  EXPECT_GT(S.StealAttempts, 0u);
  EXPECT_GT(S.Steals, 0u);
  EXPECT_EQ(S.Steals + S.StealsFailed, S.StealAttempts)
      << "every probe must land in exactly one bucket";
  // The trace agrees with the counters event-for-event.
  size_t Probes = countKind(E.tracer(), TraceEventKind::StealAttempt);
  EXPECT_EQ(Probes, S.StealAttempts);
  size_t Successes = 0;
  for (const TraceEvent &Ev : E.tracer().events())
    if (Ev.Kind == TraceEventKind::StealAttempt && Ev.B == 1)
      ++Successes;
  EXPECT_EQ(Successes, S.Steals);
}

TEST(TraceTest, BusyIdleGcTileEveryProcessorClock) {
  // Small heap so collections interleave with the parallel run: the
  // invariant must survive GC pauses and run-start resynchronisation.
  EngineConfig C = tracedConfig(4);
  C.HeapWords = 1 << 16;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, AllocatingProgram), 16 * 5000);
  EXPECT_GT(E.gcStats().Collections, 0u) << "heap sized to force GC";
  for (unsigned I = 0; I < 4; ++I) {
    const Processor &P = E.machine().processor(I);
    EXPECT_EQ(P.ClockAtReset + P.BusyCycles + P.IdleCycles + P.GcCycles,
              P.Clock)
        << "cycle accounting leak on processor " << I;
  }
  // And again after an explicit reset + second run.
  E.resetStats();
  evalOk(E, "(+ 1 2)");
  for (unsigned I = 0; I < 4; ++I) {
    const Processor &P = E.machine().processor(I);
    EXPECT_EQ(P.ClockAtReset + P.BusyCycles + P.IdleCycles + P.GcCycles,
              P.Clock);
  }
}

TEST(TraceTest, GcAndIdleIntervalsArePaired) {
  EngineConfig C = tracedConfig(2);
  C.HeapWords = 1 << 16;
  Engine E(C);
  evalOk(E, AllocatingProgram);
  const Tracer &Tr = E.tracer();
  EXPECT_EQ(countKind(Tr, TraceEventKind::GcBegin),
            countKind(Tr, TraceEventKind::GcEnd));
  EXPECT_GT(countKind(Tr, TraceEventKind::GcBegin), 0u);
  // Idle intervals: every end has a begin; at most one interval per
  // processor can still be open (the machine stops as soon as the root
  // resolves).
  size_t IdleBegins = countKind(Tr, TraceEventKind::IdleBegin);
  size_t IdleEnds = countKind(Tr, TraceEventKind::IdleEnd);
  EXPECT_GE(IdleBegins, IdleEnds);
  EXPECT_LE(IdleBegins - IdleEnds, 2u);
}

//===----------------------------------------------------------------------===//
// Sink modes and drop accounting (Recorded + Dropped == Emitted, always)
//===----------------------------------------------------------------------===//

TEST(TraceSinkTest, RingKeepsNewestAndCountsDrops) {
  Tracer T;
  T.setEnabled(true);
  T.setRingCapacity(4);
  for (uint64_t I = 0; I < 10; ++I)
    T.record(TraceEventKind::TaskStart, 0, /*Clock=*/I, /*A=*/I);
  EXPECT_EQ(T.emitted(), 10u);
  EXPECT_EQ(T.dropped(), 6u);
  EXPECT_EQ(T.recorded(), 4u);
  EXPECT_EQ(T.size(), 4u);
  // The survivors are the newest four, in emission order.
  ASSERT_EQ(T.events().size(), 4u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(T.events()[I].A, 6u + I);
  // Accounting holds under capacity too.
  T.clear();
  EXPECT_EQ(T.emitted(), 0u);
  T.record(TraceEventKind::TaskStart, 0, 0, 1);
  EXPECT_EQ(T.recorded() + T.dropped(), T.emitted());
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_EQ(T.ringCapacity(), 4u) << "clear() keeps the configured sink";
}

TEST(TraceSinkTest, RingCapsEngineTraceMemory) {
  EngineConfig C = tracedConfig(2);
  C.TraceSink = "ring:256";
  Engine E(C);
  evalOk(E, ParallelProgram);
  const Tracer &Tr = E.tracer();
  EXPECT_LE(Tr.size(), 256u);
  EXPECT_GT(Tr.dropped(), 0u) << "workload sized to overflow the ring";
  EXPECT_EQ(Tr.recorded() + Tr.dropped(), Tr.emitted());
  // The linearized ring is still monotone per processor.
  std::map<unsigned, uint64_t> LastClock;
  for (const TraceEvent &Ev : Tr.events()) {
    auto [It, Fresh] = LastClock.try_emplace(Ev.Proc, Ev.Clock);
    if (!Fresh) {
      EXPECT_GE(Ev.Clock, It->second);
      It->second = Ev.Clock;
    }
  }
}

TEST(TraceSinkTest, StreamWritesLoadableFile) {
  std::string Path = ::testing::TempDir() + "mult_stream_trace.bin";
  {
    Tracer T;
    T.setEnabled(true);
    std::string Err;
    ASSERT_TRUE(T.configureSink("stream:" + Path, Err)) << Err;
    EXPECT_EQ(T.mode(), TraceSinkMode::Stream);
    EXPECT_EQ(T.size(), 0u) << "stream buffers nothing in memory";
    for (uint64_t I = 0; I < 100; ++I)
      T.record(TraceEventKind::TouchHit, I % 3, 1000 + I, I, I * 2, I * 3);
    EXPECT_EQ(T.emitted(), 100u);
    T.flushStream();
    // ~Tracer patches the final counters and closes the file.
  }
  TraceFile F;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, F, Err)) << Err;
  EXPECT_EQ(F.Emitted, 100u);
  EXPECT_EQ(F.Dropped, 0u);
  ASSERT_EQ(F.Events.size(), 100u);
  for (uint64_t I = 0; I < 100; ++I) {
    EXPECT_EQ(F.Events[I].Clock, 1000 + I);
    EXPECT_EQ(F.Events[I].A, I);
    EXPECT_EQ(F.Events[I].B, I * 2);
    EXPECT_EQ(F.Events[I].C, I * 3);
    EXPECT_EQ(F.Events[I].Proc, I % 3);
    EXPECT_EQ(static_cast<int>(F.Events[I].Kind),
              static_cast<int>(TraceEventKind::TouchHit));
  }
  // The loaded trace feeds the analyzer path used for stream-mode runs.
  std::remove(Path.c_str());
}

TEST(TraceSinkTest, ReadTraceFileRejectsGarbage) {
  std::string Path = ::testing::TempDir() + "mult_not_a_trace.bin";
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("definitely not a trace file", F);
  std::fclose(F);
  TraceFile Out;
  std::string Err;
  EXPECT_FALSE(readTraceFile(Path, Out, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(readTraceFile(Path + ".missing", Out, Err));
  std::remove(Path.c_str());
}

TEST(TraceSinkTest, ConfigureSinkRejectsMalformedSpecs) {
  Tracer T;
  std::string Err;
  EXPECT_FALSE(T.configureSink("ring:0", Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(T.configureSink("ring:abc", Err));
  EXPECT_FALSE(T.configureSink("ring:", Err));
  EXPECT_FALSE(T.configureSink("bogus", Err));
  EXPECT_EQ(T.mode(), TraceSinkMode::Unbounded) << "bad specs change nothing";
  EXPECT_TRUE(T.configureSink("ring:8", Err)) << Err;
  EXPECT_EQ(T.ringCapacity(), 8u);
  EXPECT_TRUE(T.configureSink("unbounded", Err)) << Err;
  EXPECT_EQ(T.mode(), TraceSinkMode::Unbounded);
}

TEST(TraceSinkTest, SwitchingSinksStartsAFreshRecording) {
  // A sink switch discards the buffer, so it must also reset the
  // counters: a stream header claiming events recorded under the
  // previous sink would break Recorded + Dropped == Emitted.
  Tracer T;
  T.setEnabled(true);
  for (uint64_t I = 0; I < 5; ++I)
    T.record(TraceEventKind::TaskStart, 0, I);
  EXPECT_EQ(T.emitted(), 5u);
  std::string Err;
  ASSERT_TRUE(T.configureSink("ring:4", Err)) << Err;
  EXPECT_EQ(T.emitted(), 0u);
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_EQ(T.size(), 0u);
  for (uint64_t I = 0; I < 6; ++I)
    T.record(TraceEventKind::TaskStart, 0, I);
  EXPECT_EQ(T.dropped(), 2u);
  std::string Path = ::testing::TempDir() + "mult_switch_trace.bin";
  ASSERT_TRUE(T.configureSink("stream:" + Path, Err)) << Err;
  EXPECT_EQ(T.emitted(), 0u);
  EXPECT_EQ(T.dropped(), 0u);
  T.record(TraceEventKind::TaskStart, 0, 0);
  ASSERT_TRUE(T.configureSink("unbounded", Err)) << Err;
  EXPECT_EQ(T.emitted(), 0u);
  TraceFile F;
  ASSERT_TRUE(readTraceFile(Path, F, Err)) << Err;
  EXPECT_EQ(F.Emitted, 1u) << "header counts only this sink's events";
  EXPECT_EQ(F.Events.size(), 1u);
  std::remove(Path.c_str());
}

TEST(TraceSinkTest, ResolveSerialsSurviveClear) {
  // Serials must never repeat within an engine: a cleared buffer does not
  // license reusing a serial a stale future stamp may still carry.
  Tracer T;
  T.setEnabled(true);
  uint64_t S1 = T.newResolveSerial();
  T.clear();
  uint64_t S2 = T.newResolveSerial();
  EXPECT_GT(S2, S1);
}

//===----------------------------------------------------------------------===//
// Exporter
//===----------------------------------------------------------------------===//

/// Minimal JSON syntax checker (objects, arrays, strings, numbers, the
/// three literals). Returns true when \p S is one complete JSON value.
class JsonChecker {
public:
  explicit JsonChecker(std::string_view S) : S(S) {}
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{': return object();
    case '[': return array();
    case '"': return string();
    case 't': return literal("true");
    case 'f': return literal("false");
    case 'n': return literal("null");
    default: return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') { ++Pos; return true; }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') { ++Pos; continue; }
      if (peek() == '}') { ++Pos; return true; }
      return false;
    }
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') { ++Pos; return true; }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') { ++Pos; continue; }
      if (peek() == ']') { ++Pos; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\')
        ++Pos;
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos;
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }
  bool literal(std::string_view L) {
    if (S.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  std::string_view S;
  size_t Pos = 0;
};

TEST(TraceExportTest, EmitsValidChromeTraceJson) {
  Engine E(tracedConfig(2));
  evalOk(E, ParallelProgram);
  std::string Json = chromeTraceJson(E.tracer(), E.machine());
  ASSERT_FALSE(Json.empty());
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
  // The pieces Perfetto needs: the event array, thread-name metadata for
  // each virtual processor, duration slices, and the cycle counters.
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"vcpu 0\""), std::string::npos);
  EXPECT_NE(Json.find("\"vcpu 1\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"cycles\""), std::string::npos);
  EXPECT_NE(Json.find("\"busy\""), std::string::npos);
}

TEST(TraceExportTest, EmptyTraceStillValid) {
  Engine E(config(1));
  evalOk(E, "(+ 1 2)");
  std::string Json = chromeTraceJson(E.tracer(), E.machine());
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json.substr(0, 400);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, ReportMatchesCountersAndTrace) {
  Engine E(tracedConfig(4));
  evalOk(E, ParallelProgram);
  MetricsReport R =
      buildMetrics(E.machine(), E.stats(), E.gcStats(), E.tracer());
  ASSERT_EQ(R.Procs.size(), 4u);
  EXPECT_EQ(R.Steals + R.StealsFailed, R.StealAttempts);
  EXPECT_GT(R.stealSuccessRate(), 0.0);
  EXPECT_LE(R.stealSuccessRate(), 1.0);
  uint64_t Started = 0;
  for (const ProcMetrics &P : R.Procs)
    Started += P.TasksStarted;
  EXPECT_GT(Started, 0u);
  // The backlog of 24 futures must have shown up in some queue.
  size_t MaxHighWater = 0;
  for (const ProcMetrics &P : R.Procs)
    MaxHighWater = std::max(MaxHighWater, P.NewQueueHighWater);
  EXPECT_GT(MaxHighWater, 0u);
  // Trace-derived lifetimes: every spawned task measured.
  EXPECT_GE(R.TasksMeasured, 24u);
  uint64_t Bucketed = 0;
  for (uint64_t N : R.TaskLifetimeLog2)
    Bucketed += N;
  EXPECT_EQ(Bucketed, R.TasksMeasured);
  // Rendering never crashes and mentions the key sections.
  std::string Text;
  StringOutStream OS(Text);
  dumpMetrics(OS, R);
  EXPECT_NE(Text.find("steal"), std::string::npos);
  EXPECT_NE(Text.find("busy"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Group-stop vetting (the dispatch-side bugfix paths)
//===----------------------------------------------------------------------===//

/// Two real futures are queued, then the root task raises before touching
/// them: the group stops with Ready tasks still sitting in the new queue.
const char *StopWithBacklog = R"lisp(
  (begin (future (let loop ((i 0)) (if (= i 50000) 1 (loop (+ i 1)))))
         (future (let loop ((i 0)) (if (= i 50000) 2 (loop (+ i 1)))))
         (car 5))
)lisp";

TEST(SchedulerVetTest, StoppedGroupTasksAreParkedOnDispatch) {
  Engine E(tracedConfig(1));
  EvalResult R = E.eval(StopWithBacklog);
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  Group *G = E.findGroup(R.StoppedGroup);
  ASSERT_NE(G, nullptr);
  ASSERT_EQ(static_cast<int>(G->State),
            static_cast<int>(GroupState::Stopped));
  Processor &P = E.machine().processor(0);
  ASSERT_GT(P.Queues.newCount(), 0u) << "backlog should still be queued";
  size_t Before = G->Parked.size();
  // Drain the queue by hand: every popped member of the stopped group must
  // be parked (state Stopped, on the group's parked list), not run or lost.
  while (dispatchNextTask(E, E.machine(), P) != InvalidTask) {
  }
  EXPECT_EQ(P.Queues.newCount(), 0u);
  EXPECT_GE(G->Parked.size(), Before + 2);
  for (TaskId Id : G->Parked) {
    Task *T = E.liveTask(Id);
    if (!T)
      continue;
    EXPECT_EQ(static_cast<int>(T->State),
              static_cast<int>(TaskState::Stopped));
  }
  EXPECT_GE(countKind(E.tracer(), TraceEventKind::TaskParked), 2u);
  // Parked tasks survive: resuming the group reruns them to completion.
  EvalResult RR = E.resumeGroup(R.StoppedGroup, Value::nil());
  EXPECT_TRUE(RR.ok()) << RR.Error;
}

TEST(SchedulerVetTest, KilledGroupTasksAreDroppedOnDispatch) {
  Engine E(tracedConfig(1));
  EvalResult R = E.eval(StopWithBacklog);
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  Group *G = E.findGroup(R.StoppedGroup);
  ASSERT_NE(G, nullptr);
  Processor &P = E.machine().processor(0);
  ASSERT_GT(P.Queues.newCount(), 0u);
  // Flip the group to Killed directly: Engine::killGroup finishes live
  // members eagerly, so the dispatch-side drop path only runs when a
  // kill races a queued id — which this simulates.
  G->State = GroupState::Killed;
  size_t Queued = P.Queues.newCount();
  while (dispatchNextTask(E, E.machine(), P) != InvalidTask) {
  }
  EXPECT_EQ(P.Queues.newCount(), 0u);
  EXPECT_GE(countKind(E.tracer(), TraceEventKind::TaskDropped), Queued);
  // Dropped tasks are gone for good: their slots were recycled.
  for (TaskId Id : G->Members)
    if (Task *T = E.liveTask(Id))
      EXPECT_NE(static_cast<int>(T->State),
                static_cast<int>(TaskState::Ready));
}

//===----------------------------------------------------------------------===//
// Steal-order ablation at the queue level
//===----------------------------------------------------------------------===//

TEST(TaskQueuesTest, OwnerPopsLifoThiefObeysStealOrder) {
  auto Id = [](uint32_t N) { return makeTaskId(N, 1); };
  uint64_t Cycles = 0;
  {
    TaskQueues Q;
    Q.pushNew(Id(1), 0);
    Q.pushNew(Id(2), 0);
    Q.pushNew(Id(3), 0);
    EXPECT_EQ(Q.newHighWater(), 3u);
    // The owner always takes the newest (paper: LIFO selection).
    EXPECT_EQ(Q.popNew(0, Cycles), Id(3));
    // A LIFO thief takes the newest remaining...
    EXPECT_EQ(Q.stealNew(0, Cycles, StealOrder::Lifo), Id(2));
    Q.pushNew(Id(4), 0);
    // ...a FIFO thief the oldest.
    EXPECT_EQ(Q.stealNew(0, Cycles, StealOrder::Fifo), Id(1));
    EXPECT_EQ(Q.stealNew(0, Cycles, StealOrder::Fifo), Id(4));
    EXPECT_EQ(Q.stealNew(0, Cycles, StealOrder::Fifo), InvalidTask);
  }
  {
    TaskQueues Q;
    Q.pushSuspended(Id(7), 0);
    Q.pushSuspended(Id(8), 0);
    EXPECT_EQ(Q.suspendedHighWater(), 2u);
    EXPECT_EQ(Q.stealSuspended(0, Cycles, StealOrder::Fifo), Id(7));
    EXPECT_EQ(Q.popSuspended(0, Cycles), Id(8));
    Q.resetHighWater();
    EXPECT_EQ(Q.suspendedHighWater(), 0u);
  }
}

TEST(TaskQueuesTest, StealOrderChangesWhichTasksMove) {
  // End-to-end ablation: both orders complete the backlog with steals;
  // the schedules differ (different total cycles is the usual symptom,
  // but the hard guarantee is simply that both are correct).
  for (StealOrder O : {StealOrder::Lifo, StealOrder::Fifo}) {
    EngineConfig C = config(4);
    C.StealPolicy = O;
    C.EnableTracing = true;
    Engine E(C);
    EXPECT_EQ(evalFixnum(E, ParallelProgram), 4900); // sum n^2, n=1..24
    EXPECT_GT(E.stats().Steals, 0u);
    EXPECT_EQ(E.stats().Steals + E.stats().StealsFailed,
              E.stats().StealAttempts);
  }
}

} // namespace
