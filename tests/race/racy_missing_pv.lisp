; Dining philosophers with per-fork use counters, minus one P/V pair:
; philosopher 0 bumps its second fork's counter without holding that
; fork, racing with the neighbour's protected bump.
(define n 5)
(define rounds 3)
(define forks (make-vector n 0))
(define uses (make-vector n 0))
(do ((i 0 (+ i 1))) ((= i n) #t) (vector-set! forks i (make-semaphore 1)))
(define (dine who) (let ((li who) (ri (remainder (+ who 1) n))) (let ((fi (if (even? who) li ri)) (si (if (even? who) ri li))) (let ((first (vector-ref forks fi)) (second (vector-ref forks si))) (let loop ((r 0)) (if (= r rounds) 'full (begin (semaphore-p first) (if (> who 0) (semaphore-p second) #t) (vector-set! uses li (+ (vector-ref uses li) 1)) (vector-set! uses ri (+ (vector-ref uses ri) 1)) (if (> who 0) (semaphore-v second) #t) (semaphore-v first) (loop (+ r 1)))))))))
(define (spawn who) (if (= who n) '() (cons (future (dine who)) (spawn (+ who 1)))))
(define (wait-all l) (if (null? l) 'done (begin (touch (car l)) (wait-all (cdr l)))))
(wait-all (spawn 0))
