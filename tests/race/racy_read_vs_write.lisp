; The parent reads the vector slot before touching the future that
; writes it: the read and the child's write are logically parallel.
(define vv (make-vector 1 0))
(define (racy) (let ((f (future (vector-set! vv 0 1)))) (let ((seen (vector-ref vv 0))) (touch f) seen)))
(racy)
