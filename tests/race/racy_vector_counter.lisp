; Classic lost-update shape: two futures read-modify-write a shared
; vector slot with no semaphore.
(define vv (make-vector 1 0))
(define (bump) (vector-set! vv 0 (+ (vector-ref vv 0) 1)))
(define (racy) (let ((f (future (bump))) (g (future (bump)))) (touch f) (touch g) (vector-ref vv 0)))
(racy)
