; Two sibling futures set! the same closed-over variable; the touches
; come after both spawns, so nothing orders the writes. One expression
; per line: tools/race_check.py feeds this to the line-based REPL.
(define (racy) (let ((x 0)) (let ((f (future (set! x 1))) (g (future (set! x 2)))) (touch f) (touch g) x)))
(racy)
