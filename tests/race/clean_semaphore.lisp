; Control: the shared counter is protected by a semaphore; P/V pairs
; contribute happens-before cross-edges. Must NOT be flagged.
(define s (make-semaphore 1))
(define vv (make-vector 1 0))
(define (bump) (semaphore-p s) (vector-set! vv 0 (+ (vector-ref vv 0) 1)) (semaphore-v s))
(define (ok) (let ((f (future (bump))) (g (future (bump)))) (touch f) (touch g) (vector-ref vv 0)))
(ok)
