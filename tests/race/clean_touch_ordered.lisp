; Control: the touch is a series edge, so the parent's write and read
; strictly follow the child's write. Must NOT be flagged.
(define vv (make-vector 1 0))
(define (ok) (let ((f (future (vector-set! vv 0 1)))) (touch f) (vector-set! vv 0 2) (vector-ref vv 0)))
(ok)
