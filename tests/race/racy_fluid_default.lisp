; Dynamic-environment mutation: with no task-local bind in scope, both
; set-fluid! calls hit the shared global default box.
(define-fluid *mode* 0)
(define (racy) (let ((f (future (set-fluid! *mode* 1))) (g (future (set-fluid! *mode* 2)))) (touch f) (touch g) (fluid *mode*)))
(racy)
