//===----------------------------------------------------------------------===//
///
/// \file
/// Deep dynamic binding (paper section 2.1.1) and semaphores (section 3).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

class FluidTest : public ::testing::Test {
protected:
  FluidTest() : E(config(2)) {}
  Engine E;
};

TEST_F(FluidTest, DefaultsAndBinds) {
  evalOk(E, "(define-fluid radix 10)");
  EXPECT_EQ(evalFixnum(E, "(fluid radix)"), 10);
  EXPECT_EQ(evalFixnum(E, "(bind ((radix 16)) (fluid radix))"), 16);
  EXPECT_EQ(evalFixnum(E, "(fluid radix)"), 10) << "bind must unwind";
}

TEST_F(FluidTest, BindNests) {
  evalOk(E, "(define-fluid depth 0)");
  EXPECT_EQ(evalPrint(E, R"lisp(
    (bind ((depth 1))
      (list (fluid depth)
            (bind ((depth 2)) (fluid depth))
            (fluid depth)))
  )lisp"),
            "(1 2 1)");
}

TEST_F(FluidTest, SetFluidMutatesInnermostBinding) {
  evalOk(E, "(define-fluid x 'top)");
  EXPECT_EQ(evalPrint(E, R"lisp(
    (bind ((x 'inner))
      (set-fluid! x 'changed)
      (fluid x))
  )lisp"),
            "changed");
  EXPECT_EQ(evalPrint(E, "(fluid x)"), "top");
}

TEST_F(FluidTest, DynamicLookupSeesCallersBinding) {
  // Deep binding: the callee reads the caller's dynamic binding, not a
  // lexical one.
  evalOk(E, "(define-fluid mode 'plain)");
  evalOk(E, "(define (show) (fluid mode))");
  EXPECT_EQ(evalPrint(E, "(bind ((mode 'fancy)) (show))"), "fancy");
}

TEST_F(FluidTest, TasksHaveTheirOwnBindings) {
  // "the variable should not be shared between instantiations": each task
  // re-binding a fluid is isolated from its siblings.
  evalOk(E, "(define-fluid slot 'default)");
  EXPECT_EQ(evalPrint(E, R"lisp(
    (let ((a (future (bind ((slot 'task-a)) (fluid slot))))
          (b (future (bind ((slot 'task-b)) (fluid slot)))))
      (list (touch a) (touch b) (fluid slot)))
  )lisp"),
            "(task-a task-b default)");
}

TEST_F(FluidTest, ChildSeesBindingAtCreationTime) {
  evalOk(E, "(define-fluid who 'outer)");
  EXPECT_EQ(evalPrint(E, R"lisp(
    (bind ((who 'creator))
      (let ((f (future (fluid who))))
        (touch f)))
  )lisp"),
            "creator");
}

TEST_F(FluidTest, UnboundFluidIsAnError) {
  evalErr(E, "(fluid never-defined)", EvalResult::Kind::RuntimeError);
}

class SemaphoreTest : public ::testing::Test {
protected:
  SemaphoreTest() : E(config(2)) {}
  Engine E;
};

TEST_F(SemaphoreTest, CountingBasics) {
  EXPECT_EQ(evalPrint(E, R"lisp(
    (let ((s (make-semaphore 2)))
      (semaphore-p s)
      (semaphore-p s)
      (semaphore-v s)
      (semaphore-p s)
      'ok)
  )lisp"),
            "ok");
}

TEST_F(SemaphoreTest, PBlocksUntilV) {
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (let ((s (make-semaphore))
          (cell (cons 0 '())))
      (let ((child (future (begin (semaphore-p s) (car cell)))))
        (set-car! cell 77)
        (semaphore-v s)
        (touch child)))
  )lisp"),
            77);
}

TEST_F(SemaphoreTest, MutualExclusionProtectsACounter) {
  // Two increments of a shared cell under a lock: no lost update in the
  // interleaved schedule.
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (let ((lock (make-semaphore 1))
          (cell (cons 0 '())))
      (define (bump n)
        (if (= n 0)
            'done
            (begin (semaphore-p lock)
                   (set-car! cell (+ (car cell) 1))
                   (semaphore-v lock)
                   (bump (- n 1)))))
      (let ((a (future (bump 25)))
            (b (future (bump 25))))
        (touch a) (touch b)
        (car cell)))
  )lisp"),
            50);
}

TEST_F(SemaphoreTest, WaitersWakeInFifoOrder) {
  EXPECT_EQ(evalPrint(E, R"lisp(
    (let ((s (make-semaphore))
          (order (cons '() '())))
      (define (waiter tag)
        (future (begin (semaphore-p s)
                       (set-car! order (cons tag (car order)))
                       (semaphore-v s))))
      (let ((a (waiter 'a)))
        (let ((b (waiter 'b)))
          ;; give both a chance to block
          (let spin ((i 0)) (if (< i 3000) (spin (+ i 1)) #t))
          (semaphore-v s)
          (touch a) (touch b)
          (reverse (car order)))))
  )lisp"),
            "(a b)");
}

TEST_F(SemaphoreTest, TypeErrors) {
  evalErr(E, "(semaphore-p 3)", EvalResult::Kind::RuntimeError);
  evalErr(E, "(semaphore-v '(1))", EvalResult::Kind::RuntimeError);
  evalErr(E, "(make-semaphore -1)", EvalResult::Kind::RuntimeError);
}

} // namespace
