//===----------------------------------------------------------------------===//
///
/// \file
/// Scheduling policy (paper section 2.1.3) and the inlining optimization
/// (section 3).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

/// 100 independent futures created before any touch: a queued backlog.
const char *BacklogProgram = R"lisp(
  (define (spawn n)
    (if (= n 0) '() (cons (future (* n n)) (spawn (- n 1)))))
  (define (drain l acc)
    (if (null? l) acc (drain (cdr l) (+ acc (touch (car l))))))
  (drain (spawn 100) 0)
)lisp";

int64_t expectedSum() {
  int64_t S = 0;
  for (int64_t I = 1; I <= 100; ++I)
    S += I * I;
  return S;
}

TEST(InliningTest, ThresholdZeroInlinesEverything) {
  EngineConfig C = config(1);
  C.InlineThreshold = 0;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, BacklogProgram), expectedSum());
  EXPECT_EQ(E.stats().FuturesCreated, 0u);
  EXPECT_EQ(E.stats().TasksInlined, 100u);
}

TEST(InliningTest, ThresholdOneKeepsOneBuffered) {
  EngineConfig C = config(1);
  C.InlineThreshold = 1;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, BacklogProgram), expectedSum());
  // The first future queues; with one task buffered, the rest inline.
  EXPECT_EQ(E.stats().FuturesCreated, 1u);
  EXPECT_EQ(E.stats().TasksInlined, 99u);
}

TEST(InliningTest, ThresholdInfinityNeverInlines) {
  Engine E(config(1)); // InlineThreshold unset = infinity
  EXPECT_EQ(evalFixnum(E, BacklogProgram), expectedSum());
  EXPECT_EQ(E.stats().FuturesCreated, 100u);
  EXPECT_EQ(E.stats().TasksInlined, 0u);
}

TEST(InliningTest, IntermediateThresholdsBuffer) {
  for (unsigned T : {2u, 4u, 8u}) {
    EngineConfig C = config(1);
    C.InlineThreshold = T;
    Engine E(C);
    EXPECT_EQ(evalFixnum(E, BacklogProgram), expectedSum());
    EXPECT_EQ(E.stats().FuturesCreated, T) << "T=" << T;
  }
}

TEST(InliningTest, InliningIsFasterOnOneProcessor) {
  auto CyclesWith = [](std::optional<unsigned> T) {
    EngineConfig C = config(1);
    C.InlineThreshold = T;
    Engine E(C);
    evalOk(E, BacklogProgram);
    return E.stats().ElapsedCycles;
  };
  uint64_t Inlined = CyclesWith(1u);
  uint64_t Eager = CyclesWith(std::nullopt);
  EXPECT_LT(Inlined, Eager)
      << "avoiding task creation must save cycles (paper section 3)";
}

TEST(InliningTest, ParentChildWeldingDeadlocks) {
  // The paper's semaphore example: under inlining the child is welded to
  // the parent, the V never runs, and the program deadlocks...
  EngineConfig C = config(1);
  C.InlineThreshold = 0;
  Engine E(C);
  EvalResult R = E.eval(R"lisp(
    (let ((x (make-semaphore)))
      (let ((f (future (begin (semaphore-p x) 7))))
        (semaphore-v x)
        (touch f)))
  )lisp");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::Deadlock));
}

TEST(InliningTest, SameProgramRunsWithoutInlining) {
  // ...while with real futures it completes (paper: "the code for the
  // future will block pending the semaphore-v operation").
  Engine E(config(2));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (let ((x (make-semaphore)))
      (let ((f (future (begin (semaphore-p x) 7))))
        (semaphore-v x)
        (touch f)))
  )lisp"),
            7);
}

TEST(SchedulerTest, DispatchPrefersOwnQueues) {
  // On one processor nothing can be stolen.
  EngineConfig C = config(1);
  Engine E(C);
  evalOk(E, BacklogProgram);
  EXPECT_EQ(E.stats().Steals, 0u);
  EXPECT_GT(E.stats().Dispatches, 0u);
}

TEST(SchedulerTest, IdleProcessorsStealNewTasks) {
  EngineConfig C = config(4);
  Engine E(C);
  evalOk(E, BacklogProgram);
  EXPECT_GT(E.stats().Steals, 0u);
  // All 100 child tasks ran somewhere (plus the three top-level roots).
  EXPECT_EQ(E.stats().TasksCompleted, 103u);
}

TEST(SchedulerTest, WorkSpreadsAcrossProcessors) {
  EngineConfig C = config(4);
  Engine E(C);
  evalOk(E, R"lisp(
    (define (spawn n)
      (if (= n 0) '()
          (cons (future (let loop ((i 0))
                          (if (= i 3000) n (loop (+ i 1)))))
                (spawn (- n 1)))))
    (define (drain l) (if (null? l) 0 (+ (touch (car l)) (drain (cdr l)))))
    (drain (spawn 16))
  )lisp");
  unsigned Working = 0;
  for (unsigned P = 0; P < 4; ++P)
    if (E.machine().processor(P).TasksStarted > 0)
      ++Working;
  EXPECT_EQ(Working, 4u) << "every processor should have found work";
}

TEST(SchedulerTest, MoreProcessorsMeanFewerVirtualCycles) {
  auto CyclesWith = [](unsigned Procs) {
    EngineConfig C = config(Procs);
    Engine E(C);
    evalOk(E, R"lisp(
      (define (spawn n)
        (if (= n 0) '()
            (cons (future (let loop ((i 0))
                            (if (= i 4000) n (loop (+ i 1)))))
                  (spawn (- n 1)))))
      (define (drain l) (if (null? l) 0 (+ (touch (car l)) (drain (cdr l)))))
      (drain (spawn 16))
    )lisp");
    return E.stats().ElapsedCycles;
  };
  uint64_t C1 = CyclesWith(1);
  uint64_t C4 = CyclesWith(4);
  uint64_t C8 = CyclesWith(8);
  EXPECT_LT(C4, C1 / 2) << "expect near-linear speedup on 16 even tasks";
  EXPECT_LT(C8, C4);
}

TEST(SchedulerTest, StealOrderIsConfigurable) {
  for (StealOrder O : {StealOrder::Lifo, StealOrder::Fifo}) {
    EngineConfig C = config(4);
    C.StealPolicy = O;
    Engine E(C);
    EXPECT_EQ(evalFixnum(E, BacklogProgram), expectedSum());
  }
}

TEST(SchedulerTest, RunawayProgramHitsCycleLimit) {
  EngineConfig C = config(1);
  C.MaxRunCycles = 100000;
  Engine E(C);
  EvalResult R = E.eval("(let loop ((i 0)) (loop (+ i 1)))");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::CycleLimit));
}

} // namespace
