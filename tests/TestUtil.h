//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the Mul-T test suite.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_TESTS_TESTUTIL_H
#define MULT_TESTS_TESTUTIL_H

#include "core/Engine.h"
#include "runtime/Printer.h"

#include <gtest/gtest.h>

namespace mult {
namespace testutil {

inline EngineConfig config(unsigned Procs = 1) {
  EngineConfig C;
  C.NumProcessors = Procs;
  // Keep tests fast to diagnose if something spins.
  C.MaxRunCycles = 500'000'000;
  return C;
}

/// Evaluates \p Src expecting success.
inline Value evalOk(Engine &E, std::string_view Src) {
  EvalResult R = E.eval(Src);
  EXPECT_TRUE(R.ok()) << "error `" << R.Error << "` evaluating: " << Src;
  return R.Val;
}

/// Evaluates \p Src expecting a fixnum result.
inline int64_t evalFixnum(Engine &E, std::string_view Src) {
  Value V = evalOk(E, Src);
  EXPECT_TRUE(V.isFixnum()) << "non-fixnum result " << valueToString(V)
                            << " for: " << Src;
  return V.isFixnum() ? V.asFixnum() : 0;
}

/// Evaluates \p Src and renders the result with `write`.
inline std::string evalPrint(Engine &E, std::string_view Src) {
  return valueToString(evalOk(E, Src));
}

/// Evaluates \p Src expecting a specific failure kind; returns the message.
inline std::string evalErr(Engine &E, std::string_view Src,
                           EvalResult::Kind Kind) {
  EvalResult R = E.eval(Src);
  EXPECT_EQ(static_cast<int>(R.K), static_cast<int>(Kind))
      << "for: " << Src << " (got `" << R.Error << "`)";
  return R.Error;
}

} // namespace testutil
} // namespace mult

#endif // MULT_TESTS_TESTUTIL_H
