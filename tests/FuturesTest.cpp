//===----------------------------------------------------------------------===//
///
/// \file
/// Semantics of `future`, `touch`, implicit touches and blocking — the
/// paper's core constructs (sections 1.1, 4).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

class FuturesTest : public ::testing::Test {
protected:
  FuturesTest() : E(config(2)) {}
  Engine E;
};

TEST_F(FuturesTest, TouchOfFutureYieldsValue) {
  EXPECT_EQ(evalFixnum(E, "(touch (future 42))"), 42);
  EXPECT_EQ(E.stats().FuturesCreated, 1u);
  EXPECT_EQ(E.stats().FuturesResolved, 1u);
}

TEST_F(FuturesTest, NonStrictOperationsPassFuturesThrough) {
  // cons does not touch: the future flows into the pair unresolved.
  evalOk(E, "(define p (cons (future (* 6 7)) '()))");
  // future? tests the tag bit without touching.
  Value IsFut = evalOk(E, "(future? (car p))");
  // By now the child very likely ran, but the slot still holds the
  // future-tagged pointer either way; future? sees the tag.
  EXPECT_TRUE(IsFut.isBoolean());
  // A strict operation touches and gets the value.
  EXPECT_EQ(evalFixnum(E, "(+ 0 (car p))"), 42);
}

TEST_F(FuturesTest, ImplicitTouchOnStrictOps) {
  EXPECT_EQ(evalFixnum(E, "(+ (future 1) (future 2))"), 3);
  EXPECT_EQ(evalPrint(E, "(car (future '(5)))"), "5");
  EXPECT_EQ(evalPrint(E, "(if (future #f) 'yes 'no)"), "no");
  EXPECT_EQ(evalPrint(E, "(eq? (future 'a) (future 'a))"), "#t");
  EXPECT_EQ(evalPrint(E, "(null? (future '()))"), "#t");
  EXPECT_EQ(evalFixnum(E, "(vector-ref (future #(7)) (future 0))"), 7);
  // Calling a future of a procedure touches the callee.
  EXPECT_EQ(evalFixnum(E, "((future car) '(3))"), 3);
}

TEST_F(FuturesTest, ReturningAndStoringAreNonStrict) {
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (pass-through x) x)          ; parameter passing: non-strict
    (let ((v (make-vector 1 0)))
      (vector-set! v 0 (future 9))       ; storing: non-strict
      (+ 0 (vector-ref v 0)))            ; arithmetic touches
  )lisp"),
            9);
}

TEST_F(FuturesTest, NestedFutureChainsCollapse) {
  EXPECT_EQ(evalFixnum(E, "(touch (future (future (future 5))))"), 5);
}

TEST_F(FuturesTest, DeterminedPredicate) {
  evalOk(E, "(define f (future 1))");
  evalOk(E, "(touch f)");
  EXPECT_EQ(evalPrint(E, "(determined? f)"), "#t");
  EXPECT_EQ(evalPrint(E, "(determined? 3)"), "#t");
}

TEST_F(FuturesTest, TouchOfNonFutureIsIdentity) {
  EXPECT_EQ(evalFixnum(E, "(touch 17)"), 17);
  EXPECT_EQ(evalPrint(E, "(touch '(a))"), "(a)");
}

TEST_F(FuturesTest, ManyWaitersAllWake) {
  // w waiters blocked on one future (Table 1 step 5's `14w` term).
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define slow (future (let loop ((i 0)) (if (= i 2000) 'go
                                               (loop (+ i 1))))))
    (define (waiter k) (future (begin (touch slow) k)))
    (let ((ws (list (waiter 1) (waiter 2) (waiter 3) (waiter 4))))
      (+ (touch (car ws)) (touch (cadr ws))
         (touch (caddr ws)) (touch (cadddr ws))))
  )lisp"),
            10);
}

TEST_F(FuturesTest, FutureValuesFlowBetweenTasks) {
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (tree n)
      (if (< n 2)
          1
          (+ (touch (future (tree (- n 1))))
             (touch (future (tree (- n 2)))))))
    (tree 12)
  )lisp"),
            233);
}

TEST_F(FuturesTest, SideEffectsAreVisibleAcrossTasks) {
  // Shared heap: a child's set-car! is seen by the parent after sync.
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define cell (cons 0 0))
    (touch (future (set-car! cell 99)))
    (car cell)
  )lisp"),
            99);
}

TEST_F(FuturesTest, FutureStatsAndSteps) {
  E.resetStats();
  evalOk(E, "(touch (future 0))");
  const EngineStats &S = E.stats();
  EXPECT_EQ(S.FuturesCreated, 1u);
  EXPECT_EQ(S.FuturesResolved, 1u);
  EXPECT_GT(S.Steps.MakeThunkCycles, 0u);
  EXPECT_GT(S.Steps.CreateEnqueueCycles, 0u);
  EXPECT_GT(S.Steps.DispatchNewCycles, 0u);
  EXPECT_GT(S.Steps.ResolveCycles, 0u);
}

TEST_F(FuturesTest, WorkStealingHappensAcrossProcessors) {
  EngineConfig C = config(4);
  Engine E4(C);
  evalOk(E4, R"lisp(
    (define (spawn n)
      (if (= n 0)
          '()
          (cons (future (let loop ((i 0))
                          (if (= i 400) n (loop (+ i 1)))))
                (spawn (- n 1)))))
    (define (drain l) (if (null? l) 0 (+ (touch (car l)) (drain (cdr l)))))
    (drain (spawn 32))
  )lisp");
  EXPECT_GT(E4.stats().Steals, 0u)
      << "4 processors should have stolen from the creator's queue";
}

TEST_F(FuturesTest, LocalityWokenTaskReturnsToItsProcessor) {
  // A task woken by resolution goes to the suspended queue of the
  // processor it last ran on (paper section 2.1.3). Make a *child* task
  // block on another future so the step-6 path (dequeue a suspended
  // future task) is exercised.
  EngineConfig C = config(2);
  Engine E2(C);
  evalOk(E2, R"lisp(
    (touch (future (+ 1 (touch (future (let loop ((i 0))
                                          (if (< i 2000)
                                              (loop (+ i 1))
                                              5)))))))
  )lisp");
  EXPECT_GT(E2.stats().Steps.DispatchSuspCycles, 0u);
}

TEST_F(FuturesTest, ChildInheritsDynamicEnvironment) {
  // The future captures the parent's process-specific variables
  // (paper section 2.2: a future's components include them).
  EXPECT_EQ(evalPrint(E, R"lisp(
    (define-fluid whoami 'global)
    (bind ((whoami 'parent))
      (touch (future (fluid whoami))))
  )lisp"),
            "parent");
}

TEST_F(FuturesTest, SequentialWithoutFutures) {
  // "When execution of a Mul-T program is not made explicitly parallel
  // using future, it is sequential": exactly one task per top-level form.
  E.resetStats();
  evalOk(E, "(+ 1 2)");
  EXPECT_EQ(E.stats().TasksCreated, 1u); // just the root task
}

} // namespace
