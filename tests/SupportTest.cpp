//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support layer: streams, PRNG, virtual locks,
/// string helpers, and the task queues.
///
//===----------------------------------------------------------------------===//

#include "sched/TaskQueues.h"
#include "support/OutStream.h"
#include "support/Prng.h"
#include "support/StrUtil.h"
#include "support/VirtualLock.h"

#include <gtest/gtest.h>

using namespace mult;

TEST(OutStreamTest, FormatsScalars) {
  std::string Buf;
  StringOutStream OS(Buf);
  OS << "x=" << 42 << ' ' << int64_t(-7) << ' ' << uint64_t(9) << ' '
     << 2.5 << '\n';
  EXPECT_EQ(Buf, "x=42 -7 9 2.5\n");
}

TEST(PrngTest, DeterministicPerSeed) {
  Prng A(123), B(123), C(124);
  for (int I = 0; I < 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    (void)C.next();
  }
  A.seed(123);
  C.seed(123);
  EXPECT_EQ(A.next(), C.next());
}

TEST(PrngTest, BoundedValuesStayInRange) {
  Prng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(32), 32u);
  // All residues hit over a long run (sanity, not statistics).
  bool Seen[8] = {};
  for (int I = 0; I < 200; ++I)
    Seen[R.nextBelow(8)] = true;
  for (bool S : Seen)
    EXPECT_TRUE(S);
}

TEST(VirtualLockTest, UncontendedCostsHoldOnly) {
  VirtualLock L;
  EXPECT_EQ(L.acquire(100, 5), 5u);
  // Next acquisition after the hold window: no wait.
  EXPECT_EQ(L.acquire(200, 5), 5u);
  EXPECT_EQ(L.waitedCycles(), 0u);
}

TEST(VirtualLockTest, ContentionChargesWaiting) {
  VirtualLock L;
  L.acquire(100, 10); // busy until 110
  // A second processor arrives at 103: waits 7, holds 10.
  EXPECT_EQ(L.acquire(103, 10), 17u);
  EXPECT_EQ(L.waitedCycles(), 7u);
  // Third arrives at 104: busy until 120 now -> waits 16.
  EXPECT_EQ(L.acquire(104, 10), 26u);
  EXPECT_EQ(L.acquisitions(), 3u);
}

TEST(StrUtilTest, Formatting) {
  EXPECT_EQ(strFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatSeconds(1.234), "1.23");
  EXPECT_EQ(formatSeconds(45.67), "45.7");
  EXPECT_EQ(formatSeconds(456.7), "457");
  EXPECT_TRUE(isAllWhitespace(" \t\n"));
  EXPECT_FALSE(isAllWhitespace(" x "));
}

TEST(TaskQueuesTest, OwnerPopsAreLifo) {
  TaskQueues Q;
  Q.pushNew(1, 0);
  Q.pushNew(2, 0);
  Q.pushNew(3, 0);
  uint64_t Cycles = 0;
  EXPECT_EQ(Q.popNew(0, Cycles), 3u);
  EXPECT_EQ(Q.popNew(0, Cycles), 2u);
  EXPECT_EQ(Q.popNew(0, Cycles), 1u);
  EXPECT_EQ(Q.popNew(0, Cycles), InvalidTask);
}

TEST(TaskQueuesTest, StealOrderIsConfigurable) {
  TaskQueues Q;
  Q.pushNew(1, 0);
  Q.pushNew(2, 0);
  uint64_t Cycles = 0;
  EXPECT_EQ(Q.stealNew(0, Cycles, StealOrder::Fifo), 1u); // oldest
  EXPECT_EQ(Q.stealNew(0, Cycles, StealOrder::Lifo), 2u); // newest
}

TEST(TaskQueuesTest, QueuesAreIndependent) {
  TaskQueues Q;
  Q.pushNew(1, 0);
  Q.pushSuspended(2, 0);
  EXPECT_EQ(Q.newCount(), 1u);
  EXPECT_EQ(Q.suspendedCount(), 1u);
  EXPECT_EQ(Q.depth(), 2u);
  uint64_t Cycles = 0;
  EXPECT_EQ(Q.popSuspended(0, Cycles), 2u);
  EXPECT_EQ(Q.popSuspended(0, Cycles), InvalidTask);
  EXPECT_EQ(Q.popNew(0, Cycles), 1u);
}

TEST(TaskQueuesTest, OperationsChargeCycles) {
  TaskQueues Q;
  uint64_t PushCost = Q.pushNew(7, 0);
  EXPECT_GT(PushCost, 0u);
  uint64_t Cycles = 0;
  Q.popNew(0, Cycles);
  EXPECT_GT(Cycles, 0u);
  // Empty-check cost is cheaper than a real dequeue.
  uint64_t EmptyCycles = 0;
  Q.popNew(0, EmptyCycles);
  EXPECT_LT(EmptyCycles, Cycles);
}
