//===----------------------------------------------------------------------===//
///
/// \file
/// Cost-model calibration tests against the paper's Table 1 and the
/// surrounding microbenchmark numbers (section 4).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

/// Expects |Got - Want| <= Slack.
void expectNear(uint64_t Got, uint64_t Want, uint64_t Slack,
                const char *What) {
  uint64_t Lo = Want > Slack ? Want - Slack : 0;
  EXPECT_GE(Got, Lo) << What;
  EXPECT_LE(Got, Want + Slack) << What;
}

TEST(CostModelTest, TouchFutureZeroTotalNearPaper) {
  // (touch (future 0)) costs about 196 NS32332 instructions (Table 1).
  Engine E(config(1));
  E.resetStats();
  evalOk(E, "(touch (future 0))");
  const FutureStepStats &S = E.stats().Steps;
  expectNear(S.total(), 196, 40, "total future cost");
}

TEST(CostModelTest, StepBreakdownNearTable1) {
  Engine E(config(1));
  E.resetStats();
  evalOk(E, "(touch (future 0))");
  const FutureStepStats &S = E.stats().Steps;
  expectNear(S.MakeThunkCycles, 15, 6, "step 1: make thunk, call *future");
  expectNear(S.CreateEnqueueCycles, 41, 12, "step 2: create and enqueue");
  expectNear(S.BlockCycles, 33, 12, "step 3: block toucher");
  expectNear(S.DispatchNewCycles, 37, 12, "step 4: dequeue + start");
  expectNear(S.ResolveCycles, 40, 14, "step 5: resolve + 1 waiter (26+14)");
  expectNear(S.DispatchSuspCycles, 30, 12, "step 6: dequeue + resume");
}

TEST(CostModelTest, NonBlockingFutureIsCheaper) {
  // "In many cases no tasks will block on a future, reducing the overhead
  // to approximately 119 instructions." Needs a second processor so the
  // child can finish while the parent spins.
  Engine E(config(2));
  E.resetStats();
  // Compute something long enough that the future resolves before the
  // touch, then touch: no blocking.
  evalOk(E, R"lisp(
    (let ((f (future 0)))
      (let spin ((i 0)) (if (< i 500) (spin (+ i 1)) #t))
      (touch f))
  )lisp");
  const FutureStepStats &S = E.stats().Steps;
  EXPECT_EQ(S.BlockCycles, 0u) << "the touch must not block";
  EXPECT_EQ(S.DispatchSuspCycles, 0u);
  expectNear(S.total(), 119, 55, "non-blocking future cost");
}

TEST(CostModelTest, TrivialCallRatioNearTwentyFive) {
  // The paper: (touch (future 0)) vs ((lambda () 0)) is about 25:1 in
  // Mul-T (vs only 3:1 in interpretive Multilisp).
  Engine E(config(1));
  evalOk(E, "(define (trivial) 0)");

  E.resetStats();
  evalOk(E, "(touch (future 0))");
  uint64_t FutureCost = E.stats().Steps.total();

  // Cost one call by differencing two loops (loop overhead cancels).
  auto LoopCycles = [&](const char *Body) {
    E.resetStats();
    evalOk(E, Body);
    return E.stats().ElapsedCycles;
  };
  uint64_t With = LoopCycles(
      "(let loop ((i 0)) (if (= i 1000) 'done (begin (trivial) "
      "(loop (+ i 1)))))");
  uint64_t Without = LoopCycles(
      "(let loop ((i 0)) (if (= i 1000) 'done (begin 0 (loop (+ i 1)))))");
  uint64_t PerCall = (With - Without) / 1000;
  // Call(4) + PushFixnum(1) + Return(3) = 8, the paper's figure.
  expectNear(PerCall, 8, 3, "trivial call cost");
  double Ratio = double(FutureCost) / double(PerCall);
  EXPECT_GT(Ratio, 15.0);
  EXPECT_LT(Ratio, 40.0);
}

TEST(CostModelTest, TouchIsTwoInstructions) {
  // Difference a loop with N extra touches of a non-future local.
  Engine E(config(1));
  auto LoopCycles = [&](const char *Body) {
    E.resetStats();
    evalOk(E, Body);
    return E.stats().ElapsedCycles;
  };
  // `(touch i)` on a loop variable the optimizer cannot prove (it flows
  // through the call) — use an opaque global cell instead.
  evalOk(E, "(define cell (cons 5 '()))");
  uint64_t With = LoopCycles(
      "(let loop ((i 0)) (if (= i 1000) 'done (begin (touch (car cell)) "
      "(loop (+ i 1)))))");
  uint64_t Without = LoopCycles(
      "(let loop ((i 0)) (if (= i 1000) 'done (begin (car cell) "
      "(loop (+ i 1)))))");
  uint64_t PerTouch = (With - Without) / 1000;
  expectNear(PerTouch, 2, 1, "touch cost (tbit + beq)");
}

TEST(CostModelTest, VirtualSecondsConversion) {
  // 196 instructions at the paper's measured rate is ~220 microseconds.
  double Us = EngineStats::cyclesToSeconds(196) * 1e6;
  EXPECT_GT(Us, 210.0);
  EXPECT_LT(Us, 230.0);
}

TEST(CostModelTest, InstructionCountsAreExact) {
  // The simulator's instruction counter is architectural, not sampled.
  Engine E(config(1));
  E.resetStats();
  evalOk(E, "42");
  // Root task: PushFixnum + Return = 2 instructions.
  EXPECT_EQ(E.stats().Instructions, 2u);
}

} // namespace
