//===----------------------------------------------------------------------===//
///
/// \file
/// The always-on latency telemetry: histogram bucket math, percentile
/// extraction, cross-processor merging, registry lifecycle, determinism
/// of the virtual-time histograms, and the Prometheus/JSON exporters.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "obs/Metrics.h"
#include "obs/Telemetry.h"
#include "ui/Repl.h"

#include <string>
#include <vector>

using namespace mult;
using namespace mult::testutil;

namespace {

/// Futures + touches + (on >1 proc) steals + a semaphore handoff + enough
/// allocation to force collections: every always-on histogram records.
const char *FullProtocolProgram = R"lisp(
  (define (build n) (if (= n 0) '() (cons n (build (- n 1)))))
  (define (churn k acc)
    (if (= k 0) acc (churn (- k 1) (+ acc (length (build 600))))))
  (define (spawn n)
    (if (= n 0) '() (cons (future (churn 4 0)) (spawn (- n 1)))))
  (define (drain l acc)
    (if (null? l) acc (drain (cdr l) (+ acc (touch (car l))))))
  (define sem (make-semaphore))
  (define guarded (future (begin (semaphore-p sem) 7)))
  (define (busy n) (if (= n 0) 0 (busy (- n 1))))
  (busy 3000) ; on >1 proc, guarded reaches its P and blocks meanwhile
  (semaphore-v sem)
  (drain (spawn 16) (touch guarded))
)lisp";

EngineConfig smallHeapConfig(unsigned Procs,
                             size_t HeapWords = size_t(1) << 16) {
  EngineConfig C = config(Procs);
  C.HeapWords = HeapWords; // small enough to collect mid-run
  return C;
}

/// A comparable snapshot of one merged histogram.
struct HistSnap {
  uint64_t Count, Sum, Min, Max;
  std::vector<uint64_t> Buckets;
  bool operator==(const HistSnap &O) const {
    return Count == O.Count && Sum == O.Sum && Min == O.Min && Max == O.Max &&
           Buckets == O.Buckets;
  }
};

HistSnap snap(const LatencyHistogram &H) {
  return {H.count(), H.sum(), H.min(), H.max(),
          {H.buckets().begin(), H.buckets().end()}};
}

/// Runs FullProtocolProgram on a fresh engine and snapshots every
/// well-known virtual-time histogram.
std::vector<HistSnap> runAndSnapshot(unsigned Procs) {
  // Bigger heap than the 4-proc tests: 16 processors keep more tasks (and
  // their churn) live at once, and heap-exhaustion aborts the run.
  Engine E(smallHeapConfig(Procs, size_t(1) << 19));
  evalOk(E, FullProtocolProgram);
  std::vector<HistSnap> Out;
  for (const char *Name :
       {"gc_pause_cycles", "touch_wait_cycles", "steal_latency_cycles",
        "sem_wait_cycles", "task_lifetime_cycles", "eval_request_cycles"}) {
    Telemetry::Id Id = E.telemetry().find(Name);
    EXPECT_NE(Id, Telemetry::InvalidId) << Name;
    Out.push_back(snap(E.telemetry().merged(Id)));
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bucket math
//===----------------------------------------------------------------------===//

TEST(LatencyHistogramTest, BucketBoundariesAtPowersOfTwo) {
  // Bucket 0 is [0, 2); bucket i is [2^i, 2^(i+1)).
  EXPECT_EQ(LatencyHistogram::bucketFor(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucketFor(1), 0u);
  for (unsigned K = 1; K < 47; ++K) {
    uint64_t Lo = uint64_t(1) << K;
    EXPECT_EQ(LatencyHistogram::bucketFor(Lo), K) << "2^" << K;
    EXPECT_EQ(LatencyHistogram::bucketFor(Lo - 1), K - 1) << "2^" << K << "-1";
    EXPECT_EQ(LatencyHistogram::bucketFor(2 * Lo - 1), K)
        << "2^" << K + 1 << "-1";
    EXPECT_EQ(LatencyHistogram::bucketLow(K), Lo);
    if (K + 1 < LatencyHistogram::NumBuckets)
      EXPECT_EQ(LatencyHistogram::bucketHigh(K), 2 * Lo - 1);
  }
  // Edges tile: every bucket starts right after the previous one ends.
  for (unsigned B = 0; B + 2 < LatencyHistogram::NumBuckets; ++B)
    EXPECT_EQ(LatencyHistogram::bucketHigh(B) + 1,
              LatencyHistogram::bucketLow(B + 1));
}

TEST(LatencyHistogramTest, EmptyPercentilesAreZero) {
  LatencyHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(0), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
  EXPECT_EQ(H.percentile(99), 0u);
  EXPECT_EQ(H.percentile(100), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
}

TEST(LatencyHistogramTest, SingleSamplePercentilesAreExact) {
  LatencyHistogram H;
  H.record(1234);
  // One sample: every percentile is that sample, exactly (the bucket edge
  // is clamped into [min, max] and both are 1234).
  EXPECT_EQ(H.percentile(1), 1234u);
  EXPECT_EQ(H.percentile(50), 1234u);
  EXPECT_EQ(H.percentile(99), 1234u);
  EXPECT_EQ(H.percentile(100), 1234u);
  EXPECT_EQ(H.min(), 1234u);
  EXPECT_EQ(H.max(), 1234u);
  EXPECT_EQ(H.sum(), 1234u);
}

TEST(LatencyHistogramTest, OverflowBucketSaturates) {
  LatencyHistogram H;
  uint64_t Huge = uint64_t(1) << 60; // way past the 2^47 top bucket
  EXPECT_EQ(LatencyHistogram::bucketFor(Huge), LatencyHistogram::NumBuckets - 1);
  EXPECT_EQ(LatencyHistogram::bucketFor(~uint64_t(0)),
            LatencyHistogram::NumBuckets - 1);
  H.record(Huge);
  H.record(~uint64_t(0));
  EXPECT_EQ(H.buckets()[LatencyHistogram::NumBuckets - 1], 2u);
  EXPECT_EQ(H.count(), 2u);
  // max is tracked exactly even though the bucket edge saturated.
  EXPECT_EQ(H.max(), ~uint64_t(0));
  EXPECT_EQ(H.percentile(99), ~uint64_t(0));
}

TEST(LatencyHistogramTest, PercentileRanksAcrossBuckets) {
  LatencyHistogram H;
  for (int I = 0; I < 90; ++I)
    H.record(3); // bucket 1: [2, 4)
  for (int I = 0; I < 10; ++I)
    H.record(1000); // bucket 9: [512, 1024)
  EXPECT_EQ(H.percentile(50), 3u);  // bucket edge clamped to max-in-range
  EXPECT_EQ(H.percentile(90), 3u);  // rank 90 is the last small sample
  EXPECT_EQ(H.percentile(91), 1000u);
  EXPECT_EQ(H.percentile(99), 1000u);
  EXPECT_EQ(H.max(), 1000u);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAndExact) {
  auto Fill = [](LatencyHistogram &H, unsigned Seedish) {
    for (uint64_t V = Seedish; V < Seedish + 200; ++V)
      H.record(V * V % 10'000);
  };
  LatencyHistogram A, B, C;
  Fill(A, 3);
  Fill(B, 77);
  Fill(C, 1234);

  LatencyHistogram AB = A;
  AB.merge(B);
  LatencyHistogram AB_C = AB;
  AB_C.merge(C);

  LatencyHistogram BC = B;
  BC.merge(C);
  LatencyHistogram A_BC = A;
  A_BC.merge(BC);

  EXPECT_TRUE(snap(AB_C) == snap(A_BC));
  EXPECT_EQ(AB_C.count(), 600u);
  EXPECT_EQ(AB_C.sum(), A.sum() + B.sum() + C.sum());

  // Merging an empty histogram is the identity, both ways.
  LatencyHistogram Empty, D = A;
  D.merge(Empty);
  EXPECT_TRUE(snap(D) == snap(A));
  LatencyHistogram E2;
  E2.merge(A);
  EXPECT_TRUE(snap(E2) == snap(A));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, RegistrationIsIdempotentAndIdsAreStable) {
  Telemetry T(4);
  Telemetry::Id A = T.histogram("foo_cycles", "help");
  Telemetry::Id B = T.histogram("foo_cycles", "help");
  EXPECT_EQ(A, B);
  Telemetry::Id C = T.counter("bar_total", "help");
  EXPECT_NE(A, C);
  EXPECT_EQ(T.find("foo_cycles"), A);
  EXPECT_EQ(T.find("missing"), Telemetry::InvalidId);

  // Labeled children are distinct series under the same base name.
  Telemetry::Id L1 = T.histogram("foo_cycles", "help", "site", "fib+3");
  Telemetry::Id L2 = T.histogram("foo_cycles", "help", "site", "fib+9");
  EXPECT_NE(L1, A);
  EXPECT_NE(L1, L2);
  EXPECT_EQ(T.find("foo_cycles", "fib+3"), L1);

  // clear() zeroes values but keeps registrations and ids.
  T.record(A, 0, 42);
  T.add(C, 1, 5);
  T.clear();
  EXPECT_EQ(T.find("foo_cycles"), A);
  EXPECT_EQ(T.merged(A).count(), 0u);
  EXPECT_EQ(T.counterValue(C), 0u);
}

TEST(TelemetryTest, ShardsMergeAcrossProcessors) {
  Telemetry T(4);
  Telemetry::Id H = T.histogram("h_cycles", "help");
  for (unsigned P = 0; P < 4; ++P)
    for (unsigned I = 0; I <= P; ++I)
      T.record(H, P, 100 * (P + 1));
  LatencyHistogram M = T.merged(H);
  EXPECT_EQ(M.count(), 1u + 2 + 3 + 4);
  EXPECT_EQ(M.min(), 100u);
  EXPECT_EQ(M.max(), 400u);
}

//===----------------------------------------------------------------------===//
// Engine integration: always-on, deterministic, zero virtual cost
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, HistogramsAreDeterministicAcrossRunsAndProcCounts) {
  for (unsigned Procs : {1u, 4u, 16u}) {
    std::vector<HistSnap> First = runAndSnapshot(Procs);
    std::vector<HistSnap> Second = runAndSnapshot(Procs);
    ASSERT_EQ(First.size(), Second.size());
    for (size_t I = 0; I < First.size(); ++I)
      EXPECT_TRUE(First[I] == Second[I])
          << "histogram " << I << " not deterministic at " << Procs
          << " procs";
  }
}

TEST(TelemetryTest, FullProtocolPopulatesEveryHistogram) {
  Engine E(smallHeapConfig(4));
  evalOk(E, FullProtocolProgram);
  const Telemetry &T = E.telemetry();
  for (const char *Name :
       {"gc_pause_cycles", "touch_wait_cycles", "steal_latency_cycles",
        "sem_wait_cycles", "task_lifetime_cycles", "eval_request_cycles"}) {
    Telemetry::Id Id = T.find(Name);
    ASSERT_NE(Id, Telemetry::InvalidId) << Name;
    EXPECT_GT(T.merged(Id).count(), 0u) << Name << " recorded nothing";
  }
  // Per-site touch-wait children: at least one labeled series recorded.
  bool SawSite = false;
  for (Telemetry::Id I = 0; I < T.size(); ++I) {
    const Telemetry::Metric &M = T.metric(I);
    if (M.Name == "touch_wait_cycles" && M.LabelKey == "site" &&
        T.merged(I).count() > 0)
      SawSite = true;
  }
  EXPECT_TRUE(SawSite) << "no per-site touch-wait series recorded";
}

TEST(TelemetryTest, TaskLifetimesNoLongerNeedTracing) {
  Engine E(config(2));
  ASSERT_FALSE(E.tracer().enabled());
  evalOk(E, "(touch (future (+ 1 2)))");
  MetricsReport R = buildMetrics(E.machine(), E.stats(), E.gcStats(),
                                 E.tracer(), nullptr, &E.telemetry());
  EXPECT_GT(R.TasksMeasured, 0u) << "lifetimes must not require the tracer";
  EXPECT_FALSE(R.Latencies.empty());
  bool SawLifetime = false;
  for (const MetricsReport::LatencySummary &L : R.Latencies)
    if (L.Name == "task-lifetime") {
      SawLifetime = true;
      EXPECT_GT(L.Count, 0u);
      EXPECT_GE(L.Max, L.P50);
    }
  EXPECT_TRUE(SawLifetime);
}

TEST(TelemetryTest, ResetStatsClearsValuesButKeepsSeries) {
  Engine E(config(2));
  evalOk(E, "(touch (future 1))");
  Telemetry::Id Id = E.telemetry().find("task_lifetime_cycles");
  ASSERT_NE(Id, Telemetry::InvalidId);
  ASSERT_GT(E.telemetry().merged(Id).count(), 0u);
  E.resetStats();
  EXPECT_EQ(E.telemetry().find("task_lifetime_cycles"), Id);
  EXPECT_EQ(E.telemetry().merged(Id).count(), 0u);
  // Recording still works on the surviving series.
  evalOk(E, "(touch (future 2))");
  EXPECT_GT(E.telemetry().merged(Id).count(), 0u);
}

TEST(TelemetryTest, HostPhaseTimersAccumulate) {
  Engine E(config(1));
  evalOk(E, "(let loop ((i 0)) (if (= i 10000) i (loop (+ i 1))))");
  // Host time is noisy but a real run is never free.
  EXPECT_GT(E.telemetry().hostNs(Telemetry::Phase::Run), 0u);
  EXPECT_GT(E.telemetry().hostNs(Telemetry::Phase::Read), 0u);
  EXPECT_GT(E.telemetry().hostNs(Telemetry::Phase::Compile), 0u);
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, PrometheusExportShape) {
  Engine E(smallHeapConfig(4));
  evalOk(E, FullProtocolProgram);
  std::string S;
  StringOutStream OS(S);
  exportPrometheus(OS, E.telemetry());
  EXPECT_NE(S.find("# HELP mult_touch_wait_cycles"), std::string::npos);
  EXPECT_NE(S.find("# TYPE mult_touch_wait_cycles histogram"),
            std::string::npos);
  EXPECT_NE(S.find("mult_touch_wait_cycles_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(S.find("mult_touch_wait_cycles_sum"), std::string::npos);
  EXPECT_NE(S.find("mult_touch_wait_cycles_count"), std::string::npos);
  EXPECT_NE(S.find("# TYPE mult_eval_requests_total counter"),
            std::string::npos);
  EXPECT_NE(S.find("mult_host_ns{phase=\"run\"}"), std::string::npos);
  // Labeled per-site child series appear under the base family.
  EXPECT_NE(S.find("site=\""), std::string::npos);
}

TEST(TelemetryTest, JsonExportParsesAsOneObject) {
  Engine E(config(2));
  evalOk(E, "(touch (future (+ 1 2)))");
  std::string S;
  StringOutStream OS(S);
  exportJson(OS, E.telemetry());
  EXPECT_EQ(S.front(), '{');
  EXPECT_NE(S.find("\"metrics\""), std::string::npos);
  EXPECT_NE(S.find("\"task_lifetime_cycles\""), std::string::npos);
  EXPECT_NE(S.find("\"host_ns\""), std::string::npos);
  // Crude balance check (the CI job does a real json.load).
  size_t Open = 0, Close = 0;
  for (char C : S) {
    Open += C == '{';
    Close += C == '}';
  }
  EXPECT_EQ(Open, Close);
}

TEST(TelemetryTest, ExportSpecParsesAndRejects) {
  Engine E(config(1));
  evalOk(E, "(+ 1 2)");
  std::string Err;
  EXPECT_FALSE(exportTelemetrySpec(E.telemetry(), "bogus", Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(exportTelemetrySpec(E.telemetry(), "csv:/tmp/x", Err));
  EXPECT_FALSE(
      exportTelemetrySpec(E.telemetry(), "prom:/nonexistent-dir/x/y", Err));
}

//===----------------------------------------------------------------------===//
// REPL surface
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, ReplHistoCommand) {
  Engine E(config(2));
  std::string Buf;
  StringOutStream Out(Buf);
  Repl R(E, Out);
  EXPECT_TRUE(R.processLine("(touch (future (+ 20 22)))"));
  EXPECT_TRUE(R.processLine(":histo"));
  EXPECT_NE(Buf.find("task-lifetime"), std::string::npos);
  EXPECT_TRUE(R.processLine(":histo task-lifetime"));
  EXPECT_NE(Buf.find("n="), std::string::npos);
  // :stats renders the latency percentile section and the always-on
  // lifetime histogram without tracing.
  EXPECT_TRUE(R.processLine(":stats"));
  EXPECT_NE(Buf.find("latency (virtual cycles):"), std::string::npos);
  EXPECT_EQ(Buf.find("enable tracing to measure"), std::string::npos);
}
