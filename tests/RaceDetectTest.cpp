//===----------------------------------------------------------------------===//
///
/// \file
/// Determinacy-race detection over the trace stream: racy programs must
/// be flagged with both access sites named, synchronized programs (touch
/// ordering, semaphore P/V pairs) must come out clean, the detector must
/// not perturb virtual time, and the ring-sink drop accounting that
/// guards offline analysis must balance. See DESIGN.md "Determinacy
/// races and the series-parallel relation".
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/RaceDetect.h"
#include "obs/Metrics.h"
#include "support/StrUtil.h"

#include <string>

using namespace mult;
using namespace mult::testutil;

namespace {

/// Eager-spawning config (a huge inline threshold keeps every future a
/// real task; load-based inlining would serialize the racy accesses and
/// hide the race) with the detector armed.
EngineConfig raceConfig(unsigned Procs) {
  EngineConfig C = config(Procs);
  C.InlineThreshold = 1'000'000;
  C.RaceDetect = true;
  return C;
}

/// Two future children both set! the same closed-over variable with no
/// ordering between them.
const char *const RacyWrites = R"lisp(
  (begin
    (define (racy)
      (let ((x 0))
        (let ((f (future (set! x 1)))
              (g (future (set! x 2))))
          (touch f) (touch g) x)))
    (racy))
)lisp";

/// The parent reads the cell in parallel with the child's write; the
/// touch comes too late to order them.
const char *const RacyReadWrite = R"lisp(
  (begin
    (define vv (make-vector 1 0))
    (define (racy)
      (let ((f (future (vector-set! vv 0 1))))
        (let ((seen (vector-ref vv 0)))
          (touch f)
          seen)))
    (racy))
)lisp";

/// Fully touch-ordered: the parent only reads after the child resolved.
const char *const TouchOrdered = R"lisp(
  (begin
    (define vv (make-vector 1 0))
    (define (ok)
      (let ((f (future (vector-set! vv 0 1))))
        (touch f)
        (vector-set! vv 0 2)
        (vector-ref vv 0)))
    (ok))
)lisp";

/// Builds the dining-philosophers program with per-fork use counters
/// written inside the critical section. Fork k's counter is written by
/// the two neighbours that share fork k, always while holding it, so the
/// semaphore happens-before edges make the program race-free. With
/// \p DropPV, philosopher 0 skips the P/V pair on its second fork but
/// still bumps that fork's counter — exactly one pair removed, and the
/// counter write races with the neighbour's protected write.
std::string philosophers(bool DropPV) {
  const char *P2 = DropPV ? "(if (> who 0) (semaphore-p second) #t)"
                          : "(semaphore-p second)";
  const char *V2 = DropPV ? "(if (> who 0) (semaphore-v second) #t)"
                          : "(semaphore-v second)";
  return strFormat(R"lisp(
   (begin
    (define n 5)
    (define rounds 3)
    (define forks (make-vector n 0))
    (define uses (make-vector n 0))
    (do ((i 0 (+ i 1))) ((= i n) #t)
      (vector-set! forks i (make-semaphore 1)))
    (define (dine who)
      (let ((li who) (ri (remainder (+ who 1) n)))
        (let ((fi (if (even? who) li ri))
              (si (if (even? who) ri li)))
          (let ((first (vector-ref forks fi))
                (second (vector-ref forks si)))
            (let loop ((r 0))
              (if (= r rounds)
                  'full
                  (begin
                    (semaphore-p first)
                    %s
                    (vector-set! uses li (+ (vector-ref uses li) 1))
                    (vector-set! uses ri (+ (vector-ref uses ri) 1))
                    %s
                    (semaphore-v first)
                    (loop (+ r 1)))))))))
    (define (spawn who)
      (if (= who n) '() (cons (future (dine who)) (spawn (+ who 1)))))
    (define (wait-all l)
      (if (null? l) 'done (begin (touch (car l)) (wait-all (cdr l)))))
    (wait-all (spawn 0))
    (vector-ref uses 0))
  )lisp",
                   P2, V2);
}

} // namespace

TEST(RaceDetectTest, RacyFutureWritesAreFlaggedWithBothSites) {
  Engine E(raceConfig(4));
  evalFixnum(E, RacyWrites);
  const RaceDetector *D = E.raceDetector();
  ASSERT_NE(D, nullptr);
  ASSERT_GE(D->raceCount(), 1u) << "unordered sibling writes must race";
  const RaceDetector::Race &R = D->races().front();
  EXPECT_TRUE(R.Prior.Write && R.Current.Write);
  EXPECT_NE(R.Prior.Task, R.Current.Task);
  std::string Report = D->describe(R, E.tracer().siteNames());
  // Both accesses must carry future-site provenance ("spawned at ...").
  size_t First = Report.find("spawned at");
  ASSERT_NE(First, std::string::npos) << Report;
  EXPECT_NE(Report.find("spawned at", First + 1), std::string::npos)
      << Report;
}

TEST(RaceDetectTest, ParallelReadAgainstWriteIsFlagged) {
  Engine E(raceConfig(4));
  evalOk(E, RacyReadWrite);
  const RaceDetector *D = E.raceDetector();
  ASSERT_NE(D, nullptr);
  ASSERT_GE(D->raceCount(), 1u);
  const RaceDetector::Race &R = D->races().front();
  EXPECT_TRUE(R.Prior.Write != R.Current.Write)
      << "one side is the child write, the other the parent read";
}

TEST(RaceDetectTest, TouchOrderingIsRaceFree) {
  Engine E(raceConfig(4));
  EXPECT_EQ(evalFixnum(E, TouchOrdered), 2);
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_EQ(E.raceDetector()->raceCount(), 0u)
      << "touch is a series edge; no parallel accesses remain";
  EXPECT_GT(E.raceDetector()->accessesChecked(), 0u)
      << "the program does access tracked cells";
}

TEST(RaceDetectTest, DistinctVectorSlotsDoNotRace) {
  Engine E(raceConfig(4));
  evalOk(E, R"lisp(
    (begin
      (define vv (make-vector 2 0))
      (let ((f (future (vector-set! vv 0 1)))
            (g (future (vector-set! vv 1 2))))
        (touch f) (touch g)))
  )lisp");
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_EQ(E.raceDetector()->raceCount(), 0u)
      << "slot granularity: parallel writes to different indices are fine";
}

TEST(RaceDetectTest, SemaphoreProtectedCounterIsRaceFree) {
  Engine E(raceConfig(4));
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (begin
      (define s (make-semaphore 1))
      (define vv (make-vector 1 0))
      (define (bump)
        (semaphore-p s)
        (vector-set! vv 0 (+ (vector-ref vv 0) 1))
        (semaphore-v s))
      (let ((f (future (bump))) (g (future (bump))))
        (touch f) (touch g) (vector-ref vv 0)))
  )lisp"),
            2);
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_EQ(E.raceDetector()->raceCount(), 0u)
      << "P/V pairs must contribute happens-before cross-edges";
}

TEST(RaceDetectTest, SameCounterWithoutSemaphoreIsFlagged) {
  Engine E(raceConfig(4));
  evalOk(E, R"lisp(
    (begin
      (define vv (make-vector 1 0))
      (define (bump) (vector-set! vv 0 (+ (vector-ref vv 0) 1)))
      (let ((f (future (bump))) (g (future (bump))))
        (touch f) (touch g) (vector-ref vv 0)))
  )lisp");
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_GE(E.raceDetector()->raceCount(), 1u);
}

TEST(RaceDetectTest, FluidDefaultBoxRaces) {
  // Two tasks set! the same fluid with no task-local binding in scope:
  // both hit the shared global default box.
  Engine E(raceConfig(4));
  evalOk(E, R"lisp(
    (begin
      (define-fluid *mode* 0)
      (let ((f (future (set-fluid! *mode* 1)))
            (g (future (set-fluid! *mode* 2))))
        (touch f) (touch g)))
  )lisp");
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_GE(E.raceDetector()->raceCount(), 1u)
      << "dynamic-env mutation of the shared default must be tracked";
}

TEST(RaceDetectTest, TaskLocalFluidBindingsDoNotRace) {
  Engine E(raceConfig(4));
  evalOk(E, R"lisp(
    (begin
      (define-fluid *mode* 0)
      (let ((f (future (bind ((*mode* 1)) (set-fluid! *mode* 5))))
            (g (future (bind ((*mode* 2)) (set-fluid! *mode* 6)))))
        (touch f) (touch g)))
  )lisp");
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_EQ(E.raceDetector()->raceCount(), 0u)
      << "bind gives each task its own box; deep binding isolates them";
}

// --- Satellite 4: dining philosophers under semaphore happens-before ----

class RaceDetectStealOrderTest
    : public ::testing::TestWithParam<StealOrder> {};

TEST_P(RaceDetectStealOrderTest, DiningPhilosophersRaceFree) {
  EngineConfig C = raceConfig(4);
  C.StealPolicy = GetParam();
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, philosophers(/*DropPV=*/false)), 6)
      << "fork 0 is used by its two neighbours, 3 rounds each";
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_EQ(E.raceDetector()->raceCount(), 0u)
      << "every counter write holds the fork that guards it";
  EXPECT_GT(E.raceDetector()->accessesChecked(), 0u);
}

TEST_P(RaceDetectStealOrderTest, PhilosophersMissingOnePVPairFlagged) {
  EngineConfig C = raceConfig(4);
  C.StealPolicy = GetParam();
  Engine E(C);
  evalFixnum(E, philosophers(/*DropPV=*/true));
  ASSERT_NE(E.raceDetector(), nullptr);
  EXPECT_GE(E.raceDetector()->raceCount(), 1u)
      << "philosopher 0 bumps a fork counter without holding the fork";
}

INSTANTIATE_TEST_SUITE_P(StealOrders, RaceDetectStealOrderTest,
                         ::testing::Values(StealOrder::Lifo,
                                           StealOrder::Fifo),
                         [](const auto &Info) {
                           return Info.param == StealOrder::Lifo ? "Lifo"
                                                                 : "Fifo";
                         });

// --- Virtual-time invariance -------------------------------------------

TEST(RaceDetectTest, DetectorDoesNotPerturbVirtualTime) {
  // Same program, detector off vs on: recording costs zero virtual time,
  // so cycle counts must match bit for bit (this is what lets CI assert
  // golden cycles under MULT_RACE=1).
  EngineConfig Off = config(4);
  Off.InlineThreshold = 1'000'000;
  Engine EOff(Off);
  int64_t ROff = evalFixnum(EOff, RacyWrites);

  Engine EOn(raceConfig(4));
  int64_t ROn = evalFixnum(EOn, RacyWrites);

  EXPECT_EQ(ROff, ROn);
  EXPECT_EQ(EOff.stats().ElapsedCycles, EOn.stats().ElapsedCycles);
  EXPECT_EQ(EOff.stats().CyclesExecuted, EOn.stats().CyclesExecuted);
  EXPECT_EQ(EOff.stats().Dispatches, EOn.stats().Dispatches);
}

TEST(RaceDetectTest, MetricsReportCarriesRaceCounters) {
  Engine E(raceConfig(4));
  evalFixnum(E, RacyWrites);
  MetricsReport R = buildMetrics(E.machine(), E.stats(), E.gcStats(),
                                 E.tracer(), E.raceDetector());
  EXPECT_TRUE(R.RaceDetectOn);
  EXPECT_GE(R.RacesDetected, 1u);
  EXPECT_GT(R.AccessesChecked, 0u);
  EXPECT_GE(R.CellsTracked, 1u);

  MetricsReport Plain =
      buildMetrics(E.machine(), E.stats(), E.gcStats(), E.tracer());
  EXPECT_FALSE(Plain.RaceDetectOn) << "no detector, no races line";
}

TEST(RaceDetectTest, ResetStatsClearsTheDetector) {
  Engine E(raceConfig(4));
  evalFixnum(E, RacyWrites);
  ASSERT_GE(E.raceDetector()->raceCount(), 1u);
  E.resetStats();
  EXPECT_EQ(E.raceDetector()->raceCount(), 0u);
  EXPECT_EQ(E.raceDetector()->accessesChecked(), 0u);
}

// --- Satellite 1: ring-sink drop accounting and offline refusal --------

TEST(RaceDetectTest, RingSinkDropAccountingBalances) {
  // Small ring: most events are overwritten, but every emission must be
  // accounted for: recorded + dropped == emitted, at every ring size.
  for (size_t Cap : {16u, 64u, 256u}) {
    EngineConfig C = config(4);
    C.InlineThreshold = 1'000'000;
    C.EnableTracing = true;
    C.TraceSink = strFormat("ring:%zu", Cap);
    Engine E(C);
    EXPECT_EQ(evalFixnum(E, R"lisp(
      (begin
        (define (fib n)
          (if (< n 2) n
              (+ (touch (future (fib (- n 1)))) (fib (- n 2)))))
        (fib 10))
    )lisp"),
              55);
    const Tracer &Tr = E.tracer();
    EXPECT_GT(Tr.dropped(), 0u) << "the run must overflow a ring of "
                                << Cap;
    EXPECT_EQ(Tr.size() + Tr.dropped(), Tr.emitted())
        << "drop accounting leak at ring size " << Cap;
  }
}

TEST(RaceDetectTest, OfflineAnalysisRefusesTruncatedRingTrace) {
  EngineConfig C = config(4);
  C.InlineThreshold = 1'000'000;
  C.EnableTracing = true;
  C.TraceSink = "ring:16";
  Engine E(C);
  evalFixnum(E, RacyWrites);
  ASSERT_GT(E.tracer().dropped(), 0u);

  RaceDetector D;
  std::string Err;
  EXPECT_FALSE(analyzeRaces(E.tracer().events(), E.tracer().dropped(), D,
                            Err));
  EXPECT_NE(Err.find("dropped"), std::string::npos) << Err;
  EXPECT_NE(Err.find("incomplete"), std::string::npos)
      << "the refusal must say why the verdict would be unreliable: "
      << Err;
}

TEST(RaceDetectTest, OnlineDetectorIsCompleteOverARingSink) {
  // The observer sees events before sink buffering, so a tiny ring does
  // not cost it any DAG edges: the race is still found.
  EngineConfig C = raceConfig(4);
  C.EnableTracing = true;
  C.TraceSink = "ring:16";
  Engine E(C);
  evalFixnum(E, RacyWrites);
  ASSERT_GT(E.tracer().dropped(), 0u) << "the ring must actually truncate";
  EXPECT_GE(E.raceDetector()->raceCount(), 1u)
      << "online detection must be immune to ring drops";
}

TEST(RaceDetectTest, OfflineAnalysisMatchesOnlineOverFullTrace) {
  Engine E(raceConfig(4));
  evalFixnum(E, RacyWrites);
  ASSERT_EQ(E.tracer().dropped(), 0u);

  RaceDetector D;
  std::string Err;
  ASSERT_TRUE(
      analyzeRaces(E.tracer().events(), E.tracer().dropped(), D, Err))
      << Err;
  EXPECT_EQ(D.raceCount(), E.raceDetector()->raceCount());
  EXPECT_EQ(D.accessesChecked(), E.raceDetector()->accessesChecked());
}
