//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-level behaviour: virtual-time invariants, quantum independence
/// of results, background tasks of completed groups, steal-order
/// ablation, and engine lifecycle edge cases.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

TEST(MachineTest, ResultsIndependentOfQuantum) {
  // The timeslice is a simulation granularity knob: it may move cycle
  // counts slightly but must never change program results.
  std::string Results[3];
  uint64_t Cycles[3];
  int I = 0;
  for (uint64_t Q : {8u, 64u, 1024u}) {
    EngineConfig C = config(4);
    C.QuantumCycles = Q;
    Engine E(C);
    Results[I] = evalPrint(E, R"lisp(
      (define (tree n) (if (< n 2) 1 (+ (future (tree (- n 1)))
                                        (tree (- n 2)))))
      (tree 13)
    )lisp");
    Cycles[I] = E.stats().ElapsedCycles;
    ++I;
  }
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Results[1], Results[2]);
  EXPECT_EQ(Results[0], "377");
  // Timing should agree within the granularity slack (~quantum * procs
  // per blocking point); generous bound: 25%.
  EXPECT_LT(std::max({Cycles[0], Cycles[1], Cycles[2]}),
            std::min({Cycles[0], Cycles[1], Cycles[2]}) * 5 / 4);
}

TEST(MachineTest, ClocksAdvanceMonotonically) {
  Engine E(config(2));
  uint64_t Before = E.machine().processor(0).Clock;
  evalOk(E, "(touch (future (+ 1 2)))");
  EXPECT_GT(E.machine().processor(0).Clock, Before);
  // Both processors progressed past the common start.
  EXPECT_GT(E.machine().processor(1).Clock, Before);
}

TEST(MachineTest, BusyPlusIdleAccountsForWallClock) {
  Engine E(config(4));
  evalOk(E, R"lisp(
    (define (spawn n) (if (= n 0) '() (cons (future (* n n))
                                            (spawn (- n 1)))))
    (define (drain l a) (if (null? l) a (drain (cdr l)
                                               (+ a (touch (car l))))))
    (drain (spawn 24) 0)
  )lisp");
  for (unsigned P = 0; P < 4; ++P) {
    const Processor &Proc = E.machine().processor(P);
    // Clock grows only through charged busy cycles, idle ticks and
    // rendezvous; it can never lag the recorded work.
    EXPECT_GE(Proc.Clock, Proc.BusyCycles > Proc.IdleCycles
                              ? Proc.BusyCycles - Proc.IdleCycles
                              : 0);
  }
}

TEST(MachineTest, BackgroundTasksOfDoneGroupsKeepRunning) {
  // A future nobody touches still runs to completion across evals
  // ("background jobs" in the paper's GC discussion).
  Engine E(config(2));
  evalOk(E, "(define cell (cons 0 '()))"
            "(define bg (future (set-car! cell 77)))");
  // The define's group is Done; the child may still be queued. Another
  // eval gives the machine time to run it.
  evalOk(E, "(let spin ((i 0)) (if (< i 5000) (spin (+ i 1)) 'ok))");
  EXPECT_EQ(evalFixnum(E, "(car cell)"), 77);
}

TEST(MachineTest, TouchingAnOrphanFutureAcrossEvals) {
  Engine E(config(1));
  evalOk(E, "(define f (future (* 21 2)))");
  // The child was never scheduled (single processor, root finished
  // first); touching it in a later eval must still produce the value.
  EXPECT_EQ(evalFixnum(E, "(touch f)"), 42);
}

TEST(MachineTest, StealOrderAblation) {
  // LIFO steals (the paper's "first cut") take the newest task — depth-
  // first-ish; FIFO takes the oldest — breadth-first. Results identical;
  // schedules differ.
  auto Run = [](StealOrder O) {
    EngineConfig C = config(4);
    C.StealPolicy = O;
    Engine E(C);
    std::string R = evalPrint(E, R"lisp(
      (define (tree n) (if (< n 2) 1 (+ (future (tree (- n 1)))
                                        (tree (- n 2)))))
      (tree 13)
    )lisp");
    return std::make_pair(R, E.stats().ElapsedCycles);
  };
  auto [LifoR, LifoC] = Run(StealOrder::Lifo);
  auto [FifoR, FifoC] = Run(StealOrder::Fifo);
  EXPECT_EQ(LifoR, FifoR);
  EXPECT_EQ(LifoR, "377");
  EXPECT_NE(LifoC, FifoC) << "different policies should schedule "
                             "differently on this workload";
}

TEST(MachineTest, ManyProcessorsOnTinyProgramStillWork) {
  EngineConfig C = config(16);
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, "(+ 20 22)"), 42);
}

TEST(MachineTest, EngineSurvivesManyEvals) {
  // Task and group bookkeeping must not corrupt across many small runs.
  Engine E(config(2));
  for (int I = 0; I < 200; ++I)
    ASSERT_EQ(evalFixnum(E, "(touch (future " + std::to_string(I) + "))"),
              I);
  // Tasks are recycled: the registry stays small.
  EXPECT_LT(E.taskSlotCount(), 64u);
}

TEST(MachineTest, DeadlockReportsBlockedRoot) {
  Engine E(config(2));
  EvalResult R = E.eval("(semaphore-p (make-semaphore))");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::Deadlock));
  // The engine is still usable afterwards.
  EXPECT_EQ(evalFixnum(E, "(+ 1 1)"), 2);
}

TEST(MachineTest, TouchOfNeverRunnableFutureDeadlocks) {
  // A future whose task was killed can never resolve: touching it is a
  // deadlock, detected rather than hung.
  Engine E(config(1));
  EvalResult R = E.eval(
      "(define f (future (semaphore-p (make-semaphore)))) (touch f)");
  EXPECT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::Deadlock));
}

TEST(MachineTest, PerProcessorChunksReduceLockTraffic) {
  // Allocation mostly hits the local chunk: global-lock acquisitions are
  // a small fraction of allocations (paper section 2.1.2's point).
  Engine E(config(1));
  evalOk(E, "(define (build n) (if (= n 0) '() (cons n (build (- n 1)))))"
            "(build 4000)");
  uint64_t Acquisitions = E.heap().globalLockAcquisitions();
  EXPECT_LT(Acquisitions, 4000u / 100)
      << "one refill per ~1300 pairs expected with 4096-word chunks";
}

TEST(MachineTest, VirtualTimeUnaffectedByHostLoad) {
  // Two runs of the same program have identical virtual timing: this is
  // the determinism the substitution in DESIGN.md promises.
  auto Cycles = [] {
    Engine E(config(8));
    evalOk(E, R"lisp(
      (define (tree n) (if (< n 2) 1 (+ (future (tree (- n 1)))
                                        (tree (- n 2)))))
      (tree 14)
    )lisp");
    return E.stats().ElapsedCycles;
  };
  EXPECT_EQ(Cycles(), Cycles());
}

} // namespace
