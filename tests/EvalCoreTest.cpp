//===----------------------------------------------------------------------===//
///
/// \file
/// Language semantics: the sequential Scheme/T subset of Mul-T.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

class EvalTest : public ::testing::Test {
protected:
  EvalTest() : E(config(1)) {}
  Engine E;
};

TEST_F(EvalTest, SelfEvaluating) {
  EXPECT_EQ(evalPrint(E, "42"), "42");
  EXPECT_EQ(evalPrint(E, "#t"), "#t");
  EXPECT_EQ(evalPrint(E, "#\\q"), "#\\q");
  EXPECT_EQ(evalPrint(E, "\"abc\""), "\"abc\"");
  EXPECT_EQ(evalPrint(E, "3.25"), "3.25");
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(evalFixnum(E, "(+ 1 2)"), 3);
  EXPECT_EQ(evalFixnum(E, "(+ 1 2 3 4 5)"), 15);
  EXPECT_EQ(evalFixnum(E, "(+)"), 0);
  EXPECT_EQ(evalFixnum(E, "(*)"), 1);
  EXPECT_EQ(evalFixnum(E, "(* 2 3 4)"), 24);
  EXPECT_EQ(evalFixnum(E, "(- 10 3)"), 7);
  EXPECT_EQ(evalFixnum(E, "(- 5)"), -5);
  EXPECT_EQ(evalFixnum(E, "(- 20 5 3)"), 12);
  EXPECT_EQ(evalFixnum(E, "(quotient 17 5)"), 3);
  EXPECT_EQ(evalFixnum(E, "(remainder 17 5)"), 2);
  EXPECT_EQ(evalFixnum(E, "(remainder -17 5)"), -2);
  EXPECT_EQ(evalFixnum(E, "(modulo -17 5)"), 3);
  EXPECT_EQ(evalFixnum(E, "(abs -9)"), 9);
  EXPECT_EQ(evalFixnum(E, "(min 3 1 2)"), 1);
  EXPECT_EQ(evalFixnum(E, "(max 3 1 2)"), 3);
}

TEST_F(EvalTest, FlonumArithmetic) {
  EXPECT_EQ(evalPrint(E, "(+ 1.5 2)"), "3.5");
  EXPECT_EQ(evalPrint(E, "(* 2.0 3)"), "6");
  EXPECT_EQ(evalPrint(E, "(/ 1 2)"), "0.5");
  EXPECT_EQ(evalPrint(E, "(< 1.5 2)"), "#t");
}

TEST_F(EvalTest, FixnumOverflowPromotes) {
  // 61-bit fixnums; products beyond that become flonums rather than wrap.
  Value V = evalOk(E, "(* 1152921504606846975 8)");
  EXPECT_TRUE(V.isObject());
  EXPECT_EQ(V.asObject()->tag(), TypeTag::Flonum);
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_EQ(evalPrint(E, "(< 1 2)"), "#t");
  EXPECT_EQ(evalPrint(E, "(<= 2 2)"), "#t");
  EXPECT_EQ(evalPrint(E, "(> 1 2)"), "#f");
  EXPECT_EQ(evalPrint(E, "(>= 1 2)"), "#f");
  EXPECT_EQ(evalPrint(E, "(= 3 3)"), "#t");
  EXPECT_EQ(evalPrint(E, "(zero? 0)"), "#t");
  EXPECT_EQ(evalPrint(E, "(negative? -2)"), "#t");
  EXPECT_EQ(evalPrint(E, "(positive? 2)"), "#t");
  EXPECT_EQ(evalPrint(E, "(odd? 3)"), "#t");
  EXPECT_EQ(evalPrint(E, "(even? 3)"), "#f");
}

TEST_F(EvalTest, PairsAndLists) {
  EXPECT_EQ(evalPrint(E, "(cons 1 2)"), "(1 . 2)");
  EXPECT_EQ(evalPrint(E, "(list 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(evalFixnum(E, "(car '(1 2))"), 1);
  EXPECT_EQ(evalPrint(E, "(cdr '(1 2))"), "(2)");
  EXPECT_EQ(evalPrint(E, "(cadr '(1 2 3))"), "2");
  EXPECT_EQ(evalPrint(E, "(append '(1 2) '(3) '() '(4))"), "(1 2 3 4)");
  EXPECT_EQ(evalPrint(E, "(reverse '(1 2 3))"), "(3 2 1)");
  EXPECT_EQ(evalFixnum(E, "(length '(a b c))"), 3);
  EXPECT_EQ(evalPrint(E, "(memq 'b '(a b c))"), "(b c)");
  EXPECT_EQ(evalPrint(E, "(memq 'x '(a b c))"), "#f");
  EXPECT_EQ(evalPrint(E, "(member '(1) '((0) (1) (2)))"), "((1) (2))");
  EXPECT_EQ(evalPrint(E, "(assq 'b '((a 1) (b 2)))"), "(b 2)");
  EXPECT_EQ(evalPrint(E, "(null? '())"), "#t");
  EXPECT_EQ(evalPrint(E, "(pair? '(1))"), "#t");
  EXPECT_EQ(evalPrint(E, "(atom? '(1))"), "#f");
  EXPECT_EQ(evalPrint(E, "(atom? 'x)"), "#t");
  evalOk(E, "(define p (list 1 2)) (set-car! p 9) (set-cdr! p '(8))");
  EXPECT_EQ(evalPrint(E, "p"), "(9 8)");
}

TEST_F(EvalTest, EqAndEqual) {
  EXPECT_EQ(evalPrint(E, "(eq? 'a 'a)"), "#t");
  EXPECT_EQ(evalPrint(E, "(eq? '(a) '(a))"), "#f");
  EXPECT_EQ(evalPrint(E, "(eq? 3 3)"), "#t"); // fixnums are immediate
  EXPECT_EQ(evalPrint(E, "(equal? '(a (b)) '(a (b)))"), "#t");
  EXPECT_EQ(evalPrint(E, "(equal? \"ab\" \"ab\")"), "#t");
  EXPECT_EQ(evalPrint(E, "(equal? #(1 2) #(1 2))"), "#t");
  EXPECT_EQ(evalPrint(E, "(equal? #(1 2) #(1 3))"), "#f");
}

TEST_F(EvalTest, SpecialForms) {
  EXPECT_EQ(evalFixnum(E, "(if #t 1 2)"), 1);
  EXPECT_EQ(evalFixnum(E, "(if #f 1 2)"), 2);
  EXPECT_EQ(evalFixnum(E, "(if '() 1 2)"), 1); // '() is true in T
  EXPECT_EQ(evalFixnum(E, "(begin 1 2 3)"), 3);
  EXPECT_EQ(evalFixnum(E, "(let ((x 2) (y 3)) (+ x y))"), 5);
  EXPECT_EQ(evalFixnum(E, "(let* ((x 2) (y (* x x))) y)"), 4);
  EXPECT_EQ(evalFixnum(E, "(letrec ((even? (lambda (n) (if (= n 0) 1 "
                          "(odd? (- n 1))))) (odd? (lambda (n) (if (= n 0) "
                          "0 (even? (- n 1)))))) (even? 10))"),
            1);
  EXPECT_EQ(evalPrint(E, "(cond (#f 1) (#t 2) (else 3))"), "2");
  EXPECT_EQ(evalPrint(E, "(cond (#f 1) (else 3))"), "3");
  // A test-only clause yields the test's value.
  EXPECT_EQ(evalPrint(E, "(cond (#f) ((memq 'b '(a b))))"), "(b)");
  EXPECT_EQ(evalPrint(E, "(case 2 ((1) 'one) ((2 3) 'two-or-three) "
                         "(else 'other))"),
            "two-or-three");
  EXPECT_EQ(evalPrint(E, "(case 9 ((1) 'one) (else 'other))"), "other");
  EXPECT_EQ(evalPrint(E, "(and 1 2 3)"), "3");
  EXPECT_EQ(evalPrint(E, "(and 1 #f 3)"), "#f");
  EXPECT_EQ(evalPrint(E, "(and)"), "#t");
  EXPECT_EQ(evalPrint(E, "(or #f 2 3)"), "2");
  EXPECT_EQ(evalPrint(E, "(or)"), "#f");
  EXPECT_EQ(evalPrint(E, "(when (> 2 1) 'yes)"), "yes");
  EXPECT_EQ(evalPrint(E, "(unless (> 2 1) 'yes)"), "#f");
}

TEST_F(EvalTest, DoLoops) {
  EXPECT_EQ(evalFixnum(E, "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) "
                          "((= i 5) acc))"),
            10);
  EXPECT_EQ(evalFixnum(E, "(let ((v (make-vector 5 0)))"
                          " (do ((i 0 (+ i 1))) ((= i 5) (vector-ref v 3))"
                          "   (vector-set! v i (* i i))))"),
            9);
}

TEST_F(EvalTest, NamedLetAndTailCalls) {
  EXPECT_EQ(evalFixnum(E, "(let loop ((i 0) (acc 0)) "
                          "(if (= i 10) acc (loop (+ i 1) (+ acc i))))"),
            45);
  // A million iterations: only possible with proper tail calls.
  EXPECT_EQ(evalFixnum(E, "(let loop ((i 0)) "
                          "(if (= i 1000000) i (loop (+ i 1))))"),
            1000000);
}

TEST_F(EvalTest, ClosuresAndHigherOrder) {
  EXPECT_EQ(evalFixnum(E, "((lambda (x) (* x x)) 7)"), 49);
  evalOk(E, "(define (adder n) (lambda (x) (+ x n)))");
  EXPECT_EQ(evalFixnum(E, "((adder 3) 4)"), 7);
  EXPECT_EQ(evalPrint(E, "(map (adder 10) '(1 2 3))"), "(11 12 13)");
  EXPECT_EQ(evalPrint(E, "(map car '((1 2) (3 4)))"), "(1 3)");
  EXPECT_EQ(evalPrint(E, "(filter odd? '(1 2 3 4 5))"), "(1 3 5)");
  EXPECT_EQ(evalFixnum(E, "(fold-left + 0 '(1 2 3 4))"), 10);
  EXPECT_EQ(evalPrint(E, "(fold-right cons '() '(1 2))"), "(1 2)");
}

TEST_F(EvalTest, SetAndBoxes) {
  evalOk(E, "(define counter (let ((n 0)) (lambda () (set! n (+ n 1)) n)))");
  EXPECT_EQ(evalFixnum(E, "(counter)"), 1);
  EXPECT_EQ(evalFixnum(E, "(counter)"), 2);
  EXPECT_EQ(evalFixnum(E, "(let ((x 1)) (set! x 5) x)"), 5);
  // Assigned parameters are boxed.
  EXPECT_EQ(evalFixnum(E, "((lambda (x) (set! x (+ x 1)) x) 41)"), 42);
  evalOk(E, "(define g 1) (set! g 10)");
  EXPECT_EQ(evalFixnum(E, "g"), 10);
}

TEST_F(EvalTest, SharedMutableCapture) {
  // Two closures over the same boxed variable see each other's writes.
  evalOk(E, R"lisp(
    (define pair
      (let ((n 0))
        (cons (lambda () (set! n (+ n 1)))
              (lambda () n))))
    ((car pair)) ((car pair)) ((car pair))
  )lisp");
  EXPECT_EQ(evalFixnum(E, "((cdr pair))"), 3);
}

TEST_F(EvalTest, Vectors) {
  EXPECT_EQ(evalPrint(E, "(make-vector 3 7)"), "#(7 7 7)");
  EXPECT_EQ(evalPrint(E, "(vector 1 'a \"s\")"), "#(1 a \"s\")");
  EXPECT_EQ(evalFixnum(E, "(vector-length (make-vector 9 0))"), 9);
  EXPECT_EQ(evalFixnum(E, "(vector-ref #(5 6 7) 1)"), 6);
  EXPECT_EQ(evalPrint(E, "(let ((v (make-vector 2 0))) "
                         "(vector-set! v 1 'x) v)"),
            "#(0 x)");
  EXPECT_EQ(evalPrint(E, "(list->vector '(1 2))"), "#(1 2)");
  EXPECT_EQ(evalPrint(E, "(vector->list #(1 2))"), "(1 2)");
  EXPECT_EQ(evalPrint(E, "(let ((v (make-vector 3 0))) "
                         "(vector-fill! v 4) v)"),
            "#(4 4 4)");
}

TEST_F(EvalTest, Strings) {
  EXPECT_EQ(evalFixnum(E, "(string-length \"hello\")"), 5);
  EXPECT_EQ(evalPrint(E, "(string-ref \"abc\" 1)"), "#\\b");
  EXPECT_EQ(evalPrint(E, "(string-append \"foo\" \"bar\")"), "\"foobar\"");
  EXPECT_EQ(evalPrint(E, "(string=? \"x\" \"x\")"), "#t");
  EXPECT_EQ(evalPrint(E, "(symbol->string 'abc)"), "\"abc\"");
  EXPECT_EQ(evalPrint(E, "(string->symbol \"wow\")"), "wow");
  EXPECT_EQ(evalPrint(E, "(number->string 42)"), "\"42\"");
  EXPECT_EQ(evalFixnum(E, "(char->integer #\\A)"), 65);
  EXPECT_EQ(evalPrint(E, "(integer->char 66)"), "#\\B");
}

TEST_F(EvalTest, PropertyLists) {
  evalOk(E, "(put 'color 'kind 'primary)");
  EXPECT_EQ(evalPrint(E, "(get 'color 'kind)"), "primary");
  EXPECT_EQ(evalPrint(E, "(get 'color 'missing)"), "()");
  evalOk(E, "(put 'color 'kind 'secondary)"); // update in place
  EXPECT_EQ(evalPrint(E, "(get 'color 'kind)"), "secondary");
}

TEST_F(EvalTest, Apply) {
  EXPECT_EQ(evalFixnum(E, "(apply + '(1 2 3))"), 6);
  evalOk(E, "(define (f a b) (* a b))");
  EXPECT_EQ(evalFixnum(E, "(apply f (list 6 7))"), 42);
}

TEST_F(EvalTest, Quasiquote) {
  EXPECT_EQ(evalPrint(E, "`(1 ,(+ 1 1) 3)"), "(1 2 3)");
  EXPECT_EQ(evalPrint(E, "`(a ,@(list 1 2) b)"), "(a 1 2 b)");
  EXPECT_EQ(evalPrint(E, "`(x . ,(+ 2 3))"), "(x . 5)");
}

TEST_F(EvalTest, OutputPrimitives) {
  evalOk(E, "(begin (display \"n=\") (display 42) (newline) "
            "(write \"q\"))");
  EXPECT_EQ(E.takeOutput(), "n=42\n\"q\"");
}

TEST_F(EvalTest, InternalDefines) {
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (outer n)
      (define (double x) (* 2 x))
      (define four (double 2))
      (+ n four))
    (outer 1)
  )lisp"),
            5);
}

TEST_F(EvalTest, UserCanShadowPrimitives) {
  // Defining a primitive's name disables integration for later forms.
  Engine E2(config(1));
  evalOk(E2, "(define (reverse l) 'mine)");
  EXPECT_EQ(evalPrint(E2, "(reverse '(1 2))"), "mine");
}

TEST_F(EvalTest, PrimitivesAsValues) {
  // Eta-wrappers make primitive names first-class.
  EXPECT_EQ(evalPrint(E, "(map + '(1 2) )"), "(1 2)");
  EXPECT_EQ(evalFixnum(E, "(let ((f car)) (f '(9 8)))"), 9);
  EXPECT_EQ(evalFixnum(E, "(apply quotient (list 9 2))"), 4);
}

TEST_F(EvalTest, Errors) {
  evalErr(E, "(car 5)", EvalResult::Kind::RuntimeError);
  evalErr(E, "(undefined-var)", EvalResult::Kind::RuntimeError);
  evalErr(E, "(vector-ref #(1) 5)", EvalResult::Kind::RuntimeError);
  evalErr(E, "(+ 'a 1)", EvalResult::Kind::RuntimeError);
  evalErr(E, "(quotient 1 0)", EvalResult::Kind::RuntimeError);
  evalErr(E, "((lambda (x) x))", EvalResult::Kind::RuntimeError); // arity
  evalErr(E, "(1 2)", EvalResult::Kind::RuntimeError); // non-procedure
  evalErr(E, "(error \"custom\" 1 2)", EvalResult::Kind::RuntimeError);
  evalErr(E, "(", EvalResult::Kind::ReadError);
  evalErr(E, "(lambda)", EvalResult::Kind::CompileError);
  evalErr(E, "(if)", EvalResult::Kind::CompileError);
  evalErr(E, "(let ((x)) x)", EvalResult::Kind::CompileError);
  evalErr(E, "(car 1 2)", EvalResult::Kind::CompileError); // prim arity
  evalErr(E, "(lambda (x . y) x)", EvalResult::Kind::CompileError);
}

TEST_F(EvalTest, StackOverflowIsAnError) {
  EngineConfig C = config(1);
  C.MaxStackWords = 4096;
  Engine E2(C);
  std::string Msg = evalErr(E2,
                            "(define (inf n) (+ 1 (inf n))) (inf 0)",
                            EvalResult::Kind::RuntimeError);
  EXPECT_NE(Msg.find("stack overflow"), std::string::npos) << Msg;
}

TEST_F(EvalTest, DeepNonTailRecursionWithinLimit) {
  EXPECT_EQ(evalFixnum(E, "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))"
                          "(sum 10000)"),
            50005000);
}

} // namespace
