//===----------------------------------------------------------------------===//
///
/// \file
/// The critical-path profiler: hand-computed fixture DAGs with exact
/// work/span/parallelism expectations, the span <= work and determinism
/// invariants on real traced runs, drop-refusal, and the profile renderer.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "obs/CriticalPath.h"
#include "obs/Profile.h"

#include <cmath>

using namespace mult;
using namespace mult::testutil;

namespace {

/// Builds synthetic event streams the way the runtime emits them. Tasks
/// are full TaskIds so the fixtures also cover generation-tagged ids.
class TraceBuilder {
public:
  TaskId task(uint32_t N) { return makeTaskId(N, 1); }

  TraceBuilder &ev(TraceEventKind K, unsigned Proc, uint64_t Clock,
                   uint64_t A = 0, uint64_t B = 0, uint64_t C = 0) {
    Events.push_back(TraceEvent{Clock, A, C, static_cast<uint32_t>(B),
                                static_cast<uint8_t>(Proc), K});
    return *this;
  }

  CriticalPathReport analyze(uint64_t Dropped = 0) const {
    return analyzeCriticalPath(Events, Dropped, {});
  }

  std::vector<TraceEvent> Events;
};

/// One task, one processor: the span is all the work there is.
TEST(CriticalPathFixtureTest, SerialChainSpanEqualsWork) {
  TraceBuilder B;
  TaskId T1 = B.task(1);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      .ev(TraceEventKind::TaskFinish, 0, 100, T1);
  CriticalPathReport R = B.analyze();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Work, 100u);
  EXPECT_EQ(R.Span, 100u);
  EXPECT_DOUBLE_EQ(R.parallelism(), 1.0);
  EXPECT_EQ(R.Tasks, 1u);
}

/// Two independent tasks on two processors: work doubles, span doesn't.
TEST(CriticalPathFixtureTest, IndependentPairHasParallelismTwo) {
  TraceBuilder B;
  TaskId T1 = B.task(1), T2 = B.task(2);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskCreate, 1, 0, T2, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      .ev(TraceEventKind::TaskStart, 1, 0, T2)
      .ev(TraceEventKind::TaskFinish, 0, 100, T1)
      .ev(TraceEventKind::TaskFinish, 1, 100, T2);
  CriticalPathReport R = B.analyze();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Work, 200u);
  EXPECT_EQ(R.Span, 100u);
  EXPECT_DOUBLE_EQ(R.parallelism(), 2.0);
  // Brent bound: 2 procs run it in 100 cycles; more don't help.
  EXPECT_EQ(R.idealCycles(1), 200u);
  EXPECT_EQ(R.idealCycles(2), 100u);
  EXPECT_EQ(R.idealCycles(8), 100u);
}

/// A spawn edge: the child's chain continues the parent's path at the
/// spawn point, so span = parent prefix + child, not wall-clock max.
TEST(CriticalPathFixtureTest, SpawnEdgeChainsThroughParentPrefix) {
  TraceBuilder B;
  TaskId T1 = B.task(1), T2 = B.task(2);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      // Parent runs 0..40, then spawns the child (parent edge = T1).
      .ev(TraceEventKind::TaskCreate, 0, 40, T2, 0, T1)
      .ev(TraceEventKind::TaskFinish, 0, 60, T1)
      // Child starts elsewhere later; its path starts at 40, not 0.
      .ev(TraceEventKind::TaskStart, 1, 200, T2)
      .ev(TraceEventKind::TaskFinish, 1, 230, T2);
  CriticalPathReport R = B.analyze();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Work, 90u);  // 60 + 30
  EXPECT_EQ(R.Span, 70u);  // 40 (parent prefix) + 30 (child)
}

/// A touch that blocks: the toucher's tail chains after the resolver's
/// path, lengthening the span beyond either task alone.
TEST(CriticalPathFixtureTest, TouchBlockEdgeLengthensSpan) {
  TraceBuilder B;
  TaskId T1 = B.task(1), T2 = B.task(2);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskCreate, 1, 0, T2, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      .ev(TraceEventKind::TaskStart, 1, 0, T2)
      // T2 runs 30 cycles, touches an unresolved future, blocks.
      .ev(TraceEventKind::TouchBlock, 1, 30, T2)
      .ev(TraceEventKind::TaskBlock, 1, 30, T2, 0)
      // T1 resolves at 100 (path 100) and wakes T2.
      .ev(TraceEventKind::TaskResume, 0, 100, T2, 1, T1)
      .ev(TraceEventKind::FutureResolve, 0, 100, 1, 0, 1)
      .ev(TraceEventKind::TaskFinish, 0, 100, T1)
      // T2 resumes after dispatch latency and runs 40 more cycles.
      .ev(TraceEventKind::TaskStart, 1, 110, T2)
      .ev(TraceEventKind::TaskFinish, 1, 150, T2);
  CriticalPathReport R = B.analyze();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Work, 170u); // 100 + 30 + 40
  // Critical path: T1's 100 cycles, then T2's post-wake 40. T2's first 30
  // cycles overlap T1 and stay off the path.
  EXPECT_EQ(R.Span, 140u);
  EXPECT_NEAR(R.parallelism(), 170.0 / 140.0, 1e-9);
  EXPECT_EQ(R.JoinEdges, 1u);
}

/// A touch that hits: the resolve serial carries the edge even though the
/// toucher never blocked.
TEST(CriticalPathFixtureTest, TouchHitEdgeRaisesPath) {
  TraceBuilder B;
  TaskId T1 = B.task(1), T2 = B.task(2);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      .ev(TraceEventKind::FutureResolve, 0, 100, 0, 0, 7)
      .ev(TraceEventKind::TaskFinish, 0, 100, T1)
      // T2 starts much later in wall-clock; path-wise it only depends on
      // the resolve once it touches at 170.
      .ev(TraceEventKind::TaskCreate, 1, 150, T2, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 1, 150, T2)
      .ev(TraceEventKind::TouchHit, 1, 170, T2, 0, 7)
      .ev(TraceEventKind::TaskFinish, 1, 190, T2);
  CriticalPathReport R = B.analyze();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Work, 140u); // 100 + 40
  // T1's 100, then T2's post-touch 20; T2's pre-touch 20 is off-path.
  EXPECT_EQ(R.Span, 120u);
  EXPECT_EQ(R.JoinEdges, 1u);
  EXPECT_EQ(R.UnknownJoins, 0u);
}

/// GC pauses are neither work nor span.
TEST(CriticalPathFixtureTest, GcPausesAreExcluded) {
  TraceBuilder B;
  TaskId T1 = B.task(1);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      .ev(TraceEventKind::GcBegin, 0, 40)
      .ev(TraceEventKind::GcEnd, 0, 90)
      .ev(TraceEventKind::TaskFinish, 0, 100, T1);
  CriticalPathReport R = B.analyze();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Work, 50u); // 40 before the pause + 10 after
  EXPECT_EQ(R.Span, 50u);
}

TEST(CriticalPathFixtureTest, RefusesDroppedTraces) {
  TraceBuilder B;
  TaskId T1 = B.task(1);
  B.ev(TraceEventKind::TaskCreate, 0, 0, T1, 0, InvalidTask)
      .ev(TraceEventKind::TaskStart, 0, 0, T1)
      .ev(TraceEventKind::TaskFinish, 0, 100, T1);
  CriticalPathReport R = B.analyze(/*Dropped=*/3);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("dropped"), std::string::npos) << R.Error;
  // And the renderer reports the refusal instead of numbers.
  std::string Text;
  StringOutStream OS(Text);
  dumpProfile(OS, R);
  EXPECT_NE(Text.find("profile unavailable"), std::string::npos);
  EXPECT_NE(Text.find("dropped"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Real traced runs
//===----------------------------------------------------------------------===//

const char *ParallelProgram = R"lisp(
  (define (spawn n)
    (if (= n 0) '()
        (cons (future (let loop ((i 0))
                        (if (= i 400) (* n n) (loop (+ i 1)))))
              (spawn (- n 1)))))
  (define (drain l acc)
    (if (null? l) acc (drain (cdr l) (+ acc (touch (car l))))))
  (drain (spawn 24) 0)
)lisp";

EngineConfig tracedConfig(unsigned Procs) {
  EngineConfig C = config(Procs);
  C.EnableTracing = true;
  return C;
}

TEST(CriticalPathEngineTest, SpanBoundedByWorkAndMeasuredTime) {
  Engine E(tracedConfig(4));
  EXPECT_EQ(evalFixnum(E, ParallelProgram), 4900);
  CriticalPathReport R = analyzeCriticalPath(E.tracer());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Work, 0u);
  EXPECT_GT(R.Span, 0u);
  EXPECT_LE(R.Span, R.Work);
  // The simulator can't beat the DAG's own limits: the measured elapsed
  // cycles lie between span (infinite procs) and work (one proc) plus
  // scheduling overhead on top of work.
  EXPECT_GE(E.stats().ElapsedCycles, R.Span);
  // 24 spawned children + the root showed up.
  EXPECT_GE(R.Tasks, 25u);
  EXPECT_GT(R.parallelism(), 1.0) << "24 independent futures must overlap";
  // Site table: exactly one textual future expression in the program.
  ASSERT_GE(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Queued + R.Sites[0].Inlined, 24u);
  EXPECT_GT(R.Sites[0].ChildWork, 0u);
  EXPECT_LE(R.Sites[0].ChildOnPath, R.Sites[0].ChildWork);
}

TEST(CriticalPathEngineTest, DeterministicAcrossIdenticalRuns) {
  auto Run = [] {
    Engine E(tracedConfig(4));
    evalOk(E, ParallelProgram);
    return analyzeCriticalPath(E.tracer());
  };
  CriticalPathReport A = Run(), B = Run();
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_EQ(A.Work, B.Work);
  EXPECT_EQ(A.Span, B.Span);
  EXPECT_EQ(A.Tasks, B.Tasks);
  EXPECT_EQ(A.Segments, B.Segments);
  EXPECT_EQ(A.JoinEdges, B.JoinEdges);
  ASSERT_EQ(A.Sites.size(), B.Sites.size());
  for (size_t I = 0; I < A.Sites.size(); ++I) {
    EXPECT_EQ(A.Sites[I].Name, B.Sites[I].Name);
    EXPECT_EQ(A.Sites[I].ChildWork, B.Sites[I].ChildWork);
    EXPECT_EQ(A.Sites[I].ChildOnPath, B.Sites[I].ChildOnPath);
  }
}

TEST(CriticalPathEngineTest, SerialRunHasParallelismNearOne) {
  // Everything inlined (T=0): one task does all the work, so the DAG is a
  // chain and parallelism collapses to exactly 1.
  EngineConfig C = tracedConfig(1);
  C.InlineThreshold = 0;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, ParallelProgram), 4900);
  CriticalPathReport R = analyzeCriticalPath(E.tracer());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Span, R.Work);
  EXPECT_DOUBLE_EQ(R.parallelism(), 1.0);
  ASSERT_GE(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].Inlined, 24u);
  EXPECT_EQ(R.Sites[0].Queued, 0u);
}

TEST(CriticalPathEngineTest, LazyFutureSeamsCarryEdges) {
  EngineConfig C = tracedConfig(4);
  C.LazyFutures = true;
  Engine E(C);
  EXPECT_EQ(evalFixnum(E, ParallelProgram), 4900);
  CriticalPathReport R = analyzeCriticalPath(E.tracer());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_LE(R.Span, R.Work);
  ASSERT_GE(R.Sites.size(), 1u);
  EXPECT_EQ(R.Sites[0].LazySeams, 24u);
  // Splits only happen when a thief arrived; either way the counters are
  // consistent with each other.
  EXPECT_LE(R.Sites[0].SeamSplits, R.Sites[0].LazySeams);
  EXPECT_EQ(E.stats().SeamsStolen, R.Sites[0].SeamSplits);
}

TEST(CriticalPathEngineTest, RefusesRingTruncatedEngineTrace) {
  EngineConfig C = tracedConfig(2);
  C.TraceSink = "ring:64";
  Engine E(C);
  evalOk(E, ParallelProgram);
  ASSERT_GT(E.tracer().dropped(), 0u) << "ring sized to overflow";
  CriticalPathReport R = analyzeCriticalPath(E.tracer());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("dropped"), std::string::npos);
}

} // namespace
