//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases across the language and runtime: arithmetic boundaries,
/// deep structures, shadowing, variadic primitive wrappers, `let` in
/// operand positions (the Slide instruction), and failure injection.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace mult;
using namespace mult::testutil;

namespace {

class EdgeTest : public ::testing::Test {
protected:
  EdgeTest() : E(config(2)) {}
  Engine E;
};

TEST_F(EdgeTest, ArithmeticBoundaries) {
  // 61-bit fixnum edges.
  EXPECT_EQ(evalPrint(E, "(- 0 1152921504606846975)"),
            "-1152921504606846975");
  // Overflow promotes to flonum instead of wrapping.
  Value V = evalOk(E, "(+ 1152921504606846975 1152921504606846975)");
  EXPECT_TRUE(V.isObject() && V.asObject()->tag() == TypeTag::Flonum);
  // Negative division truncates toward zero (quotient/remainder).
  EXPECT_EQ(evalFixnum(E, "(quotient -7 2)"), -3);
  EXPECT_EQ(evalFixnum(E, "(remainder -7 2)"), -1);
  EXPECT_EQ(evalFixnum(E, "(modulo -7 2)"), 1);
  // Mixed comparisons.
  EXPECT_EQ(evalPrint(E, "(< 1 1.5)"), "#t");
  EXPECT_EQ(evalPrint(E, "(= 2 2.0)"), "#t");
}

TEST_F(EdgeTest, LetInsideOperandPositions) {
  // The Slide instruction: a let's locals must not shift later operands.
  EXPECT_EQ(evalFixnum(E, "(+ 1 (let ((x 2)) x) 3)"), 6);
  EXPECT_EQ(evalPrint(E, "(list (let ((a 1)) a) (let ((b 2) (c 3)) "
                         "(+ b c)) 9)"),
            "(1 5 9)");
  EXPECT_EQ(evalFixnum(E, "((let ((f (lambda (x) (* x 2)))) f) "
                          "(let ((y 21)) y))"),
            42);
  // Nested lets in arguments of calls.
  evalOk(E, "(define (three a b c) (list a b c))");
  EXPECT_EQ(evalPrint(E, "(three (let ((x 'a)) x) (let ((y (let ((z 'b)) "
                         "z))) y) 'c)"),
            "(a b c)");
}

TEST_F(EdgeTest, VariadicPrimitiveWrappers) {
  EXPECT_EQ(evalFixnum(E, "(apply + '(1 2 3 4))"), 10);
  EXPECT_EQ(evalFixnum(E, "(apply - '(10 1 2))"), 7);
  EXPECT_EQ(evalFixnum(E, "(apply * '())"), 1);
  EXPECT_EQ(evalPrint(E, "(apply list '(1 2))"), "(1 2)");
  EXPECT_EQ(evalPrint(E, "(apply append '((1) (2 3)))"), "(1 2 3)");
  EXPECT_EQ(evalFixnum(E, "(apply max '(3 9 2))"), 9);
  // Wrapped wrappers still check arity.
  evalErr(E, "(apply car '(1 2 3))", EvalResult::Kind::RuntimeError);
  // And flow as values through data structures.
  EXPECT_EQ(evalPrint(E, "(map (car (list + *)) '(1 2) )"), "(1 2)");
}

TEST_F(EdgeTest, ShadowingSpecialFormNames) {
  // A lexical binding shadows a special-form keyword in call position.
  EXPECT_EQ(evalFixnum(E, "(let ((future (lambda (x) (* x 10)))) "
                          "(future 4))"),
            40);
}

TEST_F(EdgeTest, DeepStructures) {
  // 20k-element list: build, measure, reverse, survive GC pressure.
  EngineConfig C = config(1);
  C.HeapWords = 1 << 17; // the 30k-pair list + its reversal don't both fit
  Engine E2(C);
  EXPECT_EQ(evalFixnum(E2, R"lisp(
    (define (build n acc) (if (= n 0) acc (build (- n 1) (cons n acc))))
    (define (rev l acc) (if (null? l) acc (rev (cdr l) (cons (car l) acc))))
    (length (rev (build 30000 '()) '()))
  )lisp"),
            30000);
  EXPECT_GE(E2.gcStats().Collections, 1u);
}

TEST_F(EdgeTest, ClosureCapturesAreSnapshots) {
  // Unassigned variables are captured by value (flat closures).
  EXPECT_EQ(evalPrint(E, R"lisp(
    (define (make-counters)
      (let loop ((i 0) (acc '()))
        (if (= i 3)
            (reverse acc)
            (loop (+ i 1) (cons (lambda () i) acc)))))
    (map (lambda (f) (f)) (make-counters))
  )lisp"),
            "(0 1 2)");
}

TEST_F(EdgeTest, MutualRecursionThroughLetrec) {
  EXPECT_EQ(evalPrint(E, R"lisp(
    (letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1)))))
             (odd?  (lambda (n) (if (= n 0) #f (even? (- n 1))))))
      (list (even? 100) (odd? 100)))
  )lisp"),
            "(#t #f)");
}

TEST_F(EdgeTest, FuturesInsideEveryDataStructure) {
  EXPECT_EQ(evalPrint(E, R"lisp(
    (define v (vector (future 1) (future 2)))
    (define p (cons (future 'a) (future 'b)))
    (list (+ (vector-ref v 0) (vector-ref v 1))
          (eq? (car p) 'a)
          (eq? (cdr p) 'b))
  )lisp"),
            "(3 #t #t)");
}

TEST_F(EdgeTest, EqualChasesFuturesInsideStructures) {
  // Library equality behaves like compiled code with implicit touches:
  // it forces placeholders met inside the structure.
  EXPECT_EQ(evalPrint(E, R"lisp(
    (equal? (list 1 (future (list 2 3)) 4)
            (list (future 1) (list 2 (future 3)) 4))
  )lisp"),
            "#t");
  // member/assoc return the original tail/entry: its slot may still hold
  // the (resolved) placeholder, which strict consumers chase.
  EXPECT_EQ(evalPrint(E, "(equal? (car (member '(2) (list (future '(1)) "
                         "(future '(2))))) '(2))"),
            "#t");
  EXPECT_EQ(evalFixnum(E, "(cdr (assoc '(k) (list (cons (future '(k)) "
                          "7))))"),
            7);
}

TEST_F(EdgeTest, ErrorsInsideChildTasksStopTheGroup) {
  EvalResult R = E.eval("(touch (future (car 'boom)))");
  ASSERT_EQ(static_cast<int>(R.K),
            static_cast<int>(EvalResult::Kind::RuntimeError));
  // Resume supplies the child's value; the parent's touch then yields it.
  EvalResult After = E.resumeGroup(R.StoppedGroup, Value::fixnum(5));
  ASSERT_TRUE(After.ok()) << After.Error;
  EXPECT_EQ(After.Val.asFixnum(), 5);
}

TEST_F(EdgeTest, StringsAndSymbolsInterplay) {
  EXPECT_EQ(evalPrint(E, "(eq? (string->symbol \"abc\") 'abc)"), "#t");
  EXPECT_EQ(evalPrint(E,
                      "(string->symbol (string-append \"foo\" \"-\" "
                      "(number->string 42)))"),
            "foo-42");
  EXPECT_EQ(evalPrint(E, "(eq? (string->symbol \"x\") "
                         "(string->symbol \"x\"))"),
            "#t");
}

TEST_F(EdgeTest, QuotedDataIsShared) {
  evalOk(E, "(define (get-q) '(shared))");
  EXPECT_EQ(evalPrint(E, "(eq? (get-q) (get-q))"), "#t");
}

TEST_F(EdgeTest, BeginSequencingOrder) {
  EXPECT_EQ(evalPrint(E, R"lisp(
    (define order '())
    (define (note x) (set! order (cons x order)) x)
    (begin (note 1) (note 2) (note 3))
    (reverse order)
  )lisp"),
            "(1 2 3)");
}

TEST_F(EdgeTest, LargeVectorsUseTheGlobalHeapPath) {
  // Vectors over the large-object threshold bypass chunks (section
  // 2.1.2) but behave identically.
  EngineConfig C = config(1);
  C.LargeObjectWords = 64;
  Engine E2(C);
  EXPECT_EQ(evalFixnum(E2, R"lisp(
    (define v (make-vector 500 1))
    (let loop ((i 0) (acc 0))
      (if (= i 500) acc (loop (+ i 1) (+ acc (vector-ref v i)))))
  )lisp"),
            500);
}

TEST_F(EdgeTest, DisplayOfEveryValueKind) {
  evalOk(E, R"lisp(
    (begin
      (display 1) (display " ") (display 'sym) (display " ")
      (display "str") (display " ") (display #\c) (display " ")
      (display '(1 . 2)) (display " ") (display #(1 2)) (display " ")
      (display #t) (display " ") (display '()) (display " ")
      (display car))
  )lisp");
  EXPECT_EQ(E.takeOutput(), "1 sym str c (1 . 2) #(1 2) #t () #[procedure]");
}

TEST_F(EdgeTest, WriteQuotesStringsAndChars) {
  evalOk(E, "(write (list \"s\" #\\x))");
  EXPECT_EQ(E.takeOutput(), "(\"s\" #\\x)");
}

TEST_F(EdgeTest, RecursionThroughApply) {
  EXPECT_EQ(evalFixnum(E, R"lisp(
    (define (down n) (if (= n 0) 0 (apply down (list (- n 1)))))
    (down 500)
  )lisp"),
            0);
}

} // namespace
