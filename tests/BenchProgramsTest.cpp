//===----------------------------------------------------------------------===//
///
/// \file
/// Correctness tests for the benchmark programs of paper section 4 (at
/// test-sized parameters): Boyer, queens, mergesort, permute, and the
/// mini-compiler.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "../bench/programs/BoyerProgram.h"
#include "../bench/programs/MergesortProgram.h"
#include "../bench/programs/MiniCompilerProgram.h"
#include "../bench/programs/PermuteProgram.h"
#include "../bench/programs/QueensProgram.h"

using namespace mult;
using namespace mult::testutil;

namespace {

TEST(BoyerTest, SequentialProvesTheTheorem) {
  Engine E(config(1));
  evalOk(E, BoyerCommonSource);
  evalOk(E, BoyerSequentialArgs);
  EXPECT_EQ(evalPrint(E, "(boyer-test 1)"), "#t");
}

TEST(BoyerTest, SequentialInT3Mode) {
  EngineConfig C = config(1);
  C.EmitTouchChecks = false;
  Engine E(C);
  evalOk(E, BoyerCommonSource);
  evalOk(E, BoyerSequentialArgs);
  EXPECT_EQ(evalPrint(E, "(boyer-test 1)"), "#t");
}

TEST(BoyerTest, ParallelAgreesOnEveryMachine) {
  for (unsigned Procs : {1u, 2u, 4u}) {
    for (int T : {-1, 1}) {
      EngineConfig C = config(Procs);
      if (T >= 0)
        C.InlineThreshold = static_cast<unsigned>(T);
      Engine E(C);
      evalOk(E, BoyerCommonSource);
      evalOk(E, BoyerParallelArgs);
      EXPECT_EQ(evalPrint(E, "(boyer-test 1)"), "#t")
          << "procs=" << Procs << " T=" << T;
      if (T < 0)
        EXPECT_GT(E.stats().FuturesCreated, 50u)
            << "parallel Boyer must actually create futures";
    }
  }
}

TEST(BoyerTest, TouchOverheadIsVisible) {
  // Table 2's structure: T3 < Mul-T+opt < Mul-T-no-opt on the same
  // sequential program.
  auto CyclesWith = [](bool Touches, bool Opt) {
    EngineConfig C = config(1);
    C.EmitTouchChecks = Touches;
    C.OptimizeTouches = Opt;
    Engine E(C);
    evalOk(E, BoyerCommonSource);
    evalOk(E, BoyerSequentialArgs);
    E.resetStats();
    evalOk(E, "(boyer-test 1)");
    return E.stats().ElapsedCycles;
  };
  uint64_t T3 = CyclesWith(false, false);
  uint64_t NoOpt = CyclesWith(true, false);
  uint64_t Opt = CyclesWith(true, true);
  EXPECT_LT(T3, Opt);
  EXPECT_LT(Opt, NoOpt);
}

TEST(QueensTest, CountsAreCorrect) {
  // Known n-queens solution counts.
  Engine E(config(1));
  evalOk(E, QueensSource);
  EXPECT_EQ(evalFixnum(E, "(queens-seq 4)"), 2);
  EXPECT_EQ(evalFixnum(E, "(queens-seq 5)"), 10);
  EXPECT_EQ(evalFixnum(E, "(queens-seq 6)"), 4);
  EXPECT_EQ(evalFixnum(E, "(queens-seq 7)"), 40);
}

TEST(QueensTest, ParallelMatchesSequential) {
  for (unsigned Procs : {2u, 4u}) {
    Engine E(config(Procs));
    evalOk(E, QueensSource);
    EXPECT_EQ(evalFixnum(E, "(queens-par 6)"), 4);
    EXPECT_EQ(evalFixnum(E, "(queens-par 7)"), 40);
    EXPECT_GT(E.stats().FuturesCreated, 10u);
  }
}

TEST(MergesortTest, SortsCorrectly) {
  for (unsigned Procs : {1u, 4u}) {
    EngineConfig C = config(Procs);
    C.InlineThreshold = 1;
    Engine E(C);
    evalOk(E, MergesortSource);
    EXPECT_EQ(evalPrint(E, "(mergesort-test 256)"), "#t")
        << "procs=" << Procs;
  }
}

TEST(MergesortTest, InliningSlashesFutureCount) {
  // Paper: inlining reduces futures from 8191 to ~350 on 8 processors.
  auto FuturesWith = [](std::optional<unsigned> T, unsigned Procs) {
    EngineConfig C = config(Procs);
    C.InlineThreshold = T;
    Engine E(C);
    evalOk(E, MergesortSource);
    E.resetStats();
    evalOk(E, "(mergesort-test 512)");
    return E.stats().FuturesCreated;
  };
  uint64_t Eager = FuturesWith(std::nullopt, 8);
  uint64_t Inlined = FuturesWith(1u, 8);
  EXPECT_EQ(Eager, 511u) << "one future per divide step";
  EXPECT_LT(Inlined, Eager / 4);
  EXPECT_GT(Inlined, 0u);
}

TEST(PermuteTest, AcceptsDistantVectors) {
  Engine E(config(4));
  evalOk(E, PermuteSource);
  // Tiny instance: 8 vectors of 12 entries, min distance 6.
  int64_t Tested = evalFixnum(E, "(permute-run 8 12 6 4 4)");
  EXPECT_GE(Tested, 8);
  EXPECT_GT(E.stats().FuturesCreated, 0u);
}

TEST(PermuteTest, DistanceFunction) {
  Engine E(config(1));
  evalOk(E, PermuteSource);
  EXPECT_EQ(evalFixnum(E, "(permute-distance #(1 2 3) #(1 9 9) 3)"), 2);
  EXPECT_EQ(evalFixnum(E, "(permute-distance #(1 2) #(1 2) 2)"), 0);
}

TEST(MiniCompilerTest, CompilesItsGeneratedProgram) {
  Engine E(config(1));
  evalOk(E, MiniCompilerSource);
  std::string R = evalPrint(E, "(mc-compile-program (mc-gen-program 6 3) #f)");
  // Result is (total asm-count checksum) with total == asm-count.
  Engine E2(config(1));
  evalOk(E2, MiniCompilerSource);
  std::string R2 =
      evalPrint(E2, "(mc-compile-program (mc-gen-program 6 3) #f)");
  EXPECT_EQ(R, R2) << "generator and compiler must be deterministic";
  EXPECT_EQ(R.front(), '(');
}

TEST(MiniCompilerTest, ParallelMatchesSequentialOutput) {
  // The assembler lock serializes assembly, but per-procedure counts and
  // the total are schedule-independent; the checksum depends on assembly
  // order, so compare count fields only.
  Engine A(config(1));
  evalOk(A, MiniCompilerSource);
  std::string Seq = evalPrint(
      A, "(car (cdr (mc-compile-program (mc-gen-program 8 3) #f)))");
  Engine B(config(4));
  evalOk(B, MiniCompilerSource);
  std::string Par = evalPrint(
      B, "(car (cdr (mc-compile-program (mc-gen-program 8 3) #t)))");
  EXPECT_EQ(Seq, Par);
  EXPECT_GT(B.stats().FuturesCreated, 0u);
}

TEST(MiniCompilerTest, ConstantFoldingWorks) {
  Engine E(config(1));
  evalOk(E, MiniCompilerSource);
  EXPECT_EQ(evalPrint(E, "(mc-fold '(prim + (const 2) (const 3)))"),
            "(const 5)");
  EXPECT_EQ(evalPrint(E, "(mc-fold '(if (const 0) (const 1) (const 2)))"),
            "(const 2)");
  EXPECT_EQ(evalPrint(E, "(mc-fold '(if (const 9) (const 1) (const 2)))"),
            "(const 1)");
}

TEST(MiniCompilerTest, ParseRejectsBadPrograms) {
  Engine E(config(1));
  evalOk(E, MiniCompilerSource);
  evalErr(E, "(mc-parse '((procedure p0 (a) unknown-var)))",
          EvalResult::Kind::RuntimeError);
}

} // namespace
