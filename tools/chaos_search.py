#!/usr/bin/env python3
"""Coverage-guided fault-plan search.

Mutates deterministic fault-plan specs (fault/FaultPlan.h grammar) and runs
each mutant against a small battery of parallel programs through the REPL
binary. A mutant *survives* when it lights up behaviour no earlier plan
reached — a new exception kind, a new recovery outcome, a processor dying,
a deadlock report, and so on. Surviving plans are appended to
tests/plans/surviving_plans.txt so the chaos suite (and future hands) can
replay them with MULT_FAULTS.

A crash of the host process is the jackpot: the offending plan and program
are written to tests/plans/crashing_plans.txt and the tool exits nonzero.

Usage:
  tools/chaos_search.py --build-dir build [--iterations 200] [--seed 1]
                        [--out tests/plans]

Stdlib only; the RNG is seeded, so a given (seed, iterations, binary)
triple reproduces the same search.
"""

import argparse
import os
import random
import re
import subprocess
import sys

PROGRAMS = [
    # Fine-grained future fan-out.
    "(begin (define (fib n) (if (< n 2) n (+ (touch (future (fib (- n 1))))"
    " (fib (- n 2))))) (fib 15))",
    # Parallel mergesort shape: coarse futures over list halves.
    "(begin"
    " (define (build n) (if (= n 0) '() (cons (remainder (* n 17) 101)"
    " (build (- n 1)))))"
    " (define (merge a b)"
    "   (cond ((null? a) b) ((null? b) a)"
    "         ((< (car a) (car b)) (cons (car a) (merge (cdr a) b)))"
    "         (else (cons (car b) (merge a (cdr b))))))"
    " (define (take l n) (if (= n 0) '() (cons (car l) (take (cdr l) (- n 1)))))"
    " (define (drop l n) (if (= n 0) l (drop (cdr l) (- n 1))))"
    " (define (msort l n)"
    "   (if (< n 2) l"
    "       (let ((h (quotient n 2)))"
    "         (let ((a (future (msort (take l h) h))))"
    "           (merge (msort (drop l h) (- n h)) (touch a))))))"
    " (length (msort (build 64) 64)))",
    # Semaphore contention (dining-philosophers shape, fixed fork order).
    "(begin"
    " (define f0 (make-semaphore 1)) (define f1 (make-semaphore 1))"
    " (define f2 (make-semaphore 1))"
    " (define (think n) (if (= n 0) 0 (+ 1 (think (- n 1)))))"
    " (define (dine lo hi m)"
    "   (if (= m 0) 0"
    "       (begin (semaphore-p lo) (semaphore-p hi) (think 25)"
    "              (semaphore-v hi) (semaphore-v lo) (+ 1 (dine lo hi (- m 1))))))"
    " (+ (touch (future (dine f0 f1 3)))"
    "    (+ (touch (future (dine f1 f2 3))) (touch (future (dine f0 f2 3))))))",
]

SEED_PLANS = [
    "alloc-fail-every=23; gc-at=2000",
    "steal-fail=0.4",
    "queue-cap=2; stall=1@500+3000",
    "spawn-error=2; touch-error=5",
    "proc-kill=1@4000",
    "seam-split-fail=1,3",
    # Byzantine: processor 1 corrupts a finishing resolve; every resolve
    # is cross-checked, so the lie is caught deterministically.
    "proc-lie=1@4000; cross-check=1",
    # GC-phase kill: the mark lands a few hundred cycles after a forced
    # collection begins, so the victim dies between its root scan and
    # copy phases and survivors inherit its copy work.
    "gc-at=3000; proc-kill=1@3200",
]


def clauses_of(plan):
    return [c.strip() for c in plan.split(";") if c.strip()]


def format_plan(clauses):
    return "; ".join(clauses)


class Mutator:
    """Grammar-aware plan mutations. Every operation keeps the spec
    parseable (the REPL would otherwise reject it and teach us nothing)."""

    def __init__(self, rng):
        self.rng = rng

    def gc_phase_kill(self):
        """A gc-at / proc-kill pair whose kill mark lands inside the
        collection's rendezvous window, exercising the mid-GC death
        protocol (victim scanned, survivors inherit its copy work)."""
        r = self.rng
        g = r.randint(1000, 20000)
        return "gc-at=%d; proc-kill=%d@%d" % (g, r.randint(0, 3),
                                              g + r.randint(150, 400))

    def fresh_clause(self):
        r = self.rng
        return r.choice([
            lambda: "alloc-fail=%d" % r.randint(1, 40),
            lambda: "alloc-fail-every=%d" % r.randint(5, 200),
            lambda: "gc-at=%d" % r.randint(1, 20000),
            lambda: "spawn-error=%d" % r.randint(1, 20),
            lambda: "touch-error=%d" % r.randint(1, 30),
            lambda: "steal-fail=%.2f" % r.uniform(0.05, 1.0),
            lambda: "steal-fail-at=%d" % r.randint(1, 50),
            lambda: "queue-cap=%d" % r.randint(1, 8),
            lambda: "stall=%d@%d+%d" % (r.randint(0, 3), r.randint(0, 8000),
                                        r.randint(1, 8000)),
            lambda: "adapt-clamp=%d@%d" % (r.randint(1, 12),
                                           r.choice([0, 2, 16])),
            lambda: "adapt-reset=%d" % r.randint(1, 12),
            lambda: "proc-kill=%d@%d" % (r.randint(0, 3),
                                         r.randint(100, 30000)),
            lambda: "proc-lie=%d@%d" % (r.randint(0, 3),
                                        r.randint(100, 30000)),
            lambda: "cross-check=%.2f" % r.uniform(0.0, 1.0),
            self.gc_phase_kill,
            lambda: "seam-split-fail=%s" % ",".join(
                str(r.randint(1, 30)) for _ in range(r.randint(1, 3))),
        ])()

    def perturb_number(self, clause):
        nums = list(re.finditer(r"\d+", clause))
        if not nums:
            return clause
        m = self.rng.choice(nums)
        old = int(m.group())
        new = max(0 if clause.startswith(("proc-kill", "proc-lie",
                                          "stall")) else 1,
                  int(old * self.rng.choice([0.5, 0.8, 1.25, 2, 3])) +
                  self.rng.randint(-2, 2))
        return clause[:m.start()] + str(new) + clause[m.end():]

    def mutate(self, plan):
        cs = clauses_of(plan)
        op = self.rng.random()
        if op < 0.35 or not cs:
            cs.append(self.fresh_clause())
        elif op < 0.55 and len(cs) > 1:
            cs.pop(self.rng.randrange(len(cs)))
        else:
            i = self.rng.randrange(len(cs))
            cs[i] = self.perturb_number(cs[i])
        # Dedup by clause key; the parser last-writer-wins some keys and
        # merges others, so keeping one of each keeps mutations meaningful.
        seen = {}
        for c in cs:
            seen[c.split("=", 1)[0]] = c
        return format_plan(seen.values())


def coverage_of(outcome_text, stats_text, procs_text):
    """Fingerprint what a run reached: outcome classes, fault kinds seen,
    recovery and degradation footprints, processor deaths."""
    keys = set()
    for marker in ("processor-lost", "injected-fault", "deadlock",
                   "heap exhausted", "cycle-budget-exhausted",
                   "wait cycle", "exception", "byzantine-detected"):
        if marker in outcome_text:
            keys.add("outcome:" + marker)
    if re.search(r"^mul-t> \d+", outcome_text, re.M):
        keys.add("outcome:value")
    m = re.search(r"robustness: (\d+) faults injected", stats_text)
    if m:
        keys.add("faults:" + ("some" if int(m.group(1)) else "none"))
    m = re.search(r"recovery: (\d+) procs killed, (\d+) tasks recovered,"
                  r" (\d+) orphaned", stats_text)
    if m:
        killed, recovered, orphaned = (int(g) for g in m.groups())
        keys.add("recovery:killed=%d" % min(killed, 3))
        keys.add("recovery:recovered=" + ("yes" if recovered else "no"))
        keys.add("recovery:orphaned=" + ("yes" if orphaned else "no"))
    m = re.search(r"checkpoints: (\d+) taken \(\d+ cycles\), (\d+) tasks"
                  r" restored", stats_text)
    if m:
        taken, restored = (int(g) for g in m.groups())
        keys.add("checkpoint:taken=" + ("yes" if taken else "no"))
        keys.add("checkpoint:restored=" + ("yes" if restored else "no"))
    m = re.search(r"byzantine: (\d+) lies told, (\d+) cross-checks,"
                  r" (\d+) detected", stats_text)
    if m:
        lies, checks, detected = (int(g) for g in m.groups())
        keys.add("byzantine:lies=" + ("yes" if lies else "no"))
        keys.add("byzantine:checks=" + ("yes" if checks else "no"))
        keys.add("byzantine:detected=" + ("yes" if detected else "no"))
    for marker in ("holds a semaphore", "performed I/O", "no spawn lineage",
                   "stack split by a seam steal"):
        if marker in outcome_text:
            keys.add("orphan:" + marker)
    keys.add("deadprocs:%d" % procs_text.count(" dead "))
    if "collections" in stats_text:
        m = re.search(r"gc: (\d+) collections", stats_text)
        if m:
            keys.add("gc:" + ("some" if int(m.group(1)) else "none"))
    return keys


def run_point(repl, program, plan, timeout=60):
    script = ":faults %s\n%s\n:stats\n:procs\n:exit\n" % (plan, program)
    # Arm the checkpoint policy so kill plans exercise restore-from-
    # checkpoint (and its coverage keys) instead of only spawn-replay.
    env = dict(os.environ, MULT_CHECKPOINT="2000")
    try:
        p = subprocess.run([repl], input=script, capture_output=True,
                           text=True, timeout=timeout, env=env)
    except subprocess.TimeoutExpired:
        return None, "timeout"
    if p.returncode != 0:
        return None, "crash rc=%d" % p.returncode
    out = p.stdout
    # Split the transcript at the :stats command echo-free boundary: the
    # stats block starts at the dispatch table header.
    stats_at = out.find("per-processor virtual time")
    procs_at = out.find("proc  state")
    outcome = out[:stats_at if stats_at >= 0 else len(out)]
    stats = out[stats_at:procs_at if procs_at >= 0 else len(out)] \
        if stats_at >= 0 else ""
    procs = out[procs_at:] if procs_at >= 0 else ""
    return coverage_of(outcome, stats, procs), None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--iterations", type=int, default=100)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--out", default="tests/plans")
    args = ap.parse_args()

    repl = os.path.join(args.build_dir, "examples", "repl")
    if not os.path.exists(repl):
        sys.exit("no REPL binary at %s (build first)" % repl)
    os.makedirs(args.out, exist_ok=True)

    rng = random.Random(args.seed)
    mut = Mutator(rng)
    corpus = list(SEED_PLANS)
    seen_coverage = set()
    survivors = []
    crashes = []

    # Baseline: the seed corpus establishes the already-reached set.
    for plan in corpus:
        for prog in PROGRAMS:
            cov, err = run_point(repl, prog, plan)
            if err:
                crashes.append((plan, prog, err))
            else:
                seen_coverage |= cov

    for i in range(args.iterations):
        parent = rng.choice(corpus)
        plan = mut.mutate(parent)
        new_keys = set()
        for prog in PROGRAMS:
            cov, err = run_point(repl, prog, plan)
            if err:
                crashes.append((plan, prog, err))
                continue
            new_keys |= cov - seen_coverage
        if new_keys:
            seen_coverage |= new_keys
            corpus.append(plan)
            survivors.append((plan, sorted(new_keys)))
            print("[%3d] SURVIVOR %-60s -> %s" %
                  (i, plan, ", ".join(sorted(new_keys))))
        if crashes:
            break

    if survivors:
        path = os.path.join(args.out, "surviving_plans.txt")
        with open(path, "a") as f:
            for plan, keys in survivors:
                f.write("MULT_FAULTS=\"%s\"  # %s\n" % (plan, " ".join(keys)))
        print("appended %d surviving plan(s) to %s" % (len(survivors), path))
    print("coverage: %d keys reached" % len(seen_coverage))

    if crashes:
        path = os.path.join(args.out, "crashing_plans.txt")
        with open(path, "a") as f:
            for plan, prog, err in crashes:
                f.write("%s  MULT_FAULTS=\"%s\"  program=%r\n"
                        % (err, plan, prog))
        sys.exit("HOST CRASH/TIMEOUT: %d point(s) recorded in %s"
                 % (len(crashes), path))


if __name__ == "__main__":
    main()
