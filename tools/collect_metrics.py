#!/usr/bin/env python3
"""Virtual-time regression dashboard for the Mul-T bench suite.

The bench binaries print, when run with MULT_METRICS=1, one stable
machine-readable line per measured engine run:

    ;; virtual-cycles: <tag> <cycles>

one latency-histogram summary line per always-on virtual-time histogram
(tracked as "<tag>@<name>" keys, value = the whole stats string):

    ;; histo: <tag> <name> n=... sum=... p50=... p90=... p99=... max=...

and, when the deterministic fault injector is armed (--faults SPEC), one
robustness counter line per run:

    ;; fault-metrics: <tag> <name> <count>

Every bench also prints one ";; host: <tag> ..." line of host wall-clock
phase times. Host time is machine-dependent noise: this script skips
those lines and *fails loudly* if a host key ever shows up in a golden
file or a collected map -- host time must never be golden-compared.

Virtual cycles are deterministic (the engine simulates its processors in
virtual time), so any drift between commits is a real semantic or
cost-model change, never host noise. The same holds under an armed fault
plan: fault counts and cycles are seed-deterministic. This script:

  * runs the paper-table benches plus the inlining-threshold sweep and
    collects the tag -> cycles map,
  * writes it to <out-dir>/BENCH_<sha>.json for the current commit,
  * optionally diffs it against a golden file (--check, exit 1 on ANY
    drift -- virtual time has no tolerance band),
  * optionally rewrites the golden file (--update-golden),
  * renders the accumulated BENCH_*.json history as a markdown or CSV
    trend table (--render).

Typical uses:

    tools/collect_metrics.py --build-dir build
    tools/collect_metrics.py --build-dir build --check tools/golden_metrics.json
    tools/collect_metrics.py --build-dir build --update-golden tools/golden_metrics.json
    tools/collect_metrics.py --render markdown
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys

# Behave like a normal Unix filter when piped into `head`.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

BENCHES = [
    "bench_table1_future_ops",
    "bench_table2_boyer_seq",
    "bench_table3_boyer_par",
    "bench_table4_apps",
    "bench_inlining_threshold",
]

METRIC_LINE = re.compile(r"^;; virtual-cycles: (\S+) (\d+)\s*$")
FAULT_LINE = re.compile(r"^;; fault-metrics: (\S+) (\S+) (\d+)\s*$")
HISTO_LINE = re.compile(r"^;; histo: (\S+) (\S+) (\S.*?)\s*$")
HOST_LINE = re.compile(r"^;; host: (\S+) ")


def assert_no_host_keys(keys, where):
    """Host wall-clock data is noise; it must never be golden-compared."""
    leaked = [k for k in keys
              if k.split("@")[-1] == "host" or "host-" in k or "-ns" in k]
    if leaked:
        fail(f"host-time key(s) leaked into {where}: {', '.join(sorted(leaked))}"
             " -- ';; host:' lines are machine-dependent noise and must never"
             " be golden-compared")


def fail(msg):
    print(f"collect_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def current_commit():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "worktree"


def run_benches(build_dir, faults=None, checkpoint=None):
    """Run every bench with MULT_METRICS=1 and return {tag: cycles}.

    With faults set, every bench runs under that MULT_FAULTS plan and the
    ";; fault-metrics:" counters join the map as "<tag>#<name>" keys.
    With checkpoint set, MULT_CHECKPOINT arms the checkpointed-recovery
    policy for the faulted runs (the recovery-cost sweep recipe in
    EXPERIMENTS.md).
    """
    env = dict(os.environ, MULT_METRICS="1")
    # Tracing changes nothing about virtual time, but keep runs minimal
    # and independent of the caller's environment. MULT_FAULTS *does*
    # change virtual time, so it is stripped unless --faults asks for it:
    # the default dashboard must measure the unmolested engine.
    # MULT_CHECKPOINT also changes virtual time (captures are charged),
    # so it is stripped unless --checkpoint asks for it.
    # MULT_RACE is virtual-time-neutral too (tools/race_check.py relies
    # on that), but it slows the host and its metrics lines are not this
    # dashboard's input, so strip it as well.
    for var in ("MULT_TRACE", "MULT_PROFILE", "MULT_TRACE_MODE",
                "MULT_TRACE_DIR", "MULT_FAULTS", "MULT_CHECKPOINT",
                "MULT_RACE"):
        env.pop(var, None)
    if faults:
        env["MULT_FAULTS"] = faults
    if checkpoint:
        env["MULT_CHECKPOINT"] = str(checkpoint)
    cycles = {}
    for bench in BENCHES:
        exe = os.path.join(build_dir, "bench", bench)
        if not os.path.exists(exe):
            fail(f"bench binary not found: {exe} (build the repo first)")
        print(f"  running {bench} ...", flush=True)
        proc = subprocess.run([exe], env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            fail(f"{bench} exited with status {proc.returncode}")
        found = 0
        saw_host = False
        for line in proc.stdout.splitlines():
            m = METRIC_LINE.match(line)
            if not m:
                if HOST_LINE.match(line):
                    # Host wall-clock line: every bench must print one, but
                    # its values are noise and are deliberately dropped.
                    saw_host = True
                    continue
                h = HISTO_LINE.match(line)
                if h:
                    key = f"{h.group(1)}@{h.group(2)}"
                    value = h.group(3)
                    if key in cycles and cycles[key] != value:
                        fail(f"{bench}: histogram '{key}' reported twice "
                             f"with different values ({cycles[key]!r} vs "
                             f"{value!r})")
                    cycles[key] = value
                    continue
                f = FAULT_LINE.match(line)
                if f:
                    if faults is None:
                        # The benches only print fault counters when their
                        # engine armed an injector. Seeing one in a run we
                        # did not arm means some stray environment (or an
                        # engine bug) molested the measurement; recording
                        # it as "<tag>#<name>" would silently poison the
                        # golden diff instead of flagging the bad run.
                        fail(f"{bench} printed '{line.strip()}' but no "
                             "--faults plan was given; the run is not "
                             "measuring the unmolested engine")
                    key = f"{f.group(1)}#{f.group(2)}"
                    cycles[key] = int(f.group(3))
                continue
            tag, value = m.group(1), int(m.group(2))
            # Some benches legitimately re-run a configuration (table 2
            # re-measures two rows for the overhead summary); identical
            # repeats are fine, conflicting ones mean the tag is ambiguous.
            if tag in cycles and cycles[tag] != value:
                fail(f"{bench}: tag '{tag}' reported twice with different "
                     f"values ({cycles[tag]} vs {value})")
            cycles[tag] = value
            found += 1
        if not found:
            fail(f"{bench} printed no ';; virtual-cycles:' lines -- "
                 "was it built without MULT_METRICS support?")
        if not saw_host:
            fail(f"{bench} printed no ';; host:' line -- every bench must "
                 "report its host wall-clock phases")
    assert_no_host_keys(cycles, "the collected metrics map")
    return cycles


def check_against_golden(cycles, golden_path):
    """Exact diff against the golden file. Returns the number of drifts."""
    try:
        with open(golden_path) as f:
            golden = json.load(f)["cycles"]
    except (OSError, KeyError, json.JSONDecodeError) as e:
        fail(f"cannot read golden file {golden_path}: {e}")
    assert_no_host_keys(golden, f"the golden file {golden_path}")
    drifts = 0
    for tag in sorted(set(golden) | set(cycles)):
        want, got = golden.get(tag), cycles.get(tag)
        if want == got:
            continue
        drifts += 1
        if want is None:
            print(f"  NEW      {tag}: {got} (not in golden file)")
        elif got is None:
            print(f"  MISSING  {tag}: golden expects {want}")
        elif isinstance(want, str) or isinstance(got, str):
            # Histogram summary strings: name the fields that moved, not
            # just the whole line.
            wf = dict(p.split("=", 1) for p in str(want).split() if "=" in p)
            gf = dict(p.split("=", 1) for p in str(got).split() if "=" in p)
            changed = [f"{k}: {wf.get(k, '?')} -> {gf.get(k, '?')}"
                       for k in sorted(set(wf) | set(gf))
                       if wf.get(k) != gf.get(k)]
            detail = "; ".join(changed) if changed else f"{want!r} -> {got!r}"
            print(f"  DRIFT    {tag}: {detail}")
        else:
            delta = got - want
            print(f"  DRIFT    {tag}: {want} -> {got} ({delta:+d} cycles, "
                  f"{100.0 * delta / want:+.2f}%)")
    if drifts:
        print(f"FAIL: {drifts} virtual-time metric(s) drifted from "
              f"{golden_path}.")
        print("If the change is intentional, refresh with: "
              f"tools/collect_metrics.py --update-golden {golden_path}")
    else:
        print(f"OK: all {len(cycles)} virtual-time metrics match "
              f"{golden_path}.")
    return drifts


def load_history(out_dir):
    """All BENCH_*.json in out_dir, oldest first by recorded sequence."""
    entries = []
    if not os.path.isdir(out_dir):
        return entries
    for name in os.listdir(out_dir):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(out_dir, name)
        try:
            with open(path) as f:
                data = json.load(f)
            entries.append((data.get("sequence", 0), data))
        except (OSError, json.JSONDecodeError):
            print(f"  (skipping unreadable {path})", file=sys.stderr)
    entries.sort(key=lambda e: e[0])
    return [data for _, data in entries]


def render(history, fmt, out):
    if not history:
        fail("no BENCH_*.json files to render; run the collector first")
    tags = sorted({t for entry in history for t in entry["cycles"]})
    commits = [entry["commit"] for entry in history]
    if fmt == "csv":
        out.write("tag," + ",".join(commits) + "\n")
        for tag in tags:
            row = [str(entry["cycles"].get(tag, "")) for entry in history]
            out.write(tag + "," + ",".join(row) + "\n")
        return
    # Markdown: one row per tag, one column per commit, plus the delta of
    # the newest commit against the previous one.
    out.write("| benchmark | " + " | ".join(commits) + " | latest delta |\n")
    out.write("|---|" + "---|" * (len(commits) + 1) + "\n")
    for tag in tags:
        cells = []
        for entry in history:
            v = entry["cycles"].get(tag)
            cells.append(f"{v}" if v is not None else "--")
        delta = "--"
        if len(history) >= 2:
            prev = history[-2]["cycles"].get(tag)
            last = history[-1]["cycles"].get(tag)
            if isinstance(prev, int) and isinstance(last, int):
                d = last - prev
                delta = "0" if d == 0 else f"{d:+d} ({100.0 * d / prev:+.2f}%)"
            elif prev is not None and last is not None:
                delta = "same" if prev == last else "changed"
        out.write(f"| {tag} | " + " | ".join(cells) + f" | {delta} |\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory containing bench/ binaries")
    ap.add_argument("--out-dir", default="tools/metrics",
                    help="directory for per-commit BENCH_<sha>.json files")
    ap.add_argument("--commit", default=None,
                    help="commit label (default: git rev-parse --short HEAD)")
    ap.add_argument("--check", metavar="GOLDEN",
                    help="diff against a golden metrics file; exit 1 on drift")
    ap.add_argument("--update-golden", metavar="GOLDEN",
                    help="rewrite the golden metrics file from this run")
    ap.add_argument("--render", choices=["markdown", "csv"], default=None,
                    help="render the BENCH_*.json history and exit "
                         "(does not run benches)")
    ap.add_argument("--faults", metavar="SPEC", default=None,
                    help="run every bench under this MULT_FAULTS plan and "
                         "collect ';; fault-metrics:' counters as "
                         "'<tag>#<name>' keys (do not --check fault runs "
                         "against the faultless golden file)")
    ap.add_argument("--checkpoint", metavar="N", type=int, default=None,
                    help="arm MULT_CHECKPOINT=N for the faulted runs so "
                         "kills recover from checkpoints; requires --faults "
                         "(checkpointing changes virtual time and must stay "
                         "off the golden dashboard)")
    args = ap.parse_args()
    if args.checkpoint and not args.faults:
        fail("--checkpoint requires --faults: checkpoint captures are "
             "charged in virtual time, so an unfaulted checkpointed run "
             "would drift from the golden file by design")

    if args.render:
        render(load_history(args.out_dir), args.render, sys.stdout)
        return

    commit = args.commit or current_commit()
    if args.faults and not args.commit:
        commit += "+faults"  # keep fault runs apart in the history
    print(f"collecting virtual-time metrics for {commit}")
    if args.faults:
        print(f"  fault plan: {args.faults}")
    if args.checkpoint:
        print(f"  checkpoint-every: {args.checkpoint}")
    cycles = run_benches(args.build_dir, faults=args.faults,
                         checkpoint=args.checkpoint)
    print(f"  {len(cycles)} metrics collected")

    os.makedirs(args.out_dir, exist_ok=True)
    history = load_history(args.out_dir)
    sequence = max((e.get("sequence", 0) for e in history), default=0) + 1
    record = {"commit": commit, "sequence": sequence, "cycles": cycles}
    out_path = os.path.join(args.out_dir, f"BENCH_{commit}.json")
    with open(out_path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"  wrote {out_path}")

    if args.update_golden:
        with open(args.update_golden, "w") as f:
            json.dump({"cycles": cycles}, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"  wrote {args.update_golden}")

    if args.check:
        sys.exit(1 if check_against_golden(cycles, args.check) else 0)


if __name__ == "__main__":
    main()
