#!/usr/bin/env python3
"""CI driver for the determinacy-race detector (MULT_RACE=1).

Two halves, both required for a green run:

  1. Bench sweep: every paper-table bench must be race-free under the
     online detector, AND its virtual-cycle counts must be bit-identical
     to tools/golden_metrics.json. Trace recording costs zero virtual
     time, so arming the detector must not move a single cycle; any
     drift here means the detector (or its tracer hooks) leaked cost
     into the simulation.

  2. Racy-program suite: each tests/race/racy_*.lisp must be flagged
     (>= 1 race, report naming BOTH accesses), and each
     tests/race/clean_*.lisp must be race-free, at every processor
     count in --procs (default 1, 4, 16). Races are logical
     (series-parallel) facts, so they must be detected even at 1 proc.

Typical use:

    tools/race_check.py --build-dir build
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys

BENCHES = [
    "bench_table1_future_ops",
    "bench_table2_boyer_seq",
    "bench_table3_boyer_par",
    "bench_table4_apps",
    "bench_inlining_threshold",
]

METRIC_LINE = re.compile(r"^;; virtual-cycles: (\S+) (\d+)\s*$")
# searched, not matched: REPL output lines carry a "mul-t> " prompt prefix
RACES_LINE = re.compile(r"\braces: (\d+)")
# One side of a race report: "write by task 3 (spawned at f+4) at cycle ..."
ACCESS_LINE = re.compile(r"\b(read|write)\s+by task \d+ \(.*\) at cycle \d+")

FAILURES = []


def flag(msg):
    print(f"race_check: FAIL: {msg}", file=sys.stderr)
    FAILURES.append(msg)


def run(cmd, env, stdin_text=None):
    try:
        return subprocess.run(
            cmd,
            input=stdin_text,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            timeout=900,
        )
    except subprocess.TimeoutExpired:
        flag(f"{' '.join(cmd)} timed out")
        return None


def check_benches(build_dir, golden_path):
    with open(golden_path) as f:
        golden = json.load(f)["cycles"]
    env = dict(os.environ)
    env["MULT_METRICS"] = "1"
    env["MULT_RACE"] = "1"
    seen = {}
    for bench in BENCHES:
        exe = os.path.join(build_dir, "bench", bench)
        if not os.path.exists(exe):
            flag(f"bench binary missing: {exe}")
            continue
        proc = run([exe], env)
        if proc is None:
            continue
        if proc.returncode != 0:
            flag(f"{bench} exited {proc.returncode}")
            continue
        race_lines = 0
        for line in proc.stdout.splitlines():
            m = METRIC_LINE.match(line)
            if m:
                seen[m.group(1)] = int(m.group(2))
                continue
            m = RACES_LINE.search(line)
            if m:
                race_lines += 1
                if int(m.group(1)) != 0:
                    flag(f"{bench}: detector reports races "
                         f"({line.strip()}) -- benches must be race-free")
        if race_lines == 0:
            flag(f"{bench}: no 'races:' metric line; is the detector on?")
        print(f"race_check: {bench}: {race_lines} runs race-free")

    for tag, cycles in sorted(golden.items()):
        if tag not in seen:
            flag(f"golden tag missing from bench output: {tag}")
        elif seen[tag] != cycles:
            flag(f"virtual-cycle drift with detector armed: {tag} "
                 f"golden={cycles} got={seen[tag]} -- the detector must "
                 f"cost zero virtual time")
    extra = set(seen) - set(golden)
    if extra:
        flag(f"bench output has tags absent from golden file: "
             f"{', '.join(sorted(extra))}")
    print(f"race_check: {len(seen)} virtual-cycle tags checked "
          f"against {golden_path}")


def check_program(repl, path, procs):
    """Run one tests/race/*.lisp through the REPL; return (races, report_ok)."""
    env = dict(os.environ)
    env["MULT_RACE"] = "1"
    with open(path) as f:
        text = f.read()
    # Threshold 1000000: the engine inlines when queue depth >= threshold,
    # so a huge threshold forces eager task spawning (real parallelism).
    proc = run([repl, str(procs), "1000000"], env,
               stdin_text=text + "\n:races\n:exit\n")
    if proc is None:
        return None, False
    if proc.returncode != 0:
        flag(f"{path} (procs={procs}): repl exited {proc.returncode}")
        return None, False
    if "error:" in proc.stdout:
        flag(f"{path} (procs={procs}): eval error:\n{proc.stdout}")
        return None, False
    races = None
    accesses = 0
    for line in proc.stdout.splitlines():
        m = RACES_LINE.search(line)
        if m:
            races = int(m.group(1))
        elif ACCESS_LINE.search(line):
            accesses += 1
    if races is None:
        flag(f"{path} (procs={procs}): no ';; races:' line in :races output")
        return None, False
    # A valid report names both racing accesses: two access lines per race.
    return races, accesses >= 2


def check_suite(build_dir, suite_dir, proc_counts):
    repl = os.path.join(build_dir, "examples", "repl")
    if not os.path.exists(repl):
        flag(f"repl binary missing: {repl}")
        return
    programs = sorted(glob.glob(os.path.join(suite_dir, "*.lisp")))
    if not programs:
        flag(f"no programs found in {suite_dir}")
        return
    for path in programs:
        name = os.path.basename(path)
        racy = name.startswith("racy_")
        if not racy and not name.startswith("clean_"):
            flag(f"{path}: suite files must be racy_*.lisp or clean_*.lisp")
            continue
        for procs in proc_counts:
            races, report_ok = check_program(repl, path, procs)
            if races is None:
                continue
            if racy:
                if races == 0:
                    flag(f"{name} (procs={procs}): racy program NOT flagged")
                elif not report_ok:
                    flag(f"{name} (procs={procs}): race report does not "
                         f"name both accesses")
                else:
                    print(f"race_check: {name} (procs={procs}): "
                          f"flagged ({races} races)")
            else:
                if races != 0:
                    flag(f"{name} (procs={procs}): control program "
                         f"falsely flagged ({races} races)")
                else:
                    print(f"race_check: {name} (procs={procs}): race-free")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--golden", default=None,
                    help="golden metrics file (default: tools/golden_metrics.json)")
    ap.add_argument("--suite-dir", default=None,
                    help="racy/clean program directory (default: tests/race)")
    ap.add_argument("--procs", default="1,4,16",
                    help="comma-separated processor counts for the suite")
    args = ap.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    golden = args.golden or os.path.join(root, "tools", "golden_metrics.json")
    suite = args.suite_dir or os.path.join(root, "tests", "race")
    proc_counts = [int(p) for p in args.procs.split(",") if p]

    check_benches(args.build_dir, golden)
    check_suite(args.build_dir, suite, proc_counts)

    if FAILURES:
        print(f"race_check: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("race_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
