#!/usr/bin/env python3
"""Validator for the Prometheus text exposition files the engine writes.

Checks the format rules that scrapers actually enforce, so a CI run with
MULT_TELEMETRY=prom:PATH proves the export is ingestible:

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and carry the mult_ prefix,
  * label names match [a-zA-Z_][a-zA-Z0-9_]*; label values are quoted with
    ", \\ and newline escaped,
  * every sample family is preceded by exactly one # HELP and one # TYPE
    line, and the TYPE is counter|gauge|histogram,
  * sample values parse as numbers,
  * for each histogram series: the le buckets are cumulative
    (non-decreasing), an le="+Inf" bucket exists, its value equals the
    _count sample, and _sum/_count are present.

Usage: tools/check_prom.py FILE [FILE...]   (exit 1 on any violation)
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  -- labels optional; value is the rest of the line.
SAMPLE_RE = re.compile(r"^([^\s{]+)(\{[^}]*\})?\s+(\S+)\s*$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram"}


def base_family(name):
    """Strips the histogram sample suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_file(path):
    errors = []

    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [f"{path}: cannot read: {e}"]

    helps = {}   # family -> lineno
    types = {}   # family -> (type, lineno)
    # histogram family -> {"buckets": [(le, value)], "sum": v, "count": v}
    series = {}
    samples_seen = set()

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                err(lineno, f"malformed comment line: {line!r}")
                continue
            kind, family = parts[1], parts[2]
            if not NAME_RE.match(family):
                err(lineno, f"bad metric name in # {kind}: {family!r}")
                continue
            if kind == "HELP":
                if family in helps:
                    err(lineno, f"duplicate # HELP for {family} "
                                f"(first at line {helps[family]})")
                helps[family] = lineno
            else:
                if family in types:
                    err(lineno, f"duplicate # TYPE for {family} "
                                f"(first at line {types[family][1]})")
                if len(parts) < 4 or parts[3] not in TYPES:
                    err(lineno, f"# TYPE {family} must be one of "
                                f"{sorted(TYPES)}, got "
                                f"{parts[3] if len(parts) > 3 else '(none)'!r}")
                    continue
                types[family] = (parts[3], lineno)
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labelblock, value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            err(lineno, f"bad metric name: {name!r}")
            continue
        if not name.startswith("mult_"):
            err(lineno, f"metric {name!r} is missing the mult_ prefix")
        try:
            fvalue = float(value)
        except ValueError:
            err(lineno, f"sample value of {name} is not a number: {value!r}")
            continue

        labels = {}
        if labelblock:
            inner = labelblock[1:-1]
            stripped = LABEL_RE.sub("", inner)
            if stripped.strip(", "):
                err(lineno, f"malformed label block: {labelblock!r}")
            for lm in LABEL_RE.finditer(inner):
                lname, lvalue = lm.group(1), lm.group(2)
                if not LABEL_NAME_RE.match(lname):
                    err(lineno, f"bad label name: {lname!r}")
                if lname in labels:
                    err(lineno, f"duplicate label {lname!r} on {name}")
                bad = re.search(r'\\(?![\\"n])', lvalue)
                if bad:
                    err(lineno, f"invalid escape in label value: {lvalue!r}")
                labels[lname] = lvalue

        family = base_family(name)
        if family not in helps:
            err(lineno, f"sample of {name} with no preceding # HELP {family}")
        if family not in types:
            err(lineno, f"sample of {name} with no preceding # TYPE {family}")
        ftype = types.get(family, (None, 0))[0]
        if name != family and ftype != "histogram":
            # _bucket/_sum/_count on a non-histogram family: the suffix is
            # then part of the plain metric name, which is fine -- but only
            # when that full name was declared itself.
            if name in helps:
                family, ftype = name, types.get(name, (None, 0))[0]

        key = (name, tuple(sorted(labels.items())))
        if key in samples_seen:
            err(lineno, f"duplicate sample {name}{labelblock or ''}")
        samples_seen.add(key)

        if ftype == "histogram":
            other = {k: v for k, v in labels.items() if k != "le"}
            skey = (family, tuple(sorted(other.items())))
            s = series.setdefault(skey,
                                  {"buckets": [], "sum": None, "count": None})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    err(lineno, f"histogram bucket of {family} has no le label")
                else:
                    s["buckets"].append((lineno, labels["le"], fvalue))
            elif name.endswith("_sum"):
                s["sum"] = fvalue
            elif name.endswith("_count"):
                s["count"] = fvalue
            else:
                err(lineno, f"histogram family {family} has a plain sample "
                            f"{name}; expected _bucket/_sum/_count")

    for (family, labels), s in sorted(series.items()):
        where = f"{family}{{{', '.join(f'{k}={v}' for k, v in labels)}}}" \
            if labels else family
        if not s["buckets"]:
            errors.append(f"{path}: histogram {where} has no buckets")
            continue
        prev = None
        inf_value = None
        for lineno, le, v in s["buckets"]:
            if le != "+Inf":
                try:
                    float(le)
                except ValueError:
                    errors.append(f"{path}:{lineno}: bad le value {le!r}")
                    continue
            else:
                inf_value = v
            if prev is not None and v < prev:
                errors.append(f"{path}:{lineno}: histogram {where} buckets "
                              f"are not cumulative ({v} after {prev})")
            prev = v
        if inf_value is None:
            errors.append(f"{path}: histogram {where} has no le=\"+Inf\" "
                          "bucket")
        if s["count"] is None:
            errors.append(f"{path}: histogram {where} has no _count sample")
        if s["sum"] is None:
            errors.append(f"{path}: histogram {where} has no _sum sample")
        if inf_value is not None and s["count"] is not None \
                and inf_value != s["count"]:
            errors.append(f"{path}: histogram {where}: le=\"+Inf\" bucket "
                          f"({inf_value}) != _count ({s['count']})")

    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    failed = False
    for path in sys.argv[1:]:
        errors = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: OK")
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
