file(REMOVE_RECURSE
  "../bench/bench_inlining_threshold"
  "../bench/bench_inlining_threshold.pdb"
  "CMakeFiles/bench_inlining_threshold.dir/bench_inlining_threshold.cpp.o"
  "CMakeFiles/bench_inlining_threshold.dir/bench_inlining_threshold.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inlining_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
