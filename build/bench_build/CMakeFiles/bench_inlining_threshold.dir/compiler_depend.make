# Empty compiler generated dependencies file for bench_inlining_threshold.
# This may be replaced when dependencies are built.
