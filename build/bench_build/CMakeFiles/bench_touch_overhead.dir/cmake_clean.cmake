file(REMOVE_RECURSE
  "../bench/bench_touch_overhead"
  "../bench/bench_touch_overhead.pdb"
  "CMakeFiles/bench_touch_overhead.dir/bench_touch_overhead.cpp.o"
  "CMakeFiles/bench_touch_overhead.dir/bench_touch_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_touch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
