# Empty dependencies file for bench_touch_overhead.
# This may be replaced when dependencies are built.
