# Empty compiler generated dependencies file for bench_table2_boyer_seq.
# This may be replaced when dependencies are built.
