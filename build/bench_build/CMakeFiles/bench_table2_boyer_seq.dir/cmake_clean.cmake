file(REMOVE_RECURSE
  "../bench/bench_table2_boyer_seq"
  "../bench/bench_table2_boyer_seq.pdb"
  "CMakeFiles/bench_table2_boyer_seq.dir/bench_table2_boyer_seq.cpp.o"
  "CMakeFiles/bench_table2_boyer_seq.dir/bench_table2_boyer_seq.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_boyer_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
