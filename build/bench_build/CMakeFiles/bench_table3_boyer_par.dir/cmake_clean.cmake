file(REMOVE_RECURSE
  "../bench/bench_table3_boyer_par"
  "../bench/bench_table3_boyer_par.pdb"
  "CMakeFiles/bench_table3_boyer_par.dir/bench_table3_boyer_par.cpp.o"
  "CMakeFiles/bench_table3_boyer_par.dir/bench_table3_boyer_par.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_boyer_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
