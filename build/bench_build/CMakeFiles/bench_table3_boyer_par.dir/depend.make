# Empty dependencies file for bench_table3_boyer_par.
# This may be replaced when dependencies are built.
