file(REMOVE_RECURSE
  "../bench/bench_table1_future_ops"
  "../bench/bench_table1_future_ops.pdb"
  "CMakeFiles/bench_table1_future_ops.dir/bench_table1_future_ops.cpp.o"
  "CMakeFiles/bench_table1_future_ops.dir/bench_table1_future_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_future_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
