# Empty compiler generated dependencies file for bench_gc_parallel.
# This may be replaced when dependencies are built.
