file(REMOVE_RECURSE
  "../bench/bench_gc_parallel"
  "../bench/bench_gc_parallel.pdb"
  "CMakeFiles/bench_gc_parallel.dir/bench_gc_parallel.cpp.o"
  "CMakeFiles/bench_gc_parallel.dir/bench_gc_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
