file(REMOVE_RECURSE
  "../bench/bench_lazy_futures"
  "../bench/bench_lazy_futures.pdb"
  "CMakeFiles/bench_lazy_futures.dir/bench_lazy_futures.cpp.o"
  "CMakeFiles/bench_lazy_futures.dir/bench_lazy_futures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
