# Empty dependencies file for bench_lazy_futures.
# This may be replaced when dependencies are built.
