# Empty compiler generated dependencies file for mult_core.
# This may be replaced when dependencies are built.
