file(REMOVE_RECURSE
  "libmult_core.a"
)
