file(REMOVE_RECURSE
  "CMakeFiles/mult_core.dir/core/DynamicEnv.cpp.o"
  "CMakeFiles/mult_core.dir/core/DynamicEnv.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/Engine.cpp.o"
  "CMakeFiles/mult_core.dir/core/Engine.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/FutureOps.cpp.o"
  "CMakeFiles/mult_core.dir/core/FutureOps.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/Group.cpp.o"
  "CMakeFiles/mult_core.dir/core/Group.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/LazyFutures.cpp.o"
  "CMakeFiles/mult_core.dir/core/LazyFutures.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/Semaphore.cpp.o"
  "CMakeFiles/mult_core.dir/core/Semaphore.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/Stats.cpp.o"
  "CMakeFiles/mult_core.dir/core/Stats.cpp.o.d"
  "CMakeFiles/mult_core.dir/core/Task.cpp.o"
  "CMakeFiles/mult_core.dir/core/Task.cpp.o.d"
  "CMakeFiles/mult_core.dir/sched/Machine.cpp.o"
  "CMakeFiles/mult_core.dir/sched/Machine.cpp.o.d"
  "CMakeFiles/mult_core.dir/sched/Scheduler.cpp.o"
  "CMakeFiles/mult_core.dir/sched/Scheduler.cpp.o.d"
  "CMakeFiles/mult_core.dir/sched/TaskQueues.cpp.o"
  "CMakeFiles/mult_core.dir/sched/TaskQueues.cpp.o.d"
  "CMakeFiles/mult_core.dir/vm/CostModel.cpp.o"
  "CMakeFiles/mult_core.dir/vm/CostModel.cpp.o.d"
  "CMakeFiles/mult_core.dir/vm/Interpreter.cpp.o"
  "CMakeFiles/mult_core.dir/vm/Interpreter.cpp.o.d"
  "CMakeFiles/mult_core.dir/vm/Primitives.cpp.o"
  "CMakeFiles/mult_core.dir/vm/Primitives.cpp.o.d"
  "libmult_core.a"
  "libmult_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
