
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/DynamicEnv.cpp" "src/CMakeFiles/mult_core.dir/core/DynamicEnv.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/DynamicEnv.cpp.o.d"
  "/root/repo/src/core/Engine.cpp" "src/CMakeFiles/mult_core.dir/core/Engine.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/Engine.cpp.o.d"
  "/root/repo/src/core/FutureOps.cpp" "src/CMakeFiles/mult_core.dir/core/FutureOps.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/FutureOps.cpp.o.d"
  "/root/repo/src/core/Group.cpp" "src/CMakeFiles/mult_core.dir/core/Group.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/Group.cpp.o.d"
  "/root/repo/src/core/LazyFutures.cpp" "src/CMakeFiles/mult_core.dir/core/LazyFutures.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/LazyFutures.cpp.o.d"
  "/root/repo/src/core/Semaphore.cpp" "src/CMakeFiles/mult_core.dir/core/Semaphore.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/Semaphore.cpp.o.d"
  "/root/repo/src/core/Stats.cpp" "src/CMakeFiles/mult_core.dir/core/Stats.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/Stats.cpp.o.d"
  "/root/repo/src/core/Task.cpp" "src/CMakeFiles/mult_core.dir/core/Task.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/core/Task.cpp.o.d"
  "/root/repo/src/sched/Machine.cpp" "src/CMakeFiles/mult_core.dir/sched/Machine.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/sched/Machine.cpp.o.d"
  "/root/repo/src/sched/Scheduler.cpp" "src/CMakeFiles/mult_core.dir/sched/Scheduler.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/sched/Scheduler.cpp.o.d"
  "/root/repo/src/sched/TaskQueues.cpp" "src/CMakeFiles/mult_core.dir/sched/TaskQueues.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/sched/TaskQueues.cpp.o.d"
  "/root/repo/src/vm/CostModel.cpp" "src/CMakeFiles/mult_core.dir/vm/CostModel.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/vm/CostModel.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/CMakeFiles/mult_core.dir/vm/Interpreter.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/vm/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Primitives.cpp" "src/CMakeFiles/mult_core.dir/vm/Primitives.cpp.o" "gcc" "src/CMakeFiles/mult_core.dir/vm/Primitives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mult_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
