file(REMOVE_RECURSE
  "libmult_compiler.a"
)
