# Empty dependencies file for mult_compiler.
# This may be replaced when dependencies are built.
