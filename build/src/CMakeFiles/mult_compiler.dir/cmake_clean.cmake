file(REMOVE_RECURSE
  "CMakeFiles/mult_compiler.dir/compiler/Analyzer.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/Analyzer.cpp.o.d"
  "CMakeFiles/mult_compiler.dir/compiler/Ast.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/Ast.cpp.o.d"
  "CMakeFiles/mult_compiler.dir/compiler/Bytecode.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/Bytecode.cpp.o.d"
  "CMakeFiles/mult_compiler.dir/compiler/CodeGen.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/CodeGen.cpp.o.d"
  "CMakeFiles/mult_compiler.dir/compiler/Expander.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/Expander.cpp.o.d"
  "CMakeFiles/mult_compiler.dir/compiler/PrimTable.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/PrimTable.cpp.o.d"
  "CMakeFiles/mult_compiler.dir/compiler/TouchOpt.cpp.o"
  "CMakeFiles/mult_compiler.dir/compiler/TouchOpt.cpp.o.d"
  "libmult_compiler.a"
  "libmult_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
