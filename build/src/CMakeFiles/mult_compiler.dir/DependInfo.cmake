
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/Analyzer.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/Analyzer.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/Analyzer.cpp.o.d"
  "/root/repo/src/compiler/Ast.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/Ast.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/Ast.cpp.o.d"
  "/root/repo/src/compiler/Bytecode.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/Bytecode.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/Bytecode.cpp.o.d"
  "/root/repo/src/compiler/CodeGen.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/CodeGen.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/CodeGen.cpp.o.d"
  "/root/repo/src/compiler/Expander.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/Expander.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/Expander.cpp.o.d"
  "/root/repo/src/compiler/PrimTable.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/PrimTable.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/PrimTable.cpp.o.d"
  "/root/repo/src/compiler/TouchOpt.cpp" "src/CMakeFiles/mult_compiler.dir/compiler/TouchOpt.cpp.o" "gcc" "src/CMakeFiles/mult_compiler.dir/compiler/TouchOpt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mult_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
