file(REMOVE_RECURSE
  "CMakeFiles/mult_ui.dir/ui/Repl.cpp.o"
  "CMakeFiles/mult_ui.dir/ui/Repl.cpp.o.d"
  "libmult_ui.a"
  "libmult_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
