# Empty dependencies file for mult_ui.
# This may be replaced when dependencies are built.
