file(REMOVE_RECURSE
  "libmult_ui.a"
)
