# Empty dependencies file for mult_runtime.
# This may be replaced when dependencies are built.
