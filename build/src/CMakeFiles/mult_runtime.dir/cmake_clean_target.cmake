file(REMOVE_RECURSE
  "libmult_runtime.a"
)
