file(REMOVE_RECURSE
  "CMakeFiles/mult_runtime.dir/runtime/Gc.cpp.o"
  "CMakeFiles/mult_runtime.dir/runtime/Gc.cpp.o.d"
  "CMakeFiles/mult_runtime.dir/runtime/Heap.cpp.o"
  "CMakeFiles/mult_runtime.dir/runtime/Heap.cpp.o.d"
  "CMakeFiles/mult_runtime.dir/runtime/Object.cpp.o"
  "CMakeFiles/mult_runtime.dir/runtime/Object.cpp.o.d"
  "CMakeFiles/mult_runtime.dir/runtime/Printer.cpp.o"
  "CMakeFiles/mult_runtime.dir/runtime/Printer.cpp.o.d"
  "CMakeFiles/mult_runtime.dir/runtime/SymbolTable.cpp.o"
  "CMakeFiles/mult_runtime.dir/runtime/SymbolTable.cpp.o.d"
  "CMakeFiles/mult_runtime.dir/runtime/Value.cpp.o"
  "CMakeFiles/mult_runtime.dir/runtime/Value.cpp.o.d"
  "libmult_runtime.a"
  "libmult_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
