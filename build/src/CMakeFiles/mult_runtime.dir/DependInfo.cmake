
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Gc.cpp" "src/CMakeFiles/mult_runtime.dir/runtime/Gc.cpp.o" "gcc" "src/CMakeFiles/mult_runtime.dir/runtime/Gc.cpp.o.d"
  "/root/repo/src/runtime/Heap.cpp" "src/CMakeFiles/mult_runtime.dir/runtime/Heap.cpp.o" "gcc" "src/CMakeFiles/mult_runtime.dir/runtime/Heap.cpp.o.d"
  "/root/repo/src/runtime/Object.cpp" "src/CMakeFiles/mult_runtime.dir/runtime/Object.cpp.o" "gcc" "src/CMakeFiles/mult_runtime.dir/runtime/Object.cpp.o.d"
  "/root/repo/src/runtime/Printer.cpp" "src/CMakeFiles/mult_runtime.dir/runtime/Printer.cpp.o" "gcc" "src/CMakeFiles/mult_runtime.dir/runtime/Printer.cpp.o.d"
  "/root/repo/src/runtime/SymbolTable.cpp" "src/CMakeFiles/mult_runtime.dir/runtime/SymbolTable.cpp.o" "gcc" "src/CMakeFiles/mult_runtime.dir/runtime/SymbolTable.cpp.o.d"
  "/root/repo/src/runtime/Value.cpp" "src/CMakeFiles/mult_runtime.dir/runtime/Value.cpp.o" "gcc" "src/CMakeFiles/mult_runtime.dir/runtime/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mult_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
