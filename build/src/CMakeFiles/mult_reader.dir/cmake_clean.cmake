file(REMOVE_RECURSE
  "CMakeFiles/mult_reader.dir/reader/Lexer.cpp.o"
  "CMakeFiles/mult_reader.dir/reader/Lexer.cpp.o.d"
  "CMakeFiles/mult_reader.dir/reader/Reader.cpp.o"
  "CMakeFiles/mult_reader.dir/reader/Reader.cpp.o.d"
  "libmult_reader.a"
  "libmult_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
