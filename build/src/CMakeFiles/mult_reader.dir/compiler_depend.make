# Empty compiler generated dependencies file for mult_reader.
# This may be replaced when dependencies are built.
