file(REMOVE_RECURSE
  "libmult_reader.a"
)
