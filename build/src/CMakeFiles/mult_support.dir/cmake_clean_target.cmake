file(REMOVE_RECURSE
  "libmult_support.a"
)
