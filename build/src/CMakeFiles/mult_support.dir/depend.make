# Empty dependencies file for mult_support.
# This may be replaced when dependencies are built.
