file(REMOVE_RECURSE
  "CMakeFiles/mult_support.dir/support/OutStream.cpp.o"
  "CMakeFiles/mult_support.dir/support/OutStream.cpp.o.d"
  "CMakeFiles/mult_support.dir/support/Prng.cpp.o"
  "CMakeFiles/mult_support.dir/support/Prng.cpp.o.d"
  "CMakeFiles/mult_support.dir/support/StrUtil.cpp.o"
  "CMakeFiles/mult_support.dir/support/StrUtil.cpp.o.d"
  "libmult_support.a"
  "libmult_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
