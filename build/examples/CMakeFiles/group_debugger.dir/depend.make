# Empty dependencies file for group_debugger.
# This may be replaced when dependencies are built.
