file(REMOVE_RECURSE
  "CMakeFiles/group_debugger.dir/group_debugger.cpp.o"
  "CMakeFiles/group_debugger.dir/group_debugger.cpp.o.d"
  "group_debugger"
  "group_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
