file(REMOVE_RECURSE
  "CMakeFiles/nqueens.dir/nqueens.cpp.o"
  "CMakeFiles/nqueens.dir/nqueens.cpp.o.d"
  "nqueens"
  "nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
