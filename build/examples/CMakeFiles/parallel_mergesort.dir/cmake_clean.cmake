file(REMOVE_RECURSE
  "CMakeFiles/parallel_mergesort.dir/parallel_mergesort.cpp.o"
  "CMakeFiles/parallel_mergesort.dir/parallel_mergesort.cpp.o.d"
  "parallel_mergesort"
  "parallel_mergesort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_mergesort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
