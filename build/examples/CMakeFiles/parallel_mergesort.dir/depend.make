# Empty dependencies file for parallel_mergesort.
# This may be replaced when dependencies are built.
