
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/BenchProgramsTest.cpp" "tests/CMakeFiles/mult_tests.dir/BenchProgramsTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/BenchProgramsTest.cpp.o.d"
  "/root/repo/tests/BytecodeTest.cpp" "tests/CMakeFiles/mult_tests.dir/BytecodeTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/BytecodeTest.cpp.o.d"
  "/root/repo/tests/CompilerTest.cpp" "tests/CMakeFiles/mult_tests.dir/CompilerTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/CompilerTest.cpp.o.d"
  "/root/repo/tests/CostModelTest.cpp" "tests/CMakeFiles/mult_tests.dir/CostModelTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/CostModelTest.cpp.o.d"
  "/root/repo/tests/DynSemTest.cpp" "tests/CMakeFiles/mult_tests.dir/DynSemTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/DynSemTest.cpp.o.d"
  "/root/repo/tests/EdgeCaseTest.cpp" "tests/CMakeFiles/mult_tests.dir/EdgeCaseTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/EdgeCaseTest.cpp.o.d"
  "/root/repo/tests/EvalCoreTest.cpp" "tests/CMakeFiles/mult_tests.dir/EvalCoreTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/EvalCoreTest.cpp.o.d"
  "/root/repo/tests/FuturesTest.cpp" "tests/CMakeFiles/mult_tests.dir/FuturesTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/FuturesTest.cpp.o.d"
  "/root/repo/tests/GroupsTest.cpp" "tests/CMakeFiles/mult_tests.dir/GroupsTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/GroupsTest.cpp.o.d"
  "/root/repo/tests/HeapGcTest.cpp" "tests/CMakeFiles/mult_tests.dir/HeapGcTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/HeapGcTest.cpp.o.d"
  "/root/repo/tests/LazyFuturesTest.cpp" "tests/CMakeFiles/mult_tests.dir/LazyFuturesTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/LazyFuturesTest.cpp.o.d"
  "/root/repo/tests/MachineTest.cpp" "tests/CMakeFiles/mult_tests.dir/MachineTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/MachineTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/mult_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/ReaderPrinterTest.cpp" "tests/CMakeFiles/mult_tests.dir/ReaderPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/ReaderPrinterTest.cpp.o.d"
  "/root/repo/tests/SchedulerTest.cpp" "tests/CMakeFiles/mult_tests.dir/SchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/SchedulerTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/mult_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/ValueTest.cpp" "tests/CMakeFiles/mult_tests.dir/ValueTest.cpp.o" "gcc" "tests/CMakeFiles/mult_tests.dir/ValueTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mult_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mult_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
