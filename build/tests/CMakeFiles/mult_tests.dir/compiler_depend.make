# Empty compiler generated dependencies file for mult_tests.
# This may be replaced when dependencies are built.
