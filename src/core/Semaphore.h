//===----------------------------------------------------------------------===//
///
/// \file
/// Semaphores: `make-semaphore`, `semaphore-p`, `semaphore-v`.
///
/// These are the primitives of the paper's section-3 deadlock example:
/// under plain inlining a welded child blocking on P with the V in the
/// parent deadlocks; under lazy futures the parent can be unwelded and run.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_SEMAPHORE_H
#define MULT_CORE_SEMAPHORE_H

#include "core/Task.h"
#include "runtime/Object.h"

namespace mult {

class Engine;
struct Processor;

namespace sem {

/// Result of a P operation.
enum class POutcome : uint8_t {
  Acquired, ///< Count was positive; decremented.
  Blocked,  ///< Task enqueued on the semaphore; it will be woken by V.
  NeedsGc,  ///< Waiter-cell allocation failed; retry after GC.
};

/// P (wait). On Blocked the caller's CallPrim completes later via the
/// task's wake action.
POutcome p(Engine &E, Processor &P, Task &T, Object *Sem);

/// V (signal): wakes the longest-waiting task, or increments the count.
void v(Engine &E, Processor &P, Object *Sem);

} // namespace sem
} // namespace mult

#endif // MULT_CORE_SEMAPHORE_H
