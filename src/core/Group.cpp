//===----------------------------------------------------------------------===//
///
/// \file
/// Group helpers.
///
//===----------------------------------------------------------------------===//

#include "core/Group.h"

using namespace mult;

const char *mult::groupStateName(GroupState S) {
  switch (S) {
  case GroupState::Running:
    return "running";
  case GroupState::Stopped:
    return "stopped";
  case GroupState::Done:
    return "done";
  case GroupState::Killed:
    return "killed";
  }
  return "unknown";
}
