//===----------------------------------------------------------------------===//
///
/// \file
/// Run-time statistics the benchmark harnesses report.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_STATS_H
#define MULT_CORE_STATS_H

#include <cstdint>

namespace mult {

/// Cycle totals attributed to the six steps of evaluating
/// `(touch (future 0))` (paper Table 1). Counts are events; Cycles are
/// virtual NS32332 instructions.
struct FutureStepStats {
  uint64_t MakeThunkCycles = 0;     ///< Step 1: make thunk, call *future.
  uint64_t CreateEnqueueCycles = 0; ///< Step 2: create future+task, enqueue.
  uint64_t BlockCycles = 0;         ///< Step 3: block the touching task.
  uint64_t DispatchNewCycles = 0;   ///< Step 4: dequeue + start a new task.
  uint64_t ResolveCycles = 0;       ///< Step 5: resolve, wake waiters.
  uint64_t DispatchSuspCycles = 0;  ///< Step 6: dequeue + resume.
  uint64_t total() const {
    return MakeThunkCycles + CreateEnqueueCycles + BlockCycles +
           DispatchNewCycles + ResolveCycles + DispatchSuspCycles;
  }
};

/// Engine-wide counters, cumulative until resetStats().
struct EngineStats {
  // Tasks and futures.
  uint64_t TasksCreated = 0;
  uint64_t TasksInlined = 0;  ///< futures evaluated inline (threshold T)
  uint64_t TasksCompleted = 0;
  uint64_t FuturesCreated = 0;
  uint64_t FuturesResolved = 0;

  // Lazy futures.
  uint64_t SeamsCreated = 0;
  uint64_t SeamsStolen = 0;

  // Touches.
  uint64_t TouchesExecuted = 0; ///< dynamic count of touch instructions
  uint64_t TouchesBlocked = 0;  ///< touches that found an unresolved future

  // Scheduling. One StealAttempt is one stealNew/stealSuspended probe of a
  // victim queue; it either yields a dispatched task (Steals) or not
  // (StealsFailed: queue empty, or the popped task was vetoed), so
  // Steals + StealsFailed == StealAttempts always.
  uint64_t Dispatches = 0;
  uint64_t Steals = 0;
  uint64_t StealAttempts = 0;
  uint64_t StealsFailed = 0;

  // Adaptive inlining threshold (sched/Adaptive.h; zero unless
  // EngineConfig::AdaptiveInline).
  uint64_t AdaptWindows = 0;     ///< adaptation windows closed
  uint64_t ThresholdRaises = 0;  ///< T moved up (starvation signal)
  uint64_t ThresholdLowers = 0;  ///< T moved down (surplus signal)

  // Per-site policies (core/SitePolicies.h; zero unless a table loaded).
  uint64_t PolicyEager = 0;  ///< futures forced eager by a site policy
  uint64_t PolicyInline = 0; ///< futures forced inline by a site policy
  uint64_t PolicyLazy = 0;   ///< futures forced lazy by a site policy

  // Robustness (src/fault and the degradation paths it exercises).
  uint64_t FaultsInjected = 0;      ///< fault-plan clauses that fired
  uint64_t HeapExhaustedStops = 0;  ///< groups stopped on heap-exhausted
  uint64_t DeadlocksDetected = 0;   ///< quiescent runs with root unresolved

  // Fail-stop recovery (proc-kill clauses; zero unless one fired).
  uint64_t ProcsKilled = 0;    ///< processors fail-stopped
  uint64_t TasksRecovered = 0; ///< lost tasks re-spawned from lineage
  uint64_t TasksOrphaned = 0;  ///< lost tasks with observed side effects
  uint64_t RecoveryCycles = 0; ///< busy cycles re-executing recovered tasks
  uint64_t WakesRedirected = 0; ///< post-mortem wakes rerouted to survivors

  // Checkpointed recovery (EngineConfig::CheckpointEvery / MULT_CHECKPOINT;
  // zero unless armed).
  uint64_t CheckpointsTaken = 0;  ///< checkpoint records captured
  uint64_t CheckpointCycles = 0;  ///< virtual cycles spent capturing
  uint64_t TasksRestored = 0;     ///< lost tasks resumed from a checkpoint
  /// Largest per-task re-execution charge among checkpoint-restored tasks;
  /// bounded by CheckpointEvery + QuantumCycles by construction.
  uint64_t MaxTaskRecoveryCycles = 0;

  // Byzantine faults (proc-lie / cross-check clauses; zero unless armed).
  uint64_t ByzantineLies = 0;     ///< corrupted finishing resolves
  uint64_t CrossChecks = 0;       ///< sampled re-executions performed
  uint64_t ByzantineDetected = 0; ///< cross-check mismatches (group stops)

  // Execution.
  uint64_t Instructions = 0;   ///< bytecode instructions executed
  uint64_t CyclesExecuted = 0; ///< virtual NS32332 instructions charged
  uint64_t IdleCycles = 0;

  // The last run's elapsed virtual time.
  uint64_t ElapsedCycles = 0;

  FutureStepStats Steps;

  /// The paper's machine runs ~1 MIPS with a measured 220us for the ~196
  /// instructions of (touch (future 0)): 1.12 us per abstract instruction.
  static constexpr double MicrosecondsPerCycle = 1.12;

  double elapsedSeconds() const {
    return static_cast<double>(ElapsedCycles) * MicrosecondsPerCycle * 1e-6;
  }
  static double cyclesToSeconds(uint64_t Cycles) {
    return static_cast<double>(Cycles) * MicrosecondsPerCycle * 1e-6;
  }
};

} // namespace mult

#endif // MULT_CORE_STATS_H
