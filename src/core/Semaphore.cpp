//===----------------------------------------------------------------------===//
///
/// \file
/// Semaphore implementation.
///
//===----------------------------------------------------------------------===//

#include "core/Semaphore.h"

#include "core/Engine.h"
#include "vm/CostModel.h"

using namespace mult;

sem::POutcome sem::p(Engine &E, Processor &P, Task &T, Object *Sem) {
  if (Sem->semaphoreCount() > 0) {
    Sem->setSemaphoreCount(Sem->semaphoreCount() - 1);
    P.charge(3);
    if (E.raceDetectEnabled() && E.tracer().enabled())
      E.tracer().record(TraceEventKind::SemAcquire, P.Id, P.Clock,
                        E.cellSerial(Sem), 0, T.Id);
    return POutcome::Acquired;
  }

  // Append to the waiter list (FIFO: V wakes the longest waiter).
  uint64_t Cycles = 0;
  Object *Cell = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
  if (!Cell) {
    P.charge(Cycles);
    return POutcome::NeedsGc;
  }
  Cell->setCar(Value::fixnum(static_cast<int64_t>(T.Id)));
  Cell->setCdr(Value::nil());
  Value Waiters = Sem->slot(Object::SemWaiters);
  if (Waiters.isNil()) {
    Sem->setSlot(Object::SemWaiters, Value::object(Cell));
  } else {
    Object *Last = Waiters.asObject();
    while (!Last->cdr().isNil())
      Last = Last->cdr().asObject();
    Last->setCdr(Value::object(Cell));
  }

  T.State = TaskState::BlockedSemaphore;
  T.BlockedOn = Value::object(Sem);
  T.BlockClock = P.Clock; // telemetry stamp, zero virtual cost
  P.charge(Cycles + cost::BlockBase);
  if (E.tracer().enabled())
    E.tracer().record(TraceEventKind::TaskBlock, P.Id, P.Clock, T.Id, 1);
  return POutcome::Blocked;
}

void sem::v(Engine &E, Processor &P, Object *Sem) {
  Value Waiters = Sem->slot(Object::SemWaiters);
  while (!Waiters.isNil()) {
    Object *Cell = Waiters.asObject();
    Waiters = Cell->cdr();
    Sem->setSlot(Object::SemWaiters, Waiters);
    auto Id = static_cast<TaskId>(Cell->car().asFixnum());
    Task *Waiter = E.liveTask(Id);
    if (!Waiter || Waiter->State != TaskState::BlockedSemaphore)
      continue; // stale (task killed); try the next waiter
    if (!Waiter->BlockedOn.isObject() || Waiter->BlockedOn.asObject() != Sem)
      continue;
    // Complete the waiter's semaphore-p call: pop the semaphore argument,
    // push the result, advance past CallPrim.
    Waiter->State = TaskState::Ready;
    Waiter->BlockedOn = Value::nil();
    Waiter->HasWakeAction = true;
    Waiter->WakePop = 1;
    Waiter->WakeValue = Value::trueV();
    ++Waiter->SemaphoresHeld; // the V hands the semaphore to this waiter
    // The handoff mutates the waiter mid-flight; any checkpoint captured
    // before it must never be restored (the restore would drop the
    // acquisition and rewind past the wake action).
    ++Waiter->SideEffectEpoch;
    // Semaphore wait latency: P-block to V-wake, saturating (per-proc
    // clocks are not totally ordered).
    E.telemetry().record(E.telemetryIds().SemWait, P.Id,
                         P.Clock > Waiter->BlockClock
                             ? P.Clock - Waiter->BlockClock
                             : 0);
    Processor &Home = E.machine().homeFor(Waiter->LastProc);
    P.charge(Home.Queues.pushSuspended(Id, P.Clock) + 4);
    if (E.tracer().enabled())
      E.tracer().record(TraceEventKind::TaskResume, P.Id, P.Clock, Waiter->Id,
                        Home.Id, P.Current);
    if (E.raceDetectEnabled() && E.tracer().enabled()) {
      // Direct handoff: the V releases and the waiter acquires in one
      // step, so the release edge flows straight into the waiter.
      E.tracer().record(TraceEventKind::SemRelease, P.Id, P.Clock,
                        E.cellSerial(Sem), 0, P.Current);
      E.tracer().record(TraceEventKind::SemAcquire, P.Id, P.Clock,
                        E.cellSerial(Sem), 0, Waiter->Id);
    }
    return;
  }
  Sem->setSemaphoreCount(Sem->semaphoreCount() + 1);
  P.charge(3);
  if (E.raceDetectEnabled() && E.tracer().enabled())
    E.tracer().record(TraceEventKind::SemRelease, P.Id, P.Clock,
                      E.cellSerial(Sem), 0, P.Current);
}
