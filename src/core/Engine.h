//===----------------------------------------------------------------------===//
///
/// \file
/// The Mul-T engine: the public API of the library.
///
/// An Engine owns the heap, the symbol table, the compiler, the virtual
/// multiprocessor, the task/group registries and the collector, and exposes
/// `eval` plus group management (the paper's user-interface layer builds on
/// this). Construct one Engine per simulated machine; it is not
/// thread-safe (the multiprocessor is simulated in virtual time).
///
/// Typical use:
/// \code
///   mult::EngineConfig Cfg;
///   Cfg.NumProcessors = 8;
///   Cfg.InlineThreshold = 1; // the paper's T
///   mult::Engine E(Cfg);
///   auto R = E.eval("(touch (future (+ 1 2)))");
///   // R.Val is fixnum 3; E.stats() has cycle counts.
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_ENGINE_H
#define MULT_CORE_ENGINE_H

#include "compiler/CodeGen.h"
#include "core/Group.h"
#include "core/SitePolicies.h"
#include "fault/Injector.h"
#include "core/Stats.h"
#include "core/Task.h"
#include "obs/Telemetry.h"
#include "obs/Trace.h"
#include "runtime/Gc.h"
#include "runtime/Heap.h"
#include "runtime/SymbolTable.h"
#include "sched/Machine.h"
#include "support/OutStream.h"
#include "support/Prng.h"

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mult {

class RaceDetector;

/// Construction-time configuration of a simulated Mul-T machine.
struct EngineConfig {
  /// Number of virtual processors (the Multimax had up to 20).
  unsigned NumProcessors = 1;
  /// The inlining threshold T of paper section 3: a processor evaluates a
  /// future inline when its queues already hold >= T tasks. nullopt means
  /// T = infinity (never inline); 0 means always inline.
  std::optional<unsigned> InlineThreshold;
  /// Lazy futures (paper section 3's proposed mechanism): provisionally
  /// inline every future; idle processors may retroactively split the
  /// parent off as a real task.
  bool LazyFutures = false;
  /// Adaptive inlining threshold (sched/Adaptive.h): each processor
  /// re-tunes its own T in fixed virtual-time windows from its steal
  /// activity and queue backlog. InlineThreshold (when set and finite)
  /// seeds the starting T; with this off the static threshold applies
  /// unchanged. Deterministic: same seed, same schedule.
  bool AdaptiveInline = false;
  /// Adaptation window length in per-processor virtual cycles.
  uint64_t AdaptiveWindowCycles = 4096;
  /// Bounds the adaptive T may move within, and the vote count needed
  /// before it moves (see AdaptiveTConfig).
  unsigned AdaptiveMinT = 0;
  unsigned AdaptiveMaxT = 16;
  unsigned AdaptiveHysteresis = 2;
  /// Path to a site-policy file (core/SitePolicies.h): per-future-site
  /// eager/inline/lazy decisions, typically emitted by the critical-path
  /// profiler (`:profile FILE`). Empty falls back to the
  /// MULT_SITE_POLICIES environment variable; load errors are reported to
  /// stderr at construction and the table stays empty.
  std::string SitePolicies;
  /// Compile implicit touches for strict operations. false = "T3 mode",
  /// the sequential baseline of Table 2.
  bool EmitTouchChecks = true;
  /// Run the first-order type analysis that removes redundant touches.
  bool OptimizeTouches = true;
  /// Compile known primitive names to open-coded/called primitives.
  bool IntegratePrims = true;

  size_t HeapWords = size_t(1) << 22;
  size_t ChunkWords = 4096;
  size_t LargeObjectWords = 512;
  /// Per-task stack limit, enforced by the procedure-entry check.
  size_t MaxStackWords = size_t(1) << 20;

  uint64_t RandomSeed = 0x4d756c54; // "MulT"
  /// Timeslice granularity of the virtual-time interleaving.
  uint64_t QuantumCycles = 64;
  /// Safety net against runaway programs; ~0 = unlimited. Exceeding it
  /// abandons the run with EvalResult::Kind::CycleLimit.
  uint64_t MaxRunCycles = ~uint64_t(0);
  /// Per-run cycle *budget* for the watchdog: unlike MaxRunCycles (which
  /// abandons the run), exceeding MaxCycles stops the running group with a
  /// `cycle-budget-exhausted` condition — breakloop-inspectable, resumable
  /// (with a fresh budget) or killable. ~0 = unlimited.
  uint64_t MaxCycles = ~uint64_t(0);
  StealOrder StealPolicy = StealOrder::Lifo;
  /// Load the Lisp prelude at construction (tests may disable).
  bool LoadPrelude = true;
  /// Record the virtual-time event trace (src/obs). Costs no virtual time
  /// either way; off by default so benches pay nothing. Can also be
  /// toggled at run time via Engine::tracer().setEnabled.
  bool EnableTracing = false;
  /// Trace sink spec: "" / "unbounded", "ring:N", or "stream[:PATH]"
  /// (see Tracer::configureSink). Malformed specs are reported to stderr
  /// at construction and the default unbounded sink is kept.
  std::string TraceSink;
  /// Deterministic fault-plan spec (see FaultPlan.h for the grammar).
  /// Empty falls back to the MULT_FAULTS environment variable; malformed
  /// specs are reported to stderr at construction and ignored. The plan
  /// arms after bootstrap, so the prelude always loads cleanly.
  std::string Faults;
  /// Lineage-based task recovery after a proc-kill fault: lost futures
  /// with no observed side effects are re-spawned on survivors. When off
  /// (MULT_RECOVERY=0), every task lost to a fail-stop is orphaned and
  /// its group stops with a `processor-lost` condition. Irrelevant when
  /// no proc-kill clause ever fires.
  bool Recovery = true;
  /// Checkpointed recovery interval (MULT_CHECKPOINT): when nonzero, a
  /// task that has executed this many busy cycles since its last capture
  /// is snapshotted at its next quantum boundary (if it owns its whole
  /// stack — no live seams), and a proc-kill restores it from the newest
  /// snapshot instead of re-running it from its spawn. Bounds the
  /// per-task recovery charge to CheckpointEvery + QuantumCycles.
  /// 0 = off (PR 5 spawn-replay semantics, bit-identical).
  uint64_t CheckpointEvery = 0;
  /// Telemetry export spec: "prom:PATH" (Prometheus text exposition) or
  /// "json:PATH", written when the engine is destroyed. Empty falls back
  /// to the MULT_TELEMETRY environment variable; empty both ways means
  /// no export (the registry still records -- recording is always on and
  /// costs no virtual time). When several engines share a path, the last
  /// one destroyed wins.
  std::string Telemetry;
  /// Determinacy-race detection (src/analysis, MULT_RACE): instrument
  /// box/vector/dynamic-env accesses with trace events and run the online
  /// SP-relation checker against the stream. Forces tracing on (the
  /// detector is a stream consumer) but charges no virtual time, so cycle
  /// counts are bit-identical either way; when off, every instrumentation
  /// site is a single dormant bool test.
  bool RaceDetect = false;
};

/// Result of Engine::eval and friends.
struct EvalResult {
  enum class Kind : uint8_t {
    Value,
    ReadError,
    CompileError,
    RuntimeError, ///< A group stopped on an exception.
    Deadlock,
    HeapExhausted,
    CycleLimit,
  };
  Kind K = Kind::Value;
  Value Val = Value::unspecified();
  std::string Error;
  GroupId StoppedGroup = InvalidGroup;
  /// Heap occupancy at the point of failure; meaningful for
  /// HeapExhausted (zeroed otherwise).
  HeapFacts Heap;

  bool ok() const { return K == Kind::Value; }
};

/// The engine.
class Engine final : public GcClient {
public:
  explicit Engine(const EngineConfig &Config = EngineConfig());
  ~Engine() override;

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// \name Evaluation
  /// @{
  /// Reads and evaluates every form in \p Source; returns the last value.
  /// Each top-level form runs as its own group.
  EvalResult eval(std::string_view Source);
  /// Evaluates one already-read datum.
  EvalResult evalDatum(Value Form, std::string_view Banner = "");
  /// @}

  /// \name Group management (the UI layer of paper section 2.3)
  /// @{
  const std::vector<Group> &allGroups() const { return Groups; }
  Group *findGroup(GroupId Id);
  std::vector<GroupId> stoppedGroups() const;
  /// Resumes a stopped group; \p ResumeValue becomes the value of the
  /// erring operation in the signalling task.
  EvalResult resumeGroup(GroupId Id, Value ResumeValue);
  void killGroup(GroupId Id);
  /// Most recently stopped group (the UI's "current group").
  GroupId currentStoppedGroup() const {
    return StoppedStack.empty() ? InvalidGroup : StoppedStack.back();
  }
  /// Renders a backtrace of \p T (frame names, innermost first).
  std::string backtrace(TaskId T);
  /// @}

  /// \name Output
  /// @{
  /// Returns and clears everything the program printed.
  std::string takeOutput();
  /// @}

  /// \name Statistics and observability
  /// @{
  EngineStats &stats() { return Stats; }
  const Gc::Stats &gcStats() const { return TheGc.stats(); }
  const CompileStats &compileStats() const { return TheCompiler.stats(); }
  /// The virtual-time event recorder (cleared by resetStats).
  Tracer &tracer() { return TheTracer; }
  const Tracer &tracer() const { return TheTracer; }
  void resetStats();

  /// \name Always-on latency telemetry (src/obs/Telemetry.h)
  ///
  /// Recording never charges virtual time, so cycle counts are
  /// bit-identical with or without anyone reading the histograms.
  /// Values are cleared by resetStats; registrations and ids persist.
  /// @{
  Telemetry &telemetry() { return Telem; }
  const Telemetry &telemetry() const { return Telem; }
  /// Well-known metric ids, registered once at construction.
  struct TelemetryIds {
    Telemetry::Id GcPause = Telemetry::InvalidId;     ///< per-collection pause
    Telemetry::Id TouchWait = Telemetry::InvalidId;   ///< touch-block -> resolve
    Telemetry::Id StealLatency = Telemetry::InvalidId;///< queue push -> steal
    Telemetry::Id SemWait = Telemetry::InvalidId;     ///< sem-P block -> V wake
    Telemetry::Id TaskLifetime = Telemetry::InvalidId;///< create -> finish
    Telemetry::Id EvalRequest = Telemetry::InvalidId; ///< top-level eval cycles
    Telemetry::Id EvalsTotal = Telemetry::InvalidId;  ///< counter
    Telemetry::Id HostNsPerCycle = Telemetry::InvalidId; ///< gauge, set by benches
  };
  const TelemetryIds &telemetryIds() const { return TelemIds; }
  /// Records one touch-wait sample into the global histogram and the
  /// per-site child keyed by \p Site (a Tracer::futureSiteId; ~0 =
  /// unknown site, global only).
  void recordTouchWait(Processor &P, uint32_t Site, uint64_t WaitCycles);
  /// @}

  /// \name Internals used by the VM, scheduler and primitives
  /// @{
  const EngineConfig &config() const { return Cfg; }
  Heap &heap() { return TheHeap; }
  SymbolTable &symbols() { return Syms; }
  DatumBuilder &builder() { return Builder; }
  Compiler &compiler() { return TheCompiler; }
  Machine &machine() { return TheMachine; }
  Prng &prng() { return Rng; }
  OutStream &console() { return ConsoleStream; }
  VirtualLock &terminalLock() { return TermLock; }

  /// Allocates a collectable object on behalf of \p P, adding the cycle
  /// charge to \p Cycles. Null means: request a GC and retry the
  /// instruction.
  Object *tryAlloc(Processor &P, TypeTag Tag, uint32_t SizeWords,
                   uint64_t &Cycles, uint8_t Flags = 0);

  Task &task(TaskId Id);
  /// Null if the id's generation is stale or the task is Done.
  Task *liveTask(TaskId Id);
  /// The task currently occupying registry slot \p Idx, regardless of
  /// generation; null when out of range or Done. Callers must validate
  /// the slot really is the task they mean (e.g. its ResultFuture) --
  /// used by the touch-wait telemetry to map a future back to the
  /// spawning site via the FutTaskId slot.
  Task *taskByIndex(uint32_t Idx);
  Group &group(GroupId Id);
  /// Creates (or recycles) a task running \p Closure. \p Parent is the
  /// creating task (the future-spawn DAG edge recorded in the trace);
  /// InvalidTask for roots and server tasks that no task spawned.
  TaskId newTask(GroupId G, Value Closure, Value ResultFuture, Value DynEnv,
                 unsigned Proc, TaskId Parent = InvalidTask);
  /// Marks \p T done and recycles its slot.
  void finishTask(Task &T);
  size_t taskSlotCount() const { return Tasks.size(); }

  /// Lazy-future seam registry, oldest first.
  std::deque<SeamRef> &seams() { return Seams; }
  /// Next seam serial number (lazy-future bookkeeping).
  uint64_t nextSeamSerial() { return ++SeamSerialCounter; }
  /// Creates an empty task shell (lazy-future split fills it manually).
  TaskId newEmptyTask(GroupId G, unsigned Proc);

  /// Signals an exception in \p T: stops its whole group (paper
  /// section 2.3), running the per-processor exception-handler server task
  /// and the terminal server in virtual time.
  void stopGroup(Processor &P, Task &T, std::string Condition,
                 uint32_t StopPop);
  /// Like stopGroup, but the faulting instruction has NOT executed: the
  /// stack is untouched and resume simply re-runs it (no wake action).
  /// Used for injected faults and budget/heap conditions that hit before
  /// an instruction commits.
  void stopGroupRestartable(Processor &P, Task &T, std::string Condition);
  GroupId lastStoppedGroup() const { return LastStopped; }

  /// \name Fault injection (src/fault)
  /// @{
  FaultInjector &faults() { return Injector; }
  const FaultInjector &faults() const { return Injector; }
  /// (Re)installs a fault plan at run time (the REPL's `:faults`). Empty
  /// spec disarms. False (and \p Err set) on a malformed spec; the
  /// previous plan is kept then.
  bool configureFaults(std::string_view Spec, std::string &Err);
  /// Accounts one injected fault: bumps stats and records a FaultInjected
  /// trace event (A = kind, B = site detail, C = running count).
  void noteFault(Processor &P, FaultKind Kind, uint64_t Detail = 0);
  /// @}

  /// \name Future-site scheduling policies (core/SitePolicies.h)
  /// @{
  const SitePolicyTable &sitePolicies() const { return SitePolicyTab; }
  /// Replaces the policy table (parses the *text format*, not a path).
  /// False (and \p Err set) on a parse error; the old table is kept.
  bool configureSitePolicies(std::string_view Text, std::string &Err);
  /// The policy for the future site at (\p CodeKey, \p Pc), or nullptr.
  /// Site names are matched the way the tracer names them:
  /// "<code-name>+<pc>". Memoized per site; O(1) after first use.
  const SitePolicy *sitePolicyFor(const void *CodeKey, uint32_t Pc,
                                  std::string_view CodeName);
  /// The threshold FutureOps compares queue depth against: the
  /// processor's adaptive T when AdaptiveInline is on, the static
  /// configuration otherwise.
  std::optional<unsigned> inlineThresholdFor(const Processor &P) const {
    if (Cfg.AdaptiveInline)
      return P.Adapt.T;
    return Cfg.InlineThreshold;
  }
  /// @}

  /// Fail-stop recovery for a just-killed processor \p Dead: drains its
  /// queues, re-spawns every recoverable lost task from its spawn lineage
  /// onto survivors, and stops the groups of unrecoverable ones with a
  /// `processor-lost` condition. Called by Machine::run right after it
  /// marks \p Dead dead; \p P is the (live) processor that observed the
  /// kill and pays the virtual-time cost of the recovery scan.
  ///
  /// \p DoomClock is the absolute virtual cycle of the kill clause's
  /// mark. The kill is polled at quantum granularity, so another
  /// processor can run past the mark and wake a task onto \p Dead's
  /// suspended queue before the poll fires; such post-mortem wakes
  /// (queue arrival >= DoomClock) were never really on the dead
  /// processor and are redirected intact to a survivor instead of being
  /// re-spawned or orphaned. ~0 means "no mark known": every drained
  /// task is treated as lost backlog.
  void recoverProcessor(Processor &P, Processor &Dead,
                        uint64_t DoomClock = ~uint64_t(0));

  /// \name Determinacy-race detection (src/analysis)
  /// @{
  /// True when EngineConfig::RaceDetect / MULT_RACE armed the detector.
  bool raceDetectEnabled() const { return RaceDetectOn; }
  /// The online checker attached to the tracer; null when detection is
  /// off.
  RaceDetector *raceDetector() { return RaceDet.get(); }
  const RaceDetector *raceDetector() const { return RaceDet.get(); }
  /// Stable serial naming mutable cell \p Cell in trace events. Assigned
  /// on first use; the side map is remapped from the forwarding pointers
  /// after every collection, so a serial survives GC moves.
  uint64_t cellSerial(const Object *Cell);
  /// Emits a CellRead/CellWrite event for the detector. Costs no virtual
  /// time; a single dormant bool test when detection is off.
  void recordAccess(Processor &P, const Task &T, const Object *Cell,
                    uint32_t Slot, bool IsWrite) {
    if (!RaceDetectOn)
      return;
    recordAccessSlow(P, T, Cell, Slot, IsWrite);
  }
  /// @}

  /// Renders the task → future wait-for graph from scheduler state:
  /// every blocked task, what it waits on, and any wait cycle found.
  /// Empty string when nothing is blocked.
  std::string describeWaitGraph();

  /// \name Root-future tracking for Machine::run
  /// @{
  void beginRun(Value RootFuture, GroupId RootGroup);
  bool rootResolved() const { return RootDone; }
  void noteRootResolved(uint64_t Clock) {
    RootDone = true;
    RootClock = Clock;
  }
  Object *rootFutureObject() const {
    return RootFuture.isFuture() ? RootFuture.pointee() : nullptr;
  }
  Value rootValue() const;
  uint64_t rootResolvedClock() const { return RootClock; }
  GroupId rootGroup() const { return RootGroupId; }
  /// @}

  /// Runs a collection now; false means the heap is truly exhausted.
  bool collectGarbage();

  /// GcClient interface.
  unsigned numRootSegments() override;
  void scanRootSegment(unsigned Segment, const RootVisitor &Visit) override;
  void scanProcessorRoots(unsigned Proc, const RootVisitor &Visit) override;
  void preFlip() override;
  bool pollGcKill(uint64_t Clock, unsigned &Victim) override;
  /// @}

  /// Captures a checkpoint record of \p T (running on \p P) if it is
  /// eligible: no live seams and it owns its whole stack. Called by
  /// Machine::run at quantum boundaries once T's busy cycles since the
  /// last capture reach Cfg.CheckpointEvery. Charges the capture cost to
  /// \p P and to EngineStats::CheckpointCycles.
  void maybeCheckpoint(Processor &P, Task &T);

  /// Byzantine-fault hook for a task-finishing Op::Return: called with
  /// the result still on top of \p T's stack, before any state changes.
  /// May corrupt the result in place (a proc-lie firing unobserved), or
  /// catch the lie via a sampled cross-check re-execution and stop the
  /// group restartably with a `byzantine-detected` condition. Returns
  /// true when the group stopped (the caller must not commit the
  /// return); false to proceed with whatever is now on the stack.
  bool checkByzantineReturn(Processor &P, Task &T);

private:
  /// Loads the Lisp prelude and installs closure wrappers for primitives
  /// so primitive names work as first-class values.
  void bootstrap();
  void installPrimitiveWrappers();
  EvalResult runTopLevel(Code *TopCode, std::string_view Banner);
  EvalResult translateRunResult(const RunResult &R, GroupId G);
  /// Allocation that retries after GC; for setup paths outside the VM.
  Object *allocOrGc(TypeTag Tag, uint32_t SizeWords, uint8_t Flags = 0);
  void scanTask(Task &T, const RootVisitor &Visit);
  void recordAccessSlow(Processor &P, const Task &T, const Object *Cell,
                        uint32_t Slot, bool IsWrite);
  /// Rekeys CellSerials through the forwarding pointers; must run inside
  /// the collection (preFlip), while from-space headers are still
  /// readable. Dead cells drop out.
  void remapCellSerials();

  EngineConfig Cfg;
  Heap TheHeap;
  SymbolTable Syms;
  DatumBuilder Builder;
  CodeRegistry Registry;
  Compiler TheCompiler;
  Gc TheGc;
  Machine TheMachine;
  Prng Rng;

  std::vector<std::unique_ptr<Task>> Tasks;
  std::vector<uint32_t> TaskGens;
  std::vector<uint32_t> FreeTaskSlots;
  std::vector<Group> Groups;
  std::deque<SeamRef> Seams;
  uint64_t SeamSerialCounter = 0;

  EngineStats Stats;
  Tracer TheTracer;
  FaultInjector Injector;

  /// proc-kill faults consumed *inside* a collection (pollGcKill): the
  /// collector finishes the victim's copy work on survivors first, then
  /// collectGarbage performs the machine-level fail-stop and recovery
  /// after the heap is whole again.
  struct PendingGcKill {
    unsigned Victim = 0;
    uint64_t Mark = 0; ///< run-relative doom mark from the plan
  };
  std::vector<PendingGcKill> PendingGcKills;

  // Always-on latency telemetry. TelemetrySpec is the resolved export
  // destination (config or MULT_TELEMETRY), written by the destructor.
  // SiteTouchHists maps future-site ids to their labeled touch-wait
  // child histograms, registered on a site's first blocked touch.
  Telemetry Telem;
  TelemetryIds TelemIds;
  std::vector<Telemetry::Id> SiteTouchHists;
  std::string TelemetrySpec;

  // Determinacy-race detection (null/empty unless RaceDetect is on).
  std::unique_ptr<RaceDetector> RaceDet;
  bool RaceDetectOn = false;
  std::unordered_map<const Object *, uint64_t> CellSerials;
  uint64_t CellSerialCounter = 0;

  SitePolicyTable SitePolicyTab;
  /// Site-policy memo: (code object, pc) → table entry (nullptr = no
  /// policy), so the hot future path never rebuilds name strings.
  std::map<std::pair<const void *, uint32_t>, const SitePolicy *>
      SitePolicyMemo;

  std::string ConsoleBuf;
  StringOutStream ConsoleStream{ConsoleBuf};
  VirtualLock TermLock;

  Value RootFuture = Value::nil();
  GroupId RootGroupId = InvalidGroup;
  bool RootDone = false;
  uint64_t RootClock = 0;
  GroupId LastStopped = InvalidGroup;
  std::vector<GroupId> StoppedStack;
  bool Bootstrapping = false;
};

} // namespace mult

#endif // MULT_CORE_ENGINE_H
