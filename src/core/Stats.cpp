//===----------------------------------------------------------------------===//
///
/// \file
/// Statistics rendering.
///
//===----------------------------------------------------------------------===//

#include "core/Stats.h"

#include "support/OutStream.h"
#include "support/StrUtil.h"

namespace mult {

/// Renders \p S human-readably (REPL's :stats command, debugging).
void dumpStats(OutStream &OS, const EngineStats &S) {
  OS << "tasks: created " << S.TasksCreated << ", inlined " << S.TasksInlined
     << ", completed " << S.TasksCompleted << '\n';
  OS << "futures: created " << S.FuturesCreated << ", resolved "
     << S.FuturesResolved << '\n';
  OS << "lazy seams: created " << S.SeamsCreated << ", stolen "
     << S.SeamsStolen << '\n';
  OS << "touches: executed " << S.TouchesExecuted << ", blocked "
     << S.TouchesBlocked << '\n';
  OS << "scheduling: dispatches " << S.Dispatches << ", steals " << S.Steals
     << " (of " << S.StealAttempts << " attempts, " << S.StealsFailed
     << " failed)\n";
  if (S.AdaptWindows)
    OS << "adaptive-T: " << S.AdaptWindows << " windows, "
       << S.ThresholdRaises << " raises, " << S.ThresholdLowers
       << " lowers\n";
  if (S.PolicyEager || S.PolicyInline || S.PolicyLazy)
    OS << "site policies: " << S.PolicyEager << " eager, " << S.PolicyInline
       << " inline, " << S.PolicyLazy << " lazy\n";
  OS << "execution: " << S.Instructions << " insns, " << S.CyclesExecuted
     << " cycles busy, " << S.IdleCycles << " idle\n";
  if (S.FaultsInjected || S.HeapExhaustedStops || S.DeadlocksDetected)
    OS << "robustness: " << S.FaultsInjected << " faults injected, "
       << S.HeapExhaustedStops << " heap-exhausted stops, "
       << S.DeadlocksDetected << " deadlocks detected\n";
  if (S.ProcsKilled || S.TasksRecovered || S.TasksOrphaned)
    OS << "recovery: " << S.ProcsKilled << " procs killed, "
       << S.TasksRecovered << " tasks recovered, " << S.TasksOrphaned
       << " orphaned, " << S.RecoveryCycles << " recovery cycles\n";
  if (S.CheckpointsTaken || S.TasksRestored)
    OS << "checkpoints: " << S.CheckpointsTaken << " taken ("
       << S.CheckpointCycles << " cycles), " << S.TasksRestored
       << " tasks restored, max task recovery " << S.MaxTaskRecoveryCycles
       << " cycles\n";
  if (S.ByzantineLies || S.CrossChecks || S.ByzantineDetected)
    OS << "byzantine: " << S.ByzantineLies << " lies told, " << S.CrossChecks
       << " cross-checks, " << S.ByzantineDetected << " detected\n";
  OS << strFormat("last run: %llu cycles = %.4f virtual seconds\n",
                  static_cast<unsigned long long>(S.ElapsedCycles),
                  S.elapsedSeconds());
}

} // namespace mult
