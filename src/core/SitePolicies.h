//===----------------------------------------------------------------------===//
///
/// \file
/// Per-future-site scheduling policies (ROADMAP "critical-path-guided
/// optimization").
///
/// A *future site* is one `future` form in the program, identified the
/// same way the tracer names it: "<code-name>+<pc>" (Tracer::futureSiteId).
/// A policy table maps sites to one of three behaviors and overrides the
/// engine's global threshold/lazy machinery for those sites only:
///
///   eager  — always create a real task (the site's children carry the
///            critical path; never serialize them behind the parent)
///   inline — always evaluate in the parent (off-path site; the future
///            is pure overhead)
///   lazy   — provisionally inline behind a seam so an idle processor
///            can still steal the continuation (worth keeping splittable,
///            but not worth an unconditional task)
///
/// Tables round-trip through a line-oriented text format so the
/// critical-path profiler can emit one (`:profile FILE`,
/// obs::deriveSitePolicies) and a later run can load it
/// (EngineConfig::SitePolicies / MULT_SITE_POLICIES):
///
///   ;; mul-t site policies v1
///   site fib+12 eager
///   site msort+33 lazy
///
/// Blank lines and lines starting with ';' are comments. Unknown sites in
/// a loaded table are harmless (they simply never match); sites absent
/// from the table fall back to the threshold/adaptive path.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_SITEPOLICIES_H
#define MULT_CORE_SITEPOLICIES_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mult {

enum class SitePolicy : uint8_t { Eager = 0, Inline = 1, Lazy = 2 };

const char *sitePolicyName(SitePolicy P);

class SitePolicyTable {
public:
  bool empty() const { return Policies.empty(); }
  size_t size() const { return Policies.size(); }
  void clear() { Policies.clear(); }

  void set(std::string Site, SitePolicy P) { Policies[std::move(Site)] = P; }

  /// Returns nullptr when the site has no policy.
  const SitePolicy *lookup(std::string_view Site) const;

  /// Renders the table in the text format above (stable order).
  std::string format() const;

  /// Parses the text format, replacing this table's contents. On failure
  /// returns false with a message in \p Err and leaves the table empty.
  bool parse(std::string_view Text, std::string &Err);

  /// File convenience wrappers around parse()/format().
  bool loadFile(const std::string &Path, std::string &Err);
  bool saveFile(const std::string &Path, std::string &Err) const;

  const std::map<std::string, SitePolicy, std::less<>> &entries() const {
    return Policies;
  }

private:
  std::map<std::string, SitePolicy, std::less<>> Policies;
};

} // namespace mult

#endif // MULT_CORE_SITEPOLICIES_H
