//===----------------------------------------------------------------------===//
///
/// \file
/// Task implementation.
///
//===----------------------------------------------------------------------===//

#include "core/Task.h"

#include "runtime/Object.h"

#include <cassert>

using namespace mult;

void Task::initForThunk(TaskId NewId, GroupId G, Value Closure, Value Result,
                        Value InheritedDynEnv, unsigned Proc) {
  assert(Closure.isObject() &&
         Closure.asObject()->tag() == TypeTag::Closure &&
         "task body must be a closure");
  Id = NewId;
  Group = G;
  State = TaskState::Ready;
  LastProc = Proc;
  Stack.clear();
  Stack.push_back(Closure);
  Frames.clear();
  Frames.push_back(Frame{});
  CurCode = Closure.asObject()->closureCode();
  Pc = 0;
  BlockedOn = Value::nil();
  DynEnv = InheritedDynEnv;
  ResultFuture = Result;
  HasWakeAction = false;
  WakePop = 0;
  WakeValue = Value::nil();
  StopCondition.clear();
  StopPop = 0;
  StopRestartable = false;
  UnstolenSeams = 0;
  BaseFrame = 0;
  SpawnClosure = Closure;
  SpawnDynEnv = InheritedDynEnv;
  SemaphoresHeld = 0;
  DidIo = false;
  SideEffectEpoch = 0;
  SinceCheckpoint = 0;
  BusyCyclesTotal = 0;
  RecoveryBudget = ~uint64_t(0);
  RecoveryCharged = 0;
  BlockClock = 0;
  BlockSite = ~uint32_t(0);
  // CreateClock and FutureSite are stamped by the spawn path right after
  // initForThunk; a recovery re-spawn deliberately keeps the originals
  // (the re-run is the same logical task).
}

void Task::clearForRecycle() {
  State = TaskState::Done;
  Stack.clear();
  Frames.clear();
  CurCode = nullptr;
  Pc = 0;
  BlockedOn = Value::nil();
  DynEnv = Value::nil();
  ResultFuture = Value::nil();
  HasWakeAction = false;
  WakeValue = Value::nil();
  StopCondition.clear();
  StopRestartable = false;
  UnstolenSeams = 0;
  BaseFrame = 0;
  SpawnClosure = Value::nil();
  SpawnDynEnv = Value::nil();
  SemaphoresHeld = 0;
  DidIo = false;
  Recovered = false;
  SideEffectEpoch = 0;
  SinceCheckpoint = 0;
  BusyCyclesTotal = 0;
  RecoveryBudget = ~uint64_t(0);
  RecoveryCharged = 0;
  CreateClock = 0;
  BlockClock = 0;
  BlockSite = ~uint32_t(0);
  FutureSite = ~uint32_t(0);
}
