//===----------------------------------------------------------------------===//
///
/// \file
/// Groups: Mul-T's unit of user-level task management (paper section 2.3).
///
/// All tasks created during evaluation of one expression typed by the user
/// belong to one group. When any task of the group signals an exception the
/// *whole group* stops — no other task of the group runs afterwards — and
/// the user regains control with a single stopped computation to inspect,
/// resume (in any order) or kill.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_GROUP_H
#define MULT_CORE_GROUP_H

#include "core/Task.h"

#include <map>
#include <string>
#include <vector>

namespace mult {

enum class GroupState : uint8_t {
  Running,
  Stopped, ///< Exception signalled; tasks suspended.
  Done,    ///< Root value produced.
  Killed,
};

/// Returns "running"/"stopped"/... for \p S.
const char *groupStateName(GroupState S);

/// One group.
struct Group {
  GroupId Id = InvalidGroup;
  GroupState State = GroupState::Running;
  /// The expression's text, for the UI's group listing.
  std::string Banner;
  /// Future resolved by the group's root task.
  Value RootFuture = Value::nil();
  /// All member tasks ever created (ids; tasks may be recycled after Done).
  std::vector<TaskId> Members;
  /// Runnable members that a processor popped while the group was stopped;
  /// re-enqueued on resume.
  std::vector<TaskId> Parked;
  /// When Stopped: the task that signalled, and the condition.
  TaskId CurrentTask = InvalidTask;
  std::string Condition;
  /// Newest checkpoint record per member task (keyed by task index;
  /// empty unless EngineConfig::CheckpointEvery is armed). Group-owned so
  /// the records die with the group and are scanned as GC roots while
  /// any member might still be restored from them.
  std::map<uint32_t, CheckpointRecord> Checkpoints;
  /// Statistics surfaced in the UI.
  uint64_t TasksCreated = 0;
  /// Created during engine bootstrap (prelude); hidden from the UI.
  bool Internal = false;
};

} // namespace mult

#endif // MULT_CORE_GROUP_H
