//===----------------------------------------------------------------------===//
///
/// \file
/// Site-policy table text format: parse, format, file I/O.
///
//===----------------------------------------------------------------------===//

#include "core/SitePolicies.h"

#include "support/StrUtil.h"

#include <cstdio>

using namespace mult;

const char *mult::sitePolicyName(SitePolicy P) {
  switch (P) {
  case SitePolicy::Eager:
    return "eager";
  case SitePolicy::Inline:
    return "inline";
  case SitePolicy::Lazy:
    return "lazy";
  }
  return "?";
}

const SitePolicy *SitePolicyTable::lookup(std::string_view Site) const {
  auto It = Policies.find(Site);
  return It == Policies.end() ? nullptr : &It->second;
}

std::string SitePolicyTable::format() const {
  std::string Out = ";; mul-t site policies v1\n";
  for (const auto &[Site, Pol] : Policies) {
    Out += "site ";
    Out += Site;
    Out += ' ';
    Out += sitePolicyName(Pol);
    Out += '\n';
  }
  return Out;
}

static std::string_view trimWs(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t' ||
                        S.front() == '\r'))
    S.remove_prefix(1);
  while (!S.empty() &&
         (S.back() == ' ' || S.back() == '\t' || S.back() == '\r'))
    S.remove_suffix(1);
  return S;
}

bool SitePolicyTable::parse(std::string_view Text, std::string &Err) {
  Policies.clear();
  size_t LineNo = 0;
  while (!Text.empty()) {
    ++LineNo;
    size_t Nl = Text.find('\n');
    std::string_view Line =
        Nl == std::string_view::npos ? Text : Text.substr(0, Nl);
    Text.remove_prefix(Nl == std::string_view::npos ? Text.size() : Nl + 1);
    Line = trimWs(Line);
    if (Line.empty() || Line.front() == ';')
      continue;
    // "site <name> <policy>"
    size_t Sp1 = Line.find(' ');
    if (Sp1 == std::string_view::npos || Line.substr(0, Sp1) != "site") {
      Err = strFormat("line %zu: expected \"site <name> <policy>\"", LineNo);
      Policies.clear();
      return false;
    }
    std::string_view Rest = trimWs(Line.substr(Sp1 + 1));
    size_t Sp2 = Rest.rfind(' ');
    if (Sp2 == std::string_view::npos) {
      Err = strFormat("line %zu: missing policy", LineNo);
      Policies.clear();
      return false;
    }
    std::string_view Site = trimWs(Rest.substr(0, Sp2));
    std::string_view Pol = trimWs(Rest.substr(Sp2 + 1));
    SitePolicy P;
    if (Pol == "eager")
      P = SitePolicy::Eager;
    else if (Pol == "inline")
      P = SitePolicy::Inline;
    else if (Pol == "lazy")
      P = SitePolicy::Lazy;
    else {
      Err = strFormat("line %zu: unknown policy \"%.*s\"", LineNo,
                      static_cast<int>(Pol.size()), Pol.data());
      Policies.clear();
      return false;
    }
    if (Site.empty()) {
      Err = strFormat("line %zu: empty site name", LineNo);
      Policies.clear();
      return false;
    }
    Policies[std::string(Site)] = P;
  }
  return true;
}

bool SitePolicyTable::loadFile(const std::string &Path, std::string &Err) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return parse(Text, Err);
}

bool SitePolicyTable::saveFile(const std::string &Path,
                               std::string &Err) const {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Err = "cannot open " + Path;
    return false;
  }
  std::string Text = format();
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  if (Written != Text.size()) {
    Err = "short write to " + Path;
    return false;
  }
  return true;
}
