//===----------------------------------------------------------------------===//
///
/// \file
/// FutureOps implementation.
///
//===----------------------------------------------------------------------===//

#include "core/FutureOps.h"

#include "core/Engine.h"
#include "core/LazyFutures.h"
#include "vm/CostModel.h"

#include <cassert>

using namespace mult;

bool futureops::chase(Value V, Value &Out, Object *&Unresolved,
                      uint64_t &Cycles) {
  while (V.isFuture()) {
    Object *F = V.pointee();
    if (!F->futureResolved()) {
      Unresolved = F;
      return false;
    }
    V = F->futureValue();
    Cycles += cost::TouchChase;
  }
  Out = V;
  return true;
}

/// Enters the thunk on top of T's stack as an ordinary call (the inline
/// and lazy paths). Returns the index of the new frame.
static uint32_t enterThunk(Task &T) {
  assert(!T.Stack.empty() && "thunk missing");
  Frame F;
  F.CallerCode = T.CurCode;
  F.RetPc = T.Pc + 1;
  F.Base = static_cast<uint32_t>(T.Stack.size() - 1);
  T.Frames.push_back(F);
  Value Thunk = T.Stack.back();
  assert(Thunk.isObject() && Thunk.asObject()->tag() == TypeTag::Closure &&
         "future thunk must be a closure");
  T.CurCode = Thunk.asObject()->closureCode();
  T.Pc = 0;
  return static_cast<uint32_t>(T.Frames.size() - 1);
}

bool futureops::onFutureOp(Engine &E, Processor &P, Task &T) {
  const EngineConfig &Cfg = E.config();
  Tracer &Tr = E.tracer();
  // The future site: one id per textual `future` expression, keyed on the
  // code object + pc of the FutureOp. Interned before enterThunk moves
  // T.CurCode/T.Pc into the thunk. Unconditional (host cost only): the
  // always-on touch-wait telemetry keys its per-site histograms on the
  // same ids the tracer and profiler use.
  uint32_t Site = Tr.futureSiteId(
      T.CurCode, T.Pc, T.CurCode ? T.CurCode->Name : std::string_view());

  // Profile-guided site policy: a loaded table overrides both the global
  // lazy mode and the threshold machinery for the sites it names. The
  // lookup is memoized per (code, pc) and skipped entirely while no table
  // is loaded, so the default path is untouched.
  // (Stats and PolicyDecision events are recorded where each decision
  // commits, not here: a failed allocation re-runs this instruction.)
  const SitePolicy *Pol = nullptr;
  if (!E.sitePolicies().empty())
    Pol = E.sitePolicyFor(T.CurCode, T.Pc,
                          T.CurCode ? T.CurCode->Name : std::string_view());
  auto RecordPolicy = [&] {
    if (Tr.enabled())
      Tr.record(TraceEventKind::PolicyDecision, P.Id, P.Clock,
                static_cast<uint64_t>(*Pol), Site);
  };

  // Lazy futures (global mode, or a lazy site policy): provisionally
  // inline, leave a seam.
  if (Pol ? *Pol == SitePolicy::Lazy : Cfg.LazyFutures) {
    if (Pol) {
      ++E.stats().PolicyLazy;
      RecordPolicy();
    }
    uint32_t FrameIdx = enterThunk(T);
    lazyfutures::noteSeam(E, T, FrameIdx);
    P.charge(cost::LazySeamPush);
    E.stats().Steps.MakeThunkCycles += cost::LazySeamPush;
    if (Tr.enabled())
      Tr.record(TraceEventKind::InlineDecision, P.Id, P.Clock, 2, Site,
                T.Frames[FrameIdx].SeamSerial);
    return true;
  }

  // Injected queue-capacity clamp: the paper's queue-overflow degradation
  // (evaluate inline rather than overflow the task queue), forced at an
  // artificially low capacity. Capacity is physical, so it overrides even
  // an eager site policy.
  if (E.faults().armed() && E.faults().queueCap() &&
      P.Queues.depth() >= *E.faults().queueCap()) {
    E.noteFault(P, FaultKind::QueueClamp, P.Queues.depth());
    enterThunk(T);
    P.charge(cost::FutureInline);
    ++E.stats().TasksInlined;
    if (Tr.enabled())
      Tr.record(TraceEventKind::InlineDecision, P.Id, P.Clock, 0, Site);
    return true;
  }

  // Inlining threshold (paper section 3): with >= T tasks already queued
  // on this processor there is no point creating another. T is the
  // processor's adaptive threshold when AdaptiveInline is on, the static
  // configuration otherwise; an inline site policy decides outright.
  bool Inline;
  if (Pol) {
    Inline = *Pol == SitePolicy::Inline;
  } else {
    std::optional<unsigned> Th = E.inlineThresholdFor(P);
    Inline = Th && P.Queues.depth() >= *Th;
  }
  if (Inline) {
    if (Pol) {
      ++E.stats().PolicyInline;
      RecordPolicy();
    }
    enterThunk(T);
    P.charge(cost::FutureInline);
    ++E.stats().TasksInlined;
    if (Tr.enabled())
      Tr.record(TraceEventKind::InlineDecision, P.Id, P.Clock, 0, Site);
    return true;
  }

  // Real future + child task (Table 1 step 2).
  uint64_t Cycles = 0;
  Object *Fut = E.tryAlloc(P, TypeTag::Future, Object::FutureSizeWords, Cycles);
  if (!Fut) {
    P.charge(Cycles);
    return false; // NeedsGc; FutureOp re-runs.
  }
  Fut->setSlot(Object::FutState, Value::fixnum(0));
  Fut->setSlot(Object::FutValue, Value::unspecified());
  Fut->setSlot(Object::FutWaiters, Value::nil());
  Fut->setSlot(Object::FutGroupId, Value::fixnum(T.Group));

  Value Thunk = T.Stack.back();
  T.Stack.pop_back();
  TaskId Child =
      E.newTask(T.Group, Thunk, Value::future(Fut), T.DynEnv, P.Id, T.Id);
  E.task(Child).FutureSite = Site;
  Fut->setSlot(Object::FutTaskId,
               Value::fixnum(static_cast<int64_t>(taskIndex(Child))));

  Cycles += cost::FutureCreateBase + cost::TaskStackSetup;
  Cycles += P.Queues.pushNew(Child, P.Clock + Cycles);
  P.charge(Cycles);
  E.stats().Steps.CreateEnqueueCycles += Cycles;
  ++E.stats().FuturesCreated;
  if (Pol) {
    ++E.stats().PolicyEager;
    RecordPolicy();
  }
  if (Tr.enabled()) {
    Tr.record(TraceEventKind::InlineDecision, P.Id, P.Clock, 1, Site);
    Tr.record(TraceEventKind::FutureCreate, P.Id, P.Clock, Child, Site);
  }

  T.Stack.push_back(Value::future(Fut));
  ++T.Pc;
  return true;
}

bool futureops::blockOnFuture(Engine &E, Processor &P, Task &T, Object *Fut) {
  assert(!Fut->futureResolved() && "blocking on a resolved future");
  uint64_t Cycles = 0;
  Object *WaiterCell = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
  if (!WaiterCell) {
    P.charge(Cycles);
    return false;
  }
  WaiterCell->setCar(Value::fixnum(static_cast<int64_t>(T.Id)));
  WaiterCell->setCdr(Fut->futureWaiters());
  Fut->setSlot(Object::FutWaiters, Value::object(WaiterCell));

  T.State = TaskState::BlockedFuture;
  T.BlockedOn = Value::future(Fut);

  // Telemetry stamps (zero virtual cost): when the resolve wakes this
  // task, the wait is resolver clock minus BlockClock, keyed by the
  // spawning site of the future being touched. The FutTaskId slot still
  // holds the spawning task's registry index (negative resolve-serial
  // stamps only appear on resolved futures); validate the slot really
  // belongs to this future before trusting its site.
  T.BlockClock = P.Clock;
  T.BlockSite = ~uint32_t(0);
  if (Value Ti = Fut->slot(Object::FutTaskId); Ti.isFixnum() &&
                                               Ti.asFixnum() >= 0) {
    Task *Creator = E.taskByIndex(static_cast<uint32_t>(Ti.asFixnum()));
    if (Creator && Creator->ResultFuture.isFuture() &&
        Creator->ResultFuture.pointee() == Fut)
      T.BlockSite = Creator->FutureSite;
  }

  Cycles += cost::BlockBase;
  P.charge(Cycles);
  E.stats().Steps.BlockCycles += Cycles + cost::Touch;
  ++E.stats().TouchesBlocked;
  if (E.tracer().enabled())
    E.tracer().record(TraceEventKind::TaskBlock, P.Id, P.Clock, T.Id, 0);
  return true;
}

void futureops::resolveFuture(Engine &E, Processor &P, Object *Fut,
                              Value Result) {
  assert(!Fut->futureResolved() && "double resolve");
  Value Waiters = Fut->futureWaiters();
  Fut->resolveFutureSlots(Result);

  // Stamp the future with a fresh resolve serial so later touch-hits can
  // name this resolve in the trace. The FutTaskId slot is free for this:
  // nothing reads it after creation, and the negative sign keeps stamps
  // distinguishable from the task indices written there at creation.
  uint64_t Serial = 0;
  if (E.tracer().enabled()) {
    Serial = E.tracer().newResolveSerial();
    Fut->setSlot(Object::FutTaskId,
                 Value::fixnum(-static_cast<int64_t>(Serial)));
  }

  uint64_t Cycles = cost::ResolveBase;
  unsigned Woken = 0;
  for (Value W = Waiters; !W.isNil(); W = W.asObject()->cdr()) {
    auto Id = static_cast<TaskId>(W.asObject()->car().asFixnum());
    Task *Waiter = E.liveTask(Id);
    if (!Waiter || Waiter->State != TaskState::BlockedFuture)
      continue;
    if (!Waiter->BlockedOn.isPointer() || Waiter->BlockedOn.pointee() != Fut)
      continue;
    Waiter->State = TaskState::Ready;
    Waiter->BlockedOn = Value::nil();
    // Touch-wait latency: block to resolve, saturating because per-
    // processor clocks are not totally ordered (the resolver's clock can
    // trail the blocker's).
    E.recordTouchWait(P,
                      Waiter->BlockSite,
                      P.Clock > Waiter->BlockClock
                          ? P.Clock - Waiter->BlockClock
                          : 0);
    // Paper: woken tasks go to the suspended queue of the processor they
    // were running on when they blocked — unless that processor died, in
    // which case the nearest survivor adopts them.
    Processor &Home = E.machine().homeFor(Waiter->LastProc);
    Cycles += Home.Queues.pushSuspended(Id, P.Clock + Cycles);
    Cycles += cost::ResolveWaiter;
    ++Woken;
    if (E.tracer().enabled())
      E.tracer().record(TraceEventKind::TaskResume, P.Id, P.Clock + Cycles,
                        Waiter->Id, Home.Id, P.Current);
  }
  P.charge(Cycles);
  if (E.tracer().enabled())
    E.tracer().record(TraceEventKind::FutureResolve, P.Id, P.Clock, Woken, 0,
                      Serial);

  if (E.rootFutureObject() == Fut) {
    E.noteRootResolved(P.Clock);
  } else {
    E.stats().Steps.ResolveCycles += Cycles;
    ++E.stats().FuturesResolved;
  }
}

void futureops::taskFinished(Engine &E, Processor &P, Task &T, Value Result) {
  P.charge(cost::TaskFinish);
  // Task lifetime (create to finish), always on -- the histogram no
  // longer needs the tracer. Saturating: the finishing processor's clock
  // can trail the creator's.
  E.telemetry().record(E.telemetryIds().TaskLifetime, P.Id,
                       P.Clock > T.CreateClock ? P.Clock - T.CreateClock : 0);
  if (T.ResultFuture.isFuture() &&
      !T.ResultFuture.pointee()->futureResolved())
    resolveFuture(E, P, T.ResultFuture.pointee(), Result);
  ++E.stats().TasksCompleted;
  if (E.tracer().enabled())
    E.tracer().record(TraceEventKind::TaskFinish, P.Id, P.Clock, T.Id);
  E.finishTask(T);
}
