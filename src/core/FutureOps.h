//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime side of `future` and `touch` (paper sections 1.1, 3, 4).
///
/// onFutureOp implements `*future`: depending on configuration it creates
/// a real future + child task (charging the Table-1 step-2 cost), inlines
/// the call when the processor's queue depth reaches the threshold T, or
/// provisionally inlines with a seam in lazy-future mode.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_FUTUREOPS_H
#define MULT_CORE_FUTUREOPS_H

#include "core/Task.h"
#include "runtime/Object.h"

namespace mult {

class Engine;
struct Processor;

namespace futureops {

/// Executes the FutureOp instruction; the thunk closure is on top of
/// \p T's stack. Advances T.Pc itself. Returns false when an allocation
/// failed (caller returns NeedsGc; the instruction will re-run).
bool onFutureOp(Engine &E, Processor &P, Task &T);

/// Resolves \p Fut with \p Result and moves every waiting task to the
/// suspended queue of the processor it last ran on (Table 1 step 5).
void resolveFuture(Engine &E, Processor &P, Object *Fut, Value Result);

/// Blocks \p T on unresolved \p Fut (Table 1 step 3): enqueue on the
/// future's waiter list, mark BlockedFuture. Returns false on allocation
/// failure (NeedsGc; retry).
bool blockOnFuture(Engine &E, Processor &P, Task &T, Object *Fut);

/// A task's outermost return: resolve its result future, mark it done.
void taskFinished(Engine &E, Processor &P, Task &T, Value Result);

/// Chases future indirections. If the chain ends in an unresolved future,
/// returns false with \p Unresolved set; otherwise true with \p Out set.
/// Charges chase cycles to \p Cycles.
bool chase(Value V, Value &Out, Object *&Unresolved, uint64_t &Cycles);

} // namespace futureops
} // namespace mult

#endif // MULT_CORE_FUTUREOPS_H
