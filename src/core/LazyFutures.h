//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy futures: revocable inlining (paper section 3).
///
/// In lazy mode every `(future X)` is provisionally inlined: the child
/// executes on the parent's stack, with a *seam* frame marking where the
/// parent continuation begins. An idle processor may *steal* the oldest
/// seam in the machine: it packages the stack below the seam as a new task
/// (the parent continuation), creates a real future for the child's value,
/// and resumes the parent elsewhere — "unwelding" a blocked (or even
/// running) child from its parent, which also defuses the
/// inlining-deadlock example of section 3. When no one steals, the child
/// returns through the seam at essentially inline cost and no future is
/// ever created.
///
/// The paper proposes the mechanism but left it unimplemented in Mul-T
/// ("we hope to report on it after further work"); this module is the
/// reproduction's implementation of that proposal, following the
/// lazy-task-creation design Mohr later published.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_LAZYFUTURES_H
#define MULT_CORE_LAZYFUTURES_H

#include "core/Task.h"

namespace mult {

class Engine;
struct Processor;

namespace lazyfutures {

/// Registers the just-pushed frame \p FrameIdx of \p T as a seam.
void noteSeam(Engine &E, Task &T, uint32_t FrameIdx);

/// Result of a steal attempt.
struct StealResult {
  enum class Kind : uint8_t { Stolen, Nothing, NeedsGc } K;
  TaskId NewTask = InvalidTask;
};

/// Attempts to steal the oldest seam in the machine on behalf of idle
/// processor \p P. On success the returned task is the parent
/// continuation, ready to run.
StealResult trySteal(Engine &E, Processor &P);

/// Handles a Return that pops seam frame \p F with \p Result.
/// Returns true when the task ends here (the seam was stolen and the
/// future has been resolved); false to continue the normal return path.
bool onSeamReturn(Engine &E, Processor &P, Task &T, Frame &F, Value Result);

} // namespace lazyfutures
} // namespace mult

#endif // MULT_CORE_LAZYFUTURES_H
