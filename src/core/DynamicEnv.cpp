//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-binding implementation.
///
//===----------------------------------------------------------------------===//

#include "core/DynamicEnv.h"

#include "core/Engine.h"

using namespace mult;

/// The plist key under which a fluid's global default box lives.
static Value fluidDefaultKey(Engine &E) {
  return Value::object(E.symbols().intern("%fluid-default"));
}

/// Finds the default box on \p Sym's plist: plist entries are
/// ((key . value) ...); fluids use a nested entry (%fluid-default . box)
/// keyed per fluid symbol, so the default box lives on the fluid symbol
/// itself.
static Object *findDefaultBox(Engine &E, Object *Sym) {
  Value Key = fluidDefaultKey(E);
  for (Value P = Sym->plist(); !P.isNil(); P = P.asObject()->cdr()) {
    Object *Entry = P.asObject()->car().asObject();
    if (Entry->car().identical(Key))
      return Entry->cdr().asObject();
  }
  return nullptr;
}

bool dynenv::push(Engine &E, Processor &P, Task &T, Value Sym, Value Val) {
  uint64_t Cycles = 0;
  Object *Box = E.tryAlloc(P, TypeTag::Box, 1, Cycles);
  if (!Box) {
    P.charge(Cycles);
    return false;
  }
  Box->setSlot(0, Val);
  Object *Entry = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
  if (!Entry) {
    P.charge(Cycles);
    return false;
  }
  Entry->setCar(Sym);
  Entry->setCdr(Value::object(Box));
  Object *Link = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
  if (!Link) {
    P.charge(Cycles);
    return false;
  }
  Link->setCar(Value::object(Entry));
  Link->setCdr(T.DynEnv);
  T.DynEnv = Value::object(Link);
  P.charge(Cycles + 4);
  return true;
}

void dynenv::pop(Task &T) {
  assert(!T.DynEnv.isNil() && "%dyn-pop on empty dynamic environment");
  T.DynEnv = T.DynEnv.asObject()->cdr();
}

/// Walks \p T's chain for \p Sym; returns the binding box or null.
static Object *findTaskBox(Task &T, Value Sym) {
  for (Value P = T.DynEnv; !P.isNil(); P = P.asObject()->cdr()) {
    Object *Entry = P.asObject()->car().asObject();
    if (Entry->car().identical(Sym))
      return Entry->cdr().asObject();
  }
  return nullptr;
}

bool dynenv::ref(Engine &E, Processor &P, Task &T, Value Sym, Value &Out) {
  if (Object *Box = findTaskBox(T, Sym)) {
    E.recordAccess(P, T, Box, 0, /*IsWrite=*/false);
    Out = Box->boxValue();
    return true;
  }
  if (Object *Box = findDefaultBox(E, Sym.asObject())) {
    E.recordAccess(P, T, Box, 0, /*IsWrite=*/false);
    Out = Box->boxValue();
    return true;
  }
  return false;
}

bool dynenv::set(Engine &E, Processor &P, Task &T, Value Sym, Value V) {
  if (Object *Box = findTaskBox(T, Sym)) {
    E.recordAccess(P, T, Box, 0, /*IsWrite=*/true);
    Box->setBoxValue(V);
    return true;
  }
  if (Object *Box = findDefaultBox(E, Sym.asObject())) {
    E.recordAccess(P, T, Box, 0, /*IsWrite=*/true);
    Box->setBoxValue(V);
    return true;
  }
  return false;
}

bool dynenv::define(Engine &E, Processor &P, Value Sym, Value Init) {
  Object *SymO = Sym.asObject();
  if (Object *Box = findDefaultBox(E, SymO)) {
    Box->setBoxValue(Init);
    return true;
  }
  uint64_t Cycles = 0;
  Object *Box = E.tryAlloc(P, TypeTag::Box, 1, Cycles);
  if (!Box) {
    P.charge(Cycles);
    return false;
  }
  Box->setSlot(0, Init);
  Object *Entry = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
  if (!Entry) {
    P.charge(Cycles);
    return false;
  }
  Entry->setCar(fluidDefaultKey(E));
  Entry->setCdr(Value::object(Box));
  Object *Link = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
  if (!Link) {
    P.charge(Cycles);
    return false;
  }
  Link->setCar(Value::object(Entry));
  Link->setCdr(SymO->plist());
  SymO->setPlist(Value::object(Link));
  P.charge(Cycles + 4);
  return true;
}
