//===----------------------------------------------------------------------===//
///
/// \file
/// Tasks: the lightweight threads of Mul-T.
///
/// A task owns a growable value stack (checked for overflow at every
/// procedure entry, as the paper requires under Unix), a C++-side frame
/// stack, VM registers, the deep-binding chain of its process-specific
/// variables, and the future it will resolve when it finishes. The paper's
/// future components (section 2.2) map as: "a stack" -> Task::Stack,
/// "a slot for the eventual value" -> the Future heap object,
/// "process specific variables" -> Task::DynEnv, "a queue of waiters" ->
/// the Future's waiter list.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_TASK_H
#define MULT_CORE_TASK_H

#include "compiler/Bytecode.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mult {

/// Task ids carry a generation in the high 32 bits so registry slots can be
/// recycled without stale references (e.g. in a group's member list)
/// resolving to the wrong task.
using TaskId = uint64_t;
using GroupId = uint32_t;
inline constexpr TaskId InvalidTask = ~TaskId(0);
inline constexpr GroupId InvalidGroup = ~GroupId(0);

inline uint32_t taskIndex(TaskId Id) { return static_cast<uint32_t>(Id); }
inline uint32_t taskGeneration(TaskId Id) {
  return static_cast<uint32_t>(Id >> 32);
}
inline TaskId makeTaskId(uint32_t Index, uint32_t Gen) {
  return (static_cast<uint64_t>(Gen) << 32) | Index;
}

enum class TaskState : uint8_t {
  Ready,            ///< On some queue, runnable.
  Running,          ///< Current on some processor.
  BlockedFuture,    ///< Waiting for a future to resolve.
  BlockedSemaphore, ///< Waiting in a semaphore's queue.
  Stopped,          ///< Suspended by a group stop (exception).
  Done,             ///< Finished; recyclable.
};

/// One call frame. Stores the *caller's* resume state; the running
/// function's own base is Frames.back().Base.
struct Frame {
  const Code *CallerCode = nullptr;
  uint32_t RetPc = 0;
  uint32_t Base = 0; ///< Stack index of the callee closure (args follow).

  // Lazy-future seam bookkeeping (paper section 3, "lazy futures").
  bool IsSeam = false;
  bool SeamStolen = false;
  uint64_t SeamSerial = 0;         ///< Matches the engine's seam registry.
  Value SeamFuture = Value::nil(); ///< Created when the seam is stolen.
};

/// An entry in the engine's oldest-first seam registry. Entries become
/// stale when the seam returns normally or its task dies; the serial
/// number detects that lazily.
struct SeamRef {
  TaskId Task = InvalidTask;
  uint32_t FrameIdx = 0;
  uint64_t Serial = 0;
};

/// A Mul-T task.
class Task {
public:
  TaskId Id = InvalidTask;
  GroupId Group = InvalidGroup;
  TaskState State = TaskState::Done;
  unsigned LastProc = 0; ///< Processor it last ran on (locality).

  std::vector<Value> Stack;
  std::vector<Frame> Frames;
  const Code *CurCode = nullptr;
  uint32_t Pc = 0;

  Value BlockedOn = Value::nil();    ///< Future or semaphore object.
  Value DynEnv = Value::nil();       ///< Deep-binding chain.
  Value ResultFuture = Value::nil(); ///< Resolved when the task finishes.

  /// Deferred completion of a blocking/erring instruction: on next
  /// schedule, pop WakePop slots, push WakeValue, advance Pc.
  bool HasWakeAction = false;
  uint32_t WakePop = 0;
  Value WakeValue = Value::nil();

  /// When State == Stopped: the condition and how to resume (see
  /// Engine::resumeGroup).
  std::string StopCondition;
  uint32_t StopPop = 0;
  /// Stopped *before* the faulting instruction executed: resume re-runs
  /// the instruction instead of performing a wake action.
  bool StopRestartable = false;

  /// Number of unstolen lazy-future seams on this task's frame stack.
  uint32_t UnstolenSeams = 0;

  /// Index of the lowest frame that still belongs to this task. Advances
  /// when a seam below is stolen: the frames beneath were packaged into
  /// the thief's parent-continuation task and must never be copied again.
  uint32_t BaseFrame = 0;

  /// Spawn lineage: the closure this task was spawned with (its code and
  /// captured arguments), kept so a task lost to a fail-stopped processor
  /// can be re-executed from scratch on a survivor. Nil for tasks that
  /// were not born from a closure (seam-split parent continuations own a
  /// mid-flight stack segment that cannot be reconstructed).
  Value SpawnClosure = Value::nil();

  /// The deep-binding chain inherited at spawn time; a lineage re-spawn
  /// restarts with this, not the mid-flight DynEnv.
  Value SpawnDynEnv = Value::nil();

  /// Observed side effects that make re-execution unsafe (see DESIGN.md,
  /// "Processor fail-stop and recovery").
  uint32_t SemaphoresHeld = 0; ///< semaphore-p acquisitions not yet V'd
  bool DidIo = false;          ///< wrote to the output stream

  /// True while this task is re-executing lost work after a proc-kill
  /// (lineage re-spawn or checkpoint restore); its busy cycles are
  /// charged to EngineStats::RecoveryCycles, up to RecoveryBudget.
  bool Recovered = false;

  /// Side-effect epoch: bumped at every externally observable effect
  /// (semaphore P-acquire, V-release, V-handoff receipt, console I/O,
  /// a seam steal from this task's stack). A checkpoint record is
  /// restorable only while the task's epoch still equals the epoch it
  /// recorded at capture — restoring across an effect would replay it.
  uint32_t SideEffectEpoch = 0;

  /// Busy cycles executed since the newest checkpoint capture (or since
  /// spawn). Drives the CheckpointEvery capture policy and sizes the
  /// re-execution budget of a restore.
  uint64_t SinceCheckpoint = 0;

  /// Lifetime busy cycles of this activation; what a byzantine
  /// cross-check charges its checker for re-executing the task.
  uint64_t BusyCyclesTotal = 0;

  /// Re-execution budget of a recovered task: busy cycles still
  /// chargeable to EngineStats::RecoveryCycles before the task is
  /// considered caught up. ~0 for lineage re-spawns (the whole re-run is
  /// re-executed work); finite for checkpoint restores (only the
  /// capture-to-kill delta was lost).
  uint64_t RecoveryBudget = ~uint64_t(0);

  /// Recovery cycles charged for this task's current recovery episode.
  uint64_t RecoveryCharged = 0;

  /// \name Always-on telemetry stamps (src/obs/Telemetry.h)
  ///
  /// Written on the hot paths at zero virtual cost; read when the
  /// matching latency sample completes (task finish, future resolve,
  /// semaphore V). Per-processor clocks are not totally ordered, so
  /// consumers subtract with saturation.
  /// @{
  uint64_t CreateClock = 0; ///< virtual clock at newTask (lifetime base)
  uint64_t BlockClock = 0;  ///< virtual clock at the last block
  /// Future site (Tracer::futureSiteId) of the future this task last
  /// blocked on; ~0 when unknown (root futures, recycled creators).
  uint32_t BlockSite = ~uint32_t(0);
  /// Future site that spawned this task; ~0 for roots and server tasks.
  uint32_t FutureSite = ~uint32_t(0);
  /// @}

  /// Prepares this (possibly recycled) task to run \p Closure as a fresh
  /// nullary activation.
  void initForThunk(TaskId NewId, GroupId G, Value Closure, Value Result,
                    Value InheritedDynEnv, unsigned Proc);

  /// Clears heap references so a Done task pins no garbage.
  void clearForRecycle();

  /// The closure currently executing.
  Value currentClosure() const { return Stack[Frames.back().Base]; }

  bool runnable() const { return State == TaskState::Ready; }
};

/// A resumable snapshot of a task, captured at a quantum boundary when
/// the checkpoint policy (EngineConfig::CheckpointEvery) is armed and the
/// task owns its whole stack (no live seams, BaseFrame == 0). Owned by
/// the task's group (newest capture only) and scanned as a GC root so
/// the snapshot's values survive collections. See DESIGN.md,
/// "Checkpointed recovery".
struct CheckpointRecord {
  std::vector<Value> Stack;
  std::vector<Frame> Frames;
  const Code *CurCode = nullptr;
  uint32_t Pc = 0;
  Value DynEnv = Value::nil();
  uint32_t SemaphoresHeld = 0; ///< holdings baked into the snapshot
  bool DidIo = false;
  uint32_t Epoch = 0;        ///< Task::SideEffectEpoch at capture
  uint64_t CaptureClock = 0; ///< capturing processor's virtual clock
};

} // namespace mult

#endif // MULT_CORE_TASK_H
