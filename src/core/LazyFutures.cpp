//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy-futures implementation: seam registration, oldest-first stealing
/// with stack splitting, and seam returns.
///
//===----------------------------------------------------------------------===//

#include "core/LazyFutures.h"

#include "core/Engine.h"
#include "core/FutureOps.h"
#include "vm/CostModel.h"

#include <cassert>

using namespace mult;

void lazyfutures::noteSeam(Engine &E, Task &T, uint32_t FrameIdx) {
  Frame &F = T.Frames[FrameIdx];
  F.IsSeam = true;
  F.SeamStolen = false;
  F.SeamSerial = E.nextSeamSerial();
  F.SeamFuture = Value::nil();
  ++T.UnstolenSeams;
  E.seams().push_back(SeamRef{T.Id, FrameIdx, F.SeamSerial});
  ++E.stats().SeamsCreated;
}

lazyfutures::StealResult lazyfutures::trySteal(Engine &E, Processor &P) {
  std::deque<SeamRef> &Seams = E.seams();
  while (!Seams.empty()) {
    SeamRef Ref = Seams.front();
    Task *Victim = E.liveTask(Ref.Task);
    if (!Victim || Ref.FrameIdx >= Victim->Frames.size()) {
      Seams.pop_front();
      continue;
    }
    Frame &F = Victim->Frames[Ref.FrameIdx];
    if (!F.IsSeam || F.SeamStolen || F.SeamSerial != Ref.Serial) {
      Seams.pop_front();
      continue;
    }
    if (E.group(Victim->Group).State != GroupState::Running) {
      // Don't steal out of stopped groups; try younger seams.
      // (Leave the entry: the group may resume.)
      return StealResult{StealResult::Kind::Nothing, InvalidTask};
    }

    // Injected split failure: the thief found a splittable seam but backs
    // off (modelling a lost race on the victim's stack), leaving the seam
    // with its owner. Graceful degradation: the owner later returns through
    // the seam at inline cost, so the program still completes.
    if (E.faults().armed() && E.faults().shouldFailSeamSplit()) {
      P.charge(cost::QueueLockHold);
      E.noteFault(P, FaultKind::SeamSplitFail, Ref.Serial);
      return StealResult{StealResult::Kind::Nothing, InvalidTask};
    }

    // Allocate the future the stolen parent will see as the child's value.
    uint64_t Cycles = 0;
    Object *Fut =
        E.tryAlloc(P, TypeTag::Future, Object::FutureSizeWords, Cycles);
    if (!Fut) {
      P.charge(Cycles);
      return StealResult{StealResult::Kind::NeedsGc, InvalidTask};
    }
    Fut->setSlot(Object::FutState, Value::fixnum(0));
    Fut->setSlot(Object::FutValue, Value::unspecified());
    Fut->setSlot(Object::FutWaiters, Value::nil());
    Fut->setSlot(Object::FutTaskId,
                 Value::fixnum(static_cast<int64_t>(taskIndex(Victim->Id))));
    Fut->setSlot(Object::FutGroupId, Value::fixnum(Victim->Group));

    Seams.pop_front();

    // Split: the parent continuation is the stack below the seam, running
    // from the seam's return address with the future as the call's value.
    TaskId ParentId = E.newEmptyTask(Victim->Group, P.Id);
    Task &Parent = E.task(ParentId);
    Victim = &E.task(Ref.Task); // newEmptyTask may reallocate the registry

    Frame &SeamFrame = Victim->Frames[Ref.FrameIdx];
    Parent.Stack.assign(Victim->Stack.begin(),
                        Victim->Stack.begin() + SeamFrame.Base);
    Parent.Frames.assign(Victim->Frames.begin() + Victim->BaseFrame,
                         Victim->Frames.begin() + Ref.FrameIdx);
    Parent.CurCode = SeamFrame.CallerCode;
    Parent.Pc = SeamFrame.RetPc;
    Parent.Stack.push_back(Value::future(Fut));
    Parent.DynEnv = Victim->DynEnv;
    Parent.State = TaskState::Ready;
    Parent.LastProc = P.Id;

    if (Victim->BaseFrame == 0) {
      // First split of this task: the outermost return now belongs to the
      // parent continuation.
      Parent.ResultFuture = Victim->ResultFuture;
      Victim->ResultFuture = Value::nil();
    } else {
      // The parent's bottom frame is an earlier stolen seam; its return
      // resolves that seam's future instead.
      Parent.ResultFuture = Value::nil();
      // Frame indices inside Parent must be rebased: its frames vector
      // starts at the victim's old BaseFrame.
      // (Frame.Base values are absolute stack indices and stay valid.)
    }
    Parent.BaseFrame = 0;

    SeamFrame.SeamStolen = true;
    SeamFrame.SeamFuture = Value::future(Fut);
    assert(Victim->UnstolenSeams > 0);
    --Victim->UnstolenSeams;
    Victim->BaseFrame = Ref.FrameIdx;
    // The steal carved frames out of the victim's stack: a checkpoint
    // captured before the split no longer matches the task (restoring it
    // would resurrect frames the parent continuation now owns).
    ++Victim->SideEffectEpoch;

    Cycles += cost::SeamStealBase +
              (Parent.Stack.size() + Parent.Frames.size()) / 4;
    P.charge(Cycles);
    ++E.stats().SeamsStolen;
    ++E.stats().FuturesCreated;
    ++E.stats().TasksCreated;
    E.group(Victim->Group).TasksCreated++;
    if (E.tracer().enabled())
      E.tracer().record(TraceEventKind::SeamSteal, P.Id, P.Clock, ParentId,
                        static_cast<uint32_t>(taskIndex(Victim->Id)),
                        Ref.Serial);
    return StealResult{StealResult::Kind::Stolen, ParentId};
  }
  return StealResult{StealResult::Kind::Nothing, InvalidTask};
}

bool lazyfutures::onSeamReturn(Engine &E, Processor &P, Task &T, Frame &F,
                               Value Result) {
  if (!F.SeamStolen) {
    // Nobody wanted the parallelism: squash the seam, return normally at
    // inline cost. The registry entry goes stale and is skipped lazily.
    F.IsSeam = false;
    assert(T.UnstolenSeams > 0);
    --T.UnstolenSeams;
    return false;
  }
  // The parent continuation ran elsewhere; hand it the child's value.
  assert(F.SeamFuture.isFuture() && "stolen seam lost its future");
  futureops::resolveFuture(E, P, F.SeamFuture.pointee(), Result);
  futureops::taskFinished(E, P, T, Result);
  return true;
}
