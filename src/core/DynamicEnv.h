//===----------------------------------------------------------------------===//
///
/// \file
/// Process-specific variables via deep binding (paper section 2.1.1).
///
/// T3 used shallow dynamic binding; Mul-T converted it to deep binding so
/// each task can carry its own bindings. A task's dynamic environment is a
/// list of (symbol . box) frames; a child task created by `future` inherits
/// the parent's chain at creation time (the "representation of the process
/// specific variables" stored with the future). `(bind ((v e)) ...)` pushes
/// a frame for the dynamic extent of its body; `define-fluid` installs a
/// default on the symbol's plist.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_CORE_DYNAMICENV_H
#define MULT_CORE_DYNAMICENV_H

#include "core/Task.h"
#include "runtime/Object.h"

namespace mult {

class Engine;
struct Processor;

namespace dynenv {

/// Pushes a binding of \p Sym to \p Val onto \p T's chain. Returns false
/// on allocation failure (NeedsGc; retry).
bool push(Engine &E, Processor &P, Task &T, Value Sym, Value Val);

/// Pops the innermost frame.
void pop(Task &T);

/// Reads \p Sym: innermost task frame, else the global fluid default.
/// Returns false if the fluid is entirely unbound. The binding box read
/// is reported to the race detector (a task never shares its own frame
/// boxes, but the global default box is shared by every task that has
/// not shadowed the fluid).
bool ref(Engine &E, Processor &P, Task &T, Value Sym, Value &Out);

/// Assigns the innermost binding (or the global default). Returns false
/// if unbound.
bool set(Engine &E, Processor &P, Task &T, Value Sym, Value V);

/// Installs a global default for \p Sym (define-fluid). Returns false on
/// allocation failure.
bool define(Engine &E, Processor &P, Value Sym, Value Init);

} // namespace dynenv
} // namespace mult

#endif // MULT_CORE_DYNAMICENV_H
