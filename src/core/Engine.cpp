//===----------------------------------------------------------------------===//
///
/// \file
/// Engine implementation.
///
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "analysis/RaceDetect.h"
#include "lib/Prelude.h"
#include "reader/Reader.h"
#include "runtime/Printer.h"
#include "support/StrUtil.h"
#include "vm/CostModel.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace mult;

static Heap::Config heapConfig(const EngineConfig &C) {
  Heap::Config H;
  H.SemispaceWords = C.HeapWords;
  H.ChunkWords = C.ChunkWords;
  H.LargeObjectWords = C.LargeObjectWords;
  H.NumAllocators = C.NumProcessors;
  return H;
}

static CompilerOptions compilerOptions(const EngineConfig &C) {
  CompilerOptions O;
  O.EmitTouchChecks = C.EmitTouchChecks;
  O.OptimizeTouches = C.OptimizeTouches;
  O.IntegratePrims = C.IntegratePrims;
  return O;
}

static AdaptiveTConfig adaptiveConfig(const EngineConfig &C) {
  AdaptiveTConfig A;
  A.Enabled = C.AdaptiveInline;
  A.WindowCycles = C.AdaptiveWindowCycles ? C.AdaptiveWindowCycles : 1;
  A.MinT = C.AdaptiveMinT;
  A.MaxT = std::max(C.AdaptiveMaxT, C.AdaptiveMinT);
  A.Hysteresis = std::max(C.AdaptiveHysteresis, 1u);
  // The static threshold, when set and finite, seeds the adaptive one;
  // otherwise start from the paper's recommended T = 1.
  unsigned Start = C.InlineThreshold ? *C.InlineThreshold : 1u;
  A.StartT = std::clamp(Start, A.MinT, A.MaxT);
  return A;
}

Engine::Engine(const EngineConfig &Config)
    : Cfg(Config), TheHeap(heapConfig(Config)), Syms(TheHeap),
      Builder(TheHeap, Syms), Registry(TheHeap),
      TheCompiler(Builder, Registry, compilerOptions(Config)),
      TheGc(TheHeap, Config.NumProcessors),
      TheMachine(Config.NumProcessors, Config.QuantumCycles,
                 Config.MaxRunCycles, Config.StealPolicy,
                 adaptiveConfig(Config)),
      Rng(Config.RandomSeed), Telem(Config.NumProcessors) {
  // Well-known latency histograms, registered before any recording so
  // their ids are dense and stable. Always on: recording charges no
  // virtual time, so cycle counts are bit-identical either way.
  TelemIds.GcPause = Telem.histogram(
      "gc_pause_cycles", "virtual cycles per GC pause (rendezvous to resume)");
  TelemIds.TouchWait = Telem.histogram(
      "touch_wait_cycles", "virtual cycles a touch blocked until its future "
                           "resolved");
  TelemIds.StealLatency = Telem.histogram(
      "steal_latency_cycles", "virtual cycles a stolen task waited on its "
                              "victim queue (push to steal)");
  TelemIds.SemWait = Telem.histogram(
      "sem_wait_cycles", "virtual cycles a task blocked in semaphore-p until "
                         "the handing-off V");
  TelemIds.TaskLifetime = Telem.histogram(
      "task_lifetime_cycles", "virtual cycles from task creation to finish");
  TelemIds.EvalRequest = Telem.histogram(
      "eval_request_cycles", "virtual cycles per top-level eval request");
  TelemIds.EvalsTotal =
      Telem.counter("eval_requests_total", "top-level eval requests run");
  TelemIds.HostNsPerCycle = Telem.gauge(
      "host_ns_per_virtual_cycle", "host nanoseconds per simulated virtual "
                                   "cycle of the last measured run");
  TelemetrySpec = Config.Telemetry;
  if (TelemetrySpec.empty())
    if (const char *Env = std::getenv("MULT_TELEMETRY"))
      TelemetrySpec = Env;
  if (const char *Env = std::getenv("MULT_RECOVERY"))
    Cfg.Recovery = !(Env[0] == '0' && Env[1] == '\0') &&
                   std::string_view(Env) != "off";
  if (const char *Env = std::getenv("MULT_CHECKPOINT")) {
    // A cycle interval; 0 or "off" disarms. Malformed values are ignored.
    std::string_view EnvS(Env);
    if (EnvS == "off") {
      Cfg.CheckpointEvery = 0;
    } else {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Env, &End, 10);
      if (End && *End == '\0' && End != Env)
        Cfg.CheckpointEvery = V;
      else
        std::fprintf(stderr, "mult: ignoring MULT_CHECKPOINT: '%s' is not a "
                             "cycle count\n",
                     Env);
    }
  }
  if (const char *Env = std::getenv("MULT_RACE"))
    Cfg.RaceDetect = !(Env[0] == '0' && Env[1] == '\0') &&
                     std::string_view(Env) != "off";
  TheTracer.setEnabled(Config.EnableTracing);
  if (!Config.TraceSink.empty()) {
    std::string Err;
    if (!TheTracer.configureSink(Config.TraceSink, Err))
      std::fprintf(stderr, "mult: ignoring TraceSink: %s\n", Err.c_str());
  }
  RaceDetectOn = Cfg.RaceDetect;
  if (RaceDetectOn) {
    // The checker is a stream consumer, so tracing must be on; it
    // observes events before sink buffering, so even a small ring sink
    // leaves it complete. Charges no virtual time: cycle counts match
    // undetected runs bit for bit.
    RaceDet = std::make_unique<RaceDetector>();
    TheTracer.setEnabled(true);
    TheTracer.setObserver(RaceDet.get());
  }
  bootstrap();
  // Arm faults only after the prelude is in: a plan that fired during
  // bootstrap would make every run start from a poisoned image.
  std::string FaultSpec = Config.Faults;
  if (FaultSpec.empty())
    if (const char *Env = std::getenv("MULT_FAULTS"))
      FaultSpec = Env;
  if (!FaultSpec.empty()) {
    std::string Err;
    if (!configureFaults(FaultSpec, Err))
      std::fprintf(stderr, "mult: ignoring MULT_FAULTS: %s\n", Err.c_str());
  }
  // Site policies name program sites, so sites interned at bootstrap are
  // unaffected (the prelude spawns no futures); load after bootstrap to
  // mirror the fault plan's lifecycle.
  std::string PolicyPath = Config.SitePolicies;
  if (PolicyPath.empty())
    if (const char *Env = std::getenv("MULT_SITE_POLICIES"))
      PolicyPath = Env;
  if (!PolicyPath.empty()) {
    std::string Err;
    if (!SitePolicyTab.loadFile(PolicyPath, Err))
      std::fprintf(stderr, "mult: ignoring MULT_SITE_POLICIES: %s\n",
                   Err.c_str());
  }
}

bool Engine::configureSitePolicies(std::string_view Text, std::string &Err) {
  SitePolicyTable New;
  if (!New.parse(Text, Err))
    return false;
  SitePolicyTab = std::move(New);
  SitePolicyMemo.clear();
  return true;
}

const SitePolicy *Engine::sitePolicyFor(const void *CodeKey, uint32_t Pc,
                                        std::string_view CodeName) {
  auto Key = std::make_pair(CodeKey, Pc);
  auto It = SitePolicyMemo.find(Key);
  if (It != SitePolicyMemo.end())
    return It->second;
  std::string Name(CodeName);
  Name += '+';
  Name += std::to_string(Pc);
  const SitePolicy *P = SitePolicyTab.lookup(Name);
  SitePolicyMemo.emplace(Key, P);
  return P;
}

bool Engine::configureFaults(std::string_view Spec, std::string &Err) {
  FaultPlan Plan;
  if (!FaultPlan::parse(Spec, Plan, Err))
    return false;
  Injector.configure(Plan);
  Injector.arm();
  return true;
}

uint64_t Engine::cellSerial(const Object *Cell) {
  auto [It, Inserted] = CellSerials.try_emplace(Cell, CellSerialCounter + 1);
  if (Inserted)
    ++CellSerialCounter;
  return It->second;
}

void Engine::recordAccessSlow(Processor &P, const Task &T, const Object *Cell,
                              uint32_t Slot, bool IsWrite) {
  if (!TheTracer.enabled())
    return;
  TheTracer.record(IsWrite ? TraceEventKind::CellWrite
                           : TraceEventKind::CellRead,
                   P.Id, P.Clock, cellSerial(Cell), Slot, T.Id);
}

void Engine::preFlip() { remapCellSerials(); }

void Engine::remapCellSerials() {
  // Copying is done but the semispaces have not flipped yet: live
  // non-permanent cells carry forwarding headers in from-space, permanent
  // cells never move, and everything else is dead and must drop out of
  // the map. This must not run any later — the flip poisons from-space
  // in debug builds, and a heap-growing flip frees it outright.
  if (CellSerials.empty())
    return;
  std::unordered_map<const Object *, uint64_t> New;
  New.reserve(CellSerials.size());
  for (const auto &[Obj, Serial] : CellSerials) {
    if (Obj->isPermanent())
      New.emplace(Obj, Serial);
    else if (Obj->isForwarded())
      New.emplace(Obj->forwardedTo(), Serial);
  }
  CellSerials = std::move(New);
}

void Engine::noteFault(Processor &P, FaultKind Kind, uint64_t Detail) {
  ++Stats.FaultsInjected;
  if (TheTracer.enabled())
    TheTracer.record(TraceEventKind::FaultInjected, P.Id, P.Clock,
                     static_cast<uint64_t>(Kind), Detail,
                     Stats.FaultsInjected);
}

Engine::~Engine() {
  if (!TelemetrySpec.empty()) {
    std::string Err;
    if (!exportTelemetrySpec(Telem, TelemetrySpec, Err))
      std::fprintf(stderr, "mult: ignoring MULT_TELEMETRY: %s\n", Err.c_str());
  }
}

void Engine::recordTouchWait(Processor &P, uint32_t Site, uint64_t WaitCycles) {
  Telem.record(TelemIds.TouchWait, P.Id, WaitCycles);
  if (Site == ~uint32_t(0))
    return;
  // Per-site child histogram, registered on the site's first blocked
  // touch. Site interning order is deterministic (virtual-time
  // simulation), so the registry layout is too.
  if (Site >= SiteTouchHists.size())
    SiteTouchHists.resize(Site + 1, Telemetry::InvalidId);
  if (SiteTouchHists[Site] == Telemetry::InvalidId) {
    const std::vector<std::string> &Names = TheTracer.siteNames();
    std::string Name =
        Site < Names.size() ? Names[Site] : strFormat("site-%u", Site);
    SiteTouchHists[Site] = Telem.histogram(
        "touch_wait_cycles", "virtual cycles a touch blocked until its future "
                             "resolved",
        "site", Name);
  }
  Telem.record(SiteTouchHists[Site], P.Id, WaitCycles);
}

//===----------------------------------------------------------------------===//
// Bootstrap
//===----------------------------------------------------------------------===//

void Engine::installPrimitiveWrappers() {
  // Give every primitive a closure binding so primitive names work as
  // first-class values, e.g. (map car lst) or (apply + xs).
  //
  // Fixed-arity open-coded primitives get compiled eta-expansions; called
  // primitives (and the n-ary arithmetic, via the hidden %+ %- %* prims)
  // get hand-built variadic wrappers whose body is one PrimApplyVar.
  struct EtaSpec {
    std::string Name;
    int Arity;
  };
  std::vector<EtaSpec> Etas;
  static const char *FixedFastOps[] = {
      "car", "cdr", "cons", "quotient", "remainder",
      "<", "<=", ">", ">=", "=", "eq?", "null?", "pair?", "not",
      "set-car!", "set-cdr!", "vector-ref", "vector-set!",
      "vector-length"};
  for (const char *Name : FixedFastOps) {
    auto Fast = lookupFastOp(Name);
    assert(Fast && "fast op missing from table");
    Etas.push_back({Name, Fast->Arity});
  }
  Etas.push_back({"touch", 1});

  for (const EtaSpec &W : Etas) {
    std::string Params, Call;
    for (int I = 0; I < W.Arity; ++I) {
      Params += strFormat(" x%d", I);
      Call += strFormat(" x%d", I);
    }
    std::string Src =
        strFormat("(lambda (%s) (%s%s))", Params.c_str(), W.Name.c_str(),
                  Call.c_str());
    Reader Rd(Builder, Src);
    ReadResult RR = Rd.read();
    assert(RR.ok() && "wrapper source must parse");
    Compiler::Result CR = TheCompiler.compile(RR.Datum);
    assert(CR.ok() && "wrapper source must compile");
    // The compiled top level is [Closure tpl 0; Return]; extract the
    // template and build the (capture-free) closure in the static area.
    const Insn *ClosureInsn = nullptr;
    for (const Insn &I : CR.TopCode->Insns)
      if (I.Opcode == Op::Closure) {
        ClosureInsn = &I;
        break;
      }
    assert(ClosureInsn && ClosureInsn->B == 0 && "unexpected wrapper shape");
    Value Tpl =
        CR.TopCode->Constants[static_cast<size_t>(ClosureInsn->A)];
    Object *Clo = TheHeap.allocatePermanent(TypeTag::Closure, 1);
    Clo->setSlot(0, Tpl);
    Syms.intern(W.Name)->setGlobalValue(Value::object(Clo));
  }

  // Variadic wrappers. Names starting with % are internal and get no
  // binding; + - * bind to the %-prefixed n-ary equivalents.
  auto InstallVariadic = [&](const char *GlobalName, PrimId Id) {
    Code *C = Registry.create(std::string(GlobalName) + "-wrapper");
    C->Variadic = true;
    C->MaxFrameWords = 8;
    C->Insns.push_back(Insn{Op::PrimApplyVar, static_cast<int32_t>(Id), 0});
    C->Insns.push_back(Insn{Op::Return, 0, 0});
    Object *Clo = TheHeap.allocatePermanent(TypeTag::Closure, 1);
    Clo->setSlot(0, Registry.templateFor(C));
    Syms.intern(GlobalName)->setGlobalValue(Value::object(Clo));
  };
#define MULT_PRIM_WRAP(Id, Name, Min, Max, Cost)                               \
  if ((Name)[0] != '%')                                                        \
    InstallVariadic(Name, PrimId::Id);
  MULT_PRIM_LIST(MULT_PRIM_WRAP)
#undef MULT_PRIM_WRAP
  InstallVariadic("+", PrimId::AddN);
  InstallVariadic("-", PrimId::SubN);
  InstallVariadic("*", PrimId::MulN);
}

void Engine::bootstrap() {
  installPrimitiveWrappers();
  if (!Cfg.LoadPrelude)
    return;
  Bootstrapping = true;
  EvalResult R = eval(PreludeSource);
  Bootstrapping = false;
  if (!R.ok()) {
    console() << "fatal: prelude failed to load: " << R.Error << '\n';
    assert(false && "prelude failed to load");
  }
  takeOutput();
  resetStats();
}

//===----------------------------------------------------------------------===//
// Tasks and groups
//===----------------------------------------------------------------------===//

Task &Engine::task(TaskId Id) {
  uint32_t Idx = taskIndex(Id);
  assert(Idx < Tasks.size() && TaskGens[Idx] == taskGeneration(Id) &&
         "stale task id");
  return *Tasks[Idx];
}

Task *Engine::liveTask(TaskId Id) {
  uint32_t Idx = taskIndex(Id);
  if (Idx >= Tasks.size() || TaskGens[Idx] != taskGeneration(Id))
    return nullptr;
  Task *T = Tasks[Idx].get();
  return T->State == TaskState::Done ? nullptr : T;
}

Task *Engine::taskByIndex(uint32_t Idx) {
  if (Idx >= Tasks.size())
    return nullptr;
  Task *T = Tasks[Idx].get();
  return (T && T->State != TaskState::Done) ? T : nullptr;
}

Group &Engine::group(GroupId Id) {
  assert(Id < Groups.size() && "bad group id");
  return Groups[Id];
}

Group *Engine::findGroup(GroupId Id) {
  return Id < Groups.size() ? &Groups[Id] : nullptr;
}

TaskId Engine::newEmptyTask(GroupId G, unsigned Proc) {
  uint32_t Idx;
  if (!FreeTaskSlots.empty()) {
    Idx = FreeTaskSlots.back();
    FreeTaskSlots.pop_back();
    ++TaskGens[Idx];
  } else {
    Idx = static_cast<uint32_t>(Tasks.size());
    Tasks.push_back(std::make_unique<Task>());
    TaskGens.push_back(0);
  }
  Task &T = *Tasks[Idx];
  T.clearForRecycle();
  T.Id = makeTaskId(Idx, TaskGens[Idx]);
  T.Group = G;
  T.State = TaskState::Ready;
  T.LastProc = Proc;
  if (G != InvalidGroup)
    group(G).Members.push_back(T.Id);
  return T.Id;
}

TaskId Engine::newTask(GroupId G, Value Closure, Value ResultFuture,
                       Value DynEnv, unsigned Proc, TaskId Parent) {
  TaskId Id = newEmptyTask(G, Proc);
  Task &T = task(Id);
  T.initForThunk(Id, G, Closure, ResultFuture, DynEnv, Proc);
  T.CreateClock = TheMachine.processor(Proc).Clock;
  T.FutureSite = ~uint32_t(0);
  ++Stats.TasksCreated;
  if (G != InvalidGroup)
    ++group(G).TasksCreated;
  if (TheTracer.enabled())
    TheTracer.record(TraceEventKind::TaskCreate, Proc,
                     TheMachine.processor(Proc).Clock, Id, G, Parent);
  return Id;
}

void Engine::finishTask(Task &T) {
  uint32_t Idx = taskIndex(T.Id);
  if (T.Group != InvalidGroup)
    group(T.Group).Checkpoints.erase(Idx); // record can never be restored now
  T.clearForRecycle();
  FreeTaskSlots.push_back(Idx);
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

Object *Engine::tryAlloc(Processor &P, TypeTag Tag, uint32_t SizeWords,
                         uint64_t &Cycles, uint8_t Flags) {
  if (Injector.armed() && Injector.shouldFailAlloc()) {
    // Behaves exactly like a full heap: the VM requests a collection and
    // retries the instruction, which succeeds (the injector marks the
    // failure so the machine's exhaustion heuristics ignore this round).
    noteFault(P, FaultKind::AllocFail, SizeWords);
    Cycles += heapcost::ChunkBump;
    return nullptr;
  }
  Heap::AllocResult R = TheHeap.allocate(P.Id, P.Clock, Tag, SizeWords, Flags);
  Cycles += R.Cycles;
  return R.Obj;
}

Object *Engine::allocOrGc(TypeTag Tag, uint32_t SizeWords, uint8_t Flags) {
  Processor &P0 = TheMachine.homeFor(0);
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    Heap::AllocResult R =
        TheHeap.allocate(P0.Id, P0.Clock, Tag, SizeWords, Flags);
    P0.charge(R.Cycles);
    if (R.Obj)
      return R.Obj;
    if (!collectGarbage())
      return nullptr;
  }
  return nullptr;
}

bool Engine::collectGarbage() {
  HostPhaseTimer HostGc(Telem, Telemetry::Phase::Gc);
  std::vector<uint64_t> Clocks = TheMachine.clocks();
  std::vector<uint64_t> Before = Clocks;
  bool Ok = TheGc.collect(*this, Clocks);
  if (Ok) {
    // The pause distribution, not just the running total (the collection
    // already updated Gc::Stats). Shard 0: a collection is machine-wide.
    Telem.record(TelemIds.GcPause, 0, TheGc.stats().Last.PauseCycles);
    TheMachine.setClocks(Clocks);
    // Each processor's pause (from interruption to the common resume
    // clock) is GC time; together with busy and idle cycles this tiles
    // the processor clock exactly.
    for (unsigned I = 0; I < TheMachine.numProcessors(); ++I) {
      Processor &P = TheMachine.processor(I);
      P.GcCycles += Clocks[I] - Before[I];
      if (TheTracer.enabled()) {
        TheTracer.record(TraceEventKind::GcBegin, I, Before[I]);
        TheTracer.record(TraceEventKind::GcEnd, I, Clocks[I]);
      }
    }
    // Proc-kills that fired inside the collection (pollGcKill): the
    // collector already finished the victims' copy work on survivors;
    // with the heap whole again, perform the machine-level fail-stop and
    // the usual recovery. The victims' scanned tasks survived the
    // collection, so restore/re-spawn sees fresh to-space state.
    if (!PendingGcKills.empty()) {
      std::vector<PendingGcKill> Kills;
      Kills.swap(PendingGcKills);
      for (const PendingGcKill &K : Kills) {
        Processor &Dead = TheMachine.processor(K.Victim);
        if (Dead.Dead)
          continue;
        Dead.Dead = true;
        if (Dead.TraceIdling) {
          Dead.TraceIdling = false;
          if (TheTracer.enabled())
            TheTracer.record(TraceEventKind::IdleEnd, Dead.Id, Dead.Clock);
        }
        Processor &Obs = TheMachine.homeFor(K.Victim);
        noteFault(Obs, FaultKind::ProcKill, K.Victim);
        recoverProcessor(Obs, Dead, TheMachine.runStartClock() + K.Mark);
      }
    }
  } else {
    PendingGcKills.clear();
  }
  return Ok;
}

bool Engine::pollGcKill(uint64_t Clock, unsigned &Victim) {
  // Fault marks are run-relative; a collection triggered outside a run
  // (allocOrGc from a setup path) has no run clock to poll against.
  if (!Injector.armed() || !TheMachine.inRun())
    return false;
  uint64_t Start = TheMachine.runStartClock();
  uint64_t Rel = Clock > Start ? Clock - Start : 0;
  unsigned V;
  uint64_t Mark;
  if (!Injector.takeProcKill(Rel, V, Mark))
    return false;
  // Mirror the machine's quantum-poll guards: bogus processor ids and
  // kills that would leave no live processor are consumed as no-ops.
  if (V >= TheMachine.numProcessors() || TheMachine.processor(V).Dead)
    return false;
  unsigned Doomed = 0;
  for (const PendingGcKill &K : PendingGcKills) {
    if (K.Victim == V)
      return false;
    ++Doomed;
  }
  if (TheMachine.liveProcessors() <= Doomed + 1)
    return false;
  PendingGcKills.push_back({V, Mark});
  Victim = V;
  return true;
}

//===----------------------------------------------------------------------===//
// GC roots
//===----------------------------------------------------------------------===//

namespace {
/// Root-segment partition sizes, cached between numRootSegments and the
/// scanRootSegment calls of one collection.
struct SegmentPlan {
  unsigned StaticSegs = 1;
  unsigned TaskSegs = 1;
};
SegmentPlan CurrentPlan;
} // namespace

unsigned Engine::numRootSegments() {
  // Fine segmentation lets the collectors share root scanning: one
  // segment should carry only a handful of user globals (the paper's
  // static area was "divided into segments" for exactly this reason).
  size_t StaticN = TheHeap.staticAreaSize();
  size_t TaskN = Tasks.size();
  CurrentPlan.StaticSegs = static_cast<unsigned>(
      std::clamp<size_t>(StaticN / 48, 1, 256));
  CurrentPlan.TaskSegs =
      static_cast<unsigned>(std::clamp<size_t>(TaskN / 16, 1, 128));
  return CurrentPlan.StaticSegs + CurrentPlan.TaskSegs + 1;
}

void Engine::scanTask(Task &T, const RootVisitor &Visit) {
  for (Value &V : T.Stack)
    Visit(V);
  Visit(T.BlockedOn);
  Visit(T.DynEnv);
  Visit(T.ResultFuture);
  Visit(T.WakeValue);
  Visit(T.SpawnClosure);
  Visit(T.SpawnDynEnv);
  for (Frame &F : T.Frames)
    Visit(F.SeamFuture);
}

void Engine::scanRootSegment(unsigned Segment, const RootVisitor &Visit) {
  if (Segment < CurrentPlan.StaticSegs) {
    auto [Begin, End] =
        TheHeap.staticAreaSegment(Segment, CurrentPlan.StaticSegs);
    for (size_t I = Begin; I < End; ++I) {
      Object *O = TheHeap.staticAreaObject(I);
      for (uint32_t K = 0, N = O->sizeWords(); K < N; ++K) {
        Value V = O->slot(K);
        Visit(V);
        O->setSlot(K, V);
      }
    }
    return;
  }
  Segment -= CurrentPlan.StaticSegs;
  if (Segment < CurrentPlan.TaskSegs) {
    size_t N = Tasks.size();
    size_t Begin = N * Segment / CurrentPlan.TaskSegs;
    size_t End = N * (Segment + 1) / CurrentPlan.TaskSegs;
    for (size_t I = Begin; I < End; ++I)
      scanTask(*Tasks[I], Visit);
    return;
  }
  // Miscellaneous engine roots.
  Visit(RootFuture);
  for (Group &G : Groups) {
    Visit(G.RootFuture);
    // Checkpoint records must survive collections for as long as a
    // member task might still be restored from them.
    for (auto &Entry : G.Checkpoints) {
      CheckpointRecord &R = Entry.second;
      for (Value &V : R.Stack)
        Visit(V);
      Visit(R.DynEnv);
      for (Frame &F : R.Frames)
        Visit(F.SeamFuture);
    }
  }
}

void Engine::scanProcessorRoots(unsigned Proc, const RootVisitor &Visit) {
  Processor &P = TheMachine.processor(Proc);
  if (P.Current == InvalidTask)
    return;
  scanTask(task(P.Current), Visit);
}

//===----------------------------------------------------------------------===//
// Group stop / resume / kill
//===----------------------------------------------------------------------===//

void Engine::stopGroup(Processor &P, Task &T, std::string Condition,
                       uint32_t StopPop) {
  Group &G = group(T.Group);
  T.State = TaskState::Stopped;
  T.StopCondition = Condition;
  T.StopPop = StopPop;
  T.StopRestartable = false;
  if (TheTracer.enabled())
    TheTracer.record(TraceEventKind::TaskStopped, P.Id, P.Clock, T.Id);
  if (G.State == GroupState::Running) {
    G.State = GroupState::Stopped;
    G.CurrentTask = T.Id;
    G.Condition = Condition;
    StoppedStack.push_back(G.Id);
  }
  LastStopped = G.Id;

  // The per-processor exception-handler server task runs (paper
  // section 2.3): it coordinates with the scheduler so no other task of
  // the group runs, then hands the terminal to the terminal server.
  // Members currently on a processor are suspended right here; queued
  // members are parked lazily when a dispatch pops them.
  for (unsigned I = 0; I < TheMachine.numProcessors(); ++I) {
    Processor &Other = TheMachine.processor(I);
    if (Other.Current == InvalidTask || Other.Current == T.Id)
      continue;
    Task *Sibling = liveTask(Other.Current);
    if (!Sibling || Sibling->Group != T.Group)
      continue;
    Sibling->State = TaskState::Stopped;
    G.Parked.push_back(Sibling->Id);
    Other.Current = InvalidTask;
    if (TheTracer.enabled())
      TheTracer.record(TraceEventKind::TaskStopped, Other.Id, Other.Clock,
                       Sibling->Id);
  }
  ++P.HandlerActivations;
  P.charge(cost::GroupStop);
  P.charge(TermLock.acquire(P.Clock, cost::TerminalLockHold));
}

void Engine::stopGroupRestartable(Processor &P, Task &T,
                                  std::string Condition) {
  stopGroup(P, T, std::move(Condition), 0);
  T.StopRestartable = true;
}

std::vector<GroupId> Engine::stoppedGroups() const {
  std::vector<GroupId> Out;
  for (const Group &G : Groups)
    if (G.State == GroupState::Stopped)
      Out.push_back(G.Id);
  return Out;
}

EvalResult Engine::resumeGroup(GroupId Id, Value ResumeValue) {
  EvalResult R;
  Group *G = findGroup(Id);
  if (!G || G->State != GroupState::Stopped) {
    R.K = EvalResult::Kind::RuntimeError;
    R.Error = "resume: group is not stopped";
    return R;
  }

  // Resume the signalling task: the erring operation completes with the
  // user-supplied value.
  if (Task *T = Tasks[taskIndex(G->CurrentTask)].get();
      T && T->Id == G->CurrentTask && T->State == TaskState::Stopped) {
    if (T->StopRestartable) {
      // The faulting instruction never executed; just make the task
      // runnable again and let it re-run from the same pc.
      T->StopRestartable = false;
    } else {
      T->HasWakeAction = true;
      T->WakePop = T->StopPop;
      T->WakeValue = ResumeValue;
    }
    T->State = TaskState::Ready;
    Processor &Home = TheMachine.homeFor(T->LastProc);
    Home.Queues.pushSuspended(T->Id, Home.Clock);
  }
  for (TaskId Parked : G->Parked) {
    if (Task *T = liveTask(Parked); T && T->State == TaskState::Stopped) {
      T->State = TaskState::Ready;
      Processor &Home = TheMachine.homeFor(T->LastProc);
      Home.Queues.pushSuspended(T->Id, Home.Clock);
    }
  }
  G->Parked.clear();
  G->State = GroupState::Running;
  StoppedStack.erase(
      std::remove(StoppedStack.begin(), StoppedStack.end(), Id),
      StoppedStack.end());

  beginRun(G->RootFuture, Id);
  RunResult RR = TheMachine.run(*this, G->RootFuture);
  return translateRunResult(RR, Id);
}

void Engine::killGroup(GroupId Id) {
  Group *G = findGroup(Id);
  if (!G || G->State == GroupState::Killed)
    return;
  G->State = GroupState::Killed;
  for (TaskId Member : G->Members) {
    uint32_t Idx = taskIndex(Member);
    if (Idx >= Tasks.size() || TaskGens[Idx] != taskGeneration(Member))
      continue;
    Task &T = *Tasks[Idx];
    if (T.State == TaskState::Done)
      continue;
    // Detach from any processor.
    for (unsigned P = 0; P < TheMachine.numProcessors(); ++P)
      if (TheMachine.processor(P).Current == Member)
        TheMachine.processor(P).Current = InvalidTask;
    finishTask(T);
  }
  G->Parked.clear();
  StoppedStack.erase(
      std::remove(StoppedStack.begin(), StoppedStack.end(), Id),
      StoppedStack.end());
}

//===----------------------------------------------------------------------===//
// Fail-stop recovery
//===----------------------------------------------------------------------===//

namespace {

/// Why a lost task cannot be re-executed from its spawn lineage. The
/// numeric values are the TaskOrphaned trace event's B payload.
enum class OrphanReason : unsigned {
  Recoverable = 0,
  NoLineage = 1,     ///< seam-split continuation: no spawn closure exists
  SemaphoreHeld = 2, ///< exclusion already observed by other tasks
  SeamObserved = 3,  ///< a thief split this task's stack; re-running
                     ///< would recompute frames the thief now owns
  DidIo = 4,         ///< output already reached the console
  Disabled = 5,      ///< EngineConfig::Recovery is off
};

const char *orphanReasonName(OrphanReason R) {
  switch (R) {
  case OrphanReason::Recoverable:
    return "recoverable";
  case OrphanReason::NoLineage:
    return "no spawn lineage";
  case OrphanReason::SemaphoreHeld:
    return "holds a semaphore";
  case OrphanReason::SeamObserved:
    return "stack split by a seam steal";
  case OrphanReason::DidIo:
    return "performed I/O";
  case OrphanReason::Disabled:
    return "recovery disabled";
  }
  return "?";
}

} // namespace

void Engine::recoverProcessor(Processor &P, Processor &Dead,
                              uint64_t DoomClock) {
  ++Stats.ProcsKilled;

  // Everything the processor took down with it: the task it was running
  // plus its queued backlog. The drain itself costs no virtual time —
  // recovery is scheduler firmware, not program work; the price the
  // program pays is the re-executed cycles, charged as the re-spawned
  // tasks run (EngineStats::RecoveryCycles).
  std::vector<TaskId> Lost;
  if (Dead.Current != InvalidTask) {
    Lost.push_back(Dead.Current);
    Dead.Current = InvalidTask;
  }
  uint64_t Scratch = 0;
  for (TaskId T; (T = Dead.Queues.popNew(Dead.Clock, Scratch)) != InvalidTask;)
    Lost.push_back(T);

  // The suspended queue splits in two. Entries that arrived *before* the
  // kill mark are genuine lost backlog. Entries at or after the mark are
  // post-mortem wakes: the kill is polled at quantum granularity, so
  // another processor can run past the mark and wake a task here (via
  // Machine::homeFor, which still saw this processor alive) before the
  // poll fires. Those tasks were never really on the dead processor —
  // their wake state (HasWakeAction, SemaphoresHeld from a semaphore
  // handoff) is intact and must not be re-spawned from lineage (double
  // execution) or orphaned (a spurious semaphore-held group stop); they
  // are redirected to the nearest survivor unchanged.
  std::vector<std::pair<TaskId, uint64_t>> PostMortemWakes;
  for (const auto &[T, Arrived] : Dead.Queues.drainSuspendedArrivals()) {
    if (Arrived >= DoomClock)
      PostMortemWakes.emplace_back(T, Arrived);
    else
      Lost.push_back(T);
  }
  for (const auto &[Id, Arrived] : PostMortemWakes) {
    Task *T = liveTask(Id);
    if (!T)
      continue;
    Group &G = group(T->Group);
    if (G.State == GroupState::Killed) {
      if (TheTracer.enabled())
        TheTracer.record(TraceEventKind::TaskDropped, P.Id, P.Clock, T->Id);
      finishTask(*T);
      continue;
    }
    if (G.State == GroupState::Stopped) {
      T->State = TaskState::Stopped;
      G.Parked.push_back(T->Id);
      if (TheTracer.enabled())
        TheTracer.record(TraceEventKind::TaskParked, P.Id, P.Clock, T->Id);
      continue;
    }
    Processor &Home = TheMachine.homeFor(Dead.Id);
    T->LastProc = Home.Id;
    Home.Queues.pushSuspended(Id, Arrived);
    ++Stats.WakesRedirected;
  }

  if (TheTracer.enabled())
    TheTracer.record(TraceEventKind::ProcKilled, P.Id, P.Clock, Dead.Id,
                     Lost.size(), Stats.ProcsKilled);

  // Classify. A lost task is re-executable exactly when it still has its
  // spawn lineage and no other task can have observed anything it did:
  // plain memory writes are idempotent under the deterministic schedule
  // (re-running stores the same values), but a held semaphore, a seam
  // split (a thief owns part of the stack) or console output is an
  // observation that re-execution would double (see DESIGN.md).
  struct RecoverItem {
    Task *T;
    const CheckpointRecord *CP; ///< null = lineage re-spawn from scratch
  };
  std::vector<RecoverItem> Recover;
  std::vector<std::pair<Task *, OrphanReason>> Orphans;
  for (TaskId Id : Lost) {
    Task *T = liveTask(Id);
    if (!T)
      continue; // stale id; vetting would have dropped it on dispatch
    Group &G = group(T->Group);
    if (G.State == GroupState::Killed) {
      if (TheTracer.enabled())
        TheTracer.record(TraceEventKind::TaskDropped, P.Id, P.Clock, T->Id);
      finishTask(*T);
      continue;
    }
    if (G.State == GroupState::Stopped) {
      // The group is already in the breakloop; park the task so a resume
      // re-enqueues it like any other sibling.
      T->State = TaskState::Stopped;
      G.Parked.push_back(T->Id);
      if (TheTracer.enabled())
        TheTracer.record(TraceEventKind::TaskParked, P.Id, P.Clock, T->Id);
      continue;
    }
    // Checkpointed recovery: a record whose side-effect epoch still
    // matches the task's (nothing observable happened since capture)
    // resumes the task from the snapshot. That trumps spawn-replay (only
    // the capture-to-kill delta is re-executed) *and* most orphan
    // reasons: the held semaphores, I/O, or missing lineage the orphan
    // rules fear date from before the capture, are baked into the
    // snapshot, and are never re-executed.
    if (Cfg.Recovery && Cfg.CheckpointEvery) {
      auto It = G.Checkpoints.find(taskIndex(T->Id));
      if (It != G.Checkpoints.end() &&
          It->second.Epoch == T->SideEffectEpoch) {
        Recover.push_back({T, &It->second});
        continue;
      }
    }
    OrphanReason Why = OrphanReason::Recoverable;
    if (!Cfg.Recovery)
      Why = OrphanReason::Disabled;
    else if (!T->SpawnClosure.isObject())
      Why = OrphanReason::NoLineage;
    else if (T->SemaphoresHeld > 0)
      Why = OrphanReason::SemaphoreHeld;
    else if (T->BaseFrame > 0)
      Why = OrphanReason::SeamObserved;
    else if (T->DidIo)
      Why = OrphanReason::DidIo;
    if (Why == OrphanReason::Recoverable)
      Recover.push_back({T, nullptr});
    else
      Orphans.emplace_back(T, Why);
  }

  // Re-spawn the recoverable tasks round-robin over the survivors,
  // starting after the dead processor so the load spreads the same way
  // every replay. initForThunk on the existing task keeps its id, group
  // and result future, so tasks blocked on it resolve as if nothing
  // happened — only the cycles are paid twice.
  unsigned N = TheMachine.numProcessors();
  unsigned Next = Dead.Id;
  for (const RecoverItem &Item : Recover) {
    Task *T = Item.T;
    do
      Next = (Next + 1) % N;
    while (TheMachine.processor(Next).Dead);
    Processor &Home = TheMachine.processor(Next);
    if (Item.CP) {
      // Resume from the snapshot. Only the busy cycles since the capture
      // were lost, so the recovery charge is budgeted to that delta —
      // which the capture policy bounds by CheckpointEvery + one quantum.
      const CheckpointRecord &R = *Item.CP;
      uint64_t LostDelta = T->SinceCheckpoint;
      T->State = TaskState::Ready;
      T->LastProc = Home.Id;
      T->Stack = R.Stack;
      T->Frames = R.Frames;
      T->CurCode = R.CurCode;
      T->Pc = R.Pc;
      T->DynEnv = R.DynEnv;
      T->BlockedOn = Value::nil();
      T->HasWakeAction = false;
      T->WakePop = 0;
      T->WakeValue = Value::nil();
      T->StopCondition.clear();
      T->StopPop = 0;
      T->StopRestartable = false;
      T->UnstolenSeams = 0; // capture eligibility guarantees none
      T->BaseFrame = 0;
      T->SemaphoresHeld = R.SemaphoresHeld;
      T->DidIo = R.DidIo;
      T->SinceCheckpoint = 0;
      T->RecoveryCharged = 0;
      T->RecoveryBudget = LostDelta;
      T->Recovered = LostDelta > 0;
      Home.Queues.pushNew(T->Id, Home.Clock);
      ++Stats.TasksRestored;
      if (TheTracer.enabled())
        TheTracer.record(TraceEventKind::TaskRestored, P.Id, P.Clock, T->Id,
                         Home.Id, Dead.Id);
      continue;
    }
    T->initForThunk(T->Id, T->Group, T->SpawnClosure, T->ResultFuture,
                    T->SpawnDynEnv, Home.Id);
    T->Recovered = true;
    Home.Queues.pushNew(T->Id, Home.Clock);
    ++Stats.TasksRecovered;
    if (TheTracer.enabled())
      TheTracer.record(TraceEventKind::TaskRecovered, P.Id, P.Clock, T->Id,
                       Home.Id, Dead.Id);
  }

  // Unrecoverable tasks stop their group with a breakloop-inspectable
  // condition naming every orphaned future, mirroring the heap-exhausted
  // degradation. The simulator still holds the orphans' state, so the
  // stop is restartable: resume deliberately breaks the fail-stop
  // fiction and continues them on a survivor.
  for (size_t I = 0; I < Orphans.size(); ++I) {
    auto [T, Why] = Orphans[I];
    ++Stats.TasksOrphaned;
    if (TheTracer.enabled())
      TheTracer.record(TraceEventKind::TaskOrphaned, P.Id, P.Clock, T->Id,
                       static_cast<uint64_t>(Why), Dead.Id);
    Group &G = group(T->Group);
    if (G.State == GroupState::Stopped) {
      // A prior orphan already stopped this group; join its parked set
      // and append to the condition so the breakloop names every orphan.
      T->State = TaskState::Stopped;
      G.Parked.push_back(T->Id);
      G.Condition += strFormat(", task %u (%s)", taskIndex(T->Id),
                               orphanReasonName(Why));
      continue;
    }
    stopGroupRestartable(
        P, *T,
        strFormat("processor-lost: processor %u failed; orphaned futures: "
                  "task %u (%s)",
                  Dead.Id, taskIndex(T->Id), orphanReasonName(Why)));
  }
}

void Engine::maybeCheckpoint(Processor &P, Task &T) {
  // Capture eligibility: the task must own its whole stack. An unstolen
  // seam could be stolen *after* the capture (the thief's future would
  // dangle in the snapshot), and a nonzero BaseFrame means the frames
  // below already belong to a thief's parent-continuation task.
  if (T.UnstolenSeams > 0 || T.BaseFrame > 0 || T.Frames.empty())
    return;
  if (T.Group == InvalidGroup)
    return;
  Group &G = group(T.Group);
  CheckpointRecord &R = G.Checkpoints[taskIndex(T.Id)];
  R.Stack = T.Stack;
  R.Frames = T.Frames;
  R.CurCode = T.CurCode;
  R.Pc = T.Pc;
  R.DynEnv = T.DynEnv;
  R.SemaphoresHeld = T.SemaphoresHeld;
  R.DidIo = T.DidIo;
  R.Epoch = T.SideEffectEpoch;
  R.CaptureClock = P.Clock;
  // Snapshot cost: a base plus one cycle per four copied words (a frame
  // is modelled as four words of resume state).
  uint64_t CopiedWords =
      uint64_t(R.Stack.size()) + uint64_t(R.Frames.size()) * 4;
  uint64_t Cost = cost::CheckpointBase + CopiedWords / 4;
  P.charge(Cost);
  ++Stats.CheckpointsTaken;
  Stats.CheckpointCycles += Cost;
  ++P.CheckpointsTaken;
  P.LastCheckpointClock = P.Clock;
  T.SinceCheckpoint = 0;
  if (TheTracer.enabled())
    TheTracer.record(TraceEventKind::CheckpointTaken, P.Id, P.Clock, T.Id,
                     Cost, R.Epoch);
}

bool Engine::checkByzantineReturn(Processor &P, Task &T) {
  bool ChecksArmed = Injector.crossChecksArmed();
  if (!P.Lying && !ChecksArmed)
    return false;
  if (T.Stack.empty())
    return false;
  Value &Result = T.Stack.back();
  // A lie only corrupts fixnum results (a corrupted pointer would crash
  // the simulator host, not model a wrong answer); the fault stays armed
  // until a fixnum-returning finish comes along.
  bool Lie = P.Lying && Result.isFixnum();
  // The draw is consumed on every armed finishing return, whether or not
  // a lie is pending, so the cross-check schedule is independent of the
  // lie schedule (and bit-deterministic under a fixed seed).
  bool Check = ChecksArmed && Injector.shouldCrossCheck();

  constexpr int64_t kLieXor = 0x2a;
  if (Lie && !Check) {
    // Undetected: the corrupted value propagates (and poisons whatever
    // consumed the future) exactly as a silently faulty processor would.
    Result = Value::fixnum(Result.asFixnum() ^ kLieXor);
    P.Lying = false;
    ++Stats.ByzantineLies;
    noteFault(P, FaultKind::ProcLie, P.Id);
    return false;
  }
  if (!Check)
    return false;

  // Cross-check: seed-deterministically re-execute the task on a
  // different live processor and compare. The checker is charged the
  // task's full busy history plus a fixed dispatch cost (BusyCyclesTotal
  // slightly undercounts the final partial quantum; deterministic, and
  // documented in DESIGN.md).
  unsigned CheckerId = P.Id;
  for (unsigned Off = 1; Off < TheMachine.numProcessors(); ++Off) {
    unsigned C = (P.Id + Off) % TheMachine.numProcessors();
    if (!TheMachine.processor(C).Dead) {
      CheckerId = C;
      break;
    }
  }
  Processor &Checker = TheMachine.processor(CheckerId);
  ++Stats.CrossChecks;
  Checker.charge(cost::CrossCheckBase + T.BusyCyclesTotal);
  if (!Lie)
    return false;

  // Caught: the lying processor reported the corrupted value, the checker
  // recomputed the honest one. Stop the group restartably with both
  // values in the condition; the lie is disarmed, so resume re-runs the
  // return and resolves the future honestly.
  int64_t Honest = Result.asFixnum();
  int64_t Reported = Honest ^ kLieXor;
  P.Lying = false;
  ++Stats.ByzantineLies;
  ++Stats.ByzantineDetected;
  noteFault(P, FaultKind::ProcLie, P.Id);
  if (TheTracer.enabled())
    TheTracer.record(TraceEventKind::ByzantineDetected, P.Id, P.Clock, T.Id,
                     P.Id, uint64_t(Honest));
  stopGroupRestartable(
      P, T,
      strFormat("byzantine-detected: processor %u returned %lld for task %u; "
                "cross-check on processor %u recomputed %lld",
                P.Id, static_cast<long long>(Reported), taskIndex(T.Id),
                Checker.Id, static_cast<long long>(Honest)));
  return true;
}

std::string Engine::describeWaitGraph() {
  // Reconstruct the task -> future -> computing-task wait-for graph from
  // scheduler state. An unresolved future's FutTaskId slot still holds
  // the index of the task computing it (resolve overwrites it, but then
  // the future no longer blocks anyone), so each blocked task has at
  // most one outgoing edge and any cycle is a simple rho-shaped walk.
  constexpr uint32_t NoEdge = ~uint32_t(0);
  std::vector<uint32_t> EdgeTo(Tasks.size(), NoEdge);
  std::string Out;
  StringOutStream OS(Out);

  for (size_t I = 0; I < Tasks.size(); ++I) {
    Task &T = *Tasks[I];
    if (T.State == TaskState::BlockedSemaphore) {
      OS << "  task " << I << " waits on a semaphore\n";
      continue;
    }
    if (T.State != TaskState::BlockedFuture || !T.BlockedOn.isFuture())
      continue;
    Object *Fut = T.BlockedOn.pointee();
    // Chase resolved links to the future actually pending.
    while (Fut->futureResolved() && Fut->futureValue().isFuture())
      Fut = Fut->futureValue().pointee();
    OS << "  task " << I << " waits on a future";
    int64_t Idx = Fut->slot(Object::FutTaskId).isFixnum()
                      ? Fut->slot(Object::FutTaskId).asFixnum()
                      : -1;
    Task *Computer = (Idx >= 0 && size_t(Idx) < Tasks.size())
                         ? Tasks[size_t(Idx)].get()
                         : nullptr;
    if (Computer && Computer->State != TaskState::Done &&
        Computer->ResultFuture.isFuture() &&
        Computer->ResultFuture.pointee() == Fut) {
      OS << " computed by task " << Idx << "\n";
      EdgeTo[I] = uint32_t(Idx);
    } else {
      OS << " whose computing task is gone\n";
    }
  }
  if (Out.empty())
    return Out;
  Out.insert(0, "blocked tasks:\n");

  // Rho walk from every blocked task; report the first cycle found.
  std::vector<uint8_t> Mark(Tasks.size(), 0);
  for (uint32_t Start = 0; Start < EdgeTo.size(); ++Start) {
    if (EdgeTo[Start] == NoEdge || Mark[Start])
      continue;
    uint32_t Cur = Start;
    std::vector<uint32_t> Path;
    while (Cur != NoEdge && Mark[Cur] != 1) {
      if (Mark[Cur] == 2)
        break; // joins an already-explored tail: no new cycle
      Mark[Cur] = 1;
      Path.push_back(Cur);
      Cur = EdgeTo[Cur];
    }
    bool Found = false;
    if (Cur != NoEdge && Mark[Cur] == 1) {
      OS << "wait cycle: ";
      bool In = false;
      for (uint32_t N : Path) {
        if (N == Cur)
          In = true;
        if (In)
          OS << "task " << N << " -> ";
      }
      OS << "task " << Cur << "\n";
      Found = true;
    }
    for (uint32_t N : Path)
      Mark[N] = 2;
    if (Found)
      break;
  }
  return Out;
}

std::string Engine::backtrace(TaskId Id) {
  uint32_t Idx = taskIndex(Id);
  if (Idx >= Tasks.size() || TaskGens[Idx] != taskGeneration(Id))
    return "<dead task>\n";
  Task &T = *Tasks[Idx];
  std::string Out;
  StringOutStream OS(Out);
  if (T.CurCode)
    OS << "  in " << T.CurCode->Name << " (pc " << T.Pc << ")\n";
  for (size_t I = T.Frames.size(); I > T.BaseFrame; --I) {
    const Frame &F = T.Frames[I - 1];
    if (F.CallerCode)
      OS << "  called from " << F.CallerCode->Name << " (pc " << F.RetPc
         << ")" << (F.IsSeam ? " [seam]" : "") << "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

void Engine::beginRun(Value Root, GroupId RootGroup) {
  RootFuture = Root;
  RootGroupId = RootGroup;
  RootClock = 0;
  RootDone = Root.isFuture() ? Root.pointee()->futureResolved() : true;
  if (RootDone)
    RootClock = TheMachine.homeFor(0).Clock;
}

Value Engine::rootValue() const {
  Value V = RootFuture;
  while (V.isFuture() && V.pointee()->futureResolved())
    V = V.pointee()->futureValue();
  return V;
}

EvalResult Engine::translateRunResult(const RunResult &RR, GroupId G) {
  EvalResult R;
  switch (RR.Status) {
  case RunStatus::Completed:
    R.K = EvalResult::Kind::Value;
    R.Val = RR.Result;
    group(G).State = GroupState::Done;
    return R;
  case RunStatus::GroupStopped:
    // Heap exhaustion inside a task stops its group (so the breakloop can
    // inspect and kill it) but callers match on the dedicated kind.
    R.K = RR.Error.compare(0, 14, "heap-exhausted") == 0
              ? EvalResult::Kind::HeapExhausted
              : EvalResult::Kind::RuntimeError;
    R.Error = RR.Error;
    R.StoppedGroup = RR.StoppedGroup;
    R.Heap = RR.Heap;
    return R;
  case RunStatus::Deadlock:
    R.K = EvalResult::Kind::Deadlock;
    R.Error = RR.Error;
    return R;
  case RunStatus::HeapExhausted:
    R.K = EvalResult::Kind::HeapExhausted;
    R.Error = RR.Error;
    R.Heap = RR.Heap;
    return R;
  case RunStatus::CycleLimit:
    R.K = EvalResult::Kind::CycleLimit;
    R.Error = RR.Error;
    return R;
  }
  R.K = EvalResult::Kind::RuntimeError;
  R.Error = "unknown run status";
  return R;
}

EvalResult Engine::runTopLevel(Code *TopCode, std::string_view Banner) {
  EvalResult R;

  // Group for this top-level expression.
  GroupId Gid = static_cast<GroupId>(Groups.size());
  Groups.emplace_back();
  Group &G = Groups.back();
  G.Id = Gid;
  G.Banner = std::string(Banner);
  G.Internal = Bootstrapping;

  // Root closure and future (GC-safe: the closure is protected via the
  // group's RootFuture only after both allocations, so allocate the
  // future first and keep the closure in a scanned slot).
  Object *Fut = allocOrGc(TypeTag::Future, Object::FutureSizeWords);
  if (!Fut) {
    R.K = EvalResult::Kind::HeapExhausted;
    R.Error = "heap exhausted allocating root future";
    return R;
  }
  Fut->setSlot(Object::FutState, Value::fixnum(0));
  Fut->setSlot(Object::FutValue, Value::unspecified());
  Fut->setSlot(Object::FutWaiters, Value::nil());
  Fut->setSlot(Object::FutTaskId, Value::fixnum(0));
  Fut->setSlot(Object::FutGroupId, Value::fixnum(Gid));
  G.RootFuture = Value::future(Fut);

  Object *Clo = allocOrGc(TypeTag::Closure, 1);
  if (!Clo) {
    R.K = EvalResult::Kind::HeapExhausted;
    R.Error = "heap exhausted allocating root closure";
    return R;
  }
  Clo->setSlot(0, Registry.templateFor(TopCode));
  // Re-read the future: allocating the closure may have collected.
  Fut = G.RootFuture.pointee();

  // Launch on processor 0 — or, if it fail-stopped, the nearest survivor.
  Processor &P0 = TheMachine.homeFor(0);
  TaskId Root = newTask(Gid, Value::object(Clo), G.RootFuture,
                        Value::nil(), P0.Id);
  Fut->setSlot(Object::FutTaskId,
               Value::fixnum(static_cast<int64_t>(taskIndex(Root))));

  P0.charge(P0.Queues.pushNew(Root, P0.Clock));

  beginRun(G.RootFuture, Gid);
  RunResult RR = TheMachine.run(*this, G.RootFuture);
  // Request latency for the multi-tenant story: every top-level eval is
  // one request, including the ones that end in a breakloop.
  Telem.add(TelemIds.EvalsTotal, P0.Id);
  Telem.record(TelemIds.EvalRequest, P0.Id, RR.ElapsedCycles);
  return translateRunResult(RR, Gid);
}

EvalResult Engine::evalDatum(Value Form, std::string_view Banner) {
  Compiler::Result CR = [&] {
    HostPhaseTimer HostCompile(Telem, Telemetry::Phase::Compile);
    return TheCompiler.compile(Form);
  }();
  if (!CR.ok()) {
    EvalResult R;
    R.K = EvalResult::Kind::CompileError;
    R.Error = CR.Error;
    return R;
  }
  std::string Text =
      Banner.empty() ? valueToString(Form) : std::string(Banner);
  if (Text.size() > 60)
    Text.resize(60);
  return runTopLevel(CR.TopCode, Text);
}

EvalResult Engine::eval(std::string_view Source) {
  Reader Rd(Builder, Source);
  std::string Err;
  std::vector<Value> Forms = [&] {
    HostPhaseTimer HostRead(Telem, Telemetry::Phase::Read);
    return Rd.readAll(Err);
  }();
  if (!Err.empty()) {
    EvalResult R;
    R.K = EvalResult::Kind::ReadError;
    R.Error = Err;
    return R;
  }
  TheCompiler.prescanDefines(Forms);

  EvalResult Last;
  for (Value F : Forms) {
    Last = evalDatum(F);
    if (!Last.ok())
      return Last;
  }
  return Last;
}

std::string Engine::takeOutput() {
  std::string Out = std::move(ConsoleBuf);
  ConsoleBuf.clear();
  return Out;
}

void Engine::resetStats() {
  // Compile stats are properties of the loaded program, not of a run;
  // they survive resets (benchmarks reset between timed runs).
  Stats = EngineStats();
  TheGc.resetStats();
  TheTracer.clear();
  // Telemetry values reset with the run; registrations, metric ids and
  // the per-site child table survive (sites are program facts).
  Telem.clear();
  if (RaceDet)
    RaceDet->clear(); // each measured run gets an independent verdict
  for (unsigned I = 0; I < TheMachine.numProcessors(); ++I) {
    Processor &P = TheMachine.processor(I);
    P.BusyCycles = 0;
    P.IdleCycles = 0;
    P.GcCycles = 0;
    P.ClockAtReset = P.Clock;
    P.Instructions = 0;
    P.Dispatches = 0;
    P.Steals = 0;
    P.StealAttempts = 0;
    P.StealsFailed = 0;
    P.StolenFrom = 0;
    P.TasksStarted = 0;
    P.HandlerActivations = 0;
    P.CheckpointsTaken = 0;
    P.LastCheckpointClock = 0;
    P.TraceIdling = false;
    P.Queues.resetHighWater();
  }
  // Open adaptation windows baselined against the counters just zeroed;
  // re-baseline them so window deltas never go negative. The learned
  // thresholds survive (a reset measures a run, it doesn't unlearn).
  TheMachine.rebaselineAdaptiveWindows();
}
