//===----------------------------------------------------------------------===//
///
/// \file
/// Called primitives: the native tier of Mul-T's user library.
///
/// Called primitives perform their own implicit touches internally (they
/// stand in for library code that ORBIT would compile with touch checks);
/// when one encounters an unresolved future it returns Blocked and the
/// whole primitive re-runs after the future resolves, so primitives must
/// be side-effect-free up to their first possible block or allocation
/// failure.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_VM_PRIMITIVES_H
#define MULT_VM_PRIMITIVES_H

#include "compiler/PrimTable.h"
#include "core/Task.h"
#include "runtime/Value.h"

#include <string>

namespace mult {

class Engine;
struct Processor;

/// Outcome of a primitive call.
struct PrimResult {
  enum class Status : uint8_t {
    Ok,
    BlockedFuture,    ///< V holds the unresolved future; retry after wake.
    BlockedSemaphore, ///< The primitive already parked the task.
    NeedsGc,
    Error,
    Apply, ///< Tail-apply ApplyFn to the elements of ApplyArgs.
  };
  Status S = Status::Ok;
  Value V = Value::unspecified();
  std::string ErrorMsg;
  Value ApplyFn = Value::nil();
  Value ApplyArgs = Value::nil();

  static PrimResult ok(Value V) { return PrimResult{Status::Ok, V, {}, {}, {}}; }
  static PrimResult blockedOn(Value Fut) {
    return PrimResult{Status::BlockedFuture, Fut, {}, {}, {}};
  }
  static PrimResult needsGc() {
    return PrimResult{Status::NeedsGc, Value::unspecified(), {}, {}, {}};
  }
  static PrimResult error(std::string Msg) {
    return PrimResult{Status::Error, Value::unspecified(), std::move(Msg),
                      {}, {}};
  }
};

/// Invokes primitive \p Id with \p Args. Cycle costs are charged to \p P.
PrimResult callPrimitive(PrimId Id, Engine &E, Processor &P, Task &T,
                         const Value *Args, uint32_t Argc);

} // namespace mult

#endif // MULT_VM_PRIMITIVES_H
