//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual-time cost model, in abstract NS32332 instructions.
///
/// Calibration anchors from the paper:
///  - a call to and return from `(lambda () 0)` costs 8 instructions;
///  - an implicit touch is 2 (tbit + beq);
///  - the stack-overflow check at procedure entry is 2 (compare + branch);
///  - the six steps of `(touch (future 0))` cost 15 / 41 / 33 / 37 /
///    26+14w / 30 = ~196 total (Table 1), ~119 when nothing blocks.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_VM_COSTMODEL_H
#define MULT_VM_COSTMODEL_H

#include "compiler/Bytecode.h"

#include <cstdint>

namespace mult {
namespace cost {

// Straight-line ops. Call(4) includes the entry stack-overflow check (2);
// Call + PushFixnum + Return = 4 + 1 + 3 = 8, the paper's trivial call.
inline constexpr uint64_t Push = 1;
inline constexpr uint64_t LocalLoad = 1;
inline constexpr uint64_t FreeLoad = 1;
inline constexpr uint64_t Pop = 1;
inline constexpr uint64_t BoxRef = 1;
inline constexpr uint64_t BoxSet = 2;
inline constexpr uint64_t MakeBoxBase = 2; ///< plus allocation
inline constexpr uint64_t GlobalRef = 2;
inline constexpr uint64_t GlobalSet = 2;
inline constexpr uint64_t Jump = 1;
inline constexpr uint64_t JumpIfFalse = 2;
inline constexpr uint64_t ClosureBase = 3; ///< plus 1/free plus allocation
inline constexpr uint64_t Call = 4;
inline constexpr uint64_t TailCall = 5;
inline constexpr uint64_t Return = 3;
inline constexpr uint64_t Arith = 1;
inline constexpr uint64_t Compare = 1;
inline constexpr uint64_t CarCdr = 1;
inline constexpr uint64_t SetCarCdr = 2;
inline constexpr uint64_t ConsBase = 2; ///< plus allocation
inline constexpr uint64_t Predicate = 1;
inline constexpr uint64_t VectorRef = 3;
inline constexpr uint64_t VectorSet = 3;
inline constexpr uint64_t VectorLen = 2;

/// The famous two instructions: tbit $0,r ; beq.
inline constexpr uint64_t Touch = 2;
/// Chasing a resolved future to its value.
inline constexpr uint64_t TouchChase = 3;

// Future machinery (Table 1 calibration).
/// Step 1 = Closure(3, no frees) + this = 15.
inline constexpr uint64_t FutureEntry = 12;
/// Step 2 = this + future alloc (~4) + task-stack setup (3) +
/// enqueue lock (~6) = ~41.
inline constexpr uint64_t FutureCreateBase = 28;
inline constexpr uint64_t TaskStackSetup = 3;
/// Inlined future: decide + call through (cheap; that is the point).
inline constexpr uint64_t FutureInline = 4;
/// Lazy future: inline + push the seam record.
inline constexpr uint64_t LazySeamPush = 6;

/// Step 3 = touch(2 charged separately) + this + waiter cons alloc (~4) = 33.
inline constexpr uint64_t BlockBase = 27;
/// Step 4 = this + queue lock (~6) = 37.
inline constexpr uint64_t DispatchNewBase = 31;
/// Step 5 = this + lock (~6) = 26, plus 14 per waiter woken.
inline constexpr uint64_t ResolveBase = 20;
inline constexpr uint64_t ResolveWaiter = 14;
/// Step 6 = this + lock (~6) = 30.
inline constexpr uint64_t DispatchSuspBase = 24;

// Scheduling.
//
// Empty-probe cost model (shared by owner and thief paths): a queue's
// count field is a single word, so *emptiness* is tested with one lock-free
// read-and-branch costing QueueEmptyCheck cycles — the queue lock is only
// acquired once the count is known nonzero (TaskQueues::pop*, steal*).
// A thief's probe of a remote queue pays the same check plus one extra
// cycle for the remote (cross-bus) reference, giving StealProbe =
// QueueEmptyCheck + 1. Neither path models a lock acquisition for an
// empty probe; on the Multimax's snoopy bus a read of a shared word is
// exactly one (possibly remote) reference.
inline constexpr uint64_t QueueLockHold = 4;
inline constexpr uint64_t StealBase = 12;
/// Lock-free emptiness check of one's own queue: load count + branch.
inline constexpr uint64_t QueueEmptyCheck = 2;
/// Checking one victim queue for emptiness: the same lock-free check plus
/// one remote bus reference.
inline constexpr uint64_t StealProbe = QueueEmptyCheck + 1;
inline constexpr uint64_t SeamStealBase = 24; ///< plus 1 per 4 copied words
inline constexpr uint64_t IdleTick = 8;
/// Closing one adaptive-threshold window (sched/Adaptive.h). Charged as
/// zero: the counters are ones the simulated hardware already maintains
/// and the decision is a handful of ALU ops amortized over thousands of
/// cycles, riding a scheduler boundary the machine already pays for.
/// Keeping it free also keeps an adaptive run whose controller never
/// moves T cycle-identical to the matching static run, which is what the
/// bench_inlining_threshold ablation isolates.
inline constexpr uint64_t AdaptiveWindow = 0;
inline constexpr uint64_t TaskFinish = 6;

// Checkpointed recovery and byzantine cross-checks (src/fault, PR 8).
/// Capturing one checkpoint record: snapshot header + VM registers; the
/// stack/frame copy is charged on top at 1 cycle per 4 copied words
/// (same memcpy bandwidth convention as SeamStealBase).
inline constexpr uint64_t CheckpointBase = 32;
/// Dispatching one cross-check re-execution to another processor: pick a
/// checker, hand over the spawn closure, compare the results. The
/// re-execution itself is charged as the checked task's own busy total.
inline constexpr uint64_t CrossCheckBase = 48;

// Group/exception machinery.
inline constexpr uint64_t GroupStop = 60;  ///< handler server task runs
inline constexpr uint64_t TerminalLockHold = 20;

inline constexpr uint64_t CallPrimBase = 4;

} // namespace cost

/// Cost of one straight-line instruction (allocation and blocking costs
/// are charged separately by the interpreter).
uint64_t opBaseCost(Op O);

} // namespace mult

#endif // MULT_VM_COSTMODEL_H
