//===----------------------------------------------------------------------===//
///
/// \file
/// Interpreter implementation.
///
//===----------------------------------------------------------------------===//

#include "vm/Interpreter.h"

#include "core/Engine.h"
#include "core/FutureOps.h"
#include "core/LazyFutures.h"
#include "runtime/Printer.h"
#include "support/StrUtil.h"
#include "vm/CostModel.h"
#include "vm/Primitives.h"

#include <cassert>

using namespace mult;

namespace {

/// True for fixnum or flonum.
bool isNumber(Value V) {
  return V.isFixnum() ||
         (V.isObject() && V.asObject()->tag() == TypeTag::Flonum);
}

double numAsDouble(Value V) {
  return V.isFixnum() ? static_cast<double>(V.asFixnum())
                      : V.asObject()->flonumValue();
}

bool isPairV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Pair;
}
bool isVectorV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Vector;
}
bool isClosureV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Closure;
}

} // namespace

StepOutcome mult::interpretTask(Engine &E, Processor &P, Task &T,
                                uint64_t TargetClock) {
  // Complete a deferred blocking/erring instruction (semaphore wake,
  // breakloop resume).
  if (T.HasWakeAction) {
    assert(T.Stack.size() >= T.WakePop && "wake action pops too much");
    T.Stack.resize(T.Stack.size() - T.WakePop);
    T.Stack.push_back(T.WakeValue);
    ++T.Pc;
    T.HasWakeAction = false;
    T.WakeValue = Value::nil();
  }

  EngineStats &S = E.stats();
  std::vector<Value> &Stack = T.Stack;

  // Raise an exception: stop the whole group (paper section 2.3).
  auto Raise = [&](std::string Msg, uint32_t PopCount) -> StepOutcome {
    E.stopGroup(P, T, std::move(Msg), PopCount);
    return StepOutcome::GroupStopped;
  };

  // A touch of a future whose owning group was killed can never resolve;
  // stop the toucher's group (restartable: resume re-raises, kill kills)
  // instead of silently deadlocking. True if the group was stopped.
  auto KilledOwnerStop = [&](Object *Fut) -> bool {
    if (!Fut->slot(Object::FutGroupId).isFixnum())
      return false;
    auto OwnerGid =
        static_cast<GroupId>(Fut->slot(Object::FutGroupId).asFixnum());
    Group *Owner = E.findGroup(OwnerGid);
    if (!Owner || Owner->State != GroupState::Killed)
      return false;
    E.stopGroupRestartable(
        P, T, strFormat("touch of a future belonging to killed group %u",
                        OwnerGid));
    return true;
  };

  // Touch the value at \p Slot in place. Returns Ok(0), Blocked(1),
  // NeedsGc(2) or GroupStopped(3).
  auto TouchSlot = [&](Value &Slot) -> int {
    ++S.TouchesExecuted;
    if (E.faults().armed() && E.faults().shouldErrorTouch()) {
      E.noteFault(P, FaultKind::TouchError);
      E.stopGroupRestartable(P, T, "injected-fault: touch error");
      return 3;
    }
    if (!Slot.isFuture())
      return 0;
    Object *Touched = Slot.pointee();
    Value Out;
    Object *Unresolved = nullptr;
    uint64_t Chase = 0;
    if (futureops::chase(Slot, Out, Unresolved, Chase)) {
      P.charge(Chase);
      Slot = Out;
      if (E.tracer().enabled()) {
        // resolveFuture stamps a negative resolve serial into FutTaskId;
        // echo it so the profiler gets the resolver->toucher edge. A
        // non-negative slot means the future resolved while tracing was
        // off (serial 0 = unknown).
        int64_t Stamp = Touched->slot(Object::FutTaskId).isFixnum()
                            ? Touched->slot(Object::FutTaskId).asFixnum()
                            : 0;
        E.tracer().record(TraceEventKind::TouchHit, P.Id, P.Clock, T.Id, 0,
                          Stamp < 0 ? static_cast<uint64_t>(-Stamp) : 0);
      }
      return 0;
    }
    P.charge(Chase);
    if (KilledOwnerStop(Unresolved))
      return 3;
    if (E.tracer().enabled())
      E.tracer().record(TraceEventKind::TouchBlock, P.Id, P.Clock, T.Id);
    if (!futureops::blockOnFuture(E, P, T, Unresolved))
      return 2;
    return 1;
  };

  while (P.Clock < TargetClock) {
    assert(T.Pc < T.CurCode->Insns.size() && "pc ran off the template");
    const Insn &I = T.CurCode->Insns[T.Pc];
    P.charge(opBaseCost(I.Opcode));
    ++P.Instructions;
    ++S.Instructions;
    uint32_t Base = T.Frames.back().Base;

    switch (I.Opcode) {
    case Op::Const:
      Stack.push_back(T.CurCode->Constants[static_cast<size_t>(I.A)]);
      ++T.Pc;
      break;
    case Op::PushFixnum:
      Stack.push_back(Value::fixnum(I.A));
      ++T.Pc;
      break;
    case Op::PushNil:
      Stack.push_back(Value::nil());
      ++T.Pc;
      break;
    case Op::PushTrue:
      Stack.push_back(Value::trueV());
      ++T.Pc;
      break;
    case Op::PushFalse:
      Stack.push_back(Value::falseV());
      ++T.Pc;
      break;
    case Op::PushUnspecified:
      Stack.push_back(Value::unspecified());
      ++T.Pc;
      break;
    case Op::Local:
      Stack.push_back(Stack[Base + static_cast<uint32_t>(I.A)]);
      ++T.Pc;
      break;
    case Op::SetLocal:
      Stack[Base + static_cast<uint32_t>(I.A)] = Stack.back();
      Stack.pop_back();
      ++T.Pc;
      break;
    case Op::Slide: {
      Value Result = Stack.back();
      Stack.resize(Stack.size() - 1 - static_cast<uint32_t>(I.A));
      Stack.push_back(Result);
      ++T.Pc;
      break;
    }
    case Op::Free: {
      Object *Closure = Stack[Base].asObject();
      Stack.push_back(Closure->closureFree(static_cast<uint32_t>(I.A)));
      ++T.Pc;
      break;
    }
    case Op::Pop:
      Stack.pop_back();
      ++T.Pc;
      break;

    case Op::MakeBox: {
      uint64_t Cycles = 0;
      Object *Box = E.tryAlloc(P, TypeTag::Box, 1, Cycles);
      P.charge(Cycles);
      if (!Box)
        return StepOutcome::NeedsGc;
      Box->setSlot(0, Stack.back());
      Stack.back() = Value::object(Box);
      ++T.Pc;
      break;
    }
    case Op::BoxRef: {
      assert(Stack.back().isObject() &&
             Stack.back().asObject()->tag() == TypeTag::Box);
      E.recordAccess(P, T, Stack.back().asObject(), 0, /*IsWrite=*/false);
      Stack.back() = Stack.back().asObject()->boxValue();
      ++T.Pc;
      break;
    }
    case Op::BoxSet: {
      Value V = Stack.back();
      Stack.pop_back();
      Value Box = Stack.back();
      assert(Box.isObject() && Box.asObject()->tag() == TypeTag::Box);
      E.recordAccess(P, T, Box.asObject(), 0, /*IsWrite=*/true);
      Box.asObject()->setBoxValue(V);
      Stack.back() = Value::unspecified();
      ++T.Pc;
      break;
    }

    case Op::GlobalRef: {
      Object *Sym =
          T.CurCode->Constants[static_cast<size_t>(I.A)].asObject();
      Value V = Sym->globalValue();
      if (V.isUnbound())
        return Raise(strFormat("unbound variable: %s",
                               std::string(Sym->symbolText()).c_str()),
                     0);
      Stack.push_back(V);
      ++T.Pc;
      break;
    }
    case Op::GlobalSet: {
      Object *Sym =
          T.CurCode->Constants[static_cast<size_t>(I.A)].asObject();
      if (Sym->globalValue().isUnbound())
        return Raise(strFormat("set! of unbound variable: %s",
                               std::string(Sym->symbolText()).c_str()),
                     1);
      Sym->setGlobalValue(Stack.back());
      Stack.back() = Value::unspecified();
      ++T.Pc;
      break;
    }
    case Op::GlobalDefine: {
      Object *Sym =
          T.CurCode->Constants[static_cast<size_t>(I.A)].asObject();
      Sym->setGlobalValue(Stack.back());
      Stack.back() = Value::unspecified();
      ++T.Pc;
      break;
    }

    case Op::Closure: {
      auto NFree = static_cast<uint32_t>(I.B);
      uint64_t Cycles = NFree;
      Object *Clo = E.tryAlloc(P, TypeTag::Closure, 1 + NFree, Cycles);
      P.charge(Cycles);
      if (!Clo)
        return StepOutcome::NeedsGc;
      Clo->setSlot(0, T.CurCode->Constants[static_cast<size_t>(I.A)]);
      for (uint32_t K = 0; K < NFree; ++K)
        Clo->setSlot(NFree - K, Stack[Stack.size() - 1 - K]);
      Stack.resize(Stack.size() - NFree);
      Stack.push_back(Value::object(Clo));
      ++T.Pc;
      break;
    }

    case Op::Jump:
      T.Pc = static_cast<uint32_t>(I.A);
      break;
    case Op::JumpIfFalse: {
      Value V = Stack.back();
      Stack.pop_back();
      if (V.isFalse())
        T.Pc = static_cast<uint32_t>(I.A);
      else
        ++T.Pc;
      break;
    }

    case Op::Call:
    case Op::TailCall: {
      auto N = static_cast<uint32_t>(I.A);
      size_t FnIdx = Stack.size() - 1 - N;
      Value Fn = Stack[FnIdx];
      if (!isClosureV(Fn))
        return Raise(strFormat("attempt to call a non-procedure: %s",
                               valueToString(Fn).c_str()),
                     N + 1);
      const Code *Callee = Fn.asObject()->closureCode();
      if (!Callee->Variadic && Callee->NumParams != N)
        return Raise(strFormat("%s called with %u arguments, wants %u",
                               Callee->Name.c_str(), N, Callee->NumParams),
                     N + 1);
      // The procedure-entry stack-overflow check (cost inside Call).
      if (FnIdx + Callee->MaxFrameWords > E.config().MaxStackWords)
        return Raise(strFormat("stack overflow in %s", Callee->Name.c_str()),
                     N + 1);
      if (I.Opcode == Op::Call) {
        Frame F;
        F.CallerCode = T.CurCode;
        F.RetPc = T.Pc + 1;
        F.Base = static_cast<uint32_t>(FnIdx);
        T.Frames.push_back(F);
      } else {
        // Reuse the current frame: slide the callee and arguments down.
        for (uint32_t K = 0; K <= N; ++K)
          Stack[Base + K] = Stack[FnIdx + K];
        Stack.resize(Base + N + 1);
        // ORBIT compiles self-recursive tail calls (named-let loops) to
        // plain branches; refund the call overhead down to a jump.
        if (Callee == T.CurCode)
          P.Clock -= cost::TailCall - cost::Jump,
              P.BusyCycles -= cost::TailCall - cost::Jump;
      }
      T.CurCode = Callee;
      T.Pc = 0;
      break;
    }

    case Op::Return: {
      {
        // Byzantine-fault hook: a *finishing* return is the moment a
        // result becomes externally visible (resolves the task's result
        // future or a stolen seam's future), so it is where a lying
        // processor corrupts and where the cross-check compares. Runs
        // before any mutation: a detection stops the group restartably
        // and this instruction re-executes honestly on resume.
        Frame &FTop = T.Frames.back();
        bool Finishing =
            T.Frames.size() == 1 || (FTop.IsSeam && FTop.SeamStolen);
        if (Finishing && E.faults().armed() && E.checkByzantineReturn(P, T))
          return StepOutcome::GroupStopped;
      }
      Value Result = Stack.back();
      Stack.pop_back();
      Frame &F = T.Frames.back();
      if (F.IsSeam) {
        if (lazyfutures::onSeamReturn(E, P, T, F, Result))
          return StepOutcome::TaskDone;
      }
      Frame Saved = F;
      T.Frames.pop_back();
      if (T.Frames.empty()) {
        futureops::taskFinished(E, P, T, Result);
        return StepOutcome::TaskDone;
      }
      Stack.resize(Saved.Base);
      Stack.push_back(Result);
      T.CurCode = Saved.CallerCode;
      T.Pc = Saved.RetPc;
      break;
    }

    case Op::TouchStack: {
      Value &Slot = Stack[Stack.size() - 1 - static_cast<uint32_t>(I.A)];
      int R = TouchSlot(Slot);
      if (R == 1)
        return StepOutcome::Blocked;
      if (R == 2)
        return StepOutcome::NeedsGc;
      if (R == 3)
        return StepOutcome::GroupStopped;
      ++T.Pc;
      break;
    }
    case Op::TouchLocal: {
      Value &Slot = Stack[Base + static_cast<uint32_t>(I.A)];
      int R = TouchSlot(Slot);
      if (R == 1)
        return StepOutcome::Blocked;
      if (R == 2)
        return StepOutcome::NeedsGc;
      if (R == 3)
        return StepOutcome::GroupStopped;
      Stack.push_back(Slot);
      ++T.Pc;
      break;
    }
    case Op::TouchBack: {
      Value &Slot = Stack[Stack.size() - 1 - static_cast<uint32_t>(I.A)];
      int R = TouchSlot(Slot);
      if (R == 1)
        return StepOutcome::Blocked;
      if (R == 2)
        return StepOutcome::NeedsGc;
      if (R == 3)
        return StepOutcome::GroupStopped;
      // Write the resolved value back to the variable's frame slot, so
      // the optimizer's once-touched facts stay true.
      Stack[Base + static_cast<uint32_t>(I.B)] = Slot;
      ++T.Pc;
      break;
    }

    case Op::FutureOp: {
      // Step 1 of Table 1: the thunk was made by the preceding Closure
      // instruction; *future dispatch is this op's base cost.
      S.Steps.MakeThunkCycles += opBaseCost(Op::FutureOp) + cost::ClosureBase;
      if (E.faults().armed() && E.faults().shouldErrorSpawn()) {
        E.noteFault(P, FaultKind::SpawnError);
        E.stopGroupRestartable(P, T, "injected-fault: future spawn error");
        return StepOutcome::GroupStopped;
      }
      if (!futureops::onFutureOp(E, P, T))
        return StepOutcome::NeedsGc;
      break; // Pc already advanced / frame entered
    }

    case Op::Add:
    case Op::Sub:
    case Op::Mul: {
      Value B2 = Stack[Stack.size() - 1];
      Value A2 = Stack[Stack.size() - 2];
      if (A2.isFixnum() && B2.isFixnum()) {
        int64_t X = A2.asFixnum(), Y = B2.asFixnum(), R = 0;
        bool Overflow = false;
        switch (I.Opcode) {
        case Op::Add:
          Overflow = __builtin_add_overflow(X, Y, &R);
          break;
        case Op::Sub:
          Overflow = __builtin_sub_overflow(X, Y, &R);
          break;
        default:
          Overflow = __builtin_mul_overflow(X, Y, &R);
          break;
        }
        if (!Overflow && Value::fitsFixnum(R)) {
          Stack.pop_back();
          Stack.back() = Value::fixnum(R);
          ++T.Pc;
          break;
        }
      }
      if (!isNumber(A2) || !isNumber(B2))
        return Raise(strFormat("%s: operand is not a number",
                               opName(I.Opcode)),
                     2);
      // Flonum (or overflowing fixnum) path: allocate the boxed result
      // first so the instruction stays restartable.
      uint64_t Cycles = 0;
      Object *F = E.tryAlloc(P, TypeTag::Flonum, 1, Cycles, Object::FlagRaw);
      P.charge(Cycles);
      if (!F)
        return StepOutcome::NeedsGc;
      double X = numAsDouble(A2), Y = numAsDouble(B2), R;
      switch (I.Opcode) {
      case Op::Add:
        R = X + Y;
        break;
      case Op::Sub:
        R = X - Y;
        break;
      default:
        R = X * Y;
        break;
      }
      F->setFlonumValue(R);
      Stack.pop_back();
      Stack.back() = Value::object(F);
      ++T.Pc;
      break;
    }

    case Op::Quotient:
    case Op::Remainder: {
      Value B2 = Stack[Stack.size() - 1];
      Value A2 = Stack[Stack.size() - 2];
      if (!A2.isFixnum() || !B2.isFixnum())
        return Raise(strFormat("%s: operands must be fixnums",
                               opName(I.Opcode)),
                     2);
      if (B2.asFixnum() == 0)
        return Raise("division by zero", 2);
      int64_t R = I.Opcode == Op::Quotient
                      ? A2.asFixnum() / B2.asFixnum()
                      : A2.asFixnum() % B2.asFixnum();
      Stack.pop_back();
      Stack.back() = Value::fixnum(R);
      ++T.Pc;
      break;
    }

    case Op::NumLt:
    case Op::NumLe:
    case Op::NumGt:
    case Op::NumGe:
    case Op::NumEq: {
      Value B2 = Stack[Stack.size() - 1];
      Value A2 = Stack[Stack.size() - 2];
      bool R;
      if (A2.isFixnum() && B2.isFixnum()) {
        int64_t X = A2.asFixnum(), Y = B2.asFixnum();
        switch (I.Opcode) {
        case Op::NumLt: R = X < Y; break;
        case Op::NumLe: R = X <= Y; break;
        case Op::NumGt: R = X > Y; break;
        case Op::NumGe: R = X >= Y; break;
        default: R = X == Y; break;
        }
      } else if (isNumber(A2) && isNumber(B2)) {
        double X = numAsDouble(A2), Y = numAsDouble(B2);
        switch (I.Opcode) {
        case Op::NumLt: R = X < Y; break;
        case Op::NumLe: R = X <= Y; break;
        case Op::NumGt: R = X > Y; break;
        case Op::NumGe: R = X >= Y; break;
        default: R = X == Y; break;
        }
      } else {
        return Raise(strFormat("%s: operand is not a number",
                               opName(I.Opcode)),
                     2);
      }
      Stack.pop_back();
      Stack.back() = Value::boolean(R);
      ++T.Pc;
      break;
    }

    case Op::Eq: {
      Value B2 = Stack.back();
      Stack.pop_back();
      Stack.back() = Value::boolean(Stack.back().identical(B2));
      ++T.Pc;
      break;
    }

    case Op::Cons: {
      uint64_t Cycles = 0;
      Object *Pair = E.tryAlloc(P, TypeTag::Pair, 2, Cycles);
      P.charge(Cycles);
      if (!Pair)
        return StepOutcome::NeedsGc;
      Pair->setCdr(Stack.back());
      Stack.pop_back();
      Pair->setCar(Stack.back());
      Stack.back() = Value::object(Pair);
      ++T.Pc;
      break;
    }
    case Op::Car:
    case Op::Cdr: {
      Value V = Stack.back();
      if (!isPairV(V))
        return Raise(strFormat("%s of a non-pair: %s", opName(I.Opcode),
                               valueToString(V).c_str()),
                     1);
      Stack.back() =
          I.Opcode == Op::Car ? V.asObject()->car() : V.asObject()->cdr();
      ++T.Pc;
      break;
    }
    case Op::SetCar:
    case Op::SetCdr: {
      Value V = Stack.back();
      Value PairV = Stack[Stack.size() - 2];
      if (!isPairV(PairV))
        return Raise(strFormat("%s of a non-pair: %s", opName(I.Opcode),
                               valueToString(PairV).c_str()),
                     2);
      if (I.Opcode == Op::SetCar)
        PairV.asObject()->setCar(V);
      else
        PairV.asObject()->setCdr(V);
      Stack.pop_back();
      Stack.back() = Value::unspecified();
      ++T.Pc;
      break;
    }

    case Op::NullP:
      Stack.back() = Value::boolean(Stack.back().isNil());
      ++T.Pc;
      break;
    case Op::PairP:
      Stack.back() = Value::boolean(isPairV(Stack.back()));
      ++T.Pc;
      break;
    case Op::Not:
      Stack.back() = Value::boolean(Stack.back().isFalse());
      ++T.Pc;
      break;

    case Op::VectorRef: {
      Value Idx = Stack.back();
      Value Vec = Stack[Stack.size() - 2];
      if (!isVectorV(Vec) || !Idx.isFixnum())
        return Raise("vector-ref: bad vector or index", 2);
      int64_t K = Idx.asFixnum();
      if (K < 0 || K >= Vec.asObject()->vectorLength())
        return Raise(strFormat("vector-ref: index %lld out of range",
                               static_cast<long long>(K)),
                     2);
      E.recordAccess(P, T, Vec.asObject(), static_cast<uint32_t>(K),
                     /*IsWrite=*/false);
      Stack.pop_back();
      Stack.back() = Vec.asObject()->vectorRef(K);
      ++T.Pc;
      break;
    }
    case Op::VectorSet: {
      Value V = Stack.back();
      Value Idx = Stack[Stack.size() - 2];
      Value Vec = Stack[Stack.size() - 3];
      if (!isVectorV(Vec) || !Idx.isFixnum())
        return Raise("vector-set!: bad vector or index", 3);
      int64_t K = Idx.asFixnum();
      if (K < 0 || K >= Vec.asObject()->vectorLength())
        return Raise(strFormat("vector-set!: index %lld out of range",
                               static_cast<long long>(K)),
                     3);
      E.recordAccess(P, T, Vec.asObject(), static_cast<uint32_t>(K),
                     /*IsWrite=*/true);
      Vec.asObject()->vectorSet(K, V);
      Stack.resize(Stack.size() - 3);
      Stack.push_back(Value::unspecified());
      ++T.Pc;
      break;
    }
    case Op::VectorLength: {
      Value Vec = Stack.back();
      if (!isVectorV(Vec))
        return Raise("vector-length: not a vector", 1);
      Stack.back() = Value::fixnum(Vec.asObject()->vectorLength());
      ++T.Pc;
      break;
    }

    case Op::CallPrim: {
      auto Argc = static_cast<uint32_t>(I.B);
      const Value *Args = Stack.data() + (Stack.size() - Argc);
      PrimResult R = callPrimitive(static_cast<PrimId>(I.A), E, P, T, Args,
                                   Argc);
      switch (R.S) {
      case PrimResult::Status::Ok:
        Stack.resize(Stack.size() - Argc);
        Stack.push_back(R.V);
        ++T.Pc;
        break;
      case PrimResult::Status::BlockedFuture: {
        assert(R.V.isFuture());
        if (KilledOwnerStop(R.V.pointee()))
          return StepOutcome::GroupStopped;
        if (!futureops::blockOnFuture(E, P, T, R.V.pointee()))
          return StepOutcome::NeedsGc;
        return StepOutcome::Blocked;
      }
      case PrimResult::Status::BlockedSemaphore:
        return StepOutcome::Blocked;
      case PrimResult::Status::NeedsGc:
        return StepOutcome::NeedsGc;
      case PrimResult::Status::Error:
        return Raise(std::move(R.ErrorMsg), Argc);
      case PrimResult::Status::Apply: {
        // Replace the CallPrim with a real call: [fn a1..an] then enter.
        Stack.resize(Stack.size() - Argc);
        Stack.push_back(R.ApplyFn);
        uint32_t N = 0;
        for (Value L = R.ApplyArgs; !L.isNil(); L = L.asObject()->cdr()) {
          Stack.push_back(L.asObject()->car());
          ++N;
        }
        P.charge(2 + N);
        if (!isClosureV(R.ApplyFn))
          return Raise("apply: not a procedure", N + 1);
        const Code *Callee = R.ApplyFn.asObject()->closureCode();
        if (!Callee->Variadic && Callee->NumParams != N)
          return Raise(strFormat("%s applied to %u arguments, wants %u",
                                 Callee->Name.c_str(), N,
                                 Callee->NumParams),
                       N + 1);
        Frame F;
        F.CallerCode = T.CurCode;
        F.RetPc = T.Pc + 1;
        F.Base = static_cast<uint32_t>(Stack.size() - 1 - N);
        T.Frames.push_back(F);
        T.CurCode = Callee;
        T.Pc = 0;
        break;
      }
      }
      break;
    }

    case Op::PrimApplyVar: {
      // Body of a variadic primitive wrapper: the frame's arguments are
      // everything above the closure slot.
      auto Id = static_cast<PrimId>(I.A);
      auto Argc = static_cast<uint32_t>(Stack.size() - Base - 1);
      const PrimInfo &Info = primInfo(Id);
      if (static_cast<int>(Argc) < Info.MinArgs ||
          (Info.MaxArgs >= 0 && static_cast<int>(Argc) > Info.MaxArgs))
        return Raise(strFormat("%s: wrong number of arguments (%u)",
                               Info.Name, Argc),
                     0);
      const Value *Args = Stack.data() + Base + 1;
      PrimResult R = callPrimitive(Id, E, P, T, Args, Argc);
      switch (R.S) {
      case PrimResult::Status::Ok:
        Stack.push_back(R.V); // Return resizes to Base
        ++T.Pc;
        break;
      case PrimResult::Status::BlockedFuture:
        assert(R.V.isFuture());
        if (KilledOwnerStop(R.V.pointee()))
          return StepOutcome::GroupStopped;
        if (!futureops::blockOnFuture(E, P, T, R.V.pointee()))
          return StepOutcome::NeedsGc;
        return StepOutcome::Blocked;
      case PrimResult::Status::BlockedSemaphore:
        return StepOutcome::Blocked;
      case PrimResult::Status::NeedsGc:
        return StepOutcome::NeedsGc;
      case PrimResult::Status::Error:
        return Raise(std::move(R.ErrorMsg), 0);
      case PrimResult::Status::Apply:
        return Raise("apply through a variadic wrapper is not supported",
                     0);
      }
      break;
    }
    }
  }
  return StepOutcome::TimeSlice;
}
