//===----------------------------------------------------------------------===//
///
/// \file
/// Cost model implementation.
///
//===----------------------------------------------------------------------===//

#include "vm/CostModel.h"

using namespace mult;

uint64_t mult::opBaseCost(Op O) {
  switch (O) {
  case Op::Const:
  case Op::PushFixnum:
  case Op::PushNil:
  case Op::PushTrue:
  case Op::PushFalse:
  case Op::PushUnspecified:
    return cost::Push;
  case Op::Local:
  case Op::SetLocal:
    return cost::LocalLoad;
  case Op::Slide:
    return 1;
  case Op::PrimApplyVar:
    return cost::CallPrimBase;
  case Op::Free:
    return cost::FreeLoad;
  case Op::Pop:
    return cost::Pop;
  case Op::MakeBox:
    return cost::MakeBoxBase;
  case Op::BoxRef:
    return cost::BoxRef;
  case Op::BoxSet:
    return cost::BoxSet;
  case Op::GlobalRef:
    return cost::GlobalRef;
  case Op::GlobalSet:
  case Op::GlobalDefine:
    return cost::GlobalSet;
  case Op::Closure:
    return cost::ClosureBase;
  case Op::Jump:
    return cost::Jump;
  case Op::JumpIfFalse:
    return cost::JumpIfFalse;
  case Op::Call:
    return cost::Call;
  case Op::TailCall:
    return cost::TailCall;
  case Op::Return:
    return cost::Return;
  case Op::TouchStack:
  case Op::TouchLocal:
  case Op::TouchBack:
    return cost::Touch;
  case Op::FutureOp:
    return cost::FutureEntry;
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Quotient:
  case Op::Remainder:
    return cost::Arith;
  case Op::NumLt:
  case Op::NumLe:
  case Op::NumGt:
  case Op::NumGe:
  case Op::NumEq:
  case Op::Eq:
    return cost::Compare;
  case Op::Cons:
    return cost::ConsBase;
  case Op::Car:
  case Op::Cdr:
    return cost::CarCdr;
  case Op::SetCar:
  case Op::SetCdr:
    return cost::SetCarCdr;
  case Op::NullP:
  case Op::PairP:
  case Op::Not:
    return cost::Predicate;
  case Op::VectorRef:
    return cost::VectorRef;
  case Op::VectorSet:
    return cost::VectorSet;
  case Op::VectorLength:
    return cost::VectorLen;
  case Op::CallPrim:
    return cost::CallPrimBase;
  }
  return 1;
}
