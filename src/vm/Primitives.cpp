//===----------------------------------------------------------------------===//
///
/// \file
/// Called-primitive implementations.
///
/// Conventions (see Primitives.h): a primitive must not perform side
/// effects before its last possible Blocked/NeedsGc return, because those
/// statuses re-run the whole primitive. Internal touches stand in for the
/// implicit touches library code would have compiled in; they cost two
/// cycles each (zero in T3 mode, where futures cannot exist).
///
//===----------------------------------------------------------------------===//

#include "vm/Primitives.h"

#include "core/DynamicEnv.h"
#include "core/Engine.h"
#include "core/FutureOps.h"
#include "core/Semaphore.h"
#include "runtime/Printer.h"
#include "support/StrUtil.h"
#include "vm/CostModel.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace mult;

namespace {

struct PrimCtx {
  Engine &E;
  Processor &P;
  Task &T;
  uint64_t TouchCost;
};

/// Touches \p V in place. Returns false (with \p R filled) when the
/// primitive must block.
bool touchOrBlock(PrimCtx &C, Value &V, PrimResult &R) {
  C.P.charge(C.TouchCost);
  ++C.E.stats().TouchesExecuted;
  if (!V.isFuture())
    return true;
  Value Out;
  Object *Unresolved = nullptr;
  uint64_t Chase = 0;
  bool Ok = futureops::chase(V, Out, Unresolved, Chase);
  C.P.charge(Chase);
  if (!Ok) {
    R = PrimResult::blockedOn(Value::future(Unresolved));
    return false;
  }
  V = Out;
  return true;
}

Object *allocOrNull(PrimCtx &C, TypeTag Tag, uint32_t SizeWords,
                    uint8_t Flags = 0) {
  uint64_t Cycles = 0;
  Object *O = C.E.tryAlloc(C.P, Tag, SizeWords, Cycles, Flags);
  C.P.charge(Cycles);
  return O;
}

bool isPairV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Pair;
}
bool isSymbolV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Symbol;
}
bool isStringV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::String;
}
bool isVectorV(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Vector;
}
bool isNumberV(Value V) {
  return V.isFixnum() ||
         (V.isObject() && V.asObject()->tag() == TypeTag::Flonum);
}
double numAsDouble(Value V) {
  return V.isFixnum() ? static_cast<double>(V.asFixnum())
                      : V.asObject()->flonumValue();
}

/// Collects a proper list into \p Out, touching every spine cell.
/// Returns false with \p R set (Blocked) or \p Err set (improper list).
bool listToVec(PrimCtx &C, Value L, std::vector<Value> &Out, PrimResult &R,
               bool &Improper) {
  Improper = false;
  for (;;) {
    if (!touchOrBlock(C, L, R))
      return false;
    if (L.isNil())
      return true;
    if (!isPairV(L)) {
      Improper = true;
      return false;
    }
    Out.push_back(L.asObject()->car());
    L = L.asObject()->cdr();
    C.P.charge(1);
  }
}

/// Builds a list of \p Elems with tail \p Tail; null on allocation failure.
bool buildList(PrimCtx &C, const std::vector<Value> &Elems, Value Tail,
               Value &Out) {
  Value Acc = Tail;
  for (size_t I = Elems.size(); I > 0; --I) {
    Object *Pair = allocOrNull(C, TypeTag::Pair, 2);
    if (!Pair)
      return false;
    Pair->setCar(Elems[I - 1]);
    Pair->setCdr(Acc);
    Acc = Value::object(Pair);
  }
  Out = Acc;
  return true;
}

Value makeStringValue(PrimCtx &C, std::string_view S, bool &Failed) {
  Object *O = allocOrNull(C, TypeTag::String, stringPayloadWords(S.size()),
                          Object::FlagRaw);
  if (!O) {
    Failed = true;
    return Value::nil();
  }
  O->payload()[0] = S.size();
  std::memcpy(O->stringData(), S.data(), S.size());
  Failed = false;
  return Value::object(O);
}

/// Structural equality that chases futures inside structures, the way
/// library code compiled with implicit touches would. Returns 0 equal,
/// 1 unequal, 2 blocked (R filled).
int equalTouching(PrimCtx &C, Value A, Value B, PrimResult &R,
                  unsigned Depth) {
  if (Depth == 0)
    return 1;
  if (!touchOrBlock(C, A, R) || !touchOrBlock(C, B, R))
    return 2;
  if (A.identical(B))
    return 0;
  if (!A.isObject() || !B.isObject())
    return 1;
  Object *OA = A.asObject();
  Object *OB = B.asObject();
  if (OA->tag() != OB->tag())
    return 1;
  switch (OA->tag()) {
  case TypeTag::Pair: {
    int Car = equalTouching(C, OA->car(), OB->car(), R, Depth - 1);
    if (Car != 0)
      return Car;
    return equalTouching(C, OA->cdr(), OB->cdr(), R, Depth - 1);
  }
  case TypeTag::Vector: {
    if (OA->vectorLength() != OB->vectorLength())
      return 1;
    for (int64_t I = 0, N = OA->vectorLength(); I < N; ++I) {
      int E = equalTouching(C, OA->vectorRef(I), OB->vectorRef(I), R,
                            Depth - 1);
      if (E != 0)
        return E;
    }
    return 0;
  }
  case TypeTag::String:
    return OA->stringView() == OB->stringView() ? 0 : 1;
  case TypeTag::Flonum:
    return OA->flonumValue() == OB->flonumValue() ? 0 : 1;
  default:
    return 1;
  }
}

PrimResult primDisplay(PrimCtx &C, Value V, bool Machine) {
  PrimResult R;
  if (!touchOrBlock(C, V, R))
    return R;
  // Only the distinguished terminal task's lock holder may write
  // (paper section 2.3); modelled as a virtual lock on the console.
  C.P.charge(C.E.terminalLock().acquire(C.P.Clock, cost::TerminalLockHold));
  C.T.DidIo = true; // console output cannot be replayed by recovery
  ++C.T.SideEffectEpoch;
  PrintOptions Opts;
  Opts.Machine = Machine;
  printValue(C.E.console(), V, Opts);
  return PrimResult::ok(Value::unspecified());
}

} // namespace

PrimResult mult::callPrimitive(PrimId Id, Engine &E, Processor &P, Task &T,
                               const Value *Args, uint32_t Argc) {
  PrimCtx C{E, P, T, E.config().EmitTouchChecks ? cost::Touch : 0};
  P.charge(primInfo(Id).BaseCost);
  PrimResult R;

  switch (Id) {
  case PrimId::List: {
    std::vector<Value> Elems(Args, Args + Argc);
    Value Out;
    if (!buildList(C, Elems, Value::nil(), Out))
      return PrimResult::needsGc();
    P.charge(Argc);
    return PrimResult::ok(Out);
  }

  case PrimId::Append: {
    if (Argc == 0)
      return PrimResult::ok(Value::nil());
    Value Out = Args[Argc - 1];
    for (size_t I = Argc - 1; I > 0; --I) {
      std::vector<Value> Elems;
      bool Improper;
      if (!listToVec(C, Args[I - 1], Elems, R, Improper))
        return Improper ? PrimResult::error("append: improper list") : R;
      if (!buildList(C, Elems, Out, Out))
        return PrimResult::needsGc();
      P.charge(Elems.size() * 2);
    }
    return PrimResult::ok(Out);
  }

  case PrimId::Reverse: {
    std::vector<Value> Elems;
    bool Improper;
    if (!listToVec(C, Args[0], Elems, R, Improper))
      return Improper ? PrimResult::error("reverse: improper list") : R;
    std::reverse(Elems.begin(), Elems.end());
    Value Out;
    if (!buildList(C, Elems, Value::nil(), Out))
      return PrimResult::needsGc();
    P.charge(Elems.size());
    return PrimResult::ok(Out);
  }

  case PrimId::Length: {
    Value L = Args[0];
    int64_t N = 0;
    for (;;) {
      if (!touchOrBlock(C, L, R))
        return R;
      if (L.isNil())
        return PrimResult::ok(Value::fixnum(N));
      if (!isPairV(L))
        return PrimResult::error("length: improper list");
      ++N;
      L = L.asObject()->cdr();
      P.charge(1);
    }
  }

  case PrimId::Memq:
  case PrimId::Member: {
    Value Key = Args[0];
    if (!touchOrBlock(C, Key, R))
      return R;
    Value L = Args[1];
    for (;;) {
      if (!touchOrBlock(C, L, R))
        return R;
      if (L.isNil())
        return PrimResult::ok(Value::falseV());
      if (!isPairV(L))
        return PrimResult::error("memq/member: improper list");
      Value Head = L.asObject()->car();
      if (!touchOrBlock(C, Head, R))
        return R;
      bool Hit;
      if (Id == PrimId::Memq) {
        Hit = Head.identical(Key);
      } else {
        int Eq = equalTouching(C, Head, Key, R, 100000);
        if (Eq == 2)
          return R;
        Hit = Eq == 0;
      }
      if (Hit)
        return PrimResult::ok(L);
      L = L.asObject()->cdr();
      P.charge(2);
    }
  }

  case PrimId::Assq:
  case PrimId::Assoc: {
    Value Key = Args[0];
    if (!touchOrBlock(C, Key, R))
      return R;
    Value L = Args[1];
    for (;;) {
      if (!touchOrBlock(C, L, R))
        return R;
      if (L.isNil())
        return PrimResult::ok(Value::falseV());
      if (!isPairV(L))
        return PrimResult::error("assq/assoc: improper list");
      Value Entry = L.asObject()->car();
      if (!touchOrBlock(C, Entry, R))
        return R;
      if (isPairV(Entry)) {
        Value EKey = Entry.asObject()->car();
        if (!touchOrBlock(C, EKey, R))
          return R;
        bool Hit;
        if (Id == PrimId::Assq) {
          Hit = EKey.identical(Key);
        } else {
          int Eq = equalTouching(C, EKey, Key, R, 100000);
          if (Eq == 2)
            return R;
          Hit = Eq == 0;
        }
        if (Hit)
          return PrimResult::ok(Entry);
      }
      L = L.asObject()->cdr();
      P.charge(3);
    }
  }

  case PrimId::EqualP: {
    int Eq = equalTouching(C, Args[0], Args[1], R, 100000);
    if (Eq == 2)
      return R;
    P.charge(4);
    return PrimResult::ok(Value::boolean(Eq == 0));
  }

  case PrimId::AtomP:
  case PrimId::SymbolP:
  case PrimId::NumberP:
  case PrimId::StringP:
  case PrimId::VectorP:
  case PrimId::BooleanP:
  case PrimId::ProcedureP:
  case PrimId::CharP: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    bool Res = false;
    switch (Id) {
    case PrimId::AtomP: Res = !isPairV(V); break;
    case PrimId::SymbolP: Res = isSymbolV(V); break;
    case PrimId::NumberP: Res = isNumberV(V); break;
    case PrimId::StringP: Res = isStringV(V); break;
    case PrimId::VectorP: Res = isVectorV(V); break;
    case PrimId::BooleanP: Res = V.isBoolean(); break;
    case PrimId::ProcedureP:
      Res = V.isObject() && V.asObject()->tag() == TypeTag::Closure;
      break;
    default: Res = V.isChar(); break;
    }
    return PrimResult::ok(Value::boolean(Res));
  }

  case PrimId::ZeroP:
  case PrimId::NegativeP:
  case PrimId::PositiveP:
  case PrimId::OddP:
  case PrimId::EvenP: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!isNumberV(V))
      return PrimResult::error(
          strFormat("%s: not a number", primInfo(Id).Name));
    if (Id == PrimId::OddP || Id == PrimId::EvenP) {
      if (!V.isFixnum())
        return PrimResult::error("odd?/even?: not a fixnum");
      bool Odd = (V.asFixnum() % 2) != 0;
      return PrimResult::ok(Value::boolean(Id == PrimId::OddP ? Odd : !Odd));
    }
    double D = numAsDouble(V);
    bool Res = Id == PrimId::ZeroP ? D == 0
               : Id == PrimId::NegativeP ? D < 0
                                         : D > 0;
    return PrimResult::ok(Value::boolean(Res));
  }

  case PrimId::Abs: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (V.isFixnum())
      return PrimResult::ok(Value::fixnum(std::abs(V.asFixnum())));
    if (!isNumberV(V))
      return PrimResult::error("abs: not a number");
    Object *F = allocOrNull(C, TypeTag::Flonum, 1, Object::FlagRaw);
    if (!F)
      return PrimResult::needsGc();
    F->setFlonumValue(std::abs(V.asObject()->flonumValue()));
    return PrimResult::ok(Value::object(F));
  }

  case PrimId::Min:
  case PrimId::Max: {
    Value Best = Args[0];
    if (!touchOrBlock(C, Best, R))
      return R;
    if (!isNumberV(Best))
      return PrimResult::error("min/max: not a number");
    for (uint32_t I = 1; I < Argc; ++I) {
      Value V = Args[I];
      if (!touchOrBlock(C, V, R))
        return R;
      if (!isNumberV(V))
        return PrimResult::error("min/max: not a number");
      bool Take = Id == PrimId::Min ? numAsDouble(V) < numAsDouble(Best)
                                    : numAsDouble(V) > numAsDouble(Best);
      if (Take)
        Best = V;
      P.charge(2);
    }
    return PrimResult::ok(Best);
  }

  case PrimId::Modulo: {
    Value A = Args[0], B = Args[1];
    if (!touchOrBlock(C, A, R) || !touchOrBlock(C, B, R))
      return R;
    if (!A.isFixnum() || !B.isFixnum())
      return PrimResult::error("modulo: operands must be fixnums");
    if (B.asFixnum() == 0)
      return PrimResult::error("modulo: division by zero");
    int64_t M = A.asFixnum() % B.asFixnum();
    if (M != 0 && ((M < 0) != (B.asFixnum() < 0)))
      M += B.asFixnum();
    return PrimResult::ok(Value::fixnum(M));
  }

  case PrimId::Divide: {
    Value Acc = Args[0];
    if (!touchOrBlock(C, Acc, R))
      return R;
    if (!isNumberV(Acc))
      return PrimResult::error("/: not a number");
    double X = numAsDouble(Acc);
    if (Argc == 1) {
      if (X == 0)
        return PrimResult::error("/: division by zero");
      X = 1.0 / X;
    }
    for (uint32_t I = 1; I < Argc; ++I) {
      Value V = Args[I];
      if (!touchOrBlock(C, V, R))
        return R;
      if (!isNumberV(V))
        return PrimResult::error("/: not a number");
      double D = numAsDouble(V);
      if (D == 0)
        return PrimResult::error("/: division by zero");
      X /= D;
      P.charge(6);
    }
    Object *F = allocOrNull(C, TypeTag::Flonum, 1, Object::FlagRaw);
    if (!F)
      return PrimResult::needsGc();
    F->setFlonumValue(X);
    return PrimResult::ok(Value::object(F));
  }

  case PrimId::Get: {
    Value Sym = Args[0], Key = Args[1];
    if (!touchOrBlock(C, Sym, R) || !touchOrBlock(C, Key, R))
      return R;
    if (!isSymbolV(Sym))
      return PrimResult::error("get: not a symbol");
    for (Value L = Sym.asObject()->plist(); !L.isNil();
         L = L.asObject()->cdr()) {
      Value Entry = L.asObject()->car();
      if (Entry.asObject()->car().identical(Key))
        return PrimResult::ok(Entry.asObject()->cdr());
      P.charge(2);
    }
    return PrimResult::ok(Value::nil());
  }

  case PrimId::Put: {
    Value Sym = Args[0], Key = Args[1], Val = Args[2];
    if (!touchOrBlock(C, Sym, R) || !touchOrBlock(C, Key, R))
      return R;
    if (!isSymbolV(Sym))
      return PrimResult::error("put: not a symbol");
    Object *SymO = Sym.asObject();
    for (Value L = SymO->plist(); !L.isNil(); L = L.asObject()->cdr()) {
      Value Entry = L.asObject()->car();
      if (Entry.asObject()->car().identical(Key)) {
        Entry.asObject()->setCdr(Val);
        return PrimResult::ok(Val);
      }
      P.charge(2);
    }
    Object *Entry = allocOrNull(C, TypeTag::Pair, 2);
    if (!Entry)
      return PrimResult::needsGc();
    Entry->setCar(Key);
    Entry->setCdr(Val);
    Object *Link = allocOrNull(C, TypeTag::Pair, 2);
    if (!Link)
      return PrimResult::needsGc();
    Link->setCar(Value::object(Entry));
    Link->setCdr(SymO->plist());
    SymO->setPlist(Value::object(Link));
    return PrimResult::ok(Val);
  }

  case PrimId::MakeVector: {
    Value N = Args[0];
    if (!touchOrBlock(C, N, R))
      return R;
    if (!N.isFixnum() || N.asFixnum() < 0)
      return PrimResult::error("make-vector: bad length");
    Value Fill = Argc > 1 ? Args[1] : Value::fixnum(0);
    auto Len = static_cast<uint32_t>(N.asFixnum());
    Object *V = allocOrNull(C, TypeTag::Vector, Len + 1);
    if (!V)
      return PrimResult::needsGc();
    V->setSlot(0, Value::fixnum(Len));
    for (uint32_t I = 0; I < Len; ++I)
      V->setSlot(I + 1, Fill);
    P.charge(Len / 2 + 1);
    return PrimResult::ok(Value::object(V));
  }

  case PrimId::VectorCtor: {
    Object *V = allocOrNull(C, TypeTag::Vector, Argc + 1);
    if (!V)
      return PrimResult::needsGc();
    V->setSlot(0, Value::fixnum(Argc));
    for (uint32_t I = 0; I < Argc; ++I)
      V->setSlot(I + 1, Args[I]);
    P.charge(Argc);
    return PrimResult::ok(Value::object(V));
  }

  case PrimId::ListToVector: {
    std::vector<Value> Elems;
    bool Improper;
    if (!listToVec(C, Args[0], Elems, R, Improper))
      return Improper ? PrimResult::error("list->vector: improper list") : R;
    Object *V = allocOrNull(C, TypeTag::Vector,
                            static_cast<uint32_t>(Elems.size()) + 1);
    if (!V)
      return PrimResult::needsGc();
    V->setSlot(0, Value::fixnum(static_cast<int64_t>(Elems.size())));
    for (size_t I = 0; I < Elems.size(); ++I)
      V->setSlot(static_cast<uint32_t>(I) + 1, Elems[I]);
    P.charge(Elems.size());
    return PrimResult::ok(Value::object(V));
  }

  case PrimId::VectorToList: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!isVectorV(V))
      return PrimResult::error("vector->list: not a vector");
    std::vector<Value> Elems;
    for (int64_t I = 0, N = V.asObject()->vectorLength(); I < N; ++I) {
      E.recordAccess(P, T, V.asObject(), static_cast<uint32_t>(I),
                     /*IsWrite=*/false);
      Elems.push_back(V.asObject()->vectorRef(I));
    }
    Value Out;
    if (!buildList(C, Elems, Value::nil(), Out))
      return PrimResult::needsGc();
    P.charge(Elems.size() * 2);
    return PrimResult::ok(Out);
  }

  case PrimId::VectorFill: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!isVectorV(V))
      return PrimResult::error("vector-fill!: not a vector");
    for (int64_t I = 0, N = V.asObject()->vectorLength(); I < N; ++I) {
      E.recordAccess(P, T, V.asObject(), static_cast<uint32_t>(I),
                     /*IsWrite=*/true);
      V.asObject()->vectorSet(I, Args[1]);
    }
    P.charge(static_cast<uint64_t>(V.asObject()->vectorLength()));
    return PrimResult::ok(Value::unspecified());
  }

  case PrimId::StringLength: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!isStringV(V))
      return PrimResult::error("string-length: not a string");
    return PrimResult::ok(
        Value::fixnum(static_cast<int64_t>(V.asObject()->stringLength())));
  }

  case PrimId::StringRef: {
    Value S = Args[0], N = Args[1];
    if (!touchOrBlock(C, S, R) || !touchOrBlock(C, N, R))
      return R;
    if (!isStringV(S) || !N.isFixnum())
      return PrimResult::error("string-ref: bad arguments");
    int64_t K = N.asFixnum();
    if (K < 0 || K >= static_cast<int64_t>(S.asObject()->stringLength()))
      return PrimResult::error("string-ref: index out of range");
    return PrimResult::ok(Value::character(
        static_cast<unsigned char>(S.asObject()->stringView()[K])));
  }

  case PrimId::StringAppend: {
    std::string Out;
    for (uint32_t I = 0; I < Argc; ++I) {
      Value S = Args[I];
      if (!touchOrBlock(C, S, R))
        return R;
      if (!isStringV(S))
        return PrimResult::error("string-append: not a string");
      Out += S.asObject()->stringView();
    }
    bool Failed;
    Value V = makeStringValue(C, Out, Failed);
    if (Failed)
      return PrimResult::needsGc();
    P.charge(Out.size() / 4 + 1);
    return PrimResult::ok(V);
  }

  case PrimId::StringEqualP: {
    Value A = Args[0], B = Args[1];
    if (!touchOrBlock(C, A, R) || !touchOrBlock(C, B, R))
      return R;
    if (!isStringV(A) || !isStringV(B))
      return PrimResult::error("string=?: not a string");
    return PrimResult::ok(
        Value::boolean(A.asObject()->stringView() ==
                       B.asObject()->stringView()));
  }

  case PrimId::SymbolToString: {
    Value S = Args[0];
    if (!touchOrBlock(C, S, R))
      return R;
    if (!isSymbolV(S))
      return PrimResult::error("symbol->string: not a symbol");
    return PrimResult::ok(S.asObject()->symbolName());
  }

  case PrimId::StringToSymbol: {
    Value S = Args[0];
    if (!touchOrBlock(C, S, R))
      return R;
    if (!isStringV(S))
      return PrimResult::error("string->symbol: not a string");
    uint64_t Cycles = 0;
    Object *Sym = E.symbols().intern(S.asObject()->stringView(), P.Clock,
                                     &Cycles);
    P.charge(Cycles);
    return PrimResult::ok(Value::object(Sym));
  }

  case PrimId::NumberToString: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!isNumberV(V))
      return PrimResult::error("number->string: not a number");
    std::string S = V.isFixnum()
                        ? strFormat("%lld", static_cast<long long>(
                                                V.asFixnum()))
                        : strFormat("%g", V.asObject()->flonumValue());
    bool Failed;
    Value Out = makeStringValue(C, S, Failed);
    if (Failed)
      return PrimResult::needsGc();
    return PrimResult::ok(Out);
  }

  case PrimId::CharToInteger: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!V.isChar())
      return PrimResult::error("char->integer: not a character");
    return PrimResult::ok(Value::fixnum(V.asChar()));
  }

  case PrimId::IntegerToChar: {
    Value V = Args[0];
    if (!touchOrBlock(C, V, R))
      return R;
    if (!V.isFixnum() || V.asFixnum() < 0 || V.asFixnum() > 0x10ffff)
      return PrimResult::error("integer->char: bad code point");
    return PrimResult::ok(
        Value::character(static_cast<uint32_t>(V.asFixnum())));
  }

  case PrimId::Display:
    return primDisplay(C, Args[0], /*Machine=*/false);
  case PrimId::WritePrim:
    return primDisplay(C, Args[0], /*Machine=*/true);
  case PrimId::Newline:
    P.charge(E.terminalLock().acquire(P.Clock, cost::TerminalLockHold));
    T.DidIo = true; // console output cannot be replayed by recovery
    ++T.SideEffectEpoch;
    E.console() << '\n';
    return PrimResult::ok(Value::unspecified());

  case PrimId::Random: {
    Value N = Args[0];
    if (!touchOrBlock(C, N, R))
      return R;
    if (!N.isFixnum() || N.asFixnum() <= 0)
      return PrimResult::error("random: bound must be a positive fixnum");
    return PrimResult::ok(Value::fixnum(static_cast<int64_t>(
        E.prng().nextBelow(static_cast<uint64_t>(N.asFixnum())))));
  }

  case PrimId::ErrorPrim: {
    Value Msg = Args[0];
    if (!touchOrBlock(C, Msg, R))
      return R;
    std::string Text;
    StringOutStream OS(Text);
    PrintOptions Disp;
    Disp.Machine = false;
    printValue(OS, Msg, Disp);
    for (uint32_t I = 1; I < Argc; ++I) {
      OS << ' ';
      printValue(OS, Args[I]);
    }
    return PrimResult::error(std::move(Text));
  }

  case PrimId::MakeSemaphore: {
    int64_t Count = 0;
    if (Argc > 0) {
      Value N = Args[0];
      if (!touchOrBlock(C, N, R))
        return R;
      if (!N.isFixnum() || N.asFixnum() < 0)
        return PrimResult::error("make-semaphore: bad count");
      Count = N.asFixnum();
    }
    Object *S = allocOrNull(C, TypeTag::Semaphore, Object::SemaphoreSizeWords);
    if (!S)
      return PrimResult::needsGc();
    S->setSlot(Object::SemCount, Value::fixnum(Count));
    S->setSlot(Object::SemWaiters, Value::nil());
    return PrimResult::ok(Value::object(S));
  }

  case PrimId::SemaphoreP: {
    Value S = Args[0];
    if (!touchOrBlock(C, S, R))
      return R;
    if (!S.isObject() || S.asObject()->tag() != TypeTag::Semaphore)
      return PrimResult::error("semaphore-p: not a semaphore");
    switch (sem::p(E, P, T, S.asObject())) {
    case sem::POutcome::Acquired:
      ++T.SemaphoresHeld;
      ++T.SideEffectEpoch; // acquiring is observable: invalidate checkpoints
      return PrimResult::ok(Value::trueV());
    case sem::POutcome::Blocked:
      return PrimResult{PrimResult::Status::BlockedSemaphore,
                        Value::unspecified(), {}, {}, {}};
    case sem::POutcome::NeedsGc:
      return PrimResult::needsGc();
    }
    return PrimResult::error("semaphore-p: internal error");
  }

  case PrimId::SemaphoreV: {
    Value S = Args[0];
    if (!touchOrBlock(C, S, R))
      return R;
    if (!S.isObject() || S.asObject()->tag() != TypeTag::Semaphore)
      return PrimResult::error("semaphore-v: not a semaphore");
    if (T.SemaphoresHeld)
      --T.SemaphoresHeld;
    ++T.SideEffectEpoch; // releasing is observable: invalidate checkpoints
    sem::v(E, P, S.asObject());
    return PrimResult::ok(Value::unspecified());
  }

  case PrimId::DynPush: {
    Value Sym = Args[0];
    if (!touchOrBlock(C, Sym, R))
      return R;
    if (!isSymbolV(Sym))
      return PrimResult::error("%dyn-push: not a symbol");
    if (!dynenv::push(E, P, T, Sym, Args[1]))
      return PrimResult::needsGc();
    return PrimResult::ok(Value::unspecified());
  }
  case PrimId::DynPop:
    dynenv::pop(T);
    return PrimResult::ok(Value::unspecified());
  case PrimId::DynRef: {
    Value Sym = Args[0];
    if (!touchOrBlock(C, Sym, R))
      return R;
    Value Out;
    if (!dynenv::ref(E, P, T, Sym, Out))
      return PrimResult::error(strFormat(
          "unbound fluid variable: %s",
          std::string(Sym.asObject()->symbolText()).c_str()));
    return PrimResult::ok(Out);
  }
  case PrimId::DynSet: {
    Value Sym = Args[0];
    if (!touchOrBlock(C, Sym, R))
      return R;
    if (!dynenv::set(E, P, T, Sym, Args[1]))
      return PrimResult::error(strFormat(
          "set of unbound fluid variable: %s",
          std::string(Sym.asObject()->symbolText()).c_str()));
    return PrimResult::ok(Value::unspecified());
  }
  case PrimId::DynDefine: {
    Value Sym = Args[0];
    if (!touchOrBlock(C, Sym, R))
      return R;
    if (!isSymbolV(Sym))
      return PrimResult::error("%dyn-define: not a symbol");
    if (!dynenv::define(E, P, Sym, Args[1]))
      return PrimResult::needsGc();
    return PrimResult::ok(Value::unspecified());
  }

  case PrimId::Apply: {
    Value Fn = Args[0];
    if (!touchOrBlock(C, Fn, R))
      return R;
    // Validate the argument list (touching its spine) up front.
    Value L = Args[1];
    for (;;) {
      if (!touchOrBlock(C, L, R))
        return R;
      if (L.isNil())
        break;
      if (!isPairV(L))
        return PrimResult::error("apply: improper argument list");
      L = L.asObject()->cdr();
    }
    PrimResult A;
    A.S = PrimResult::Status::Apply;
    A.ApplyFn = Fn;
    A.ApplyArgs = Args[1];
    return A;
  }

  case PrimId::GcPrim: {
    // Force a collection: complete this instruction via a wake action,
    // then report allocation failure so the machine collects.
    T.HasWakeAction = true;
    T.WakePop = 0;
    T.WakeValue = Value::unspecified();
    return PrimResult::needsGc();
  }

  case PrimId::FutureP:
    // Deliberately *not* strict: tests the placeholder tag bit.
    return PrimResult::ok(Value::boolean(Args[0].isFuture()));

  case PrimId::DeterminedP: {
    Value V = Args[0];
    while (V.isFuture()) {
      Object *F = V.pointee();
      if (!F->futureResolved())
        return PrimResult::ok(Value::falseV());
      V = F->futureValue();
    }
    return PrimResult::ok(Value::trueV());
  }

  case PrimId::AddN:
  case PrimId::SubN:
  case PrimId::MulN: {
    // Variadic arithmetic behind the first-class wrappers for + - *.
    double FAcc = Id == PrimId::MulN ? 1.0 : 0.0;
    int64_t IAcc = Id == PrimId::MulN ? 1 : 0;
    bool Flo = false;
    for (uint32_t I = 0; I < Argc; ++I) {
      Value V = Args[I];
      if (!touchOrBlock(C, V, R))
        return R;
      if (!isNumberV(V))
        return PrimResult::error(
            strFormat("%s: operand is not a number", primInfo(Id).Name));
      bool First = I == 0;
      double D = numAsDouble(V);
      if (!Flo && V.isFixnum()) {
        int64_t X = V.asFixnum(), Out = 0;
        bool Overflow = false;
        switch (Id) {
        case PrimId::AddN:
          Overflow = __builtin_add_overflow(IAcc, X, &Out);
          break;
        case PrimId::MulN:
          Overflow = __builtin_mul_overflow(IAcc, X, &Out);
          break;
        default: // SubN
          if (First)
            Out = Argc == 1 ? -X : X;
          else
            Overflow = __builtin_sub_overflow(IAcc, X, &Out);
          break;
        }
        if (!Overflow && Value::fitsFixnum(Out)) {
          IAcc = Out;
          FAcc = static_cast<double>(Out);
          P.charge(1);
          continue;
        }
      }
      // Flonum (or overflow) path.
      if (!Flo) {
        FAcc = static_cast<double>(IAcc);
        Flo = true;
      }
      switch (Id) {
      case PrimId::AddN:
        FAcc += D;
        break;
      case PrimId::MulN:
        FAcc *= D;
        break;
      default:
        FAcc = First ? (Argc == 1 ? -D : D) : FAcc - D;
        break;
      }
      P.charge(2);
    }
    if (!Flo)
      return PrimResult::ok(Value::fixnum(IAcc));
    Object *F = allocOrNull(C, TypeTag::Flonum, 1, Object::FlagRaw);
    if (!F)
      return PrimResult::needsGc();
    F->setFlonumValue(FAcc);
    return PrimResult::ok(Value::object(F));
  }

  case PrimId::CurrentTask:
    return PrimResult::ok(
        Value::fixnum(static_cast<int64_t>(taskIndex(T.Id))));
  case PrimId::CurrentProcessor:
    return PrimResult::ok(Value::fixnum(P.Id));

  case PrimId::NumPrims:
    break;
  }
  return PrimResult::error("unimplemented primitive");
}
