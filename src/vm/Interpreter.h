//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode interpreter of the Mul-T abstract machine.
///
/// One call runs one task on one virtual processor for (up to) one
/// timeslice. Every instruction is restartable: blocking (unresolved
/// future, semaphore), allocation failure (GC) and exceptions all leave
/// the task's Pc at the instruction, which either re-executes on wake or
/// is completed by a wake action / resume value.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_VM_INTERPRETER_H
#define MULT_VM_INTERPRETER_H

#include "core/Task.h"

#include <cstdint>

namespace mult {

class Engine;
struct Processor;

/// Why interpretTask returned.
enum class StepOutcome : uint8_t {
  TimeSlice,    ///< Quantum expired; task still running.
  Blocked,      ///< Task blocked on a future or semaphore.
  TaskDone,     ///< Task finished (result future resolved).
  NeedsGc,      ///< Allocation failed; collect and re-run the instruction.
  GroupStopped, ///< The task raised; its group is now stopped.
};

/// Runs \p T on \p P until \p TargetClock or a state change.
StepOutcome interpretTask(Engine &E, Processor &P, Task &T,
                          uint64_t TargetClock);

} // namespace mult

#endif // MULT_VM_INTERPRETER_H
