//===----------------------------------------------------------------------===//
///
/// \file
/// StrUtil implementation.
///
//===----------------------------------------------------------------------===//

#include "support/StrUtil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

using namespace mult;

std::string mult::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string mult::formatSeconds(double Seconds) {
  if (Seconds < 10.0)
    return strFormat("%.2f", Seconds);
  if (Seconds < 100.0)
    return strFormat("%.1f", Seconds);
  return strFormat("%.0f", Seconds);
}

bool mult::isAllWhitespace(std::string_view S) {
  for (char C : S)
    if (!std::isspace(static_cast<unsigned char>(C)))
      return false;
  return true;
}
