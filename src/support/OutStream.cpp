//===----------------------------------------------------------------------===//
///
/// \file
/// OutStream implementation.
///
//===----------------------------------------------------------------------===//

#include "support/OutStream.h"

#include <cinttypes>
#include <cstdio>

using namespace mult;

OutStream::~OutStream() = default;

OutStream &OutStream::operator<<(int64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRId64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OutStream &OutStream::operator<<(uint64_t N) {
  char Buf[32];
  int Len = std::snprintf(Buf, sizeof(Buf), "%" PRIu64, N);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

OutStream &OutStream::operator<<(double D) {
  char Buf[48];
  int Len = std::snprintf(Buf, sizeof(Buf), "%g", D);
  write(Buf, static_cast<size_t>(Len));
  return *this;
}

void FileOutStream::write(const char *Data, size_t Size) {
  std::fwrite(Data, 1, Size, static_cast<FILE *>(File));
}

void FileOutStream::flush() { std::fflush(static_cast<FILE *>(File)); }

FileOutStream &FileOutStream::stdoutStream() {
  static FileOutStream Stream(stdout);
  return Stream;
}
