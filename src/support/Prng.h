//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generator (splitmix64/xorshift mix).
/// Used by the `(random n)` primitive and by the permute benchmark; seeded
/// from EngineConfig so every simulation run is reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SUPPORT_PRNG_H
#define MULT_SUPPORT_PRNG_H

#include <cstdint>

namespace mult {

/// A small, fast, deterministic PRNG (splitmix64).
///
/// Determinism matters here: the virtual-time simulator must produce
/// bit-identical schedules across runs so the benchmark tables and the
/// property tests are stable.
class Prng {
public:
  explicit Prng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 random bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Re-seeds the generator.
  void seed(uint64_t Seed) { State = Seed; }

private:
  uint64_t State;
};

} // namespace mult

#endif // MULT_SUPPORT_PRNG_H
