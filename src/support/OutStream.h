//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal buffered output stream in the spirit of llvm::raw_ostream.
/// The Mul-T runtime writes all terminal output through an OutStream so that
/// the distinguished terminal task can own the sink (paper section 2.3) and
/// tests can capture output without touching stdio.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SUPPORT_OUTSTREAM_H
#define MULT_SUPPORT_OUTSTREAM_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mult {

/// Abstract byte sink with convenience formatting operators.
class OutStream {
public:
  virtual ~OutStream();

  OutStream &operator<<(std::string_view S) {
    write(S.data(), S.size());
    return *this;
  }
  OutStream &operator<<(const char *S) { return *this << std::string_view(S); }
  OutStream &operator<<(char C) {
    write(&C, 1);
    return *this;
  }
  OutStream &operator<<(int64_t N);
  OutStream &operator<<(uint64_t N);
  OutStream &operator<<(int N) { return *this << static_cast<int64_t>(N); }
  OutStream &operator<<(unsigned N) {
    return *this << static_cast<uint64_t>(N);
  }
  OutStream &operator<<(double D);

  /// Appends \p Size bytes starting at \p Data to the sink.
  virtual void write(const char *Data, size_t Size) = 0;

  /// Flushes buffered bytes, if the sink buffers. Default is a no-op.
  virtual void flush() {}
};

/// An OutStream that appends to a caller-owned std::string.
class StringOutStream final : public OutStream {
public:
  explicit StringOutStream(std::string &Buffer) : Buffer(Buffer) {}

  void write(const char *Data, size_t Size) override {
    Buffer.append(Data, Size);
  }

private:
  std::string &Buffer;
};

/// An OutStream over a stdio FILE handle (used by the REPL and examples).
class FileOutStream final : public OutStream {
public:
  /// Wraps \p File, which the caller keeps open for the stream's lifetime.
  explicit FileOutStream(void *File) : File(File) {}

  void write(const char *Data, size_t Size) override;
  void flush() override;

  /// Returns the stream bound to stdout.
  static FileOutStream &stdoutStream();

private:
  void *File;
};

} // namespace mult

#endif // MULT_SUPPORT_OUTSTREAM_H
