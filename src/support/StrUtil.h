//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the reader, printer and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SUPPORT_STRUTIL_H
#define MULT_SUPPORT_STRUTIL_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mult {

/// Returns a printf-style formatted std::string.
std::string strFormat(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders \p Seconds with the precision the paper's tables use: three
/// significant digits below 10, otherwise no fraction digits beyond one.
std::string formatSeconds(double Seconds);

/// True if \p S consists only of ASCII whitespace.
bool isAllWhitespace(std::string_view S);

} // namespace mult

#endif // MULT_SUPPORT_STRUTIL_H
