//===----------------------------------------------------------------------===//
///
/// \file
/// Contention model for locks in the virtual-time simulator.
///
/// The simulator executes each runtime operation atomically on the host
/// thread, so no lock is ever *observed* held. What we model instead is the
/// virtual-time cost: a lock remembers until when it is busy, and an
/// acquirer arriving earlier pays the wait. Because the machine steps
/// processors in virtual-time order, accesses arrive roughly sorted and the
/// model approximates a real spin lock on the Multimax's shared bus.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SUPPORT_VIRTUALLOCK_H
#define MULT_SUPPORT_VIRTUALLOCK_H

#include <algorithm>
#include <cstdint>

namespace mult {

/// A lock that exists only as a busy-interval in virtual time.
class VirtualLock {
public:
  /// Acquires at virtual time \p Now for \p HoldCycles and returns the total
  /// cycles the caller must charge (wait + hold).
  uint64_t acquire(uint64_t Now, uint64_t HoldCycles) {
    uint64_t Start = std::max(Now, BusyUntil);
    BusyUntil = Start + HoldCycles;
    ++Acquisitions;
    WaitedCycles += Start - Now;
    return (Start - Now) + HoldCycles;
  }

  /// Total times the lock was taken.
  uint64_t acquisitions() const { return Acquisitions; }
  /// Total virtual cycles spent waiting behind other holders.
  uint64_t waitedCycles() const { return WaitedCycles; }

  void resetStats() {
    Acquisitions = 0;
    WaitedCycles = 0;
  }

private:
  uint64_t BusyUntil = 0;
  uint64_t Acquisitions = 0;
  uint64_t WaitedCycles = 0;
};

} // namespace mult

#endif // MULT_SUPPORT_VIRTUALLOCK_H
