//===----------------------------------------------------------------------===//
///
/// \file
/// Prng implementation (splitmix64).
///
//===----------------------------------------------------------------------===//

#include "support/Prng.h"

#include <cassert>

using namespace mult;

uint64_t Prng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Prng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Multiply-shift reduction; bias is negligible for the bounds we use.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(next()) * Bound) >> 64);
}
