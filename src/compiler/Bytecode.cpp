//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode utilities: mnemonics and the disassembler.
///
//===----------------------------------------------------------------------===//

#include "compiler/Bytecode.h"

#include "runtime/Printer.h"
#include "support/StrUtil.h"

using namespace mult;

const char *mult::opName(Op O) {
  switch (O) {
  case Op::Const: return "const";
  case Op::PushFixnum: return "push-fixnum";
  case Op::PushNil: return "push-nil";
  case Op::PushTrue: return "push-true";
  case Op::PushFalse: return "push-false";
  case Op::PushUnspecified: return "push-unspecified";
  case Op::Local: return "local";
  case Op::SetLocal: return "set-local";
  case Op::Slide: return "slide";
  case Op::Free: return "free";
  case Op::Pop: return "pop";
  case Op::MakeBox: return "make-box";
  case Op::BoxRef: return "box-ref";
  case Op::BoxSet: return "box-set";
  case Op::GlobalRef: return "global-ref";
  case Op::GlobalSet: return "global-set";
  case Op::GlobalDefine: return "global-define";
  case Op::Closure: return "closure";
  case Op::Jump: return "jump";
  case Op::JumpIfFalse: return "jump-if-false";
  case Op::Call: return "call";
  case Op::TailCall: return "tail-call";
  case Op::Return: return "return";
  case Op::TouchStack: return "touch-stack";
  case Op::TouchLocal: return "touch-local";
  case Op::TouchBack: return "touch-back";
  case Op::FutureOp: return "future";
  case Op::Add: return "add";
  case Op::Sub: return "sub";
  case Op::Mul: return "mul";
  case Op::Quotient: return "quotient";
  case Op::Remainder: return "remainder";
  case Op::NumLt: return "lt";
  case Op::NumLe: return "le";
  case Op::NumGt: return "gt";
  case Op::NumGe: return "ge";
  case Op::NumEq: return "num-eq";
  case Op::Eq: return "eq";
  case Op::Cons: return "cons";
  case Op::Car: return "car";
  case Op::Cdr: return "cdr";
  case Op::SetCar: return "set-car";
  case Op::SetCdr: return "set-cdr";
  case Op::NullP: return "null?";
  case Op::PairP: return "pair?";
  case Op::Not: return "not";
  case Op::VectorRef: return "vector-ref";
  case Op::VectorSet: return "vector-set";
  case Op::VectorLength: return "vector-length";
  case Op::CallPrim: return "call-prim";
  case Op::PrimApplyVar: return "prim-apply-var";
  }
  return "bad-op";
}

std::string mult::disassemble(const Code &C) {
  std::string Out;
  StringOutStream OS(Out);
  OS << C.Name << " (params " << C.NumParams << ", frame "
     << C.MaxFrameWords << "):\n";
  for (size_t I = 0; I < C.Insns.size(); ++I) {
    const Insn &In = C.Insns[I];
    OS << strFormat("  %4zu  %-16s", I, opName(In.Opcode));
    switch (In.Opcode) {
    case Op::Const:
    case Op::GlobalRef:
    case Op::GlobalSet:
    case Op::GlobalDefine:
      OS << In.A << "  ; ";
      printValue(OS, C.Constants[static_cast<size_t>(In.A)]);
      break;
    case Op::Closure:
      OS << In.A << ", free " << In.B;
      break;
    case Op::TouchBack:
      OS << In.A << ", slot " << In.B;
      break;
    case Op::CallPrim:
      OS << In.A << ", argc " << In.B;
      break;
    case Op::PushFixnum:
    case Op::Local:
    case Op::SetLocal:
    case Op::Slide:
    case Op::PrimApplyVar:
    case Op::Free:
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::Call:
    case Op::TailCall:
    case Op::TouchStack:
    case Op::TouchLocal:
      OS << In.A;
      break;
    default:
      break;
    }
    OS << '\n';
  }
  return Out;
}
