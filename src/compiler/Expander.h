//===----------------------------------------------------------------------===//
///
/// \file
/// Macro expander: rewrites T/Scheme derived forms into the core language.
///
/// Core forms understood by the analyzer: `quote if set! define lambda let
/// begin future touch` plus calls, variables and literals. Everything else
/// (`let* letrec named-let cond case and or when unless do quasiquote bind
/// fluid-let define-fluid fluid set-fluid!`) expands here. Special-form
/// names are reserved words, as in T.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_EXPANDER_H
#define MULT_COMPILER_EXPANDER_H

#include "runtime/DatumBuilder.h"

#include <string>

namespace mult {

/// The expander. Holds a gensym counter so temporaries stay unique across
/// forms compiled by the same engine.
class Expander {
public:
  explicit Expander(DatumBuilder &B) : B(B) {}

  struct Result {
    bool Ok = true;
    Value Datum;
    std::string Error;

    static Result success(Value V) { return {true, V, {}}; }
    static Result failure(std::string Msg) {
      return {false, Value::nil(), std::move(Msg)};
    }
  };

  /// Fully expands \p Form (top level).
  Result expand(Value Form);

private:
  Result expandForm(Value Form);
  Result expandBody(Value Body);          ///< Handles internal defines.
  Result expandSequence(Value Forms);     ///< Expands each element.
  Result expandLet(Value Form);
  Result expandLetStar(Value Form);
  Result expandLetrec(Value Form);
  Result expandNamedLet(Value Name, Value Bindings, Value Body);
  Result expandCond(Value Form);
  Result expandCase(Value Form);
  Result expandAnd(Value Form);
  Result expandOr(Value Form);
  Result expandWhenUnless(Value Form, bool IsWhen);
  Result expandDo(Value Form);
  Result expandQuasi(Value Datum, int Depth);
  Result expandBind(Value Form);
  Result expandDefine(Value Form);
  Result expandLambda(Value Form);

  Result err(const char *What, Value Form);
  Value gensym(const char *Hint);

  /// (sym rest...) list builders.
  Value list1(Value A) { return B.cons(A, Value::nil()); }
  Value list2(Value A, Value C) { return B.cons(A, list1(C)); }
  Value list3(Value A, Value C, Value D) { return B.cons(A, list2(C, D)); }
  Value sym(const char *Name) { return B.symbol(Name); }

  DatumBuilder &B;
  unsigned GensymCounter = 0;
};

} // namespace mult

#endif // MULT_COMPILER_EXPANDER_H
