//===----------------------------------------------------------------------===//
///
/// \file
/// Core-language AST produced by the analyzer and consumed by the touch
/// optimizer and the code generator.
///
/// Variable references carry a binding id into the Program's binding table;
/// boxedness (assignment conversion) is a property of the binding, decided
/// once the whole form has been analyzed. `(future X)` is represented as a
/// Future node wrapping a nullary Lambda — the thunk of the paper's
/// `(*future (lambda () X))` transformation — so the ordinary free-variable
/// capture machinery copies X's free variables into the heap, exactly as
/// section 2.2.1 describes.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_AST_H
#define MULT_COMPILER_AST_H

#include "compiler/PrimTable.h"
#include "runtime/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace mult {

class Object;

enum class AstKind : uint8_t {
  Const,
  VarRef,
  SetVar,
  If,
  Begin,
  Let,
  Lambda,
  Call,
  PrimCall,
  Future,
  TouchExpr,
  Define,
};

/// Base AST node. Uses LLVM-style kind dispatch (no RTTI).
struct AstNode {
  explicit AstNode(AstKind K) : Kind(K) {}
  virtual ~AstNode();

  const AstKind Kind;

  /// Touch-optimizer annotation: true when this expression's value can
  /// never be an unresolved future at its use site, so the strict consumer
  /// may skip the implicit touch (paper section 2.2).
  bool ResultNonFuture = false;
};

using AstPtr = std::unique_ptr<AstNode>;

/// LLVM-ish cast helpers.
template <typename T> T *astCast(AstNode *N) {
  assert(N && T::classof(N) && "bad AST cast");
  return static_cast<T *>(N);
}
template <typename T> const T *astCast(const AstNode *N) {
  assert(N && T::classof(N) && "bad AST cast");
  return static_cast<const T *>(N);
}
template <typename T> T *astDynCast(AstNode *N) {
  return (N && T::classof(N)) ? static_cast<T *>(N) : nullptr;
}

/// Where a variable lives.
enum class VarWhere : uint8_t { Local, Free, Global };

struct ConstAst : AstNode {
  explicit ConstAst(Value V) : AstNode(AstKind::Const), V(V) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Const; }
  Value V;
};

struct VarRefAst : AstNode {
  VarRefAst(VarWhere W, int Id, Object *Sym)
      : AstNode(AstKind::VarRef), Where(W), Id(Id), Sym(Sym) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::VarRef; }
  VarWhere Where;
  /// Binding id for Local, free-slot index for Free, unused for Global.
  int Id;
  Object *Sym; ///< For globals and diagnostics.
};

struct SetVarAst : AstNode {
  SetVarAst(VarWhere W, int Id, Object *Sym, AstPtr V)
      : AstNode(AstKind::SetVar), Where(W), Id(Id), Sym(Sym),
        Val(std::move(V)) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::SetVar; }
  VarWhere Where;
  int Id;
  Object *Sym;
  AstPtr Val;
};

struct IfAst : AstNode {
  IfAst(AstPtr C, AstPtr T, AstPtr E)
      : AstNode(AstKind::If), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(E)) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::If; }
  AstPtr Cond, Then, Else;
};

struct BeginAst : AstNode {
  explicit BeginAst(std::vector<AstPtr> F)
      : AstNode(AstKind::Begin), Forms(std::move(F)) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Begin; }
  std::vector<AstPtr> Forms;
};

struct LetAst : AstNode {
  LetAst() : AstNode(AstKind::Let) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Let; }
  std::vector<int> BindingIds;
  std::vector<AstPtr> Inits;
  AstPtr Body;
};

struct LambdaAst : AstNode {
  LambdaAst() : AstNode(AstKind::Lambda) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Lambda; }

  /// How the *enclosing* function materializes one captured value at
  /// closure-creation time.
  struct Capture {
    bool FromParentFree; ///< else from a parent local binding
    int Index;           ///< parent free slot, or parent binding id
    int OriginBindingId; ///< the binding ultimately captured (for dedup)
  };

  std::vector<int> ParamIds;
  AstPtr Body;
  std::vector<Capture> Captures;
  std::string Name; ///< For backtraces; "" for anonymous.
};

struct CallAst : AstNode {
  CallAst(AstPtr F, std::vector<AstPtr> A)
      : AstNode(AstKind::Call), Fn(std::move(F)), Args(std::move(A)) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Call; }
  AstPtr Fn;
  std::vector<AstPtr> Args;
};

struct PrimCallAst : AstNode {
  PrimCallAst() : AstNode(AstKind::PrimCall) {}
  static bool classof(const AstNode *N) {
    return N->Kind == AstKind::PrimCall;
  }
  bool IsFast = false;
  FastOpInfo Fast{};      ///< Valid when IsFast.
  PrimId Prim{};          ///< Valid when !IsFast.
  std::vector<AstPtr> Args;
  std::string Name;
};

struct FutureAst : AstNode {
  explicit FutureAst(std::unique_ptr<LambdaAst> T)
      : AstNode(AstKind::Future), Thunk(std::move(T)) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Future; }
  std::unique_ptr<LambdaAst> Thunk;
};

struct TouchAst : AstNode {
  explicit TouchAst(AstPtr E)
      : AstNode(AstKind::TouchExpr), Expr(std::move(E)) {}
  static bool classof(const AstNode *N) {
    return N->Kind == AstKind::TouchExpr;
  }
  AstPtr Expr;
};

struct DefineAst : AstNode {
  DefineAst(Object *Sym, AstPtr V)
      : AstNode(AstKind::Define), Sym(Sym), Val(std::move(V)) {}
  static bool classof(const AstNode *N) { return N->Kind == AstKind::Define; }
  Object *Sym;
  AstPtr Val;
};

/// One binding (parameter or let variable).
struct BindingInfo {
  Object *Sym = nullptr;
  bool Assigned = false; ///< Target of set! somewhere -> boxed.
};

/// A fully analyzed top-level form.
struct Program {
  AstPtr Top;
  std::vector<BindingInfo> Bindings;

  bool bindingBoxed(int Id) const {
    return Bindings[static_cast<size_t>(Id)].Assigned;
  }
};

} // namespace mult

#endif // MULT_COMPILER_AST_H
