//===----------------------------------------------------------------------===//
///
/// \file
/// Touch optimizer implementation.
///
//===----------------------------------------------------------------------===//

#include "compiler/TouchOpt.h"

#include <cassert>

using namespace mult;

bool mult::primResultNonFuture(PrimId Id) {
  switch (Id) {
  case PrimId::Get:      // extracts a stored (possibly future) value
  case PrimId::Apply:    // returns whatever the callee returns
  case PrimId::DynRef:   // reads a dynamic binding
  case PrimId::ErrorPrim: // resumption can substitute any value
    return false;
  default:
    return true;
  }
}

namespace {

/// One non-future fact per binding id.
using FactMap = std::vector<uint8_t>;

class TouchAnalysis {
public:
  explicit TouchAnalysis(Program &P) : P(P) {}

  void run() {
    FactMap Facts(P.Bindings.size(), 0);
    auto *Top = astCast<LambdaAst>(P.Top.get());
    analyzeNode(Top->Body.get(), Facts);
  }

private:
  /// Returns true when the node's result is provably non-future, updating
  /// \p Facts with the node's side effects on variable knowledge. Also
  /// stores the verdict on the node.
  bool analyzeNode(AstNode *N, FactMap &Facts) {
    bool R = analyzeImpl(N, Facts);
    N->ResultNonFuture = R;
    return R;
  }

  /// When \p Operand sits in a strict position, the generated touch writes
  /// the resolved value back if the operand is an unboxed local; record
  /// the new fact.
  void recordTouch(AstNode *Operand, FactMap &Facts) {
    if (auto *V = astDynCast<VarRefAst>(Operand))
      if (V->Where == VarWhere::Local && !P.bindingBoxed(V->Id))
        Facts[static_cast<size_t>(V->Id)] = 1;
  }

  bool analyzeImpl(AstNode *N, FactMap &Facts) {
    switch (N->Kind) {
    case AstKind::Const:
      // Program text cannot contain future objects.
      return true;

    case AstKind::VarRef: {
      auto *V = astCast<VarRefAst>(N);
      if (V->Where == VarWhere::Local && !P.bindingBoxed(V->Id))
        return Facts[static_cast<size_t>(V->Id)] != 0;
      return false;
    }

    case AstKind::SetVar: {
      auto *S = astCast<SetVarAst>(N);
      analyzeNode(S->Val.get(), Facts);
      return true; // set! yields unspecified
    }

    case AstKind::If: {
      auto *I = astCast<IfAst>(N);
      analyzeNode(I->Cond.get(), Facts);
      // The test is strict: JumpIfFalse touches it.
      recordTouch(I->Cond.get(), Facts);
      FactMap ThenFacts = Facts;
      FactMap ElseFacts = Facts;
      bool T = analyzeNode(I->Then.get(), ThenFacts);
      bool E = analyzeNode(I->Else.get(), ElseFacts);
      // Meet: keep facts that hold on both paths.
      for (size_t K = 0; K < Facts.size(); ++K)
        Facts[K] = ThenFacts[K] && ElseFacts[K];
      return T && E;
    }

    case AstKind::Begin: {
      auto *B = astCast<BeginAst>(N);
      bool Last = true;
      for (AstPtr &F : B->Forms)
        Last = analyzeNode(F.get(), Facts);
      return Last;
    }

    case AstKind::Let: {
      auto *L = astCast<LetAst>(N);
      for (size_t K = 0; K < L->Inits.size(); ++K) {
        bool InitNF = analyzeNode(L->Inits[K].get(), Facts);
        int Id = L->BindingIds[K];
        if (!P.bindingBoxed(Id))
          Facts[static_cast<size_t>(Id)] = InitNF ? 1 : 0;
      }
      return analyzeNode(L->Body.get(), Facts);
    }

    case AstKind::Lambda: {
      auto *L = astCast<LambdaAst>(N);
      // The body runs in a different activation; start from nothing.
      FactMap Fresh(P.Bindings.size(), 0);
      analyzeNode(L->Body.get(), Fresh);
      return true; // the closure object itself is never a future
    }

    case AstKind::Call: {
      auto *C = astCast<CallAst>(N);
      analyzeNode(C->Fn.get(), Facts);
      recordTouch(C->Fn.get(), Facts); // calling touches the callee
      for (AstPtr &A : C->Args)
        analyzeNode(A.get(), Facts);
      return false; // any procedure may return a future
    }

    case AstKind::PrimCall: {
      auto *C = astCast<PrimCallAst>(N);
      for (AstPtr &A : C->Args)
        analyzeNode(A.get(), Facts);
      if (C->IsFast) {
        for (size_t K = 0; K < C->Args.size(); ++K)
          if (C->Fast.StrictMask & (1u << K))
            recordTouch(C->Args[K].get(), Facts);
        return C->Fast.ResultNonFuture;
      }
      // Called primitives touch internally without write-back.
      return primResultNonFuture(C->Prim);
    }

    case AstKind::Future: {
      auto *F = astCast<FutureAst>(N);
      FactMap Fresh(P.Bindings.size(), 0);
      analyzeNode(F->Thunk->Body.get(), Fresh);
      F->Thunk->ResultNonFuture = true;
      return false; // this is the whole point of the construct
    }

    case AstKind::TouchExpr: {
      auto *T = astCast<TouchAst>(N);
      analyzeNode(T->Expr.get(), Facts);
      recordTouch(T->Expr.get(), Facts);
      return true;
    }

    case AstKind::Define: {
      auto *D = astCast<DefineAst>(N);
      analyzeNode(D->Val.get(), Facts);
      return true;
    }
    }
    assert(false && "unhandled AST kind");
    return false;
  }

  Program &P;
};

} // namespace

void mult::runTouchOptimization(Program &P) {
  if (!P.Top)
    return;
  TouchAnalysis(P).run();
}
