//===----------------------------------------------------------------------===//
///
/// \file
/// Primitive registry implementation.
///
//===----------------------------------------------------------------------===//

#include "compiler/PrimTable.h"

#include <cassert>
#include <unordered_map>

using namespace mult;

static const PrimInfo PrimInfos[] = {
#define MULT_PRIM_INFO(Id, Name, Min, Max, Cost)                               \
  {PrimId::Id, Name, Min, Max, Cost},
    MULT_PRIM_LIST(MULT_PRIM_INFO)
#undef MULT_PRIM_INFO
};

const PrimInfo &mult::primInfo(PrimId Id) {
  assert(Id < PrimId::NumPrims && "bad primitive id");
  return PrimInfos[static_cast<size_t>(Id)];
}

std::optional<PrimId> mult::lookupPrim(std::string_view Name) {
  static const auto *Map = [] {
    auto *M = new std::unordered_map<std::string_view, PrimId>();
    for (const PrimInfo &P : PrimInfos)
      M->emplace(P.Name, P.Id);
    return M;
  }();
  auto It = Map->find(Name);
  if (It == Map->end())
    return std::nullopt;
  return It->second;
}

std::optional<FastOpInfo> mult::lookupFastOp(std::string_view Name) {
  struct Entry {
    std::string_view Name;
    FastOpInfo Info;
  };
  // StrictMask bit i touches operand i (0 = pushed first / deepest).
  // Storing operations (cons, set-car!, vector-set!) are non-strict in the
  // stored value, per paper section 1.1.
  static const Entry Entries[] = {
      {"+", {Op::Add, 2, 0b11, true}},
      {"-", {Op::Sub, 2, 0b11, true}},
      {"*", {Op::Mul, 2, 0b11, true}},
      {"quotient", {Op::Quotient, 2, 0b11, true}},
      {"remainder", {Op::Remainder, 2, 0b11, true}},
      {"<", {Op::NumLt, 2, 0b11, true}},
      {"<=", {Op::NumLe, 2, 0b11, true}},
      {">", {Op::NumGt, 2, 0b11, true}},
      {">=", {Op::NumGe, 2, 0b11, true}},
      {"=", {Op::NumEq, 2, 0b11, true}},
      {"eq?", {Op::Eq, 2, 0b11, true}},
      {"cons", {Op::Cons, 2, 0b00, true}},
      {"car", {Op::Car, 1, 0b1, false}},
      {"cdr", {Op::Cdr, 1, 0b1, false}},
      {"set-car!", {Op::SetCar, 2, 0b01, true}},
      {"set-cdr!", {Op::SetCdr, 2, 0b01, true}},
      {"null?", {Op::NullP, 1, 0b1, true}},
      {"pair?", {Op::PairP, 1, 0b1, true}},
      {"not", {Op::Not, 1, 0b1, true}},
      {"vector-ref", {Op::VectorRef, 2, 0b11, false}},
      {"vector-set!", {Op::VectorSet, 3, 0b011, true}},
      {"vector-length", {Op::VectorLength, 1, 0b1, true}},
  };
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return E.Info;
  return std::nullopt;
}
