//===----------------------------------------------------------------------===//
///
/// \file
/// Code generator implementation.
///
//===----------------------------------------------------------------------===//

#include "compiler/CodeGen.h"

#include "compiler/TouchOpt.h"

#include <cassert>

using namespace mult;

Code *CodeRegistry::create(std::string Name) {
  Codes.push_back(std::make_unique<Code>());
  Code *C = Codes.back().get();
  C->Name = std::move(Name);
  Object *Tpl =
      TheHeap.allocatePermanent(TypeTag::Template, 1, Object::FlagRaw);
  Tpl->setTemplateCode(C);
  Templates.push_back(Value::object(Tpl));
  return C;
}

Value CodeRegistry::templateFor(const Code *C) const {
  for (size_t I = 0; I < Codes.size(); ++I)
    if (Codes[I].get() == C)
      return Templates[I];
  assert(false && "unregistered code object");
  return Value::nil();
}

namespace {

/// Generates the body of one function (template).
class FunctionGen {
public:
  FunctionGen(Program &P, CodeRegistry &Registry,
              const CompilerOptions &Opts, CompileStats &Stats)
      : P(P), Registry(Registry), Opts(Opts), Stats(Stats) {}

  Code *generate(const LambdaAst *L, FunctionGen *Parent);

private:
  void genExpr(const AstNode *N);
  void genTail(const AstNode *N);
  /// Emits the implicit touch for operand \p N sitting \p DepthFromTop
  /// slots below the stack top, unless the optimizer proved it redundant.
  void emitTouchFor(const AstNode *N, int DepthFromTop);
  /// Evaluates \p N; when \p Strict, touches it at the top of stack.
  void genOperand(const AstNode *N, bool Strict);
  void genClosure(const LambdaAst *L);
  void genPrimCall(const PrimCallAst *C);

  size_t emit(Op O, int32_t A = 0, int32_t B = 0) {
    C->Insns.push_back(Insn{O, A, B});
    return C->Insns.size() - 1;
  }
  void patchJump(size_t At) {
    C->Insns[At].A = static_cast<int32_t>(C->Insns.size());
  }
  void pushDepth(int N = 1) {
    Depth += N;
    if (Depth > static_cast<int>(C->MaxFrameWords))
      C->MaxFrameWords = static_cast<uint32_t>(Depth);
  }
  void popDepth(int N = 1) {
    Depth -= N;
    assert(Depth >= 0 && "operand stack underflow in codegen");
  }
  int constantIndex(Value V);
  int localOffset(int BindingId) const;

  Program &P;
  CodeRegistry &Registry;
  const CompilerOptions &Opts;
  CompileStats &Stats;
  const LambdaAst *Fn = nullptr;
  Code *C = nullptr;
  int Depth = 0; ///< Current operand-stack depth, frame-relative.
  std::vector<std::pair<int, int>> Offsets; ///< binding id -> frame offset.
};

int FunctionGen::constantIndex(Value V) {
  for (size_t I = 0; I < C->Constants.size(); ++I)
    if (C->Constants[I].bits() == V.bits())
      return static_cast<int>(I);
  C->Constants.push_back(V);
  return static_cast<int>(C->Constants.size() - 1);
}

int FunctionGen::localOffset(int BindingId) const {
  for (size_t I = Offsets.size(); I > 0; --I)
    if (Offsets[I - 1].first == BindingId)
      return Offsets[I - 1].second;
  assert(false && "reference to a binding with no frame slot");
  return 0;
}

Code *FunctionGen::generate(const LambdaAst *L, FunctionGen *Parent) {
  (void)Parent;
  Fn = L;
  C = Registry.create(L->Name.empty() ? "lambda" : L->Name);
  C->NumParams = static_cast<uint32_t>(L->ParamIds.size());

  // Frame: slot 0 = the closure, slots 1..N = parameters.
  Depth = 1 + static_cast<int>(L->ParamIds.size());
  C->MaxFrameWords = static_cast<uint32_t>(Depth);
  for (size_t I = 0; I < L->ParamIds.size(); ++I)
    Offsets.emplace_back(L->ParamIds[I], static_cast<int>(I) + 1);

  // Entry prologue: box assigned parameters.
  for (size_t I = 0; I < L->ParamIds.size(); ++I) {
    if (P.bindingBoxed(L->ParamIds[I])) {
      int Off = static_cast<int>(I) + 1;
      emit(Op::Local, Off);
      pushDepth();
      emit(Op::MakeBox);
      emit(Op::SetLocal, Off);
      popDepth();
    }
  }

  genTail(L->Body.get());
  return C;
}

void FunctionGen::genTail(const AstNode *N) {
  switch (N->Kind) {
  case AstKind::If: {
    const auto *I = astCast<IfAst>(N);
    genOperand(I->Cond.get(), /*Strict=*/true);
    size_t JElse = emit(Op::JumpIfFalse, -1);
    popDepth();
    int Saved = Depth;
    genTail(I->Then.get());
    Depth = Saved;
    patchJump(JElse);
    genTail(I->Else.get());
    return;
  }
  case AstKind::Begin: {
    const auto *B = astCast<BeginAst>(N);
    for (size_t I = 0; I + 1 < B->Forms.size(); ++I) {
      genExpr(B->Forms[I].get());
      emit(Op::Pop);
      popDepth();
    }
    genTail(B->Forms.back().get());
    return;
  }
  case AstKind::Let: {
    const auto *L = astCast<LetAst>(N);
    for (size_t I = 0; I < L->Inits.size(); ++I) {
      int Off = Depth;
      genExpr(L->Inits[I].get());
      if (P.bindingBoxed(L->BindingIds[I]))
        emit(Op::MakeBox);
      Offsets.emplace_back(L->BindingIds[I], Off);
    }
    genTail(L->Body.get());
    return;
  }
  case AstKind::Call: {
    const auto *Call = astCast<CallAst>(N);
    genExpr(Call->Fn.get());
    for (const AstPtr &A : Call->Args)
      genExpr(A.get());
    emitTouchFor(Call->Fn.get(),
                 static_cast<int>(Call->Args.size())); // calling touches
    emit(Op::TailCall, static_cast<int32_t>(Call->Args.size()));
    popDepth(static_cast<int>(Call->Args.size()) + 1);
    return;
  }
  default:
    genExpr(N);
    emit(Op::Return);
    popDepth();
    return;
  }
}

void FunctionGen::emitTouchFor(const AstNode *N, int DepthFromTop) {
  // The touch belongs to the strict *operation*: it is emitted after every
  // operand has been evaluated, so `(+ (future X) Y)` computes Y in
  // parallel with X and synchronizes at the addition.
  if (!Opts.EmitTouchChecks)
    return;
  ++Stats.StrictPositions;
  if (Opts.OptimizeTouches && N->ResultNonFuture) {
    ++Stats.TouchesEliminated;
    return;
  }
  ++Stats.TouchesEmitted;
  // When the operand is an unboxed local, also write the resolved value
  // back to its slot: this is what makes the optimizer's once-touched
  // facts true (paper section 2.2).
  if (const auto *V = astDynCast<VarRefAst>(const_cast<AstNode *>(N))) {
    if (V->Where == VarWhere::Local && !P.bindingBoxed(V->Id)) {
      emit(Op::TouchBack, DepthFromTop, localOffset(V->Id));
      return;
    }
  }
  emit(Op::TouchStack, DepthFromTop);
}

void FunctionGen::genOperand(const AstNode *N, bool Strict) {
  genExpr(N);
  if (Strict)
    emitTouchFor(N, 0);
}

void FunctionGen::genClosure(const LambdaAst *L) {
  // Child code first.
  FunctionGen Child(P, Registry, Opts, Stats);
  Code *ChildCode = Child.generate(L, this);
  int TplIdx = constantIndex(Registry.templateFor(ChildCode));

  // Captures: push raw slot contents (boxes are captured as boxes).
  for (const LambdaAst::Capture &Cap : L->Captures) {
    if (Cap.FromParentFree)
      emit(Op::Free, Cap.Index);
    else
      emit(Op::Local, localOffset(Cap.Index));
    pushDepth();
  }
  emit(Op::Closure, TplIdx, static_cast<int32_t>(L->Captures.size()));
  popDepth(static_cast<int>(L->Captures.size()));
  pushDepth();
}

void FunctionGen::genPrimCall(const PrimCallAst *C2) {
  if (C2->IsFast) {
    for (const AstPtr &A : C2->Args)
      genExpr(A.get());
    for (size_t I = 0; I < C2->Args.size(); ++I)
      if (C2->Fast.StrictMask & (1u << I))
        emitTouchFor(C2->Args[I].get(),
                     static_cast<int>(C2->Args.size() - 1 - I));
    emit(C2->Fast.Opcode);
    popDepth(static_cast<int>(C2->Args.size()));
    pushDepth();
    return;
  }
  for (const AstPtr &A : C2->Args)
    genExpr(A.get());
  emit(Op::CallPrim, static_cast<int32_t>(C2->Prim),
       static_cast<int32_t>(C2->Args.size()));
  popDepth(static_cast<int>(C2->Args.size()));
  pushDepth();
}

void FunctionGen::genExpr(const AstNode *N) {
  switch (N->Kind) {
  case AstKind::Const: {
    Value V = astCast<ConstAst>(N)->V;
    if (V.isFixnum() && V.asFixnum() >= INT32_MIN && V.asFixnum() <= INT32_MAX)
      emit(Op::PushFixnum, static_cast<int32_t>(V.asFixnum()));
    else if (V.isNil())
      emit(Op::PushNil);
    else if (V.isTrue())
      emit(Op::PushTrue);
    else if (V.isFalse())
      emit(Op::PushFalse);
    else if (V.isUnspecified())
      emit(Op::PushUnspecified);
    else
      emit(Op::Const, constantIndex(V));
    pushDepth();
    return;
  }

  case AstKind::VarRef: {
    const auto *V = astCast<VarRefAst>(N);
    switch (V->Where) {
    case VarWhere::Local:
      emit(Op::Local, localOffset(V->Id));
      pushDepth();
      if (P.bindingBoxed(V->Id))
        emit(Op::BoxRef);
      return;
    case VarWhere::Free: {
      emit(Op::Free, V->Id);
      pushDepth();
      int Origin = Fn->Captures[static_cast<size_t>(V->Id)].OriginBindingId;
      if (P.bindingBoxed(Origin))
        emit(Op::BoxRef);
      return;
    }
    case VarWhere::Global:
      emit(Op::GlobalRef, constantIndex(Value::object(V->Sym)));
      pushDepth();
      return;
    }
    return;
  }

  case AstKind::SetVar: {
    const auto *S = astCast<SetVarAst>(N);
    switch (S->Where) {
    case VarWhere::Local:
      assert(P.bindingBoxed(S->Id) && "assigned local must be boxed");
      emit(Op::Local, localOffset(S->Id));
      pushDepth();
      break;
    case VarWhere::Free: {
      [[maybe_unused]] int Origin =
          Fn->Captures[static_cast<size_t>(S->Id)].OriginBindingId;
      assert(P.bindingBoxed(Origin) && "assigned free var must be boxed");
      emit(Op::Free, S->Id);
      pushDepth();
      break;
    }
    case VarWhere::Global:
      break;
    }
    genExpr(S->Val.get());
    if (S->Where == VarWhere::Global) {
      // GlobalSet pops the value and pushes unspecified itself.
      emit(Op::GlobalSet, constantIndex(Value::object(S->Sym)));
    } else {
      emit(Op::BoxSet);
      popDepth(2);
      pushDepth();
    }
    return;
  }

  case AstKind::Define: {
    const auto *D = astCast<DefineAst>(N);
    genExpr(D->Val.get());
    // GlobalDefine pops the value and pushes unspecified itself.
    emit(Op::GlobalDefine, constantIndex(Value::object(D->Sym)));
    return;
  }

  case AstKind::If: {
    const auto *I = astCast<IfAst>(N);
    genOperand(I->Cond.get(), /*Strict=*/true);
    size_t JElse = emit(Op::JumpIfFalse, -1);
    popDepth();
    int Saved = Depth;
    genExpr(I->Then.get());
    size_t JEnd = emit(Op::Jump, -1);
    patchJump(JElse);
    Depth = Saved;
    genExpr(I->Else.get());
    patchJump(JEnd);
    return;
  }

  case AstKind::Begin: {
    const auto *B = astCast<BeginAst>(N);
    for (size_t I = 0; I + 1 < B->Forms.size(); ++I) {
      genExpr(B->Forms[I].get());
      emit(Op::Pop);
      popDepth();
    }
    genExpr(B->Forms.back().get());
    return;
  }

  case AstKind::Let: {
    const auto *L = astCast<LetAst>(N);
    for (size_t I = 0; I < L->Inits.size(); ++I) {
      int Off = Depth;
      genExpr(L->Inits[I].get());
      if (P.bindingBoxed(L->BindingIds[I]))
        emit(Op::MakeBox);
      Offsets.emplace_back(L->BindingIds[I], Off);
    }
    genExpr(L->Body.get());
    // Squash the let locals so the result is contiguous with any operands
    // pushed before the let (e.g. earlier arguments of a call).
    if (!L->Inits.empty()) {
      emit(Op::Slide, static_cast<int32_t>(L->Inits.size()));
      popDepth(static_cast<int>(L->Inits.size()) + 1);
      pushDepth();
    }
    for (size_t I = 0; I < L->Inits.size(); ++I)
      Offsets.pop_back();
    return;
  }

  case AstKind::Lambda:
    genClosure(astCast<LambdaAst>(N));
    return;

  case AstKind::Call: {
    const auto *Call = astCast<CallAst>(N);
    genExpr(Call->Fn.get());
    for (const AstPtr &A : Call->Args)
      genExpr(A.get());
    emitTouchFor(Call->Fn.get(),
                 static_cast<int>(Call->Args.size())); // calling touches
    emit(Op::Call, static_cast<int32_t>(Call->Args.size()));
    popDepth(static_cast<int>(Call->Args.size()) + 1);
    pushDepth();
    return;
  }

  case AstKind::PrimCall:
    genPrimCall(astCast<PrimCallAst>(N));
    return;

  case AstKind::Future: {
    const auto *F = astCast<FutureAst>(N);
    genClosure(F->Thunk.get());
    emit(Op::FutureOp);
    return;
  }

  case AstKind::TouchExpr: {
    const auto *T = astCast<TouchAst>(N);
    genOperand(T->Expr.get(), /*Strict=*/true);
    return;
  }
  }
  assert(false && "unhandled AST kind in codegen");
}

} // namespace

Code *mult::generateCode(Program &P, CodeRegistry &Registry,
                         const CompilerOptions &Opts, CompileStats &Stats) {
  assert(P.Top && "generateCode on a failed Program");
  auto *Top = astCast<LambdaAst>(P.Top.get());
  FunctionGen G(P, Registry, Opts, Stats);
  return G.generate(Top, nullptr);
}

void Compiler::collectUserGlobals(const AstNode *N) {
  if (!N)
    return;
  switch (N->Kind) {
  case AstKind::Define:
    NonIntegrable.insert(astCast<DefineAst>(N)->Sym);
    collectUserGlobals(astCast<DefineAst>(N)->Val.get());
    return;
  case AstKind::SetVar: {
    const auto *S = astCast<SetVarAst>(N);
    if (S->Where == VarWhere::Global)
      NonIntegrable.insert(S->Sym);
    collectUserGlobals(S->Val.get());
    return;
  }
  case AstKind::If: {
    const auto *I = astCast<IfAst>(N);
    collectUserGlobals(I->Cond.get());
    collectUserGlobals(I->Then.get());
    collectUserGlobals(I->Else.get());
    return;
  }
  case AstKind::Begin:
    for (const AstPtr &F : astCast<BeginAst>(N)->Forms)
      collectUserGlobals(F.get());
    return;
  case AstKind::Let: {
    const auto *L = astCast<LetAst>(N);
    for (const AstPtr &I : L->Inits)
      collectUserGlobals(I.get());
    collectUserGlobals(L->Body.get());
    return;
  }
  case AstKind::Lambda:
    collectUserGlobals(astCast<LambdaAst>(N)->Body.get());
    return;
  case AstKind::Call: {
    const auto *C = astCast<CallAst>(N);
    collectUserGlobals(C->Fn.get());
    for (const AstPtr &A : C->Args)
      collectUserGlobals(A.get());
    return;
  }
  case AstKind::PrimCall:
    for (const AstPtr &A : astCast<PrimCallAst>(N)->Args)
      collectUserGlobals(A.get());
    return;
  case AstKind::Future:
    collectUserGlobals(astCast<FutureAst>(N)->Thunk->Body.get());
    return;
  case AstKind::TouchExpr:
    collectUserGlobals(astCast<TouchAst>(N)->Expr.get());
    return;
  case AstKind::Const:
  case AstKind::VarRef:
    return;
  }
}

void Compiler::prescanDefines(const std::vector<Value> &Forms) {
  for (Value F : Forms) {
    if (!isPair(F) || !isSymbolNamed(carOf(F), "define"))
      continue;
    Value Tail = cdrOf(F);
    if (!isPair(Tail))
      continue;
    Value NameOrSig = carOf(Tail);
    if (isSymbol(NameOrSig))
      NonIntegrable.insert(NameOrSig.asObject());
    else if (isPair(NameOrSig) && isSymbol(carOf(NameOrSig)))
      NonIntegrable.insert(carOf(NameOrSig).asObject());
  }
}

Compiler::Result Compiler::compile(Value Datum) {
  Result R;
  Expander::Result E = Exp.expand(Datum);
  if (!E.Ok) {
    R.Error = E.Error;
    return R;
  }

  AnalyzerOptions AOpts;
  AOpts.IntegratePrims = Opts.IntegratePrims;
  Analyzer A(AOpts, NonIntegrable);
  std::string Err;
  Program P = A.analyzeTopLevel(E.Datum, Err);
  if (!P.Top) {
    R.Error = Err;
    return R;
  }

  if (Opts.EmitTouchChecks && Opts.OptimizeTouches)
    runTouchOptimization(P);

  R.TopCode = generateCode(P, Registry, Opts, Stats);
  ++Stats.FormsCompiled;

  // Later forms must not integrate names this form defines or assigns.
  collectUserGlobals(P.Top.get());
  return R;
}
