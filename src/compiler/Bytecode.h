//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode for the Mul-T abstract machine.
///
/// The ORBIT compiler produced NS32332 native code; we target a compact
/// register-free stack bytecode whose per-opcode costs are calibrated in
/// abstract NS32332 instructions (vm/CostModel.h), so the paper's
/// instruction-count results (Table 1) and second-denominated results
/// (Tables 2-4, at ~1 MIPS) can both be reproduced.
///
/// Cost-relevant design points demanded by the paper (section 2.2):
///  - every procedure entry performs an explicit stack-overflow check
///    (many small task stacks under Unix), charged two instructions;
///  - an implicit touch is its own instruction costing two (tbit + beq);
///    the touch optimizer removes provably redundant ones;
///  - `(future X)` compiles to closure creation + the FutureOp runtime
///    call, i.e. `(*future (lambda () X))`.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_BYTECODE_H
#define MULT_COMPILER_BYTECODE_H

#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mult {

/// Opcodes of the abstract machine.
enum class Op : uint8_t {
  // Pushes.
  Const,       ///< push Constants[A]
  PushFixnum,  ///< push fixnum A
  PushNil,
  PushTrue,
  PushFalse,
  PushUnspecified,
  Local,       ///< push frame slot A (0 = the closure itself, 1 = first arg)
  SetLocal,    ///< pop into frame slot A (entry prologue boxing)
  Slide,       ///< pop result, drop A slots beneath, re-push (ends a let)
  Free,        ///< push current closure's captured value A
  Pop,         ///< drop top of stack

  // Boxes (assignment-converted variables).
  MakeBox,     ///< top = new box(top)
  BoxRef,      ///< top = unbox(top)
  BoxSet,      ///< pop value, pop box, box := value, push unspecified

  // Globals (value cell lives in the symbol, Constants[A]).
  GlobalRef,   ///< push global value; error if unbound
  GlobalSet,   ///< pop value into global cell (set! requires bound)
  GlobalDefine,///< pop value into global cell (define; may create)

  // Control.
  Closure,     ///< A = template constant index, B = free count (popped)
  Jump,        ///< pc = A
  JumpIfFalse, ///< pop; if #f, pc = A  (the test was touched separately)
  Call,        ///< A = argc; stack: [... fn a1..aA]
  TailCall,    ///< A = argc; reuse current frame
  Return,      ///< pop result, pop frame

  // Futures (the paper's core).
  TouchStack,  ///< touch stack[top-A] in place; may block the task
  TouchLocal,  ///< touch frame slot A in place, then push it; may block
  TouchBack,   ///< touch stack[top-A] in place AND store it to slot B
               ///< (write-back keeps the touch optimizer's facts true)
  FutureOp,    ///< pop thunk closure; create/inline/lazy-create a task

  // Open-coded strict primitives (touches are emitted separately so the
  // touch optimizer can remove them).
  Add, Sub, Mul, Quotient, Remainder,
  NumLt, NumLe, NumGt, NumGe, NumEq,
  Eq,          ///< eq? — pointer/bits identity (both operands touched)
  Cons, Car, Cdr, SetCar, SetCdr,
  NullP, PairP, Not,
  VectorRef, VectorSet, VectorLength,

  // Everything else.
  CallPrim,    ///< A = PrimId, B = argc; args on stack (no fn slot)
  PrimApplyVar,///< body of a variadic primitive wrapper: apply prim A to
               ///< this frame's arguments, however many there are
};

/// Returns the mnemonic for \p O.
const char *opName(Op O);

/// One instruction. A fixed-width three-word encoding keeps decode trivial;
/// the *cost* charged per instruction is the calibrated NS32332 figure, not
/// the host footprint.
struct Insn {
  Op Opcode;
  int32_t A = 0;
  int32_t B = 0;
};

/// A compiled procedure template.
struct Code {
  std::string Name;                ///< For backtraces and disassembly.
  uint32_t NumParams = 0;
  /// Accepts any argument count (variadic primitive wrappers).
  bool Variadic = false;
  std::vector<Insn> Insns;
  std::vector<Value> Constants;    ///< Permanent data; templates for Closure.
  /// Conservative bound on frame + operand stack words, used by the
  /// procedure-entry stack-overflow check.
  uint32_t MaxFrameWords = 0;
};

/// Renders \p C as an assembly-style listing (tests, REPL's :disassemble).
std::string disassemble(const Code &C);

} // namespace mult

#endif // MULT_COMPILER_BYTECODE_H
