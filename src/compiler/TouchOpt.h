//===----------------------------------------------------------------------===//
///
/// \file
/// The touch optimizer: a simple first-order type analysis (paper
/// section 2.2) that proves expressions non-future so strict consumers can
/// skip the implicit touch.
///
/// Facts tracked per unboxed local binding, flow-sensitively:
///  - constants, closures, and results of strict arithmetic are non-future;
///  - results of car/cdr/vector-ref are unknown (structures store futures
///    without touching them);
///  - once a variable has been touched (used in a strict position, or as an
///    `if` test), it stays non-future — the generated TouchLocal writes the
///    resolved value back to the slot;
///  - facts meet at `if` joins and never cross lambda boundaries (a
///    closure's body runs at another time, possibly on another processor).
///
/// Boxed (assigned) variables and globals never carry facts: another task
/// may store a fresh future into them at any moment.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_TOUCHOPT_H
#define MULT_COMPILER_TOUCHOPT_H

#include "compiler/Ast.h"

namespace mult {

/// Runs the analysis over \p P, setting AstNode::ResultNonFuture.
void runTouchOptimization(Program &P);

/// True when the called primitive's own result can never be an unresolved
/// future (e.g. `get` extracts stored values and is therefore false).
bool primResultNonFuture(PrimId Id);

} // namespace mult

#endif // MULT_COMPILER_TOUCHOPT_H
