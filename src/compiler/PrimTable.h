//===----------------------------------------------------------------------===//
///
/// \file
/// Registry of primitives shared by the compiler and the VM.
///
/// Two tiers, as in T3/ORBIT:
///  - *open-coded* primitives (car, +, eq?, ...) compile to dedicated
///    opcodes with separately emitted implicit touches, so the touch
///    optimizer can remove redundant checks;
///  - *called* primitives dispatch through Op::CallPrim and perform their
///    own internal touches (they are the "user library" tier).
///
/// Following T's "integrable procedures" convention, a primitive name is
/// compiled as a primitive unless the user program has defined or assigned
/// that global, in which case it reverts to an ordinary global call.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_PRIMTABLE_H
#define MULT_COMPILER_PRIMTABLE_H

#include "compiler/Bytecode.h"

#include <cstdint>
#include <optional>
#include <string_view>

namespace mult {

/// X-macro: Id, Lisp name, min arity, max arity (-1 = variadic),
/// base cycle cost.
#define MULT_PRIM_LIST(X)                                                      \
  X(List, "list", 0, -1, 4)                                                    \
  X(Append, "append", 0, -1, 6)                                                \
  X(Reverse, "reverse", 1, 1, 5)                                               \
  X(Length, "length", 1, 1, 4)                                                 \
  X(Memq, "memq", 2, 2, 4)                                                     \
  X(Member, "member", 2, 2, 5)                                                 \
  X(Assq, "assq", 2, 2, 4)                                                     \
  X(Assoc, "assoc", 2, 2, 5)                                                   \
  X(EqualP, "equal?", 2, 2, 5)                                                 \
  X(AtomP, "atom?", 1, 1, 2)                                                   \
  X(SymbolP, "symbol?", 1, 1, 2)                                               \
  X(NumberP, "number?", 1, 1, 2)                                               \
  X(StringP, "string?", 1, 1, 2)                                               \
  X(VectorP, "vector?", 1, 1, 2)                                               \
  X(BooleanP, "boolean?", 1, 1, 2)                                             \
  X(ProcedureP, "procedure?", 1, 1, 2)                                         \
  X(CharP, "char?", 1, 1, 2)                                                   \
  X(ZeroP, "zero?", 1, 1, 2)                                                   \
  X(NegativeP, "negative?", 1, 1, 2)                                           \
  X(PositiveP, "positive?", 1, 1, 2)                                           \
  X(OddP, "odd?", 1, 1, 2)                                                     \
  X(EvenP, "even?", 1, 1, 2)                                                   \
  X(Abs, "abs", 1, 1, 2)                                                       \
  X(Min, "min", 1, -1, 3)                                                      \
  X(Max, "max", 1, -1, 3)                                                      \
  X(Modulo, "modulo", 2, 2, 4)                                                 \
  X(Divide, "/", 1, -1, 6)                                                     \
  X(Get, "get", 2, 2, 5)                                                       \
  X(Put, "put", 3, 3, 6)                                                       \
  X(MakeVector, "make-vector", 1, 2, 8)                                        \
  X(VectorCtor, "vector", 0, -1, 6)                                            \
  X(ListToVector, "list->vector", 1, 1, 8)                                     \
  X(VectorToList, "vector->list", 1, 1, 8)                                     \
  X(VectorFill, "vector-fill!", 2, 2, 5)                                       \
  X(StringLength, "string-length", 1, 1, 2)                                    \
  X(StringRef, "string-ref", 2, 2, 3)                                          \
  X(StringAppend, "string-append", 0, -1, 8)                                   \
  X(StringEqualP, "string=?", 2, 2, 4)                                         \
  X(SymbolToString, "symbol->string", 1, 1, 2)                                 \
  X(StringToSymbol, "string->symbol", 1, 1, 8)                                 \
  X(NumberToString, "number->string", 1, 1, 8)                                 \
  X(CharToInteger, "char->integer", 1, 1, 2)                                   \
  X(IntegerToChar, "integer->char", 1, 1, 2)                                   \
  X(Display, "display", 1, 1, 10)                                              \
  X(WritePrim, "write", 1, 1, 10)                                              \
  X(Newline, "newline", 0, 0, 6)                                               \
  X(Random, "random", 1, 1, 6)                                                 \
  X(ErrorPrim, "error", 1, -1, 8)                                              \
  X(MakeSemaphore, "make-semaphore", 0, 1, 8)                                  \
  X(SemaphoreP, "semaphore-p", 1, 1, 6)                                        \
  X(SemaphoreV, "semaphore-v", 1, 1, 6)                                        \
  X(DynPush, "%dyn-push", 2, 2, 6)                                             \
  X(DynPop, "%dyn-pop", 0, 0, 4)                                               \
  X(DynRef, "%dyn-ref", 1, 1, 5)                                               \
  X(DynSet, "%dyn-set!", 2, 2, 5)                                              \
  X(DynDefine, "%dyn-define", 2, 2, 6)                                         \
  X(Apply, "apply", 2, 2, 6)                                                   \
  X(GcPrim, "%gc", 0, 0, 10)                                                   \
  X(FutureP, "future?", 1, 1, 1)                                               \
  X(DeterminedP, "determined?", 1, 1, 2)                                       \
  X(CurrentTask, "current-task-id", 0, 0, 2)                                   \
  X(CurrentProcessor, "current-processor", 0, 0, 2)                            \
  X(AddN, "%+", 0, -1, 3)                                                      \
  X(SubN, "%-", 1, -1, 3)                                                      \
  X(MulN, "%*", 0, -1, 3)

/// Identifiers for called primitives.
enum class PrimId : uint16_t {
#define MULT_PRIM_ENUM(Id, Name, Min, Max, Cost) Id,
  MULT_PRIM_LIST(MULT_PRIM_ENUM)
#undef MULT_PRIM_ENUM
  NumPrims
};

/// Static description of a called primitive.
struct PrimInfo {
  PrimId Id;
  const char *Name;
  int MinArgs;
  int MaxArgs; ///< -1 means variadic.
  uint32_t BaseCost;
};

/// Returns the descriptor for \p Id.
const PrimInfo &primInfo(PrimId Id);

/// Finds a called primitive by Lisp name.
std::optional<PrimId> lookupPrim(std::string_view Name);

/// Description of an open-coded primitive.
struct FastOpInfo {
  Op Opcode;
  int Arity;            ///< Exact stack arity of the opcode.
  uint32_t StrictMask;  ///< Bit i set: operand i is implicitly touched.
  bool ResultNonFuture; ///< The op's own result can never be a future.
};

/// Finds an open-coded primitive by Lisp name. Multi-arity arithmetic
/// (`(+ a b c)`) is folded to chains of the binary opcode by the code
/// generator.
std::optional<FastOpInfo> lookupFastOp(std::string_view Name);

} // namespace mult

#endif // MULT_COMPILER_PRIMTABLE_H
