//===----------------------------------------------------------------------===//
///
/// \file
/// Lexical analysis: expanded datum -> core AST.
///
/// Performs scope resolution with flat-closure free-variable capture,
/// assignment detection (for box conversion), primitive integration (a la
/// T's integrable procedures), n-ary arithmetic folding, and the
/// `(future X)` -> thunk-lambda rewrite.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_ANALYZER_H
#define MULT_COMPILER_ANALYZER_H

#include "compiler/Ast.h"
#include "runtime/DatumBuilder.h"

#include <string>
#include <unordered_set>

namespace mult {

/// Options controlling analysis.
struct AnalyzerOptions {
  /// Compile known primitive names to primitives when the global is not
  /// user-defined.
  bool IntegratePrims = true;
};

/// The analyzer. One instance per compiled top-level form.
class Analyzer {
public:
  /// \p NonIntegrable holds global symbols the user has defined or
  /// assigned; those names never integrate as primitives.
  Analyzer(const AnalyzerOptions &Opts,
           const std::unordered_set<Object *> &NonIntegrable)
      : Opts(Opts), NonIntegrable(NonIntegrable) {}

  /// Analyzes one fully expanded top-level form. On failure returns a
  /// Program with a null Top and fills \p Error.
  Program analyzeTopLevel(Value Form, std::string &Error);

private:
  struct FunctionCtx;
  struct Scope;

  AstPtr analyze(Value Form);
  AstPtr analyzeLambda(Value Params, Value Body, std::string Name);
  AstPtr analyzeLet(Value Form);
  AstPtr analyzeCall(Value Form);
  AstPtr analyzeVar(Object *Sym);
  AstPtr analyzeSet(Value Form);
  AstPtr makeFuture(Value ChildExpr);

  /// Resolves \p Sym; fills Where/Id. Returns false for globals.
  bool resolveLexical(Object *Sym, VarWhere &Where, int &Id);
  int captureInto(size_t FnLevel, int OriginBinding, Object *Sym);

  AstPtr fail(const char *Msg, Value Form);
  int newBinding(Object *Sym);

  const AnalyzerOptions &Opts;
  const std::unordered_set<Object *> &NonIntegrable;
  Program Prog;
  std::string Error;
  std::vector<FunctionCtx *> FnStack;
  Scope *CurrentScope = nullptr;
  bool AtTopLevel = true;
};

} // namespace mult

#endif // MULT_COMPILER_ANALYZER_H
