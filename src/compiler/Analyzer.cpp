//===----------------------------------------------------------------------===//
///
/// \file
/// Analyzer implementation.
///
//===----------------------------------------------------------------------===//

#include "compiler/Analyzer.h"

#include "runtime/Printer.h"
#include "support/StrUtil.h"

using namespace mult;

/// A lexical contour (one let or lambda parameter list).
struct Analyzer::Scope {
  Scope *Parent = nullptr;
  size_t FnLevel = 0; ///< Index into FnStack of the owning function.
  std::vector<std::pair<Object *, int>> Names; ///< sym -> binding id.
};

/// Per-function (lambda) analysis state.
struct Analyzer::FunctionCtx {
  LambdaAst *Node = nullptr;
  /// Origin binding id for each free slot (used to dedup captures).
  std::vector<int> FreeOrigins;
};

int Analyzer::newBinding(Object *Sym) {
  Prog.Bindings.push_back(BindingInfo{Sym, false});
  return static_cast<int>(Prog.Bindings.size() - 1);
}

AstPtr Analyzer::fail(const char *Msg, Value Form) {
  if (Error.empty())
    Error = strFormat("compile error: %s in %s", Msg,
                      valueToString(Form).c_str());
  return nullptr;
}

Program Analyzer::analyzeTopLevel(Value Form, std::string &Err) {
  // The top-level form is compiled as the body of a nullary function.
  auto TopLambda = std::make_unique<LambdaAst>();
  TopLambda->Name = "top-level";
  FunctionCtx TopCtx;
  TopCtx.Node = TopLambda.get();
  FnStack.push_back(&TopCtx);
  Scope TopScope;
  TopScope.FnLevel = 0;
  CurrentScope = &TopScope;
  AtTopLevel = true;

  TopLambda->Body = analyze(Form);
  FnStack.pop_back();
  CurrentScope = nullptr;

  if (!TopLambda->Body) {
    Err = Error.empty() ? "compile error: unknown" : Error;
    return Program{};
  }
  Prog.Top = std::move(TopLambda);
  return std::move(Prog);
}

bool Analyzer::resolveLexical(Object *Sym, VarWhere &Where, int &Id) {
  // Find the innermost binding.
  size_t FoundLevel = 0;
  int Binding = -1;
  for (Scope *S = CurrentScope; S; S = S->Parent) {
    for (size_t I = S->Names.size(); I > 0; --I) {
      if (S->Names[I - 1].first == Sym) {
        Binding = S->Names[I - 1].second;
        FoundLevel = S->FnLevel;
        break;
      }
    }
    if (Binding >= 0)
      break;
  }
  if (Binding < 0)
    return false;

  size_t CurLevel = FnStack.size() - 1;
  if (FoundLevel == CurLevel) {
    Where = VarWhere::Local;
    Id = Binding;
    return true;
  }

  // Thread the capture through every intervening function.
  int Slot = Binding;
  for (size_t L = FoundLevel + 1; L <= CurLevel; ++L)
    Slot = captureInto(L, Binding, Sym);
  Where = VarWhere::Free;
  Id = Slot;
  return true;
}

int Analyzer::captureInto(size_t FnLevel, int OriginBinding, Object *Sym) {
  FunctionCtx &Ctx = *FnStack[FnLevel];
  for (size_t I = 0; I < Ctx.FreeOrigins.size(); ++I)
    if (Ctx.FreeOrigins[I] == OriginBinding)
      return static_cast<int>(I);

  // New capture. Its source in the *parent* function: either the binding
  // itself (parent owns it) or the parent's own free slot for it.
  LambdaAst::Capture Cap;
  Cap.OriginBindingId = OriginBinding;
  FunctionCtx &Parent = *FnStack[FnLevel - 1];
  Cap.FromParentFree = false;
  Cap.Index = OriginBinding;
  for (size_t I = 0; I < Parent.FreeOrigins.size(); ++I) {
    if (Parent.FreeOrigins[I] == OriginBinding) {
      Cap.FromParentFree = true;
      Cap.Index = static_cast<int>(I);
      break;
    }
  }
  (void)Sym;
  Ctx.Node->Captures.push_back(Cap);
  Ctx.FreeOrigins.push_back(OriginBinding);
  return static_cast<int>(Ctx.FreeOrigins.size() - 1);
}

AstPtr Analyzer::analyzeVar(Object *Sym) {
  VarWhere Where;
  int Id;
  if (resolveLexical(Sym, Where, Id))
    return std::make_unique<VarRefAst>(Where, Id, Sym);
  return std::make_unique<VarRefAst>(VarWhere::Global, -1, Sym);
}

AstPtr Analyzer::analyze(Value Form) {
  bool WasTop = AtTopLevel;
  AtTopLevel = false;

  if (isSymbol(Form))
    return analyzeVar(Form.asObject());
  if (!isPair(Form)) {
    // Self-evaluating.
    return std::make_unique<ConstAst>(Form);
  }

  Value Head = carOf(Form);
  if (isSymbol(Head)) {
    std::string_view Name = Head.asObject()->symbolText();
    VarWhere W;
    int Id;
    bool Shadowed = resolveLexical(Head.asObject(), W, Id);
    if (!Shadowed) {
      if (Name == "quote") {
        if (listLength(Form) != 2)
          return fail("malformed quote", Form);
        return std::make_unique<ConstAst>(carOf(cdrOf(Form)));
      }
      if (Name == "if") {
        int64_t N = listLength(Form);
        if (N != 3 && N != 4)
          return fail("malformed if", Form);
        AstPtr C = analyze(carOf(cdrOf(Form)));
        if (!C)
          return nullptr;
        AstPtr T = analyze(carOf(cdrOf(cdrOf(Form))));
        if (!T)
          return nullptr;
        AstPtr E;
        if (N == 4) {
          E = analyze(carOf(cdrOf(cdrOf(cdrOf(Form)))));
          if (!E)
            return nullptr;
        } else {
          E = std::make_unique<ConstAst>(Value::unspecified());
        }
        return std::make_unique<IfAst>(std::move(C), std::move(T),
                                       std::move(E));
      }
      if (Name == "set!")
        return analyzeSet(Form);
      if (Name == "define") {
        if (!WasTop)
          return fail("define is only allowed at top level", Form);
        if (listLength(Form) != 3 || !isSymbol(carOf(cdrOf(Form))))
          return fail("malformed define", Form);
        Object *Sym = carOf(cdrOf(Form)).asObject();
        AstPtr V = analyze(carOf(cdrOf(cdrOf(Form))));
        if (!V)
          return nullptr;
        // Name closures after their defining variable.
        if (auto *L = astDynCast<LambdaAst>(V.get()))
          if (L->Name.empty())
            L->Name = std::string(Sym->symbolText());
        return std::make_unique<DefineAst>(Sym, std::move(V));
      }
      if (Name == "lambda") {
        if (listLength(Form) != 3)
          return fail("malformed lambda (expander should have normalized)",
                      Form);
        return analyzeLambda(carOf(cdrOf(Form)), carOf(cdrOf(cdrOf(Form))),
                             "");
      }
      if (Name == "begin") {
        std::vector<AstPtr> Forms;
        for (Value P = cdrOf(Form); !P.isNil(); P = cdrOf(P)) {
          AtTopLevel = WasTop; // defines stay legal in top-level begins
          AstPtr F = analyze(carOf(P));
          if (!F)
            return nullptr;
          Forms.push_back(std::move(F));
        }
        if (Forms.empty())
          return fail("empty begin", Form);
        if (Forms.size() == 1)
          return std::move(Forms[0]);
        return std::make_unique<BeginAst>(std::move(Forms));
      }
      if (Name == "let")
        return analyzeLet(Form);
      if (Name == "future") {
        if (listLength(Form) != 2)
          return fail("malformed future", Form);
        return makeFuture(carOf(cdrOf(Form)));
      }
      if (Name == "touch") {
        if (listLength(Form) != 2)
          return fail("malformed touch", Form);
        AstPtr E = analyze(carOf(cdrOf(Form)));
        if (!E)
          return nullptr;
        return std::make_unique<TouchAst>(std::move(E));
      }
    }
  }
  return analyzeCall(Form);
}

AstPtr Analyzer::analyzeSet(Value Form) {
  if (listLength(Form) != 3 || !isSymbol(carOf(cdrOf(Form))))
    return fail("malformed set!", Form);
  Object *Sym = carOf(cdrOf(Form)).asObject();
  AstPtr V = analyze(carOf(cdrOf(cdrOf(Form))));
  if (!V)
    return nullptr;
  VarWhere Where;
  int Id;
  if (resolveLexical(Sym, Where, Id)) {
    // Mark the origin binding assigned (=> boxed). For Free references the
    // Id is a slot; recover the origin from the current function context.
    if (Where == VarWhere::Local) {
      Prog.Bindings[static_cast<size_t>(Id)].Assigned = true;
    } else {
      int Origin = FnStack.back()->FreeOrigins[static_cast<size_t>(Id)];
      Prog.Bindings[static_cast<size_t>(Origin)].Assigned = true;
    }
    return std::make_unique<SetVarAst>(Where, Id, Sym, std::move(V));
  }
  return std::make_unique<SetVarAst>(VarWhere::Global, -1, Sym, std::move(V));
}

AstPtr Analyzer::analyzeLambda(Value Params, Value Body, std::string Name) {
  auto L = std::make_unique<LambdaAst>();
  L->Name = std::move(Name);

  FunctionCtx Ctx;
  Ctx.Node = L.get();
  FnStack.push_back(&Ctx);

  Scope S;
  S.Parent = CurrentScope;
  S.FnLevel = FnStack.size() - 1;
  for (Value P = Params; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P)) {
      FnStack.pop_back();
      return fail("rest parameters are not supported", Params);
    }
    if (!isSymbol(carOf(P))) {
      FnStack.pop_back();
      return fail("parameter is not a symbol", Params);
    }
    int Id = newBinding(carOf(P).asObject());
    L->ParamIds.push_back(Id);
    S.Names.emplace_back(carOf(P).asObject(), Id);
  }
  CurrentScope = &S;
  L->Body = analyze(Body);
  CurrentScope = S.Parent;
  FnStack.pop_back();
  if (!L->Body)
    return nullptr;
  return L;
}

AstPtr Analyzer::makeFuture(Value ChildExpr) {
  // (future X) == (*future (lambda () X)): analyzing X inside a fresh
  // nullary function makes the capture machinery copy X's free variables
  // into the closure, as the paper requires.
  auto L = std::make_unique<LambdaAst>();
  L->Name = "future-thunk";
  FunctionCtx Ctx;
  Ctx.Node = L.get();
  FnStack.push_back(&Ctx);
  Scope S;
  S.Parent = CurrentScope;
  S.FnLevel = FnStack.size() - 1;
  CurrentScope = &S;
  L->Body = analyze(ChildExpr);
  CurrentScope = S.Parent;
  FnStack.pop_back();
  if (!L->Body)
    return nullptr;
  return std::make_unique<FutureAst>(std::move(L));
}

AstPtr Analyzer::analyzeLet(Value Form) {
  if (listLength(Form) != 3)
    return fail("malformed let", Form);
  Value Bindings = carOf(cdrOf(Form));
  Value Body = carOf(cdrOf(cdrOf(Form)));

  auto L = std::make_unique<LetAst>();
  Scope S;
  S.Parent = CurrentScope;
  S.FnLevel = FnStack.size() - 1;
  for (Value P = Bindings; !P.isNil(); P = cdrOf(P)) {
    Value Binding = carOf(P);
    Object *Sym = carOf(Binding).asObject();
    // Inits are analyzed in the enclosing scope.
    AstPtr Init = analyze(carOf(cdrOf(Binding)));
    if (!Init)
      return nullptr;
    int Id = newBinding(Sym);
    L->BindingIds.push_back(Id);
    L->Inits.push_back(std::move(Init));
    S.Names.emplace_back(Sym, Id);
  }
  CurrentScope = &S;
  L->Body = analyze(Body);
  CurrentScope = S.Parent;
  if (!L->Body)
    return nullptr;
  return L;
}

AstPtr Analyzer::analyzeCall(Value Form) {
  Value Head = carOf(Form);

  // Count and analyze arguments.
  std::vector<AstPtr> Args;
  for (Value P = cdrOf(Form); !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P))
      return fail("improper argument list", Form);
    AstPtr A = analyze(carOf(P));
    if (!A)
      return nullptr;
    Args.push_back(std::move(A));
  }

  // Primitive integration: the head is a symbol, lexically unbound, not
  // user-defined, and names a primitive.
  if (Opts.IntegratePrims && isSymbol(Head)) {
    Object *Sym = Head.asObject();
    VarWhere W;
    int Id;
    if (!resolveLexical(Sym, W, Id) && !NonIntegrable.count(Sym)) {
      std::string_view Name = Sym->symbolText();
      if (auto Fast = lookupFastOp(Name)) {
        // N-ary arithmetic folding.
        if (Name == "+" || Name == "*" || Name == "-") {
          int64_t Identity = (Name == "*") ? 1 : 0;
          if (Args.empty()) {
            if (Name == "-")
              return fail("'-' needs at least one argument", Form);
            return std::make_unique<ConstAst>(Value::fixnum(Identity));
          }
          if (Args.size() == 1 && Name == "-") {
            // (- x) => (- 0 x)
            auto P = std::make_unique<PrimCallAst>();
            P->IsFast = true;
            P->Fast = *Fast;
            P->Name = std::string(Name);
            P->Args.push_back(
                std::make_unique<ConstAst>(Value::fixnum(0)));
            P->Args.push_back(std::move(Args[0]));
            return P;
          }
          if (Args.size() == 1) {
            // (+ x) => (+ x 0): preserves the type check on x.
            auto P = std::make_unique<PrimCallAst>();
            P->IsFast = true;
            P->Fast = *Fast;
            P->Name = std::string(Name);
            P->Args.push_back(std::move(Args[0]));
            P->Args.push_back(
                std::make_unique<ConstAst>(Value::fixnum(Identity)));
            return P;
          }
          // Left fold.
          AstPtr Acc = std::move(Args[0]);
          for (size_t I = 1; I < Args.size(); ++I) {
            auto P = std::make_unique<PrimCallAst>();
            P->IsFast = true;
            P->Fast = *Fast;
            P->Name = std::string(Name);
            P->Args.push_back(std::move(Acc));
            P->Args.push_back(std::move(Args[I]));
            Acc = std::move(P);
          }
          return Acc;
        }
        if (static_cast<int>(Args.size()) != Fast->Arity)
          return fail("wrong number of arguments to primitive", Form);
        auto P = std::make_unique<PrimCallAst>();
        P->IsFast = true;
        P->Fast = *Fast;
        P->Name = std::string(Name);
        P->Args = std::move(Args);
        return P;
      }
      if (auto Prim = lookupPrim(Name)) {
        const PrimInfo &Info = primInfo(*Prim);
        if (static_cast<int>(Args.size()) < Info.MinArgs ||
            (Info.MaxArgs >= 0 &&
             static_cast<int>(Args.size()) > Info.MaxArgs))
          return fail("wrong number of arguments to primitive", Form);
        auto P = std::make_unique<PrimCallAst>();
        P->IsFast = false;
        P->Prim = *Prim;
        P->Name = std::string(Name);
        P->Args = std::move(Args);
        return P;
      }
    }
  }

  AstPtr Fn = analyze(Head);
  if (!Fn)
    return nullptr;
  return std::make_unique<CallAst>(std::move(Fn), std::move(Args));
}
