//===----------------------------------------------------------------------===//
///
/// \file
/// Expander implementation.
///
//===----------------------------------------------------------------------===//

#include "compiler/Expander.h"

#include "runtime/Printer.h"
#include "support/StrUtil.h"

#include <vector>

using namespace mult;

Expander::Result Expander::err(const char *What, Value Form) {
  return Result::failure(
      strFormat("expand error: %s in %s", What, valueToString(Form).c_str()));
}

Value Expander::gensym(const char *Hint) {
  // '#:' cannot be produced by the reader, so generated names never collide
  // with user symbols.
  return B.symbol(strFormat("#:%s%u", Hint, GensymCounter++));
}

Expander::Result Expander::expand(Value Form) { return expandForm(Form); }

Expander::Result Expander::expandSequence(Value Forms) {
  std::vector<Value> Out;
  for (Value P = Forms; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P))
      return err("improper form list", Forms);
    Result R = expandForm(carOf(P));
    if (!R.Ok)
      return R;
    Out.push_back(R.Datum);
  }
  return Result::success(B.listFromVector(Out));
}

/// Splits leading internal defines off \p Body and rewrites them to a
/// letrec; returns a single expanded expression.
Expander::Result Expander::expandBody(Value Body) {
  if (Body.isNil())
    return err("empty body", Body);

  std::vector<Value> Defines;
  Value Rest = Body;
  while (isPair(Rest) && isPair(carOf(Rest)) &&
         isSymbolNamed(carOf(carOf(Rest)), "define")) {
    Defines.push_back(carOf(Rest));
    Rest = cdrOf(Rest);
  }

  if (!Defines.empty()) {
    if (Rest.isNil())
      return err("body consists only of internal defines", Body);
    // (define (f . a) b...) -> (define f (lambda a b...)) first, then
    // letrec over all of them.
    std::vector<Value> Bindings;
    for (Value D : Defines) {
      Value Tail = cdrOf(D);
      if (!isPair(Tail))
        return err("malformed internal define", D);
      Value NameOrSig = carOf(Tail);
      if (isPair(NameOrSig)) {
        Value Name = carOf(NameOrSig);
        Value Params = cdrOf(NameOrSig);
        Value LambdaForm =
            B.cons(sym("lambda"), B.cons(Params, cdrOf(Tail)));
        Bindings.push_back(list2(Name, LambdaForm));
      } else {
        if (!isSymbol(NameOrSig) || !isPair(cdrOf(Tail)))
          return err("malformed internal define", D);
        Bindings.push_back(list2(NameOrSig, carOf(cdrOf(Tail))));
      }
    }
    Value Letrec =
        B.cons(sym("letrec"), B.cons(B.listFromVector(Bindings), Rest));
    return expandForm(Letrec);
  }

  // No internal defines: (begin body...) or the single expression.
  if (cdrOf(Body).isNil())
    return expandForm(carOf(Body));
  Result Seq = expandSequence(Body);
  if (!Seq.Ok)
    return Seq;
  return Result::success(B.cons(sym("begin"), Seq.Datum));
}

Expander::Result Expander::expandForm(Value Form) {
  // Atoms self-expand.
  if (!isPair(Form))
    return Result::success(Form);

  Value Head = carOf(Form);
  if (isSymbol(Head)) {
    std::string_view Name = Head.asObject()->symbolText();
    if (Name == "quote")
      return Result::success(Form);
    if (Name == "if") {
      int64_t N = listLength(Form);
      if (N != 3 && N != 4)
        return err("if takes 2 or 3 subforms", Form);
      Result C = expandForm(carOf(cdrOf(Form)));
      if (!C.Ok)
        return C;
      Result T = expandForm(carOf(cdrOf(cdrOf(Form))));
      if (!T.Ok)
        return T;
      if (N == 3)
        return Result::success(B.cons(sym("if"), list2(C.Datum, T.Datum)));
      Result E = expandForm(carOf(cdrOf(cdrOf(cdrOf(Form)))));
      if (!E.Ok)
        return E;
      return Result::success(
          B.cons(sym("if"), B.cons(C.Datum, list2(T.Datum, E.Datum))));
    }
    if (Name == "set!") {
      if (listLength(Form) != 3 || !isSymbol(carOf(cdrOf(Form))))
        return err("malformed set!", Form);
      Result V = expandForm(carOf(cdrOf(cdrOf(Form))));
      if (!V.Ok)
        return V;
      return Result::success(
          B.cons(sym("set!"), list2(carOf(cdrOf(Form)), V.Datum)));
    }
    if (Name == "define")
      return expandDefine(Form);
    if (Name == "lambda")
      return expandLambda(Form);
    if (Name == "begin") {
      if (cdrOf(Form).isNil())
        return err("empty begin", Form);
      Result Seq = expandSequence(cdrOf(Form));
      if (!Seq.Ok)
        return Seq;
      return Result::success(B.cons(sym("begin"), Seq.Datum));
    }
    if (Name == "future" || Name == "touch") {
      if (listLength(Form) != 2)
        return err("future/touch take one subform", Form);
      Result E = expandForm(carOf(cdrOf(Form)));
      if (!E.Ok)
        return E;
      return Result::success(B.cons(Head, list1(E.Datum)));
    }
    if (Name == "let")
      return expandLet(Form);
    if (Name == "let*")
      return expandLetStar(Form);
    if (Name == "letrec")
      return expandLetrec(Form);
    if (Name == "cond")
      return expandCond(Form);
    if (Name == "case")
      return expandCase(Form);
    if (Name == "and")
      return expandAnd(Form);
    if (Name == "or")
      return expandOr(Form);
    if (Name == "when")
      return expandWhenUnless(Form, true);
    if (Name == "unless")
      return expandWhenUnless(Form, false);
    if (Name == "do")
      return expandDo(Form);
    if (Name == "quasiquote") {
      if (listLength(Form) != 2)
        return err("malformed quasiquote", Form);
      return expandQuasi(carOf(cdrOf(Form)), 0);
    }
    if (Name == "unquote" || Name == "unquote-splicing")
      return err("unquote outside quasiquote", Form);
    if (Name == "bind" || Name == "fluid-let")
      return expandBind(Form);
    if (Name == "define-fluid") {
      if (listLength(Form) != 3 || !isSymbol(carOf(cdrOf(Form))))
        return err("malformed define-fluid", Form);
      Result Init = expandForm(carOf(cdrOf(cdrOf(Form))));
      if (!Init.Ok)
        return Init;
      return Result::success(list3(sym("%dyn-define"),
                                   list2(sym("quote"), carOf(cdrOf(Form))),
                                   Init.Datum));
    }
    if (Name == "fluid") {
      if (listLength(Form) != 2 || !isSymbol(carOf(cdrOf(Form))))
        return err("malformed fluid reference", Form);
      return Result::success(
          list2(sym("%dyn-ref"), list2(sym("quote"), carOf(cdrOf(Form)))));
    }
    if (Name == "set-fluid!") {
      if (listLength(Form) != 3 || !isSymbol(carOf(cdrOf(Form))))
        return err("malformed set-fluid!", Form);
      Result V = expandForm(carOf(cdrOf(cdrOf(Form))));
      if (!V.Ok)
        return V;
      return Result::success(list3(sym("%dyn-set!"),
                                   list2(sym("quote"), carOf(cdrOf(Form))),
                                   V.Datum));
    }
  }

  // Ordinary application: expand every element.
  return expandSequence(Form);
}

Expander::Result Expander::expandDefine(Value Form) {
  Value Tail = cdrOf(Form);
  if (!isPair(Tail))
    return err("malformed define", Form);
  Value NameOrSig = carOf(Tail);
  if (isPair(NameOrSig)) {
    // (define (f . params) body...) sugar.
    Value Name = carOf(NameOrSig);
    if (!isSymbol(Name))
      return err("define of a non-symbol", Form);
    Value LambdaForm =
        B.cons(sym("lambda"), B.cons(cdrOf(NameOrSig), cdrOf(Tail)));
    Result L = expandForm(LambdaForm);
    if (!L.Ok)
      return L;
    return Result::success(list3(sym("define"), Name, L.Datum));
  }
  if (!isSymbol(NameOrSig) || listLength(Form) != 3)
    return err("malformed define", Form);
  Result V = expandForm(carOf(cdrOf(Tail)));
  if (!V.Ok)
    return V;
  return Result::success(list3(sym("define"), NameOrSig, V.Datum));
}

Expander::Result Expander::expandLambda(Value Form) {
  if (!isPair(cdrOf(Form)))
    return err("malformed lambda", Form);
  Value Params = carOf(cdrOf(Form));
  Result Body = expandBody(cdrOf(cdrOf(Form)));
  if (!Body.Ok)
    return Body;
  return Result::success(
      B.cons(sym("lambda"), list2(Params, Body.Datum)));
}

Expander::Result Expander::expandLet(Value Form) {
  Value Tail = cdrOf(Form);
  if (!isPair(Tail))
    return err("malformed let", Form);
  if (isSymbol(carOf(Tail))) {
    if (!isPair(cdrOf(Tail)))
      return err("malformed named let", Form);
    return expandNamedLet(carOf(Tail), carOf(cdrOf(Tail)), cdrOf(cdrOf(Tail)));
  }

  Value Bindings = carOf(Tail);
  std::vector<Value> Expanded;
  for (Value P = Bindings; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P) || !isPair(carOf(P)) || !isSymbol(carOf(carOf(P))) ||
        listLength(carOf(P)) != 2)
      return err("malformed let binding", Form);
    Result Init = expandForm(carOf(cdrOf(carOf(P))));
    if (!Init.Ok)
      return Init;
    Expanded.push_back(list2(carOf(carOf(P)), Init.Datum));
  }
  Result Body = expandBody(cdrOf(Tail));
  if (!Body.Ok)
    return Body;
  return Result::success(B.cons(
      sym("let"), list2(B.listFromVector(Expanded), Body.Datum)));
}

Expander::Result Expander::expandLetStar(Value Form) {
  Value Tail = cdrOf(Form);
  if (!isPair(Tail))
    return err("malformed let*", Form);
  Value Bindings = carOf(Tail);
  Value Body = cdrOf(Tail);
  if (Bindings.isNil())
    return expandForm(B.cons(sym("let"), B.cons(Value::nil(), Body)));
  if (!isPair(Bindings))
    return err("malformed let* bindings", Form);
  // (let* (b1 b2...) body) -> (let (b1) (let* (b2...) body))
  Value Inner = B.cons(sym("let*"), B.cons(cdrOf(Bindings), Body));
  return expandForm(
      B.cons(sym("let"), list2(list1(carOf(Bindings)), Inner)));
}

Expander::Result Expander::expandLetrec(Value Form) {
  Value Tail = cdrOf(Form);
  if (!isPair(Tail))
    return err("malformed letrec", Form);
  Value Bindings = carOf(Tail);
  Value Body = cdrOf(Tail);
  // (letrec ((v e)...) body) ->
  //   (let ((v #f)...) (set! v e) ... body...)
  std::vector<Value> Dummies;
  std::vector<Value> Sets;
  for (Value P = Bindings; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P) || !isPair(carOf(P)) || listLength(carOf(P)) != 2 ||
        !isSymbol(carOf(carOf(P))))
      return err("malformed letrec binding", Form);
    Value Name = carOf(carOf(P));
    Value Init = carOf(cdrOf(carOf(P)));
    Dummies.push_back(list2(Name, Value::falseV()));
    Sets.push_back(list3(sym("set!"), Name, Init));
  }
  Value NewBody = Body;
  for (size_t I = Sets.size(); I > 0; --I)
    NewBody = B.cons(Sets[I - 1], NewBody);
  return expandForm(
      B.cons(sym("let"), B.cons(B.listFromVector(Dummies), NewBody)));
}

Expander::Result Expander::expandNamedLet(Value Name, Value Bindings,
                                          Value Body) {
  std::vector<Value> Vars;
  std::vector<Value> Inits;
  for (Value P = Bindings; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P) || !isPair(carOf(P)) || listLength(carOf(P)) != 2 ||
        !isSymbol(carOf(carOf(P))))
      return err("malformed named-let binding", Bindings);
    Vars.push_back(carOf(carOf(P)));
    Inits.push_back(carOf(cdrOf(carOf(P))));
  }
  // ((letrec ((name (lambda (vars...) body...))) name) inits...)
  Value Lambda =
      B.cons(sym("lambda"), B.cons(B.listFromVector(Vars), Body));
  Value Letrec = list3(sym("letrec"), list1(list2(Name, Lambda)), Name);
  return expandForm(B.cons(Letrec, B.listFromVector(Inits)));
}

Expander::Result Expander::expandCond(Value Form) {
  Value Clauses = cdrOf(Form);
  if (Clauses.isNil())
    return Result::success(Value::falseV());
  if (!isPair(Clauses))
    return err("malformed cond", Form);
  Value Clause = carOf(Clauses);
  if (!isPair(Clause))
    return err("malformed cond clause", Form);
  Value Test = carOf(Clause);
  Value Exprs = cdrOf(Clause);
  if (isSymbolNamed(Test, "else")) {
    if (Exprs.isNil())
      return err("empty else clause", Form);
    return expandForm(B.cons(sym("begin"), Exprs));
  }
  Value Rest = B.cons(sym("cond"), cdrOf(Clauses));
  if (Exprs.isNil()) {
    // (cond (test) rest...) -> (or test (cond rest...))
    return expandForm(list3(sym("or"), Test, Rest));
  }
  // (cond (test e...) rest...) -> (if test (begin e...) (cond rest...))
  Value IfForm = B.cons(
      sym("if"), B.cons(Test, list2(B.cons(sym("begin"), Exprs), Rest)));
  return expandForm(IfForm);
}

Expander::Result Expander::expandCase(Value Form) {
  // (case key ((d...) e...) ... (else e...))
  Value Tail = cdrOf(Form);
  if (!isPair(Tail))
    return err("malformed case", Form);
  Value Key = carOf(Tail);
  Value T = gensym("case");
  // Build cond clauses comparing with eq? (fixnum/symbol/char keys).
  std::vector<Value> CondClauses;
  for (Value P = cdrOf(Tail); !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P) || !isPair(carOf(P)))
      return err("malformed case clause", Form);
    Value Clause = carOf(P);
    Value Data = carOf(Clause);
    Value Exprs = cdrOf(Clause);
    if (isSymbolNamed(Data, "else")) {
      CondClauses.push_back(B.cons(sym("else"), Exprs));
      continue;
    }
    std::vector<Value> Tests;
    for (Value D = Data; !D.isNil(); D = cdrOf(D)) {
      if (!isPair(D))
        return err("malformed case datum list", Form);
      Tests.push_back(
          list3(sym("eq?"), T, list2(sym("quote"), carOf(D))));
    }
    Value TestExpr = Tests.size() == 1
                         ? Tests[0]
                         : B.cons(sym("or"), B.listFromVector(Tests));
    CondClauses.push_back(B.cons(TestExpr, Exprs));
  }
  Value CondForm = B.cons(sym("cond"), B.listFromVector(CondClauses));
  Value LetForm = B.cons(
      sym("let"), list2(list1(list2(T, Key)), CondForm));
  return expandForm(LetForm);
}

Expander::Result Expander::expandAnd(Value Form) {
  Value Args = cdrOf(Form);
  if (Args.isNil())
    return Result::success(Value::trueV());
  if (cdrOf(Args).isNil())
    return expandForm(carOf(Args));
  // (and a b...) -> (if a (and b...) #f)
  Value Rest = B.cons(sym("and"), cdrOf(Args));
  return expandForm(B.cons(
      sym("if"), B.cons(carOf(Args), list2(Rest, Value::falseV()))));
}

Expander::Result Expander::expandOr(Value Form) {
  Value Args = cdrOf(Form);
  if (Args.isNil())
    return Result::success(Value::falseV());
  if (cdrOf(Args).isNil())
    return expandForm(carOf(Args));
  // (or a b...) -> (let ((t a)) (if t t (or b...)))
  Value T = gensym("or");
  Value Rest = B.cons(sym("or"), cdrOf(Args));
  Value IfForm = B.cons(sym("if"), B.cons(T, list2(T, Rest)));
  return expandForm(B.cons(
      sym("let"), list2(list1(list2(T, carOf(Args))), IfForm)));
}

Expander::Result Expander::expandWhenUnless(Value Form, bool IsWhen) {
  Value Tail = cdrOf(Form);
  if (!isPair(Tail) || cdrOf(Tail).isNil())
    return err("malformed when/unless", Form);
  Value Test = carOf(Tail);
  Value Body = B.cons(sym("begin"), cdrOf(Tail));
  if (IsWhen)
    return expandForm(
        B.cons(sym("if"), B.cons(Test, list2(Body, Value::falseV()))));
  return expandForm(B.cons(
      sym("if"), B.cons(Test, list2(Value::falseV(), Body))));
}

Expander::Result Expander::expandDo(Value Form) {
  // (do ((var init step)...) (test res...) body...)
  if (listLength(Form) < 3)
    return err("malformed do", Form);
  Value Specs = carOf(cdrOf(Form));
  Value TestClause = carOf(cdrOf(cdrOf(Form)));
  Value Body = cdrOf(cdrOf(cdrOf(Form)));
  if (!isPair(TestClause))
    return err("malformed do test clause", Form);

  Value Loop = gensym("do");
  std::vector<Value> Bindings;
  std::vector<Value> Steps;
  for (Value P = Specs; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P) || !isPair(carOf(P)))
      return err("malformed do binding", Form);
    Value Spec = carOf(P);
    Value Var = carOf(Spec);
    if (!isSymbol(Var))
      return err("do variable is not a symbol", Form);
    int64_t N = listLength(Spec);
    if (N != 2 && N != 3)
      return err("malformed do binding", Form);
    Value Init = carOf(cdrOf(Spec));
    Value Step = N == 3 ? carOf(cdrOf(cdrOf(Spec))) : Var;
    Bindings.push_back(list2(Var, Init));
    Steps.push_back(Step);
  }

  Value Test = carOf(TestClause);
  Value Results = cdrOf(TestClause);
  Value Then = Results.isNil() ? Value::falseV()
                               : B.cons(sym("begin"), Results);
  Value Recur = B.cons(Loop, B.listFromVector(Steps));
  Value Else = Body.isNil()
                   ? Recur
                   : B.cons(sym("begin"),
                            B.listFromVector([&] {
                              std::vector<Value> Seq;
                              for (Value P = Body; !P.isNil(); P = cdrOf(P))
                                Seq.push_back(carOf(P));
                              Seq.push_back(Recur);
                              return Seq;
                            }()));
  Value IfForm = B.cons(sym("if"), B.cons(Test, list2(Then, Else)));
  Value NamedLet =
      B.cons(sym("let"),
             B.cons(Loop, list2(B.listFromVector(Bindings), IfForm)));
  return expandForm(NamedLet);
}

Expander::Result Expander::expandQuasi(Value Datum, int Depth) {
  if (isPair(Datum)) {
    Value Head = carOf(Datum);
    if (isSymbolNamed(Head, "unquote") && listLength(Datum) == 2) {
      if (Depth == 0)
        return expandForm(carOf(cdrOf(Datum)));
      Result Inner = expandQuasi(carOf(cdrOf(Datum)), Depth - 1);
      if (!Inner.Ok)
        return Inner;
      return Result::success(list3(
          sym("list"), list2(sym("quote"), sym("unquote")), Inner.Datum));
    }
    if (isSymbolNamed(Head, "quasiquote") && listLength(Datum) == 2) {
      Result Inner = expandQuasi(carOf(cdrOf(Datum)), Depth + 1);
      if (!Inner.Ok)
        return Inner;
      return Result::success(list3(sym("list"),
                                   list2(sym("quote"), sym("quasiquote")),
                                   Inner.Datum));
    }
    // Splicing in car position.
    if (isPair(Head) && isSymbolNamed(carOf(Head), "unquote-splicing") &&
        listLength(Head) == 2 && Depth == 0) {
      Result Spliced = expandForm(carOf(cdrOf(Head)));
      if (!Spliced.Ok)
        return Spliced;
      Result Rest = expandQuasi(cdrOf(Datum), Depth);
      if (!Rest.Ok)
        return Rest;
      return Result::success(
          list3(sym("append"), Spliced.Datum, Rest.Datum));
    }
    Result CarR = expandQuasi(Head, Depth);
    if (!CarR.Ok)
      return CarR;
    Result CdrR = expandQuasi(cdrOf(Datum), Depth);
    if (!CdrR.Ok)
      return CdrR;
    return Result::success(list3(sym("cons"), CarR.Datum, CdrR.Datum));
  }
  return Result::success(list2(sym("quote"), Datum));
}

Expander::Result Expander::expandBind(Value Form) {
  // (bind ((sym e)...) body...) with deep-binding primitives.
  Value Tail = cdrOf(Form);
  if (!isPair(Tail))
    return err("malformed bind", Form);
  Value Bindings = carOf(Tail);
  Value Body = cdrOf(Tail);
  if (Body.isNil())
    return err("empty bind body", Form);

  std::vector<Value> Syms;
  std::vector<Value> Temps;
  std::vector<Value> LetBindings;
  for (Value P = Bindings; !P.isNil(); P = cdrOf(P)) {
    if (!isPair(P) || !isPair(carOf(P)) || listLength(carOf(P)) != 2 ||
        !isSymbol(carOf(carOf(P))))
      return err("malformed bind binding", Form);
    Value S = carOf(carOf(P));
    Value E = carOf(cdrOf(carOf(P)));
    Value T = gensym("bind");
    Syms.push_back(S);
    Temps.push_back(T);
    LetBindings.push_back(list2(T, E));
  }

  // (let ((t1 e1)...)
  //   (%dyn-push 's1 t1) ...
  //   (let ((r (begin body...)))
  //     (%dyn-pop) ... r))
  Value R = gensym("bindr");
  Value PopSeq = R;
  {
    std::vector<Value> Seq;
    for (size_t I = 0; I < Syms.size(); ++I)
      Seq.push_back(list1(sym("%dyn-pop")));
    Seq.push_back(R);
    PopSeq = B.cons(sym("begin"), B.listFromVector(Seq));
  }
  Value InnerLet = B.cons(
      sym("let"),
      list2(list1(list2(R, B.cons(sym("begin"), Body))), PopSeq));
  std::vector<Value> OuterSeq;
  for (size_t I = 0; I < Syms.size(); ++I)
    OuterSeq.push_back(list3(sym("%dyn-push"),
                             list2(sym("quote"), Syms[I]), Temps[I]));
  OuterSeq.push_back(InnerLet);
  Value OuterBody = B.cons(sym("begin"), B.listFromVector(OuterSeq));
  Value OuterLet = B.cons(
      sym("let"), list2(B.listFromVector(LetBindings), OuterBody));
  return expandForm(OuterLet);
}
