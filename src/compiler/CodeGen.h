//===----------------------------------------------------------------------===//
///
/// \file
/// Code generator: analyzed (and touch-optimized) AST -> bytecode, plus the
/// Compiler facade that ties reader output through expansion, analysis,
/// touch optimization and code generation.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_COMPILER_CODEGEN_H
#define MULT_COMPILER_CODEGEN_H

#include "compiler/Analyzer.h"
#include "compiler/Ast.h"
#include "compiler/Bytecode.h"
#include "compiler/Expander.h"
#include "runtime/DatumBuilder.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace mult {

/// Compilation switches. `EmitTouchChecks=false` is "T3 mode": the code is
/// compiled exactly as a sequential Lisp would compile it, with no implicit
/// touches (the baseline of Table 2).
struct CompilerOptions {
  bool EmitTouchChecks = true;
  bool OptimizeTouches = true;
  bool IntegratePrims = true;
};

/// Counters the touch-overhead experiments report (E2/E5).
struct CompileStats {
  uint64_t FormsCompiled = 0;
  uint64_t StrictPositions = 0;
  uint64_t TouchesEmitted = 0;
  uint64_t TouchesEliminated = 0;
};

/// Owns compiled code and template objects; shared across forms compiled by
/// one engine.
class CodeRegistry {
public:
  explicit CodeRegistry(Heap &H) : TheHeap(H) {}

  /// Creates an empty Code and its permanent Template object.
  Code *create(std::string Name);

  /// The template object wrapping \p C.
  Value templateFor(const Code *C) const;

  size_t size() const { return Codes.size(); }
  const Code *at(size_t I) const { return Codes[I].get(); }

private:
  Heap &TheHeap;
  std::vector<std::unique_ptr<Code>> Codes;
  std::vector<Value> Templates; ///< Parallel to Codes.
};

/// Generates bytecode for \p P. Returns the top-level nullary Code.
Code *generateCode(Program &P, CodeRegistry &Registry,
                   const CompilerOptions &Opts, CompileStats &Stats);

/// The end-to-end compiler facade.
class Compiler {
public:
  Compiler(DatumBuilder &B, CodeRegistry &Registry,
           const CompilerOptions &Opts)
      : B(B), Registry(Registry), Opts(Opts), Exp(B) {}

  struct Result {
    Code *TopCode = nullptr;
    std::string Error;
    bool ok() const { return TopCode != nullptr; }
  };

  /// Compiles one top-level datum.
  Result compile(Value Datum);

  /// Registers the names defined by the given top-level forms before
  /// compiling them, so a user-defined `reverse` (say) is not integrated as
  /// the primitive even in forms that precede the define.
  void prescanDefines(const std::vector<Value> &Forms);

  /// Marks \p Sym as user-defined (never integrate it as a primitive).
  void noteUserGlobal(Object *Sym) { NonIntegrable.insert(Sym); }

  const CompileStats &stats() const { return Stats; }
  void resetStats() { Stats = CompileStats(); }
  CompilerOptions &options() { return Opts; }

private:
  /// Records Define/global-SetVar targets of \p N into NonIntegrable.
  void collectUserGlobals(const AstNode *N);

  DatumBuilder &B;
  CodeRegistry &Registry;
  CompilerOptions Opts;
  Expander Exp;
  std::unordered_set<Object *> NonIntegrable;
  CompileStats Stats;
};

} // namespace mult

#endif // MULT_COMPILER_CODEGEN_H
