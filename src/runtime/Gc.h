//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel stop-and-copy garbage collector (paper section 2.1.2).
///
/// The paper's protocol, reproduced in virtual time:
///   1. The processor that finds the global heap empty interrupts all
///      others (a Unix signal on UMAX; a rendezvous cost here) and waits.
///   2. All processors start collecting together.
///   3. Each processor first roots from the task it was executing, then
///      processes *segments* of the static data area (here: symbol-table
///      segments, code constant pools, and the task registry) from a shared
///      lock-protected queue until none remain.
///   4. Processors synchronize again and resume the mutator.
///
/// Copying is depth-first via an explicit per-processor stack (after Clark,
/// as in T3) and each object is moved exactly once — the per-object "move
/// lock" is the forwarding flag. As in the paper, once a processor moves an
/// object it also moves all of that object's components: there is no load
/// balancing below segment granularity, so the work distribution can be
/// uneven; bench_gc_parallel measures exactly that.
///
/// One deliberate improvement borrowed from contemporary systems: when the
/// collector encounters a pointer to a *resolved* future it splices the
/// future out, replacing the reference with the resolved value.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_GC_H
#define MULT_RUNTIME_GC_H

#include "runtime/Heap.h"
#include "support/VirtualLock.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace mult {

/// Callback used to visit (and possibly rewrite) one root slot.
using RootVisitor = std::function<void(Value &)>;

/// Interface the engine implements to expose its roots to the collector.
class GcClient {
public:
  virtual ~GcClient();

  /// Number of shared root segments (static-area segments in the paper).
  virtual unsigned numRootSegments() = 0;

  /// Visits every root slot in segment \p Segment.
  virtual void scanRootSegment(unsigned Segment, const RootVisitor &Visit) = 0;

  /// Visits roots private to processor \p Proc — the task it was executing
  /// when the collection was signalled (paper step 3).
  virtual void scanProcessorRoots(unsigned Proc, const RootVisitor &Visit) = 0;

  /// Called after copying finishes but before the semispaces flip, while
  /// from-space forwarding headers are still readable. The only moment a
  /// client may translate weak (non-root) object pointers; after the flip
  /// the from-space contents are gone (debug builds poison them).
  virtual void preFlip() {}

  /// Polled between collection work units, with the virtual clock of the
  /// processor about to be stepped. Returns true when a proc-kill fault
  /// fires *inside* this collection: \p Victim dies between its root-scan
  /// and copy phases. The collector completes the victim's pending scan,
  /// hands its copy stack to a survivor, and excludes it from further
  /// collection work; the client performs the machine-level fail-stop
  /// (and task recovery) after collect() returns. Default: never.
  virtual bool pollGcKill(uint64_t Clock, unsigned &Victim) {
    (void)Clock;
    (void)Victim;
    return false;
  }
};

/// The collector. Stateless between collections except for statistics.
class Gc {
public:
  struct CollectionStats {
    uint64_t ObjectsCopied = 0;
    uint64_t WordsCopied = 0;
    uint64_t FuturesSpliced = 0;
    /// Virtual cycles the collection took (rendezvous to resume), i.e. the
    /// pause time experienced by every processor.
    uint64_t PauseCycles = 0;
    /// Sum over processors of productive GC cycles (excludes waiting for
    /// the slowest processor at the final barrier).
    uint64_t WorkCycles = 0;
    /// Productive cycles of the busiest processor.
    uint64_t MaxProcWorkCycles = 0;
  };

  struct Stats {
    uint64_t Collections = 0;
    uint64_t TotalPauseCycles = 0;
    /// Longest single collection pause (the metric the latency story
    /// lives or dies by; the full distribution is in the telemetry
    /// gc_pause_cycles histogram).
    uint64_t MaxPauseCycles = 0;
    uint64_t TotalWorkCycles = 0;
    uint64_t TotalWordsCopied = 0;
    CollectionStats Last;
  };

  Gc(Heap &H, unsigned NumProcessors)
      : TheHeap(H), NumProcs(NumProcessors) {}

  /// Runs one full collection. \p ProcClocks are the processors' virtual
  /// clocks; on return every clock equals the post-collection resume time.
  /// Returns false on to-space overflow (heap genuinely exhausted).
  bool collect(GcClient &Client, std::vector<uint64_t> &ProcClocks);

  const Stats &stats() const { return AllStats; }
  void resetStats() { AllStats = Stats(); }

private:
  Heap &TheHeap;
  unsigned NumProcs;
  Stats AllStats;
};

/// Cycle costs of collection steps, in abstract NS32332 instructions.
namespace gccost {
inline constexpr uint64_t SignalRendezvous = 180; ///< Unix signal + handshake
inline constexpr uint64_t Resume = 40;
inline constexpr uint64_t MoveObjectBase = 6; ///< plus one cycle per word
inline constexpr uint64_t ForwardedCheck = 2; ///< the per-object move lock
inline constexpr uint64_t ScanSlot = 1;
inline constexpr uint64_t SegmentFetchHold = 3;
} // namespace gccost

} // namespace mult

#endif // MULT_RUNTIME_GC_H
