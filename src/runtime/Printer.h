//===----------------------------------------------------------------------===//
///
/// \file
/// Textual rendering of Mul-T values (the `write`/`display` printer).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_PRINTER_H
#define MULT_RUNTIME_PRINTER_H

#include "runtime/Value.h"
#include "support/OutStream.h"

#include <string>

namespace mult {

struct PrintOptions {
  /// `write` mode quotes strings and characters; `display` mode does not.
  bool Machine = true;
  /// Cutoffs that keep the printer safe on cyclic structure.
  unsigned MaxDepth = 64;
  unsigned MaxLength = 4096;
};

/// Prints \p V to \p OS.
void printValue(OutStream &OS, Value V, const PrintOptions &Opts = {});

/// Convenience: renders \p V to a string.
std::string valueToString(Value V, const PrintOptions &Opts = {});

/// Structural equality (the `equal?` primitive): recursive over pairs,
/// vectors and strings; `eqv?`-like on everything else. Does not touch
/// futures; callers touch first.
bool valuesEqual(Value A, Value B, unsigned DepthLimit = 100000);

} // namespace mult

#endif // MULT_RUNTIME_PRINTER_H
