//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line Value helpers.
///
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include "runtime/Object.h"

namespace mult {

/// Returns a user-facing type name for \p V ("fixnum", "pair", ...), used
/// in diagnostics.
const char *valueTypeName(Value V) {
  if (V.isFixnum())
    return "fixnum";
  if (V.isFuture())
    return "future";
  if (V.isObject())
    return typeTagName(V.asObject()->tag());
  switch (V.immKind()) {
  case ImmKind::Nil:
    return "null";
  case ImmKind::False:
  case ImmKind::True:
    return "boolean";
  case ImmKind::Char:
    return "character";
  case ImmKind::Unspecified:
    return "unspecified";
  case ImmKind::Eof:
    return "eof";
  case ImmKind::Unbound:
    return "unbound";
  }
  return "unknown";
}

} // namespace mult
