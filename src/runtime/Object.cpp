//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line Object helpers.
///
//===----------------------------------------------------------------------===//

#include "runtime/Object.h"

using namespace mult;

const char *mult::typeTagName(TypeTag Tag) {
  switch (Tag) {
  case TypeTag::Pair:
    return "pair";
  case TypeTag::Vector:
    return "vector";
  case TypeTag::String:
    return "string";
  case TypeTag::Symbol:
    return "symbol";
  case TypeTag::Closure:
    return "procedure";
  case TypeTag::Template:
    return "template";
  case TypeTag::Box:
    return "box";
  case TypeTag::Future:
    return "future";
  case TypeTag::Semaphore:
    return "semaphore";
  case TypeTag::Flonum:
    return "flonum";
  }
  return "unknown";
}

const Code *Object::closureCode() const {
  return closureTemplate().asObject()->templateCode();
}
