//===----------------------------------------------------------------------===//
///
/// \file
/// SymbolTable implementation.
///
//===----------------------------------------------------------------------===//

#include "runtime/SymbolTable.h"

#include <cstring>

using namespace mult;

Object *SymbolTable::intern(std::string_view Name, uint64_t Now,
                            uint64_t *Cycles) {
  auto It = Table.find(std::string(Name));
  if (It != Table.end()) {
    if (Cycles)
      *Cycles += 2; // hash probe hit
    return It->second;
  }

  // Slow path: allocate the name string and the symbol in the permanent
  // area under the symbol-table critical section.
  uint64_t LockCost = Lock.acquire(Now, /*HoldCycles=*/12);
  if (Cycles)
    *Cycles += LockCost;

  Object *NameStr = TheHeap.allocatePermanent(
      TypeTag::String, stringPayloadWords(Name.size()), Object::FlagRaw);
  NameStr->payload()[0] = Name.size();
  std::memcpy(NameStr->stringData(), Name.data(), Name.size());

  Object *Sym = TheHeap.allocatePermanent(TypeTag::Symbol, 3);
  Sym->setSlot(0, Value::object(NameStr));
  Sym->setSlot(1, Value::unbound());
  Sym->setSlot(2, Value::nil());

  Table.emplace(std::string(Name), Sym);
  Order.push_back(Sym);
  return Sym;
}

Object *SymbolTable::lookup(std::string_view Name) const {
  auto It = Table.find(std::string(Name));
  return It == Table.end() ? nullptr : It->second;
}

void SymbolTable::forEachSymbol(const std::function<void(Object *)> &Fn) {
  for (Object *Sym : Order)
    Fn(Sym);
}

std::vector<Object *> SymbolTable::segment(unsigned I,
                                           unsigned NumSegments) const {
  assert(NumSegments > 0 && I < NumSegments && "bad segment request");
  std::vector<Object *> Out;
  size_t N = Order.size();
  size_t Begin = N * I / NumSegments;
  size_t End = N * (I + 1) / NumSegments;
  Out.reserve(End - Begin);
  for (size_t K = Begin; K < End; ++K)
    Out.push_back(Order[K]);
  return Out;
}
