//===----------------------------------------------------------------------===//
///
/// \file
/// Two-semispace heap with per-processor allocation chunks.
///
/// Reproduces the memory system of paper section 2.1.2:
///  - each processor allocates out of a private chunk via a local pointer,
///  - chunks are replenished from a single lock-protected global heap,
///  - large objects are allocated directly from the global heap to avoid
///    chunk fragmentation,
///  - exhausting the global heap triggers a (parallel, stop-and-copy)
///    garbage collection, implemented in Gc.cpp.
///
/// Symbols and code templates live in a separate *permanent* area that is
/// never collected (a simplification of the paper's static data area; see
/// DESIGN.md fidelity notes).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_HEAP_H
#define MULT_RUNTIME_HEAP_H

#include "runtime/Object.h"
#include "support/VirtualLock.h"

#include <memory>
#include <string>
#include <vector>

namespace mult {

/// Cycle costs of the allocation paths, in abstract NS32332 instructions.
namespace heapcost {
inline constexpr uint64_t ChunkBump = 4;   ///< open-coded cons from a chunk
inline constexpr uint64_t ChunkRefill = 16; ///< plus global-lock wait
inline constexpr uint64_t LargeObject = 18; ///< plus global-lock wait
inline constexpr uint64_t GlobalLockHold = 4;
} // namespace heapcost

/// The shared heap. Thread-free: the virtual-time machine serializes all
/// access on the host; contention is modelled by VirtualLock.
class Heap {
public:
  struct Config {
    size_t SemispaceWords = size_t(1) << 22;
    size_t ChunkWords = 4096;
    /// Objects at least this many total words bypass the chunk system.
    size_t LargeObjectWords = 512;
    unsigned NumAllocators = 1;
  };

  struct AllocResult {
    Object *Obj = nullptr; ///< Null means: trigger a GC and retry.
    uint64_t Cycles = 0;   ///< Virtual cycles to charge the allocator.
  };

  explicit Heap(const Config &C);

  /// Allocates a collectable object with \p SizeWords payload words on
  /// behalf of allocator (processor) \p AllocatorId at virtual time \p Now.
  /// Returns a null object if the global heap is exhausted, in which case
  /// the caller must run a collection and retry.
  AllocResult allocate(unsigned AllocatorId, uint64_t Now, TypeTag Tag,
                       uint32_t SizeWords, uint8_t Flags = 0);

  /// Allocates an object in the permanent area (symbols, templates, quoted
  /// program data). Never fails short of host OOM; never collected or
  /// moved. Non-raw permanent objects form the "static data area" that the
  /// collector scans in segments (paper section 2.1.2, step 3).
  Object *allocatePermanent(TypeTag Tag, uint32_t SizeWords,
                            uint8_t Flags = 0);

  /// Number of non-raw permanent objects (the scannable static area).
  size_t staticAreaSize() const { return PermanentScannable.size(); }

  /// Returns the \p I'th of \p NumSegments roughly equal static-area
  /// segments as a (begin, end) index range into the static area.
  std::pair<size_t, size_t> staticAreaSegment(unsigned I,
                                              unsigned NumSegments) const;

  /// The \p Idx'th scannable permanent object.
  Object *staticAreaObject(size_t Idx) const {
    return PermanentScannable[Idx];
  }

  /// \name Collector interface
  /// @{
  /// Prepares the idle semispace to receive survivors and invalidates all
  /// mutator chunks. False when the heap cannot start a collection (one
  /// is already running, or the heap is wedged); the caller must treat
  /// this as fatal heap exhaustion, not abort.
  bool beginCollection();
  /// Bump-allocates \p TotalWords (header included) in the to-space on
  /// behalf of collector \p AllocatorId, using GC-private chunks. Returns
  /// null on to-space overflow (fatal heap exhaustion).
  Object *copyAllocate(unsigned AllocatorId, uint32_t TotalWords);
  /// Flips the semispaces; subsequent allocation continues after the
  /// survivors.
  void endCollection();
  /// True if \p O lies in the currently active semispace (the from-space
  /// while a collection is running).
  bool inActiveSpace(const Object *O) const;
  /// True if \p O lies in the to-space of the running collection (i.e. it
  /// has already been copied; roots reached twice must be left alone).
  bool inToSpace(const Object *O) const;

  /// Declares the heap unusable (to-space overflow mid-copy: from-space
  /// is half-evacuated, so neither space is coherent). Every subsequent
  /// allocate() fails and beginCollection() refuses; the engine reports a
  /// structured HeapExhausted result instead of the host aborting.
  void markWedged(std::string Reason);
  bool wedged() const { return Wedged; }
  const std::string &wedgedReason() const { return WedgedReason; }
  /// @}

  /// \name Introspection
  /// @{
  /// Debug: 0/1 = semispace index, -1 = outside the heap entirely.
  int debugSpaceOf(const Object *O) const;
  size_t usedWords() const;
  size_t capacityWords() const { return Cfg.SemispaceWords; }
  size_t permanentWords() const { return PermanentUsed; }
  uint64_t globalLockWaits() const { return GlobalLock.waitedCycles(); }
  uint64_t globalLockAcquisitions() const {
    return GlobalLock.acquisitions();
  }
  const Config &config() const { return Cfg; }
  /// @}

private:
  struct ChunkState {
    size_t Cur = 0; ///< Next free word index, absolute within the space.
    size_t End = 0; ///< One past the last usable word.
  };

  /// Carves a fresh chunk for \p Chunk out of space \p SpaceIdx. Returns
  /// false when the space is exhausted.
  bool refillChunk(ChunkState &Chunk, int SpaceIdx, size_t &GlobalCursor);

  Object *objectAt(int SpaceIdx, size_t WordIndex) {
    return reinterpret_cast<Object *>(Spaces[SpaceIdx] + WordIndex);
  }

  Config Cfg;
  std::unique_ptr<uint64_t[]> Buffer;
  uint64_t *Spaces[2];
  int ActiveSpace = 0;
  size_t GlobalFree = 0;   ///< Bump cursor in the active space.
  size_t GcGlobalFree = 0; ///< Bump cursor in the to-space during GC.
  bool Collecting = false;
  bool Wedged = false;
  std::string WedgedReason;
  VirtualLock GlobalLock;
  std::vector<ChunkState> Chunks;   ///< Mutator chunks, one per allocator.
  std::vector<ChunkState> GcChunks; ///< Collector chunks, one per allocator.

  /// Permanent area: a list of malloc'd blocks.
  std::vector<std::unique_ptr<uint64_t[]>> PermanentBlocks;
  /// Non-raw permanent objects, in allocation order (the static area).
  std::vector<Object *> PermanentScannable;
  size_t PermanentBlockUsed = 0;
  size_t PermanentBlockCap = 0;
  size_t PermanentUsed = 0;
};

} // namespace mult

#endif // MULT_RUNTIME_HEAP_H
