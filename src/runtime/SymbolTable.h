//===----------------------------------------------------------------------===//
///
/// \file
/// Interned symbols with global value cells.
///
/// The paper (section 2.1.1) calls out `symbol-table` as a truly global
/// mutable structure that must be protected by a critical section; we model
/// that with a VirtualLock charged on every intern that misses the caller's
/// fast path. Symbols are permanent objects; their global-value and plist
/// slots are GC roots.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_SYMBOLTABLE_H
#define MULT_RUNTIME_SYMBOLTABLE_H

#include "runtime/Heap.h"
#include "runtime/Object.h"
#include "support/VirtualLock.h"

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mult {

/// Interning table mapping names to permanent Symbol objects.
class SymbolTable {
public:
  explicit SymbolTable(Heap &H) : TheHeap(H) {}

  /// Returns the unique symbol named \p Name, creating it on first use.
  /// When \p Now / \p Cycles are supplied, charges the critical-section
  /// cost to *Cycles.
  Object *intern(std::string_view Name, uint64_t Now = 0,
                 uint64_t *Cycles = nullptr);

  /// Returns the symbol if it already exists, else null. Never allocates.
  Object *lookup(std::string_view Name) const;

  /// Invokes \p Fn on every symbol (GC root scanning, REPL completion).
  void forEachSymbol(const std::function<void(Object *)> &Fn);

  size_t size() const { return Table.size(); }

  /// Splits the symbol population into \p NumSegments contiguous segments
  /// and returns segment \p I — the GC's "static data area segments"
  /// (paper section 2.1.2, step 3).
  std::vector<Object *> segment(unsigned I, unsigned NumSegments) const;

  uint64_t lockWaits() const { return Lock.waitedCycles(); }

private:
  Heap &TheHeap;
  std::unordered_map<std::string, Object *> Table;
  std::vector<Object *> Order; ///< Insertion order, for deterministic scans.
  VirtualLock Lock;
};

} // namespace mult

#endif // MULT_RUNTIME_SYMBOLTABLE_H
