//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged 64-bit value representation for Mul-T.
///
/// The paper (section 2.2) dictates the central encoding decision: the
/// *future bit* must be a low-order pointer bit so that the implicit touch
/// performed by every strict operation compiles to a single "test bit 0 and
/// branch" (`tbit $0,r1; beq L1` on the NS32332). We reproduce that layout:
///
///   bits 2..0 = 000   fixnum; signed payload in bits 63..3
///   bits 2..0 = 001   pointer to a Future object (bit 0 IS the future bit)
///   bits 2..0 = 010   pointer to any other heap object
///   bits 2..0 = 110   immediate; kind in bits 7..3, payload in bits 63..8
///
/// Heap objects are 8-byte aligned so the three low pointer bits are free.
/// `isFuture()` therefore tests exactly one bit, mirroring the paper's
/// two-instruction touch sequence.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_VALUE_H
#define MULT_RUNTIME_VALUE_H

#include <cassert>
#include <cstdint>

namespace mult {

class Object;

/// Immediate (non-heap, non-fixnum) value kinds.
enum class ImmKind : uint8_t {
  Nil = 0,         ///< The empty list '().
  False,           ///< #f
  True,            ///< #t
  Char,            ///< Character; code point in the payload.
  Unspecified,     ///< Result of side-effecting forms.
  Eof,             ///< End-of-file object.
  Unbound,         ///< Marker stored in unbound global cells.
};

/// A Mul-T value: one tagged machine word.
class Value {
public:
  Value() : Bits(0) {} // fixnum 0

  /// \name Constructors
  /// @{
  static Value fixnum(int64_t N) {
    assert(fitsFixnum(N) && "fixnum overflow");
    return Value(static_cast<uint64_t>(N) << 3);
  }
  static Value object(Object *O) {
    auto Raw = reinterpret_cast<uint64_t>(O);
    assert((Raw & 7) == 0 && "heap objects must be 8-byte aligned");
    return Value(Raw | 2);
  }
  /// Wraps a pointer to a Future object, setting the future bit.
  static Value future(Object *O) {
    auto Raw = reinterpret_cast<uint64_t>(O);
    assert((Raw & 7) == 0 && "heap objects must be 8-byte aligned");
    return Value(Raw | 1);
  }
  static Value immediate(ImmKind Kind, uint64_t Payload = 0) {
    return Value((Payload << 8) | (static_cast<uint64_t>(Kind) << 3) | 6);
  }
  static Value nil() { return immediate(ImmKind::Nil); }
  static Value falseV() { return immediate(ImmKind::False); }
  static Value trueV() { return immediate(ImmKind::True); }
  static Value boolean(bool B) { return B ? trueV() : falseV(); }
  static Value character(uint32_t CodePoint) {
    return immediate(ImmKind::Char, CodePoint);
  }
  static Value unspecified() { return immediate(ImmKind::Unspecified); }
  static Value eof() { return immediate(ImmKind::Eof); }
  static Value unbound() { return immediate(ImmKind::Unbound); }
  /// Reconstructs a value from its raw bits (GC and task snapshots).
  static Value fromBits(uint64_t Bits) { return Value(Bits); }
  /// @}

  /// \name Predicates
  /// @{
  /// The paper's one-bit touch test: true iff this is an unresolved-future
  /// placeholder pointer.
  bool isFuture() const { return (Bits & 1) != 0; }
  bool isFixnum() const { return (Bits & 7) == 0; }
  bool isObject() const { return (Bits & 7) == 2; }
  /// True for any heap pointer, future or not (GC cares about both).
  bool isPointer() const { return isObject() || isFuture(); }
  bool isImmediate() const { return (Bits & 7) == 6; }
  bool isNil() const { return Bits == nil().Bits; }
  bool isFalse() const { return Bits == falseV().Bits; }
  bool isTrue() const { return Bits == trueV().Bits; }
  bool isBoolean() const { return isFalse() || isTrue(); }
  bool isChar() const { return isImmediate() && immKind() == ImmKind::Char; }
  bool isUnspecified() const {
    return isImmediate() && immKind() == ImmKind::Unspecified;
  }
  bool isUnbound() const {
    return isImmediate() && immKind() == ImmKind::Unbound;
  }
  /// Scheme truth: everything except #f is true. '() is true in T/Scheme.
  bool isTruthy() const { return !isFalse(); }
  /// @}

  /// \name Accessors
  /// @{
  int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    return static_cast<int64_t>(Bits) >> 3;
  }
  Object *asObject() const {
    assert(isObject() && "not a heap object");
    return reinterpret_cast<Object *>(Bits & ~7ULL);
  }
  /// The Future object behind a future-tagged pointer.
  Object *asFutureObject() const {
    assert(isFuture() && "not a future");
    return reinterpret_cast<Object *>(Bits & ~7ULL);
  }
  /// The object behind any pointer value, future-tagged or not.
  Object *pointee() const {
    assert(isPointer() && "not a pointer");
    return reinterpret_cast<Object *>(Bits & ~7ULL);
  }
  ImmKind immKind() const {
    assert(isImmediate() && "not an immediate");
    return static_cast<ImmKind>((Bits >> 3) & 0x1f);
  }
  uint64_t immPayload() const {
    assert(isImmediate() && "not an immediate");
    return Bits >> 8;
  }
  uint32_t asChar() const {
    assert(isChar() && "not a character");
    return static_cast<uint32_t>(immPayload());
  }
  uint64_t bits() const { return Bits; }
  /// @}

  /// Pointer/bit identity — the `eq?` primitive (after touching).
  bool identical(Value Other) const { return Bits == Other.Bits; }
  bool operator==(const Value &Other) const = default;

  /// True iff \p N survives the 61-bit fixnum encoding.
  static bool fitsFixnum(int64_t N) {
    return N >= (INT64_MIN >> 3) && N <= (INT64_MAX >> 3);
  }

private:
  explicit Value(uint64_t Bits) : Bits(Bits) {}

  uint64_t Bits;
};

static_assert(sizeof(Value) == 8, "Value must be one machine word");

/// Returns a user-facing type name for \p V ("fixnum", "pair", ...), used
/// in diagnostics.
const char *valueTypeName(Value V);

} // namespace mult

#endif // MULT_RUNTIME_VALUE_H
