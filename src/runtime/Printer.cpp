//===----------------------------------------------------------------------===//
///
/// \file
/// Printer implementation.
///
//===----------------------------------------------------------------------===//

#include "runtime/Printer.h"

#include "runtime/Object.h"
#include "support/StrUtil.h"

using namespace mult;

namespace {

class PrinterImpl {
public:
  PrinterImpl(OutStream &OS, const PrintOptions &Opts) : OS(OS), Opts(Opts) {}

  void print(Value V, unsigned Depth) {
    if (Depth > Opts.MaxDepth) {
      OS << "...";
      return;
    }
    if (V.isFixnum()) {
      OS << V.asFixnum();
      return;
    }
    if (V.isFuture()) {
      Object *F = V.asFutureObject();
      if (F->futureResolved()) {
        OS << "#[future -> ";
        print(F->futureValue(), Depth + 1);
        OS << ']';
      } else {
        OS << "#[future (undetermined)]";
      }
      return;
    }
    if (V.isImmediate()) {
      printImmediate(V);
      return;
    }
    printObject(V.asObject(), Depth);
  }

private:
  void printImmediate(Value V) {
    switch (V.immKind()) {
    case ImmKind::Nil:
      OS << "()";
      return;
    case ImmKind::False:
      OS << "#f";
      return;
    case ImmKind::True:
      OS << "#t";
      return;
    case ImmKind::Char:
      printChar(static_cast<char>(V.asChar()));
      return;
    case ImmKind::Unspecified:
      OS << "#[unspecified]";
      return;
    case ImmKind::Eof:
      OS << "#[eof]";
      return;
    case ImmKind::Unbound:
      OS << "#[unbound]";
      return;
    }
    OS << "#[bad-immediate]";
  }

  void printChar(char C) {
    if (!Opts.Machine) {
      OS << C;
      return;
    }
    switch (C) {
    case ' ':
      OS << "#\\space";
      return;
    case '\n':
      OS << "#\\newline";
      return;
    case '\t':
      OS << "#\\tab";
      return;
    default:
      OS << "#\\" << C;
      return;
    }
  }

  void printObject(Object *O, unsigned Depth) {
    switch (O->tag()) {
    case TypeTag::Pair:
      printList(O, Depth);
      return;
    case TypeTag::Vector: {
      OS << "#(";
      int64_t N = O->vectorLength();
      for (int64_t I = 0; I < N; ++I) {
        if (I)
          OS << ' ';
        if (I >= Opts.MaxLength) {
          OS << "...";
          break;
        }
        print(O->vectorRef(I), Depth + 1);
      }
      OS << ')';
      return;
    }
    case TypeTag::String:
      if (Opts.Machine) {
        OS << '"';
        for (char C : O->stringView()) {
          if (C == '"' || C == '\\')
            OS << '\\';
          if (C == '\n') {
            OS << "\\n";
            continue;
          }
          OS << C;
        }
        OS << '"';
      } else {
        OS << O->stringView();
      }
      return;
    case TypeTag::Symbol:
      OS << O->symbolText();
      return;
    case TypeTag::Closure:
      OS << "#[procedure]";
      return;
    case TypeTag::Template:
      OS << "#[template]";
      return;
    case TypeTag::Box:
      OS << "#[box ";
      print(O->boxValue(), Depth + 1);
      OS << ']';
      return;
    case TypeTag::Future:
      // Reached only via an object-tagged pointer to a future's storage,
      // which the VM never exposes; print defensively.
      OS << "#[future-object]";
      return;
    case TypeTag::Semaphore:
      OS << "#[semaphore " << O->semaphoreCount() << ']';
      return;
    case TypeTag::Flonum:
      OS << strFormat("%g", O->flonumValue());
      return;
    }
    OS << "#[unknown]";
  }

  void printList(Object *Pair, unsigned Depth) {
    OS << '(';
    unsigned Count = 0;
    for (;;) {
      print(Pair->car(), Depth + 1);
      Value Tail = Pair->cdr();
      if (Tail.isNil())
        break;
      if (++Count >= Opts.MaxLength) {
        OS << " ...";
        break;
      }
      if (Tail.isObject() && Tail.asObject()->tag() == TypeTag::Pair) {
        OS << ' ';
        Pair = Tail.asObject();
        continue;
      }
      OS << " . ";
      print(Tail, Depth + 1);
      break;
    }
    OS << ')';
  }

  OutStream &OS;
  const PrintOptions &Opts;
};

} // namespace

void mult::printValue(OutStream &OS, Value V, const PrintOptions &Opts) {
  PrinterImpl(OS, Opts).print(V, 0);
}

std::string mult::valueToString(Value V, const PrintOptions &Opts) {
  std::string Out;
  StringOutStream OS(Out);
  printValue(OS, V, Opts);
  return Out;
}

bool mult::valuesEqual(Value A, Value B, unsigned DepthLimit) {
  if (A.identical(B))
    return true;
  if (DepthLimit == 0)
    return false;
  if (!A.isObject() || !B.isObject())
    return false;
  Object *OA = A.asObject();
  Object *OB = B.asObject();
  if (OA->tag() != OB->tag())
    return false;
  switch (OA->tag()) {
  case TypeTag::Pair:
    return valuesEqual(OA->car(), OB->car(), DepthLimit - 1) &&
           valuesEqual(OA->cdr(), OB->cdr(), DepthLimit - 1);
  case TypeTag::Vector: {
    if (OA->vectorLength() != OB->vectorLength())
      return false;
    for (int64_t I = 0, N = OA->vectorLength(); I < N; ++I)
      if (!valuesEqual(OA->vectorRef(I), OB->vectorRef(I), DepthLimit - 1))
        return false;
    return true;
  }
  case TypeTag::String:
    return OA->stringView() == OB->stringView();
  case TypeTag::Flonum:
    return OA->flonumValue() == OB->flonumValue();
  default:
    return false;
  }
}
