//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience constructors for building Lisp data in the permanent area.
///
/// The reader and macro expander build program text through a DatumBuilder,
/// so source data lives in the static area (it is code, in T's sense) and
/// never moves under the copying collector. Runtime allocation goes through
/// the chunked heap path in Heap::allocate instead.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_DATUMBUILDER_H
#define MULT_RUNTIME_DATUMBUILDER_H

#include "runtime/Heap.h"
#include "runtime/SymbolTable.h"

#include <cstring>
#include <initializer_list>
#include <string_view>

namespace mult {

/// Permanent-area datum constructors.
class DatumBuilder {
public:
  DatumBuilder(Heap &H, SymbolTable &Syms) : TheHeap(H), Syms(Syms) {}

  Value cons(Value Car, Value Cdr) {
    Object *P = TheHeap.allocatePermanent(TypeTag::Pair, 2);
    P->setCar(Car);
    P->setCdr(Cdr);
    return Value::object(P);
  }

  Value symbol(std::string_view Name) {
    return Value::object(Syms.intern(Name));
  }

  Value string(std::string_view Text) {
    Object *S = TheHeap.allocatePermanent(
        TypeTag::String, stringPayloadWords(Text.size()), Object::FlagRaw);
    S->payload()[0] = Text.size();
    std::memcpy(S->stringData(), Text.data(), Text.size());
    return Value::object(S);
  }

  Value vector(const std::vector<Value> &Elems) {
    Object *V = TheHeap.allocatePermanent(
        TypeTag::Vector, static_cast<uint32_t>(Elems.size()) + 1);
    V->setSlot(0, Value::fixnum(static_cast<int64_t>(Elems.size())));
    for (size_t I = 0; I < Elems.size(); ++I)
      V->setSlot(static_cast<uint32_t>(I) + 1, Elems[I]);
    return Value::object(V);
  }

  Value flonum(double D) {
    Object *F =
        TheHeap.allocatePermanent(TypeTag::Flonum, 1, Object::FlagRaw);
    F->setFlonumValue(D);
    return Value::object(F);
  }

  /// Builds a proper list from \p Elems.
  Value list(std::initializer_list<Value> Elems) {
    Value Out = Value::nil();
    const Value *Data = Elems.begin();
    for (size_t I = Elems.size(); I > 0; --I)
      Out = cons(Data[I - 1], Out);
    return Out;
  }

  /// Builds a proper list from a vector of elements.
  Value listFromVector(const std::vector<Value> &Elems) {
    Value Out = Value::nil();
    for (size_t I = Elems.size(); I > 0; --I)
      Out = cons(Elems[I - 1], Out);
    return Out;
  }

  Heap &heap() { return TheHeap; }
  SymbolTable &symbols() { return Syms; }

private:
  Heap &TheHeap;
  SymbolTable &Syms;
};

/// \name List-walking helpers shared by the expander and compiler.
/// @{
inline bool isPair(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Pair;
}
inline bool isSymbol(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::Symbol;
}
inline bool isString(Value V) {
  return V.isObject() && V.asObject()->tag() == TypeTag::String;
}
inline Value carOf(Value V) { return V.asObject()->car(); }
inline Value cdrOf(Value V) { return V.asObject()->cdr(); }

/// Length of a proper list, or -1 when \p V is improper.
inline int64_t listLength(Value V) {
  int64_t N = 0;
  while (isPair(V)) {
    ++N;
    V = cdrOf(V);
  }
  return V.isNil() ? N : -1;
}

/// True when \p V is the symbol spelled \p Name.
inline bool isSymbolNamed(Value V, std::string_view Name) {
  return isSymbol(V) && V.asObject()->symbolText() == Name;
}
/// @}

} // namespace mult

#endif // MULT_RUNTIME_DATUMBUILDER_H
