//===----------------------------------------------------------------------===//
///
/// \file
/// Heap object layout for the Mul-T runtime.
///
/// Every heap object is a header word followed by `sizeWords` payload words.
/// Payload words are Values unless the Raw flag is set (strings, flonums,
/// code templates), which makes the copying collector's scan loop uniform.
/// A future is an ordinary heap object whose *pointer* carries the low
/// future bit (see Value.h); its components mirror the paper's list in
/// section 2.2: a slot for the eventual value, a queue of waiting tasks,
/// and the identity of the computing task (whose C++-side Task object owns
/// the stack and the process-specific variables).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_RUNTIME_OBJECT_H
#define MULT_RUNTIME_OBJECT_H

#include "runtime/Value.h"

#include <cassert>
#include <cstring>
#include <string_view>

namespace mult {

struct Code; // Compiled template; defined in compiler/Bytecode.h.

/// Runtime type of a heap object.
enum class TypeTag : uint8_t {
  Pair,
  Vector,
  String,
  Symbol,
  Closure,
  Template,
  Box,
  Future,
  Semaphore,
  Flonum,
};

/// Returns a human-readable name for \p Tag ("pair", "vector", ...).
const char *typeTagName(TypeTag Tag);

/// A heap object: one header word plus payload.
class Object {
public:
  enum Flags : uint8_t {
    FlagForwarded = 1, ///< Payload word 0 holds the to-space address.
    FlagRaw = 2,       ///< Payload words are not Values (don't scan).
    FlagPermanent = 4, ///< Lives outside the semispaces; never moved.
  };

  TypeTag tag() const { return Tag; }
  uint8_t flags() const { return Flag; }
  bool isForwarded() const { return Flag & FlagForwarded; }
  bool isRaw() const { return Flag & FlagRaw; }
  bool isPermanent() const { return Flag & FlagPermanent; }
  /// Number of payload words following the header.
  uint32_t sizeWords() const { return SizeWords; }
  /// Total footprint including the header, in words.
  uint32_t totalWords() const { return SizeWords + 1; }

  /// Initializes the header. Called by the heap only.
  void initHeader(TypeTag T, uint32_t Size, uint8_t F) {
    Tag = T;
    Flag = F;
    Aux = 0;
    SizeWords = Size;
  }

  /// \name Raw payload access
  /// @{
  uint64_t *payload() { return reinterpret_cast<uint64_t *>(this) + 1; }
  const uint64_t *payload() const {
    return reinterpret_cast<const uint64_t *>(this) + 1;
  }
  Value slot(uint32_t I) const {
    assert(I < SizeWords && "slot index out of range");
    return Value::fromBits(payload()[I]);
  }
  void setSlot(uint32_t I, Value V) {
    assert(I < SizeWords && "slot index out of range");
    payload()[I] = V.bits();
  }
  /// @}

  /// \name Forwarding (GC)
  /// @{
  void forwardTo(Object *NewLocation) {
    Flag |= FlagForwarded;
    payload()[0] = reinterpret_cast<uint64_t>(NewLocation);
  }
  Object *forwardedTo() const {
    assert(isForwarded() && "object is not forwarded");
    return reinterpret_cast<Object *>(payload()[0]);
  }
  /// @}

  /// \name Pair
  /// @{
  Value car() const { return taggedSlot(TypeTag::Pair, 0); }
  Value cdr() const { return taggedSlot(TypeTag::Pair, 1); }
  void setCar(Value V) { setTaggedSlot(TypeTag::Pair, 0, V); }
  void setCdr(Value V) { setTaggedSlot(TypeTag::Pair, 1, V); }
  /// @}

  /// \name Vector
  /// @{
  int64_t vectorLength() const {
    return taggedSlot(TypeTag::Vector, 0).asFixnum();
  }
  Value vectorRef(int64_t I) const {
    assert(I >= 0 && I < vectorLength() && "vector index out of range");
    return slot(static_cast<uint32_t>(I) + 1);
  }
  void vectorSet(int64_t I, Value V) {
    assert(I >= 0 && I < vectorLength() && "vector index out of range");
    setSlot(static_cast<uint32_t>(I) + 1, V);
  }
  /// @}

  /// \name String (raw)
  /// @{
  size_t stringLength() const {
    assert(Tag == TypeTag::String);
    return payload()[0];
  }
  char *stringData() {
    assert(Tag == TypeTag::String);
    return reinterpret_cast<char *>(payload() + 1);
  }
  std::string_view stringView() const {
    assert(Tag == TypeTag::String);
    return std::string_view(reinterpret_cast<const char *>(payload() + 1),
                            payload()[0]);
  }
  /// @}

  /// \name Symbol: [0]=name string, [1]=global value cell, [2]=plist
  /// @{
  Value symbolName() const { return taggedSlot(TypeTag::Symbol, 0); }
  Value globalValue() const { return taggedSlot(TypeTag::Symbol, 1); }
  void setGlobalValue(Value V) { setTaggedSlot(TypeTag::Symbol, 1, V); }
  Value plist() const { return taggedSlot(TypeTag::Symbol, 2); }
  void setPlist(Value V) { setTaggedSlot(TypeTag::Symbol, 2, V); }
  std::string_view symbolText() const {
    return symbolName().asObject()->stringView();
  }
  /// @}

  /// \name Closure: [0]=template, [1..]=captured free-variable values
  /// @{
  Value closureTemplate() const { return taggedSlot(TypeTag::Closure, 0); }
  uint32_t closureFreeCount() const {
    assert(Tag == TypeTag::Closure);
    return SizeWords - 1;
  }
  Value closureFree(uint32_t I) const {
    return taggedSlot(TypeTag::Closure, I + 1);
  }
  void setClosureFree(uint32_t I, Value V) {
    setTaggedSlot(TypeTag::Closure, I + 1, V);
  }
  const Code *closureCode() const;
  /// @}

  /// \name Template (raw): [0] = Code*
  /// @{
  const Code *templateCode() const {
    assert(Tag == TypeTag::Template);
    return reinterpret_cast<const Code *>(payload()[0]);
  }
  void setTemplateCode(const Code *C) {
    assert(Tag == TypeTag::Template);
    payload()[0] = reinterpret_cast<uint64_t>(C);
  }
  /// @}

  /// \name Box: [0]=value (assignment-converted variables)
  /// @{
  Value boxValue() const { return taggedSlot(TypeTag::Box, 0); }
  void setBoxValue(Value V) { setTaggedSlot(TypeTag::Box, 0, V); }
  /// @}

  /// \name Future: [0]=state, [1]=value, [2]=waiter task-id list,
  ///               [3]=computing task id, [4]=group id
  /// @{
  enum FutureSlots : uint32_t {
    FutState = 0,
    FutValue = 1,
    FutWaiters = 2,
    FutTaskId = 3,
    FutGroupId = 4,
    FutureSizeWords = 5,
  };
  bool futureResolved() const {
    return taggedSlot(TypeTag::Future, FutState).asFixnum() != 0;
  }
  Value futureValue() const { return taggedSlot(TypeTag::Future, FutValue); }
  Value futureWaiters() const {
    return taggedSlot(TypeTag::Future, FutWaiters);
  }
  void resolveFutureSlots(Value V) {
    setTaggedSlot(TypeTag::Future, FutValue, V);
    setTaggedSlot(TypeTag::Future, FutState, Value::fixnum(1));
    setTaggedSlot(TypeTag::Future, FutWaiters, Value::nil());
  }
  /// @}

  /// \name Semaphore: [0]=count, [1]=waiter task-id list
  /// @{
  enum SemaphoreSlots : uint32_t {
    SemCount = 0,
    SemWaiters = 1,
    SemaphoreSizeWords = 2,
  };
  int64_t semaphoreCount() const {
    return taggedSlot(TypeTag::Semaphore, SemCount).asFixnum();
  }
  void setSemaphoreCount(int64_t N) {
    setTaggedSlot(TypeTag::Semaphore, SemCount, Value::fixnum(N));
  }
  /// @}

  /// \name Flonum (raw): [0] = IEEE-754 bits
  /// @{
  double flonumValue() const {
    assert(Tag == TypeTag::Flonum);
    double D;
    std::memcpy(&D, payload(), sizeof(double));
    return D;
  }
  void setFlonumValue(double D) {
    assert(Tag == TypeTag::Flonum);
    std::memcpy(payload(), &D, sizeof(double));
  }
  /// @}

private:
  Value taggedSlot(TypeTag Expected, uint32_t I) const {
    assert(Tag == Expected && "wrong object type");
    (void)Expected;
    return slot(I);
  }
  void setTaggedSlot(TypeTag Expected, uint32_t I, Value V) {
    assert(Tag == Expected && "wrong object type");
    (void)Expected;
    setSlot(I, V);
  }

  TypeTag Tag;
  uint8_t Flag;
  uint16_t Aux;
  uint32_t SizeWords;
};

static_assert(sizeof(Object) == 8, "object header must be one word");

/// Convenience: number of payload words a string of \p Bytes needs
/// (length word + rounded-up character data).
inline uint32_t stringPayloadWords(size_t Bytes) {
  return 1 + static_cast<uint32_t>((Bytes + 7) / 8);
}

} // namespace mult

#endif // MULT_RUNTIME_OBJECT_H
