//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel stop-and-copy collector implementation.
///
/// The collection is simulated cooperatively: one host thread plays all
/// processors, always advancing the processor with the smallest GC clock,
/// which yields a deterministic interleaving that faithfully models the
/// parallel work distribution (shared segment queue, private copy stacks).
///
//===----------------------------------------------------------------------===//

#include "runtime/Gc.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace mult;

GcClient::~GcClient() = default;

namespace {

/// Per-processor collector state.
struct ProcGcState {
  uint64_t Clock = 0;               ///< Virtual clock during the collection.
  std::vector<Object *> CopyStack;  ///< Depth-first scan stack.
  bool ScannedOwnRoots = false;
  bool Finished = false;
  bool GcDead = false; ///< fail-stopped mid-collection (GcClient::pollGcKill)
  uint64_t WorkCycles = 0;
};

/// The guts of one collection; bundles the shared state the per-processor
/// steps need.
class Collection {
public:
  Collection(Heap &H, GcClient &Client, unsigned NumProcs)
      : TheHeap(H), Client(Client), Procs(NumProcs) {}

  bool run(std::vector<uint64_t> &ProcClocks, Gc::CollectionStats &Out);

private:
  /// Moves the object behind \p V (if any) to to-space and updates \p V.
  /// Splices out resolved futures. Charges cycles to processor \p P.
  void visitRoot(Value &V, unsigned P);

  /// Scans every payload slot of \p O (already in to-space).
  void scanObject(Object *O, unsigned P);

  /// Executes one unit of work for processor \p P. Returns false if the
  /// processor found nothing to do.
  bool stepProcessor(unsigned P);

  Heap &TheHeap;
  GcClient &Client;
  std::vector<ProcGcState> Procs;
  VirtualLock SegmentLock;
  unsigned NextSegment = 0;
  unsigned NumSegments = 0;
  bool Overflowed = false;
  uint64_t ObjectsCopied = 0;
  uint64_t WordsCopied = 0;
  uint64_t FuturesSpliced = 0;
};

void Collection::visitRoot(Value &V, unsigned P) {
  ProcGcState &PS = Procs[P];
  PS.WorkCycles += gccost::ScanSlot;

  // Splice out chains of resolved futures (reading from-space is fine:
  // resolved futures are immutable).
  while (V.isFuture() && !V.pointee()->isForwarded() &&
         V.pointee()->futureResolved()) {
    V = V.pointee()->futureValue();
    ++FuturesSpliced;
    PS.WorkCycles += 2;
  }

  if (!V.isPointer())
    return;
  Object *O = V.pointee();
  if (O->isPermanent())
    return;
  if (!TheHeap.inActiveSpace(O)) {
    // Roots can be reached twice (a processor's current task is also in
    // the task-registry segment); the second visit sees an already
    // forwarded slot pointing into to-space. Copying it again would
    // split the object, so leave it alone.
    assert(TheHeap.inToSpace(O) && "root points outside both semispaces");
    return;
  }

  bool FutureBit = V.isFuture();
  PS.WorkCycles += gccost::ForwardedCheck;
  if (O->isForwarded()) {
    Object *New = O->forwardedTo();
    V = FutureBit ? Value::future(New) : Value::object(New);
    return;
  }

  uint32_t Total = O->totalWords();
  Object *New = TheHeap.copyAllocate(P, Total);
  if (!New) {
    Overflowed = true;
    return;
  }
  std::memcpy(New, O, size_t(Total) * 8);
  O->forwardTo(New);
  V = FutureBit ? Value::future(New) : Value::object(New);
  ++ObjectsCopied;
  WordsCopied += Total;
  PS.WorkCycles += gccost::MoveObjectBase + Total;
  if (!New->isRaw())
    PS.CopyStack.push_back(New);
}

void Collection::scanObject(Object *O, unsigned P) {
  assert(!O->isRaw() && "raw objects are never scanned");
  for (uint32_t I = 0, E = O->sizeWords(); I != E && !Overflowed; ++I) {
    Value Slot = O->slot(I);
    visitRoot(Slot, P);
    O->setSlot(I, Slot);
  }
}

bool Collection::stepProcessor(unsigned P) {
  ProcGcState &PS = Procs[P];
  uint64_t Before = PS.WorkCycles;

  if (!PS.ScannedOwnRoots) {
    // Paper step 3: root from the task this processor was executing.
    PS.ScannedOwnRoots = true;
    Client.scanProcessorRoots(P, [&](Value &V) { visitRoot(V, P); });
    PS.Clock += PS.WorkCycles - Before;
    return true;
  }

  if (!PS.CopyStack.empty()) {
    Object *O = PS.CopyStack.back();
    PS.CopyStack.pop_back();
    scanObject(O, P);
    PS.Clock += PS.WorkCycles - Before;
    return true;
  }

  if (NextSegment < NumSegments) {
    uint64_t LockCycles = SegmentLock.acquire(PS.Clock, gccost::SegmentFetchHold);
    PS.WorkCycles += LockCycles;
    unsigned Seg = NextSegment++;
    Client.scanRootSegment(Seg, [&](Value &V) { visitRoot(V, P); });
    PS.Clock += PS.WorkCycles - Before;
    return true;
  }

  return false;
}

bool Collection::run(std::vector<uint64_t> &ProcClocks,
                     Gc::CollectionStats &Out) {
  assert(ProcClocks.size() == Procs.size() && "clock/processor mismatch");
  if (!TheHeap.beginCollection())
    return false; // wedged (or re-entered): cannot collect, only report
  NumSegments = Client.numRootSegments();

  // Step 1: rendezvous. Everybody arrives at the triggering processor's
  // signal; collection begins at the latest clock plus the signal cost.
  uint64_t Start =
      *std::max_element(ProcClocks.begin(), ProcClocks.end()) +
      gccost::SignalRendezvous;
  for (ProcGcState &PS : Procs)
    PS.Clock = Start;

  // Steps 2-3: cooperative parallel collection, least-clock-first.
  for (;;) {
    if (Overflowed) {
      // From-space is half-evacuated and to-space is full: no coherent
      // heap remains. Record the fact instead of asserting; the engine
      // turns it into a structured fatal result.
      TheHeap.markWedged(
          "to-space overflow while copying survivors (live data exceeds a "
          "semispace)");
      return false;
    }
    unsigned Best = 0;
    bool Any = false;
    for (unsigned P = 0; P < Procs.size(); ++P) {
      if (Procs[P].Finished)
        continue;
      if (!Any || Procs[P].Clock < Procs[Best].Clock) {
        Best = P;
        Any = true;
      }
    }
    if (!Any)
      break;
    unsigned Victim = ~0u;
    if (Client.pollGcKill(Procs[Best].Clock, Victim) &&
        Victim < Procs.size() && !Procs[Victim].GcDead) {
      // A proc-kill fault landed inside the collection. The fail-stop is
      // modelled between the victim's scan and copy phases: its root scan
      // must still happen (the tasks it was running are recovered after
      // the collection, so their state has to be evacuated), but its
      // private copy stack — work it claimed by moving objects — is
      // completed by a survivor so the heap is never left half-copied.
      ProcGcState &V = Procs[Victim];
      V.GcDead = true;
      if (!V.ScannedOwnRoots) {
        uint64_t Before = V.WorkCycles;
        V.ScannedOwnRoots = true;
        Client.scanProcessorRoots(Victim, [&](Value &Val) {
          visitRoot(Val, Victim);
        });
        V.Clock += V.WorkCycles - Before;
      }
      if (!V.CopyStack.empty()) {
        unsigned Heir = ~0u;
        for (unsigned Off = 1; Off < Procs.size(); ++Off) {
          unsigned C = (Victim + Off) % unsigned(Procs.size());
          if (!Procs[C].GcDead) {
            Heir = C;
            break;
          }
        }
        if (Heir != ~0u) {
          ProcGcState &H = Procs[Heir];
          H.CopyStack.insert(H.CopyStack.end(), V.CopyStack.begin(),
                             V.CopyStack.end());
          H.Finished = false; // revive: it has inherited work now
          V.CopyStack.clear();
        }
      }
      V.Finished = true;
      continue;
    }
    if (!stepProcessor(Best)) {
      // No work right now. Another processor's scanning can't feed this
      // one (copy stacks are private; segments are all claimed), so this
      // processor is done until the final barrier.
      Procs[Best].Finished = true;
    }
  }

  // Step 4: synchronize and resume.
  uint64_t End = Start;
  for (ProcGcState &PS : Procs)
    End = std::max(End, PS.Clock);
  End += gccost::Resume;
  for (uint64_t &C : ProcClocks)
    C = End;

  Client.preFlip();
  TheHeap.endCollection();

  Out.ObjectsCopied = ObjectsCopied;
  Out.WordsCopied = WordsCopied;
  Out.FuturesSpliced = FuturesSpliced;
  Out.PauseCycles = End - (Start - gccost::SignalRendezvous);
  Out.WorkCycles = 0;
  Out.MaxProcWorkCycles = 0;
  for (ProcGcState &PS : Procs) {
    Out.WorkCycles += PS.WorkCycles;
    Out.MaxProcWorkCycles = std::max(Out.MaxProcWorkCycles, PS.WorkCycles);
  }
  return true;
}

} // namespace

bool Gc::collect(GcClient &Client, std::vector<uint64_t> &ProcClocks) {
  Collection C(TheHeap, Client, NumProcs);
  CollectionStats CS;
  if (!C.run(ProcClocks, CS))
    return false;
  ++AllStats.Collections;
  AllStats.TotalPauseCycles += CS.PauseCycles;
  AllStats.MaxPauseCycles = std::max(AllStats.MaxPauseCycles, CS.PauseCycles);
  AllStats.TotalWorkCycles += CS.WorkCycles;
  AllStats.TotalWordsCopied += CS.WordsCopied;
  AllStats.Last = CS;
  return true;
}
