//===----------------------------------------------------------------------===//
///
/// \file
/// Heap implementation: chunked bump allocation over two semispaces plus a
/// permanent area.
///
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <cassert>
#include <cstring>

using namespace mult;

Heap::Heap(const Config &C) : Cfg(C) {
  assert(Cfg.SemispaceWords >= Cfg.ChunkWords && "semispace smaller than a chunk");
  assert(Cfg.LargeObjectWords <= Cfg.ChunkWords &&
         "large-object threshold must fit a chunk");
  assert(Cfg.NumAllocators >= 1 && "need at least one allocator");
  Buffer = std::make_unique<uint64_t[]>(Cfg.SemispaceWords * 2);
  Spaces[0] = Buffer.get();
  Spaces[1] = Buffer.get() + Cfg.SemispaceWords;
  Chunks.resize(Cfg.NumAllocators);
  GcChunks.resize(Cfg.NumAllocators);
}

bool Heap::refillChunk(ChunkState &Chunk, int SpaceIdx, size_t &GlobalCursor) {
  (void)SpaceIdx;
  if (GlobalCursor + Cfg.ChunkWords > Cfg.SemispaceWords) {
    // Hand out a final partial chunk if one remains.
    if (GlobalCursor >= Cfg.SemispaceWords)
      return false;
    Chunk.Cur = GlobalCursor;
    Chunk.End = Cfg.SemispaceWords;
    GlobalCursor = Cfg.SemispaceWords;
    return true;
  }
  Chunk.Cur = GlobalCursor;
  Chunk.End = GlobalCursor + Cfg.ChunkWords;
  GlobalCursor += Cfg.ChunkWords;
  return true;
}

Heap::AllocResult Heap::allocate(unsigned AllocatorId, uint64_t Now,
                                 TypeTag Tag, uint32_t SizeWords,
                                 uint8_t Flags) {
  assert(AllocatorId < Chunks.size() && "bad allocator id");
  assert(SizeWords >= 1 && "objects carry at least one payload word");

  uint32_t Total = SizeWords + 1;
  AllocResult R;

  // A wedged heap (to-space overflow mid-copy) can satisfy nothing, and a
  // mutator request while a collection runs is a guest-level fault, not a
  // host invariant: fail the allocation and let the engine surface a
  // structured heap-exhausted result.
  if (Collecting || Wedged) {
    R.Cycles = heapcost::ChunkBump;
    return R;
  }

  // Large objects go straight to the global heap (paper: avoids chunk
  // fragmentation; no locality penalty on a bus-based machine).
  if (Total >= Cfg.LargeObjectWords) {
    uint64_t LockCycles = GlobalLock.acquire(Now, heapcost::GlobalLockHold);
    if (GlobalFree + Total > Cfg.SemispaceWords) {
      R.Cycles = heapcost::LargeObject + LockCycles;
      return R; // GC needed.
    }
    Object *O = objectAt(ActiveSpace, GlobalFree);
    GlobalFree += Total;
    O->initHeader(Tag, SizeWords, Flags);
    R.Obj = O;
    R.Cycles = heapcost::LargeObject + LockCycles;
    return R;
  }

  ChunkState &Chunk = Chunks[AllocatorId];
  if (Chunk.Cur + Total > Chunk.End) {
    // Replenish from the global heap under the lock.
    uint64_t LockCycles = GlobalLock.acquire(Now, heapcost::GlobalLockHold);
    if (!refillChunk(Chunk, ActiveSpace, GlobalFree)) {
      R.Cycles = heapcost::ChunkRefill + LockCycles;
      return R; // GC needed.
    }
    R.Cycles += heapcost::ChunkRefill + LockCycles;
    if (Chunk.Cur + Total > Chunk.End) {
      // A fresh chunk that still can't fit it (object just below the large
      // threshold, partial trailing chunk). Treat as exhaustion.
      return R;
    }
  }

  Object *O = objectAt(ActiveSpace, Chunk.Cur);
  Chunk.Cur += Total;
  O->initHeader(Tag, SizeWords, Flags);
  R.Obj = O;
  R.Cycles += heapcost::ChunkBump;
  return R;
}

Object *Heap::allocatePermanent(TypeTag Tag, uint32_t SizeWords,
                                uint8_t Flags) {
  assert(SizeWords >= 1 && "objects carry at least one payload word");
  uint32_t Total = SizeWords + 1;
  if (PermanentBlockUsed + Total > PermanentBlockCap) {
    size_t BlockWords = std::max<size_t>(Total, size_t(1) << 16);
    PermanentBlocks.push_back(std::make_unique<uint64_t[]>(BlockWords));
    PermanentBlockUsed = 0;
    PermanentBlockCap = BlockWords;
  }
  auto *O = reinterpret_cast<Object *>(PermanentBlocks.back().get() +
                                       PermanentBlockUsed);
  PermanentBlockUsed += Total;
  PermanentUsed += Total;
  O->initHeader(Tag, SizeWords,
                static_cast<uint8_t>(Flags | Object::FlagPermanent));
  if (!(Flags & Object::FlagRaw))
    PermanentScannable.push_back(O);
  return O;
}

std::pair<size_t, size_t> Heap::staticAreaSegment(unsigned I,
                                                  unsigned NumSegments) const {
  assert(NumSegments > 0 && I < NumSegments && "bad segment request");
  size_t N = PermanentScannable.size();
  return {N * I / NumSegments, N * (I + 1) / NumSegments};
}

bool Heap::beginCollection() {
  if (Collecting || Wedged)
    return false;
  Collecting = true;
  GcGlobalFree = 0;
  for (ChunkState &C : GcChunks)
    C = ChunkState();
  return true;
}

void Heap::markWedged(std::string Reason) {
  Wedged = true;
  WedgedReason = std::move(Reason);
  // The aborted collection never flips; drop the Collecting flag so the
  // engine can keep reading from-space objects (they are still intact —
  // copied objects leave forwarding pointers, not garbage).
  Collecting = false;
}

Object *Heap::copyAllocate(unsigned AllocatorId, uint32_t TotalWords) {
  assert(Collecting && "copyAllocate outside a collection");
  assert(AllocatorId < GcChunks.size() && "bad allocator id");
  int ToSpace = 1 - ActiveSpace;

  if (TotalWords >= Cfg.LargeObjectWords) {
    if (GcGlobalFree + TotalWords > Cfg.SemispaceWords)
      return nullptr;
    Object *O = objectAt(ToSpace, GcGlobalFree);
    GcGlobalFree += TotalWords;
    return O;
  }

  ChunkState &Chunk = GcChunks[AllocatorId];
  if (Chunk.Cur + TotalWords > Chunk.End) {
    if (!refillChunk(Chunk, ToSpace, GcGlobalFree))
      return nullptr;
    if (Chunk.Cur + TotalWords > Chunk.End)
      return nullptr;
  }
  Object *O = objectAt(ToSpace, Chunk.Cur);
  Chunk.Cur += TotalWords;
  return O;
}

void Heap::endCollection() {
  assert(Collecting && "no collection running");
  Collecting = false;
#ifndef NDEBUG
  // Poison the from-space so stale pointers fault fast in debug builds.
  std::memset(Spaces[ActiveSpace], 0xAB, Cfg.SemispaceWords * 8);
#endif
  ActiveSpace = 1 - ActiveSpace;
  // Survivors sit below GcGlobalFree, except that GC chunks may have
  // unused tails. Conservatively resume global allocation at the high-water
  // mark; the chunk tails are wasted until the next flip, exactly like a
  // real chunked collector.
  GlobalFree = GcGlobalFree;
  for (ChunkState &C : Chunks)
    C = ChunkState();
}

bool Heap::inActiveSpace(const Object *O) const {
  auto *P = reinterpret_cast<const uint64_t *>(O);
  return P >= Spaces[ActiveSpace] && P < Spaces[ActiveSpace] + Cfg.SemispaceWords;
}

bool Heap::inToSpace(const Object *O) const {
  assert(Collecting && "inToSpace is only meaningful during a collection");
  auto *P = reinterpret_cast<const uint64_t *>(O);
  int ToSpace = 1 - ActiveSpace;
  return P >= Spaces[ToSpace] && P < Spaces[ToSpace] + Cfg.SemispaceWords;
}

int Heap::debugSpaceOf(const Object *O) const {
  auto *P = reinterpret_cast<const uint64_t *>(O);
  for (int S = 0; S < 2; ++S)
    if (P >= Spaces[S] && P < Spaces[S] + Cfg.SemispaceWords)
      return S;
  return -1;
}

size_t Heap::usedWords() const {
  // GlobalFree counts handed-out chunks as used; that is the honest number
  // for "can I still allocate".
  return GlobalFree;
}
