//===----------------------------------------------------------------------===//
///
/// \file
/// REPL implementation.
///
//===----------------------------------------------------------------------===//

#include "ui/Repl.h"

#include "analysis/RaceDetect.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/TraceExport.h"
#include "reader/Reader.h"
#include "runtime/Printer.h"
#include "support/StrUtil.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mult {
void dumpStats(OutStream &OS, const EngineStats &S); // core/Stats.cpp
} // namespace mult

using namespace mult;

std::string Repl::prompt() const {
  size_t Depth = E.stoppedGroups().size();
  if (Depth == 0)
    return "mul-t> ";
  return strFormat("mul-t[%zu]> ", Depth);
}

static std::string_view trimmed(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

bool Repl::processLine(std::string_view Line) {
  std::string_view L = trimmed(Line);
  if (L.empty())
    return true;
  if (L == ":exit" || L == ":quit" || L == "(exit)")
    return false;
  // ':' is the native command prefix; ',' is accepted as an alias for
  // T/Mul-T muscle memory (",stats", ",trace out.json").
  if (L[0] == ':' || L[0] == ',') {
    size_t Space = L.find(' ');
    std::string_view Cmd = L.substr(1, Space == std::string_view::npos
                                           ? std::string_view::npos
                                           : Space - 1);
    std::string_view Arg =
        Space == std::string_view::npos ? "" : trimmed(L.substr(Space + 1));
    if (Cmd == "help")
      cmdHelp();
    else if (Cmd == "groups")
      cmdGroups();
    else if (Cmd == "tasks")
      cmdTasks(Arg);
    else if (Cmd == "bt")
      cmdBacktrace();
    else if (Cmd == "resume" || Cmd == "ret")
      cmdResume(Arg);
    else if (Cmd == "kill")
      cmdKill(Arg);
    else if (Cmd == "stats")
      cmdStats();
    else if (Cmd == "histo")
      cmdHisto(Arg);
    else if (Cmd == "procs")
      cmdProcs();
    else if (Cmd == "races")
      cmdRaces();
    else if (Cmd == "trace")
      cmdTrace(Arg);
    else if (Cmd == "profile")
      cmdProfile(Arg);
    else if (Cmd == "faults")
      cmdFaults(Arg);
    else if (Cmd == "exit" || Cmd == "quit")
      return false;
    else
      Out << "unknown command " << L.substr(0, Space) << "; try :help\n";
    return true;
  }
  evalAndPrint(L);
  return true;
}

void Repl::evalAndPrint(std::string_view Src) {
  EvalResult R = E.eval(Src);
  Out << E.takeOutput();
  switch (R.K) {
  case EvalResult::Kind::Value:
    printValue(Out, R.Val);
    Out << '\n';
    return;
  case EvalResult::Kind::RuntimeError:
  case EvalResult::Kind::HeapExhausted: {
    // A heap-exhausted stop lands in the breakloop like any other
    // exception (the group is inspectable and killable); a wedged-heap
    // exhaustion has no stopped group and reports like a plain error.
    Out << ";; exception: " << R.Error << '\n';
    if (Group *G = E.findGroup(R.StoppedGroup)) {
      Out << ";; group " << G->Id << " stopped (" << G->Banner << ")\n";
      Out << ";; current task " << taskIndex(G->CurrentTask)
          << "; :bt for a backtrace, :resume <value> to continue, "
             ":kill to discard\n";
    }
    return;
  }
  default:
    Out << ";; error: " << R.Error << '\n';
    return;
  }
}

void Repl::cmdHelp() {
  Out << "REPL commands (':' or the T-style ',' prefix, e.g. \",stats\"):\n"
         "  :groups          list all groups and their states\n"
         "  :tasks <group>   list a stopped group's tasks\n"
         "  :bt              backtrace of the current task\n"
         "  :resume [value]  resume the current group; the erring\n"
         "                   operation returns the value (default #f)\n"
         "  :kill [group]    kill the current (or named) group\n"
         "  :stats           execution statistics and metrics report\n"
         "                   (latency percentiles are always on)\n"
         "  :histo [NAME]    latency histogram index, or one histogram's\n"
         "                   full log2 buckets (e.g. :histo touch-wait);\n"
         "                   MULT_TELEMETRY=prom:PATH|json:PATH exports\n"
         "                   everything at exit\n"
         "  :procs           per-processor liveness, clocks and queue\n"
         "                   depths (dead = fail-stopped by proc-kill)\n"
         "  :races           determinacy races found so far (needs the\n"
         "                   detector: MULT_RACE=1 or RaceDetect config)\n"
         "  :trace on|off    toggle the virtual-time event tracer\n"
         "  :trace ring:N|stream[:PATH]|unbounded\n"
         "                   choose the trace sink (stream writes binary\n"
         "                   events to PATH as they happen)\n"
         "  :trace FILE      write the trace as Chrome/Perfetto JSON\n"
         "                   (benches do this per run into $MULT_TRACE_DIR)\n"
         "  :profile         critical-path profile of the last traced run\n"
         "                   (work, span, parallelism, per-future-site)\n"
         "  :profile FILE    derive per-future-site policies (eager/\n"
         "                   inline/lazy) from that profile and write them\n"
         "                   to FILE (next run: MULT_SITE_POLICIES=FILE)\n"
         "  :faults [SPEC]   show, arm (SPEC, see DESIGN.md or\n"
         "                   MULT_FAULTS), or disarm (:faults off) the\n"
         "                   deterministic fault injector\n"
         "  :exit            leave the REPL\n"
         "anything else evaluates as a Mul-T expression (its own group)\n";
}

void Repl::cmdGroups() {
  for (const Group &G : E.allGroups()) {
    if (G.Internal)
      continue; // prelude bootstrap
    Out << "  group " << G.Id << " [" << groupStateName(G.State) << "] "
        << G.Banner << " (" << G.TasksCreated << " tasks)\n";
  }
}

void Repl::cmdTasks(std::string_view Arg) {
  GroupId Id = E.currentStoppedGroup();
  if (!Arg.empty())
    Id = static_cast<GroupId>(std::atoi(std::string(Arg).c_str()));
  Group *G = E.findGroup(Id);
  if (!G) {
    Out << "no such group\n";
    return;
  }
  for (TaskId T : G->Members) {
    Task *Live = E.liveTask(T);
    if (!Live)
      continue;
    const char *State = "?";
    switch (Live->State) {
    case TaskState::Ready: State = "ready"; break;
    case TaskState::Running: State = "running"; break;
    case TaskState::BlockedFuture: State = "blocked-on-future"; break;
    case TaskState::BlockedSemaphore: State = "blocked-on-semaphore"; break;
    case TaskState::Stopped: State = "stopped"; break;
    case TaskState::Done: State = "done"; break;
    }
    Out << "  task " << taskIndex(T) << " [" << State << "]"
        << (T == G->CurrentTask ? " <- current" : "") << "\n";
  }
}

void Repl::cmdBacktrace() {
  GroupId Id = E.currentStoppedGroup();
  Group *G = E.findGroup(Id);
  if (!G || G->State != GroupState::Stopped) {
    Out << "no stopped group\n";
    return;
  }
  Out << ";; " << G->Condition << '\n';
  Out << E.backtrace(G->CurrentTask);
}

void Repl::cmdResume(std::string_view Arg) {
  GroupId Id = E.currentStoppedGroup();
  if (Id == InvalidGroup) {
    Out << "no stopped group\n";
    return;
  }
  Value V = Value::falseV();
  if (!Arg.empty()) {
    Reader Rd(E.builder(), Arg);
    ReadResult RR = Rd.read();
    if (!RR.ok()) {
      Out << "bad resume value\n";
      return;
    }
    V = RR.Datum;
  }
  EvalResult R = E.resumeGroup(Id, V);
  Out << E.takeOutput();
  if (R.ok()) {
    printValue(Out, R.Val);
    Out << '\n';
  } else {
    Out << ";; " << R.Error << '\n';
  }
}

void Repl::cmdKill(std::string_view Arg) {
  GroupId Id = E.currentStoppedGroup();
  if (!Arg.empty())
    Id = static_cast<GroupId>(std::atoi(std::string(Arg).c_str()));
  if (Id == InvalidGroup) {
    Out << "no stopped group\n";
    return;
  }
  E.killGroup(Id);
  Out << ";; group " << Id << " killed\n";
}

void Repl::cmdStats() {
  dumpStats(Out, E.stats());
  MetricsReport R = buildMetrics(E.machine(), E.stats(), E.gcStats(),
                                 E.tracer(), E.raceDetector(),
                                 &E.telemetry(), E.config().CheckpointEvery);
  dumpMetrics(Out, R);
}

void Repl::cmdHisto(std::string_view Arg) {
  if (Arg.empty())
    dumpHistogramIndex(Out, E.telemetry());
  else
    dumpHistogram(Out, E.telemetry(), Arg);
}

void Repl::cmdRaces() {
  const RaceDetector *D = E.raceDetector();
  if (!D) {
    Out << ";; race detection off (restart with MULT_RACE=1 or set "
           "EngineConfig::RaceDetect)\n";
    return;
  }
  Out << strFormat(";; races: %llu (%llu accesses checked, %llu cells "
                   "tracked)\n",
                   static_cast<unsigned long long>(D->raceCount()),
                   static_cast<unsigned long long>(D->accessesChecked()),
                   static_cast<unsigned long long>(D->cellsTracked()));
  for (const RaceDetector::Race &R : D->races())
    Out << D->describe(R, E.tracer().siteNames());
  if (D->raceCount() > D->races().size())
    Out << strFormat(";; (%llu more races not stored; first %zu shown)\n",
                     static_cast<unsigned long long>(D->raceCount() -
                                                     D->races().size()),
                     D->races().size());
}

void Repl::cmdProcs() {
  const Machine &M = E.machine();
  // The checkpoint columns appear only when the policy is armed, keeping
  // the dormant output bit-identical.
  bool ShowCkpt = E.config().CheckpointEvery != 0;
  Out << "  proc  state       clock  queue(new/susp)  busy/idle/gc";
  if (ShowCkpt)
    Out << "  ckpts@last";
  Out << "\n";
  for (unsigned I = 0; I < M.numProcessors(); ++I) {
    const Processor &P = M.processor(I);
    Out << strFormat("  %4u  %-5s %11llu  %zu/%zu  %llu/%llu/%llu", P.Id,
                     P.Dead ? "dead" : "live",
                     static_cast<unsigned long long>(P.Clock),
                     P.Queues.newCount(), P.Queues.suspendedCount(),
                     static_cast<unsigned long long>(P.BusyCycles),
                     static_cast<unsigned long long>(P.IdleCycles),
                     static_cast<unsigned long long>(P.GcCycles));
    if (ShowCkpt) {
      if (P.CheckpointsTaken)
        Out << strFormat("  %llu@%llu",
                         static_cast<unsigned long long>(P.CheckpointsTaken),
                         static_cast<unsigned long long>(
                             P.LastCheckpointClock));
      else
        Out << "  0@-";
    }
    Out << "\n";
  }
  const EngineStats &S = E.stats();
  if (S.ProcsKilled)
    Out << strFormat(";; %llu processor(s) fail-stopped; %llu tasks "
                     "recovered, %llu orphaned (%llu recovery cycles)\n",
                     static_cast<unsigned long long>(S.ProcsKilled),
                     static_cast<unsigned long long>(S.TasksRecovered),
                     static_cast<unsigned long long>(S.TasksOrphaned),
                     static_cast<unsigned long long>(S.RecoveryCycles));
}

void Repl::cmdProfile(std::string_view Arg) {
  if (!E.tracer().enabled() && E.tracer().size() == 0) {
    Out << ";; tracing is off (:trace on, rerun, then :profile)\n";
    return;
  }
  CriticalPathReport R = analyzeCriticalPath(E.tracer());
  if (Arg.empty()) {
    dumpProfile(Out, R, E.machine().numProcessors(),
                E.stats().ElapsedCycles);
    return;
  }
  // `:profile FILE` closes the feedback loop: derive a site-policy table
  // from the critical path and write it where MULT_SITE_POLICIES (or
  // EngineConfig::SitePolicies) can load it on the next run.
  if (!R.Ok) {
    Out << ";; profile unavailable: " << R.Error << '\n';
    return;
  }
  SitePolicyTable T = deriveSitePolicies(R);
  std::string Path(Arg);
  std::string Err;
  if (!T.saveFile(Path, Err)) {
    Out << ";; " << Err << '\n';
    return;
  }
  Out << ";; wrote " << T.size() << " site policies to " << Path
      << " (load with MULT_SITE_POLICIES)\n";
}

void Repl::cmdFaults(std::string_view Arg) {
  if (Arg.empty()) {
    const FaultInjector &FI = E.faults();
    if (!FI.armed()) {
      Out << ";; fault injection off\n";
      return;
    }
    Out << ";; fault plan: " << FI.plan().format() << '\n';
    Out << ";; " << E.stats().FaultsInjected << " faults injected so far\n";
    return;
  }
  if (Arg == "off") {
    std::string Err;
    E.configureFaults("", Err);
    Out << ";; fault injection off\n";
    return;
  }
  std::string Err;
  if (!E.configureFaults(Arg, Err)) {
    Out << ";; bad fault plan: " << Err << '\n';
    return;
  }
  Out << ";; fault plan armed: " << E.faults().plan().format() << '\n';
}

void Repl::cmdTrace(std::string_view Arg) {
  if (Arg.empty() || Arg == "on" || Arg == "off") {
    if (!Arg.empty())
      E.tracer().setEnabled(Arg == "on");
    Tracer &Tr = E.tracer();
    Out << ";; tracing " << (Tr.enabled() ? "on" : "off");
    switch (Tr.mode()) {
    case TraceSinkMode::Unbounded:
      Out << " (" << Tr.size() << " events buffered)\n";
      break;
    case TraceSinkMode::Ring:
      Out << strFormat(" (ring of %zu: %zu buffered, %llu dropped)\n",
                       Tr.ringCapacity(), Tr.size(),
                       static_cast<unsigned long long>(Tr.dropped()));
      break;
    case TraceSinkMode::Stream:
      Out << strFormat(" (streaming to %s: %llu emitted)\n",
                       Tr.streamPath().c_str(),
                       static_cast<unsigned long long>(Tr.emitted()));
      break;
    }
    return;
  }
  if (Arg == "unbounded" || Arg.substr(0, 5) == "ring:" || Arg == "stream" ||
      Arg.substr(0, 7) == "stream:") {
    std::string Err;
    if (E.tracer().configureSink(std::string(Arg), Err))
      Out << ";; trace sink set to " << Arg << '\n';
    else
      Out << ";; " << Err << '\n';
    return;
  }
  std::string Path(Arg);
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    Out << ";; cannot open " << Path << '\n';
    return;
  }
  FileOutStream FS(F);
  writeChromeTrace(FS, E.tracer(), E.machine());
  FS.flush();
  std::fclose(F);
  Out << ";; wrote " << E.tracer().size() << " events to " << Path << '\n';
}
