//===----------------------------------------------------------------------===//
///
/// \file
/// The group-aware read-eval-print loop (paper section 2.3).
///
/// Each typed expression runs as its own group. On an exception the group
/// stops and the REPL enters breakloop mode: the usual debugging commands
/// apply by default to the *current task* of the *current group*, but any
/// stopped group can be inspected, resumed (in any order!) or killed —
/// exactly the departure from one-breakloop-per-task that the paper
/// advocates.
///
/// Commands: ordinary Mul-T expressions evaluate; lines starting with ':'
/// (or ',', T-style) are REPL commands (:help lists them).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_UI_REPL_H
#define MULT_UI_REPL_H

#include "core/Engine.h"

#include <string_view>

namespace mult {

/// The REPL driver. I/O-agnostic: callers feed lines and render output.
class Repl {
public:
  Repl(Engine &E, OutStream &Out) : E(E), Out(Out) {}

  /// Handles one input line. Returns false when the user asked to exit.
  bool processLine(std::string_view Line);

  /// The prompt reflecting breakloop depth: "mul-t>" at top level,
  /// "mul-t[2]>" inside two stopped groups.
  std::string prompt() const;

private:
  void evalAndPrint(std::string_view Src);
  void cmdHelp();
  void cmdGroups();
  void cmdTasks(std::string_view Arg);
  void cmdBacktrace();
  void cmdResume(std::string_view Arg);
  void cmdKill(std::string_view Arg);
  void cmdStats();
  void cmdHisto(std::string_view Arg);
  void cmdProcs();
  void cmdRaces();
  void cmdTrace(std::string_view Arg);
  void cmdProfile(std::string_view Arg);
  void cmdFaults(std::string_view Arg);

  Engine &E;
  OutStream &Out;
};

} // namespace mult

#endif // MULT_UI_REPL_H
