//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch policy of paper section 2.1.3.
///
/// When a processor finishes a task it searches, in order:
///   1. its own suspended task queue,
///   2. its own new task queue,
///   3. other processors' new task queues (stealing),
///   4. other processors' suspended task queues (stealing),
/// and, in lazy-future mode, 5. the oldest stealable seam in the machine.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SCHED_SCHEDULER_H
#define MULT_SCHED_SCHEDULER_H

#include "core/Task.h"

namespace mult {

class Engine;
class Machine;
struct Processor;

/// Finds the next task for idle processor \p P, charging dispatch costs.
/// Returns InvalidTask when nothing is runnable. Handles parking of tasks
/// whose group has stopped, and attributes Table-1 step 4/6 cycles.
TaskId dispatchNextTask(Engine &E, Machine &M, Processor &P);

} // namespace mult

#endif // MULT_SCHED_SCHEDULER_H
