//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive inlining-threshold decision logic. Pure functions over window
/// signals so the controller is unit-testable without a Machine.
///
//===----------------------------------------------------------------------===//

#include "sched/Adaptive.h"

#include <algorithm>

using namespace mult;

int adaptive::decideStep(const AdaptiveTConfig &Cfg, unsigned CurT,
                         const WindowSignals &W) {
  // Starving thief: this processor probed for work and mostly came back
  // empty. Its T is moot while it idles, but cutting its supply now can
  // only make the shortage worse — lowering is suppressed below.
  bool Starving = W.StealAttempts >= Cfg.MinProbes &&
                  2 * W.StealsFailed >= W.StealAttempts;
  // Floor: on a multiprocessor keep at least one task buffered (the
  // paper's static recommendation). At T = 0 the queue stays empty, so
  // demand becomes invisible and the processor serializes its whole
  // subtree while the others idle; only a machine with no possible thief
  // lets T fall to MinT.
  unsigned Floor = Cfg.MinT;
  if (W.Processors > 1 && Floor < 1)
    Floor = 1;
  // Demand: tasks thieves actually took from this queue. Realized flow,
  // not probe counts — idle processors retry steals in a tight loop, so
  // failure counts balloon on span-limited programs without implying a
  // deeper buffer would have supplied anything.
  unsigned Target = static_cast<unsigned>(std::min<uint64_t>(
      std::max<uint64_t>(W.StolenFrom, Floor), Cfg.MaxT));
  if (Target > CurT)
    return +1;
  if (Target < CurT)
    return Starving ? 0 : -1;
  // Backlog: the queue climbed well past the threshold and thieves did
  // not drain it — surplus parallelism, shed the creation overhead.
  bool Backlogged =
      W.QueueHighWater >= static_cast<size_t>(CurT) + Cfg.DrainSlack;
  if (Backlogged && CurT > Floor && !Starving)
    return -1;
  return 0;
}

bool adaptive::applyStep(const AdaptiveTConfig &Cfg, AdaptiveTState &A,
                         int Dir) {
  if (Dir == 0) {
    A.PendingDir = 0;
    A.PendingCount = 0;
    return false;
  }
  if (Dir == A.PendingDir) {
    ++A.PendingCount;
  } else {
    A.PendingDir = Dir;
    A.PendingCount = 1;
  }
  if (A.PendingCount < Cfg.Hysteresis)
    return false;
  A.PendingDir = 0;
  A.PendingCount = 0;
  unsigned Old = A.T;
  if (Dir > 0) {
    if (A.T < Cfg.MaxT)
      ++A.T;
  } else {
    if (A.T > Cfg.MinT)
      --A.T;
  }
  if (A.T == Old)
    return false;
  if (Dir > 0)
    ++A.Raises;
  else
    ++A.Lowers;
  return true;
}
