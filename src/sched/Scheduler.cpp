//===----------------------------------------------------------------------===//
///
/// \file
/// Dispatch policy implementation.
///
//===----------------------------------------------------------------------===//

#include "sched/Scheduler.h"

#include "core/Engine.h"
#include "core/LazyFutures.h"
#include "vm/CostModel.h"

using namespace mult;

namespace {

/// Validates a popped task id: live, Ready, group running. Parks members
/// of stopped groups so Engine::resumeGroup can re-enqueue them.
/// Returns null when the id should be dropped.
Task *vetTask(Engine &E, Processor &P, TaskId Id) {
  Task *T = E.liveTask(Id);
  if (!T || T->State != TaskState::Ready)
    return nullptr;
  Group &G = E.group(T->Group);
  // Done groups keep computing: their root resolved, but leftover tasks
  // (futures nobody touched yet) continue in the background.
  if (G.State == GroupState::Running || G.State == GroupState::Done)
    return T;
  if (G.State == GroupState::Stopped) {
    T->State = TaskState::Stopped;
    G.Parked.push_back(Id);
    E.tracer().record(TraceEventKind::TaskParked, P.Id, P.Clock, Id);
  } else {
    // Killed group: drop the task entirely.
    E.tracer().record(TraceEventKind::TaskDropped, P.Id, P.Clock, Id);
    E.finishTask(*T);
  }
  return nullptr;
}

} // namespace

TaskId mult::dispatchNextTask(Engine &E, Machine &M, Processor &P) {
  uint64_t Cycles = 0;
  EngineStats &S = E.stats();
  Tracer &Tr = E.tracer();
  auto Accept = [&](TaskId Id, bool FromNewQueue, bool Stolen) -> TaskId {
    Task *T = vetTask(E, P, Id);
    if (!T)
      return InvalidTask;
    uint64_t Base = FromNewQueue ? cost::DispatchNewBase : cost::DispatchSuspBase;
    Cycles += Base;
    P.charge(Cycles);
    // Table-1 attribution covers future-created tasks: the *initial*
    // dispatch of an evaluation's root task is launch overhead, not part
    // of the future protocol (its suspended-queue wakeups are: they are
    // exactly Table 1's step 6).
    bool IsRootLaunch = FromNewQueue && T->ResultFuture.isFuture() &&
                        T->ResultFuture.pointee() == E.rootFutureObject();
    if (!IsRootLaunch) {
      // Charge the queue operation itself to the step, not the incidental
      // probing of other queues on the way (the paper's figures assume the
      // task is found directly).
      uint64_t StepShare = Base + cost::QueueLockHold + 2;
      if (FromNewQueue)
        S.Steps.DispatchNewCycles += StepShare;
      else
        S.Steps.DispatchSuspCycles += StepShare;
    }
    ++S.Dispatches;
    ++P.Dispatches;
    ++P.TasksStarted;
    if (Stolen) {
      ++S.Steals;
      ++P.Steals;
    }
    T->State = TaskState::Running;
    T->LastProc = P.Id;
    Cycles = 0;
    if (Tr.enabled())
      Tr.record(TraceEventKind::TaskStart, P.Id, P.Clock, T->Id,
                Stolen ? 1 : 0);
    return T->Id;
  };

  // 1. Own suspended queue.
  for (;;) {
    TaskId Id = P.Queues.popSuspended(P.Clock + Cycles, Cycles);
    if (Id == InvalidTask)
      break;
    TaskId Got = Accept(Id, /*FromNewQueue=*/false, /*Stolen=*/false);
    if (Got != InvalidTask)
      return Got;
  }

  // 2. Own new queue.
  for (;;) {
    TaskId Id = P.Queues.popNew(P.Clock + Cycles, Cycles);
    if (Id == InvalidTask)
      break;
    TaskId Got = Accept(Id, /*FromNewQueue=*/true, /*Stolen=*/false);
    if (Got != InvalidTask)
      return Got;
  }

  unsigned N = M.numProcessors();
  // Steal attempts are counted per *probe* of a victim queue, not per
  // victim: when vetting rejects a popped task the retry probes again and
  // must count again, or the Steals/StealAttempts ratio overstates
  // success. Every probe ends in exactly one of Steals (Accept took it)
  // or StealsFailed (queue empty, or the popped task was parked/dropped).
  auto StealFrom = [&](Processor &Victim, bool FromNewQueue) -> TaskId {
    // Injected probe failure: the probe happens (lock acquired, queue
    // looked at) but comes back empty-handed, preserving the
    // Steals + StealsFailed == StealAttempts identity.
    if (E.faults().armed() && E.faults().shouldFailSteal()) {
      ++S.StealAttempts;
      ++S.StealsFailed;
      ++P.StealAttempts;
      ++P.StealsFailed;
      Cycles += cost::QueueLockHold;
      E.noteFault(P, FaultKind::StealFail, Victim.Id);
      if (Tr.enabled())
        Tr.record(TraceEventKind::StealAttempt, P.Id, P.Clock + Cycles,
                  Victim.Id, 0);
      return InvalidTask;
    }
    for (;;) {
      ++S.StealAttempts;
      ++P.StealAttempts;
      uint64_t Arrival = 0;
      TaskId Id =
          FromNewQueue
              ? Victim.Queues.stealNew(P.Clock + Cycles, Cycles,
                                       M.stealOrder(), &Arrival)
              : Victim.Queues.stealSuspended(P.Clock + Cycles, Cycles,
                                             M.stealOrder(), &Arrival);
      if (Id == InvalidTask) {
        ++S.StealsFailed;
        ++P.StealsFailed;
        if (Tr.enabled())
          Tr.record(TraceEventKind::StealAttempt, P.Id, P.Clock + Cycles,
                    Victim.Id, 0);
        return InvalidTask;
      }
      TaskId Got = Accept(Id, FromNewQueue, /*Stolen=*/true);
      if (Got != InvalidTask) {
        // Steal latency: enqueue on the victim to stolen dispatch here,
        // saturating (thief and victim clocks drift independently).
        E.telemetry().record(E.telemetryIds().StealLatency, P.Id,
                             P.Clock > Arrival ? P.Clock - Arrival : 0);
        ++Victim.StolenFrom;
        if (Tr.enabled())
          Tr.record(TraceEventKind::StealAttempt, P.Id, P.Clock, Victim.Id,
                    1);
        return Got;
      }
      ++S.StealsFailed; // popped a task the vet parked or dropped
      ++P.StealsFailed;
      if (Tr.enabled())
        Tr.record(TraceEventKind::StealAttempt, P.Id, P.Clock + Cycles,
                  Victim.Id, 0);
    }
  };

  // 3. Steal from other processors' new queues. Fail-stopped processors
  // are skipped entirely (no probe, no StealAttempt): their queues were
  // drained when they died, and a dead board answers no bus requests.
  for (unsigned K = 1; K < N; ++K) {
    Processor &Victim = M.processor((P.Id + K) % N);
    if (Victim.Dead)
      continue;
    TaskId Got = StealFrom(Victim, /*FromNewQueue=*/true);
    if (Got != InvalidTask)
      return Got;
  }

  // 4. Steal from other processors' suspended queues.
  for (unsigned K = 1; K < N; ++K) {
    Processor &Victim = M.processor((P.Id + K) % N);
    if (Victim.Dead)
      continue;
    TaskId Got = StealFrom(Victim, /*FromNewQueue=*/false);
    if (Got != InvalidTask)
      return Got;
  }

  // 5. Lazy futures: split a provisionally inlined task. Seams exist when
  // the global lazy mode is on *or* a site policy made one future lazy, so
  // gate on the seam deque itself (empty when neither is in play).
  if (!E.seams().empty()) {
    P.charge(Cycles);
    Cycles = 0;
    auto R = lazyfutures::trySteal(E, P);
    if (R.K == lazyfutures::StealResult::Kind::Stolen) {
      Task &T = E.task(R.NewTask);
      T.State = TaskState::Running;
      T.LastProc = P.Id;
      ++S.Dispatches;
      ++P.Dispatches;
      ++P.TasksStarted;
      if (Tr.enabled())
        Tr.record(TraceEventKind::TaskStart, P.Id, P.Clock, R.NewTask, 2);
      return R.NewTask;
    }
    // NeedsGc is handled implicitly: the allocation failure path already
    // charged cycles; the machine's GC trigger fires on the next mutator
    // allocation failure. Fall through to idle.
  }

  P.charge(Cycles);
  return InvalidTask;
}
