//===----------------------------------------------------------------------===//
///
/// \file
/// Adaptive inlining threshold (ROADMAP "adaptive inlining threshold").
///
/// The paper's inlining optimization (section 3) evaluates a future inline
/// when the creating processor's queues already hold >= T tasks, for one
/// static T chosen per run — and its own Table 3 shows the best T depends
/// on the workload and the processor count. This module closes the loop:
/// each processor re-tunes its *own* T in fixed virtual-time windows.
///
/// The controller tracks *realized demand*: T's job is to keep enough
/// tasks buffered that thieves leave with work, and the tasks thieves
/// actually took from this queue in a window (StolenFrom) measure exactly
/// that. Each window the processor steps T toward
/// clamp(StolenFrom, floor, MaxT). Probe/failure rates are deliberately
/// NOT the driver: an idle processor retries steals in a tight loop, so
/// failed-probe counts balloon on any span-limited program and say
/// nothing about what a deeper buffer would have supplied (the
/// first-draft controller raised T on failure rate and lost ~7-25% on
/// every workload to future-creation overhead). Failure rates instead
/// play two guard roles:
///
///   - floor: on a multiprocessor T never drops below 1 (the paper's
///     recommended static setting) — at T = 0 the queue is always empty,
///     demand becomes invisible, and a processor that inlines everything
///     serializes its whole subtree while the others idle; only a
///     single-processor machine, where no thief can ever arrive, lets T
///     fall to MinT and shed the last future's overhead;
///   - hold: a processor whose own probes mostly fail is starving, and
///     however miscalibrated its T looks, cutting supply then would only
///     make things worse — lowering is suppressed for that window.
///
/// A queue high-water mark well past T additionally votes to lower
/// (backlog nobody drained = surplus parallelism, shed the overhead).
///
/// All inputs are deterministic virtual-time state (no PRNG, no host
/// clocks), so adaptive runs replay bit-for-bit from the same seed. The
/// decision applies bounded hysteresis: T moves one step at a time, only
/// after the same direction wins Hysteresis consecutive windows, and
/// never leaves [MinT, MaxT]. With Enabled = false the controller is
/// never consulted and the engine behaves exactly as before (the static
/// EngineConfig::InlineThreshold path).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SCHED_ADAPTIVE_H
#define MULT_SCHED_ADAPTIVE_H

#include <cstddef>
#include <cstdint>

namespace mult {

/// Tuning knobs of the per-processor threshold controller
/// (EngineConfig::Adaptive*).
struct AdaptiveTConfig {
  bool Enabled = false;
  /// Window length in the owning processor's virtual cycles.
  uint64_t WindowCycles = 4096;
  unsigned MinT = 0;
  unsigned MaxT = 16;
  /// Starting threshold (EngineConfig::InlineThreshold when set and
  /// finite; the paper's recommended T = 1 otherwise).
  unsigned StartT = 1;
  /// Consecutive windows that must vote the same direction before T moves.
  unsigned Hysteresis = 2;
  /// Minimum steal probes in a window before the failure rate is trusted.
  uint64_t MinProbes = 4;
  /// Surplus when the window queue high-water reaches T + DrainSlack.
  unsigned DrainSlack = 2;
};

/// What one processor observed during one adaptation window.
struct WindowSignals {
  uint64_t StealAttempts = 0; ///< probes this processor made as a thief
  uint64_t StealsFailed = 0;  ///< probes that came back empty-handed
  uint64_t StolenFrom = 0;    ///< tasks thieves took from this processor
  uint64_t TasksQueued = 0;   ///< tasks this processor pushed on its new queue
  size_t QueueHighWater = 0;  ///< max own queue depth within the window
  /// Processors on the machine; more than one floors T at 1 (see the
  /// module comment — at T = 0 demand becomes invisible).
  unsigned Processors = 1;
};

/// Per-processor controller state (embedded in Processor).
struct AdaptiveTState {
  unsigned T = 1;            ///< the processor's current threshold
  uint64_t WindowEnd = 0;    ///< clock at which the open window closes
  uint64_t AttemptsAtStart = 0;
  uint64_t FailedAtStart = 0;
  uint64_t StolenFromAtStart = 0;
  uint64_t QueuedAtStart = 0;
  int PendingDir = 0;        ///< hysteresis: direction under consideration
  unsigned PendingCount = 0; ///< consecutive windows voting PendingDir
  uint64_t WindowsClosed = 0;
  uint64_t Raises = 0;
  uint64_t Lowers = 0;
};

namespace adaptive {

/// Direction one window's signals vote to move the threshold: +1 raise
/// (demand exceeded the buffer), -1 lower (surplus), 0 hold. Pure;
/// bounds are applied by applyStep.
int decideStep(const AdaptiveTConfig &Cfg, unsigned CurT,
               const WindowSignals &W);

/// Feeds one window's vote \p Dir through the hysteresis filter and, when
/// it carries, moves A.T one step within [Cfg.MinT, Cfg.MaxT]. Returns
/// true when A.T actually changed.
bool applyStep(const AdaptiveTConfig &Cfg, AdaptiveTState &A, int Dir);

} // namespace adaptive
} // namespace mult

#endif // MULT_SCHED_ADAPTIVE_H
