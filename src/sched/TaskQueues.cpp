//===----------------------------------------------------------------------===//
///
/// \file
/// TaskQueues implementation.
///
//===----------------------------------------------------------------------===//

#include "sched/TaskQueues.h"

#include "vm/CostModel.h"

#include <algorithm>

using namespace mult;

uint64_t TaskQueues::pushNew(TaskId T, uint64_t Now) {
  uint64_t C = NewLock.acquire(Now, cost::QueueLockHold);
  NewQ.emplace_back(T, Now);
  NewHighWater = std::max(NewHighWater, NewQ.size());
  ++NewPushes;
  noteDepth();
  return C + 2;
}

uint64_t TaskQueues::pushSuspended(TaskId T, uint64_t Now) {
  uint64_t C = SuspLock.acquire(Now, cost::QueueLockHold);
  SuspQ.emplace_back(T, Now);
  SuspHighWater = std::max(SuspHighWater, SuspQ.size());
  noteDepth();
  return C + 2;
}

TaskId TaskQueues::popNew(uint64_t Now, uint64_t &Cycles,
                          uint64_t *ArrivalOut) {
  if (NewQ.empty()) {
    Cycles += cost::QueueEmptyCheck; // lock-free; see CostModel.h
    return InvalidTask;
  }
  Cycles += NewLock.acquire(Now, cost::QueueLockHold) + 2;
  auto [T, Arrived] = NewQ.back();
  NewQ.pop_back();
  if (ArrivalOut)
    *ArrivalOut = Arrived;
  return T;
}

TaskId TaskQueues::popSuspended(uint64_t Now, uint64_t &Cycles,
                                uint64_t *ArrivalOut) {
  if (SuspQ.empty()) {
    Cycles += cost::QueueEmptyCheck;
    return InvalidTask;
  }
  Cycles += SuspLock.acquire(Now, cost::QueueLockHold) + 2;
  auto [T, Arrived] = SuspQ.back();
  SuspQ.pop_back();
  if (ArrivalOut)
    *ArrivalOut = Arrived;
  return T;
}

TaskId TaskQueues::stealNew(uint64_t Now, uint64_t &Cycles, StealOrder Order,
                            uint64_t *ArrivalOut) {
  if (NewQ.empty()) {
    Cycles += cost::StealProbe;
    return InvalidTask;
  }
  Cycles += NewLock.acquire(Now, cost::QueueLockHold) + cost::StealBase;
  std::pair<TaskId, uint64_t> E;
  if (Order == StealOrder::Lifo) {
    E = NewQ.back();
    NewQ.pop_back();
  } else {
    E = NewQ.front();
    NewQ.pop_front();
  }
  if (ArrivalOut)
    *ArrivalOut = E.second;
  return E.first;
}

TaskId TaskQueues::stealSuspended(uint64_t Now, uint64_t &Cycles,
                                  StealOrder Order, uint64_t *ArrivalOut) {
  if (SuspQ.empty()) {
    Cycles += cost::StealProbe;
    return InvalidTask;
  }
  Cycles += SuspLock.acquire(Now, cost::QueueLockHold) + cost::StealBase;
  std::pair<TaskId, uint64_t> E;
  if (Order == StealOrder::Lifo) {
    E = SuspQ.back();
    SuspQ.pop_back();
  } else {
    E = SuspQ.front();
    SuspQ.pop_front();
  }
  if (ArrivalOut)
    *ArrivalOut = E.second;
  return E.first;
}

std::vector<std::pair<TaskId, uint64_t>> TaskQueues::drainSuspendedArrivals() {
  std::vector<std::pair<TaskId, uint64_t>> Out(SuspQ.begin(), SuspQ.end());
  SuspQ.clear();
  return Out;
}
