//===----------------------------------------------------------------------===//
///
/// \file
/// TaskQueues implementation.
///
//===----------------------------------------------------------------------===//

#include "sched/TaskQueues.h"

#include "vm/CostModel.h"

#include <algorithm>

using namespace mult;

uint64_t TaskQueues::pushNew(TaskId T, uint64_t Now) {
  uint64_t C = NewLock.acquire(Now, cost::QueueLockHold);
  NewQ.push_back(T);
  NewHighWater = std::max(NewHighWater, NewQ.size());
  ++NewPushes;
  noteDepth();
  return C + 2;
}

uint64_t TaskQueues::pushSuspended(TaskId T, uint64_t Now) {
  uint64_t C = SuspLock.acquire(Now, cost::QueueLockHold);
  SuspQ.emplace_back(T, Now);
  SuspHighWater = std::max(SuspHighWater, SuspQ.size());
  noteDepth();
  return C + 2;
}

TaskId TaskQueues::popNew(uint64_t Now, uint64_t &Cycles) {
  if (NewQ.empty()) {
    Cycles += cost::QueueEmptyCheck; // lock-free; see CostModel.h
    return InvalidTask;
  }
  Cycles += NewLock.acquire(Now, cost::QueueLockHold) + 2;
  TaskId T = NewQ.back();
  NewQ.pop_back();
  return T;
}

TaskId TaskQueues::popSuspended(uint64_t Now, uint64_t &Cycles) {
  if (SuspQ.empty()) {
    Cycles += cost::QueueEmptyCheck;
    return InvalidTask;
  }
  Cycles += SuspLock.acquire(Now, cost::QueueLockHold) + 2;
  TaskId T = SuspQ.back().first;
  SuspQ.pop_back();
  return T;
}

TaskId TaskQueues::stealNew(uint64_t Now, uint64_t &Cycles, StealOrder Order) {
  if (NewQ.empty()) {
    Cycles += cost::StealProbe;
    return InvalidTask;
  }
  Cycles += NewLock.acquire(Now, cost::QueueLockHold) + cost::StealBase;
  TaskId T;
  if (Order == StealOrder::Lifo) {
    T = NewQ.back();
    NewQ.pop_back();
  } else {
    T = NewQ.front();
    NewQ.pop_front();
  }
  return T;
}

TaskId TaskQueues::stealSuspended(uint64_t Now, uint64_t &Cycles,
                                  StealOrder Order) {
  if (SuspQ.empty()) {
    Cycles += cost::StealProbe;
    return InvalidTask;
  }
  Cycles += SuspLock.acquire(Now, cost::QueueLockHold) + cost::StealBase;
  TaskId T;
  if (Order == StealOrder::Lifo) {
    T = SuspQ.back().first;
    SuspQ.pop_back();
  } else {
    T = SuspQ.front().first;
    SuspQ.pop_front();
  }
  return T;
}

std::vector<std::pair<TaskId, uint64_t>> TaskQueues::drainSuspendedArrivals() {
  std::vector<std::pair<TaskId, uint64_t>> Out(SuspQ.begin(), SuspQ.end());
  SuspQ.clear();
  return Out;
}
