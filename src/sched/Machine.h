//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual-time multiprocessor.
///
/// Substitute for the Encore Multimax (see DESIGN.md): N virtual
/// processors, each with a cycle clock; the machine always steps the
/// processor with the smallest clock, for a quantum of cycles at a time.
/// One host thread plays all processors, so every runtime operation is
/// atomic and the schedule is deterministic; contention is modelled by
/// VirtualLock busy-intervals. Speedup numbers come out in virtual time,
/// which reproduces the *shape* of the paper's tables exactly and is
/// immune to host-machine noise (the paper's UMAX runs varied by ~5%; ours
/// are bit-stable).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SCHED_MACHINE_H
#define MULT_SCHED_MACHINE_H

#include "sched/Adaptive.h"
#include "sched/TaskQueues.h"

#include <string>
#include <vector>

namespace mult {

class Engine;

/// One virtual processor.
struct Processor {
  unsigned Id = 0;
  uint64_t Clock = 0;
  TaskId Current = InvalidTask;
  TaskQueues Queues;

  // Statistics. Every cycle the clock advances lands in exactly one of
  // BusyCycles (charge), IdleCycles (idle ticks + waiting for a run to
  // start) or GcCycles (collection pauses), so
  //   Clock == ClockAtReset + BusyCycles + IdleCycles + GcCycles
  // holds from any resetStats (TraceTest asserts it).
  uint64_t BusyCycles = 0;
  uint64_t IdleCycles = 0;
  uint64_t GcCycles = 0;           ///< collection pauses (rendezvous to resume)
  uint64_t ClockAtReset = 0;       ///< Clock at the last resetStats
  uint64_t Instructions = 0;
  uint64_t Dispatches = 0;
  uint64_t Steals = 0;
  uint64_t StealAttempts = 0; ///< probes this processor made as a thief
  uint64_t StealsFailed = 0;  ///< of those, probes that found nothing
  uint64_t StolenFrom = 0;    ///< tasks thieves took from this processor
  uint64_t TasksStarted = 0;
  uint64_t HandlerActivations = 0; ///< exception-handler server task runs

  /// Adaptive inlining-threshold controller state (sched/Adaptive.h);
  /// consulted only when EngineConfig::AdaptiveInline is set.
  AdaptiveTState Adapt;

  /// Fail-stopped by a proc-kill fault: never stepped again, skipped as a
  /// steal victim and as a wake-up home. Its queues are drained by
  /// Engine::recoverProcessor the moment it dies, and it still follows GC
  /// rendezvous clock jumps so busy + idle + GC cycles keep tiling its
  /// (now frozen) clock.
  bool Dead = false;

  /// Armed by a proc-lie fault: the next finishing future value this
  /// processor resolves is corrupted (byzantine fault). Cleared once the
  /// lie is told — or caught by a cross-check, so a resume after a
  /// byzantine-detected stop resolves honestly.
  bool Lying = false;

  /// Checkpoint records captured on this processor (zero unless
  /// EngineConfig::CheckpointEvery is armed; reset by resetStats).
  uint64_t CheckpointsTaken = 0;
  /// This processor's clock at its newest capture (0 = none yet).
  uint64_t LastCheckpointClock = 0;

  /// True between the first fruitless dispatch and the next successful
  /// one; lets the run loop emit one idle-begin/idle-end trace pair per
  /// idle interval instead of one per idle tick.
  bool TraceIdling = false;

  void charge(uint64_t Cycles) {
    Clock += Cycles;
    BusyCycles += Cycles;
  }
};

/// Why Machine::run returned.
enum class RunStatus : uint8_t {
  Completed,    ///< Root future resolved; Result holds the value.
  GroupStopped, ///< The root group hit an exception (breakloop time).
  Deadlock,     ///< Quiescent with the root unresolved.
  HeapExhausted,///< GC could not reclaim enough space.
  CycleLimit,   ///< Config.MaxRunCycles exceeded.
};

/// Snapshot of heap occupancy taken when a run ends on a heap condition,
/// so callers (and the breakloop user) can see *why* without poking the
/// engine.
struct HeapFacts {
  size_t UsedWords = 0;
  size_t CapacityWords = 0; ///< semispace size
  uint64_t Collections = 0;
  bool CollectorWedged = false; ///< to-space overflow left the heap unusable
};

struct RunResult {
  RunStatus Status = RunStatus::Completed;
  Value Result = Value::unspecified();
  GroupId StoppedGroup = InvalidGroup;
  std::string Error;
  uint64_t ElapsedCycles = 0;
  HeapFacts Heap; ///< meaningful for HeapExhausted (and heap-caused stops)
};

/// The machine.
class Machine {
public:
  Machine(unsigned NumProcessors, uint64_t QuantumCycles,
          uint64_t MaxRunCycles, StealOrder Order,
          const AdaptiveTConfig &Adaptive = AdaptiveTConfig());

  /// Runs until the future \p RootFuture resolves (or an exceptional
  /// status). Runnable tasks must already be enqueued.
  RunResult run(Engine &E, Value RootFuture);

  unsigned numProcessors() const {
    return static_cast<unsigned>(Procs.size());
  }
  Processor &processor(unsigned I) { return Procs[I]; }
  const Processor &processor(unsigned I) const { return Procs[I]; }

  /// Collects all processor clocks (GC rendezvous).
  std::vector<uint64_t> clocks() const;
  void setClocks(const std::vector<uint64_t> &C);

  StealOrder stealOrder() const { return Order; }

  const AdaptiveTConfig &adaptiveConfig() const { return Adaptive; }
  bool adaptiveEnabled() const { return Adaptive.Enabled; }

  /// Machine-lifetime count of closed adaptation windows (never reset —
  /// the ordinal that fault-plan adapt-clamp/adapt-reset clauses key on).
  /// Lets callers aim a clause at upcoming windows: the prelude and any
  /// earlier evals already consumed the low ordinals.
  uint64_t adaptWindowsClosed() const { return AdaptWindowOrdinal; }

  /// Re-baselines every processor's open adaptation window against the
  /// current counters (Engine::resetStats calls this after zeroing them,
  /// so window deltas never straddle a reset). Learned thresholds persist.
  void rebaselineAdaptiveWindows();

  /// True when nothing can make progress: no current tasks, all queues
  /// empty, and no stealable lazy seams.
  bool quiescent(const Engine &E) const;

  /// Processors not fail-stopped by a proc-kill fault.
  unsigned liveProcessors() const;

  /// The quantum this machine steps processors by.
  uint64_t quantum() const { return Quantum; }

  /// True while run() is executing (fault clocks are run-relative; the
  /// GC kill poll must not fire from an allocation outside a run).
  bool inRun() const { return InRun; }

  /// The machine-wide clock run() started from (max processor clock at
  /// entry); converts absolute clocks to run-relative fault marks.
  uint64_t runStartClock() const { return RunStart; }

  /// \p Preferred if it is alive, else the next live processor in id
  /// order. Wake-ups (future resolve, semaphore V, group resume) route
  /// through this so a task whose home processor died is re-homed instead
  /// of sitting on a dead queue forever.
  Processor &homeFor(unsigned Preferred);

private:
  unsigned minClockProcessor() const;

  /// Closes \p P's adaptation window: reads the window's signals, feeds
  /// them through decideStep/applyStep (or an injected adapt-clamp /
  /// adapt-reset fault), charges cost::AdaptiveWindow, and opens the next
  /// window.
  void closeAdaptiveWindow(Engine &E, Processor &P);
  void beginAdaptiveWindow(Processor &P);

  std::vector<Processor> Procs;
  uint64_t Quantum;
  uint64_t MaxRunCycles;
  StealOrder Order;
  AdaptiveTConfig Adaptive;
  /// Machine-wide count of closed windows; the deterministic ordinal
  /// fault-plan adapt-* clauses key on.
  uint64_t AdaptWindowOrdinal = 0;
  /// See inRun()/runStartClock().
  bool InRun = false;
  uint64_t RunStart = 0;
};

} // namespace mult

#endif // MULT_SCHED_MACHINE_H
