//===----------------------------------------------------------------------===//
///
/// \file
/// Per-processor task queues (paper section 2.1.3).
///
/// Each processor owns two queues: the *new task queue* (freshly created
/// tasks) and the *suspended task queue* (tasks made runnable again after
/// blocking). New tasks go on the creating processor's new queue; woken
/// tasks go on the suspended queue of the processor they last ran on, to
/// reduce turbulence in the Multimax's snoopy caches. Selection within a
/// queue is last-in-first-out, as the paper states; steals can be
/// configured LIFO (the paper's "first cut") or FIFO (classic
/// work-stealing) for the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_SCHED_TASKQUEUES_H
#define MULT_SCHED_TASKQUEUES_H

#include "core/Task.h"
#include "support/VirtualLock.h"

#include <deque>
#include <utility>
#include <vector>

namespace mult {

/// Which end thieves take from.
enum class StealOrder : uint8_t { Lifo, Fifo };

/// The two queues of one processor. Locking is modelled in virtual time;
/// every operation returns the cycles to charge.
class TaskQueues {
public:
  /// \name Owner operations (LIFO)
  ///
  /// Both queues remember each entry's arrival clock. Arrivals cost no
  /// virtual time (a pair is pushed instead of a bare id) and feed two
  /// zero-cost consumers: fail-stop recovery's backlog-vs-wake split
  /// (drainSuspendedArrivals) and the steal-latency telemetry histogram
  /// (\p ArrivalOut on the pop/steal operations; null when the caller
  /// does not care).
  /// @{
  uint64_t pushNew(TaskId T, uint64_t Now);
  uint64_t pushSuspended(TaskId T, uint64_t Now);
  /// Pops the newest entry; InvalidTask when empty.
  TaskId popNew(uint64_t Now, uint64_t &Cycles,
                uint64_t *ArrivalOut = nullptr);
  TaskId popSuspended(uint64_t Now, uint64_t &Cycles,
                      uint64_t *ArrivalOut = nullptr);
  /// @}

  /// \name Thief operations
  /// @{
  TaskId stealNew(uint64_t Now, uint64_t &Cycles, StealOrder Order,
                  uint64_t *ArrivalOut = nullptr);
  TaskId stealSuspended(uint64_t Now, uint64_t &Cycles, StealOrder Order,
                        uint64_t *ArrivalOut = nullptr);
  /// @}

  /// Empties the suspended queue, oldest first, returning each task with
  /// the virtual clock at which it was enqueued. Costs no virtual time:
  /// used only by fail-stop recovery, which needs the arrival clocks to
  /// tell genuine lost backlog from wakes that landed here after the
  /// processor's doom mark (see Engine::recoverProcessor).
  std::vector<std::pair<TaskId, uint64_t>> drainSuspendedArrivals();

  size_t newCount() const { return NewQ.size(); }
  size_t suspendedCount() const { return SuspQ.size(); }
  /// Queue depth the inlining threshold compares against (paper
  /// section 3: "the number of tasks on that processor's queues").
  size_t depth() const { return NewQ.size() + SuspQ.size(); }

  /// \name Depth high-water marks
  ///
  /// Two independent sets of marks over the same queues: the *run-wide*
  /// marks feed the metrics report and reset only with the engine's
  /// statistics (resetHighWater, called from Engine::resetStats), while
  /// the *window* marks feed the adaptive threshold controller and reset
  /// every adaptation window (resetWindowHighWater). Both reset to the
  /// queues' current sizes, not zero — tasks already queued are still
  /// "high water" for the next interval. resetHighWater also resets the
  /// window marks so a stats reset starts both views from the same state.
  /// @{
  size_t newHighWater() const { return NewHighWater; }
  size_t suspendedHighWater() const { return SuspHighWater; }
  /// Max of depth() (new + suspended) within the current window.
  size_t windowHighWater() const { return WindowHighWater; }
  /// Tasks ever pushed on the new queue (monotonic; window deltas are
  /// taken by the adaptive controller).
  uint64_t newPushes() const { return NewPushes; }
  void resetHighWater() {
    NewHighWater = NewQ.size();
    SuspHighWater = SuspQ.size();
    WindowHighWater = depth();
  }
  void resetWindowHighWater() { WindowHighWater = depth(); }
  /// @}

private:
  void noteDepth() {
    size_t D = depth();
    if (D > WindowHighWater)
      WindowHighWater = D;
  }

  /// Both queues: (task, arrival clock); the clocks cost nothing on the
  /// scheduling paths (see the owner-operations comment).
  std::deque<std::pair<TaskId, uint64_t>> NewQ;
  std::deque<std::pair<TaskId, uint64_t>> SuspQ;
  VirtualLock NewLock;
  VirtualLock SuspLock;
  size_t NewHighWater = 0;
  size_t SuspHighWater = 0;
  size_t WindowHighWater = 0;
  uint64_t NewPushes = 0;
};

} // namespace mult

#endif // MULT_SCHED_TASKQUEUES_H
