//===----------------------------------------------------------------------===//
///
/// \file
/// Machine implementation: the virtual-time run loop.
///
//===----------------------------------------------------------------------===//

#include "sched/Machine.h"

#include "core/Engine.h"
#include "sched/Scheduler.h"
#include "support/StrUtil.h"
#include "vm/CostModel.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cassert>

using namespace mult;

Machine::Machine(unsigned NumProcessors, uint64_t QuantumCycles,
                 uint64_t MaxRunCycles, StealOrder Order,
                 const AdaptiveTConfig &Adaptive)
    : Quantum(QuantumCycles), MaxRunCycles(MaxRunCycles), Order(Order),
      Adaptive(Adaptive) {
  assert(NumProcessors >= 1 && "need at least one processor");
  Procs.resize(NumProcessors);
  for (unsigned I = 0; I < NumProcessors; ++I) {
    Procs[I].Id = I;
    Procs[I].Adapt.T = Adaptive.StartT;
    beginAdaptiveWindow(Procs[I]);
  }
}

void Machine::beginAdaptiveWindow(Processor &P) {
  AdaptiveTState &A = P.Adapt;
  A.WindowEnd = P.Clock + Adaptive.WindowCycles;
  A.AttemptsAtStart = P.StealAttempts;
  A.FailedAtStart = P.StealsFailed;
  A.StolenFromAtStart = P.StolenFrom;
  A.QueuedAtStart = P.Queues.newPushes();
  P.Queues.resetWindowHighWater();
}

void Machine::rebaselineAdaptiveWindows() {
  for (Processor &P : Procs)
    beginAdaptiveWindow(P);
}

void Machine::closeAdaptiveWindow(Engine &E, Processor &P) {
  AdaptiveTState &A = P.Adapt;
  uint64_t Ordinal = ++AdaptWindowOrdinal;
  ++A.WindowsClosed;
  ++E.stats().AdaptWindows;
  P.charge(cost::AdaptiveWindow);

  WindowSignals W;
  W.StealAttempts = P.StealAttempts - A.AttemptsAtStart;
  W.StealsFailed = P.StealsFailed - A.FailedAtStart;
  W.StolenFrom = P.StolenFrom - A.StolenFromAtStart;
  W.TasksQueued = P.Queues.newPushes() - A.QueuedAtStart;
  W.QueueHighWater = P.Queues.windowHighWater();
  W.Processors = numProcessors();

  if (E.faults().armed()) {
    if (E.faults().takeAdaptReset(Ordinal)) {
      // Discard the window's samples and any pending votes.
      E.noteFault(P, FaultKind::AdaptReset, Ordinal);
      A.PendingDir = 0;
      A.PendingCount = 0;
      beginAdaptiveWindow(P);
      return;
    }
    uint32_t Forced;
    if (E.faults().takeAdaptClamp(Ordinal, Forced)) {
      unsigned Old = A.T;
      A.T = std::clamp(Forced, Adaptive.MinT, Adaptive.MaxT);
      A.PendingDir = 0;
      A.PendingCount = 0;
      E.noteFault(P, FaultKind::AdaptClamp, A.T);
      if (A.T != Old)
        E.tracer().record(TraceEventKind::ThresholdChange, P.Id, P.Clock,
                          A.T, Old, Ordinal);
      beginAdaptiveWindow(P);
      return;
    }
  }

  unsigned Old = A.T;
  int Dir = adaptive::decideStep(Adaptive, A.T, W);
  if (adaptive::applyStep(Adaptive, A, Dir)) {
    if (Dir > 0)
      ++E.stats().ThresholdRaises;
    else
      ++E.stats().ThresholdLowers;
    E.tracer().record(TraceEventKind::ThresholdChange, P.Id, P.Clock, A.T,
                      Old, Ordinal);
  }
  beginAdaptiveWindow(P);
}

std::vector<uint64_t> Machine::clocks() const {
  std::vector<uint64_t> Out;
  Out.reserve(Procs.size());
  for (const Processor &P : Procs)
    Out.push_back(P.Clock);
  return Out;
}

void Machine::setClocks(const std::vector<uint64_t> &C) {
  assert(C.size() == Procs.size());
  for (size_t I = 0; I < Procs.size(); ++I)
    Procs[I].Clock = C[I];
}

unsigned Machine::minClockProcessor() const {
  unsigned Best = ~0u;
  for (unsigned I = 0; I < Procs.size(); ++I) {
    if (Procs[I].Dead)
      continue;
    if (Best == ~0u || Procs[I].Clock < Procs[Best].Clock)
      Best = I;
  }
  return Best; // the last live processor is never killed
}

bool Machine::quiescent(const Engine &E) const {
  for (const Processor &P : Procs)
    if (!P.Dead && (P.Current != InvalidTask || P.Queues.depth() > 0))
      return false;
  return const_cast<Engine &>(E).seams().empty();
}

unsigned Machine::liveProcessors() const {
  unsigned N = 0;
  for (const Processor &P : Procs)
    N += !P.Dead;
  return N;
}

Processor &Machine::homeFor(unsigned Preferred) {
  for (unsigned K = 0; K < Procs.size(); ++K) {
    Processor &P = Procs[(Preferred + K) % Procs.size()];
    if (!P.Dead)
      return P;
  }
  return Procs[Preferred]; // unreachable: at least one processor lives
}

RunResult Machine::run(Engine &E, Value RootFuture) {
  // Host wall-clock for the whole run loop (RAII covers every return).
  // Nested collections also accrue to the Gc phase; subtract Gc from Run
  // to isolate the mutator. Host time never feeds virtual time.
  HostPhaseTimer HostRun(E.telemetry(), Telemetry::Phase::Run);
  // Synchronize the processors at the start of the run (they idled while
  // the "user" typed the expression); the skew counts as idle time so
  // busy + idle + GC cycles always tile the clock.
  uint64_t Start = 0;
  for (Processor &P : Procs)
    Start = std::max(Start, P.Clock);
  // Published so fault marks can be made run-relative outside this loop
  // (the GC-phase kill poll fires from inside a collection); cleared on
  // every return path.
  RunStart = Start;
  InRun = true;
  struct InRunGuard {
    bool &Flag;
    ~InRunGuard() { Flag = false; }
  } RunGuard{InRun};
  for (Processor &P : Procs) {
    uint64_t Skew = Start - P.Clock;
    P.Clock = Start;
    P.IdleCycles += Skew;
    E.stats().IdleCycles += Skew;
  }

  RunResult R;
  unsigned FruitlessGcs = 0;
  // Detects an instruction that keeps re-triggering collections: a
  // monolithic allocation larger than the post-collection headroom can
  // never complete (its partial garbage is reclaimed each time, so the
  // used-words heuristic alone never fires).
  TaskId SameSpotTask = InvalidTask;
  uint32_t SameSpotPc = 0;
  unsigned SameSpotGcs = 0;

  auto SnapshotHeap = [&E]() {
    HeapFacts F;
    F.UsedWords = E.heap().usedWords();
    F.CapacityWords = E.heap().capacityWords();
    F.Collections = E.gcStats().Collections;
    F.CollectorWedged = E.heap().wedged();
    return F;
  };
  auto RootStopped = [&E]() {
    return E.lastStoppedGroup() == E.rootGroup() &&
           E.group(E.rootGroup()).State == GroupState::Stopped;
  };

  for (;;) {
    if (E.rootResolved()) {
      R.Status = RunStatus::Completed;
      R.Result = E.rootValue();
      R.ElapsedCycles = E.rootResolvedClock() - Start;
      E.stats().ElapsedCycles = R.ElapsedCycles;
      return R;
    }

    Processor &P = Procs[minClockProcessor()];
    if (P.Clock - Start > MaxRunCycles) {
      R.Status = RunStatus::CycleLimit;
      R.Error = "virtual cycle limit exceeded";
      R.ElapsedCycles = P.Clock - Start;
      E.stats().ElapsedCycles = R.ElapsedCycles;
      return R;
    }

    // Adaptive inlining threshold: this processor's adaptation window may
    // have elapsed (its clock moves only in this loop, so checking here
    // catches every crossing exactly once).
    if (Adaptive.Enabled && P.Clock >= P.Adapt.WindowEnd)
      closeAdaptiveWindow(E, P);

    if (E.faults().armed()) {
      // Fail-stop processor kill. Polled at quantum granularity on the
      // min-clock processor, so a kill never lands mid-instruction or
      // mid-GC; the schedule around it stays deterministic. Killing the
      // last live processor (or a dead/bogus target) is consumed with no
      // effect — an unrunnable machine helps nobody.
      unsigned Victim;
      uint64_t KillMark;
      if (E.faults().takeProcKill(P.Clock - Start, Victim, KillMark)) {
        if (Victim < Procs.size() && !Procs[Victim].Dead &&
            liveProcessors() > 1) {
          Processor &Dead = Procs[Victim];
          Dead.Dead = true;
          if (Dead.Current == InvalidTask && Dead.TraceIdling) {
            Dead.TraceIdling = false;
            E.tracer().record(TraceEventKind::IdleEnd, Dead.Id, Dead.Clock);
          }
          Processor &Obs = Procs[minClockProcessor()];
          E.noteFault(Obs, FaultKind::ProcKill, Victim);
          E.recoverProcessor(Obs, Dead, Start + KillMark);
          if (RootStopped()) {
            // An orphaned future stopped the root group: surface the
            // processor-lost condition to the breakloop.
            R.Status = RunStatus::GroupStopped;
            R.StoppedGroup = E.rootGroup();
            R.Error = E.group(E.rootGroup()).Condition;
            R.ElapsedCycles = Obs.Clock - Start;
            E.stats().ElapsedCycles = R.ElapsedCycles;
            return R;
          }
        }
        continue;
      }
      // Byzantine fault: arm the processor to corrupt the next future
      // value it resolves at a task-finishing return. Marks aimed at
      // dead or bogus processors are consumed with no effect (a lie from
      // a dead processor reaches nobody).
      unsigned Liar;
      uint64_t LieMark;
      if (E.faults().takeProcLie(P.Clock - Start, Liar, LieMark)) {
        if (Liar < Procs.size() && !Procs[Liar].Dead)
          Procs[Liar].Lying = true;
        continue;
      }
      // Processor stall window: the board drops off the bus for a while.
      // The skipped cycles are idle time, so the clock still tiles.
      uint64_t StallEndRel;
      if (E.faults().takeStall(P.Id, P.Clock - Start, StallEndRel)) {
        uint64_t Jump = Start + StallEndRel - P.Clock;
        E.noteFault(P, FaultKind::Stall, Jump);
        P.Clock += Jump;
        P.IdleCycles += Jump;
        E.stats().IdleCycles += Jump;
        continue;
      }
      // Forced spurious collection at a virtual-time mark.
      uint64_t GcMark;
      if (E.faults().takeForcedGc(P.Clock - Start, GcMark)) {
        E.noteFault(P, FaultKind::SpuriousGc, GcMark);
        if (!E.collectGarbage()) {
          R.Status = RunStatus::HeapExhausted;
          R.Error = "heap exhausted: " + (E.heap().wedged()
                                              ? E.heap().wedgedReason()
                                              : "cannot start a collection");
          R.ElapsedCycles = P.Clock - Start;
          E.stats().ElapsedCycles = R.ElapsedCycles;
          R.Heap = SnapshotHeap();
          return R;
        }
        if (RootStopped()) {
          // A proc-kill landed inside the forced collection and orphaned
          // a root-group future.
          R.Status = RunStatus::GroupStopped;
          R.StoppedGroup = E.rootGroup();
          R.Error = E.group(E.rootGroup()).Condition;
          R.ElapsedCycles = P.Clock - Start;
          E.stats().ElapsedCycles = R.ElapsedCycles;
          return R;
        }
        continue;
      }
    }

    if (P.Current != InvalidTask) {
      Task &T = E.task(P.Current);
      Group &G = E.group(T.Group);
      if (G.State != GroupState::Running && G.State != GroupState::Done) {
        // The group stopped while this task was current on another
        // processor's signal: suspend it (paper: "no other tasks in the
        // group will run").
        P.Current = InvalidTask;
        if (G.State == GroupState::Stopped &&
            T.State == TaskState::Running) {
          T.State = TaskState::Stopped;
          G.Parked.push_back(T.Id);
          E.tracer().record(TraceEventKind::TaskStopped, P.Id, P.Clock, T.Id);
        } else if (G.State == GroupState::Killed) {
          E.tracer().record(TraceEventKind::TaskDropped, P.Id, P.Clock, T.Id);
          E.finishTask(T);
        }
        P.charge(4);
        continue;
      }
      if (T.State != TaskState::Running) {
        // Stopped by its own raise, or finished: detach.
        P.Current = InvalidTask;
        continue;
      }

      // Cycle-budget watchdog: unlike MaxRunCycles (which abandons the
      // whole run), exceeding MaxCycles stops the runaway group so the
      // breakloop can inspect, kill, or resume it with a fresh budget.
      if (P.Clock - Start > E.config().MaxCycles) {
        E.stopGroupRestartable(
            P, T,
            strFormat("cycle-budget-exhausted: group %u exceeded %llu "
                      "virtual cycles",
                      T.Group,
                      static_cast<unsigned long long>(E.config().MaxCycles)));
        P.Current = InvalidTask;
        if (RootStopped()) {
          R.Status = RunStatus::GroupStopped;
          R.StoppedGroup = E.rootGroup();
          R.Error = E.group(E.rootGroup()).Condition;
          R.ElapsedCycles = P.Clock - Start;
          E.stats().ElapsedCycles = R.ElapsedCycles;
          return R;
        }
        continue;
      }

      // Re-executed cycles of a recovered task are tallied separately:
      // busy cycles a survivor spends redoing work the dead processor
      // already paid for. A checkpoint-restored task charges only up to
      // its finite budget (the capture-to-kill delta); a lineage
      // re-spawn (budget ~0) charges its whole re-run, as before.
      bool ChargeRecovery = T.Recovered;
      uint64_t BusyBefore = P.BusyCycles;
      StepOutcome Step = interpretTask(E, P, T, P.Clock + Quantum);
      uint64_t BusyDelta = P.BusyCycles - BusyBefore;
      T.BusyCyclesTotal += BusyDelta;
      T.SinceCheckpoint += BusyDelta;
      if (ChargeRecovery) {
        uint64_t Charge = std::min(BusyDelta, T.RecoveryBudget);
        E.stats().RecoveryCycles += Charge;
        T.RecoveryCharged += Charge;
        if (T.RecoveryBudget != ~uint64_t(0)) {
          T.RecoveryBudget -= Charge;
          E.stats().MaxTaskRecoveryCycles = std::max(
              E.stats().MaxTaskRecoveryCycles, T.RecoveryCharged);
          if (T.RecoveryBudget == 0)
            T.Recovered = false; // caught up with the lost delta
        }
      }
      switch (Step) {
      case StepOutcome::TimeSlice:
        FruitlessGcs = 0;
        SameSpotTask = InvalidTask;
        if (E.config().CheckpointEvery &&
            T.SinceCheckpoint >= E.config().CheckpointEvery)
          E.maybeCheckpoint(P, T);
        break;
      case StepOutcome::Blocked:
      case StepOutcome::TaskDone:
      case StepOutcome::GroupStopped:
        P.Current = InvalidTask;
        if (RootStopped()) {
          R.Status = RunStatus::GroupStopped;
          R.StoppedGroup = E.rootGroup();
          R.Error = E.group(E.rootGroup()).Condition;
          R.ElapsedCycles = P.Clock - Start;
          E.stats().ElapsedCycles = R.ElapsedCycles;
          return R;
        }
        break;
      case StepOutcome::NeedsGc: {
        // Heap exhaustion degrades gracefully: the task's group stops
        // with a heap-exhausted condition (breakloop-inspectable and
        // killable) instead of abandoning the run. The instruction never
        // executed, so the stop is restartable.
        auto StopHeapExhausted = [&](const char *Condition) -> bool {
          ++E.stats().HeapExhaustedStops;
          E.stopGroupRestartable(P, T, Condition);
          P.Current = InvalidTask;
          SameSpotTask = InvalidTask;
          FruitlessGcs = 0;
          if (RootStopped()) {
            R.Status = RunStatus::GroupStopped;
            R.StoppedGroup = E.rootGroup();
            R.Error = E.group(E.rootGroup()).Condition;
            R.ElapsedCycles = P.Clock - Start;
            E.stats().ElapsedCycles = R.ElapsedCycles;
            R.Heap = SnapshotHeap();
            return true;
          }
          return false;
        };
        // An injected allocation failure is not evidence of a full heap;
        // run the collection but keep the exhaustion heuristics quiet.
        bool Injected =
            E.faults().armed() && E.faults().consumeInjectedAllocFail();
        if (!Injected) {
          if (T.Id == SameSpotTask && T.Pc == SameSpotPc) {
            if (++SameSpotGcs >= 8) {
              if (StopHeapExhausted(
                      "heap-exhausted: a single operation allocates more "
                      "than the collected heap can hold"))
                return R;
              break;
            }
          } else {
            SameSpotTask = T.Id;
            SameSpotPc = T.Pc;
            SameSpotGcs = 1;
          }
        }
        size_t UsedBefore = E.heap().usedWords();
        if (!E.collectGarbage()) {
          // Nothing recoverable remains (to-space overflow wedges the
          // heap mid-copy): report a structured fatal result.
          R.Status = RunStatus::HeapExhausted;
          R.Error = "heap exhausted: " +
                    (E.heap().wedged() ? E.heap().wedgedReason()
                                       : "semispace too small for live data");
          R.ElapsedCycles = P.Clock - Start;
          E.stats().ElapsedCycles = R.ElapsedCycles;
          R.Heap = SnapshotHeap();
          return R;
        }
        if (RootStopped()) {
          // A proc-kill landed inside the collection and orphaned a
          // root-group future.
          R.Status = RunStatus::GroupStopped;
          R.StoppedGroup = E.rootGroup();
          R.Error = E.group(E.rootGroup()).Condition;
          R.ElapsedCycles = P.Clock - Start;
          E.stats().ElapsedCycles = R.ElapsedCycles;
          return R;
        }
        // A collection that frees (almost) nothing cannot unblock the
        // failing allocation; stop the group instead of thrashing.
        if (!Injected && E.heap().usedWords() + 64 >= UsedBefore) {
          if (++FruitlessGcs >= 2) {
            if (StopHeapExhausted(
                    "heap-exhausted: collection reclaimed no space"))
              return R;
            break;
          }
        } else if (!Injected) {
          FruitlessGcs = 0;
        }
        break;
      }
      }
      continue;
    }

    // Idle processor: find work.
    TaskId Next = dispatchNextTask(E, *this, P);
    if (Next != InvalidTask) {
      if (P.TraceIdling) {
        P.TraceIdling = false;
        E.tracer().record(TraceEventKind::IdleEnd, P.Id, P.Clock);
      }
      P.Current = Next;
      continue;
    }
    if (!P.TraceIdling) {
      P.TraceIdling = true;
      E.tracer().record(TraceEventKind::IdleBegin, P.Id, P.Clock);
    }
    P.Clock += cost::IdleTick;
    P.IdleCycles += cost::IdleTick;
    E.stats().IdleCycles += cost::IdleTick;

    if (quiescent(E)) {
      // Nothing runnable anywhere. If the root is unresolved, the
      // computation deadlocked (e.g. the paper's semaphore example under
      // inlining). Reconstruct the task -> future wait-for graph so the
      // report names the cycle, not just the symptom.
      ++E.stats().DeadlocksDetected;
      R.Status = RunStatus::Deadlock;
      R.Error = "deadlock: all processors idle, root future unresolved";
      if (std::string Graph = E.describeWaitGraph(); !Graph.empty())
        R.Error += "\n" + Graph;
      R.ElapsedCycles = P.Clock - Start;
      E.stats().ElapsedCycles = R.ElapsedCycles;
      return R;
    }
  }
  (void)RootFuture;
}
