//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual-time event tracing (the observability substrate).
///
/// Every interesting runtime transition — task lifecycle, future protocol
/// steps, touches, steals, inlining decisions, GC phases, idle intervals —
/// is recorded as a small fixed-size event stamped with the *emitting
/// processor's virtual clock*. The stream feeds three consumers:
///
///   - obs/TraceExport.*: a Chrome trace-event JSON exporter (loadable in
///     chrome://tracing and Perfetto), one row per virtual processor;
///   - obs/Metrics.*: the aggregated per-run metrics report;
///   - obs/CriticalPath.*: the work/span (critical-path) profiler, which
///     reconstructs the future-spawn DAG from the stream.
///
/// Since the DAG reconstruction needs real edges, events carry a third
/// payload word C: parent task on create, waker task on resume, a resolve
/// serial linking each future-resolve to the touch-hits it enables, and
/// the seam serial tying a lazy-future split to the inline decision that
/// pushed the seam.
///
/// Recording costs no *virtual* time at all (the simulation's cycle
/// accounting never sees it), and when disabled it costs essentially no
/// host time either: every emit site guards on Tracer::enabled(), a single
/// inlined bool test. This is what lets benches keep tracing compiled in
/// while staying bit-identical to untraced runs.
///
/// Three sink modes keep heavy workloads tractable (ROADMAP
/// "trace-buffer scalability"):
///
///   - unbounded (default): a flat in-memory vector, ~32 MB per 10^6
///     events;
///   - ring:N: a bounded circular buffer holding the *last* N events;
///     overwritten events are counted in dropped() so a truncated trace is
///     never silently read as complete (Recorded + Dropped == Emitted);
///   - stream[:PATH]: events are appended to a binary file as they are
///     emitted and nothing is buffered; readTraceFile loads the file back
///     for offline analysis.
///
/// Later subsystems (the race detector of Utterback et al., adaptive
/// scheduling) consume this same stream; keep events small and
/// append-only.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_TRACE_H
#define MULT_OBS_TRACE_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mult {

/// What happened. Payload fields A/B/C are kind-specific; see each entry.
/// C is 0 where not listed.
enum class TraceEventKind : uint8_t {
  TaskCreate,     ///< A = task id, B = group id, C = parent task id
                  ///< (InvalidTask when the task has no creating task,
                  ///< e.g. a top-level root).
  TaskStart,      ///< Dispatched onto the processor. A = task id,
                  ///< B = 0 own queue, 1 stolen, 2 lazy-seam split.
  TaskBlock,      ///< A = task id, B = 0 future, 1 semaphore.
  TaskResume,     ///< Woken, re-enqueued. A = task id, B = home processor,
                  ///< C = waker task id (the resolver/signaller).
  TaskFinish,     ///< Completed normally. A = task id.
  TaskStopped,    ///< Suspended by a group stop. A = task id.
  TaskParked,     ///< Popped while its group was stopped. A = task id.
  TaskDropped,    ///< Popped from a killed group and discarded. A = task id.
  FutureCreate,   ///< A = child task id, B = future-site id.
  FutureResolve,  ///< A = number of waiters woken, C = resolve serial
                  ///< (stamped into the future; TouchHit echoes it).
  TouchHit,       ///< Touch found a resolved future. A = task id,
                  ///< C = the future's resolve serial (0 when the future
                  ///< was resolved while tracing was off).
  TouchBlock,     ///< Touch found an unresolved future. A = task id.
  StealAttempt,   ///< One queue probe. A = victim processor,
                  ///< B = 1 success, 0 failure (empty or vetting rejected).
  InlineDecision, ///< `future` policy choice. A = 0 inlined, 1 real task,
                  ///< 2 lazy seam. B = future-site id. For lazy seams,
                  ///< C = the seam serial (SeamSteal echoes it).
  SeamSteal,      ///< Lazy seam split. A = new parent-continuation task id,
                  ///< B = victim task index, C = seam serial.
  GcBegin,        ///< Collection pause begins on this processor.
  GcEnd,          ///< Collection pause ends (common resume clock).
  IdleBegin,      ///< Processor found no work.
  IdleEnd,        ///< Processor found work again.
  FaultInjected,  ///< A fault-plan clause fired. A = FaultKind, B = detail
                  ///< (site-specific: task queue depth, stall length, ...),
                  ///< C = running count of injected faults.
  ThresholdChange,///< Adaptive controller moved this processor's inlining
                  ///< threshold. A = new T, B = old T, C = machine-wide
                  ///< window ordinal of the closing window.
  PolicyDecision, ///< A loaded site policy decided a `future`. A =
                  ///< SitePolicy (0 eager, 1 inline, 2 lazy), B =
                  ///< future-site id.
  ProcKilled,     ///< A proc-kill clause fail-stopped a processor. A =
                  ///< dead processor id, B = tasks lost (drained + the
                  ///< task it was running), C = running kill count.
  TaskRecovered,  ///< A lost task was re-spawned from its lineage onto a
                  ///< survivor. A = task id, B = new home processor,
                  ///< C = dead processor it was lost from.
  TaskOrphaned,   ///< A lost task had observed side effects and could not
                  ///< be recovered. A = task id, B = reason (1 no
                  ///< lineage, 2 semaphore held, 3 seam observed,
                  ///< 4 I/O performed, 5 recovery disabled),
                  ///< C = dead processor it was lost from.
  CellRead,       ///< Race detector: a mutable cell was read. A = cell
                  ///< serial, B = slot index, C = reading task id.
  CellWrite,      ///< Race detector: a mutable cell was written. A = cell
                  ///< serial, B = slot index, C = writing task id.
  SemAcquire,     ///< semaphore-p succeeded (or a waiter was handed the
                  ///< count). A = semaphore cell serial, C = acquiring
                  ///< task id.
  SemRelease,     ///< semaphore-v released the count (or handed it off).
                  ///< A = semaphore cell serial, C = releasing task id.
  CheckpointTaken,///< A checkpoint record was captured at a quantum
                  ///< boundary. A = task id, B = capture cost in cycles,
                  ///< C = the task's side-effect epoch at capture.
  TaskRestored,   ///< A lost task was resumed from its newest checkpoint
                  ///< instead of re-spawned. A = task id, B = new home
                  ///< processor, C = dead processor it was lost from.
  ByzantineDetected, ///< A cross-check re-execution caught a corrupted
                  ///< future value. A = task id, B = lying processor,
                  ///< C = the honest (recomputed) value as a raw fixnum.
};

/// Human-readable name of \p K ("task-create", "steal-attempt", ...).
const char *traceEventKindName(TraceEventKind K);

class TraceObserver;

/// One recorded event. 32 bytes; buffers are flat vectors and the stream
/// sink writes this struct raw (same-machine format; readTraceFile
/// validates the record size).
struct TraceEvent {
  uint64_t Clock; ///< Emitting processor's virtual clock.
  uint64_t A;     ///< Kind-specific payload.
  uint64_t C;     ///< Kind-specific payload (DAG edge info).
  uint32_t B;     ///< Kind-specific payload.
  uint8_t Proc;   ///< Emitting processor id.
  TraceEventKind Kind;
};

/// Where record() puts events.
enum class TraceSinkMode : uint8_t {
  Unbounded, ///< In-memory vector, grows without limit.
  Ring,      ///< In-memory circular buffer of ringCapacity() events.
  Stream,    ///< Appended to a binary file; nothing buffered.
};

/// The recorder. Owned by the Engine; cleared by Engine::resetStats so a
/// buffer always describes exactly one measured run. The sink mode, the
/// future-site table and the resolve-serial counter survive clear() (sites
/// are properties of the loaded program; serials must never repeat within
/// an engine, or a stale stamp on a long-lived future could alias a fresh
/// one).
class Tracer {
public:
  ~Tracer();

  bool enabled() const { return Enabled; }
  void setEnabled(bool On) { Enabled = On; }

  /// Appends one event. Callers on hot paths should guard with enabled();
  /// record() re-checks so unguarded calls stay correct.
  void record(TraceEventKind Kind, unsigned Proc, uint64_t Clock,
              uint64_t A = 0, uint64_t B = 0, uint64_t C = 0) {
    if (!Enabled)
      return;
    ++Emitted;
    TraceEvent E{Clock, A, C, static_cast<uint32_t>(B),
                 static_cast<uint8_t>(Proc), Kind};
    if (Observer)
      notifyObserver(E);
    if (Mode == TraceSinkMode::Unbounded) {
      Events.push_back(E);
      return;
    }
    recordSlow(E);
  }

  /// Attaches \p Obs as the online stream consumer (nullptr detaches). The
  /// observer is fed every emitted event before sink buffering, so it is
  /// immune to ring-sink drops. Survives clear(): the observer's lifetime
  /// is tied to the engine, not to one measured run.
  void setObserver(TraceObserver *Obs) { Observer = Obs; }
  TraceObserver *observer() const { return Observer; }

  /// The buffered events in chronological emission order (a ring is
  /// linearized on access). Empty in stream mode.
  const std::vector<TraceEvent> &events() const;
  /// Number of events currently buffered (0 in stream mode).
  size_t size() const {
    return Mode == TraceSinkMode::Stream ? 0 : Events.size();
  }
  /// Drops buffered events and resets the emission counters; in stream
  /// mode the sink file is rewound so it describes the next run only.
  void clear();

  /// \name Drop accounting: recorded() + dropped() == emitted(), always.
  /// @{
  uint64_t emitted() const { return Emitted; }
  uint64_t dropped() const { return Dropped; }
  uint64_t recorded() const { return Emitted - Dropped; }
  /// @}

  /// \name Sink configuration
  /// @{
  TraceSinkMode mode() const { return Mode; }
  size_t ringCapacity() const { return RingCap; }
  const std::string &streamPath() const { return StreamPath; }
  void setUnbounded();
  /// Keep only the most recent \p N events (N >= 1).
  void setRingCapacity(size_t N);
  /// Streams events to \p Path; false (with the mode unchanged) when the
  /// file cannot be opened.
  bool openStream(const std::string &Path);
  /// Flushes the stream sink and patches its header counts so the file is
  /// complete; no-op in the in-memory modes.
  void flushStream();
  /// Parses a sink spec — "unbounded" (or ""), "ring:N", "stream[:PATH]" —
  /// and applies it. False (and \p Err set) on a malformed spec.
  bool configureSink(const std::string &Spec, std::string &Err);
  /// @}

  /// \name DAG bookkeeping for the critical-path profiler
  /// @{
  /// Fresh serial stamped into a future at resolve time; never repeats
  /// within an engine.
  uint64_t newResolveSerial() { return ++ResolveSerialCounter; }
  /// Interns the future site (\p CodeKey, \p Pc) — one id per textual
  /// `future` expression — naming it "<Name>+<Pc>". Call only while
  /// enabled; ids are assigned in first-use order, so identical runs get
  /// identical tables.
  uint32_t futureSiteId(const void *CodeKey, uint32_t Pc,
                        std::string_view Name);
  const std::vector<std::string> &siteNames() const { return SiteNames; }
  /// @}

private:
  void recordSlow(const TraceEvent &E);
  void notifyObserver(const TraceEvent &E);
  void closeStreamFile();
  void writeStreamHeader();

  TraceObserver *Observer = nullptr;

  bool Enabled = false;
  TraceSinkMode Mode = TraceSinkMode::Unbounded;
  size_t RingCap = 0;
  mutable std::vector<TraceEvent> Events;
  mutable size_t RingHead = 0; ///< Index of the oldest event (ring mode).
  uint64_t Emitted = 0;
  uint64_t Dropped = 0;

  std::FILE *StreamFile = nullptr;
  std::string StreamPath;

  uint64_t ResolveSerialCounter = 0;
  std::map<std::pair<const void *, uint32_t>, uint32_t> SiteIds;
  std::vector<std::string> SiteNames;
};

/// Online consumer of the event stream. An observer sees *every* emitted
/// event, before sink buffering/dropping, so it stays complete even when a
/// ring sink is overwriting history (the race detector relies on this: a
/// bounded ring keeps memory flat while the online checker still sees the
/// full stream).
class TraceObserver {
public:
  virtual ~TraceObserver() = default;
  virtual void onTraceEvent(const TraceEvent &E) = 0;
};

/// A trace loaded back from a stream-sink file.
struct TraceFile {
  std::vector<TraceEvent> Events;
  uint64_t Emitted = 0;
  uint64_t Dropped = 0;
};

/// Loads a binary trace written by the stream sink. False (and \p Err
/// set) on open failure, a foreign/short header, or a truncated body.
bool readTraceFile(const std::string &Path, TraceFile &Out, std::string &Err);

} // namespace mult

#endif // MULT_OBS_TRACE_H
