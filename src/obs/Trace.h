//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual-time event tracing (the observability substrate).
///
/// Every interesting runtime transition — task lifecycle, future protocol
/// steps, touches, steals, inlining decisions, GC phases, idle intervals —
/// is recorded as a small fixed-size event stamped with the *emitting
/// processor's virtual clock*. The stream feeds two consumers:
///
///   - obs/TraceExport.*: a Chrome trace-event JSON exporter (loadable in
///     chrome://tracing and Perfetto), one row per virtual processor;
///   - obs/Metrics.*: the aggregated per-run metrics report.
///
/// Recording costs no *virtual* time at all (the simulation's cycle
/// accounting never sees it), and when disabled it costs essentially no
/// host time either: every emit site guards on Tracer::enabled(), a single
/// inlined bool test. This is what lets benches keep tracing compiled in
/// while staying bit-identical to untraced runs.
///
/// Later subsystems (the race detector of Utterback et al., adaptive
/// scheduling, regression dashboards) consume this same stream; keep
/// events small and append-only.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_TRACE_H
#define MULT_OBS_TRACE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mult {

/// What happened. Payload fields A/B are kind-specific; see each entry.
enum class TraceEventKind : uint8_t {
  TaskCreate,     ///< A = task id, B = group id.
  TaskStart,      ///< Dispatched onto the processor. A = task id,
                  ///< B = 0 own queue, 1 stolen, 2 lazy-seam split.
  TaskBlock,      ///< A = task id, B = 0 future, 1 semaphore.
  TaskResume,     ///< Woken, re-enqueued. A = task id, B = home processor.
  TaskFinish,     ///< Completed normally. A = task id.
  TaskStopped,    ///< Suspended by a group stop. A = task id.
  TaskParked,     ///< Popped while its group was stopped. A = task id.
  TaskDropped,    ///< Popped from a killed group and discarded. A = task id.
  FutureCreate,   ///< A = child task id.
  FutureResolve,  ///< A = number of waiters woken.
  TouchHit,       ///< Touch found a resolved future. A = task id.
  TouchBlock,     ///< Touch found an unresolved future. A = task id.
  StealAttempt,   ///< One queue probe. A = victim processor,
                  ///< B = 1 success, 0 failure (empty or vetting rejected).
  InlineDecision, ///< `future` policy choice. A = 0 inlined, 1 real task,
                  ///< 2 lazy seam.
  SeamSteal,      ///< Lazy seam split. A = new parent-continuation task id.
  GcBegin,        ///< Collection pause begins on this processor.
  GcEnd,          ///< Collection pause ends (common resume clock).
  IdleBegin,      ///< Processor found no work.
  IdleEnd,        ///< Processor found work again.
};

/// Human-readable name of \p K ("task-create", "steal-attempt", ...).
const char *traceEventKindName(TraceEventKind K);

/// One recorded event. 24 bytes; the buffer is a flat vector.
struct TraceEvent {
  uint64_t Clock; ///< Emitting processor's virtual clock.
  uint64_t A;     ///< Kind-specific payload.
  uint32_t B;     ///< Kind-specific payload.
  uint8_t Proc;   ///< Emitting processor id.
  TraceEventKind Kind;
};

/// The recorder. Owned by the Engine; cleared by Engine::resetStats so a
/// buffer always describes exactly one measured run.
class Tracer {
public:
  bool enabled() const { return Enabled; }
  void setEnabled(bool On) { Enabled = On; }

  /// Appends one event. Callers on hot paths should guard with enabled();
  /// record() re-checks so unguarded calls stay correct.
  void record(TraceEventKind Kind, unsigned Proc, uint64_t Clock,
              uint64_t A = 0, uint64_t B = 0) {
    if (!Enabled)
      return;
    Events.push_back(TraceEvent{Clock, A, static_cast<uint32_t>(B),
                                static_cast<uint8_t>(Proc), Kind});
  }

  const std::vector<TraceEvent> &events() const { return Events; }
  size_t size() const { return Events.size(); }
  void clear() { Events.clear(); }

private:
  bool Enabled = false;
  std::vector<TraceEvent> Events;
};

} // namespace mult

#endif // MULT_OBS_TRACE_H
