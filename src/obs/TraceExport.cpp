//===----------------------------------------------------------------------===//
///
/// \file
/// Chrome trace-event JSON exporter implementation.
///
/// Duration slices are reconstructed per processor from the event stream:
/// a task-start opens a run slice which the next block/finish/stop on the
/// same processor closes; idle-begin/idle-end and gc-begin/gc-end pair up
/// directly. A GC pause interrupting a run or idle slice splits it — the
/// interrupted slice closes at gc-begin and reopens at gc-end — so slices
/// on one row never overlap except for proper nesting.
///
//===----------------------------------------------------------------------===//

#include "obs/TraceExport.h"

#include "core/Stats.h"
#include "core/Task.h"
#include "support/StrUtil.h"

#include <optional>

using namespace mult;

namespace {

double toMicros(uint64_t Cycles) {
  return static_cast<double>(Cycles) * EngineStats::MicrosecondsPerCycle;
}

/// Serializes one JSON event object, managing the separating commas.
class EventWriter {
public:
  explicit EventWriter(OutStream &OS) : OS(OS) {}

  void meta(const char *Name, unsigned Tid, const std::string &Value) {
    begin();
    OS << "{\"name\":\"" << Name << "\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << Tid << ",\"args\":{\"name\":\"" << Value << "\"}}";
  }

  void slice(const std::string &Name, unsigned Tid, uint64_t StartCycles,
             uint64_t EndCycles) {
    begin();
    OS << "{\"name\":\"" << Name << "\",\"ph\":\"X\",\"pid\":0,\"tid\":"
       << Tid << strFormat(",\"ts\":%.3f,\"dur\":%.3f",
                           toMicros(StartCycles),
                           toMicros(EndCycles - StartCycles))
       << "}";
  }

  void instant(const char *Name, unsigned Tid, uint64_t Cycles, uint64_t A,
               uint64_t B) {
    begin();
    OS << "{\"name\":\"" << Name << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
       << "\"tid\":" << Tid << strFormat(",\"ts\":%.3f", toMicros(Cycles))
       << ",\"args\":{\"a\":" << A << ",\"b\":" << B << "}}";
  }

  void counter(unsigned Tid, uint64_t Cycles, uint64_t Busy, uint64_t Idle,
               uint64_t Gc) {
    begin();
    OS << "{\"name\":\"cycles\",\"ph\":\"C\",\"pid\":0,\"tid\":" << Tid
       << strFormat(",\"ts\":%.3f", toMicros(Cycles)) << ",\"args\":{\"busy\":"
       << Busy << ",\"idle\":" << Idle << ",\"gc\":" << Gc << "}}";
  }

private:
  void begin() {
    if (!First)
      OS << ",\n ";
    First = false;
  }

  OutStream &OS;
  bool First = true;
};

/// Rebuilds the duration slices of one processor's row.
class RowBuilder {
public:
  RowBuilder(EventWriter &W, unsigned Proc) : W(W), Proc(Proc) {}

  void feed(const TraceEvent &E) {
    switch (E.Kind) {
    case TraceEventKind::TaskStart:
      closeTask(E.Clock);
      OpenTask = Span{E.A, E.Clock};
      break;
    case TraceEventKind::TaskBlock:
    case TraceEventKind::TaskFinish:
    case TraceEventKind::TaskStopped:
      closeTask(E.Clock);
      break;
    case TraceEventKind::IdleBegin:
      OpenIdle = E.Clock;
      break;
    case TraceEventKind::IdleEnd:
      closeIdle(E.Clock);
      break;
    case TraceEventKind::GcBegin:
      // A pause interrupts whatever the processor was doing; split the
      // interrupted slice around the pause.
      if (OpenTask) {
        Interrupted = OpenTask;
        closeTask(E.Clock);
      } else if (OpenIdle) {
        IdleInterrupted = true;
        closeIdle(E.Clock);
      }
      GcStart = E.Clock;
      break;
    case TraceEventKind::GcEnd:
      if (GcStart) {
        W.slice("gc", Proc, *GcStart, E.Clock);
        GcStart.reset();
      }
      if (Interrupted) {
        OpenTask = Span{Interrupted->Task, E.Clock};
        Interrupted.reset();
      } else if (IdleInterrupted) {
        OpenIdle = E.Clock;
        IdleInterrupted = false;
      }
      break;
    default:
      break;
    }
  }

  void finish(uint64_t EndClock) {
    closeTask(EndClock);
    closeIdle(EndClock);
    if (GcStart) {
      W.slice("gc", Proc, *GcStart, EndClock);
      GcStart.reset();
    }
  }

private:
  struct Span {
    uint64_t Task;
    uint64_t Start;
  };

  void closeTask(uint64_t End) {
    if (!OpenTask)
      return;
    W.slice(strFormat("task %u", taskIndex(OpenTask->Task)), Proc,
            OpenTask->Start, End);
    OpenTask.reset();
  }

  void closeIdle(uint64_t End) {
    if (!OpenIdle)
      return;
    W.slice("idle", Proc, *OpenIdle, End);
    OpenIdle.reset();
  }

  EventWriter &W;
  unsigned Proc;
  std::optional<Span> OpenTask;
  std::optional<Span> Interrupted;
  std::optional<uint64_t> OpenIdle;
  std::optional<uint64_t> GcStart;
  bool IdleInterrupted = false;
};

/// True for kinds the exporter renders as instants (everything that is not
/// a slice boundary consumed by RowBuilder).
bool isInstantKind(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::TaskStart:
  case TraceEventKind::IdleBegin:
  case TraceEventKind::IdleEnd:
  case TraceEventKind::GcBegin:
  case TraceEventKind::GcEnd:
    return false;
  default:
    return true;
  }
}

} // namespace

void mult::writeChromeTrace(OutStream &OS, const Tracer &Tr,
                            const Machine &M) {
  unsigned N = M.numProcessors();
  OS << "{\"traceEvents\":[\n ";
  EventWriter W(OS);
  W.meta("process_name", 0, "mul-t virtual machine");
  for (unsigned P = 0; P < N; ++P)
    W.meta("thread_name", P, strFormat("vcpu %u", P));

  std::vector<RowBuilder> Rows;
  Rows.reserve(N);
  for (unsigned P = 0; P < N; ++P)
    Rows.emplace_back(W, P);

  for (const TraceEvent &E : Tr.events()) {
    if (E.Proc < N)
      Rows[E.Proc].feed(E);
    if (isInstantKind(E.Kind))
      W.instant(traceEventKindName(E.Kind), E.Proc, E.Clock, E.A, E.B);
  }
  for (unsigned P = 0; P < N; ++P) {
    const Processor &Proc = M.processor(P);
    Rows[P].finish(Proc.Clock);
    W.counter(P, Proc.Clock, Proc.BusyCycles, Proc.IdleCycles, Proc.GcCycles);
  }
  OS << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string mult::chromeTraceJson(const Tracer &Tr, const Machine &M) {
  std::string Out;
  StringOutStream OS(Out);
  writeChromeTrace(OS, Tr, M);
  return Out;
}
