//===----------------------------------------------------------------------===//
///
/// \file
/// Telemetry registry and exporters.
///
//===----------------------------------------------------------------------===//

#include "obs/Telemetry.h"

#include "support/StrUtil.h"

#include <cstdio>

using namespace mult;

const char *Telemetry::phaseName(Phase P) {
  switch (P) {
  case Phase::Read:
    return "read";
  case Phase::Compile:
    return "compile";
  case Phase::Run:
    return "run";
  case Phase::Gc:
    return "gc";
  }
  return "?";
}

Telemetry::Id Telemetry::intern(std::string_view Name, std::string_view Help,
                                Kind K, std::string_view LabelKey,
                                std::string_view LabelValue) {
  auto Key = std::make_pair(std::string(Name), std::string(LabelValue));
  auto It = ByName.find(Key);
  if (It != ByName.end())
    return It->second;
  Id NewId = static_cast<Id>(Metrics.size());
  Metric M;
  M.Name = Key.first;
  M.Help = std::string(Help);
  M.LabelKey = std::string(LabelKey);
  M.LabelValue = Key.second;
  M.K = K;
  if (K == Kind::Counter)
    M.Shards.assign(NumShards, 0);
  else if (K == Kind::Histogram)
    M.Hists.assign(NumShards, LatencyHistogram());
  Metrics.push_back(std::move(M));
  ByName.emplace(std::move(Key), NewId);
  return NewId;
}

Telemetry::Id Telemetry::counter(std::string_view Name,
                                 std::string_view Help) {
  return intern(Name, Help, Kind::Counter, {}, {});
}

Telemetry::Id Telemetry::gauge(std::string_view Name, std::string_view Help) {
  return intern(Name, Help, Kind::Gauge, {}, {});
}

Telemetry::Id Telemetry::histogram(std::string_view Name,
                                   std::string_view Help,
                                   std::string_view LabelKey,
                                   std::string_view LabelValue) {
  return intern(Name, Help, Kind::Histogram, LabelKey, LabelValue);
}

Telemetry::Id Telemetry::find(std::string_view Name,
                              std::string_view LabelValue) const {
  auto It =
      ByName.find(std::make_pair(std::string(Name), std::string(LabelValue)));
  return It == ByName.end() ? InvalidId : It->second;
}

uint64_t Telemetry::counterValue(Id M) const {
  uint64_t Total = 0;
  for (uint64_t S : Metrics[M].Shards)
    Total += S;
  return Total;
}

LatencyHistogram Telemetry::merged(Id M) const {
  LatencyHistogram Out;
  for (const LatencyHistogram &H : Metrics[M].Hists)
    Out.merge(H);
  return Out;
}

void Telemetry::clear() {
  for (Metric &M : Metrics) {
    for (uint64_t &S : M.Shards)
      S = 0;
    for (LatencyHistogram &H : M.Hists)
      H.clear();
    M.GaugeValue = 0.0;
  }
  HostNs.fill(0);
}

//===----------------------------------------------------------------------===//
// Rendering and export
//===----------------------------------------------------------------------===//

namespace {

/// "gc_pause_cycles" -> "gc-pause": the short name used by `:histo`, the
/// `:stats` latency lines and the bench `;; histo:` tags.
std::string displayName(std::string_view Name) {
  std::string_view Base = Name;
  constexpr std::string_view Suffix = "_cycles";
  if (Base.size() > Suffix.size() &&
      Base.substr(Base.size() - Suffix.size()) == Suffix)
    Base.remove_suffix(Suffix.size());
  std::string Out(Base);
  for (char &C : Out)
    if (C == '_')
      C = '-';
  return Out;
}

/// Matches a user-typed `:histo` argument against a metric: accepts the
/// registered name, the short display name, or either with '-' and '_'
/// interchanged.
bool nameMatches(const Telemetry::Metric &M, std::string_view Query) {
  std::string Q(Query);
  for (char &C : Q)
    if (C == '-')
      C = '_';
  std::string N = M.Name;
  if (Q == N)
    return true;
  std::string D = displayName(M.Name);
  for (char &C : D)
    if (C == '-')
      C = '_';
  return Q == D;
}

void summaryLine(OutStream &OS, const Telemetry::Metric &M,
                 const LatencyHistogram &H) {
  std::string Label = displayName(M.Name);
  if (!M.LabelValue.empty())
    Label += "[" + M.LabelValue + "]";
  OS << strFormat("  %-28s n=%-8llu mean=%-10.1f p50=%-8llu p90=%-8llu "
                  "p99=%-8llu max=%llu\n",
                  Label.c_str(), static_cast<unsigned long long>(H.count()),
                  H.mean(), static_cast<unsigned long long>(H.percentile(50)),
                  static_cast<unsigned long long>(H.percentile(90)),
                  static_cast<unsigned long long>(H.percentile(99)),
                  static_cast<unsigned long long>(H.max()));
}

std::string escapeLabel(const std::string &V) {
  std::string Out;
  for (char C : V) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string escapeHelp(const std::string &V) {
  std::string Out;
  for (char C : V) {
    if (C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string jsonEscape(const std::string &V) {
  std::string Out;
  for (char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

} // namespace

void mult::dumpHistogramIndex(OutStream &OS, const Telemetry &T) {
  bool Any = false;
  for (Telemetry::Id I = 0; I < T.size(); ++I) {
    const Telemetry::Metric &M = T.metric(I);
    if (M.K != Telemetry::Kind::Histogram)
      continue;
    LatencyHistogram H = T.merged(I);
    if (H.count() == 0)
      continue;
    Any = true;
    summaryLine(OS, M, H);
  }
  if (!Any)
    OS << "  (no samples recorded yet)\n";
}

void mult::dumpHistogram(OutStream &OS, const Telemetry &T,
                         std::string_view Name) {
  bool Found = false;
  for (Telemetry::Id I = 0; I < T.size(); ++I) {
    const Telemetry::Metric &M = T.metric(I);
    if (M.K != Telemetry::Kind::Histogram || !nameMatches(M, Name))
      continue;
    Found = true;
    LatencyHistogram H = T.merged(I);
    std::string Label = displayName(M.Name);
    if (!M.LabelValue.empty())
      Label += "[" + M.LabelValue + "]";
    OS << Label << " (virtual cycles, log2 buckets):\n";
    if (H.count() == 0) {
      OS << "  (empty)\n";
      continue;
    }
    OS << strFormat("  n=%llu sum=%llu min=%llu mean=%.1f p50=%llu p90=%llu "
                    "p99=%llu max=%llu\n",
                    static_cast<unsigned long long>(H.count()),
                    static_cast<unsigned long long>(H.sum()),
                    static_cast<unsigned long long>(H.min()), H.mean(),
                    static_cast<unsigned long long>(H.percentile(50)),
                    static_cast<unsigned long long>(H.percentile(90)),
                    static_cast<unsigned long long>(H.percentile(99)),
                    static_cast<unsigned long long>(H.max()));
    for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B) {
      if (H.buckets()[B] == 0)
        continue;
      if (B + 1 >= LatencyHistogram::NumBuckets)
        OS << strFormat("  [%12llu,      +inf): %llu\n",
                        static_cast<unsigned long long>(
                            LatencyHistogram::bucketLow(B)),
                        static_cast<unsigned long long>(H.buckets()[B]));
      else
        OS << strFormat("  [%12llu, %9llu): %llu\n",
                        static_cast<unsigned long long>(
                            LatencyHistogram::bucketLow(B)),
                        static_cast<unsigned long long>(
                            LatencyHistogram::bucketHigh(B) + 1),
                        static_cast<unsigned long long>(H.buckets()[B]));
    }
  }
  if (!Found)
    OS << "no histogram named '" << Name << "' (bare :histo lists them)\n";
}

void mult::exportPrometheus(OutStream &OS, const Telemetry &T) {
  // One HELP/TYPE pair per metric family, emitted at the family's first
  // registered series; labeled children follow under the same family.
  std::map<std::string, bool> HeaderDone;
  for (Telemetry::Id I = 0; I < T.size(); ++I) {
    const Telemetry::Metric &M = T.metric(I);
    std::string Full = "mult_" + M.Name;
    if (!HeaderDone[Full]) {
      HeaderDone[Full] = true;
      OS << "# HELP " << Full << " " << escapeHelp(M.Help) << "\n";
      OS << "# TYPE " << Full << " ";
      switch (M.K) {
      case Telemetry::Kind::Counter:
        OS << "counter\n";
        break;
      case Telemetry::Kind::Gauge:
        OS << "gauge\n";
        break;
      case Telemetry::Kind::Histogram:
        OS << "histogram\n";
        break;
      }
    }
    std::string Lbl; // `key="value",` fragment, empty when unlabeled
    if (!M.LabelKey.empty())
      Lbl = M.LabelKey + "=\"" + escapeLabel(M.LabelValue) + "\"";
    switch (M.K) {
    case Telemetry::Kind::Counter:
      OS << Full << (Lbl.empty() ? "" : "{" + Lbl + "}") << " "
         << strFormat("%llu",
                      static_cast<unsigned long long>(T.counterValue(I)))
         << "\n";
      break;
    case Telemetry::Kind::Gauge:
      OS << Full << (Lbl.empty() ? "" : "{" + Lbl + "}") << " "
         << strFormat("%g", T.gaugeValue(I)) << "\n";
      break;
    case Telemetry::Kind::Histogram: {
      LatencyHistogram H = T.merged(I);
      std::string Prefix = Lbl.empty() ? "" : Lbl + ",";
      uint64_t Cum = 0;
      unsigned Top = 0; // highest non-empty bucket, so the export is short
      for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B)
        if (H.buckets()[B])
          Top = B;
      for (unsigned B = 0; B <= Top && B + 1 < LatencyHistogram::NumBuckets;
           ++B) {
        Cum += H.buckets()[B];
        OS << Full << "_bucket{" << Prefix << "le=\""
           << strFormat("%llu", static_cast<unsigned long long>(
                                    LatencyHistogram::bucketHigh(B)))
           << "\"} " << strFormat("%llu", static_cast<unsigned long long>(Cum))
           << "\n";
      }
      OS << Full << "_bucket{" << Prefix << "le=\"+Inf\"} "
         << strFormat("%llu", static_cast<unsigned long long>(H.count()))
         << "\n";
      OS << Full << "_sum" << (Lbl.empty() ? "" : "{" + Lbl + "}") << " "
         << strFormat("%llu", static_cast<unsigned long long>(H.sum()))
         << "\n";
      OS << Full << "_count" << (Lbl.empty() ? "" : "{" + Lbl + "}") << " "
         << strFormat("%llu", static_cast<unsigned long long>(H.count()))
         << "\n";
      break;
    }
    }
  }
  OS << "# HELP mult_host_ns host nanoseconds spent per simulator phase\n";
  OS << "# TYPE mult_host_ns gauge\n";
  for (unsigned P = 0; P < Telemetry::NumPhases; ++P)
    OS << "mult_host_ns{phase=\""
       << Telemetry::phaseName(static_cast<Telemetry::Phase>(P)) << "\"} "
       << strFormat("%llu", static_cast<unsigned long long>(
                                T.hostNs(static_cast<Telemetry::Phase>(P))))
       << "\n";
}

void mult::exportJson(OutStream &OS, const Telemetry &T) {
  OS << "{\n  \"metrics\": [\n";
  for (Telemetry::Id I = 0; I < T.size(); ++I) {
    const Telemetry::Metric &M = T.metric(I);
    OS << "    {\"name\": \"" << jsonEscape(M.Name) << "\"";
    if (!M.LabelKey.empty())
      OS << ", \"" << jsonEscape(M.LabelKey) << "\": \""
         << jsonEscape(M.LabelValue) << "\"";
    switch (M.K) {
    case Telemetry::Kind::Counter:
      OS << ", \"type\": \"counter\", \"value\": "
         << strFormat("%llu",
                      static_cast<unsigned long long>(T.counterValue(I)));
      break;
    case Telemetry::Kind::Gauge:
      OS << ", \"type\": \"gauge\", \"value\": "
         << strFormat("%g", T.gaugeValue(I));
      break;
    case Telemetry::Kind::Histogram: {
      LatencyHistogram H = T.merged(I);
      OS << ", \"type\": \"histogram\"";
      OS << strFormat(", \"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                      "\"max\": %llu, \"p50\": %llu, \"p90\": %llu, "
                      "\"p99\": %llu",
                      static_cast<unsigned long long>(H.count()),
                      static_cast<unsigned long long>(H.sum()),
                      static_cast<unsigned long long>(H.min()),
                      static_cast<unsigned long long>(H.max()),
                      static_cast<unsigned long long>(H.percentile(50)),
                      static_cast<unsigned long long>(H.percentile(90)),
                      static_cast<unsigned long long>(H.percentile(99)));
      OS << ", \"buckets\": [";
      bool First = true;
      for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B) {
        if (H.buckets()[B] == 0)
          continue;
        if (!First)
          OS << ", ";
        First = false;
        OS << strFormat("[%llu, %llu]",
                        static_cast<unsigned long long>(
                            LatencyHistogram::bucketLow(B)),
                        static_cast<unsigned long long>(H.buckets()[B]));
      }
      OS << "]";
      break;
    }
    }
    OS << "}" << (I + 1 < T.size() ? "," : "") << "\n";
  }
  OS << "  ],\n  \"host_ns\": {";
  for (unsigned P = 0; P < Telemetry::NumPhases; ++P) {
    if (P)
      OS << ", ";
    OS << "\"" << Telemetry::phaseName(static_cast<Telemetry::Phase>(P))
       << "\": "
       << strFormat("%llu", static_cast<unsigned long long>(
                                T.hostNs(static_cast<Telemetry::Phase>(P))));
  }
  OS << "}\n}\n";
}

bool mult::exportTelemetrySpec(const Telemetry &T, std::string_view Spec,
                               std::string &Err) {
  std::string_view Path;
  bool Prom;
  if (Spec.substr(0, 5) == "prom:") {
    Prom = true;
    Path = Spec.substr(5);
  } else if (Spec.substr(0, 5) == "json:") {
    Prom = false;
    Path = Spec.substr(5);
  } else {
    Err = "bad telemetry spec '" + std::string(Spec) +
          "' (want prom:PATH or json:PATH)";
    return false;
  }
  if (Path.empty()) {
    Err = "telemetry spec '" + std::string(Spec) + "' names no file";
    return false;
  }
  std::string PathS(Path);
  FILE *F = std::fopen(PathS.c_str(), "w");
  if (!F) {
    Err = "cannot open telemetry file " + PathS;
    return false;
  }
  FileOutStream FS(F);
  if (Prom)
    exportPrometheus(FS, T);
  else
    exportJson(FS, T);
  FS.flush();
  std::fclose(F);
  return true;
}
