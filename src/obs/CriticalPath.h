//===----------------------------------------------------------------------===//
///
/// \file
/// Critical-path (work/span) analysis of the trace stream.
///
/// The paper's headline results are speedup curves; this analyzer answers
/// the question those curves raise — *why does a run stop scaling?* It
/// reconstructs the future-spawn DAG of a traced run (the same
/// well-structured DAG Herlihy & Liu's futures model describes) and
/// computes:
///
///   - **work**: total busy virtual cycles across all processors;
///   - **span**: the longest dependence-ordered chain of cycles — the
///     critical path, i.e. the run's virtual time on infinitely many
///     processors;
///   - **parallelism** = work / span, the maximum useful processor count;
///   - an ideal-speedup curve from Brent's bound,
///     `T_P >= max(work / P, span)`, to set next to the measured
///     Table 3/4 curves;
///   - a per-future-site profile: for each textual `future` expression,
///     how often it inlined / queued a real task / left a lazy seam, how
///     often its children started stolen, how many cycles its children
///     executed, and how many of those sat on the critical path.
///
/// DAG edges come from the trace events (obs/Trace.h):
///
///   continuation   TaskStart/TaskResume after a block on the same task
///   spawn          TaskCreate.C = parent task, SeamSteal.C = seam serial
///   join           FutureResolve.C = resolve serial, echoed by the
///                  TouchHit that reads the value and implied for blocked
///                  tasks by TaskResume.C = waker
///
/// The analyzer is offline and pure: it never touches an Engine, only a
/// vector of events, so it can equally run over a buffer or a trace file
/// loaded with readTraceFile. It refuses traces with dropped events — a
/// ring-truncated trace is missing edges and any span computed from it
/// would be silently wrong.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_CRITICALPATH_H
#define MULT_OBS_CRITICALPATH_H

#include "obs/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mult {

class Tracer;

/// Aggregate profile of one future site (one textual `future` expression).
struct FutureSiteProfile {
  std::string Name;          ///< "<code name>+<pc>" from the site table.
  uint64_t Inlined = 0;      ///< InlineDecision A=0 at this site.
  uint64_t Queued = 0;       ///< InlineDecision A=1 (real child task).
  uint64_t LazySeams = 0;    ///< InlineDecision A=2 (provisional inline).
  uint64_t SeamSplits = 0;   ///< Seams later stolen into real parallelism.
  uint64_t StolenStarts = 0; ///< Child tasks whose first start was a steal.
  uint64_t ChildWork = 0;    ///< Busy cycles executed by this site's children.
  uint64_t ChildOnPath = 0;  ///< Child cycles lying on the critical path.
};

/// Result of analyzeCriticalPath.
struct CriticalPathReport {
  bool Ok = false;   ///< False: trace unusable; see Error.
  std::string Error; ///< Why the analysis refused.

  uint64_t Work = 0; ///< Total busy cycles (GC pauses excluded).
  uint64_t Span = 0; ///< Critical-path length in cycles; Span <= Work.
  /// Work / Span; 0 when the trace contains no busy cycles.
  double parallelism() const {
    return Span ? static_cast<double>(Work) / static_cast<double>(Span) : 0.0;
  }
  /// Brent's bound: ideal virtual run time on \p P processors.
  uint64_t idealCycles(unsigned P) const {
    uint64_t ByWork = P ? (Work + P - 1) / P : Work;
    return ByWork > Span ? ByWork : Span;
  }

  uint64_t Tasks = 0;      ///< Distinct tasks that ran.
  uint64_t Segments = 0;   ///< Run segments (start..block/finish) observed.
  uint64_t JoinEdges = 0;  ///< Resolve->touch/resume edges applied.
  uint64_t UnknownJoins = 0; ///< Touch-hits with no resolve serial (edge
                             ///< unknowable; span may be underestimated).

  /// Per-site rows, sorted by ChildWork descending. Sites whose children
  /// never ran (always inlined) still appear with counts only.
  std::vector<FutureSiteProfile> Sites;
};

/// Analyzes \p Events (chronological emission order). \p Dropped must be
/// the tracer's drop count — nonzero refuses with Ok = false. \p SiteNames
/// labels the per-site rows (indexes match InlineDecision/FutureCreate B
/// payloads); pass an empty vector when unavailable (rows get "site#N").
CriticalPathReport
analyzeCriticalPath(const std::vector<TraceEvent> &Events, uint64_t Dropped,
                    const std::vector<std::string> &SiteNames);

/// Convenience overload reading buffer, drop count and site table from a
/// live tracer. Refuses stream-mode tracers (the buffer is on disk; load
/// it with readTraceFile and use the vector overload).
CriticalPathReport analyzeCriticalPath(const Tracer &Tr);

} // namespace mult

#endif // MULT_OBS_CRITICALPATH_H
