//===----------------------------------------------------------------------===//
///
/// \file
/// Profile report rendering.
///
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "core/Stats.h"
#include "support/StrUtil.h"

using namespace mult;

void mult::dumpProfile(OutStream &OS, const CriticalPathReport &R,
                       unsigned MeasuredProcs, uint64_t MeasuredCycles) {
  if (!R.Ok) {
    OS << "profile unavailable: " << R.Error << "\n";
    return;
  }

  OS << "critical-path profile (virtual cycles; 1 cycle = "
     << strFormat("%.2f", EngineStats::MicrosecondsPerCycle) << " us):\n";
  OS << strFormat("  work         %12llu  (%.4fs virtual)\n",
                  static_cast<unsigned long long>(R.Work),
                  EngineStats::cyclesToSeconds(R.Work));
  OS << strFormat("  span         %12llu  (%.4fs virtual)\n",
                  static_cast<unsigned long long>(R.Span),
                  EngineStats::cyclesToSeconds(R.Span));
  OS << strFormat("  parallelism  %15.2f\n", R.parallelism());
  OS << strFormat("  tasks %llu, run segments %llu, join edges %llu",
                  static_cast<unsigned long long>(R.Tasks),
                  static_cast<unsigned long long>(R.Segments),
                  static_cast<unsigned long long>(R.JoinEdges));
  if (R.UnknownJoins)
    OS << strFormat(" (%llu join edges unknowable; span may read low)",
                    static_cast<unsigned long long>(R.UnknownJoins));
  OS << "\n";

  OS << "ideal speedup (Brent bound, T_P = max(work/P, span)):\n";
  OS << "  procs:   ";
  for (unsigned P : {1u, 2u, 4u, 8u, 16u, 32u})
    OS << strFormat("%8u", P);
  OS << "\n  speedup: ";
  for (unsigned P : {1u, 2u, 4u, 8u, 16u, 32u}) {
    uint64_t Ideal = R.idealCycles(P);
    OS << strFormat("%8.2f", Ideal ? static_cast<double>(R.Work) /
                                         static_cast<double>(Ideal)
                                   : 0.0);
  }
  OS << "\n";
  if (MeasuredProcs && MeasuredCycles)
    OS << strFormat("  measured on %u procs: %llu cycles vs ideal %llu "
                    "(%.1f%% of ideal speedup)\n",
                    MeasuredProcs,
                    static_cast<unsigned long long>(MeasuredCycles),
                    static_cast<unsigned long long>(
                        R.idealCycles(MeasuredProcs)),
                    100.0 * static_cast<double>(R.idealCycles(MeasuredProcs)) /
                        static_cast<double>(MeasuredCycles));

  if (R.Sites.empty())
    return;
  OS << "future sites (children = tasks spawned there):\n";
  OS << "  site                     inline  queue   lazy  split stolen"
        "   child-work     on-path\n";
  for (const FutureSiteProfile &S : R.Sites) {
    std::string Name = S.Name;
    if (Name.size() > 24)
      Name.resize(24);
    OS << strFormat("  %-24s %6llu %6llu %6llu %6llu %6llu %12llu %11llu\n",
                    Name.c_str(), static_cast<unsigned long long>(S.Inlined),
                    static_cast<unsigned long long>(S.Queued),
                    static_cast<unsigned long long>(S.LazySeams),
                    static_cast<unsigned long long>(S.SeamSplits),
                    static_cast<unsigned long long>(S.StolenStarts),
                    static_cast<unsigned long long>(S.ChildWork),
                    static_cast<unsigned long long>(S.ChildOnPath));
  }
}

SitePolicyTable mult::deriveSitePolicies(const CriticalPathReport &R,
                                         const PolicyDeriveOptions &Opts) {
  SitePolicyTable T;
  if (!R.Ok)
    return T;
  for (const FutureSiteProfile &S : R.Sites) {
    // No measured child weight (the site always inlined, or its children
    // never got to run): no evidence either way, leave it to the
    // threshold machinery.
    if (S.ChildWork == 0)
      continue;
    double OnPathShare =
        static_cast<double>(S.ChildOnPath) / static_cast<double>(S.ChildWork);
    SitePolicy P;
    if (OnPathShare >= Opts.EagerShare)
      P = SitePolicy::Eager; // children carry the span; keep them parallel
    else if (S.ChildWork >= Opts.LazyMinChildWork)
      P = SitePolicy::Lazy; // heavy but off-path; keep splittable only
    else
      P = SitePolicy::Inline; // light and off-path; pure overhead
    T.set(S.Name, P);
  }
  return T;
}
