//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregated per-run metrics, built from the always-on counters plus
/// (when tracing is enabled) the virtual-time event stream.
///
/// The report answers the paper's accounting questions directly: where did
/// each processor's virtual time go (busy / idle / GC), how well did work
/// stealing perform (success rate, per-processor steal counts), how deep
/// did the task queues get (high-water marks), and how long did tasks live
/// (a log2 histogram of create-to-finish virtual cycles, trace-derived).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_METRICS_H
#define MULT_OBS_METRICS_H

#include "core/Stats.h"
#include "obs/Trace.h"
#include "runtime/Gc.h"
#include "sched/Machine.h"
#include "support/OutStream.h"

#include <array>
#include <vector>

namespace mult {

class RaceDetector;
class Telemetry;

/// One processor's share of the run.
struct ProcMetrics {
  unsigned Id = 0;
  uint64_t BusyCycles = 0;
  uint64_t IdleCycles = 0;
  uint64_t GcCycles = 0;
  uint64_t Instructions = 0;
  uint64_t Dispatches = 0;
  uint64_t Steals = 0;
  uint64_t StealAttempts = 0; ///< probes this processor made as a thief
  uint64_t StealsFailed = 0;  ///< of those, probes that found nothing
  uint64_t TasksStarted = 0;
  size_t NewQueueHighWater = 0;
  size_t SuspQueueHighWater = 0;
  /// This processor's inlining threshold at the end of the run
  /// (meaningful when MetricsReport::AdaptiveT).
  unsigned AdaptiveT = 0;
  /// This processor's steal success as a thief, 0 when it never probed.
  double stealSuccessRate() const {
    return StealAttempts == 0 ? 0.0
                              : static_cast<double>(Steals) /
                                    static_cast<double>(StealAttempts);
  }
};

/// The whole report.
struct MetricsReport {
  std::vector<ProcMetrics> Procs;

  // Stealing (engine-wide; Steals + StealsFailed == StealAttempts).
  uint64_t StealAttempts = 0;
  uint64_t Steals = 0;
  uint64_t StealsFailed = 0;
  /// Steals / StealAttempts, 0 when no attempts were made.
  double stealSuccessRate() const {
    return StealAttempts == 0
               ? 0.0
               : static_cast<double>(Steals) / static_cast<double>(StealAttempts);
  }

  // Adaptive inlining threshold (sched/Adaptive.h).
  bool AdaptiveT = false;        ///< the controller was enabled
  uint64_t AdaptWindows = 0;     ///< windows closed across the machine
  uint64_t ThresholdRaises = 0;
  uint64_t ThresholdLowers = 0;

  // GC.
  uint64_t Collections = 0;
  uint64_t GcPauseCycles = 0;
  uint64_t GcMaxPauseCycles = 0; ///< longest single collection

  // Robustness (all zero unless fault injection was armed or the run
  // degraded; the renderer omits the section in that case).
  uint64_t FaultsInjected = 0;
  uint64_t HeapExhaustedStops = 0;
  uint64_t DeadlocksDetected = 0;

  // Fail-stop recovery (all zero unless a proc-kill clause fired; the
  // renderer omits the section in that case).
  uint64_t ProcsKilled = 0;
  uint64_t TasksRecovered = 0;
  uint64_t TasksOrphaned = 0;
  uint64_t RecoveryCycles = 0;
  uint64_t WakesRedirected = 0;

  // Checkpointed recovery (all zero unless EngineConfig::CheckpointEvery
  // was armed; the renderer omits the lines in that case).
  uint64_t CheckpointsTaken = 0;
  uint64_t CheckpointCycles = 0;
  uint64_t TasksRestored = 0;
  uint64_t MaxTaskRecoveryCycles = 0;
  /// Config echoes for the recovery-bound line: the policy guarantees
  /// MaxTaskRecoveryCycles <= CheckpointEvery + QuantumCycles per
  /// restored task (a capture fires at the first quantum boundary past
  /// CheckpointEvery busy cycles).
  uint64_t CheckpointEvery = 0;
  uint64_t QuantumCycles = 0;

  // Byzantine faults (all zero unless a proc-lie clause was armed).
  uint64_t ByzantineLies = 0;
  uint64_t CrossChecks = 0;
  uint64_t ByzantineDetected = 0;

  // Determinacy-race detection (EngineConfig::RaceDetect / MULT_RACE).
  // When the detector is off, RaceDetectOn is false and the renderer
  // omits the races line entirely, keeping untraced output bit-identical.
  bool RaceDetectOn = false;
  uint64_t RacesDetected = 0;
  uint64_t AccessesChecked = 0;
  uint64_t CellsTracked = 0;

  /// Task lifetimes (create to finish, virtual cycles) in log2 buckets:
  /// bucket i counts lifetimes in [2^i, 2^(i+1)). Filled from the always-on
  /// telemetry histogram when one is passed to buildMetrics; otherwise
  /// trace-derived (and empty for untraced runs).
  std::array<uint64_t, 40> TaskLifetimeLog2 = {};
  uint64_t TasksMeasured = 0;

  /// One always-on latency histogram's summary (virtual cycles).
  struct LatencySummary {
    std::string Name; ///< display name, e.g. "gc-pause"
    uint64_t Count = 0;
    double Mean = 0.0;
    uint64_t P50 = 0;
    uint64_t P90 = 0;
    uint64_t P99 = 0;
    uint64_t Max = 0;
  };
  /// Non-empty unlabeled telemetry histograms, registration order.
  /// Empty when buildMetrics was not given a Telemetry.
  std::vector<LatencySummary> Latencies;
};

/// Builds the report for the last measured run. Pass the engine's race
/// detector (may be null) to fold determinacy-race counters in. Pass the
/// engine's telemetry (may be null) to fill the latency summaries and to
/// source task lifetimes from the always-on histogram instead of the
/// trace (so lifetimes no longer require tracing).
/// \p CheckpointEvery is EngineConfig::CheckpointEvery (0 = checkpoints
/// off), threaded through so the report can render the recovery bound.
MetricsReport buildMetrics(const Machine &M, const EngineStats &S,
                           const Gc::Stats &G, const Tracer &Tr,
                           const RaceDetector *RD = nullptr,
                           const Telemetry *Telem = nullptr,
                           uint64_t CheckpointEvery = 0);

/// Renders \p R human-readably (benches, the REPL's :stats command).
void dumpMetrics(OutStream &OS, const MetricsReport &R);

} // namespace mult

#endif // MULT_OBS_METRICS_H
