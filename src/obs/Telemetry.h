//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on latency telemetry: named counters, gauges and log2-bucketed
/// histograms, recorded per processor and merged exactly at report time.
///
/// Two clock domains, never mixed:
///
///  * *Virtual-time* metrics (cycles) are recorded on the hot paths with
///    zero virtual cost -- no recorder ever calls Processor::charge -- so
///    every virtual cycle count is bit-identical whether anyone looks at
///    the histograms or not (the same invariant tracing and race
///    detection already keep).
///  * *Host-time* phases (std::chrono::steady_clock nanoseconds) measure
///    what the simulator itself costs: read, compile, run, GC. Host time
///    is noisy and machine-dependent, so it is reported but never golden-
///    compared and never feeds back into virtual time.
///
/// Recording follows the per-processor statistical-counter idiom: each
/// virtual processor owns a private shard (plain increments, no sharing),
/// and readers merge the shards. Merging log2 bucket counts is exact, so
/// percentiles extracted from the merged histogram are exact counts too
/// (to bucket resolution).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_TELEMETRY_H
#define MULT_OBS_TELEMETRY_H

#include "support/OutStream.h"

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mult {

/// Log2-bucketed histogram of non-negative integer samples (virtual
/// cycles). Bucket 0 counts values in [0, 2); bucket i counts [2^i,
/// 2^(i+1)); the top bucket saturates (counts everything >= 2^47). The
/// same convention as the trace-derived task-lifetime histogram.
class LatencyHistogram {
public:
  static constexpr unsigned NumBuckets = 48;

  void record(uint64_t V) {
    unsigned B = bucketFor(V);
    ++Buckets[B];
    ++Count;
    Sum += V;
    if (Count == 1 || V < MinV)
      MinV = V;
    if (V > MaxV)
      MaxV = V;
  }

  /// Exact merge: bucket counts, count and sum add; min/max combine.
  void merge(const LatencyHistogram &O) {
    if (O.Count == 0)
      return;
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    if (Count == 0 || O.MinV < MinV)
      MinV = O.MinV;
    if (O.MaxV > MaxV)
      MaxV = O.MaxV;
    Count += O.Count;
    Sum += O.Sum;
  }

  void clear() { *this = LatencyHistogram(); }

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? MinV : 0; }
  uint64_t max() const { return MaxV; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }

  /// The value at percentile \p Pct (0..100) by exact-count rank
  /// selection: the sample of rank ceil(Count*Pct/100) lands in some
  /// bucket, and the bucket's inclusive upper edge -- clamped into
  /// [min, max], which are tracked exactly -- is returned. Resolution is
  /// therefore the bucket width; max() itself is always exact. 0 when
  /// empty.
  uint64_t percentile(unsigned Pct) const {
    if (Count == 0)
      return 0;
    uint64_t Rank = (Count * Pct + 99) / 100;
    if (Rank < 1)
      Rank = 1;
    if (Rank > Count)
      Rank = Count;
    uint64_t Seen = 0;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      Seen += Buckets[B];
      if (Seen >= Rank) {
        uint64_t Hi = bucketHigh(B);
        if (Hi > MaxV)
          Hi = MaxV;
        if (Hi < MinV)
          Hi = MinV;
        return Hi;
      }
    }
    return MaxV;
  }

  static unsigned bucketFor(uint64_t V) {
    unsigned B = 0;
    while (B + 1 < NumBuckets && (V >> (B + 1)))
      ++B;
    return B;
  }
  /// Inclusive lower edge of bucket \p B.
  static uint64_t bucketLow(unsigned B) {
    return B == 0 ? 0 : (uint64_t(1) << B);
  }
  /// Inclusive upper edge of bucket \p B; ~0 for the saturating top
  /// bucket.
  static uint64_t bucketHigh(unsigned B) {
    return B + 1 >= NumBuckets ? ~uint64_t(0) : (uint64_t(1) << (B + 1)) - 1;
  }

  const std::array<uint64_t, NumBuckets> &buckets() const { return Buckets; }

private:
  std::array<uint64_t, NumBuckets> Buckets{};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t MinV = 0;
  uint64_t MaxV = 0;
};

/// The registry. Metrics are registered once (idempotently, keyed by
/// (name, label value)) and then addressed by dense integer id, so the
/// hot paths index a vector -- no string hashing per sample. clear()
/// zeroes every value but keeps the registrations and ids stable, which
/// is what Engine::resetStats needs between measured runs.
class Telemetry {
public:
  using Id = uint32_t;
  static constexpr Id InvalidId = ~Id(0);

  enum class Kind : uint8_t { Counter, Gauge, Histogram };

  /// Host-time phases of the simulator itself (steady_clock ns). Run
  /// includes the GC phase nested inside it; subtract to isolate the
  /// mutator.
  enum class Phase : uint8_t { Read, Compile, Run, Gc };
  static constexpr unsigned NumPhases = 4;
  static const char *phaseName(Phase P);

  explicit Telemetry(unsigned NumProcs) : NumShards(NumProcs ? NumProcs : 1) {}

  /// \name Registration (idempotent; returns the existing id on re-use)
  /// @{
  /// Names are Prometheus-style snake_case bases (the exporter prefixes
  /// "mult_"). A labeled histogram is a child series of its base name,
  /// e.g. histogram("touch_wait_cycles", ..., "site", "fib+3").
  Id counter(std::string_view Name, std::string_view Help);
  Id gauge(std::string_view Name, std::string_view Help);
  Id histogram(std::string_view Name, std::string_view Help,
               std::string_view LabelKey = {},
               std::string_view LabelValue = {});
  Id find(std::string_view Name, std::string_view LabelValue = {}) const;
  /// @}

  /// \name Recording (hot paths; never charges virtual time)
  /// @{
  void add(Id M, unsigned Proc, uint64_t Delta = 1) {
    Metrics[M].Shards[Proc % NumShards] += Delta;
  }
  void set(Id M, double V) { Metrics[M].GaugeValue = V; }
  void record(Id M, unsigned Proc, uint64_t V) {
    Metrics[M].Hists[Proc % NumShards].record(V);
  }
  void addHostNs(Phase Ph, uint64_t Ns) {
    HostNs[static_cast<unsigned>(Ph)] += Ns;
  }
  /// @}

  /// \name Reading (merges shards; report-time only)
  /// @{
  uint64_t counterValue(Id M) const;
  double gaugeValue(Id M) const { return Metrics[M].GaugeValue; }
  LatencyHistogram merged(Id M) const;
  uint64_t hostNs(Phase Ph) const {
    return HostNs[static_cast<unsigned>(Ph)];
  }
  /// @}

  struct Metric {
    std::string Name;
    std::string Help;
    std::string LabelKey;   ///< empty for unlabeled series
    std::string LabelValue;
    Kind K = Kind::Counter;
    std::vector<uint64_t> Shards;     ///< counters, one per processor
    std::vector<LatencyHistogram> Hists; ///< histograms, one per processor
    double GaugeValue = 0.0;          ///< gauges (engine-wide)
  };

  size_t size() const { return Metrics.size(); }
  const Metric &metric(Id M) const { return Metrics[M]; }
  unsigned numProcs() const { return NumShards; }

  /// Zeroes all values and host-phase clocks; registrations and ids
  /// survive (Engine::resetStats).
  void clear();

private:
  Id intern(std::string_view Name, std::string_view Help, Kind K,
            std::string_view LabelKey, std::string_view LabelValue);

  unsigned NumShards;
  std::vector<Metric> Metrics;
  std::map<std::pair<std::string, std::string>, Id> ByName;
  std::array<uint64_t, NumPhases> HostNs{};
};

/// RAII host-time scope: accumulates the elapsed steady_clock ns of its
/// lifetime into one phase. Host time only -- never touches any virtual
/// clock.
class HostPhaseTimer {
public:
  HostPhaseTimer(Telemetry &T, Telemetry::Phase Ph)
      : T(T), Ph(Ph), Start(std::chrono::steady_clock::now()) {}
  ~HostPhaseTimer() {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    if (Ns > 0)
      T.addHostNs(Ph, static_cast<uint64_t>(Ns));
  }
  HostPhaseTimer(const HostPhaseTimer &) = delete;
  HostPhaseTimer &operator=(const HostPhaseTimer &) = delete;

private:
  Telemetry &T;
  Telemetry::Phase Ph;
  std::chrono::steady_clock::time_point Start;
};

/// \name Export
/// @{
/// One histogram in full (the REPL's `:histo NAME`): merged buckets,
/// count/sum/min/mean/percentiles. Includes labeled children of \p Name.
void dumpHistogram(OutStream &OS, const Telemetry &T, std::string_view Name);
/// Every histogram as a one-line summary (the REPL's bare `:histo`).
void dumpHistogramIndex(OutStream &OS, const Telemetry &T);
/// Prometheus text exposition format (counters, gauges, histograms with
/// cumulative le-buckets, plus mult_host_ns{phase=...} gauges).
void exportPrometheus(OutStream &OS, const Telemetry &T);
/// The same content as a single JSON object.
void exportJson(OutStream &OS, const Telemetry &T);
/// Parses \p Spec ("prom:PATH" or "json:PATH", the MULT_TELEMETRY
/// grammar) and writes the export. False (and \p Err set) on a bad spec
/// or unwritable path.
bool exportTelemetrySpec(const Telemetry &T, std::string_view Spec,
                         std::string &Err);
/// @}

} // namespace mult

#endif // MULT_OBS_TELEMETRY_H
