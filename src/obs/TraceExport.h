//===----------------------------------------------------------------------===//
///
/// \file
/// Chrome trace-event JSON export of a virtual-time trace.
///
/// The output is the Trace Event Format consumed by chrome://tracing and
/// Perfetto: one process, one thread row per virtual processor. Task run
/// slices, GC pauses and idle intervals render as duration ("X") events;
/// the fine-grained protocol events (touches, steals, future create/
/// resolve, inlining decisions) render as instants. Timestamps are virtual
/// microseconds (cycles x EngineStats::MicrosecondsPerCycle), so the
/// timeline shares units with the paper's tables.
///
/// A final set of counter events carries each processor's busy/idle/GC
/// cycle totals; by construction busy + idle + gc equals the cycles the
/// processor's clock advanced since the last resetStats (TraceTest holds
/// the runtime to that invariant).
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_TRACEEXPORT_H
#define MULT_OBS_TRACEEXPORT_H

#include "obs/Trace.h"
#include "sched/Machine.h"
#include "support/OutStream.h"

namespace mult {

/// Writes the whole trace as one Chrome trace JSON object to \p OS.
void writeChromeTrace(OutStream &OS, const Tracer &Tr, const Machine &M);

/// Convenience: renders the JSON into a string.
std::string chromeTraceJson(const Tracer &Tr, const Machine &M);

} // namespace mult

#endif // MULT_OBS_TRACEEXPORT_H
