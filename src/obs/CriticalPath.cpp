//===----------------------------------------------------------------------===//
///
/// \file
/// Critical-path analyzer implementation.
///
/// The algorithm is a single chronological sweep that maintains, per
/// processor, an *open run segment* (which task is on the processor,
/// since which clock, and the critical-path length accumulated at that
/// anchor) and, per task, the path length at which the task last became
/// ready. Busy cycles advance both the global work counter and the
/// current segment's path; dependence edges (spawn, resolve->touch,
/// resolve->resume, seam split) transfer path lengths between tasks with
/// a max. Span is the largest path length any task reaches. Every path
/// increment is also a work increment and joins only copy existing path
/// values, so span <= work holds by construction.
///
/// For the per-site on-path attribution each task keeps the short list of
/// joins that *raised* its path (strictly increasing path values). The
/// final backtrack walks from the span endpoint through dominating
/// predecessors; the cycles a task contributes on the path are the
/// difference between the target path and its last dominating join below
/// it. This attributes the span exactly; the only approximation in the
/// whole analysis is touch-hits whose future was resolved while tracing
/// was off (counted in UnknownJoins, which can only underestimate span).
///
//===----------------------------------------------------------------------===//

#include "obs/CriticalPath.h"

#include "core/Task.h"

#include <algorithm>
#include <map>
#include <numeric>

using namespace mult;

namespace {

constexpr uint32_t NoSite = ~uint32_t(0);

/// A join that raised a task's path: after it, the task's path grows only
/// by the task's own busy cycles until the next dominating join.
struct Join {
  TaskId Pred;         ///< InvalidTask: creation with no traced parent.
  uint64_t PathAtJoin; ///< Path length inherited from Pred.
};

struct TaskInfo {
  uint64_t ReadyPath = 0; ///< Path at which the task last became ready.
  uint64_t Work = 0;      ///< Busy cycles executed so far.
  uint64_t EndPath = 0;   ///< Path at finish (or last block when unfinished).
  uint32_t Site = NoSite; ///< Future site that spawned it, if any.
  bool Started = false;
  bool FirstStartStolen = false;
  std::vector<Join> Joins; ///< PathAtJoin strictly increasing.
};

struct ProcState {
  bool HasTask = false;
  bool InGc = false;
  TaskId Task = InvalidTask;
  uint64_t Anchor = 0; ///< Clock at which Path was last brought current.
  uint64_t Path = 0;   ///< Critical-path length of the running chain.
};

/// Events that publish a path other processors may consume at the same
/// clock sort before plain consumers (stable within a rank, so per-proc
/// emission order is preserved).
int sortRank(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::TaskCreate:
  case TraceEventKind::FutureCreate:
  case TraceEventKind::FutureResolve:
  case TraceEventKind::TaskResume:
  case TraceEventKind::SeamSteal:
  case TraceEventKind::TaskFinish:
    return 0;
  default:
    return 1;
  }
}

} // namespace

CriticalPathReport
mult::analyzeCriticalPath(const std::vector<TraceEvent> &Events,
                          uint64_t Dropped,
                          const std::vector<std::string> &SiteNames) {
  CriticalPathReport R;
  if (Dropped) {
    R.Error = "trace dropped " + std::to_string(Dropped) +
              " events (ring overflow or sink error); the DAG is "
              "incomplete — rerun with an unbounded or larger sink";
    return R;
  }
  if (Events.empty()) {
    R.Error = "trace is empty (was tracing enabled for the run?)";
    return R;
  }

  // Chronological sweep order: by clock, publishers first within a clock,
  // per-processor emission order preserved.
  std::vector<uint32_t> Order(Events.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(), [&](uint32_t L, uint32_t Rr) {
    if (Events[L].Clock != Events[Rr].Clock)
      return Events[L].Clock < Events[Rr].Clock;
    return sortRank(Events[L].Kind) < sortRank(Events[Rr].Kind);
  });

  std::map<TaskId, TaskInfo> TaskMap;
  std::map<unsigned, ProcState> Procs;
  // Resolve serial -> (path, resolver) published by FutureResolve.
  std::map<uint64_t, Join> ResolveEdges;
  // Seam serial -> (path, pusher, site) published by InlineDecision(lazy).
  struct SeamPub {
    Join J;
    uint32_t Site;
  };
  std::map<uint64_t, SeamPub> SeamEdges;
  std::map<uint32_t, FutureSiteProfile> SiteMap;

  auto site = [&](uint32_t Id) -> FutureSiteProfile & {
    FutureSiteProfile &S = SiteMap[Id];
    if (S.Name.empty())
      S.Name = Id < SiteNames.size() ? SiteNames[Id]
                                     : "site#" + std::to_string(Id);
    return S;
  };

  // Accrues busy cycles up to \p Clock on \p PS's open segment.
  auto advance = [&](ProcState &PS, uint64_t Clock) {
    if (Clock > PS.Anchor) {
      if (PS.HasTask && !PS.InGc) {
        uint64_t Delta = Clock - PS.Anchor;
        PS.Path += Delta;
        R.Work += Delta;
        TaskMap[PS.Task].Work += Delta;
      }
      PS.Anchor = Clock;
    }
  };

  auto closeSegment = [&](ProcState &PS, uint64_t Clock, bool Finished) {
    advance(PS, Clock);
    if (!PS.HasTask)
      return;
    TaskInfo &T = TaskMap[PS.Task];
    if (Finished)
      T.EndPath = PS.Path;
    else
      T.ReadyPath = std::max(T.ReadyPath, PS.Path);
    PS.HasTask = false;
  };

  for (uint32_t Idx : Order) {
    const TraceEvent &E = Events[Idx];
    ProcState &PS = Procs[E.Proc];
    switch (E.Kind) {
    case TraceEventKind::TaskCreate: {
      advance(PS, E.Clock);
      TaskInfo &Child = TaskMap[E.A];
      // The creating processor's current path is the child's earliest
      // possible start. This also covers parentless root tasks: successive
      // top-level forms run by one engine are issued serially, so a root
      // created after earlier work on this processor depends on it even
      // though no task id links them.
      Child.ReadyPath = PS.Path;
      Child.Joins.push_back(Join{
          E.C != InvalidTask && PS.HasTask ? PS.Task : InvalidTask, PS.Path});
      break;
    }
    case TraceEventKind::TaskStart: {
      advance(PS, E.Clock);
      TaskInfo &T = TaskMap[E.A];
      if (!T.Started) {
        T.Started = true;
        T.FirstStartStolen = E.B == 1;
        ++R.Tasks;
      }
      PS.HasTask = true;
      PS.Task = E.A;
      PS.Anchor = E.Clock;
      PS.Path = T.ReadyPath;
      ++R.Segments;
      break;
    }
    case TraceEventKind::TaskBlock:
    case TraceEventKind::TaskStopped:
      closeSegment(PS, E.Clock, /*Finished=*/false);
      break;
    case TraceEventKind::TaskFinish:
      closeSegment(PS, E.Clock, /*Finished=*/true);
      break;
    case TraceEventKind::TaskResume: {
      // Emitted by the waker's processor: the waiter cannot run before
      // the waker's path at this point.
      advance(PS, E.Clock);
      TaskInfo &T = TaskMap[E.A];
      if (PS.Path > T.ReadyPath) {
        T.ReadyPath = PS.Path;
        T.Joins.push_back(Join{E.C, PS.Path});
        ++R.JoinEdges;
      }
      break;
    }
    case TraceEventKind::FutureResolve:
      advance(PS, E.Clock);
      if (E.C)
        ResolveEdges[E.C] =
            Join{PS.HasTask ? PS.Task : InvalidTask, PS.Path};
      break;
    case TraceEventKind::TouchHit: {
      advance(PS, E.Clock);
      if (!E.C) {
        ++R.UnknownJoins; // Resolved while tracing was off; edge unknowable.
        break;
      }
      auto It = ResolveEdges.find(E.C);
      if (It == ResolveEdges.end()) {
        ++R.UnknownJoins; // Stale stamp from before the last resetStats.
        break;
      }
      if (PS.HasTask && It->second.PathAtJoin > PS.Path) {
        PS.Path = It->second.PathAtJoin;
        TaskMap[PS.Task].Joins.push_back(It->second);
        ++R.JoinEdges;
      }
      break;
    }
    case TraceEventKind::InlineDecision: {
      FutureSiteProfile &S = site(static_cast<uint32_t>(E.B));
      if (E.A == 0) {
        ++S.Inlined;
      } else if (E.A == 1) {
        ++S.Queued;
      } else {
        ++S.LazySeams;
        advance(PS, E.Clock);
        SeamEdges[E.C] =
            SeamPub{Join{PS.HasTask ? PS.Task : InvalidTask, PS.Path},
                    static_cast<uint32_t>(E.B)};
      }
      break;
    }
    case TraceEventKind::FutureCreate:
      TaskMap[E.A].Site = static_cast<uint32_t>(E.B);
      break;
    case TraceEventKind::SeamSteal: {
      // The split-off parent continuation (task E.A) became runnable when
      // the seam was pushed, not when the thief arrived.
      TaskInfo &T = TaskMap[E.A];
      auto It = SeamEdges.find(E.C);
      if (It != SeamEdges.end()) {
        T.ReadyPath = It->second.J.PathAtJoin;
        T.Joins.push_back(It->second.J);
        T.Site = It->second.Site;
        ++site(It->second.Site).SeamSplits;
        ++R.JoinEdges;
      } else {
        T.Joins.push_back(Join{InvalidTask, 0});
      }
      break;
    }
    case TraceEventKind::GcBegin:
      advance(PS, E.Clock);
      PS.InGc = true;
      break;
    case TraceEventKind::GcEnd:
      PS.Anchor = std::max(PS.Anchor, E.Clock);
      PS.InGc = false;
      break;
    case TraceEventKind::TaskParked:
    case TraceEventKind::TaskDropped:
    case TraceEventKind::TouchBlock:
    case TraceEventKind::StealAttempt:
    case TraceEventKind::IdleBegin:
    case TraceEventKind::IdleEnd:
    case TraceEventKind::FaultInjected:
    case TraceEventKind::ThresholdChange:
    case TraceEventKind::PolicyDecision:
    case TraceEventKind::ProcKilled:
    case TraceEventKind::TaskRecovered:
    case TraceEventKind::TaskOrphaned:
    case TraceEventKind::CellRead:
    case TraceEventKind::CellWrite:
    case TraceEventKind::SemAcquire:
    case TraceEventKind::SemRelease:
      break; // No effect on the DAG.
    }
  }

  // Span: the longest path reached anywhere, including tasks still open
  // at the end of the trace (blocked forever, or cut off mid-run).
  TaskId SpanTask = InvalidTask;
  for (auto &[Id, T] : TaskMap) {
    uint64_t End = std::max(T.EndPath, T.ReadyPath);
    if (End > R.Span || SpanTask == InvalidTask) {
      R.Span = End;
      SpanTask = Id;
    }
  }
  for (auto &[Id, PS] : Procs) {
    if (PS.HasTask && PS.Path > R.Span) {
      R.Span = PS.Path;
      SpanTask = PS.Task;
    }
  }

  // Backtrack the critical path, attributing each task's on-path cycles
  // to its future site. Joins have strictly increasing PathAtJoin, so the
  // dominating join below a target is the last entry <= target.
  {
    TaskId Cur = SpanTask;
    uint64_t Target = R.Span;
    size_t Steps = 0, MaxSteps = TaskMap.size() + Events.size();
    while (Cur != InvalidTask && Steps++ < MaxSteps) {
      auto It = TaskMap.find(Cur);
      if (It == TaskMap.end())
        break;
      TaskInfo &T = It->second;
      const Join *Dom = nullptr;
      for (auto J = T.Joins.rbegin(); J != T.Joins.rend(); ++J)
        if (J->PathAtJoin <= Target) {
          Dom = &*J;
          break;
        }
      uint64_t From = Dom ? Dom->PathAtJoin : 0;
      if (T.Site != NoSite)
        site(T.Site).ChildOnPath += Target - From;
      if (!Dom)
        break;
      Cur = Dom->Pred;
      Target = From;
    }
  }

  for (auto &[Id, T] : TaskMap) {
    if (T.Site == NoSite)
      continue;
    FutureSiteProfile &S = site(T.Site);
    S.ChildWork += T.Work;
    if (T.FirstStartStolen)
      ++S.StolenStarts;
  }

  R.Sites.reserve(SiteMap.size());
  for (auto &[Id, S] : SiteMap)
    R.Sites.push_back(std::move(S));
  std::stable_sort(R.Sites.begin(), R.Sites.end(),
                   [](const FutureSiteProfile &L, const FutureSiteProfile &Rr) {
                     return L.ChildWork > Rr.ChildWork;
                   });

  R.Ok = true;
  return R;
}

CriticalPathReport mult::analyzeCriticalPath(const Tracer &Tr) {
  if (Tr.mode() == TraceSinkMode::Stream) {
    CriticalPathReport R;
    R.Error = "tracer is in stream mode; load the file '" + Tr.streamPath() +
              "' with readTraceFile and analyze that";
    return R;
  }
  return analyzeCriticalPath(Tr.events(), Tr.dropped(), Tr.siteNames());
}
