//===----------------------------------------------------------------------===//
///
/// \file
/// Trace event kind names.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

using namespace mult;

const char *mult::traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::TaskCreate: return "task-create";
  case TraceEventKind::TaskStart: return "task-start";
  case TraceEventKind::TaskBlock: return "task-block";
  case TraceEventKind::TaskResume: return "task-resume";
  case TraceEventKind::TaskFinish: return "task-finish";
  case TraceEventKind::TaskStopped: return "task-stopped";
  case TraceEventKind::TaskParked: return "task-parked";
  case TraceEventKind::TaskDropped: return "task-dropped";
  case TraceEventKind::FutureCreate: return "future-create";
  case TraceEventKind::FutureResolve: return "future-resolve";
  case TraceEventKind::TouchHit: return "touch-hit";
  case TraceEventKind::TouchBlock: return "touch-block";
  case TraceEventKind::StealAttempt: return "steal-attempt";
  case TraceEventKind::InlineDecision: return "inline-decision";
  case TraceEventKind::SeamSteal: return "seam-steal";
  case TraceEventKind::GcBegin: return "gc-begin";
  case TraceEventKind::GcEnd: return "gc-end";
  case TraceEventKind::IdleBegin: return "idle-begin";
  case TraceEventKind::IdleEnd: return "idle-end";
  }
  return "unknown";
}
