//===----------------------------------------------------------------------===//
///
/// \file
/// Tracer sinks (unbounded / ring / stream), drop accounting, the binary
/// trace-file format, and event kind names.
///
/// Stream file layout (same-machine, not an interchange format):
///
///   offset 0   char[4]  magic "MTRC"
///   offset 4   u32      format version (currently 1)
///   offset 8   u32      sizeof(TraceEvent) — layout check on load
///   offset 12  u32      reserved (0)
///   offset 16  u64      emitted count  \  patched by flushStream() /
///   offset 24  u64      dropped count  /  the destructor
///   offset 32  TraceEvent[] records
///
/// The counters are written as zero when the file is opened and patched
/// in place on flush/close, so a crash mid-run leaves an obviously
/// incomplete header (emitted == 0 with a non-empty body) rather than a
/// plausible lie.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

using namespace mult;

namespace {

constexpr char StreamMagic[4] = {'M', 'T', 'R', 'C'};
constexpr uint32_t StreamVersion = 1;
constexpr long StreamCountersOffset = 16;
constexpr long StreamHeaderSize = 32;

} // namespace

Tracer::~Tracer() { closeStreamFile(); }

// Out of line so Trace.h does not need the TraceObserver definition on the
// record() fast path.
void Tracer::notifyObserver(const TraceEvent &E) { Observer->onTraceEvent(E); }

void Tracer::recordSlow(const TraceEvent &E) {
  switch (Mode) {
  case TraceSinkMode::Unbounded:
    Events.push_back(E); // record() only forwards Ring/Stream, but stay safe.
    return;
  case TraceSinkMode::Ring:
    if (Events.size() < RingCap) {
      Events.push_back(E);
      return;
    }
    // Full: overwrite the oldest slot. RingHead is the logical start.
    Events[RingHead] = E;
    RingHead = (RingHead + 1) % RingCap;
    ++Dropped;
    return;
  case TraceSinkMode::Stream:
    if (StreamFile && std::fwrite(&E, sizeof(TraceEvent), 1, StreamFile) != 1)
      ++Dropped; // Disk full / IO error: count it, keep running.
    return;
  }
}

const std::vector<TraceEvent> &Tracer::events() const {
  // Linearize the ring so consumers see emission order. Rotating in place
  // and resetting RingHead keeps repeated calls cheap.
  if (Mode == TraceSinkMode::Ring && RingHead != 0) {
    std::rotate(Events.begin(),
                Events.begin() + static_cast<ptrdiff_t>(RingHead),
                Events.end());
    RingHead = 0;
  }
  return Events;
}

void Tracer::clear() {
  Events.clear();
  RingHead = 0;
  Emitted = 0;
  Dropped = 0;
  if (Mode == TraceSinkMode::Stream && StreamFile) {
    // Rewind so the file describes only the next run.
    std::fflush(StreamFile);
    if (::ftruncate(fileno(StreamFile), 0) == 0) {
      std::fseek(StreamFile, 0, SEEK_SET);
      writeStreamHeader();
    }
  }
  // Mode, RingCap, the site table and the resolve-serial counter survive:
  // sites describe the loaded program, and reusing a serial would let a
  // stale stamp on a long-lived future alias a fresh resolve.
}

// Switching sinks starts a fresh recording: the buffered events are
// discarded and the emitted/dropped counters reset, so the invariant
// recorded() + dropped() == emitted() holds within any one sink's
// lifetime (a stream header never claims events it does not contain).

void Tracer::setUnbounded() {
  closeStreamFile();
  Mode = TraceSinkMode::Unbounded;
  RingCap = 0;
  Events.clear();
  RingHead = 0;
  Emitted = 0;
  Dropped = 0;
}

void Tracer::setRingCapacity(size_t N) {
  closeStreamFile();
  Mode = TraceSinkMode::Ring;
  RingCap = N < 1 ? 1 : N;
  Events.clear();
  Events.reserve(RingCap);
  RingHead = 0;
  Emitted = 0;
  Dropped = 0;
}

bool Tracer::openStream(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "wb+");
  if (!F)
    return false;
  closeStreamFile();
  Mode = TraceSinkMode::Stream;
  RingCap = 0;
  Events.clear();
  RingHead = 0;
  Emitted = 0;
  Dropped = 0;
  StreamFile = F;
  StreamPath = Path;
  writeStreamHeader();
  return true;
}

void Tracer::writeStreamHeader() {
  if (!StreamFile)
    return;
  uint32_t Size = static_cast<uint32_t>(sizeof(TraceEvent));
  uint32_t Reserved = 0;
  uint64_t Counts[2] = {Emitted, Dropped};
  std::fwrite(StreamMagic, 1, 4, StreamFile);
  std::fwrite(&StreamVersion, sizeof(uint32_t), 1, StreamFile);
  std::fwrite(&Size, sizeof(uint32_t), 1, StreamFile);
  std::fwrite(&Reserved, sizeof(uint32_t), 1, StreamFile);
  std::fwrite(Counts, sizeof(uint64_t), 2, StreamFile);
}

void Tracer::flushStream() {
  if (Mode != TraceSinkMode::Stream || !StreamFile)
    return;
  long End = std::ftell(StreamFile);
  std::fseek(StreamFile, StreamCountersOffset, SEEK_SET);
  uint64_t Counts[2] = {Emitted, Dropped};
  std::fwrite(Counts, sizeof(uint64_t), 2, StreamFile);
  std::fseek(StreamFile, End, SEEK_SET);
  std::fflush(StreamFile);
}

void Tracer::closeStreamFile() {
  if (!StreamFile)
    return;
  flushStream();
  std::fclose(StreamFile);
  StreamFile = nullptr;
  StreamPath.clear();
}

bool Tracer::configureSink(const std::string &Spec, std::string &Err) {
  if (Spec.empty() || Spec == "unbounded") {
    setUnbounded();
    return true;
  }
  if (Spec.rfind("ring:", 0) == 0) {
    const std::string Num = Spec.substr(5);
    char *EndP = nullptr;
    unsigned long long N = std::strtoull(Num.c_str(), &EndP, 10);
    if (Num.empty() || *EndP != '\0' || N == 0) {
      Err = "bad ring capacity in '" + Spec + "' (want ring:N, N >= 1)";
      return false;
    }
    setRingCapacity(static_cast<size_t>(N));
    return true;
  }
  if (Spec == "stream" || Spec.rfind("stream:", 0) == 0) {
    std::string Path =
        Spec == "stream" ? std::string("mult_trace.bin") : Spec.substr(7);
    if (Path.empty()) {
      Err = "empty stream path in '" + Spec + "'";
      return false;
    }
    if (!openStream(Path)) {
      Err = "cannot open trace stream file '" + Path + "'";
      return false;
    }
    return true;
  }
  Err = "unknown trace sink '" + Spec + "' (want unbounded, ring:N, or "
        "stream[:PATH])";
  return false;
}

uint32_t Tracer::futureSiteId(const void *CodeKey, uint32_t Pc,
                              std::string_view Name) {
  auto [It, Inserted] =
      SiteIds.try_emplace({CodeKey, Pc}, static_cast<uint32_t>(SiteNames.size()));
  if (Inserted) {
    std::string Label(Name.empty() ? std::string_view("<anon>") : Name);
    Label += '+';
    Label += std::to_string(Pc);
    SiteNames.push_back(std::move(Label));
  }
  return It->second;
}

bool mult::readTraceFile(const std::string &Path, TraceFile &Out,
                         std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  char Magic[4];
  uint32_t Version = 0, Size = 0, Reserved = 0;
  uint64_t Counts[2] = {0, 0};
  bool HeaderOk = std::fread(Magic, 1, 4, F) == 4 &&
                  std::fread(&Version, sizeof(uint32_t), 1, F) == 1 &&
                  std::fread(&Size, sizeof(uint32_t), 1, F) == 1 &&
                  std::fread(&Reserved, sizeof(uint32_t), 1, F) == 1 &&
                  std::fread(Counts, sizeof(uint64_t), 2, F) == 2;
  if (!HeaderOk || std::memcmp(Magic, StreamMagic, 4) != 0) {
    std::fclose(F);
    Err = "'" + Path + "' is not a mult trace file";
    return false;
  }
  if (Version != StreamVersion || Size != sizeof(TraceEvent)) {
    std::fclose(F);
    Err = "'" + Path + "' has an incompatible trace format";
    return false;
  }
  Out.Events.clear();
  Out.Emitted = Counts[0];
  Out.Dropped = Counts[1];
  TraceEvent E;
  while (std::fread(&E, sizeof(TraceEvent), 1, F) == 1)
    Out.Events.push_back(E);
  bool Truncated = !std::feof(F);
  std::fclose(F);
  if (Truncated) {
    Err = "'" + Path + "' ends mid-record (truncated write?)";
    return false;
  }
  if (Out.Emitted == 0 && !Out.Events.empty()) {
    Err = "'" + Path + "' has an unpatched header (crashed writer?)";
    return false;
  }
  (void)StreamHeaderSize;
  return true;
}

const char *mult::traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::TaskCreate: return "task-create";
  case TraceEventKind::TaskStart: return "task-start";
  case TraceEventKind::TaskBlock: return "task-block";
  case TraceEventKind::TaskResume: return "task-resume";
  case TraceEventKind::TaskFinish: return "task-finish";
  case TraceEventKind::TaskStopped: return "task-stopped";
  case TraceEventKind::TaskParked: return "task-parked";
  case TraceEventKind::TaskDropped: return "task-dropped";
  case TraceEventKind::FutureCreate: return "future-create";
  case TraceEventKind::FutureResolve: return "future-resolve";
  case TraceEventKind::TouchHit: return "touch-hit";
  case TraceEventKind::TouchBlock: return "touch-block";
  case TraceEventKind::StealAttempt: return "steal-attempt";
  case TraceEventKind::InlineDecision: return "inline-decision";
  case TraceEventKind::SeamSteal: return "seam-steal";
  case TraceEventKind::GcBegin: return "gc-begin";
  case TraceEventKind::GcEnd: return "gc-end";
  case TraceEventKind::IdleBegin: return "idle-begin";
  case TraceEventKind::IdleEnd: return "idle-end";
  case TraceEventKind::FaultInjected: return "fault-injected";
  case TraceEventKind::ThresholdChange: return "threshold-change";
  case TraceEventKind::PolicyDecision: return "policy-decision";
  case TraceEventKind::ProcKilled: return "proc-killed";
  case TraceEventKind::TaskRecovered: return "task-recovered";
  case TraceEventKind::TaskOrphaned: return "task-orphaned";
  case TraceEventKind::CellRead: return "cell-read";
  case TraceEventKind::CellWrite: return "cell-write";
  case TraceEventKind::SemAcquire: return "sem-acquire";
  case TraceEventKind::SemRelease: return "sem-release";
  case TraceEventKind::CheckpointTaken: return "checkpoint-taken";
  case TraceEventKind::TaskRestored: return "task-restored";
  case TraceEventKind::ByzantineDetected: return "byzantine-detected";
  }
  return "unknown";
}
