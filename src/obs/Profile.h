//===----------------------------------------------------------------------===//
///
/// \file
/// Text rendering of a CriticalPathReport — the `:profile` / MULT_PROFILE
/// output.
///
/// The report has three blocks: the work/span/parallelism summary (cycles
/// and virtual seconds, using the paper's 1.12 us/cycle calibration), the
/// "what-if" ideal-speedup curve from Brent's bound to set next to the
/// measured Table 3/4 curves, and the per-future-site table showing where
/// each textual `future` expression spent its children's cycles and how
/// much of that sat on the critical path.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_OBS_PROFILE_H
#define MULT_OBS_PROFILE_H

#include "core/SitePolicies.h"
#include "obs/CriticalPath.h"
#include "support/OutStream.h"

namespace mult {

/// Renders \p R. A refused analysis (R.Ok == false) prints the reason.
/// \p MeasuredProcs, when nonzero, adds the measured-vs-ideal line for
/// the processor count the run actually used.
void dumpProfile(OutStream &OS, const CriticalPathReport &R,
                 unsigned MeasuredProcs = 0, uint64_t MeasuredCycles = 0);

/// Thresholds for deriveSitePolicies.
struct PolicyDeriveOptions {
  /// A site whose children put at least this share of their cycles on the
  /// critical path stays eager (serializing them would stretch the span).
  double EagerShare = 0.05;
  /// An off-path site whose children still executed at least this many
  /// cycles goes lazy (worth keeping splittable); smaller ones inline.
  uint64_t LazyMinChildWork = 4096;
};

/// Closes the measure→decide loop (ROADMAP "critical-path-guided
/// optimization"): turns a critical-path report into a site-policy table
/// the engine can load on the next run. Sites whose children never ran
/// (always inlined — no weight was measured) get no entry and keep the
/// threshold behavior.
SitePolicyTable deriveSitePolicies(const CriticalPathReport &R,
                                   const PolicyDeriveOptions &Opts = {});

} // namespace mult

#endif // MULT_OBS_PROFILE_H
