//===----------------------------------------------------------------------===//
///
/// \file
/// Metrics aggregation and rendering.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "analysis/RaceDetect.h"
#include "core/Task.h"
#include "obs/Telemetry.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <unordered_map>

using namespace mult;

MetricsReport mult::buildMetrics(const Machine &M, const EngineStats &S,
                                 const Gc::Stats &G, const Tracer &Tr,
                                 const RaceDetector *RD,
                                 const Telemetry *Telem,
                                 uint64_t CheckpointEvery) {
  MetricsReport R;
  for (unsigned I = 0; I < M.numProcessors(); ++I) {
    const Processor &P = M.processor(I);
    ProcMetrics PM;
    PM.Id = I;
    PM.BusyCycles = P.BusyCycles;
    PM.IdleCycles = P.IdleCycles;
    PM.GcCycles = P.GcCycles;
    PM.Instructions = P.Instructions;
    PM.Dispatches = P.Dispatches;
    PM.Steals = P.Steals;
    PM.StealAttempts = P.StealAttempts;
    PM.StealsFailed = P.StealsFailed;
    PM.TasksStarted = P.TasksStarted;
    PM.NewQueueHighWater = P.Queues.newHighWater();
    PM.SuspQueueHighWater = P.Queues.suspendedHighWater();
    PM.AdaptiveT = P.Adapt.T;
    R.Procs.push_back(PM);
  }

  R.StealAttempts = S.StealAttempts;
  R.Steals = S.Steals;
  R.StealsFailed = S.StealsFailed;
  R.AdaptiveT = M.adaptiveEnabled();
  R.AdaptWindows = S.AdaptWindows;
  R.ThresholdRaises = S.ThresholdRaises;
  R.ThresholdLowers = S.ThresholdLowers;
  R.Collections = G.Collections;
  R.GcPauseCycles = G.TotalPauseCycles;
  R.GcMaxPauseCycles = G.MaxPauseCycles;
  R.FaultsInjected = S.FaultsInjected;
  R.HeapExhaustedStops = S.HeapExhaustedStops;
  R.DeadlocksDetected = S.DeadlocksDetected;
  R.ProcsKilled = S.ProcsKilled;
  R.TasksRecovered = S.TasksRecovered;
  R.TasksOrphaned = S.TasksOrphaned;
  R.RecoveryCycles = S.RecoveryCycles;
  R.WakesRedirected = S.WakesRedirected;
  R.CheckpointsTaken = S.CheckpointsTaken;
  R.CheckpointCycles = S.CheckpointCycles;
  R.TasksRestored = S.TasksRestored;
  R.MaxTaskRecoveryCycles = S.MaxTaskRecoveryCycles;
  R.CheckpointEvery = CheckpointEvery;
  R.QuantumCycles = M.quantum();
  R.ByzantineLies = S.ByzantineLies;
  R.CrossChecks = S.CrossChecks;
  R.ByzantineDetected = S.ByzantineDetected;
  if (RD) {
    R.RaceDetectOn = true;
    R.RacesDetected = RD->raceCount();
    R.AccessesChecked = RD->accessesChecked();
    R.CellsTracked = RD->cellsTracked();
  }

  if (Telem) {
    // Task lifetimes from the always-on histogram: same log2 convention
    // as the trace-derived path, telemetry's extra high buckets fold into
    // the report's top bucket.
    Telemetry::Id LifeId = Telem->find("task_lifetime_cycles");
    if (LifeId != Telemetry::InvalidId) {
      LatencyHistogram H = Telem->merged(LifeId);
      for (unsigned B = 0; B < LatencyHistogram::NumBuckets; ++B) {
        uint64_t N = H.buckets()[B];
        if (N)
          R.TaskLifetimeLog2[std::min<size_t>(
              B, R.TaskLifetimeLog2.size() - 1)] += N;
      }
      R.TasksMeasured = H.count();
    }

    // Latency summaries for every non-empty unlabeled histogram, in
    // registration order (display names: '_' -> '-', no "_cycles").
    for (Telemetry::Id I = 0; I < Telem->size(); ++I) {
      const Telemetry::Metric &MDef = Telem->metric(I);
      if (MDef.K != Telemetry::Kind::Histogram || !MDef.LabelKey.empty())
        continue;
      LatencyHistogram H = Telem->merged(I);
      if (H.count() == 0)
        continue;
      MetricsReport::LatencySummary LS;
      std::string N = MDef.Name;
      if (N.size() > 7 && N.compare(N.size() - 7, 7, "_cycles") == 0)
        N.resize(N.size() - 7);
      std::replace(N.begin(), N.end(), '_', '-');
      LS.Name = N;
      LS.Count = H.count();
      LS.Mean = static_cast<double>(H.sum()) / static_cast<double>(H.count());
      LS.P50 = H.percentile(50);
      LS.P90 = H.percentile(90);
      LS.P99 = H.percentile(99);
      LS.Max = H.max();
      R.Latencies.push_back(std::move(LS));
    }
    return R;
  }

  // Task lifetimes from the trace: pair each finish with its creation.
  std::unordered_map<uint64_t, uint64_t> Born;
  for (const TraceEvent &E : Tr.events()) {
    if (E.Kind == TraceEventKind::TaskCreate) {
      Born[E.A] = E.Clock;
    } else if (E.Kind == TraceEventKind::TaskFinish) {
      auto It = Born.find(E.A);
      if (It == Born.end() || E.Clock < It->second)
        continue;
      uint64_t Life = E.Clock - It->second;
      unsigned Bucket = 0;
      while (Bucket + 1 < R.TaskLifetimeLog2.size() && (Life >> (Bucket + 1)))
        ++Bucket;
      ++R.TaskLifetimeLog2[Bucket];
      ++R.TasksMeasured;
      Born.erase(It);
    }
  }
  return R;
}

void mult::dumpMetrics(OutStream &OS, const MetricsReport &R) {
  OS << "per-processor virtual time (cycles):\n";
  OS << "  proc       busy       idle         gc      insns  disp  steal"
        "/att(rate)  qhi(new/susp)";
  if (R.AdaptiveT)
    OS << "  T";
  OS << "\n";
  for (const ProcMetrics &P : R.Procs) {
    OS << strFormat(
        "  %4u %10llu %10llu %10llu %10llu %5llu %6llu/%llu",
        P.Id, static_cast<unsigned long long>(P.BusyCycles),
        static_cast<unsigned long long>(P.IdleCycles),
        static_cast<unsigned long long>(P.GcCycles),
        static_cast<unsigned long long>(P.Instructions),
        static_cast<unsigned long long>(P.Dispatches),
        static_cast<unsigned long long>(P.Steals),
        static_cast<unsigned long long>(P.StealAttempts));
    // A processor that never probed has no success rate, not a 0% one.
    if (P.StealAttempts == 0)
      OS << "(-)";
    else
      OS << strFormat("(%.0f%%)", P.stealSuccessRate() * 100.0);
    OS << strFormat("  %zu/%zu", P.NewQueueHighWater, P.SuspQueueHighWater);
    if (R.AdaptiveT)
      OS << strFormat("  %u", P.AdaptiveT);
    OS << "\n";
  }
  if (R.StealAttempts == 0)
    OS << "stealing: no attempts\n";
  else
    OS << strFormat("stealing: %llu of %llu attempts succeeded (%llu failed, "
                    "%.1f%% success)\n",
                    static_cast<unsigned long long>(R.Steals),
                    static_cast<unsigned long long>(R.StealAttempts),
                    static_cast<unsigned long long>(R.StealsFailed),
                    R.stealSuccessRate() * 100.0);
  if (R.AdaptiveT)
    OS << strFormat("adaptive-T: %llu windows closed, %llu raises, "
                    "%llu lowers\n",
                    static_cast<unsigned long long>(R.AdaptWindows),
                    static_cast<unsigned long long>(R.ThresholdRaises),
                    static_cast<unsigned long long>(R.ThresholdLowers));
  OS << strFormat("gc: %llu collections, %llu pause cycles",
                  static_cast<unsigned long long>(R.Collections),
                  static_cast<unsigned long long>(R.GcPauseCycles));
  if (R.Collections > 0)
    OS << strFormat(" (max %llu, mean %.1f)",
                    static_cast<unsigned long long>(R.GcMaxPauseCycles),
                    static_cast<double>(R.GcPauseCycles) /
                        static_cast<double>(R.Collections));
  OS << "\n";
  if (R.FaultsInjected || R.HeapExhaustedStops || R.DeadlocksDetected)
    OS << strFormat("robustness: %llu faults injected, %llu heap-exhausted "
                    "stops, %llu deadlocks detected\n",
                    static_cast<unsigned long long>(R.FaultsInjected),
                    static_cast<unsigned long long>(R.HeapExhaustedStops),
                    static_cast<unsigned long long>(R.DeadlocksDetected));
  if (R.ProcsKilled || R.TasksRecovered || R.TasksOrphaned)
    OS << strFormat("recovery: %llu procs killed, %llu tasks recovered, "
                    "%llu orphaned, %llu recovery cycles, "
                    "%llu wakes redirected\n",
                    static_cast<unsigned long long>(R.ProcsKilled),
                    static_cast<unsigned long long>(R.TasksRecovered),
                    static_cast<unsigned long long>(R.TasksOrphaned),
                    static_cast<unsigned long long>(R.RecoveryCycles),
                    static_cast<unsigned long long>(R.WakesRedirected));
  if (R.CheckpointsTaken || R.TasksRestored)
    OS << strFormat("checkpoints: %llu taken, %llu capture cycles, "
                    "%llu tasks restored\n",
                    static_cast<unsigned long long>(R.CheckpointsTaken),
                    static_cast<unsigned long long>(R.CheckpointCycles),
                    static_cast<unsigned long long>(R.TasksRestored));
  if (R.TasksRestored && R.CheckpointEvery) {
    // The proof line the checkpoint policy promises: no restored task
    // re-executed more than one capture interval plus one quantum.
    uint64_t Bound = R.CheckpointEvery + R.QuantumCycles;
    OS << strFormat("recovery-bound: max task recovery %llu cycles <= "
                    "checkpoint-every %llu + quantum %llu (%s)\n",
                    static_cast<unsigned long long>(R.MaxTaskRecoveryCycles),
                    static_cast<unsigned long long>(R.CheckpointEvery),
                    static_cast<unsigned long long>(R.QuantumCycles),
                    R.MaxTaskRecoveryCycles <= Bound ? "OK" : "VIOLATED");
  }
  if (R.ByzantineLies || R.CrossChecks || R.ByzantineDetected)
    OS << strFormat("byzantine: %llu lies told, %llu cross-checks, "
                    "%llu detected\n",
                    static_cast<unsigned long long>(R.ByzantineLies),
                    static_cast<unsigned long long>(R.CrossChecks),
                    static_cast<unsigned long long>(R.ByzantineDetected));
  if (R.RaceDetectOn)
    OS << strFormat("races: %llu (%llu accesses checked, %llu cells "
                    "tracked)\n",
                    static_cast<unsigned long long>(R.RacesDetected),
                    static_cast<unsigned long long>(R.AccessesChecked),
                    static_cast<unsigned long long>(R.CellsTracked));
  if (!R.Latencies.empty()) {
    OS << "latency (virtual cycles):\n";
    for (const MetricsReport::LatencySummary &L : R.Latencies)
      OS << strFormat("  %-18s n=%llu mean=%.1f p50=%llu p90=%llu p99=%llu "
                      "max=%llu\n",
                      L.Name.c_str(),
                      static_cast<unsigned long long>(L.Count), L.Mean,
                      static_cast<unsigned long long>(L.P50),
                      static_cast<unsigned long long>(L.P90),
                      static_cast<unsigned long long>(L.P99),
                      static_cast<unsigned long long>(L.Max));
  }
  if (R.TasksMeasured == 0) {
    OS << "task lifetimes: (no tasks measured)\n";
    return;
  }
  OS << strFormat("task lifetimes (%llu tasks, virtual cycles, log2 "
                  "buckets):\n",
                  static_cast<unsigned long long>(R.TasksMeasured));
  for (size_t I = 0; I < R.TaskLifetimeLog2.size(); ++I) {
    if (R.TaskLifetimeLog2[I] == 0)
      continue;
    OS << strFormat("  [%8llu, %8llu): %llu\n",
                    static_cast<unsigned long long>(uint64_t(1) << I),
                    static_cast<unsigned long long>(uint64_t(1) << (I + 1)),
                    static_cast<unsigned long long>(R.TaskLifetimeLog2[I]));
  }
}
