//===----------------------------------------------------------------------===//
///
/// \file
/// Metrics aggregation and rendering.
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "analysis/RaceDetect.h"
#include "core/Task.h"
#include "support/StrUtil.h"

#include <unordered_map>

using namespace mult;

MetricsReport mult::buildMetrics(const Machine &M, const EngineStats &S,
                                 const Gc::Stats &G, const Tracer &Tr,
                                 const RaceDetector *RD) {
  MetricsReport R;
  for (unsigned I = 0; I < M.numProcessors(); ++I) {
    const Processor &P = M.processor(I);
    ProcMetrics PM;
    PM.Id = I;
    PM.BusyCycles = P.BusyCycles;
    PM.IdleCycles = P.IdleCycles;
    PM.GcCycles = P.GcCycles;
    PM.Instructions = P.Instructions;
    PM.Dispatches = P.Dispatches;
    PM.Steals = P.Steals;
    PM.StealAttempts = P.StealAttempts;
    PM.StealsFailed = P.StealsFailed;
    PM.TasksStarted = P.TasksStarted;
    PM.NewQueueHighWater = P.Queues.newHighWater();
    PM.SuspQueueHighWater = P.Queues.suspendedHighWater();
    PM.AdaptiveT = P.Adapt.T;
    R.Procs.push_back(PM);
  }

  R.StealAttempts = S.StealAttempts;
  R.Steals = S.Steals;
  R.StealsFailed = S.StealsFailed;
  R.AdaptiveT = M.adaptiveEnabled();
  R.AdaptWindows = S.AdaptWindows;
  R.ThresholdRaises = S.ThresholdRaises;
  R.ThresholdLowers = S.ThresholdLowers;
  R.Collections = G.Collections;
  R.GcPauseCycles = G.TotalPauseCycles;
  R.FaultsInjected = S.FaultsInjected;
  R.HeapExhaustedStops = S.HeapExhaustedStops;
  R.DeadlocksDetected = S.DeadlocksDetected;
  R.ProcsKilled = S.ProcsKilled;
  R.TasksRecovered = S.TasksRecovered;
  R.TasksOrphaned = S.TasksOrphaned;
  R.RecoveryCycles = S.RecoveryCycles;
  R.WakesRedirected = S.WakesRedirected;
  if (RD) {
    R.RaceDetectOn = true;
    R.RacesDetected = RD->raceCount();
    R.AccessesChecked = RD->accessesChecked();
    R.CellsTracked = RD->cellsTracked();
  }

  // Task lifetimes from the trace: pair each finish with its creation.
  std::unordered_map<uint64_t, uint64_t> Born;
  for (const TraceEvent &E : Tr.events()) {
    if (E.Kind == TraceEventKind::TaskCreate) {
      Born[E.A] = E.Clock;
    } else if (E.Kind == TraceEventKind::TaskFinish) {
      auto It = Born.find(E.A);
      if (It == Born.end() || E.Clock < It->second)
        continue;
      uint64_t Life = E.Clock - It->second;
      unsigned Bucket = 0;
      while (Bucket + 1 < R.TaskLifetimeLog2.size() && (Life >> (Bucket + 1)))
        ++Bucket;
      ++R.TaskLifetimeLog2[Bucket];
      ++R.TasksMeasured;
      Born.erase(It);
    }
  }
  return R;
}

void mult::dumpMetrics(OutStream &OS, const MetricsReport &R) {
  OS << "per-processor virtual time (cycles):\n";
  OS << "  proc       busy       idle         gc      insns  disp  steal"
        "/att(rate)  qhi(new/susp)";
  if (R.AdaptiveT)
    OS << "  T";
  OS << "\n";
  for (const ProcMetrics &P : R.Procs) {
    OS << strFormat(
        "  %4u %10llu %10llu %10llu %10llu %5llu %6llu/%llu(%.0f%%)  %zu/%zu",
        P.Id, static_cast<unsigned long long>(P.BusyCycles),
        static_cast<unsigned long long>(P.IdleCycles),
        static_cast<unsigned long long>(P.GcCycles),
        static_cast<unsigned long long>(P.Instructions),
        static_cast<unsigned long long>(P.Dispatches),
        static_cast<unsigned long long>(P.Steals),
        static_cast<unsigned long long>(P.StealAttempts),
        P.stealSuccessRate() * 100.0, P.NewQueueHighWater,
        P.SuspQueueHighWater);
    if (R.AdaptiveT)
      OS << strFormat("  %u", P.AdaptiveT);
    OS << "\n";
  }
  OS << strFormat("stealing: %llu of %llu attempts succeeded (%llu failed, "
                  "%.1f%% success)\n",
                  static_cast<unsigned long long>(R.Steals),
                  static_cast<unsigned long long>(R.StealAttempts),
                  static_cast<unsigned long long>(R.StealsFailed),
                  R.stealSuccessRate() * 100.0);
  if (R.AdaptiveT)
    OS << strFormat("adaptive-T: %llu windows closed, %llu raises, "
                    "%llu lowers\n",
                    static_cast<unsigned long long>(R.AdaptWindows),
                    static_cast<unsigned long long>(R.ThresholdRaises),
                    static_cast<unsigned long long>(R.ThresholdLowers));
  OS << strFormat("gc: %llu collections, %llu pause cycles\n",
                  static_cast<unsigned long long>(R.Collections),
                  static_cast<unsigned long long>(R.GcPauseCycles));
  if (R.FaultsInjected || R.HeapExhaustedStops || R.DeadlocksDetected)
    OS << strFormat("robustness: %llu faults injected, %llu heap-exhausted "
                    "stops, %llu deadlocks detected\n",
                    static_cast<unsigned long long>(R.FaultsInjected),
                    static_cast<unsigned long long>(R.HeapExhaustedStops),
                    static_cast<unsigned long long>(R.DeadlocksDetected));
  if (R.ProcsKilled || R.TasksRecovered || R.TasksOrphaned)
    OS << strFormat("recovery: %llu procs killed, %llu tasks recovered, "
                    "%llu orphaned, %llu recovery cycles, "
                    "%llu wakes redirected\n",
                    static_cast<unsigned long long>(R.ProcsKilled),
                    static_cast<unsigned long long>(R.TasksRecovered),
                    static_cast<unsigned long long>(R.TasksOrphaned),
                    static_cast<unsigned long long>(R.RecoveryCycles),
                    static_cast<unsigned long long>(R.WakesRedirected));
  if (R.RaceDetectOn)
    OS << strFormat("races: %llu (%llu accesses checked, %llu cells "
                    "tracked)\n",
                    static_cast<unsigned long long>(R.RacesDetected),
                    static_cast<unsigned long long>(R.AccessesChecked),
                    static_cast<unsigned long long>(R.CellsTracked));
  if (R.TasksMeasured == 0) {
    OS << "task lifetimes: (enable tracing to measure)\n";
    return;
  }
  OS << strFormat("task lifetimes (%llu tasks, virtual cycles, log2 "
                  "buckets):\n",
                  static_cast<unsigned long long>(R.TasksMeasured));
  for (size_t I = 0; I < R.TaskLifetimeLog2.size(); ++I) {
    if (R.TaskLifetimeLog2[I] == 0)
      continue;
    OS << strFormat("  [%8llu, %8llu): %llu\n",
                    static_cast<unsigned long long>(uint64_t(1) << I),
                    static_cast<unsigned long long>(uint64_t(1) << (I + 1)),
                    static_cast<unsigned long long>(R.TaskLifetimeLog2[I]));
  }
}
