//===----------------------------------------------------------------------===//
///
/// \file
/// The Lisp prelude: the portable part of Mul-T's user library, loaded
/// into every engine at construction. Native primitives cover the hot
/// paths; everything here is ordinary Mul-T code compiled like user code
/// (with implicit touches), mirroring the paper's "user library" tier.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_LIB_PRELUDE_H
#define MULT_LIB_PRELUDE_H

namespace mult {

inline constexpr const char PreludeSource[] = R"lisp(
(define (caar x) (car (car x)))
(define (cadr x) (car (cdr x)))
(define (cdar x) (cdr (car x)))
(define (cddr x) (cdr (cdr x)))
(define (caddr x) (car (cddr x)))
(define (cdddr x) (cdr (cddr x)))
(define (cadddr x) (car (cdddr x)))
(define (cddddr x) (cdr (cdddr x)))

(define (list? x)
  (cond ((null? x) #t)
        ((pair? x) (list? (cdr x)))
        (else #f)))

(define (map f l)
  (if (null? l)
      '()
      (cons (f (car l)) (map f (cdr l)))))

(define (map2 f l1 l2)
  (if (null? l1)
      '()
      (cons (f (car l1) (car l2)) (map2 f (cdr l1) (cdr l2)))))

(define (for-each f l)
  (if (null? l)
      #t
      (begin (f (car l)) (for-each f (cdr l)))))

(define (filter p l)
  (cond ((null? l) '())
        ((p (car l)) (cons (car l) (filter p (cdr l))))
        (else (filter p (cdr l)))))

(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))

(define (fold-right f init l)
  (if (null? l) init (f (car l) (fold-right f init (cdr l)))))

(define (list-tail l n)
  (if (= n 0) l (list-tail (cdr l) (- n 1))))

(define (list-ref l n) (car (list-tail l n)))

(define (last-pair l)
  (if (null? (cdr l)) l (last-pair (cdr l))))

(define (append! a b)
  (if (null? a)
      b
      (begin (set-cdr! (last-pair a) b) a)))

(define (add1 n) (+ n 1))
(define (sub1 n) (- n 1))
(define (1+ n) (+ n 1))
(define (-1+ n) (- n 1))

(define (assv k l) (assq k l))
(define (memv k l) (memq k l))

(define (iota n)
  (let loop ((i 0))
    (if (= i n) '() (cons i (loop (+ i 1))))))

(define (print x) (display x) (newline))
)lisp";

} // namespace mult

#endif // MULT_LIB_PRELUDE_H
