//===----------------------------------------------------------------------===//
///
/// \file
/// Determinacy-race detection over the virtual-time trace stream.
///
/// Futures give no mutual exclusion (paper section 2.2): a child task's
/// side effects on boxes, vectors, or fluid bindings can race with the
/// spawning continuation, and whether the program notices depends on the
/// schedule. The detector consumes the tracer's event stream — either
/// online, attached as the Tracer's observer, or offline over a loaded
/// trace — and checks every instrumented mutable-cell access against the
/// *series-parallel* relation of the run, in the style of SP-bags
/// (Feng & Leiserson) realized with FastTrack-shaped vector clocks
/// (Utterback et al., PAPERS.md): two accesses to the same cell slot race
/// when neither logically precedes the other and at least one is a write,
/// regardless of how this particular schedule happened to order them.
///
/// The series-parallel relation is rebuilt from the DAG edges the trace
/// already carries (see DESIGN.md "The trace is a task DAG"):
///
///   - TaskCreate        child begins after the spawn point (C = parent);
///   - FutureResolve /   the resolve serial links each resolve to the
///     TouchHit          touches it enables;
///   - TaskResume        a woken task begins after its waker (C = waker);
///   - InlineDecision /  a stolen lazy-seam continuation begins after the
///     SeamSteal         seam push (linked by the seam serial);
///   - SemAcquire /      semaphore P/V pairs add happens-before
///     SemRelease        cross-edges (lock-style, per semaphore).
///
/// Vector clocks are *sparse and lazily materialized*: a task only gets a
/// clock component once it touches a tracked cell, so programs that spawn
/// hundreds of thousands of pure tasks (the bench suite) pay almost
/// nothing. Emission order of the serial simulator is causally
/// consistent, so the stream needs no sorting.
///
/// The online detector observes events *before* sink buffering, so it is
/// complete even over a small ring sink. Offline analysis refuses a
/// dropped (ring-truncated) trace outright: a missing spawn or resolve
/// edge would surface as a false race or mask a real one.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_ANALYSIS_RACEDETECT_H
#define MULT_ANALYSIS_RACEDETECT_H

#include "obs/Trace.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mult {

/// The checker. Feed it events (onTraceEvent) in emission order; query
/// races() / raceCount() afterwards or at any point mid-stream.
class RaceDetector : public TraceObserver {
public:
  /// One side of a racing pair.
  struct Access {
    uint64_t Task = ~uint64_t(0); ///< Full task id of the accessor.
    uint64_t Clock = 0;           ///< Virtual time of the access.
    uint32_t Slot = 0;            ///< Cell slot (vector index; 0 for boxes).
    uint32_t SiteId = 0; ///< Accessor's future-site id + 1; 0 = no site
                         ///< (a top-level root or untraced spawn).
    uint8_t Proc = 0;
    bool Write = false;
  };

  /// Two logically-parallel accesses to the same cell slot, at least one
  /// a write. Prior is the one that appeared first in the stream.
  struct Race {
    uint64_t Cell = 0; ///< Engine cell serial (stable across GC).
    uint32_t Slot = 0;
    Access Prior;
    Access Current;
  };

  void onTraceEvent(const TraceEvent &E) override;

  /// Distinct races found so far (capped at kMaxStoredRaces entries;
  /// raceCount() keeps the uncapped total).
  const std::vector<Race> &races() const { return Races; }
  uint64_t raceCount() const { return RaceN; }
  uint64_t accessesChecked() const { return AccessN; }
  uint64_t cellsTracked() const { return CellsSeen.size(); }

  /// Forgets everything; the next stream describes a fresh run.
  void clear();

  /// Renders one race as a two-line report naming both accesses with
  /// their future-site provenance (\p SiteNames is the tracer's table).
  std::string describe(const Race &R,
                       const std::vector<std::string> &SiteNames) const;

  static constexpr size_t kMaxStoredRaces = 64;

private:
  /// Sparse vector clock: dense task index -> tick. Only *material*
  /// tasks (ones that accessed a tracked cell) ever own a component.
  using VClock = std::map<uint32_t, uint32_t>;

  struct TaskState {
    VClock VC;         ///< Joined knowledge of other tasks' ticks.
    uint32_t Tick = 0; ///< Own component; 0 until first tracked access.
    uint32_t SiteId = 0; ///< Spawn-site provenance + 1.
  };
  struct ReadEpoch {
    uint32_t Idx = 0;
    uint32_t Tick = 0;
    Access Info;
  };
  struct SlotState {
    uint32_t WIdx = ~0u; ///< Last writer's dense index; ~0 = never written.
    uint32_t WTick = 0;
    Access WInfo;
    std::vector<ReadEpoch> Reads; ///< Reads since the last ordered write.
  };

  uint32_t taskIdx(uint64_t Id);
  /// Snapshot of \p Idx's knowledge for a fork/release edge; bumps the
  /// publisher's own tick so its later accesses stay parallel.
  VClock publish(uint32_t Idx);
  void join(uint32_t Idx, const VClock &Pub);
  bool ordered(uint32_t PriorIdx, uint32_t PriorTick, uint32_t CurIdx) const;
  void report(uint64_t Cell, const Access &Prior, const Access &Cur);
  void access(const TraceEvent &E, bool Write);
  uint64_t runningOn(uint8_t Proc) const;

  std::unordered_map<uint64_t, uint32_t> TaskIdxMap; ///< task id -> dense
  std::vector<TaskState> Tasks;
  std::unordered_map<uint64_t, VClock> ResolveVC; ///< resolve serial
  std::unordered_map<uint64_t, std::pair<VClock, uint32_t>>
      SeamVC;                                 ///< seam serial -> (VC, site+1)
  std::unordered_map<uint64_t, VClock> SemVC; ///< sem cell serial
  std::map<std::pair<uint64_t, uint32_t>, SlotState> Slots; ///< (cell, slot)
  std::unordered_set<uint64_t> CellsSeen;
  std::vector<uint64_t> Running; ///< per-proc task id from TaskStart
  std::set<std::tuple<uint64_t, uint32_t, uint64_t, uint64_t>> Reported;
  std::vector<Race> Races;
  uint64_t RaceN = 0;
  uint64_t AccessN = 0;
};

/// Offline analysis: replays \p Events (a Tracer buffer or a loaded trace
/// file) through \p D. Refuses to run when \p Dropped != 0 — a truncated
/// ring trace is missing DAG edges and would report false negatives (and
/// false positives); \p Err says so. \p D is cleared first either way.
bool analyzeRaces(const std::vector<TraceEvent> &Events, uint64_t Dropped,
                  RaceDetector &D, std::string &Err);

} // namespace mult

#endif // MULT_ANALYSIS_RACEDETECT_H
