//===----------------------------------------------------------------------===//
///
/// \file
/// SP-relation vector-clock race checking (see RaceDetect.h).
///
//===----------------------------------------------------------------------===//

#include "analysis/RaceDetect.h"

#include "support/StrUtil.h"

using namespace mult;

namespace {
constexpr uint64_t NoTask = ~uint64_t(0); // core's InvalidTask
constexpr uint32_t NoIdx = ~0u;
} // namespace

uint32_t RaceDetector::taskIdx(uint64_t Id) {
  auto [It, Inserted] =
      TaskIdxMap.try_emplace(Id, static_cast<uint32_t>(Tasks.size()));
  if (Inserted)
    Tasks.emplace_back();
  return It->second;
}

RaceDetector::VClock RaceDetector::publish(uint32_t Idx) {
  TaskState &T = Tasks[Idx];
  VClock Pub = T.VC;
  if (T.Tick) {
    Pub[Idx] = T.Tick;
    ++T.Tick; // accesses after this fork/release point stay parallel
  }
  return Pub;
}

void RaceDetector::join(uint32_t Idx, const VClock &Pub) {
  if (Pub.empty())
    return;
  VClock &VC = Tasks[Idx].VC;
  for (const auto &[I, Tick] : Pub) {
    uint32_t &Cur = VC[I];
    if (Tick > Cur)
      Cur = Tick;
  }
}

bool RaceDetector::ordered(uint32_t PriorIdx, uint32_t PriorTick,
                           uint32_t CurIdx) const {
  if (PriorIdx == CurIdx)
    return true; // program order within one task
  const VClock &VC = Tasks[CurIdx].VC;
  auto It = VC.find(PriorIdx);
  return It != VC.end() && It->second >= PriorTick;
}

uint64_t RaceDetector::runningOn(uint8_t Proc) const {
  return Proc < Running.size() ? Running[Proc] : NoTask;
}

void RaceDetector::report(uint64_t Cell, const Access &Prior,
                          const Access &Cur) {
  if (!Reported.emplace(Cell, Cur.Slot, Prior.Task, Cur.Task).second)
    return; // same pair of tasks on the same slot already reported
  ++RaceN;
  if (Races.size() < kMaxStoredRaces)
    Races.push_back({Cell, Cur.Slot, Prior, Cur});
}

void RaceDetector::access(const TraceEvent &E, bool Write) {
  ++AccessN;
  CellsSeen.insert(E.A);
  uint32_t Idx = taskIdx(E.C);
  TaskState &T = Tasks[Idx];
  if (T.Tick == 0)
    T.Tick = 1; // materialize: this task now owns a clock component

  Access Cur;
  Cur.Task = E.C;
  Cur.Clock = E.Clock;
  Cur.Slot = E.B;
  Cur.SiteId = T.SiteId;
  Cur.Proc = E.Proc;
  Cur.Write = Write;

  SlotState &S = Slots[{E.A, E.B}];
  if (S.WIdx != NoIdx && !ordered(S.WIdx, S.WTick, Idx))
    report(E.A, S.WInfo, Cur);
  if (Write) {
    for (const ReadEpoch &R : S.Reads)
      if (!ordered(R.Idx, R.Tick, Idx))
        report(E.A, R.Info, Cur);
    S.WIdx = Idx;
    S.WTick = T.Tick;
    S.WInfo = Cur;
    S.Reads.clear();
    return;
  }
  for (ReadEpoch &R : S.Reads)
    if (R.Idx == Idx) {
      R.Tick = T.Tick;
      R.Info = Cur;
      return;
    }
  S.Reads.push_back({Idx, T.Tick, Cur});
}

void RaceDetector::onTraceEvent(const TraceEvent &E) {
  switch (E.Kind) {
  case TraceEventKind::TaskCreate: {
    uint32_t Child = taskIdx(E.A);
    if (E.C != NoTask) {
      join(Child, publish(taskIdx(E.C)));
    } else {
      // A parentless task is a run root: Machine::run starts from
      // quiescence, so everything already seen happens-before it. This
      // serializes successive top-level evals -- a REPL define does not
      // "race" with the program run after it.
      VClock &VC = Tasks[Child].VC;
      for (uint32_t I = 0; I < Tasks.size(); ++I)
        if (Tasks[I].Tick > VC[I])
          VC[I] = Tasks[I].Tick;
    }
    break;
  }
  case TraceEventKind::TaskStart:
    if (E.Proc >= Running.size())
      Running.resize(E.Proc + 1, NoTask);
    Running[E.Proc] = E.A;
    break;
  case TraceEventKind::FutureCreate:
    Tasks[taskIdx(E.A)].SiteId = static_cast<uint32_t>(E.B) + 1;
    break;
  case TraceEventKind::FutureResolve: {
    // The resolver is whatever task the emitting processor last started.
    if (E.C == 0)
      break;
    uint64_t Resolver = runningOn(E.Proc);
    ResolveVC[E.C] =
        Resolver != NoTask ? publish(taskIdx(Resolver)) : VClock();
    break;
  }
  case TraceEventKind::TouchHit: {
    if (E.C == 0)
      break; // resolved while tracing was off; no edge to join
    auto It = ResolveVC.find(E.C);
    if (It != ResolveVC.end())
      join(taskIdx(E.A), It->second);
    break;
  }
  case TraceEventKind::TaskResume:
    if (E.C != NoTask)
      join(taskIdx(E.A), publish(taskIdx(E.C)));
    break;
  case TraceEventKind::InlineDecision: {
    // A lazy seam (A == 2) is a fork point: snapshot the pusher so a
    // stolen continuation starts parallel to the child code the pusher
    // keeps running.
    if (E.A != 2)
      break;
    uint64_t Pusher = runningOn(E.Proc);
    if (Pusher != NoTask)
      SeamVC[E.C] = {publish(taskIdx(Pusher)),
                     static_cast<uint32_t>(E.B) + 1};
    break;
  }
  case TraceEventKind::SeamSteal: {
    uint32_t Idx = taskIdx(E.A);
    auto It = SeamVC.find(E.C);
    if (It != SeamVC.end()) {
      join(Idx, It->second.first);
      Tasks[Idx].SiteId = It->second.second;
      SeamVC.erase(It);
    }
    break;
  }
  case TraceEventKind::SemAcquire: {
    auto It = SemVC.find(E.A);
    if (It != SemVC.end())
      join(taskIdx(E.C), It->second);
    break;
  }
  case TraceEventKind::SemRelease: {
    // Accumulate rather than overwrite: transitive release knowledge
    // only adds happens-before edges (conservative, fewer false races).
    VClock Pub = publish(taskIdx(E.C));
    VClock &L = SemVC[E.A];
    for (const auto &[I, Tick] : Pub) {
      uint32_t &Cur = L[I];
      if (Tick > Cur)
        Cur = Tick;
    }
    break;
  }
  case TraceEventKind::CellRead:
    access(E, /*Write=*/false);
    break;
  case TraceEventKind::CellWrite:
    access(E, /*Write=*/true);
    break;
  default:
    break; // lifecycle/GC/idle/fault events carry no SP edges
  }
}

void RaceDetector::clear() {
  TaskIdxMap.clear();
  Tasks.clear();
  ResolveVC.clear();
  SeamVC.clear();
  SemVC.clear();
  Slots.clear();
  CellsSeen.clear();
  Running.clear();
  Reported.clear();
  Races.clear();
  RaceN = 0;
  AccessN = 0;
}

std::string
RaceDetector::describe(const Race &R,
                       const std::vector<std::string> &SiteNames) const {
  auto Side = [&](const Access &A) {
    std::string Site =
        A.SiteId && A.SiteId <= SiteNames.size()
            ? "spawned at " + SiteNames[A.SiteId - 1]
            : std::string("top level");
    return strFormat("%s by task %llu (%s) at cycle %llu on proc %u",
                     A.Write ? "write" : "read ",
                     static_cast<unsigned long long>(A.Task & 0xffffffffu),
                     Site.c_str(), static_cast<unsigned long long>(A.Clock),
                     static_cast<unsigned>(A.Proc));
  };
  return strFormat("race on cell %llu slot %u:\n  %s\n  %s\n",
                   static_cast<unsigned long long>(R.Cell), R.Slot,
                   Side(R.Prior).c_str(), Side(R.Current).c_str());
}

bool mult::analyzeRaces(const std::vector<TraceEvent> &Events,
                        uint64_t Dropped, RaceDetector &D, std::string &Err) {
  D.clear();
  if (Dropped != 0) {
    Err = strFormat(
        "trace dropped %llu events (ring overflow or sink error); the "
        "series-parallel relation is incomplete and race verdicts would be "
        "unreliable -- rerun with an unbounded/larger sink or the online "
        "detector (MULT_RACE=1)",
        static_cast<unsigned long long>(Dropped));
    return false;
  }
  for (const TraceEvent &E : Events)
    D.onTraceEvent(E);
  return true;
}
