//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-plan spec parsing and formatting.
///
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <cstdlib>

namespace mult {

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::AllocFail:
    return "alloc-fail";
  case FaultKind::SpuriousGc:
    return "spurious-gc";
  case FaultKind::SpawnError:
    return "spawn-error";
  case FaultKind::TouchError:
    return "touch-error";
  case FaultKind::StealFail:
    return "steal-fail";
  case FaultKind::QueueClamp:
    return "queue-clamp";
  case FaultKind::Stall:
    return "stall";
  case FaultKind::AdaptClamp:
    return "adapt-clamp";
  case FaultKind::AdaptReset:
    return "adapt-reset";
  case FaultKind::ProcKill:
    return "proc-kill";
  case FaultKind::SeamSplitFail:
    return "seam-split-fail";
  case FaultKind::ProcLie:
    return "proc-lie";
  }
  return "unknown-fault";
}

bool FaultPlan::empty() const {
  return AllocFailAt.empty() && AllocFailEvery == 0 && GcAtCycles.empty() &&
         SpawnErrorAt.empty() && TouchErrorAt.empty() && StealFailProb == 0.0 &&
         StealFailAt.empty() && !QueueCap && Stalls.empty() &&
         AdaptClamps.empty() && AdaptResetAt.empty() && ProcKills.empty() &&
         ProcLies.empty() && CrossCheckProb < 0.0 && SeamSplitFailAt.empty();
}

namespace {

void sortUnique(std::vector<uint64_t> &V) {
  std::sort(V.begin(), V.end());
  V.erase(std::unique(V.begin(), V.end()), V.end());
}

std::string joinList(const std::vector<uint64_t> &V) {
  std::string S;
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      S += ",";
    S += std::to_string(V[I]);
  }
  return S;
}

std::vector<std::string_view> splitOn(std::string_view S, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Parts.push_back(S.substr(Pos));
      break;
    }
    Parts.push_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
  return Parts;
}

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t'))
    S.remove_suffix(1);
  return S;
}

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Digit = uint64_t(C - '0');
    if (V > (~0ull - Digit) / 10)
      return false;
    V = V * 10 + Digit;
  }
  Out = V;
  return true;
}

bool parseU64List(std::string_view S, std::vector<uint64_t> &Out) {
  for (std::string_view Part : splitOn(S, ',')) {
    uint64_t V;
    if (!parseU64(trim(Part), V))
      return false;
    Out.push_back(V);
  }
  return !Out.empty();
}

bool parseProb(std::string_view S, double &Out) {
  std::string Buf(S);
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size() || V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

/// One stall window: PROC@BEGIN+LENGTH.
bool parseStall(std::string_view S, FaultPlan::StallWindow &Out) {
  size_t At = S.find('@');
  if (At == std::string_view::npos)
    return false;
  size_t Plus = S.find('+', At + 1);
  if (Plus == std::string_view::npos)
    return false;
  uint64_t Proc, Begin, Length;
  if (!parseU64(trim(S.substr(0, At)), Proc) ||
      !parseU64(trim(S.substr(At + 1, Plus - At - 1)), Begin) ||
      !parseU64(trim(S.substr(Plus + 1)), Length))
    return false;
  if (Proc > 0xffff || Length == 0)
    return false;
  Out.Proc = unsigned(Proc);
  Out.Begin = Begin;
  Out.Length = Length;
  return true;
}

std::string formatProb(double P) {
  std::string S = strFormat("%g", P);
  return S;
}

/// One processor kill: PROC@CYCLES.
bool parseProcKill(std::string_view S, FaultPlan::ProcKillAt &Out) {
  size_t At = S.find('@');
  if (At == std::string_view::npos)
    return false;
  uint64_t Proc, Cycles;
  if (!parseU64(trim(S.substr(0, At)), Proc) ||
      !parseU64(trim(S.substr(At + 1)), Cycles))
    return false;
  if (Proc > 0xffff)
    return false;
  Out.Proc = unsigned(Proc);
  Out.AtCycles = Cycles;
  return true;
}

/// One adapt clamp: WINDOW@VALUE.
bool parseAdaptClamp(std::string_view S, FaultPlan::AdaptClampAt &Out) {
  size_t At = S.find('@');
  if (At == std::string_view::npos)
    return false;
  uint64_t Window, Value;
  if (!parseU64(trim(S.substr(0, At)), Window) ||
      !parseU64(trim(S.substr(At + 1)), Value))
    return false;
  if (Window == 0 || Value > 0xffffffffull)
    return false;
  Out.Window = Window;
  Out.Value = uint32_t(Value);
  return true;
}

} // namespace

std::string FaultPlan::format() const {
  std::string S;
  auto Clause = [&](const std::string &C) {
    if (!S.empty())
      S += ";";
    S += C;
  };
  if (Seed != FaultPlan().Seed)
    Clause("seed=" + std::to_string(Seed));
  if (!AllocFailAt.empty())
    Clause("alloc-fail=" + joinList(AllocFailAt));
  if (AllocFailEvery)
    Clause("alloc-fail-every=" + std::to_string(AllocFailEvery));
  if (!GcAtCycles.empty())
    Clause("gc-at=" + joinList(GcAtCycles));
  if (!SpawnErrorAt.empty())
    Clause("spawn-error=" + joinList(SpawnErrorAt));
  if (!TouchErrorAt.empty())
    Clause("touch-error=" + joinList(TouchErrorAt));
  if (StealFailProb != 0.0)
    Clause("steal-fail=" + formatProb(StealFailProb));
  if (!StealFailAt.empty())
    Clause("steal-fail-at=" + joinList(StealFailAt));
  if (QueueCap)
    Clause("queue-cap=" + std::to_string(*QueueCap));
  if (!Stalls.empty()) {
    std::string L;
    for (size_t I = 0; I < Stalls.size(); ++I) {
      if (I)
        L += ",";
      L += strFormat("%u@%llu+%llu", Stalls[I].Proc,
                     (unsigned long long)Stalls[I].Begin,
                     (unsigned long long)Stalls[I].Length);
    }
    Clause("stall=" + L);
  }
  if (!AdaptClamps.empty()) {
    std::string L;
    for (size_t I = 0; I < AdaptClamps.size(); ++I) {
      if (I)
        L += ",";
      L += strFormat("%llu@%u", (unsigned long long)AdaptClamps[I].Window,
                     AdaptClamps[I].Value);
    }
    Clause("adapt-clamp=" + L);
  }
  if (!AdaptResetAt.empty())
    Clause("adapt-reset=" + joinList(AdaptResetAt));
  if (!ProcKills.empty()) {
    std::string L;
    for (size_t I = 0; I < ProcKills.size(); ++I) {
      if (I)
        L += ",";
      L += strFormat("%u@%llu", ProcKills[I].Proc,
                     (unsigned long long)ProcKills[I].AtCycles);
    }
    Clause("proc-kill=" + L);
  }
  if (!ProcLies.empty()) {
    std::string L;
    for (size_t I = 0; I < ProcLies.size(); ++I) {
      if (I)
        L += ",";
      L += strFormat("%u@%llu", ProcLies[I].Proc,
                     (unsigned long long)ProcLies[I].AtCycles);
    }
    Clause("proc-lie=" + L);
  }
  if (CrossCheckProb >= 0.0)
    Clause("cross-check=" + formatProb(CrossCheckProb));
  if (!SeamSplitFailAt.empty())
    Clause("seam-split-fail=" + joinList(SeamSplitFailAt));
  return S;
}

bool FaultPlan::parse(std::string_view Spec, FaultPlan &Out, std::string &Err) {
  Out = FaultPlan();
  for (std::string_view RawClause : splitOn(Spec, ';')) {
    std::string_view C = trim(RawClause);
    if (C.empty())
      continue;
    size_t Eq = C.find('=');
    if (Eq == std::string_view::npos) {
      Err = strFormat("clause '%.*s' has no '='", int(C.size()), C.data());
      return false;
    }
    std::string_view Key = trim(C.substr(0, Eq));
    std::string_view Val = trim(C.substr(Eq + 1));
    bool Ok;
    if (Key == "seed") {
      Ok = parseU64(Val, Out.Seed);
    } else if (Key == "alloc-fail") {
      Ok = parseU64List(Val, Out.AllocFailAt);
      Ok = Ok && std::find(Out.AllocFailAt.begin(), Out.AllocFailAt.end(),
                           0ull) == Out.AllocFailAt.end();
    } else if (Key == "alloc-fail-every") {
      Ok = parseU64(Val, Out.AllocFailEvery) && Out.AllocFailEvery != 0;
    } else if (Key == "gc-at") {
      Ok = parseU64List(Val, Out.GcAtCycles);
    } else if (Key == "spawn-error") {
      Ok = parseU64List(Val, Out.SpawnErrorAt);
      Ok = Ok && std::find(Out.SpawnErrorAt.begin(), Out.SpawnErrorAt.end(),
                           0ull) == Out.SpawnErrorAt.end();
    } else if (Key == "touch-error") {
      Ok = parseU64List(Val, Out.TouchErrorAt);
      Ok = Ok && std::find(Out.TouchErrorAt.begin(), Out.TouchErrorAt.end(),
                           0ull) == Out.TouchErrorAt.end();
    } else if (Key == "steal-fail") {
      Ok = parseProb(Val, Out.StealFailProb);
    } else if (Key == "steal-fail-at") {
      Ok = parseU64List(Val, Out.StealFailAt);
      Ok = Ok && std::find(Out.StealFailAt.begin(), Out.StealFailAt.end(),
                           0ull) == Out.StealFailAt.end();
    } else if (Key == "queue-cap") {
      uint64_t Cap;
      Ok = parseU64(Val, Cap) && Cap <= 0xffffffffull;
      if (Ok)
        Out.QueueCap = uint32_t(Cap);
    } else if (Key == "stall") {
      Ok = !Val.empty();
      for (std::string_view Part : splitOn(Val, ',')) {
        StallWindow W;
        if (!parseStall(trim(Part), W)) {
          Ok = false;
          break;
        }
        Out.Stalls.push_back(W);
      }
    } else if (Key == "adapt-clamp") {
      Ok = !Val.empty();
      for (std::string_view Part : splitOn(Val, ',')) {
        AdaptClampAt A;
        if (!parseAdaptClamp(trim(Part), A)) {
          Ok = false;
          break;
        }
        Out.AdaptClamps.push_back(A);
      }
    } else if (Key == "adapt-reset") {
      Ok = parseU64List(Val, Out.AdaptResetAt);
      Ok = Ok && std::find(Out.AdaptResetAt.begin(), Out.AdaptResetAt.end(),
                           0ull) == Out.AdaptResetAt.end();
    } else if (Key == "proc-kill") {
      Ok = !Val.empty();
      for (std::string_view Part : splitOn(Val, ',')) {
        ProcKillAt K;
        if (!parseProcKill(trim(Part), K)) {
          Ok = false;
          break;
        }
        Out.ProcKills.push_back(K);
      }
    } else if (Key == "proc-lie") {
      Ok = !Val.empty();
      for (std::string_view Part : splitOn(Val, ',')) {
        ProcKillAt L;
        if (!parseProcKill(trim(Part), L)) {
          Ok = false;
          break;
        }
        Out.ProcLies.push_back(L);
      }
    } else if (Key == "cross-check") {
      Ok = parseProb(Val, Out.CrossCheckProb);
    } else if (Key == "seam-split-fail") {
      Ok = parseU64List(Val, Out.SeamSplitFailAt);
      Ok = Ok && std::find(Out.SeamSplitFailAt.begin(),
                           Out.SeamSplitFailAt.end(),
                           0ull) == Out.SeamSplitFailAt.end();
    } else {
      Err = strFormat("unknown fault clause '%.*s'", int(Key.size()),
                      Key.data());
      return false;
    }
    if (!Ok) {
      Err = strFormat("bad value in clause '%.*s'", int(C.size()), C.data());
      return false;
    }
  }
  sortUnique(Out.AllocFailAt);
  sortUnique(Out.GcAtCycles);
  sortUnique(Out.SpawnErrorAt);
  sortUnique(Out.TouchErrorAt);
  sortUnique(Out.StealFailAt);
  sortUnique(Out.AdaptResetAt);
  sortUnique(Out.SeamSplitFailAt);
  std::stable_sort(Out.Stalls.begin(), Out.Stalls.end(),
                   [](const StallWindow &A, const StallWindow &B) {
                     return A.Begin < B.Begin;
                   });
  std::stable_sort(Out.AdaptClamps.begin(), Out.AdaptClamps.end(),
                   [](const AdaptClampAt &A, const AdaptClampAt &B) {
                     return A.Window < B.Window;
                   });
  std::stable_sort(Out.ProcKills.begin(), Out.ProcKills.end(),
                   [](const ProcKillAt &A, const ProcKillAt &B) {
                     return A.AtCycles < B.AtCycles;
                   });
  std::stable_sort(Out.ProcLies.begin(), Out.ProcLies.end(),
                   [](const ProcKillAt &A, const ProcKillAt &B) {
                     return A.AtCycles < B.AtCycles;
                   });
  return true;
}

} // namespace mult
