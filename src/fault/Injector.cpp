//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-injector counter machinery.
///
//===----------------------------------------------------------------------===//

#include "fault/Injector.h"

namespace mult {

void FaultInjector::configure(const FaultPlan &P) {
  Plan = P;
  Armed = false;
  Rng = Prng(Plan.Seed);
  LieRng = Prng(Plan.Seed ^ kLieStream);
  AllocN = SpawnN = TouchN = StealN = SeamSplitN = 0;
  AllocIdx = GcIdx = SpawnIdx = TouchIdx = StealIdx = SeamSplitIdx = 0;
  AdaptClampIdx = AdaptResetIdx = ProcKillIdx = ProcLieIdx = 0;
  StallDone.assign(Plan.Stalls.size(), false);
  PendingInjectedAllocFail = false;
}

namespace {

/// Advances \p Idx past every entry of \p Sorted that is <= \p N and
/// reports whether \p N itself was listed.
bool hitOrdinal(const std::vector<uint64_t> &Sorted, size_t &Idx, uint64_t N) {
  bool Hit = false;
  while (Idx < Sorted.size() && Sorted[Idx] <= N) {
    if (Sorted[Idx] == N)
      Hit = true;
    ++Idx;
  }
  return Hit;
}

} // namespace

bool FaultInjector::shouldFailAlloc() {
  if (!Armed)
    return false;
  ++AllocN;
  bool Fail = hitOrdinal(Plan.AllocFailAt, AllocIdx, AllocN);
  if (Plan.AllocFailEvery && AllocN % Plan.AllocFailEvery == 0)
    Fail = true;
  if (Fail)
    PendingInjectedAllocFail = true;
  return Fail;
}

bool FaultInjector::consumeInjectedAllocFail() {
  bool Was = PendingInjectedAllocFail;
  PendingInjectedAllocFail = false;
  return Was;
}

bool FaultInjector::takeForcedGc(uint64_t RelClock, uint64_t &MarkOut) {
  if (!Armed || GcIdx >= Plan.GcAtCycles.size() ||
      Plan.GcAtCycles[GcIdx] > RelClock)
    return false;
  MarkOut = Plan.GcAtCycles[GcIdx];
  ++GcIdx;
  return true;
}

bool FaultInjector::shouldErrorSpawn() {
  if (!Armed)
    return false;
  ++SpawnN;
  return hitOrdinal(Plan.SpawnErrorAt, SpawnIdx, SpawnN);
}

bool FaultInjector::shouldErrorTouch() {
  if (!Armed)
    return false;
  ++TouchN;
  return hitOrdinal(Plan.TouchErrorAt, TouchIdx, TouchN);
}

bool FaultInjector::shouldFailSteal() {
  if (!Armed)
    return false;
  ++StealN;
  bool Fail = hitOrdinal(Plan.StealFailAt, StealIdx, StealN);
  if (Plan.StealFailProb > 0.0) {
    // One PRNG draw per probe keeps the stream aligned with the probe
    // ordinal regardless of which probes the ordinal list already fails.
    double Draw = double(Rng.next() >> 11) * 0x1.0p-53;
    if (Draw < Plan.StealFailProb)
      Fail = true;
  }
  return Fail;
}

bool FaultInjector::takeStall(unsigned Proc, uint64_t RelClock,
                              uint64_t &EndRelOut) {
  if (!Armed)
    return false;
  for (size_t I = 0; I < Plan.Stalls.size(); ++I) {
    const FaultPlan::StallWindow &W = Plan.Stalls[I];
    if (StallDone[I] || W.Proc != Proc || W.Begin > RelClock)
      continue;
    StallDone[I] = true;
    EndRelOut = W.Begin + W.Length;
    if (EndRelOut <= RelClock)
      continue; // window already elapsed entirely; nothing to stall
    return true;
  }
  return false;
}

bool FaultInjector::takeAdaptClamp(uint64_t Ordinal, uint32_t &ValueOut) {
  if (!Armed)
    return false;
  bool Hit = false;
  while (AdaptClampIdx < Plan.AdaptClamps.size() &&
         Plan.AdaptClamps[AdaptClampIdx].Window <= Ordinal) {
    if (Plan.AdaptClamps[AdaptClampIdx].Window == Ordinal) {
      Hit = true;
      ValueOut = Plan.AdaptClamps[AdaptClampIdx].Value;
    }
    ++AdaptClampIdx;
  }
  return Hit;
}

bool FaultInjector::takeAdaptReset(uint64_t Ordinal) {
  if (!Armed)
    return false;
  return hitOrdinal(Plan.AdaptResetAt, AdaptResetIdx, Ordinal);
}

bool FaultInjector::takeProcKill(uint64_t RelClock, unsigned &ProcOut,
                                 uint64_t &AtOut) {
  if (!Armed || ProcKillIdx >= Plan.ProcKills.size() ||
      Plan.ProcKills[ProcKillIdx].AtCycles > RelClock)
    return false;
  ProcOut = Plan.ProcKills[ProcKillIdx].Proc;
  AtOut = Plan.ProcKills[ProcKillIdx].AtCycles;
  ++ProcKillIdx;
  return true;
}

bool FaultInjector::takeProcLie(uint64_t RelClock, unsigned &ProcOut,
                                uint64_t &AtOut) {
  if (!Armed || ProcLieIdx >= Plan.ProcLies.size() ||
      Plan.ProcLies[ProcLieIdx].AtCycles > RelClock)
    return false;
  ProcOut = Plan.ProcLies[ProcLieIdx].Proc;
  AtOut = Plan.ProcLies[ProcLieIdx].AtCycles;
  ++ProcLieIdx;
  return true;
}

bool FaultInjector::shouldCrossCheck() {
  if (!crossChecksArmed())
    return false;
  double Draw = double(LieRng.next() >> 11) * 0x1.0p-53;
  return Draw < crossCheckProb();
}

bool FaultInjector::shouldFailSeamSplit() {
  if (!Armed)
    return false;
  ++SeamSplitN;
  return hitOrdinal(Plan.SeamSplitFailAt, SeamSplitIdx, SeamSplitN);
}

} // namespace mult
