//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault plans (the chaos-engineering layer).
///
/// A FaultPlan describes *when* the engine should misbehave, in terms of
/// deterministic counters and virtual-time offsets, so the same plan + the
/// same program + the same seed reproduce the same adversity bit-for-bit.
/// The paper's engine survives real adversity (queue overflow, heap
/// exhaustion, errors in parallel tasks) by design; the plan lets us
/// subject the reproduction to each of those on demand and replay any
/// failure from its spec string.
///
/// Spec grammar (clauses separated by ';', lists by ','):
///
///   seed=U64                 PRNG seed for probabilistic clauses
///   alloc-fail=N[,N...]      fail the Nth mutator allocation (1-based,
///                            counted after arming; a real GC then runs
///                            and the retry succeeds)
///   alloc-fail-every=K       additionally fail every Kth allocation
///   gc-at=C[,C...]           force a spurious collection once the run
///                            clock reaches C (run-start-relative;
///                            consumed once)
///   spawn-error=N[,N...]     raise `injected-fault` at the Nth future
///                            spawn (group stops; resume retries)
///   touch-error=N[,N...]     raise `injected-fault` at the Nth executed
///                            touch instruction
///   steal-fail=P             each steal probe fails with probability P
///   steal-fail-at=N[,N...]   fail the Nth steal probe exactly
///   queue-cap=Q              clamp task-queue capacity: futures inline
///                            when the spawning processor already holds
///                            >= Q queued tasks (the paper's
///                            queue-overflow degradation)
///   stall=P@B+L[,P@B+L...]   processor P goes offline for L cycles once
///                            the run clock reaches B (run-start-relative;
///                            models a slow or failed board on the bus)
///   adapt-clamp=N@V[,...]    when the Nth adaptation window closes
///                            (machine-wide 1-based ordinal), clamp the
///                            closing processor's adaptive inlining
///                            threshold to V and discard its pending
///                            hysteresis votes
///   adapt-reset=N[,N...]     when the Nth adaptation window closes,
///                            discard its samples and pending votes (the
///                            threshold keeps its value)
///   proc-kill=P@C[,P@C...]   fail-stop processor P once the run clock
///                            reaches C (run-start-relative; consumed
///                            once). The engine drains the dead
///                            processor's queues onto survivors and
///                            re-spawns lost futures from their spawn
///                            lineage (see DESIGN.md, "Processor
///                            fail-stop and recovery"); killing the last
///                            live processor is ignored. A mark landing
///                            inside a collection fires mid-GC: the
///                            victim dies between its root-scan and copy
///                            phases and survivors inherit its copy work
///   proc-lie=P@C[,P@C...]    byzantine fault: once the run clock
///                            reaches C, processor P corrupts the next
///                            future value it resolves at a
///                            task-finishing return (fixnum results
///                            only). Detected by cross-check
///                            re-execution (below); an unchecked lie
///                            propagates to every toucher
///   cross-check=P            each task-finishing future resolve is
///                            re-executed on a different processor with
///                            probability P (seed-deterministic, charged
///                            in virtual time). Defaults to 0.25 when a
///                            proc-lie clause is present, 0 otherwise.
///                            A mismatch stops the group restartably
///                            with a `byzantine-detected` condition
///                            carrying both values and the liar
///   seam-split-fail=N[,N...] fail the Nth lazy-future seam-split
///                            attempt (1-based): the thief backs off and
///                            the seam stays with its owner, who later
///                            evaluates it inline
///
//===----------------------------------------------------------------------===//

#ifndef MULT_FAULT_FAULTPLAN_H
#define MULT_FAULT_FAULTPLAN_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mult {

/// What kind of fault an injection site fired. Recorded as payload A of
/// every FaultInjected trace event.
enum class FaultKind : uint8_t {
  AllocFail,  ///< forced mutator-allocation failure
  SpuriousGc, ///< forced collection at a virtual-time mark
  SpawnError, ///< injected exception at a future spawn
  TouchError, ///< injected exception at a touch instruction
  StealFail,  ///< forced steal-probe failure
  QueueClamp, ///< queue-capacity clamp forced an inline evaluation
  Stall,      ///< processor offline window
  AdaptClamp, ///< adaptive inlining threshold forced to a value
  AdaptReset, ///< adaptive controller window samples discarded
  ProcKill,   ///< fail-stop processor crash at a virtual-time mark
  SeamSplitFail, ///< forced lazy-future seam-split failure
  ProcLie,    ///< byzantine corruption of a resolved future value
};

/// Human-readable name of \p K ("alloc-fail", "stall", ...).
const char *faultKindName(FaultKind K);

/// A parsed, deterministic fault schedule.
struct FaultPlan {
  uint64_t Seed = 0x4d756c54;

  std::vector<uint64_t> AllocFailAt; ///< sorted 1-based allocation ordinals
  uint64_t AllocFailEvery = 0;       ///< 0 = off

  std::vector<uint64_t> GcAtCycles; ///< sorted run-relative cycle marks

  std::vector<uint64_t> SpawnErrorAt; ///< sorted 1-based spawn ordinals
  std::vector<uint64_t> TouchErrorAt; ///< sorted 1-based touch ordinals

  double StealFailProb = 0.0;
  std::vector<uint64_t> StealFailAt; ///< sorted 1-based probe ordinals

  std::optional<uint32_t> QueueCap;

  struct StallWindow {
    unsigned Proc = 0;
    uint64_t Begin = 0;  ///< run-relative cycle the window opens
    uint64_t Length = 0; ///< cycles the processor stays offline
  };
  std::vector<StallWindow> Stalls;

  struct AdaptClampAt {
    uint64_t Window = 0; ///< machine-wide 1-based window ordinal
    uint32_t Value = 0;  ///< threshold to force (clamped to the T bounds)
  };
  std::vector<AdaptClampAt> AdaptClamps; ///< sorted by Window
  std::vector<uint64_t> AdaptResetAt;    ///< sorted window ordinals

  struct ProcKillAt {
    unsigned Proc = 0;
    uint64_t AtCycles = 0; ///< run-relative cycle the fail-stop fires
  };
  std::vector<ProcKillAt> ProcKills; ///< sorted by AtCycles

  /// Byzantine marks: once the run clock passes AtCycles, processor Proc
  /// corrupts the next future value it resolves (same shape as ProcKills).
  std::vector<ProcKillAt> ProcLies; ///< sorted by AtCycles

  /// Cross-check sampling probability for task-finishing future resolves.
  /// Negative = unset: defaults to 0.25 when ProcLies is non-empty, else 0.
  double CrossCheckProb = -1.0;

  std::vector<uint64_t> SeamSplitFailAt; ///< sorted 1-based split ordinals

  /// True when no clause can ever fire.
  bool empty() const;

  /// Canonical spec string (parse(format()) round-trips).
  std::string format() const;

  /// Parses \p Spec into \p Out. False (and \p Err set) on a malformed
  /// spec; \p Out is unspecified then.
  static bool parse(std::string_view Spec, FaultPlan &Out, std::string &Err);
};

} // namespace mult

#endif // MULT_FAULT_FAULTPLAN_H
