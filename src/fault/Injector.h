//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injector.
///
/// The injector owns a FaultPlan plus the run-time counters that decide
/// when each clause fires. All decisions are pure functions of the plan,
/// the plan's seed, and the order in which the engine consults the
/// injector — which is itself deterministic in virtual time — so a fault
/// schedule replays exactly. The injector stays disarmed during engine
/// bootstrap (the prelude must load unmolested) and is armed right after.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_FAULT_INJECTOR_H
#define MULT_FAULT_INJECTOR_H

#include "fault/FaultPlan.h"
#include "support/Prng.h"

#include <cstdint>

namespace mult {

class FaultInjector {
public:
  FaultInjector() : Rng(FaultPlan().Seed) {}

  /// Installs \p P and resets every counter. Does not arm.
  void configure(const FaultPlan &P);

  void arm() { Armed = !Plan.empty(); }
  void disarm() { Armed = false; }
  bool armed() const { return Armed; }
  const FaultPlan &plan() const { return Plan; }

  /// True when the current mutator allocation must fail. Marks the
  /// failure as pending so the scheduler's heap-exhaustion heuristics
  /// can tell an injected failure from a genuinely full heap.
  bool shouldFailAlloc();

  /// Consumes the pending-injected-allocation flag set by
  /// shouldFailAlloc(). The machine calls this once per NeedsGc round.
  bool consumeInjectedAllocFail();

  /// If a forced collection is due at run-relative cycle \p RelClock,
  /// consumes its mark and returns true (\p MarkOut = the mark).
  bool takeForcedGc(uint64_t RelClock, uint64_t &MarkOut);

  /// True when the current future spawn must raise an injected error.
  bool shouldErrorSpawn();

  /// True when the current touch instruction must raise an injected
  /// error.
  bool shouldErrorTouch();

  /// True when the current steal probe must fail.
  bool shouldFailSteal();

  /// Queue-capacity clamp, if any.
  const std::optional<uint32_t> &queueCap() const { return Plan.QueueCap; }

  /// If processor \p Proc has a stall window opening at or before
  /// run-relative cycle \p RelClock, consumes it and returns true with
  /// \p EndRelOut = the run-relative cycle the window closes.
  bool takeStall(unsigned Proc, uint64_t RelClock, uint64_t &EndRelOut);

  /// If the closing adaptation window \p Ordinal (machine-wide, 1-based)
  /// has an adapt-clamp clause, consumes it and returns true with
  /// \p ValueOut = the forced threshold.
  bool takeAdaptClamp(uint64_t Ordinal, uint32_t &ValueOut);

  /// If the closing adaptation window \p Ordinal has an adapt-reset
  /// clause, consumes it and returns true.
  bool takeAdaptReset(uint64_t Ordinal);

  /// If a proc-kill clause is due at or before run-relative cycle
  /// \p RelClock, consumes it and returns true with \p ProcOut = the
  /// processor to fail-stop and \p AtOut = the clause's run-relative
  /// mark (the cycle the processor is deemed dead *from*, which the
  /// quantum-granular poll may observe late). At most one kill per
  /// call; the machine polls every quantum, so stacked kills fire on
  /// consecutive polls.
  bool takeProcKill(uint64_t RelClock, unsigned &ProcOut, uint64_t &AtOut);

  /// Like takeProcKill, but for proc-lie (byzantine) marks: consumes at
  /// most one due mark per call and names the processor that will
  /// corrupt its next finishing future resolve.
  bool takeProcLie(uint64_t RelClock, unsigned &ProcOut, uint64_t &AtOut);

  /// Effective cross-check sampling probability: the plan's explicit
  /// value, or 0.25 when proc-lie clauses are present and none was given.
  double crossCheckProb() const {
    if (Plan.CrossCheckProb >= 0.0)
      return Plan.CrossCheckProb;
    return Plan.ProcLies.empty() ? 0.0 : 0.25;
  }

  /// True when cross-check sampling can ever fire.
  bool crossChecksArmed() const { return Armed && crossCheckProb() > 0.0; }

  /// One seed-deterministic draw against crossCheckProb(). Uses a
  /// dedicated PRNG stream so cross-check draws never perturb the
  /// steal-fail stream (and vice versa).
  bool shouldCrossCheck();

  /// True when the current lazy-future seam-split attempt must fail.
  bool shouldFailSeamSplit();

private:
  FaultPlan Plan;
  bool Armed = false;
  Prng Rng;
  Prng LieRng{FaultPlan().Seed ^ kLieStream};

  /// Stream separator for LieRng so the two PRNGs seeded from the same
  /// plan seed stay decorrelated.
  static constexpr uint64_t kLieStream = 0x6c69652d73747265ull;

  uint64_t AllocN = 0;
  uint64_t SpawnN = 0;
  uint64_t TouchN = 0;
  uint64_t StealN = 0;
  uint64_t SeamSplitN = 0;
  size_t AllocIdx = 0; ///< next unconsumed entry of Plan.AllocFailAt
  size_t GcIdx = 0;    ///< next unconsumed entry of Plan.GcAtCycles
  size_t SpawnIdx = 0;
  size_t TouchIdx = 0;
  size_t StealIdx = 0;
  size_t SeamSplitIdx = 0;
  size_t ProcKillIdx = 0; ///< next unconsumed entry of Plan.ProcKills
  size_t ProcLieIdx = 0;  ///< next unconsumed entry of Plan.ProcLies
  size_t AdaptClampIdx = 0; ///< next unconsumed entry of Plan.AdaptClamps
  size_t AdaptResetIdx = 0; ///< next unconsumed entry of Plan.AdaptResetAt
  std::vector<bool> StallDone; ///< parallel to Plan.Stalls
  bool PendingInjectedAllocFail = false;
};

} // namespace mult

#endif // MULT_FAULT_INJECTOR_H
