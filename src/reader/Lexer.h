//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for Mul-T source text.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_READER_LEXER_H
#define MULT_READER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mult {

/// Lexical token kinds.
enum class TokKind {
  Eof,
  LParen,
  RParen,
  VecOpen,   ///< #(
  Quote,     ///< '
  Quasi,     ///< `
  Unquote,   ///< ,
  UnquoteAt, ///< ,@
  Dot,       ///< . in dotted pairs
  Fixnum,
  Flonum,
  Symbol,
  String,
  Char,      ///< #\x
  True,      ///< #t
  False,     ///< #f
  Error,
};

/// One token, with source position for diagnostics.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;    ///< Symbol spelling, decoded string body, error text.
  int64_t IntValue = 0;
  double FloatValue = 0;
  uint32_t CharValue = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

/// A one-token-lookahead lexer over a source buffer.
///
/// Handles `;` line comments and `#| ... |#` block comments (nesting).
/// Symbols follow T conventions: any run of non-delimiter characters that
/// does not parse as a number. Case-sensitive.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Src(Source) {}

  /// Returns the next token, consuming it.
  Token next();

  /// Returns the next token without consuming it.
  const Token &peek();

  unsigned line() const { return Line; }

private:
  Token lexOne();
  Token lexString();
  Token lexHash();
  Token lexAtom();
  Token makeError(std::string Msg);

  bool atEnd() const { return Pos >= Src.size(); }
  char cur() const { return Src[Pos]; }
  char advance();
  void skipTrivia();

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  Token Lookahead;
  bool HasLookahead = false;
};

/// True for characters that terminate an atom.
bool isDelimiter(char C);

} // namespace mult

#endif // MULT_READER_LEXER_H
