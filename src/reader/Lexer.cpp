//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer implementation.
///
//===----------------------------------------------------------------------===//

#include "reader/Lexer.h"

#include "support/StrUtil.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace mult;

bool mult::isDelimiter(char C) {
  switch (C) {
  case '(':
  case ')':
  case '[':
  case ']':
  case '"':
  case ';':
  case '\'':
  case '`':
  case ',':
    return true;
  default:
    return std::isspace(static_cast<unsigned char>(C)) != 0;
  }
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = cur();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == ';') {
      while (!atEnd() && cur() != '\n')
        advance();
      continue;
    }
    if (C == '#' && Pos + 1 < Src.size() && Src[Pos + 1] == '|') {
      advance();
      advance();
      int Depth = 1;
      while (!atEnd() && Depth > 0) {
        char D = advance();
        if (D == '#' && !atEnd() && cur() == '|') {
          advance();
          ++Depth;
        } else if (D == '|' && !atEnd() && cur() == '#') {
          advance();
          --Depth;
        }
      }
      continue;
    }
    break;
  }
}

const Token &Lexer::peek() {
  if (!HasLookahead) {
    Lookahead = lexOne();
    HasLookahead = true;
  }
  return Lookahead;
}

Token Lexer::next() {
  if (HasLookahead) {
    HasLookahead = false;
    return Lookahead;
  }
  return lexOne();
}

Token Lexer::makeError(std::string Msg) {
  Token T;
  T.Kind = TokKind::Error;
  T.Text = std::move(Msg);
  T.Line = Line;
  T.Column = Column;
  return T;
}

Token Lexer::lexOne() {
  skipTrivia();
  Token T;
  T.Line = Line;
  T.Column = Column;
  if (atEnd()) {
    T.Kind = TokKind::Eof;
    return T;
  }
  char C = cur();
  switch (C) {
  case '(':
  case '[':
    advance();
    T.Kind = TokKind::LParen;
    return T;
  case ')':
  case ']':
    advance();
    T.Kind = TokKind::RParen;
    return T;
  case '\'':
    advance();
    T.Kind = TokKind::Quote;
    return T;
  case '`':
    advance();
    T.Kind = TokKind::Quasi;
    return T;
  case ',':
    advance();
    if (!atEnd() && cur() == '@') {
      advance();
      T.Kind = TokKind::UnquoteAt;
    } else {
      T.Kind = TokKind::Unquote;
    }
    return T;
  case '"':
    return lexString();
  case '#':
    return lexHash();
  default:
    return lexAtom();
  }
}

Token Lexer::lexString() {
  Token T;
  T.Line = Line;
  T.Column = Column;
  advance(); // opening quote
  std::string Body;
  while (true) {
    if (atEnd())
      return makeError("unterminated string literal");
    char C = advance();
    if (C == '"')
      break;
    if (C == '\\') {
      if (atEnd())
        return makeError("unterminated escape in string literal");
      char E = advance();
      switch (E) {
      case 'n':
        Body.push_back('\n');
        break;
      case 't':
        Body.push_back('\t');
        break;
      case '\\':
      case '"':
        Body.push_back(E);
        break;
      default:
        return makeError(strFormat("unknown string escape '\\%c'", E));
      }
      continue;
    }
    Body.push_back(C);
  }
  T.Kind = TokKind::String;
  T.Text = std::move(Body);
  return T;
}

Token Lexer::lexHash() {
  Token T;
  T.Line = Line;
  T.Column = Column;
  advance(); // '#'
  if (atEnd())
    return makeError("lone '#' at end of input");
  char C = advance();
  switch (C) {
  case '(':
    T.Kind = TokKind::VecOpen;
    return T;
  case 't':
    T.Kind = TokKind::True;
    return T;
  case 'f':
    T.Kind = TokKind::False;
    return T;
  case '\\': {
    if (atEnd())
      return makeError("lone '#\\' at end of input");
    // Read the character name: one char, or a named char like "space".
    std::string Name;
    Name.push_back(advance());
    while (!atEnd() && !isDelimiter(cur()))
      Name.push_back(advance());
    T.Kind = TokKind::Char;
    if (Name.size() == 1) {
      T.CharValue = static_cast<unsigned char>(Name[0]);
      return T;
    }
    if (Name == "space") {
      T.CharValue = ' ';
      return T;
    }
    if (Name == "newline") {
      T.CharValue = '\n';
      return T;
    }
    if (Name == "tab") {
      T.CharValue = '\t';
      return T;
    }
    return makeError(strFormat("unknown character name '#\\%s'", Name.c_str()));
  }
  default:
    return makeError(strFormat("unknown '#' syntax '#%c'", C));
  }
}

Token Lexer::lexAtom() {
  Token T;
  T.Line = Line;
  T.Column = Column;
  std::string Text;
  while (!atEnd() && !isDelimiter(cur()))
    Text.push_back(advance());
  assert(!Text.empty() && "lexAtom on a delimiter");

  if (Text == ".") {
    T.Kind = TokKind::Dot;
    return T;
  }

  // Try integer, then float, else symbol.
  const char *Begin = Text.c_str();
  char *End = nullptr;
  errno = 0;
  long long IntVal = std::strtoll(Begin, &End, 10);
  if (End == Begin + Text.size() && errno == 0) {
    T.Kind = TokKind::Fixnum;
    T.IntValue = IntVal;
    return T;
  }
  if (errno == ERANGE &&
      Text.find_first_not_of("+-0123456789") == std::string::npos)
    return makeError(strFormat("integer literal '%s' exceeds the fixnum "
                               "range",
                               Text.c_str()));
  End = nullptr;
  double FloatVal = std::strtod(Begin, &End);
  if (End == Begin + Text.size() && End != Begin &&
      Text.find_first_of("0123456789") != std::string::npos &&
      Text.find_first_not_of("+-.eE0123456789") == std::string::npos) {
    T.Kind = TokKind::Flonum;
    T.FloatValue = FloatVal;
    return T;
  }

  T.Kind = TokKind::Symbol;
  T.Text = std::move(Text);
  return T;
}
