//===----------------------------------------------------------------------===//
///
/// \file
/// S-expression reader: source text to Lisp data.
///
/// Output data is built through a DatumBuilder into the permanent area
/// (program text is static data). `'x` reads as `(quote x)`; quasiquote
/// reads as `(quasiquote ...)` and is rewritten by the macro expander.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_READER_READER_H
#define MULT_READER_READER_H

#include "reader/Lexer.h"
#include "runtime/DatumBuilder.h"

#include <string>
#include <vector>

namespace mult {

/// Result of a single read.
struct ReadResult {
  enum class Status { Ok, Eof, Error } S = Status::Eof;
  Value Datum;
  std::string Error; ///< Message with line/column, when S == Error.

  bool ok() const { return S == Status::Ok; }
  bool eof() const { return S == Status::Eof; }
  bool error() const { return S == Status::Error; }
};

/// Streaming reader over one source buffer.
class Reader {
public:
  Reader(DatumBuilder &Builder, std::string_view Source)
      : Builder(Builder), Lex(Source) {}

  /// Reads the next datum.
  ReadResult read();

  /// Reads every datum remaining; on error, \p Error receives the message
  /// and an empty vector is returned.
  std::vector<Value> readAll(std::string &Error);

private:
  ReadResult readDatum();
  ReadResult readList();
  ReadResult readVector();
  ReadResult readAbbrev(const char *SymbolName);
  ReadResult err(const Token &At, std::string Msg);

  DatumBuilder &Builder;
  Lexer Lex;
};

} // namespace mult

#endif // MULT_READER_READER_H
