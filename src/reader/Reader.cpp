//===----------------------------------------------------------------------===//
///
/// \file
/// Reader implementation.
///
//===----------------------------------------------------------------------===//

#include "reader/Reader.h"

#include "support/StrUtil.h"

using namespace mult;

ReadResult Reader::err(const Token &At, std::string Msg) {
  ReadResult R;
  R.S = ReadResult::Status::Error;
  R.Error = strFormat("read error at %u:%u: %s", At.Line, At.Column,
                      Msg.c_str());
  return R;
}

ReadResult Reader::read() { return readDatum(); }

std::vector<Value> Reader::readAll(std::string &Error) {
  std::vector<Value> Out;
  for (;;) {
    ReadResult R = readDatum();
    if (R.eof())
      return Out;
    if (R.error()) {
      Error = R.Error;
      return {};
    }
    Out.push_back(R.Datum);
  }
}

ReadResult Reader::readDatum() {
  Token T = Lex.next();
  ReadResult R;
  switch (T.Kind) {
  case TokKind::Eof:
    R.S = ReadResult::Status::Eof;
    return R;
  case TokKind::Error:
    return err(T, T.Text);
  case TokKind::LParen:
    return readList();
  case TokKind::RParen:
    return err(T, "unexpected ')'");
  case TokKind::VecOpen:
    return readVector();
  case TokKind::Quote:
    return readAbbrev("quote");
  case TokKind::Quasi:
    return readAbbrev("quasiquote");
  case TokKind::Unquote:
    return readAbbrev("unquote");
  case TokKind::UnquoteAt:
    return readAbbrev("unquote-splicing");
  case TokKind::Dot:
    return err(T, "unexpected '.'");
  case TokKind::Fixnum:
    if (!Value::fitsFixnum(T.IntValue))
      return err(T, "integer literal exceeds fixnum range");
    R.S = ReadResult::Status::Ok;
    R.Datum = Value::fixnum(T.IntValue);
    return R;
  case TokKind::Flonum:
    R.S = ReadResult::Status::Ok;
    R.Datum = Builder.flonum(T.FloatValue);
    return R;
  case TokKind::Symbol:
    R.S = ReadResult::Status::Ok;
    R.Datum = Builder.symbol(T.Text);
    return R;
  case TokKind::String:
    R.S = ReadResult::Status::Ok;
    R.Datum = Builder.string(T.Text);
    return R;
  case TokKind::Char:
    R.S = ReadResult::Status::Ok;
    R.Datum = Value::character(T.CharValue);
    return R;
  case TokKind::True:
    R.S = ReadResult::Status::Ok;
    R.Datum = Value::trueV();
    return R;
  case TokKind::False:
    R.S = ReadResult::Status::Ok;
    R.Datum = Value::falseV();
    return R;
  }
  return err(T, "unhandled token");
}

ReadResult Reader::readList() {
  std::vector<Value> Elems;
  Value Tail = Value::nil();
  for (;;) {
    const Token &P = Lex.peek();
    if (P.Kind == TokKind::Eof)
      return err(P, "unterminated list");
    if (P.Kind == TokKind::Error)
      return err(P, P.Text);
    if (P.Kind == TokKind::RParen) {
      Lex.next();
      break;
    }
    if (P.Kind == TokKind::Dot) {
      Token DotTok = Lex.next();
      if (Elems.empty())
        return err(DotTok, "'.' at start of list");
      ReadResult TailR = readDatum();
      if (!TailR.ok())
        return TailR.eof() ? err(DotTok, "missing datum after '.'") : TailR;
      Tail = TailR.Datum;
      Token Close = Lex.next();
      if (Close.Kind != TokKind::RParen)
        return err(Close, "expected ')' after dotted tail");
      break;
    }
    ReadResult R = readDatum();
    if (!R.ok())
      return R;
    Elems.push_back(R.Datum);
  }

  Value Out = Tail;
  for (size_t I = Elems.size(); I > 0; --I)
    Out = Builder.cons(Elems[I - 1], Out);
  ReadResult R;
  R.S = ReadResult::Status::Ok;
  R.Datum = Out;
  return R;
}

ReadResult Reader::readVector() {
  std::vector<Value> Elems;
  for (;;) {
    const Token &P = Lex.peek();
    if (P.Kind == TokKind::Eof)
      return err(P, "unterminated vector");
    if (P.Kind == TokKind::RParen) {
      Lex.next();
      break;
    }
    ReadResult R = readDatum();
    if (!R.ok())
      return R;
    Elems.push_back(R.Datum);
  }
  ReadResult R;
  R.S = ReadResult::Status::Ok;
  R.Datum = Builder.vector(Elems);
  return R;
}

ReadResult Reader::readAbbrev(const char *SymbolName) {
  ReadResult Inner = readDatum();
  if (!Inner.ok()) {
    if (Inner.eof()) {
      ReadResult R;
      R.S = ReadResult::Status::Error;
      R.Error = strFormat("read error: missing datum after %s abbreviation",
                          SymbolName);
      return R;
    }
    return Inner;
  }
  ReadResult R;
  R.S = ReadResult::Status::Ok;
  R.Datum = Builder.list({Builder.symbol(SymbolName), Inner.Datum});
  return R;
}
