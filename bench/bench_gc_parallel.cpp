//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the parallel stop-and-copy collector of paper section 2.1.2.
///
/// The paper parallelized the collector so that collections triggered by
/// background jobs would not impose long pauses on interactive use, and
/// noted a weakness: an object's components are always moved by the
/// processor that moved the object, so work distribution can be uneven.
/// Both effects are measured here:
///   - pause time vs processor count for many-root heaps (good case),
///   - the imbalance on a single-big-structure heap (the paper's caveat).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace multbench;

namespace {

struct GcNumbers {
  uint64_t Pause;
  uint64_t Work;
  uint64_t MaxProcWork;
  uint64_t Copied;
};

/// Builds live data via \p SetupBody, then forces one collection.
GcNumbers collectOnce(unsigned Procs, const std::string &Setup) {
  EngineConfig C = machine(Procs);
  C.HeapWords = size_t(1) << 20;
  Engine E(C);
  EvalResult R = E.eval(Setup);
  if (!R.ok()) {
    std::fprintf(stderr, "gc bench setup failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  E.resetStats();
  EvalResult G = E.eval("(%gc)");
  if (!G.ok())
    std::exit(1);
  const Gc::Stats &S = E.gcStats();
  return GcNumbers{S.Last.PauseCycles, S.Last.WorkCycles,
                   S.Last.MaxProcWorkCycles, S.Last.WordsCopied};
}

/// Live data spread over many globals: many root segments to share.
std::string manyRootsSetup() {
  std::string Src =
      "(define (build n) (if (= n 0) '() (cons (make-vector 6 n) "
      "(build (- n 1)))))";
  for (int K = 0; K < 96; ++K)
    Src += "(define keep" + std::to_string(K) + " (build 40))";
  return Src;
}

/// One giant list: a single processor must copy it all (paper's caveat).
std::string oneRootSetup() {
  return "(define (build n) (if (= n 0) '() (cons (make-vector 6 n) "
         "(build (- n 1)))))"
         "(define keep (build 3840))";
}

void sweep(const char *Name, const std::string &Setup) {
  std::printf("\n  %s:\n", Name);
  std::printf("    %-6s %12s %10s %12s %10s\n", "procs", "pause(cyc)",
              "speedup", "work(cyc)", "balance");
  uint64_t Pause1 = 0;
  for (unsigned P : {1u, 2u, 4u, 8u}) {
    GcNumbers N = collectOnce(P, Setup);
    if (P == 1)
      Pause1 = N.Pause;
    // balance = average per-processor work / busiest processor's work:
    // 100% is perfect, 1/P is one processor doing everything.
    double Balance =
        100.0 * (double(N.Work) / P) / double(N.MaxProcWork);
    std::printf("    %-6u %12llu %9.2fx %12llu %9.0f%%\n", P,
                static_cast<unsigned long long>(N.Pause),
                double(Pause1) / double(N.Pause),
                static_cast<unsigned long long>(N.Work), Balance);
  }
}

} // namespace

int main() {
  printTitle("Parallel stop-and-copy GC (paper section 2.1.2)");
  sweep("live data spread over 96 roots (background-job heap)",
        manyRootsSetup());
  sweep("live data in one giant structure (the paper's imbalance caveat)",
        oneRootSetup());
  printRule();
  std::printf("  paper: \"once an object is moved by a particular "
              "processor all of its\n  components will be moved by the "
              "same processor. This might lead to an\n  uneven "
              "distribution of work.\" -- visible as the balance "
              "collapsing in\n  the second sweep.\n");
  return 0;
}
