//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table 3: the parallel Boyer benchmark across
/// processor counts, with and without inlining. The paper's rows:
///
///   processors:          1    2    4    8
///   without inlining:   44   23   12   7.5   seconds
///   with inlining T=1:  25   13    7   4
///
/// The claims under test: (a) futures add real overhead on one processor
/// (44 vs the sequential 24), (b) speedup is substantial, beating the T3
/// sequential time by 4-8 processors, (c) inlining removes most of the
/// future overhead (44 -> 25 on one processor) while preserving speedup.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "programs/BoyerProgram.h"

using namespace multbench;

namespace {

double runParallelBoyer(unsigned Procs, std::optional<unsigned> T,
                        int Iterations, uint64_t *FuturesOut) {
  Engine E(machine(Procs, T));
  std::string Setup = std::string(BoyerCommonSource) + BoyerParallelArgs;
  std::string Result;
  double Secs = runVirtualSeconds(
      E, Setup, "(boyer-test " + std::to_string(Iterations) + ")", &Result);
  if (Result != "#t") {
    std::fprintf(stderr, "parallel boyer failed: %s\n", Result.c_str());
    std::exit(1);
  }
  if (FuturesOut)
    *FuturesOut = E.stats().FuturesCreated;
  reportRun(E, strFormat("boyer_par_p%u_%s", Procs,
                         T ? ("t" + std::to_string(*T)).c_str() : "noinline"));
  return Secs / Iterations;
}

} // namespace

int main(int argc, char **argv) {
  int Iterations = argc > 1 ? std::atoi(argv[1]) : 1;
  static const unsigned Procs[] = {1, 2, 4, 8};
  static const char *PaperNoInline[] = {"44", "23", "12", "7.5"};
  static const char *PaperInline[] = {"25", "13", "7", "4"};

  printTitle("Table 3: parallel Boyer benchmark (virtual seconds)");
  std::printf("  %-26s", "processors:");
  for (unsigned P : Procs)
    std::printf(" %8u", P);
  std::printf("\n");

  std::printf("  %-26s", "without inlining (T=inf)");
  double NoInline1 = 0;
  for (unsigned P : Procs) {
    uint64_t Futures = 0;
    double S = runParallelBoyer(P, std::nullopt, Iterations, &Futures);
    if (P == 1)
      NoInline1 = S;
    std::printf(" %8s", formatSeconds(S).c_str());
  }
  std::printf("\n  %-26s", "  (paper)");
  for (const char *S : PaperNoInline)
    std::printf(" %8s", S);
  std::printf("\n");

  std::printf("  %-26s", "with inlining (T=1)");
  double Inline1 = 0;
  for (unsigned P : Procs) {
    uint64_t Futures = 0;
    double S = runParallelBoyer(P, 1u, Iterations, &Futures);
    if (P == 1)
      Inline1 = S;
    std::printf(" %8s", formatSeconds(S).c_str());
  }
  std::printf("\n  %-26s", "  (paper)");
  for (const char *S : PaperInline)
    std::printf(" %8s", S);
  std::printf("\n");

  printRule();
  std::printf("  inlining saves %.0f%% of the one-processor time "
              "(paper: 44 -> 25, i.e. 43%%)\n",
              (1.0 - Inline1 / NoInline1) * 100.0);
  return 0;
}
