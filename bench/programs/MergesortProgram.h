//===----------------------------------------------------------------------===//
///
/// \file
/// Destructive merge sort on a list of integers (paper section 4: 8192
/// elements). The divide-and-conquer recursion sorts both halves in
/// parallel; the execution pattern is input-independent, which is what
/// makes the paper's analytical model
///   t(k,l) = O[(k-l-2)·2^(k-l-1) + 2^k]
/// (2^l processors, n = 2^k elements) applicable. Inlining is crucial
/// here: it reduces the futures created from n-1 to a few hundred.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_BENCH_PROGRAMS_MERGESORTPROGRAM_H
#define MULT_BENCH_PROGRAMS_MERGESORTPROGRAM_H

namespace mult {

inline constexpr const char MergesortSource[] = R"lisp(
;; Destructive merge of two sorted lists.
(define (merge! a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((< (car a) (car b))
         (set-cdr! a (merge! (cdr a) b))
         a)
        (else
         (set-cdr! b (merge! a (cdr b)))
         b)))

;; Severs l after its first n elements; returns the tail.
(define (split-after! l n)
  (if (= n 1)
      (let ((tail (cdr l)))
        (set-cdr! l '())
        tail)
      (split-after! (cdr l) (- n 1))))

;; Sorts the n-element list l in place; returns the new head.
(define (sort! l n)
  (if (< n 2)
      l
      (let ((half (quotient n 2)))
        (let ((right (split-after! l half)))
          (let ((a (future (sort! l half))))
            (let ((b (sort! right (- n half))))
              (merge! (touch a) b)))))))

;; Deterministic worst-ish-case input: a pseudo-random list of n fixnums.
(define (mergesort-input n seed)
  (let loop ((i 0) (x seed) (acc '()))
    (if (= i n)
        acc
        (let ((next (remainder (+ (* x 75) 74) 65537)))
          (loop (+ i 1) next (cons next acc))))))

(define (sorted? l)
  (cond ((null? l) #t)
        ((null? (cdr l)) #t)
        ((< (cadr l) (car l)) #f)
        (else (sorted? (cdr l)))))

;; Sorts n pseudo-random integers; returns #t iff the result is sorted
;; and has the right length.
(define (mergesort-test n)
  (let ((sorted (sort! (mergesort-input n 1) n)))
    (if (sorted? sorted)
        (= (length sorted) n)
        #f)))
)lisp";

} // namespace mult

#endif // MULT_BENCH_PROGRAMS_MERGESORTPROGRAM_H
