//===----------------------------------------------------------------------===//
///
/// \file
/// The "compiler" benchmark: a transformation-based compiler written in
/// Mul-T, standing in for Kelsey's 20 kloc transformation-based compiler
/// compiling a 21-procedure Pascal program (paper section 4; see DESIGN.md
/// substitutions). The task topology matches the paper's description:
///
///   - a sequential parse phase over the whole program,
///   - a compilation phase with one task per procedure (uneven sizes),
///   - an assembler that only one task at a time may use (a semaphore),
///   - a sequential output phase.
///
/// Those four properties are exactly the speedup limiters the paper lists,
/// so the scaling shape carries over.
///
/// Source language: (procedure <name> (<params>) <expr>) where <expr> is
/// fixnums, variables, (+ - * a b), (if c t e), (let v e body),
/// (call f args...). Compilation: alpha-rename -> constant-fold ->
/// linearize to three-address code -> peephole -> assemble.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_BENCH_PROGRAMS_MINICOMPILERPROGRAM_H
#define MULT_BENCH_PROGRAMS_MINICOMPILERPROGRAM_H

namespace mult {

inline constexpr const char MiniCompilerSource[] = R"lisp(
;; ---------------------------------------------------------------- parse
;; Surface -> tagged AST. Sequential phase over the whole program.
(define (mc-parse-expr e params)
  (cond ((number? e) (list 'const e))
        ((symbol? e)
         (if (memq e params)
             (list 'var e)
             (error "mc-parse: unbound variable" e)))
        ((memq (car e) '(+ - *))
         (list 'prim (car e)
               (mc-parse-expr (cadr e) params)
               (mc-parse-expr (caddr e) params)))
        ((eq? (car e) 'if)
         (list 'if (mc-parse-expr (cadr e) params)
               (mc-parse-expr (caddr e) params)
               (mc-parse-expr (cadddr e) params)))
        ((eq? (car e) 'let)
         (list 'let (cadr e)
               (mc-parse-expr (caddr e) params)
               (mc-parse-expr (cadddr e) (cons (cadr e) params))))
        ((eq? (car e) 'call)
         (cons 'call (cons (cadr e) (mc-parse-args (cddr e) params))))
        (else (error "mc-parse: bad expression" e))))

(define (mc-parse-args es params)
  (if (null? es)
      '()
      (cons (mc-parse-expr (car es) params)
            (mc-parse-args (cdr es) params))))

(define (mc-parse prog)
  (map (lambda (p)
         (list (cadr p) (caddr p)
               (mc-parse-expr (cadddr p) (caddr p))))
       prog))

;; --------------------------------------------------- pass 1: alpha-rename
;; Rename variables to numbered registers (var . k); threads a counter.
;; Returns (renamed-expr . counter).
(define (mc-alpha e env k)
  (case (car e)
    ((const) (cons e k))
    ((var)
     (cons (list 'var (cdr (assq (cadr e) env))) k))
    ((prim)
     (let ((a (mc-alpha (caddr e) env k)))
       (let ((b (mc-alpha (cadddr e) env (cdr a))))
         (cons (list 'prim (cadr e) (car a) (car b)) (cdr b)))))
    ((if)
     (let ((c (mc-alpha (cadr e) env k)))
       (let ((t (mc-alpha (caddr e) env (cdr c))))
         (let ((f (mc-alpha (cadddr e) env (cdr t))))
           (cons (list 'if (car c) (car t) (car f)) (cdr f))))))
    ((let)
     (let ((init (mc-alpha (caddr e) env k)))
       (let ((body (mc-alpha (cadddr e)
                             (cons (cons (cadr e) (cdr init)) env)
                             (+ (cdr init) 1))))
         (cons (list 'let (cdr init) (car init) (car body)) (cdr body)))))
    ((call)
     (let loop ((args (cddr e)) (k k) (acc '()))
       (if (null? args)
           (cons (cons 'call (cons (cadr e) (reverse acc))) k)
           (let ((a (mc-alpha (car args) env k)))
             (loop (cdr args) (cdr a) (cons (car a) acc))))))
    (else (error "mc-alpha: bad node" e))))

(define (mc-alpha-proc name params body)
  (let loop ((ps params) (env '()) (k 0))
    (if (null? ps)
        (car (mc-alpha body env k))
        (loop (cdr ps) (cons (cons (car ps) k) env) (+ k 1)))))

;; -------------------------------------------------- pass 2: constant fold
(define (mc-fold e)
  (case (car e)
    ((const var) e)
    ((prim)
     (let ((a (mc-fold (caddr e)))
           (b (mc-fold (cadddr e))))
       (if (if (eq? (car a) 'const) (eq? (car b) 'const) #f)
           (list 'const
                 (case (cadr e)
                   ((+) (+ (cadr a) (cadr b)))
                   ((-) (- (cadr a) (cadr b)))
                   ((*) (* (cadr a) (cadr b)))))
           (list 'prim (cadr e) a b))))
    ((if)
     (let ((c (mc-fold (cadr e))))
       (if (eq? (car c) 'const)
           (if (= (cadr c) 0)
               (mc-fold (cadddr e))
               (mc-fold (caddr e)))
           (list 'if c (mc-fold (caddr e)) (mc-fold (cadddr e))))))
    ((let)
     (list 'let (cadr e) (mc-fold (caddr e)) (mc-fold (cadddr e))))
    ((call)
     (cons 'call (cons (cadr e) (map mc-fold (cddr e)))))
    (else (error "mc-fold: bad node" e))))

;; ------------------------------------------- pass 3: linearize to 3-address
;; Produces (instrs dest . next-reg), instrs reversed.
(define (mc-lin e reg instrs)
  (case (car e)
    ((const)
     (cons (cons (list 'ldi reg (cadr e)) instrs) (cons reg (+ reg 1))))
    ((var)
     (cons (cons (list 'mov reg (cadr e)) instrs) (cons reg (+ reg 1))))
    ((prim)
     (let ((a (mc-lin (caddr e) reg instrs)))
       (let ((b (mc-lin (cadddr e) (cdr (cdr a)) (car a))))
         (let ((dest (cdr (cdr b))))
           (cons (cons (list (cadr e) dest (car (cdr a)) (car (cdr b)))
                       (car b))
                 (cons dest (+ dest 1)))))))
    ((if)
     (let ((c (mc-lin (cadr e) reg instrs)))
       (let ((t (mc-lin (caddr e) (cdr (cdr c)) (car c))))
         (let ((f (mc-lin (cadddr e) (cdr (cdr t)) (car t))))
           (let ((dest (cdr (cdr f))))
             (cons (cons (list 'sel dest (car (cdr c)) (car (cdr t))
                               (car (cdr f)))
                         (car f))
                   (cons dest (+ dest 1))))))))
    ((let)
     ;; let registers were assigned during alpha; move the init value in.
     (let ((init (mc-lin (caddr e) reg instrs)))
       (let ((body (mc-lin (cadddr e) (cdr (cdr init))
                           (cons (list 'mov (cadr e) (car (cdr init)))
                                 (car init)))))
         body)))
    ((call)
     (let loop ((args (cddr e)) (reg reg) (instrs instrs) (vals '()))
       (if (null? args)
           (cons (cons (cons 'callf (cons (cadr e) (reverse vals))) instrs)
                 (cons reg (+ reg 1)))
           (let ((a (mc-lin (car args) reg instrs)))
             (loop (cdr args) (cdr (cdr a)) (car a)
                   (cons (car (cdr a)) vals))))))
    (else (error "mc-lin: bad node" e))))

;; ------------------------------------------------------ pass 4: peephole
(define (mc-peephole instrs)
  (filter (lambda (i)
            (not (if (eq? (car i) 'mov) (= (cadr i) (caddr i)) #f)))
          instrs))

;; ------------------------------------------------------------- assembler
;; The shared assembler: only one task at a time (paper!). "Assembling"
;; computes a checksum and the code size.
(define mc-asm-lock (make-semaphore 1))
(define mc-asm-count 0)
(define mc-asm-checksum 0)

(define (mc-assemble name instrs)
  (semaphore-p mc-asm-lock)
  (let loop ((is instrs) (n 0) (sum 0))
    (if (null? is)
        (begin
          (set! mc-asm-count (+ mc-asm-count n))
          (set! mc-asm-checksum
                (remainder (+ mc-asm-checksum sum) 1000000007))
          (semaphore-v mc-asm-lock)
          n)
        (loop (cdr is) (+ n 1)
              (remainder (+ (* sum 31) (length (car is))) 1000000007)))))

;; ------------------------------------------------------ whole procedures
(define (mc-compile-proc p)
  (let ((name (car p)) (params (cadr p)) (body (caddr p)))
    (let ((renamed (mc-alpha-proc name params body)))
      (let ((folded (mc-fold renamed)))
        (let ((lin (mc-lin folded 100 '())))
          (mc-assemble name (mc-peephole (reverse (car lin)))))))))

;; Parallel driver: sequential parse, one task per procedure, sequential
;; output (summing the per-procedure instruction counts).
(define (mc-compile-program prog parallel?)
  (set! mc-asm-count 0)
  (set! mc-asm-checksum 0)
  (let ((parsed (mc-parse prog)))
    (let ((results (if parallel?
                       (map (lambda (p) (future (mc-compile-proc p)))
                            parsed)
                       (map mc-compile-proc parsed))))
      ;; Output phase: touch everything, in order.
      (let loop ((rs results) (total 0))
        (if (null? rs)
            (list total mc-asm-count mc-asm-checksum)
            (loop (cdr rs) (+ total (touch (car rs)))))))))

;; ------------------------------------------------- program generator
;; Builds a synthetic program of `n` procedures with pseudo-random bodies
;; of uneven depth (the paper: "uneven loads due to the small number of
;; tasks"). Procedure i may call procedures 0..i-1.
(define (mc-gen-expr depth params nprocs-before)
  (if (= depth 0)
      (if (if (null? params) #t (= (random 3) 0))
          (random 100)
          (list-ref params (random (length params))))
      (let ((kind (random (if (> nprocs-before 0) 10 9))))
        (cond ((< kind 4)
               (list (list-ref '(+ - * +) (random 4))
                     (mc-gen-expr (- depth 1) params nprocs-before)
                     (mc-gen-expr (- depth 1) params nprocs-before)))
              ((< kind 6)
               (list 'if (mc-gen-expr (- depth 1) params nprocs-before)
                     (mc-gen-expr (- depth 1) params nprocs-before)
                     (mc-gen-expr (- depth 1) params nprocs-before)))
              ((< kind 9)
               (list 'let 'tmp
                     (mc-gen-expr (- depth 1) params nprocs-before)
                     (mc-gen-expr (- depth 1) (cons 'tmp params)
                                  nprocs-before)))
              (else
               (list 'call
                     (string->symbol
                      (string-append "p" (number->string
                                          (random nprocs-before))))
                     (mc-gen-expr (- depth 1) params nprocs-before)))))))

(define (mc-gen-program n base-depth)
  (let loop ((i 0) (acc '()))
    (if (= i n)
        (reverse acc)
        (loop (+ i 1)
              (cons (list 'procedure
                          (string->symbol
                           (string-append "p" (number->string i)))
                          '(a b c)
                          (mc-gen-expr (+ base-depth (random 4))
                                       '(a b c) i))
                    acc)))))
)lisp";

} // namespace mult

#endif // MULT_BENCH_PROGRAMS_MINICOMPILERPROGRAM_H
