//===----------------------------------------------------------------------===//
///
/// \file
/// The permute benchmark (paper section 4, after Thaker/Bradley/Nussbaum):
/// build a set of `target` vectors of `len` integers in [0,32) such that
/// any two accepted vectors differ in at least `dmin` positions.
///
/// Parallel structure follows the paper: the comparison of one candidate
/// against the accepted set is split into tasks of `chunk` vectors each,
/// and up to `batch` (the paper used 16) candidates are tested
/// simultaneously. Candidates come from the engine's deterministic PRNG
/// rather than the original's permutation generator (see DESIGN.md
/// substitutions); what matters for the speedup shape is the compare
/// workload, which is identical. Run with T = infinity, as the paper did.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_BENCH_PROGRAMS_PERMUTEPROGRAM_H
#define MULT_BENCH_PROGRAMS_PERMUTEPROGRAM_H

namespace mult {

inline constexpr const char PermuteSource[] = R"lisp(
(define (permute-random-vec len)
  (let ((v (make-vector len 0)))
    (do ((i 0 (+ i 1)))
        ((= i len) v)
      (vector-set! v i (random 32)))))

(define (permute-distance v w len)
  (let loop ((i 0) (d 0))
    (if (= i len)
        d
        (loop (+ i 1)
              (if (= (vector-ref v i) (vector-ref w i)) d (+ d 1))))))

(define (permute-take l n)
  (if (if (null? l) #t (= n 0))
      '()
      (cons (car l) (permute-take (cdr l) (- n 1)))))

(define (permute-drop l n)
  (if (if (null? l) #t (= n 0))
      l
      (permute-drop (cdr l) (- n 1))))

;; One comparison task: candidate vs one chunk of accepted vectors.
(define (permute-check-chunk cand chunk len dmin)
  (cond ((null? chunk) #t)
        ((< (permute-distance cand (car chunk) len) dmin) #f)
        (else (permute-check-chunk cand (cdr chunk) len dmin))))

;; Compare cand against the whole accepted set, one future per chunk.
(define (permute-check cand accepted len dmin chunk)
  (let spawn ((rest accepted) (futs '()))
    (if (null? rest)
        (let all ((fs futs) (ok #t))
          (if (null? fs)
              ok
              (all (cdr fs) (if (touch (car fs)) ok #f))))
        (spawn (permute-drop rest chunk)
               (cons (future (permute-check-chunk
                              cand (permute-take rest chunk) len dmin))
                     futs)))))

(define (permute-gen-batch n len)
  (if (= n 0)
      '()
      (cons (permute-random-vec len) (permute-gen-batch (- n 1) len))))

;; Accumulates `target` mutually distant vectors; returns the number of
;; candidates tested. `batch` candidates are in flight at once.
(define (permute-run target len dmin chunk batch)
  (let loop ((accepted '()) (count 0) (tested 0))
    (if (>= count target)
        tested
        (let ((cands (permute-gen-batch batch len)))
          (let ((futs (map (lambda (c)
                             (future (if (permute-check c accepted len
                                                        dmin chunk)
                                         c
                                         #f)))
                           cands)))
            (let accept ((fs futs) (acc accepted) (cnt count))
              (if (null? fs)
                  (loop acc cnt (+ tested batch))
                  (let ((r (touch (car fs))))
                    (if (if r (< cnt target) #f)
                        (accept (cdr fs) (cons r acc) (+ cnt 1))
                        (accept (cdr fs) acc cnt))))))))))
)lisp";

} // namespace mult

#endif // MULT_BENCH_PROGRAMS_PERMUTEPROGRAM_H
