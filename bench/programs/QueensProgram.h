//===----------------------------------------------------------------------===//
///
/// \file
/// N-queens: counts all solutions (paper section 4 used n = 11). The
/// parallel version creates one task per legal pair of positions in the
/// first two rows — up to n^2 large-granularity tasks, so the paper ran it
/// without inlining.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_BENCH_PROGRAMS_QUEENSPROGRAM_H
#define MULT_BENCH_PROGRAMS_QUEENSPROGRAM_H

namespace mult {

inline constexpr const char QueensSource[] = R"lisp(
;; placed is the list of row numbers already chosen, nearest column first.
(define (queens-safe? row dist placed)
  (if (null? placed)
      #t
      (if (= (car placed) row)
          #f
          (if (= (car placed) (+ row dist))
              #f
              (if (= (car placed) (- row dist))
                  #f
                  (queens-safe? row (+ dist 1) (cdr placed)))))))

;; Number of ways to complete `placed` (k rows already chosen) to a full
;; n-queens placement.
(define (queens-solve n k placed)
  (if (= k n)
      1
      (let loop ((row 1) (acc 0))
        (if (> row n)
            acc
            (loop (+ row 1)
                  (if (queens-safe? row 1 placed)
                      (+ acc (queens-solve n (+ k 1) (cons row placed)))
                      acc))))))

(define (queens-seq n) (queens-solve n 0 '()))

;; One future per legal (row1, row2) pair: n^2-ish tasks of large and
;; uneven granularity.
(define (queens-par n)
  (let loop1 ((r1 1) (futs '()))
    (if (> r1 n)
        (let sum ((fs futs) (acc 0))
          (if (null? fs)
              acc
              (sum (cdr fs) (+ acc (touch (car fs))))))
        (let loop2 ((r2 1) (futs futs))
          (if (> r2 n)
              (loop1 (+ r1 1) futs)
              (loop2 (+ r2 1)
                     (if (queens-safe? r2 1 (list r1))
                         (cons (future (queens-solve n 2 (list r2 r1)))
                               futs)
                         futs)))))))
)lisp";

} // namespace mult

#endif // MULT_BENCH_PROGRAMS_QUEENSPROGRAM_H
