//===----------------------------------------------------------------------===//
///
/// \file
/// The Boyer theorem-prover benchmark (Gabriel suite), in the cleaned-up
/// form the paper uses (section 4): the original's global `unify-subst`
/// side effect is removed by threading the substitution, so wrapping
/// subexpressions in `future` is safe. The lemma database is the subset of
/// the standard rule set exercised by the benchmark theorem; the theorem
/// itself is Gabriel's: a propositional tautology over substituted
/// arithmetic/list terms, so `tautp` must return #t.
///
/// Two variants: BoyerSequentialSource defines (boyer-test n) with no
/// futures; BoyerParallelSource additionally futurizes rewrite-args, the
/// natural "wrap future around selected subexpressions" parallelization.
///
//===----------------------------------------------------------------------===//

#ifndef MULT_BENCH_PROGRAMS_BOYERPROGRAM_H
#define MULT_BENCH_PROGRAMS_BOYERPROGRAM_H

namespace mult {

/// Shared core: lemma database, unifier, rewriter, tautology checker.
/// rewrite-args is defined per-variant after this.
inline constexpr const char BoyerCommonSource[] = R"lisp(
(define (add-lemma term)
  ;; term = (equal (fn args...) rhs): index under fn.
  (put (car (cadr term)) 'lemmas
       (cons term (let ((l (get (car (cadr term)) 'lemmas)))
                    (if (null? l) '() l)))))

(define (add-lemma-lst lst)
  (if (null? lst)
      #t
      (begin (add-lemma (car lst)) (add-lemma-lst (cdr lst)))))

(define (boyer-setup)
  (add-lemma-lst
   '((equal (and p q) (if p (if q (t) (f)) (f)))
     (equal (or p q) (if p (t) (if q (t) (f))))
     (equal (not p) (if p (f) (t)))
     (equal (implies p q) (if p (if q (t) (f)) (t)))
     ;; The crucial normalizer: distributes if over if so every test the
     ;; tautology checker splits on is a leaf term.
     (equal (if (if a b c) d e) (if a (if b d e) (if c d e)))
     (equal (plus (plus x y) z) (plus x (plus y z)))
     (equal (equal (plus a b) (zero)) (and (zerop a) (zerop b)))
     (equal (difference x x) (zero))
     (equal (equal (plus a b) (plus a c)) (equal b c))
     (equal (equal (zero) (difference x y)) (not (lessp y x)))
     (equal (equal x (difference x y))
            (and (numberp x) (or (equal x (zero)) (zerop y))))
     (equal (times x (plus y z)) (plus (times x y) (times x z)))
     (equal (times (times x y) z) (times x (times y z)))
     (equal (equal (times x y) (zero)) (or (zerop x) (zerop y)))
     (equal (append (append x y) z) (append x (append y z)))
     (equal (reverse (append a b)) (append (reverse b) (reverse a)))
     (equal (times x (difference c w))
            (difference (times c x) (times w x)))
     (equal (remainder x x) (zero))
     (equal (lessp (remainder x y) y) (if (zerop y) (f) (t)))
     (equal (lessp (plus x y) (plus x z)) (lessp y z))
     (equal (lessp (times x z) (times y z))
            (and (not (zerop z)) (lessp x y)))
     (equal (lessp y (plus x y)) (not (zerop x)))
     (equal (length (reverse x)) (length x))
     (equal (member a (append b c)) (or (member a b) (member a c))))))

;; The list/equality library compiled as Mul-T code, as it would be in
;; the real system's user library (so its implicit touches are subject to
;; compilation mode, exactly like the paper's measurements).
(define (boyer-equal? a b)
  (if (eq? a b)
      #t
      (if (pair? a)
          (if (pair? b)
              (if (boyer-equal? (car a) (car b))
                  (boyer-equal? (cdr a) (cdr b))
                  #f)
              #f)
          #f)))

(define (boyer-assq k l)
  (if (null? l)
      #f
      (if (eq? (car (car l)) k)
          (car l)
          (boyer-assq k (cdr l)))))

(define (boyer-member x l)
  (if (null? l)
      #f
      (if (boyer-equal? x (car l))
          l
          (boyer-member x (cdr l)))))

(define (apply-subst alist term)
  (if (atom? term)
      (let ((temp (boyer-assq term alist)))
        (if temp (cdr temp) term))
      (cons (car term) (apply-subst-lst alist (cdr term)))))

(define (apply-subst-lst alist lst)
  (if (null? lst)
      '()
      (cons (apply-subst alist (car lst))
            (apply-subst-lst alist (cdr lst)))))

(define (falsep x lst)
  (if (boyer-equal? x '(f)) #t (if (boyer-member x lst) #t #f)))
(define (truep x lst)
  (if (boyer-equal? x '(t)) #t (if (boyer-member x lst) #t #f)))

;; Cleaned-up unifier: the substitution is threaded, not a global
;; (paper section 4: "removing some global side effects").
;; Returns a pair (subst) on success -- including the empty-but-truthy
;; marker (ok) -- or #f on failure.
(define (one-way-unify term1 term2)
  (one-way-unify1 term1 term2 '((ok . ok))))

(define (one-way-unify1 term1 term2 subst)
  (if (atom? term2)
      (let ((temp (boyer-assq term2 subst)))
        (if temp
            (if (boyer-equal? term1 (cdr temp)) subst #f)
            (cons (cons term2 term1) subst)))
      (if (atom? term1)
          #f
          (if (eq? (car term1) (car term2))
              (one-way-unify1-lst (cdr term1) (cdr term2) subst)
              #f))))

(define (one-way-unify1-lst lst1 lst2 subst)
  (cond ((null? lst1) (if (null? lst2) subst #f))
        ((null? lst2) #f)
        (else
         (let ((s (one-way-unify1 (car lst1) (car lst2) subst)))
           (if s (one-way-unify1-lst (cdr lst1) (cdr lst2) s) #f)))))

(define (rewrite term)
  (if (atom? term)
      term
      (rewrite-with-lemmas (cons (car term) (rewrite-args (cdr term)))
                           (get (car term) 'lemmas))))

(define (rewrite-with-lemmas term lst)
  (if (null? lst)
      term
      (let ((subst (one-way-unify term (cadr (car lst)))))
        (if subst
            (rewrite (apply-subst subst (caddr (car lst))))
            (rewrite-with-lemmas term (cdr lst))))))

(define (tautologyp x true-lst false-lst)
  (cond ((truep x true-lst) #t)
        ((falsep x false-lst) #f)
        ((atom? x) #f)
        ((eq? (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (else
                (if (tautologyp (caddr x) (cons (cadr x) true-lst) false-lst)
                    (tautologyp (cadddr x) true-lst (cons (cadr x) false-lst))
                    #f))))
        (else #f)))

(define (tautp x) (tautologyp (rewrite x) '() '()))

(define boyer-statement
  '(implies (and (implies x y)
                 (and (implies y z)
                      (and (implies z u) (implies u w))))
            (implies x w)))

(define boyer-subst
  '((x f (plus (plus a b) (plus c (zero))))
    (y f (times (times a b) (plus c d)))
    (z f (reverse (append (append a b) (nil))))
    (u equal (plus a b) (difference x y))
    (w lessp (remainder a b) (member a (length b)))))

;; Runs the proof n times; #t iff every round proves the theorem.
(define (boyer-test n)
  (boyer-setup)
  (let loop ((i 0) (ok #t))
    (if (= i n)
        ok
        (loop (+ i 1)
              (if (tautp (apply-subst boyer-subst boyer-statement))
                  ok
                  #f)))))
)lisp";

/// Sequential rewrite-args (the Table 2 program).
inline constexpr const char BoyerSequentialArgs[] = R"lisp(
(define (rewrite-args lst)
  (if (null? lst)
      '()
      (cons (rewrite (car lst)) (rewrite-args (cdr lst)))))
)lisp";

/// Parallel rewrite-args: one future per argument rewrite (the Table 3
/// program). cons is non-strict, so the futures flow into the result term
/// and are touched by the strict consumers (eq?, atom?, equal?, ...).
inline constexpr const char BoyerParallelArgs[] = R"lisp(
(define (rewrite-args lst)
  (if (null? lst)
      '()
      (cons (future (rewrite (car lst))) (rewrite-args (cdr lst)))))
)lisp";

} // namespace mult

#endif // MULT_BENCH_PROGRAMS_BOYERPROGRAM_H
