//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the inlining threshold T of paper section 3: Boyer and
/// mergesort across T in {0, 1, 2, 4, 8, inf} on 1 and 8 processors,
/// reporting time and futures created. The paper's headline data points:
/// mergesort's futures drop from 8191 to ~350 on 8 processors at T = 1
/// (here scaled: 2047 -> a few hundred), and T = 1 removes most of
/// Boyer's one-processor future overhead.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "programs/BoyerProgram.h"
#include "programs/MergesortProgram.h"

using namespace multbench;

namespace {

struct Cell {
  double Seconds;
  uint64_t Futures;
  uint64_t Inlined;
};

Cell run(const std::string &Setup, const std::string &Expr, unsigned Procs,
         std::optional<unsigned> T) {
  Engine E(machine(Procs, T));
  Cell C;
  C.Seconds = runVirtualSeconds(E, Setup, Expr);
  C.Futures = E.stats().FuturesCreated;
  C.Inlined = E.stats().TasksInlined;
  return C;
}

void sweep(const char *Name, const std::string &Setup,
           const std::string &Expr, unsigned Procs) {
  std::printf("\n  %s on %u processor(s):\n", Name, Procs);
  std::printf("    %-6s %10s %10s %10s\n", "T", "time", "futures",
              "inlined");
  static const std::optional<unsigned> Ts[] = {0u, 1u, 2u, 4u, 8u,
                                               std::nullopt};
  for (std::optional<unsigned> T : Ts) {
    Cell C = run(Setup, Expr, Procs, T);
    std::printf("    %-6s %10s %10llu %10llu\n",
                T ? std::to_string(*T).c_str() : "inf",
                formatSeconds(C.Seconds).c_str(),
                static_cast<unsigned long long>(C.Futures),
                static_cast<unsigned long long>(C.Inlined));
  }
}

} // namespace

int main() {
  printTitle("Inlining-threshold ablation (paper section 3)");

  std::string BoyerSetup = std::string(BoyerCommonSource) + BoyerParallelArgs;
  sweep("parallel Boyer", BoyerSetup, "(boyer-test 1)", 1);
  sweep("parallel Boyer", BoyerSetup, "(boyer-test 1)", 8);
  sweep("mergesort 2048", MergesortSource, "(mergesort-test 2048)", 1);
  sweep("mergesort 2048", MergesortSource, "(mergesort-test 2048)", 8);

  printRule();
  std::printf("  paper: mergesort futures drop from 8191 (T=inf) to ~350 "
              "on 8 processors at T=1;\n"
              "  T=0 risks starvation/deadlock, T=1 buffers one task "
              "(section 3's recommendation).\n");
  return 0;
}
