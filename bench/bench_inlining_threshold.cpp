//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the inlining threshold T of paper section 3, in two parts.
///
/// Part 1 (the paper's own table): Boyer and mergesort across T in
/// {0, 1, 2, 4, 8, inf} on 1 and 8 processors, reporting time and futures
/// created. The paper's headline data points: mergesort's futures drop
/// from 8191 to ~350 on 8 processors at T = 1 (here scaled: 2047 -> a few
/// hundred), and T = 1 removes most of Boyer's one-processor future
/// overhead.
///
/// Part 2 (the adaptive ablation): every static T against the adaptive
/// per-processor controller (sched/Adaptive.h) across three programs,
/// 1..16 processors and both steal orders. With MULT_METRICS=1 each run
/// emits a ";; virtual-cycles: inl_<prog>_<order>_p<N>_<policy> <cycles>"
/// line that tools/collect_metrics.py collects into the regression
/// dashboard; the human-readable table prints adaptive alongside the best
/// static T so the "adaptive matches or beats the best fixed threshold"
/// claim is one glance away.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "programs/BoyerProgram.h"
#include "programs/MergesortProgram.h"
#include "programs/PermuteProgram.h"
#include "programs/QueensProgram.h"

#include <algorithm>
#include <vector>

using namespace multbench;

namespace {

struct Cell {
  double Seconds;
  uint64_t Futures;
  uint64_t Inlined;
};

Cell run(const std::string &Setup, const std::string &Expr, unsigned Procs,
         std::optional<unsigned> T) {
  Engine E(machine(Procs, T));
  Cell C;
  C.Seconds = runVirtualSeconds(E, Setup, Expr);
  C.Futures = E.stats().FuturesCreated;
  C.Inlined = E.stats().TasksInlined;
  return C;
}

void sweep(const char *Name, const std::string &Setup,
           const std::string &Expr, unsigned Procs) {
  std::printf("\n  %s on %u processor(s):\n", Name, Procs);
  std::printf("    %-6s %10s %10s %10s\n", "T", "time", "futures",
              "inlined");
  static const std::optional<unsigned> Ts[] = {0u, 1u, 2u, 4u, 8u,
                                               std::nullopt};
  for (std::optional<unsigned> T : Ts) {
    Cell C = run(Setup, Expr, Procs, T);
    std::printf("    %-6s %10s %10llu %10llu\n",
                T ? std::to_string(*T).c_str() : "inf",
                formatSeconds(C.Seconds).c_str(),
                static_cast<unsigned long long>(C.Futures),
                static_cast<unsigned long long>(C.Inlined));
  }
}

// --- Part 2: adaptive vs static, tagged for the dashboard ---------------

struct Policy {
  const char *Name; // tag suffix and column header
  std::optional<unsigned> T;
  bool Adaptive;
};

struct Program {
  const char *Tag; // short, stable: part of the virtual-cycles tag
  const char *Title;
  const char *Setup;
  const char *Expr;
};

uint64_t runTagged(const Program &Prog, unsigned Procs, StealOrder Order,
                   const Policy &Pol, const std::string &Tag) {
  EngineConfig C = machine(Procs, Pol.T);
  C.StealPolicy = Order;
  C.AdaptiveInline = Pol.Adaptive; // explicit sweep: ignore MULT_ADAPTIVE_T
  Engine E(C);
  runVirtualSeconds(E, Prog.Setup, Prog.Expr);
  reportRun(E, Tag);
  return E.stats().ElapsedCycles;
}

void adaptiveSweep() {
  static const Policy Policies[] = {
      {"t0", 0u, false},          {"t1", 1u, false},
      {"t2", 2u, false},          {"t4", 4u, false},
      {"t8", 8u, false},          {"tinf", std::nullopt, false},
      {"adapt", std::nullopt, true},
  };
  static const Program Programs[] = {
      {"msort", "mergesort 2048", MergesortSource, "(mergesort-test 2048)"},
      {"queens", "queens 8", QueensSource, "(queens-par 8)"},
      {"permute", "permute", PermuteSource, "(permute-run 48 20 10 8 16)"},
  };
  static const unsigned ProcCounts[] = {1, 2, 4, 8, 16};
  static const struct {
    StealOrder Order;
    const char *Name;
  } Orders[] = {{StealOrder::Lifo, "lifo"}, {StealOrder::Fifo, "fifo"}};

  printTitle("Adaptive vs static threshold (total virtual cycles)");
  std::printf("  adaptive starts at T=1 and retunes per processor every "
              "window;\n  '*' marks the winner, 'best' the best static "
              "column.\n");
  for (const Program &Prog : Programs) {
    for (const auto &Ord : Orders) {
      std::printf("\n  %s, %s steal order:\n", Prog.Title, Ord.Name);
      std::printf("    %-5s", "procs");
      for (const Policy &Pol : Policies)
        std::printf(" %10s", Pol.Name);
      std::printf(" %10s\n", "best");
      for (unsigned Procs : ProcCounts) {
        std::printf("    %-5u", Procs);
        std::vector<uint64_t> Cycles;
        uint64_t BestStatic = ~0ull;
        for (const Policy &Pol : Policies) {
          std::string Tag = strFormat("inl_%s_%s_p%u_%s", Prog.Tag,
                                      Ord.Name, Procs, Pol.Name);
          uint64_t N = runTagged(Prog, Procs, Ord.Order, Pol, Tag);
          Cycles.push_back(N);
          if (!Pol.Adaptive && N < BestStatic)
            BestStatic = N;
        }
        uint64_t Best = *std::min_element(Cycles.begin(), Cycles.end());
        for (size_t I = 0; I < Cycles.size(); ++I)
          std::printf(" %9llu%c",
                      static_cast<unsigned long long>(Cycles[I]),
                      Cycles[I] == Best ? '*' : ' ');
        // How the adaptive column (last) compares against the best static.
        uint64_t Adapt = Cycles.back();
        std::printf(" %10s\n",
                    Adapt <= BestStatic
                        ? strFormat("<=%s", "static").c_str()
                        : strFormat("+%.1f%%",
                                    100.0 * (static_cast<double>(Adapt) -
                                             static_cast<double>(BestStatic)) /
                                        static_cast<double>(BestStatic))
                              .c_str());
      }
    }
  }
}

} // namespace

int main() {
  printTitle("Inlining-threshold ablation (paper section 3)");

  std::string BoyerSetup = std::string(BoyerCommonSource) + BoyerParallelArgs;
  sweep("parallel Boyer", BoyerSetup, "(boyer-test 1)", 1);
  sweep("parallel Boyer", BoyerSetup, "(boyer-test 1)", 8);
  sweep("mergesort 2048", MergesortSource, "(mergesort-test 2048)", 1);
  sweep("mergesort 2048", MergesortSource, "(mergesort-test 2048)", 8);

  printRule();
  std::printf("  paper: mergesort futures drop from 8191 (T=inf) to ~350 "
              "on 8 processors at T=1;\n"
              "  T=0 risks starvation/deadlock, T=1 buffers one task "
              "(section 3's recommendation).\n");

  adaptiveSweep();
  return 0;
}
